// Ablation: passage-band chunking of the pre-process strategy — chunk width
// and growth law (Section 5's "the size of the chunks can be set to a fixed
// value or grow in arithmetic or geometric projections").
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  using core::ChunkGrowth;
  const Args args(argc, argv);
  bench::banner("Ablation — passage-band chunks",
                "Chunk width and growth law vs pre-process core time "
                "(40K sequences)");

  constexpr std::size_t n = 40'960;

  obs::RunReport report("ablation_chunks",
                        "Ablation — passage-band chunk width and growth law");
  report.set_param("size", n);
  report.set_param("procs", 8);
  report.set_param("band_rows", 1024);

  TextTable widths("Fixed chunk width sweep (8 processors)");
  widths.set_header({"chunk cols", "core time (s)", "vs best"});
  double best = 1e300;
  std::vector<std::pair<std::size_t, double>> results;
  for (const std::size_t w :
       std::vector<std::size_t>{16, 64, 128, 512, 2048, 8192, 40'960}) {
    core::SimPreprocessOptions opt;
    opt.band_rows = 1024;
    opt.chunk_cols = w;
    const double t = core::sim_preprocess(n, n, 8, opt).core_s;
    results.emplace_back(w, t);
    best = std::min(best, t);
  }
  for (const auto& [w, t] : results) {
    widths.add_row({std::to_string(w), fmt_f(t, 2),
                    "+" + fmt_f(100.0 * (t / best - 1.0), 1) + "%"});

    obs::Json rec = obs::Json::object();
    rec.set("chunk_cols", w);
    rec.set("core_s", t);
    rec.set("vs_best", t / best - 1.0);
    report.add_row("width_sweep", std::move(rec));
  }
  widths.print(std::cout);

  TextTable growth("Growth law (initial chunk 64, 8 processors)");
  growth.set_header({"growth", "core time (s)"});
  for (const auto& [name, law] :
       std::vector<std::pair<const char*, ChunkGrowth>>{
           {"fixed", ChunkGrowth::kFixed},
           {"arithmetic", ChunkGrowth::kArithmetic},
           {"geometric", ChunkGrowth::kGeometric}}) {
    core::SimPreprocessOptions opt;
    opt.band_rows = 1024;
    opt.chunk_cols = 64;
    opt.chunk_growth = law;
    const double t = core::sim_preprocess(n, n, 8, opt).core_s;
    growth.add_row({name, fmt_f(t, 2)});

    obs::Json rec = obs::Json::object();
    rec.set("growth", name);
    rec.set("initial_chunk_cols", 64);
    rec.set("core_s", t);
    report.add_row("growth_sweep", std::move(rec));
  }
  growth.print(std::cout);
  std::cout
      << "Reading: tiny chunks drown in per-chunk synchronization; huge\n"
         "chunks serialize the pipeline (the next band cannot start until\n"
         "the whole previous band is done).  Growing chunks recover most of\n"
         "the large-chunk efficiency while keeping the pipeline start fast —\n"
         "the paper's motivation for small chunks at the beginning.\n";
  return bench::emit_report(report, args);
}
