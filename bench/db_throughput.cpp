// Database-serving throughput: open-loop load on the sharded multi-sequence
// subject database (src/db, docs/SERVICE.md "Database serving").
//
// The workload mixes the two traffic regimes the filtration front-end sees
// in practice: half the probes are mutated windows of database sequences
// (they must survive filtration against their home fragment and produce a
// hit) and half are pure random DNA (the q-gram bound should discard nearly
// every fragment before any DP runs).  A threshold sweep first shows how the
// filtration rate responds to min_score; the open-loop sweep then offers db
// queries at fixed rates and reports queries/sec, latency quantiles and the
// realized filtration rate.  The schema-v7 "db" section of the JSON report
// carries the global fragment counters and per-node shard balance.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "db/subject_db.h"
#include "simd/dispatch.h"
#include "svc/service.h"
#include "util/genome.h"
#include "util/rng.h"

namespace {

using namespace gdsm;

struct Workload {
  std::vector<Sequence> sequences;
  std::vector<Sequence> probes;  ///< even index: homologous, odd: random
};

Workload make_workload(std::size_t n_sequences, std::size_t seq_len,
                       std::size_t n_probes, std::size_t query_len,
                       std::uint64_t seed) {
  Workload w;
  Rng rng(seed);
  for (std::size_t k = 0; k < n_sequences; ++k) {
    w.sequences.push_back(random_dna(seq_len, rng, "db" + std::to_string(k)));
  }
  for (std::size_t i = 0; i < n_probes; ++i) {
    Sequence probe;
    if (i % 2 == 0) {
      const Sequence& src = w.sequences[rng() % n_sequences];
      const std::size_t len = std::min(query_len, src.size());
      const std::size_t begin =
          len < src.size() ? rng() % (src.size() - len) : 0;
      // Low divergence keeps every homologous probe's true score above the
      // default threshold, so filtration power is measured against the
      // random half without silently dropping the hits.
      probe = mutate(src.slice(begin, begin + len), 0.02, 0.005, rng);
    } else {
      probe = random_dna(query_len, rng);
    }
    probe.set_name("probe" + std::to_string(i));
    w.probes.push_back(std::move(probe));
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  bench::banner("Database throughput",
                "Open-loop load on the sharded subject database: q-gram "
                "filtration, fragment scan and hit reporting");

  const auto n_sequences =
      static_cast<std::size_t>(args.get_int("db-seqs", 4));
  const auto seq_len = static_cast<std::size_t>(args.get_int("len", 2000));
  const auto query_len =
      static_cast<std::size_t>(args.get_int("query-len", 150));
  const auto n_probes = static_cast<std::size_t>(args.get_int("probes", 24));
  const int min_score = static_cast<int>(args.get_int("min-score", 120));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const double duration_s = args.get_double("duration-s", 0.75);
  // --cascade=off disables the certified seed-and-extend middle stage so the
  // baseline carries both an accelerated and a PR 7-pipeline row.
  const bool cascade_on = args.get("cascade", "on") != "off";
  const auto qgram = static_cast<std::size_t>(
      args.get_int("q", static_cast<long long>(db::DbConfig{}.q)));
  // The last default rates deliberately exceed the service's capacity so
  // `open.r16000.qps` records the saturated scan throughput — the row where
  // the kernel backend and the cascade show up in the baseline.
  const std::vector<std::size_t> rates =
      bench::size_list(args, "rates", {40, 160, 4000, 16000});
  const std::vector<std::size_t> thresholds =
      bench::size_list(args, "thresholds", {40, 80, 120, 140});

  // run_all.sh's BENCH_KERNELS axis re-runs this bench under GDSM_KERNEL
  // forcings; a forced run gets a suffixed experiment id so its rows sit
  // next to the auto-dispatched run in the merged baseline instead of
  // colliding with it (same idiom as ablation_comm_process).
  std::string experiment = "db_throughput";
  if (std::getenv("GDSM_KERNEL") != nullptr)
    experiment += std::string("_") + simd::active_backend_name();
  if (!cascade_on) experiment += "_nocascade";
  obs::RunReport report(experiment,
                        "Database-serving throughput: filtration-threshold "
                        "sweep and open-loop rate sweep over a sharded "
                        "multi-sequence subject database");
  report.set_param("db_sequences", n_sequences);
  report.set_param("seq_len", seq_len);
  report.set_param("query_len", query_len);
  report.set_param("probes", n_probes);
  report.set_param("min_score", min_score);
  // The open-loop sweep's filtration threshold, the q-gram length and the
  // cascade mode pin down which funnel the throughput numbers measured.
  report.set_param("threshold", min_score);
  report.set_param("q", qgram);
  report.set_param("cascade", cascade_on ? "on" : "off");
  report.set_param("seed", seed);
  report.set_param("host_clock", true);  // wall-clock throughput/latency
  // The shard scan's DP runs through the kernel dispatch; run_all.sh's
  // BENCH_KERNELS axis re-runs this bench under GDSM_KERNEL forcings and
  // this param tells the merged baseline's rows apart.
  report.set_param("kernel", simd::active_backend_name());

  const Workload w =
      make_workload(n_sequences, seq_len, n_probes, query_len, seed);

  const auto make_config = [&] {
    svc::ServiceConfig cfg;
    cfg.nprocs = static_cast<int>(args.get_int("procs", 4));
    cfg.workers = static_cast<int>(args.get_int("workers", 2));
    cfg.queue_capacity = 256;
    return cfg;
  };
  const auto make_db_config = [&] {
    db::DbConfig dcfg;
    dcfg.cascade = cascade_on;
    dcfg.q = qgram;
    return dcfg;
  };
  const auto submit_probe = [&](svc::AlignService& service, std::size_t i,
                                int threshold) {
    svc::QuerySpec spec;
    spec.database = "db";
    spec.min_score = threshold;
    spec.query = w.probes[i];
    return service.submit(std::move(spec));
  };

  // ---- filtration sweep: how the q-gram bound responds to min_score ----
  // Below the no-seed ceiling (~0.6 per probe base with the default scheme)
  // nothing can be discarded; above it the bound rejects nearly every
  // (random probe, fragment) pair while homologous probes keep their hits.
  TextTable filt("Filtration - min_score sweep, " +
                 std::to_string(w.probes.size()) + " probes (half random)");
  filt.set_header({"min_score", "Scanned", "Rejected", "Aligned",
                   "Filtration", "Hits"});
  for (const std::size_t threshold : thresholds) {
    svc::AlignService service(make_config());
    service.load_db("db", w.sequences, make_db_config());
    std::vector<svc::TicketPtr> tickets;
    for (std::size_t i = 0; i < w.probes.size(); ++i) {
      tickets.push_back(
          submit_probe(service, i, static_cast<int>(threshold)).ticket);
    }
    for (const auto& t : tickets) t->wait();
    const svc::ServiceStats st = service.stats();
    service.shutdown();

    const double rate =
        st.db_fragments_scanned
            ? static_cast<double>(st.db_fragments_rejected) /
                  static_cast<double>(st.db_fragments_scanned)
            : 0;
    filt.add_row({std::to_string(threshold),
                  std::to_string(st.db_fragments_scanned),
                  std::to_string(st.db_fragments_rejected),
                  std::to_string(st.db_fragments_aligned), bench::pct(rate),
                  std::to_string(st.db_hits)});
    obs::Json row = obs::Json::object();
    row.set("min_score", threshold);
    row.set("fragments_scanned", st.db_fragments_scanned);
    row.set("fragments_rejected", st.db_fragments_rejected);
    row.set("fragments_aligned", st.db_fragments_aligned);
    row.set("filtration_rate", rate);
    row.set("hits", st.db_hits);
    report.add_row("filtration_sweep", std::move(row));
    report.metrics().set("filt.t" + std::to_string(threshold) + ".rate", rate);
  }
  filt.print(std::cout);

  // ---- open loop: seeded arrival schedule at a fixed offered rate ----
  TextTable open_t("Open loop - offered db-query rate sweep, " +
                   fmt_f(duration_s, 2) + " s each, min_score " +
                   std::to_string(min_score));
  open_t.set_header({"Rate (q/s)", "Offered", "Done", "Rejected",
                     "Throughput (q/s)", "Filtration", "p50 (ms)",
                     "p99 (ms)"});
  for (const std::size_t rate : rates) {
    svc::AlignService service(make_config());
    service.load_db("db", w.sequences, make_db_config());
    Rng arrivals(seed ^ (0xdbdbdbdbull + rate));
    std::vector<svc::TicketPtr> tickets;
    std::uint64_t offered = 0, rejected = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double at = 0;
    for (;;) {
      const double u =
          (static_cast<double>(arrivals() >> 11) + 0.5) * 0x1p-53;
      at += -std::log(u) / static_cast<double>(rate);
      if (at >= duration_s) break;
      std::this_thread::sleep_until(
          t0 +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(at)));
      svc::AlignService::Admission adm =
          submit_probe(service, offered % w.probes.size(), min_score);
      ++offered;
      if (adm.admitted()) {
        tickets.push_back(std::move(adm.ticket));
      } else {
        ++rejected;
      }
    }
    service.drain();
    for (const auto& t : tickets) t->wait();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    const svc::ServiceStats st = service.stats();
    service.shutdown();

    const double qps =
        wall_s > 0 ? static_cast<double>(st.completed) / wall_s : 0;
    const double filtration =
        st.db_fragments_scanned
            ? static_cast<double>(st.db_fragments_rejected) /
                  static_cast<double>(st.db_fragments_scanned)
            : 0;
    open_t.add_row({std::to_string(rate), std::to_string(offered),
                    std::to_string(st.completed), std::to_string(rejected),
                    fmt_f(qps, 1), bench::pct(filtration),
                    fmt_f(st.total_latency.quantile(0.5) * 1e3, 2),
                    fmt_f(st.total_latency.quantile(0.99) * 1e3, 2)});
    obs::Json row = obs::Json::object();
    row.set("rate_qps", rate);
    row.set("offered", offered);
    row.set("rejected", rejected);
    row.set("wall_s", wall_s);
    row.set("throughput_qps", qps);
    row.set("filtration_rate", filtration);
    row.set("fragments_scanned", st.db_fragments_scanned);
    row.set("fragments_rejected", st.db_fragments_rejected);
    row.set("hits", st.db_hits);
    row.set("p50_s", st.total_latency.quantile(0.5));
    row.set("p99_s", st.total_latency.quantile(0.99));
    row.set("service", st.to_json());
    report.add_row("open_loop", std::move(row));
    report.metrics().set("open.r" + std::to_string(rate) + ".qps", qps);
    report.metrics().set("open.r" + std::to_string(rate) + ".filtration",
                         filtration);
  }
  open_t.print(std::cout);

  // ---- persisted q-gram index: cold rebuild vs mmap re-open ----
  // Measured on a database big enough that index construction dominates the
  // load path — this is the warm-load_db speedup the persisted index buys a
  // service restart (docs/SERVICE.md "Cascade").
  {
    const auto idx_seqs =
        static_cast<std::size_t>(args.get_int("index-seqs", 8));
    const auto idx_len =
        static_cast<std::size_t>(args.get_int("index-len", 32000));
    const int reps = static_cast<int>(args.get_int("index-reps", 5));
    const std::string path =
        args.get("index-path", "/tmp/gdsm_db_throughput.qidx");
    Rng rng(seed ^ 0x71d3);
    std::vector<Sequence> seqs;
    for (std::size_t k = 0; k < idx_seqs; ++k) {
      seqs.push_back(random_dna(idx_len, rng, "idx" + std::to_string(k)));
    }
    const db::DbConfig dcfg = make_db_config();
    const auto secs_since = [](std::chrono::steady_clock::time_point t0) {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    double cold_s = 1e300, save_s = 1e300, open_s = 1e300;
    for (int r = 0; r < reps; ++r) {
      auto t0 = std::chrono::steady_clock::now();
      db::SubjectDb cold(seqs, dcfg);
      cold_s = std::min(cold_s, secs_since(t0));
      t0 = std::chrono::steady_clock::now();
      cold.save_index(path);
      save_s = std::min(save_s, secs_since(t0));
      t0 = std::chrono::steady_clock::now();
      const db::SubjectDb warm = db::SubjectDb::open_index(seqs, path, dcfg);
      open_s = std::min(open_s, secs_since(t0));
      if (warm.fragments().size() != cold.fragments().size()) {
        std::cerr << "index round-trip changed the fragment partition\n";
        return 1;
      }
    }
    std::remove(path.c_str());
    const double speedup = open_s > 0 ? cold_s / open_s : 0;
    TextTable idx_t("Persisted q-gram index - " + std::to_string(idx_seqs) +
                    " x " + std::to_string(idx_len) + " bases, best of " +
                    std::to_string(reps));
    idx_t.set_header({"Cold build (ms)", "Save (ms)", "mmap open (ms)",
                      "Warm speedup"});
    idx_t.add_row({fmt_f(cold_s * 1e3, 2), fmt_f(save_s * 1e3, 2),
                   fmt_f(open_s * 1e3, 2), fmt_f(speedup, 1) + "x"});
    idx_t.print(std::cout);
    report.set_param("index_seqs", idx_seqs);
    report.set_param("index_len", idx_len);
    report.metrics().set("index.cold_build_s", cold_s);
    report.metrics().set("index.save_s", save_s);
    report.metrics().set("index.open_s", open_s);
    report.metrics().set("index.warm_speedup", speedup);
  }

  std::cout << "Shape checks: filtration stays ~0% below the no-seed bound\n"
               "and climbs past it (random probes discard nearly all\n"
               "fragments); the default min_score keeps the open-loop\n"
               "filtration rate above 50% while the homologous probes keep\n"
               "reporting hits.\n";

  return bench::emit_report(report, args);
}
