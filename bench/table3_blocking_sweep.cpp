// Table 3: execution times for 8 processors aligning the 50K sequences with
// varying blocking multipliers (Section 4.3.1).
#include <iostream>

#include "bench_common.h"
#include "core/report_io.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  bench::banner("Table 3",
                "Execution times (s) for 8 processors to align 50K sequences "
                "with varying blocking multipliers");

  const double paper[] = {732.79, 459.80, 394.59, 368.15, 363.13};
  constexpr std::size_t n = 50'000;
  constexpr int P = 8;

  obs::RunReport report("table3_blocking_sweep",
                        "Table 3 — blocking multiplier sweep, 50K sequences, "
                        "8 processors");
  report.set_param("size", n);
  report.set_param("procs", P);

  // Reference: the same comparison with no blocking at all (Table 1).
  const core::SimReport noblock = core::sim_wavefront(n, n, P);
  std::cout << "Reference, no blocking factors (Table 1): "
            << fmt_f(noblock.total_s, 2) << " s (paper 1107.02)\n\n";
  report.metrics().set("noblock_total_s", obs::Json(noblock.total_s));
  report.metrics().set("noblock_paper_s", obs::Json(1107.02));

  TextTable table("Table 3 — blocking multiplier sweep, measured (paper)");
  table.set_header({"Blocking factor", "Time (s)", "Gain vs 1x1"});
  double base = 0;
  for (int m = 1; m <= 5; ++m) {
    const auto mult = static_cast<std::size_t>(m);
    const core::SimReport rep =
        core::sim_blocked(n, n, P, mult * P, mult * P);
    if (m == 1) base = rep.total_s;
    table.add_row({std::to_string(m) + " x " + std::to_string(m),
                   bench::with_paper(rep.total_s, paper[m - 1]),
                   fmt_f(100.0 * (base / rep.total_s - 1.0), 0) + "%"});

    obs::Json row = obs::Json::object();
    row.set("multiplier", m);
    row.set("bands", mult * P);
    row.set("blocks", mult * P);
    row.set("total_s", rep.total_s);
    row.set("paper_s", paper[m - 1]);
    row.set("gain_vs_1x1", base / rep.total_s - 1.0);
    row.set("sim", core::sim_report_json(rep));
    report.add_row("sweep", std::move(row));
  }
  table.print(std::cout);
  std::cout << "Shape checks: strong monotone improvement from 1x1 to 5x5\n"
               "(paper: +101% gain), and every blocked configuration beats\n"
               "the non-blocked 1107 s by a wide margin.\n";
  return bench::emit_report(report, args);
}
