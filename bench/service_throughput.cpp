// Service throughput: closed-loop and open-loop load on the multi-query
// alignment service (src/svc, docs/SERVICE.md).
//
// Closed loop: a fixed window of W queries is kept in flight — each
// completion immediately admits the next — which measures the service's
// saturation throughput as the window grows (worker-pool + batching gains).
// Open loop: arrivals follow a seeded schedule at a fixed offered rate
// regardless of completions, which measures latency under queueing and the
// backpressure behaviour of admission.  Both sweeps run on a fresh service
// per row so the per-row "service" counters are self-contained.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "svc/service.h"
#include "util/genome.h"
#include "util/rng.h"

namespace {

using namespace gdsm;

struct Workload {
  std::vector<Sequence> subjects;
  std::vector<std::pair<std::size_t, Sequence>> probes;  ///< (subject idx, query)
};

Workload make_workload(std::size_t n_subjects, std::size_t subject_len,
                       std::size_t n_probes, std::size_t query_len,
                       std::uint64_t seed) {
  Workload w;
  Rng rng(seed);
  for (std::size_t k = 0; k < n_subjects; ++k) {
    w.subjects.push_back(
        random_dna(subject_len, rng, "subject" + std::to_string(k)));
  }
  for (std::size_t i = 0; i < n_probes; ++i) {
    const std::size_t idx = rng() % n_subjects;
    const Sequence& subject = w.subjects[idx];
    const std::size_t len = std::min(query_len, subject.size());
    const std::size_t begin =
        len < subject.size() ? rng() % (subject.size() - len) : 0;
    Sequence probe = mutate(subject.slice(begin, begin + len), 0.05, 0.01, rng);
    probe.set_name("probe" + std::to_string(i));
    w.probes.emplace_back(idx, std::move(probe));
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  bench::banner("Service throughput",
                "Closed-loop and open-loop load on the multi-query alignment "
                "service (admission, batching, strategy-aware scheduling)");

  const auto subject_len =
      static_cast<std::size_t>(args.get_int("subject-len", 2000));
  const auto query_len =
      static_cast<std::size_t>(args.get_int("query-len", 250));
  const auto n_queries =
      static_cast<std::size_t>(args.get_int("queries", 32));
  const auto n_subjects =
      static_cast<std::size_t>(args.get_int("subjects", 2));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const double duration_s = args.get_double("duration-s", 0.75);
  const std::vector<std::size_t> windows =
      bench::size_list(args, "windows", {1, 4, 8});
  const std::vector<std::size_t> rates =
      bench::size_list(args, "rates", {40, 160});

  obs::RunReport report("service_throughput",
                        "Alignment-service throughput: closed-loop window "
                        "sweep and open-loop rate sweep");
  report.set_param("subject_len", subject_len);
  report.set_param("query_len", query_len);
  report.set_param("queries", n_queries);
  report.set_param("subjects", n_subjects);
  report.set_param("seed", seed);
  report.set_param("host_clock", true);  // wall-clock throughput/latency

  const Workload w =
      make_workload(n_subjects, subject_len, n_queries, query_len, seed);

  const auto make_config = [&] {
    svc::ServiceConfig cfg;
    cfg.nprocs = static_cast<int>(args.get_int("procs", 4));
    cfg.workers = static_cast<int>(args.get_int("workers", 2));
    cfg.queue_capacity = 256;
    return cfg;
  };
  // The affine gap model rides the same admission path; the closed-loop
  // sweep runs each window under both models so the report carries the
  // affine throughput column next to the linear one (schema v6).
  ScoreScheme affine_sc;
  affine_sc.gap_open = -3;
  const auto submit_probe = [&](svc::AlignService& service, std::size_t i,
                                bool affine) {
    svc::QuerySpec spec;
    spec.subject = w.subjects[w.probes[i].first].name();
    spec.query = w.probes[i].second;
    if (affine) spec.scheme = affine_sc;
    return service.submit(std::move(spec));
  };

  // ---- closed loop: keep exactly `window` queries in flight ----
  TextTable closed("Closed loop - fixed in-flight window, " +
                   std::to_string(n_queries) + " queries");
  closed.set_header({"Window", "Gap", "Throughput (q/s)", "p50 (ms)",
                     "p99 (ms)", "Warm", "Batched"});
  for (const std::size_t window : windows) {
    for (const bool affine : {false, true}) {
      const char* gap_model = affine ? "affine" : "linear";
      svc::AlignService service(make_config());
      for (const Sequence& s : w.subjects) service.load_subject(s);
      std::vector<svc::TicketPtr> tickets;
      tickets.reserve(w.probes.size());
      const auto t0 = std::chrono::steady_clock::now();
      std::size_t next = 0;
      for (; next < std::min(window, w.probes.size()); ++next) {
        tickets.push_back(submit_probe(service, next, affine).ticket);
      }
      for (std::size_t done = 0; done < w.probes.size(); ++done) {
        tickets[done]->wait();
        if (next < w.probes.size()) {
          tickets.push_back(submit_probe(service, next++, affine).ticket);
        }
      }
      const double wall_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
      const svc::ServiceStats st = service.stats();
      service.shutdown();

      const double qps =
          wall_s > 0 ? static_cast<double>(st.completed) / wall_s : 0;
      closed.add_row({std::to_string(window), gap_model, fmt_f(qps, 1),
                      fmt_f(st.total_latency.quantile(0.5) * 1e3, 2),
                      fmt_f(st.total_latency.quantile(0.99) * 1e3, 2),
                      std::to_string(st.warm_queries),
                      std::to_string(st.batched_queries)});
      obs::Json row = obs::Json::object();
      row.set("window", window);
      row.set("gap_model", gap_model);
      row.set("wall_s", wall_s);
      row.set("throughput_qps", qps);
      row.set("p50_s", st.total_latency.quantile(0.5));
      row.set("p99_s", st.total_latency.quantile(0.99));
      row.set("service", st.to_json());
      report.add_row("closed_loop", std::move(row));
      // The historical (pre-v6) metric name stays the linear number; the
      // affine column gets its own key.
      report.metrics().set("closed.w" + std::to_string(window) +
                               (affine ? ".affine.qps" : ".qps"),
                           qps);
    }
  }
  closed.print(std::cout);

  // ---- open loop: seeded arrival schedule at a fixed offered rate ----
  TextTable open_t("Open loop - offered rate sweep, " +
                   fmt_f(duration_s, 2) + " s each");
  open_t.set_header({"Rate (q/s)", "Offered", "Done", "Rejected",
                     "Throughput (q/s)", "p50 (ms)", "p99 (ms)"});
  for (const std::size_t rate : rates) {
    svc::AlignService service(make_config());
    for (const Sequence& s : w.subjects) service.load_subject(s);
    Rng arrivals(seed ^ (0xa5a5a5a5ull + rate));
    std::vector<svc::TicketPtr> tickets;
    std::uint64_t offered = 0, rejected = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double at = 0;
    for (;;) {
      const double u =
          (static_cast<double>(arrivals() >> 11) + 0.5) * 0x1p-53;
      at += -std::log(u) / static_cast<double>(rate);
      if (at >= duration_s) break;
      std::this_thread::sleep_until(
          t0 +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(at)));
      svc::AlignService::Admission adm =
          submit_probe(service, offered % w.probes.size(), /*affine=*/false);
      ++offered;
      if (adm.admitted()) {
        tickets.push_back(std::move(adm.ticket));
      } else {
        ++rejected;
      }
    }
    service.drain();
    for (const auto& t : tickets) t->wait();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    const svc::ServiceStats st = service.stats();
    service.shutdown();

    const double qps =
        wall_s > 0 ? static_cast<double>(st.completed) / wall_s : 0;
    open_t.add_row({std::to_string(rate), std::to_string(offered),
                    std::to_string(st.completed), std::to_string(rejected),
                    fmt_f(qps, 1),
                    fmt_f(st.total_latency.quantile(0.5) * 1e3, 2),
                    fmt_f(st.total_latency.quantile(0.99) * 1e3, 2)});
    obs::Json row = obs::Json::object();
    row.set("rate_qps", rate);
    row.set("gap_model", "linear");
    row.set("offered", offered);
    row.set("rejected", rejected);
    row.set("wall_s", wall_s);
    row.set("throughput_qps", qps);
    row.set("p50_s", st.total_latency.quantile(0.5));
    row.set("p99_s", st.total_latency.quantile(0.99));
    row.set("service", st.to_json());
    report.add_row("open_loop", std::move(row));
  }
  open_t.print(std::cout);
  std::cout << "Shape checks: closed-loop throughput rises with the window\n"
               "(worker overlap + same-subject batching); open-loop p99 grows\n"
               "with offered rate and rejects appear only past saturation.\n";

  return bench::emit_report(report, args);
}
