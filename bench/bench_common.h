// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/sim_strategies.h"
#include "util/table.h"

namespace gdsm::bench {

/// Standard header each bench prints, naming the experiment it regenerates.
inline void banner(const std::string& experiment, const std::string& what) {
  std::cout << "############################################################\n"
            << "# " << experiment << "\n"
            << "# " << what << "\n"
            << "# platform model: 8x Pentium II 350 MHz / 100 Mbps Ethernet /\n"
            << "# JIAJIA DSM (calibrated simulator; see EXPERIMENTS.md)\n"
            << "############################################################\n";
}

/// "measured (paper N)" cell text.
inline std::string with_paper(double measured, double paper, int precision = 2) {
  return fmt_f(measured, precision) + " (paper " + fmt_f(paper, precision) + ")";
}

inline std::string pct(double x) { return fmt_f(100.0 * x, 0) + "%"; }

}  // namespace gdsm::bench
