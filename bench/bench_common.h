// Shared helpers for the table/figure reproduction binaries.
//
// Every bench prints its human-readable tables AND (with --json=<path>)
// writes the machine-readable obs::RunReport counterpart; the schema is
// documented in docs/METRICS.md and the per-bench files are aggregated into
// BENCH_baseline.json by bench/run_all.sh + tools/merge_reports.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/sim_strategies.h"
#include "obs/report.h"
#include "util/args.h"
#include "util/table.h"

namespace gdsm::bench {

/// Standard header each bench prints, naming the experiment it regenerates.
/// The build line carries the git describe and report schema version so a
/// human transcript can be correlated with the JSON reports it ran next to.
inline void banner(const std::string& experiment, const std::string& what) {
  std::cout << "############################################################\n"
            << "# " << experiment << "\n"
            << "# " << what << "\n"
            << "# platform model: 8x Pentium II 350 MHz / 100 Mbps Ethernet /\n"
            << "# JIAJIA DSM (calibrated simulator; see EXPERIMENTS.md)\n"
            << "# build " << obs::build_version() << " · report schema "
            << obs::kReportSchema << " v" << obs::kSchemaVersion << "\n"
            << "############################################################\n";
}

/// "measured (paper N)" cell text.
inline std::string with_paper(double measured, double paper, int precision = 2) {
  return fmt_f(measured, precision) + " (paper " + fmt_f(paper, precision) + ")";
}

inline std::string pct(double x) { return fmt_f(100.0 * x, 0) + "%"; }

/// Writes `report` to the path given by --json=<path>, if any.  Returns the
/// process exit code: 0 on success (or when no --json was requested), 1 when
/// the file could not be written.  Call as the bench's final statement:
///   return bench::emit_report(report, args);
inline int emit_report(const obs::RunReport& report, const Args& args) {
  const std::string path = args.get("json");
  if (path.empty()) return 0;
  if (!report.write_file(path)) return 1;
  std::cout << "[report] wrote " << path << " (" << report.experiment()
            << ", schema v" << obs::kSchemaVersion << ")\n";
  return 0;
}

/// Parses a --key=a,b,c comma-separated size list, with a default.
inline std::vector<std::size_t> size_list(const Args& args,
                                          const std::string& key,
                                          std::vector<std::size_t> def) {
  if (!args.has(key)) return def;
  std::vector<std::size_t> out;
  std::stringstream ss(args.get(key));
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v == 0) {
      std::cerr << "warning: ignoring bad --" << key << " entry '" << tok
                << "'\n";
      continue;
    }
    out.push_back(static_cast<std::size_t>(v));
  }
  return out.empty() ? def : out;
}

}  // namespace gdsm::bench
