// google-benchmark micro-benchmarks of the DP kernels on the build host.
#include <benchmark/benchmark.h>

#include "gbench_json.h"
#include "sw/full_matrix.h"
#include "sw/heuristic_scan.h"
#include "sw/hirschberg.h"
#include "sw/linear_score.h"
#include "sw/reverse_rebuild.h"
#include "util/genome.h"
#include "util/rng.h"

namespace {

using namespace gdsm;

std::pair<Sequence, Sequence> inputs(std::size_t n) {
  Rng rng(2025);
  return {random_dna(n, rng, "s"), random_dna(n, rng, "t")};
}

void BM_FullMatrixSW(benchmark::State& state) {
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    MatrixBest best;
    benchmark::DoNotOptimize(sw_fill(s, t, ScoreScheme{}, &best));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_FullMatrixSW)->Arg(256)->Arg(1024);

void BM_LinearScoreSW(benchmark::State& state) {
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw_best_score_linear(s, t));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_LinearScoreSW)->Arg(256)->Arg(1024)->Arg(4096);

void BM_HeuristicScan(benchmark::State& state) {
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristic_scan(s, t));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_HeuristicScan)->Arg(256)->Arg(1024)->Arg(4096);

void BM_NeedlemanWunsch(benchmark::State& state) {
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(needleman_wunsch(s, t));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_NeedlemanWunsch)->Arg(253)->Arg(1024);

void BM_Hirschberg(benchmark::State& state) {
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hirschberg(s, t));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_Hirschberg)->Arg(253)->Arg(1024);

void BM_ReverseRebuild(benchmark::State& state) {
  HomologousPairSpec spec;
  spec.length_s = static_cast<std::size_t>(state.range(0)) * 3;
  spec.length_t = spec.length_s;
  spec.n_regions = 1;
  spec.region_len_mean = static_cast<std::size_t>(state.range(0));
  spec.region_len_spread = 10;
  spec.seed = 77;
  const HomologousPair pair = make_homologous_pair(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rebuild_best_local_alignment(pair.s, pair.t));
  }
}
BENCHMARK(BM_ReverseRebuild)->Arg(128)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  return gdsm::bench::gbench_main(
      argc, argv, "kernels_sw",
      "Microbenchmarks — DP kernels on the build host");
}
