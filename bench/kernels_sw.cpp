// google-benchmark micro-benchmarks of the DP kernels on the build host.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "gbench_json.h"
#include "simd/dispatch.h"
#include "sw/full_matrix.h"
#include "sw/heuristic_scan.h"
#include "sw/hirschberg.h"
#include "sw/linear_score.h"
#include "sw/reverse_rebuild.h"
#include "util/genome.h"
#include "util/rng.h"

namespace {

using namespace gdsm;

std::pair<Sequence, Sequence> inputs(std::size_t n) {
  Rng rng(2025);
  return {random_dna(n, rng, "s"), random_dna(n, rng, "t")};
}

// items_per_second and the explicit cells_per_second counter both report DP
// cell updates (m*n per iteration), so GCUPS reads straight off the report.
void set_cell_rate(benchmark::State& state) {
  const double cells = static_cast<double>(state.range(0)) *
                       static_cast<double>(state.range(0));
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
  state.counters["cells_per_second"] =
      benchmark::Counter(cells, benchmark::Counter::kIsIterationInvariantRate);
}

// Pins the dispatch to `backend` for the run (the unsuffixed benchmarks use
// whatever the dispatch auto-picked, i.e. the numbers a user actually gets).
class ForcedBackend {
 public:
  explicit ForcedBackend(simd::Backend b) : prev_(simd::active_backend()) {
    ok_ = simd::force_backend(b) == b;
  }
  ~ForcedBackend() { simd::force_backend(prev_); }
  bool ok() const { return ok_; }

 private:
  simd::Backend prev_;
  bool ok_ = false;
};

void BM_FullMatrixSW(benchmark::State& state) {
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    MatrixBest best;
    benchmark::DoNotOptimize(sw_fill(s, t, ScoreScheme{}, &best));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_FullMatrixSW)->Arg(256)->Arg(1024);

void BM_LinearScoreSW(benchmark::State& state) {
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw_best_score_linear(s, t));
  }
  set_cell_rate(state);
}
BENCHMARK(BM_LinearScoreSW)->Arg(256)->Arg(1024)->Arg(4096);

void BM_LinearScoreSWBackend(benchmark::State& state, simd::Backend backend) {
  ForcedBackend forced(backend);
  if (!forced.ok()) {
    state.SkipWithError("backend unavailable on this host");
    return;
  }
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw_best_score_linear(s, t));
  }
  set_cell_rate(state);
}

// The affine (Gotoh) route through the very same entry point: a nonzero
// gap_open sends sw_best_score_linear to the three-matrix E/F/H sweep.
// GCUPS here divided by BM_LinearScoreSW's is the affine cell-cost factor
// the service CostModel prices (src/sim/cost_model.h).
ScoreScheme affine_scheme() {
  ScoreScheme sc;
  sc.gap_open = -3;
  return sc;
}

void BM_AffineScoreSW(benchmark::State& state) {
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  const ScoreScheme sc = affine_scheme();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw_best_score_linear(s, t, sc));
  }
  set_cell_rate(state);
}
BENCHMARK(BM_AffineScoreSW)->Arg(256)->Arg(1024)->Arg(4096);

void BM_AffineScoreSWBackend(benchmark::State& state, simd::Backend backend) {
  ForcedBackend forced(backend);
  if (!forced.ok()) {
    state.SkipWithError("backend unavailable on this host");
    return;
  }
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  const ScoreScheme sc = affine_scheme();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw_best_score_linear(s, t, sc));
  }
  set_cell_rate(state);
}

void BM_ScanHits(benchmark::State& state) {
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::uint64_t hits = 0;
    sw_scan_hits(s, t, ScoreScheme{}, /*threshold=*/25,
                 [&](std::size_t, std::size_t, int) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
  set_cell_rate(state);
}
BENCHMARK(BM_ScanHits)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ScanHitsBackend(benchmark::State& state, simd::Backend backend) {
  ForcedBackend forced(backend);
  if (!forced.ok()) {
    state.SkipWithError("backend unavailable on this host");
    return;
  }
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::uint64_t hits = 0;
    sw_scan_hits(s, t, ScoreScheme{}, /*threshold=*/25,
                 [&](std::size_t, std::size_t, int) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
  set_cell_rate(state);
}

void BM_HeuristicScan(benchmark::State& state) {
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristic_scan(s, t));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_HeuristicScan)->Arg(256)->Arg(1024)->Arg(4096);

void BM_NeedlemanWunsch(benchmark::State& state) {
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(needleman_wunsch(s, t));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_NeedlemanWunsch)->Arg(253)->Arg(1024);

void BM_Hirschberg(benchmark::State& state) {
  const auto [s, t] = inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hirschberg(s, t));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0));
}
BENCHMARK(BM_Hirschberg)->Arg(253)->Arg(1024);

void BM_ReverseRebuild(benchmark::State& state) {
  HomologousPairSpec spec;
  spec.length_s = static_cast<std::size_t>(state.range(0)) * 3;
  spec.length_t = spec.length_s;
  spec.n_regions = 1;
  spec.region_len_mean = static_cast<std::size_t>(state.range(0));
  spec.region_len_spread = 10;
  spec.seed = 77;
  const HomologousPair pair = make_homologous_pair(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rebuild_best_local_alignment(pair.s, pair.t));
  }
}
BENCHMARK(BM_ReverseRebuild)->Arg(128)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  // One suffixed variant per backend this host can run, next to the
  // unsuffixed (auto-dispatched) benchmarks registered above.
  for (const gdsm::simd::Backend b : gdsm::simd::available_backends()) {
    const std::string suffix = gdsm::simd::backend_name(b);
    benchmark::RegisterBenchmark(("BM_LinearScoreSW_" + suffix).c_str(),
                                 BM_LinearScoreSWBackend, b)
        ->Arg(256)
        ->Arg(1024)
        ->Arg(4096);
    benchmark::RegisterBenchmark(("BM_AffineScoreSW_" + suffix).c_str(),
                                 BM_AffineScoreSWBackend, b)
        ->Arg(256)
        ->Arg(1024)
        ->Arg(4096);
    benchmark::RegisterBenchmark(("BM_ScanHits_" + suffix).c_str(),
                                 BM_ScanHitsBackend, b)
        ->Arg(256)
        ->Arg(1024)
        ->Arg(4096);
  }
  // run_all.sh's BENCH_KERNELS axis re-runs this bench under GDSM_KERNEL
  // forcings; a forced run gets a suffixed experiment id so its rows sit
  // next to the auto-dispatched run in the merged baseline instead of
  // colliding with it (same idiom as ablation_comm_process).
  std::string experiment = "kernels_sw";
  if (std::getenv("GDSM_KERNEL") != nullptr)
    experiment += std::string("_") + gdsm::simd::active_backend_name();
  return gdsm::bench::gbench_main(
      argc, argv, experiment,
      "Microbenchmarks — DP kernels on the build host");
}
