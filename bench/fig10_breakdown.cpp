// Fig. 10: execution-time breakdown (computation / communication / lock+cv /
// barrier) of the non-blocked heuristic strategy on 8 processors.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace gdsm;
  using sim::Cat;
  bench::banner("Figure 10",
                "Execution time breakdown for 5 sequence sizes (relative time "
                "in computation, communication, lock+cv, barrier), 8 procs");

  TextTable table("Figure 10 — per-node average breakdown (% of total)");
  table.set_header({"Size", "computation", "communication", "lock+cv",
                    "barrier"});
  for (const std::size_t n : std::vector<std::size_t>{15'000, 50'000, 80'000,
                                                      150'000, 400'000}) {
    const core::SimReport rep = core::sim_wavefront(n, n, 8);
    const double total = rep.average.total();
    table.add_row({std::to_string(n / 1000) + "K",
                   bench::pct(rep.average[Cat::kCompute] / total),
                   bench::pct(rep.average[Cat::kComm] / total),
                   bench::pct(rep.average[Cat::kLockCv] / total),
                   bench::pct(rep.average[Cat::kBarrier] / total)});
  }
  table.print(std::cout);
  std::cout << "Shape checks: computation share grows with sequence size;\n"
               "the lock+cv handshake is the dominant overhead at small sizes\n"
               "(the per-row border communication of Section 4.2).\n";
  return 0;
}
