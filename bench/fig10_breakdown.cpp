// Fig. 10: execution-time breakdown (computation / communication / lock+cv /
// barrier) of the non-blocked heuristic strategy on 8 processors.
//
// --sizes=a,b,c overrides the sequence-size sweep (the bench_smoke ctest
// runs tiny sizes); --json=<path> writes the machine-readable report.
#include <iostream>

#include "bench_common.h"
#include "core/report_io.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  using sim::Cat;
  const Args args(argc, argv);
  bench::banner("Figure 10",
                "Execution time breakdown for 5 sequence sizes (relative time "
                "in computation, communication, lock+cv, barrier), 8 procs");

  const std::vector<std::size_t> sizes = bench::size_list(
      args, "sizes", {15'000, 50'000, 80'000, 150'000, 400'000});
  constexpr int kProcs = 8;

  obs::RunReport report("fig10_breakdown",
                        "Figure 10 — per-node average execution-time "
                        "breakdown, 8 processors");
  {
    obs::Json sj = obs::Json::array();
    for (const std::size_t n : sizes) sj.push(n);
    report.set_param("sizes", std::move(sj));
    report.set_param("procs", kProcs);
  }

  TextTable table("Figure 10 — per-node average breakdown (% of total)");
  table.set_header({"Size", "computation", "communication", "lock+cv",
                    "barrier"});
  for (const std::size_t n : sizes) {
    const core::SimReport rep = core::sim_wavefront(n, n, kProcs);
    const double total = rep.average.total();
    table.add_row({std::to_string(n / 1000) + "K",
                   bench::pct(rep.average[Cat::kCompute] / total),
                   bench::pct(rep.average[Cat::kComm] / total),
                   bench::pct(rep.average[Cat::kLockCv] / total),
                   bench::pct(rep.average[Cat::kBarrier] / total)});

    obs::Json row = obs::Json::object();
    row.set("size", n);
    row.set("procs", kProcs);
    obs::Json shares = obs::Json::object();
    shares.set("computation", rep.average[Cat::kCompute] / total);
    shares.set("communication", rep.average[Cat::kComm] / total);
    shares.set("lock_cv", rep.average[Cat::kLockCv] / total);
    shares.set("barrier", rep.average[Cat::kBarrier] / total);
    row.set("shares", std::move(shares));
    row.set("sim", core::sim_report_json(rep, /*per_node=*/true));
    report.add_row("breakdowns", std::move(row));
  }
  table.print(std::cout);
  std::cout << "Shape checks: computation share grows with sequence size;\n"
               "the lock+cv handshake is the dominant overhead at small sizes\n"
               "(the per-row border communication of Section 4.2).\n";
  return bench::emit_report(report, args);
}
