// Table 1: total execution times (s) of the heuristic strategy WITHOUT
// blocking factors, for five sequence sizes and 1/2/4/8 processors.
#include <iostream>

#include "bench_common.h"
#include "core/report_io.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  bench::banner("Table 1",
                "Total execution times (s) for 5 sequence sizes, heuristic "
                "strategy without blocking factors (Section 4.2)");

  struct Row {
    std::size_t n;
    double paper[4];
  };
  const Row rows[] = {
      {15'000, {296, 283.18, 202.18, 181.29}},
      {50'000, {3461, 2884.15, 1669.53, 1107.02}},
      {80'000, {7967, 6094.18, 3370.40, 2162.82}},
      {150'000, {24107, 19522.95, 10377.89, 5991.79}},
      {400'000, {175295, 141840.98, 72770.99, 38206.84}},
  };
  const int procs[] = {1, 2, 4, 8};

  obs::RunReport report("table1_heuristic_times",
                        "Table 1 — total execution times (s), heuristic "
                        "strategy without blocking factors");

  TextTable table("Table 1 — total execution times (s), measured (paper)");
  table.set_header({"Size (n x n)", "Serial", "2 proc", "4 proc", "8 proc"});
  for (const Row& row : rows) {
    std::vector<std::string> cells{std::to_string(row.n / 1000) + "K x " +
                                   std::to_string(row.n / 1000) + "K"};
    for (int k = 0; k < 4; ++k) {
      const core::SimReport rep = core::sim_wavefront(row.n, row.n, procs[k]);
      cells.push_back(bench::with_paper(rep.total_s, row.paper[k], 0));

      obs::Json rec = obs::Json::object();
      rec.set("size", row.n);
      rec.set("procs", procs[k]);
      rec.set("total_s", rep.total_s);
      rec.set("paper_s", row.paper[k]);
      rec.set("sim", core::sim_report_json(rep));
      report.add_row("times", std::move(rec));
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);
  std::cout << "Shape checks: serial grows ~quadratically; parallel gains are\n"
               "modest at 15K and improve with sequence size (see Fig. 9).\n";
  return bench::emit_report(report, args);
}
