// Table 2: comparison between the coordinates of the best alignments found
// by GenomeDSM (the heuristic DP strategies) and by BlastN.
//
// The paper ran two ~50 kBP mitochondrial genomes (Allomyces macrogynus and
// Chaetosphaeridium globosum, from NCBI).  Offline, we substitute a
// synthetic pair of "mitochondria-like" sequences with planted homologies
// (see DESIGN.md), which preserves the experiment's point: both programs
// find the same similarity regions, with begin/end coordinates that are
// CLOSE BUT NOT IDENTICAL, because the two heuristics use different
// parameters (scoring regimes, extension rules).
//
// Default size is 20 kBP so the whole bench suite stays fast; pass
// --size=50000 for the paper-scale run.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "blast/blastn.h"
#include "sw/heuristic_scan.h"
#include "util/args.h"
#include "util/genome.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  const auto size = static_cast<std::size_t>(args.get_int("size", 20'000));

  bench::banner("Table 2",
                "GenomeDSM vs BlastN best-alignment coordinates on a "
                "synthetic mitochondria-like pair (" +
                    std::to_string(size / 1000) + " kBP)");

  HomologousPairSpec spec;
  spec.length_s = size;
  spec.length_t = size;
  spec.n_regions = 6;
  spec.region_len_mean = 400;
  spec.region_len_spread = 120;
  spec.substitution_rate = 0.06;
  spec.indel_rate = 0.012;
  spec.seed = 20050517;  // deterministic workload
  const HomologousPair pair = make_homologous_pair(spec);

  obs::RunReport report("table2_vs_blastn",
                        "Table 2 — GenomeDSM vs BlastN best alignments");
  report.set_param("size", size);
  report.set_param("host_clock", true);

  Timer timer;
  HeuristicParams params;
  params.min_report_score = 60;
  const auto raw_queue = heuristic_scan(pair.s, pair.t, ScoreScheme{}, params);
  const double t_gdsm = timer.seconds();
  // The scan closes the same alignment at many nearby cells; reduce the
  // queue to distinct regions before comparing coordinates.
  const auto queue = cull_overlapping_candidates(raw_queue, 32);

  timer.reset();
  const auto hits = blast::blastn(pair.s, pair.t);
  const double t_blast = timer.seconds();

  // Table 2 compares coordinates of alignments BOTH programs report, so
  // walk the GenomeDSM queue (best first) and show the first three regions
  // that BlastN also found.
  TextTable table("Table 2 — best alignments: GenomeDSM vs BlastN");
  table.set_header({"Alignment", "", "GenomeDSM", "BlastN"});
  std::size_t shown = 0;
  for (const Candidate& c : queue) {
    if (shown == 3) break;
    const auto it = std::find_if(hits.begin(), hits.end(), [&](const auto& h) {
      return h.s_end >= c.s_begin && h.s_begin <= c.s_end &&
             h.t_end >= c.t_begin && h.t_begin <= c.t_end;
    });
    if (it == hits.end()) continue;
    ++shown;
    const std::string name = "Alignment " + std::to_string(shown);
    table.add_row({name, "Begin",
                   "(" + std::to_string(c.s_begin) + "," +
                       std::to_string(c.t_begin) + ")",
                   "(" + std::to_string(it->s_begin) + "," +
                       std::to_string(it->t_begin) + ")"});
    table.add_row({"", "End",
                   "(" + std::to_string(c.s_end) + "," +
                       std::to_string(c.t_end) + ")",
                   "(" + std::to_string(it->s_end) + "," +
                       std::to_string(it->t_end) + ")"});

    const auto coord = [](std::size_t a, std::size_t b) {
      obs::Json pt = obs::Json::array();
      pt.push(a);
      pt.push(b);
      return pt;
    };
    obs::Json rec = obs::Json::object();
    rec.set("alignment", shown);
    rec.set("gdsm_begin", coord(c.s_begin, c.t_begin));
    rec.set("gdsm_end", coord(c.s_end, c.t_end));
    rec.set("blast_begin", coord(it->s_begin, it->t_begin));
    rec.set("blast_end", coord(it->s_end, it->t_end));
    report.add_row("alignments", std::move(rec));
  }
  table.print(std::cout);

  std::size_t agree = 0;
  for (const Candidate& c : queue) {
    agree += std::any_of(hits.begin(), hits.end(), [&](const auto& h) {
      return h.s_end >= c.s_begin && h.s_begin <= c.s_end &&
             h.t_end >= c.t_begin && h.t_begin <= c.t_end;
    });
  }
  std::cout << "GenomeDSM regions: " << queue.size() << " (culled from "
            << raw_queue.size() << " raw candidates)  BlastN hits: "
            << hits.size() << "  overlapping: " << agree << "\n";
  std::cout << "Wall clock on this host: GenomeDSM " << fmt_f(t_gdsm, 2)
            << " s, mini-BlastN " << fmt_f(t_blast, 2) << " s\n";
  std::cout << "Shape check (paper): the two programs report the same regions\n"
               "with close but not identical coordinates, since both are\n"
               "heuristics with different parameters.\n";

  report.metrics().set("gdsm_regions", queue.size());
  report.metrics().set("gdsm_raw_candidates", raw_queue.size());
  report.metrics().set("blast_hits", hits.size());
  report.metrics().set("overlapping_regions", agree);
  report.metrics().set("t_gdsm_s", t_gdsm);
  report.metrics().set("t_blast_s", t_blast);
  return bench::emit_report(report, args);
}
