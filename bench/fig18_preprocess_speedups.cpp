// Fig. 18: speed-ups of the pre-process (exact) strategy, on the AVERAGE
// core time over the blocking configurations and on the BEST core time.
#include <algorithm>
#include <iostream>
#include <limits>
#include <vector>

#include "bench_common.h"
#include "core/report_io.h"

namespace {

// The Fig. 19 configuration set (no I/O): balanced/equal/fixed band sizing
// with 1K and 4K blocking parameters.
std::vector<gdsm::core::SimPreprocessOptions> config_set() {
  using namespace gdsm::core;
  std::vector<SimPreprocessOptions> out;
  for (const std::size_t rows : {1024u, 4096u}) {
    for (const BandScheme scheme :
         {BandScheme::kBalanced, BandScheme::kEven, BandScheme::kFixed}) {
      SimPreprocessOptions opt;
      opt.band_scheme = scheme;
      opt.band_rows = rows;
      out.push_back(opt);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  bench::banner("Figure 18",
                "Speed-up of the pre-process strategy on the average core "
                "time (all blocking configurations) and on the best core "
                "time (Section 5.1)");

  const std::size_t sizes[] = {16'384, 40'960, 81'920};
  const auto configs = config_set();

  obs::RunReport report("fig18_preprocess_speedups",
                        "Figure 18 — pre-process strategy speed-ups on "
                        "average and best core times");
  report.set_param("configurations", configs.size());

  TextTable avg("Figure 18 (left) — speed-up on the AVERAGE core time");
  avg.set_header({"Size", "2 proc", "4 proc", "8 proc"});
  TextTable best("Figure 18 (right) — speed-up on the BEST core time");
  best.set_header({"Size", "2 proc", "4 proc", "8 proc"});

  for (const std::size_t n : sizes) {
    auto stats = [&](int procs) {
      double sum = 0;
      double mn = std::numeric_limits<double>::max();
      for (const auto& cfg : configs) {
        const double t = core::sim_preprocess(n, n, procs, cfg).core_s;
        sum += t;
        mn = std::min(mn, t);
      }
      return std::pair{sum / static_cast<double>(configs.size()), mn};
    };
    const auto [avg1, best1] = stats(1);
    std::vector<std::string> arow{std::to_string(n / 1024) + "K seq"};
    std::vector<std::string> brow{std::to_string(n / 1024) + "K seq"};
    for (int p : {2, 4, 8}) {
      const auto [avgp, bestp] = stats(p);
      arow.push_back(fmt_f(avg1 / avgp, 2));
      brow.push_back(fmt_f(best1 / bestp, 2));

      obs::Json rec = obs::Json::object();
      rec.set("size", n);
      rec.set("procs", p);
      rec.set("avg_speedup", avg1 / avgp);
      rec.set("best_speedup", best1 / bestp);
      rec.set("avg_core_s", avgp);
      rec.set("best_core_s", bestp);
      rec.set("serial_avg_core_s", avg1);
      rec.set("serial_best_core_s", best1);
      report.add_row("speedups", std::move(rec));
    }
    avg.add_row(std::move(arow));
    best.add_row(std::move(brow));
  }
  avg.print(std::cout);
  best.print(std::cout);
  std::cout
      << "Shape checks (paper): speed-ups roughly 75% of linear on averages\n"
         "and near 80% on best times; the 16K/8-proc average dips because\n"
         "the 4K-band configurations leave processors idle (only 4 bands);\n"
         "2-node speed-ups are slightly worse since the serial run has no\n"
         "DSM overhead at all.\n";
  return bench::emit_report(report, args);
}
