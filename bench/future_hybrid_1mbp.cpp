// Section 7 future work, projected: comparing sequences LARGER THAN 1 MBP
// on a heterogeneous federation of clusters — message passing between
// clusters, DSM within each cluster.
#include <iostream>

#include "bench_common.h"
#include "core/sim_hybrid.h"

int main() {
  using namespace gdsm;
  bench::banner("Future work (Section 7)",
                "1 MBP x 1 MBP comparison on a hybrid MP/DSM federation of "
                "workstation clusters (blocked heuristic strategy)");

  constexpr std::size_t n = 1'000'000;

  const core::SimReport serial = core::sim_blocked(n, n, 1, 80, 80);
  std::cout << "Serial reference (one Pentium II): " << fmt_f(serial.total_s, 0)
            << " s = " << fmt_f(serial.total_s / 86400.0, 1) << " days\n\n";

  TextTable table("Hybrid federation configurations");
  table.set_header({"configuration", "time (s)", "hours", "speedup",
                    "efficiency"});
  auto add = [&](const std::string& label, const core::HybridSpec& spec,
                 double weight_capacity) {
    const core::SimReport rep = core::sim_hybrid_blocked(n, n, spec);
    table.add_row({label, fmt_f(rep.total_s, 0), fmt_f(rep.total_s / 3600, 1),
                   fmt_f(serial.total_s / rep.total_s, 2),
                   bench::pct(serial.total_s / rep.total_s / weight_capacity)});
  };

  {
    core::HybridSpec spec;
    spec.clusters = 1;
    spec.nodes_per_cluster = 8;
    add("1 cluster x 8 nodes (the paper's testbed)", spec, 8);
  }
  {
    core::HybridSpec spec;
    spec.clusters = 2;
    spec.nodes_per_cluster = 8;
    spec.inter_latency_s = 1e-3;
    add("2 x 8 nodes, 1 ms backbone", spec, 16);
  }
  {
    core::HybridSpec spec;
    spec.clusters = 2;
    spec.nodes_per_cluster = 8;
    spec.inter_latency_s = 20e-3;
    add("2 x 8 nodes, 20 ms metro link", spec, 16);
  }
  {
    core::HybridSpec spec;
    spec.clusters = 4;
    spec.nodes_per_cluster = 8;
    spec.inter_latency_s = 2e-3;
    add("4 x 8 nodes, 2 ms backbone", spec, 32);
  }
  {
    core::HybridSpec spec;
    spec.clusters = 2;
    spec.nodes_per_cluster = 8;
    spec.speeds = {1.0, 2.0};
    add("heterogeneous 8 + 8 (2x faster), round-robin bands", spec, 24);
  }
  {
    core::HybridSpec spec;
    spec.clusters = 2;
    spec.nodes_per_cluster = 8;
    spec.speeds = {1.0, 2.0};
    spec.weighted_bands = true;
    add("heterogeneous 8 + 8 (2x faster), speed-weighted bands", spec, 24);
  }
  table.print(std::cout);

  std::cout
      << "Reading: a second 8-node cluster nearly doubles throughput even\n"
         "over a multi-ms link (the blocked strategy ships one boundary\n"
         "segment per block, so inter-cluster latency amortizes); with\n"
         "heterogeneous hardware, naive round-robin band assignment wastes\n"
         "the fast cluster, and speed-weighted assignment recovers it.\n"
         "Efficiency is speedup / total capacity (node-speed-weighted).\n";
  return 0;
}
