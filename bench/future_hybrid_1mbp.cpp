// Section 7 future work, projected: comparing sequences LARGER THAN 1 MBP
// on a heterogeneous federation of clusters — message passing between
// clusters, DSM within each cluster.
#include <iostream>

#include "bench_common.h"
#include "core/report_io.h"
#include "core/sim_hybrid.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  bench::banner("Future work (Section 7)",
                "1 MBP x 1 MBP comparison on a hybrid MP/DSM federation of "
                "workstation clusters (blocked heuristic strategy)");

  constexpr std::size_t n = 1'000'000;

  obs::RunReport report("future_hybrid_1mbp",
                        "Section 7 projection — 1 MBP pair on hybrid MP/DSM "
                        "cluster federations");
  report.set_param("size", n);

  const core::SimReport serial = core::sim_blocked(n, n, 1, 80, 80);
  std::cout << "Serial reference (one Pentium II): " << fmt_f(serial.total_s, 0)
            << " s = " << fmt_f(serial.total_s / 86400.0, 1) << " days\n\n";
  report.metrics().set("serial_total_s", serial.total_s);

  TextTable table("Hybrid federation configurations");
  table.set_header({"configuration", "time (s)", "hours", "speedup",
                    "efficiency"});
  auto add = [&](const std::string& label, const core::HybridSpec& spec,
                 double weight_capacity) {
    const core::SimReport rep = core::sim_hybrid_blocked(n, n, spec);
    const double speedup = serial.total_s / rep.total_s;
    table.add_row({label, fmt_f(rep.total_s, 0), fmt_f(rep.total_s / 3600, 1),
                   fmt_f(speedup, 2), bench::pct(speedup / weight_capacity)});

    obs::Json rec = obs::Json::object();
    rec.set("configuration", label);
    rec.set("clusters", spec.clusters);
    rec.set("nodes_per_cluster", spec.nodes_per_cluster);
    rec.set("inter_latency_s", spec.inter_latency_s);
    rec.set("weighted_bands", spec.weighted_bands);
    rec.set("total_s", rep.total_s);
    rec.set("speedup", speedup);
    rec.set("capacity", weight_capacity);
    rec.set("efficiency", speedup / weight_capacity);
    rec.set("sim", core::sim_report_json(rep));
    report.add_row("configurations", std::move(rec));
  };

  {
    core::HybridSpec spec;
    spec.clusters = 1;
    spec.nodes_per_cluster = 8;
    add("1 cluster x 8 nodes (the paper's testbed)", spec, 8);
  }
  {
    core::HybridSpec spec;
    spec.clusters = 2;
    spec.nodes_per_cluster = 8;
    spec.inter_latency_s = 1e-3;
    add("2 x 8 nodes, 1 ms backbone", spec, 16);
  }
  {
    core::HybridSpec spec;
    spec.clusters = 2;
    spec.nodes_per_cluster = 8;
    spec.inter_latency_s = 20e-3;
    add("2 x 8 nodes, 20 ms metro link", spec, 16);
  }
  {
    core::HybridSpec spec;
    spec.clusters = 4;
    spec.nodes_per_cluster = 8;
    spec.inter_latency_s = 2e-3;
    add("4 x 8 nodes, 2 ms backbone", spec, 32);
  }
  {
    core::HybridSpec spec;
    spec.clusters = 2;
    spec.nodes_per_cluster = 8;
    spec.speeds = {1.0, 2.0};
    add("heterogeneous 8 + 8 (2x faster), round-robin bands", spec, 24);
  }
  {
    core::HybridSpec spec;
    spec.clusters = 2;
    spec.nodes_per_cluster = 8;
    spec.speeds = {1.0, 2.0};
    spec.weighted_bands = true;
    add("heterogeneous 8 + 8 (2x faster), speed-weighted bands", spec, 24);
  }
  table.print(std::cout);

  std::cout
      << "Reading: a second 8-node cluster nearly doubles throughput even\n"
         "over a multi-ms link (the blocked strategy ships one boundary\n"
         "segment per block, so inter-cluster latency amortizes); with\n"
         "heterogeneous hardware, naive round-robin band assignment wastes\n"
         "the fast cluster, and speed-weighted assignment recovers it.\n"
         "Efficiency is speedup / total capacity (node-speed-weighted).\n";
  return bench::emit_report(report, args);
}
