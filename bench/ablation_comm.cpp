// Ablation: the DSM data plane (diff batching, bulk page fetch, sequential
// read-ahead) on real threaded runs of the fig9/fig13 strategies with a
// DSM-resident subject.  The aggregation is the page-level counterpart of
// the paper's block-aggregation lesson (Section 4.3): one exchange per batch
// of pages instead of one blocking round-trip per page.
//
// A "round trip" here is a blocking data-plane request: kGetPage, kDiff,
// kGetPages or kDiffBatch.  The acceptance bar for the batched plane is a
// >= 2x round-trip reduction on the fig13 (blocked) workload.
//
// Default pair size is 4 kBP; pass --size= to change it.  --backend=
// (threads|process) picks the DSM execution backend: the process backend
// runs the same modes across forked node processes (shm pages, SIGSEGV
// fetch-on-fault, socket transport), so the ablation doubles as the
// threads-vs-process comparison in the baseline (schema v8).
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/blocked.h"
#include "core/report_io.h"
#include "core/wavefront.h"
#include "dsm/backend.h"
#include "dsm/cluster.h"
#include "net/transport.h"
#include "obs/snapshots.h"
#include "util/genome.h"
#include "util/timer.h"

namespace {

using namespace gdsm;

/// Blocking data-plane requests of a run: one per page fault, diff, bulk
/// fetch or diff batch (lock/cv/barrier control traffic is not a data-plane
/// round trip and is identical across modes).
std::uint64_t round_trips(const net::TrafficCounters& tc) {
  const auto n = [&](net::MsgType t) {
    return tc.messages[static_cast<std::size_t>(t)];
  };
  return n(net::MsgType::kGetPage) + n(net::MsgType::kDiff) +
         n(net::MsgType::kGetPages) + n(net::MsgType::kDiffBatch);
}

struct ModeRun {
  const char* mode;
  double seconds = 0.0;
  std::uint64_t trips = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  core::StrategyResult result;
};

dsm::CommConfig mode_config(const std::string& mode) {
  dsm::CommConfig comm;  // "batched": coalescing on, no read-ahead
  if (mode == "legacy") {
    comm.batch_diffs = false;
    comm.bulk_fetch = false;
    comm.prefetch_pages = 0;
  } else if (mode == "batched+prefetch") {
    comm.prefetch_pages = 4;
  }
  return comm;
}

/// One cold run of `strategy` ("wavefront" = fig9, "blocked" = fig13) on a
/// fresh cluster whose nodes pull the DSM-resident subject, under `mode`
/// and `backend`.
ModeRun run_workload(const std::string& strategy, const HomologousPair& pair,
                     int procs, const char* mode, dsm::Backend backend) {
  dsm::DsmConfig dcfg;
  // Small pages make the data-plane granularity visible at bench-friendly
  // sequence sizes (a 4 kBP subject is a single 4 KiB page, but 16+ pages
  // here); the ratio between modes, not 1998 wall time, is the measurement.
  dcfg.page_bytes = 256;
  dcfg.comm = mode_config(mode);
  dcfg.backend = backend;
  dsm::Cluster cluster(procs, dcfg);
  const std::size_t bytes = pair.t.size() * sizeof(Base);
  const dsm::GlobalAddr subject = cluster.alloc_striped(bytes);
  cluster.host_write(subject, pair.t.data(), bytes);
  cluster.retain_range(subject, bytes);

  ModeRun out;
  out.mode = mode;
  Timer timer;
  if (strategy == "wavefront") {
    core::WavefrontConfig cfg;
    cfg.nprocs = procs;
    cfg.cluster = &cluster;
    cfg.resident_t_addr = subject;
    cfg.resident_t_size = pair.t.size();
    out.result = core::wavefront_align(pair.s, pair.t, cfg);
  } else {
    core::BlockedConfig cfg;
    cfg.nprocs = procs;
    cfg.cluster = &cluster;
    cfg.resident_t_addr = subject;
    cfg.resident_t_size = pair.t.size();
    out.result = core::blocked_align(pair.s, pair.t, cfg);
  }
  out.seconds = timer.seconds();
  const net::TrafficCounters traffic = out.result.dsm_stats.total_traffic();
  out.trips = round_trips(traffic);
  out.messages = traffic.total_messages();
  out.bytes = traffic.total_bytes();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto size = static_cast<std::size_t>(args.get_int("size", 4'000));
  const int procs = args.get_int("procs", 4);
  const std::string backend_arg = args.get("backend", "threads");
  if (backend_arg != "threads" && backend_arg != "process") {
    std::cerr << "ablation_comm: --backend=" << backend_arg
              << " unknown (threads|process)\n";
    return 2;
  }
  const dsm::Backend backend = backend_arg == "process"
                                   ? dsm::Backend::kProcess
                                   : dsm::Backend::kThreads;
  bench::banner("Ablation — DSM data plane (" + backend_arg + " backend)",
                "legacy vs batched vs batched+prefetch on the fig9/fig13 "
                "workloads (real " +
                    backend_arg + "-backend runs, DSM-resident subject, " +
                    std::to_string(size / 1000) + " kBP pair)");

  HomologousPairSpec spec;
  spec.length_s = size;
  spec.length_t = size;
  spec.n_regions = 4;
  spec.region_len_mean = 200;
  spec.region_len_spread = 40;
  spec.seed = 1905;
  const HomologousPair pair = make_homologous_pair(spec);

  // A distinct experiment id per backend keeps both runs side by side in
  // the merged baseline (merge_reports rejects duplicate ids).
  const std::string experiment =
      backend == dsm::Backend::kProcess ? "ablation_comm_process"
                                        : "ablation_comm";
  obs::RunReport report(experiment,
                        "Ablation — DSM data-plane batching and read-ahead (" +
                            backend_arg + " backend)");
  report.set_param("size", size);
  report.set_param("procs", procs);
  report.set_param("page_bytes", 256);
  report.set_param("backend", backend_arg);

  const char* kModes[] = {"legacy", "batched", "batched+prefetch"};
  const struct {
    const char* workload;
    const char* strategy;
  } kWorkloads[] = {{"fig9_wavefront", "wavefront"},
                    {"fig13_blocked", "blocked"}};

  int rc = 0;
  for (const auto& wl : kWorkloads) {
    TextTable table(std::string(wl.workload) + " — data-plane modes");
    table.set_header({"mode", "round trips", "reduction", "messages", "KiB",
                      "wall (s)", "results equal"});
    std::vector<ModeRun> runs;
    for (const char* mode : kModes) {
      runs.push_back(run_workload(wl.strategy, pair, procs, mode, backend));
    }
    const ModeRun& legacy = runs.front();
    for (const ModeRun& run : runs) {
      const bool equal = run.result.candidates == legacy.result.candidates;
      if (!equal) rc = 1;  // the plane must never change the answer
      const double reduction =
          run.trips > 0 ? static_cast<double>(legacy.trips) /
                              static_cast<double>(run.trips)
                        : 0.0;
      table.add_row({run.mode, std::to_string(run.trips),
                     fmt_f(reduction, 2) + "x", std::to_string(run.messages),
                     std::to_string(run.bytes / 1024), fmt_f(run.seconds, 3),
                     equal ? "yes" : "NO"});

      obs::Json rec = obs::Json::object();
      rec.set("workload", wl.workload);
      rec.set("mode", run.mode);
      rec.set("round_trips", run.trips);
      rec.set("round_trip_reduction", reduction);
      rec.set("messages", run.messages);
      rec.set("bytes", run.bytes);
      rec.set("seconds", run.seconds);
      rec.set("results_equal", equal);
      rec.set("result", core::strategy_result_json(run.result));
      report.add_row("modes", std::move(rec));
    }
    table.print(std::cout);

    const ModeRun& full = runs.back();  // batched+prefetch
    const double reduction = full.trips > 0
                                 ? static_cast<double>(legacy.trips) /
                                       static_cast<double>(full.trips)
                                 : 0.0;
    report.metrics().set(std::string(wl.workload) + "_round_trip_reduction",
                         reduction);
  }

  std::cout
      << "Reading: the legacy plane pays one blocking round trip per page\n"
         "fault and per dirty-page diff; the batched plane ships one\n"
         "kDiffBatch per home and one kGetPages per contiguous remote span,\n"
         "and read-ahead overlaps the remaining fetches with compute.  The\n"
         "candidate queues are identical in every mode.\n";
  // The auto-attached dsm section names the process-wide *default* backend;
  // this bench picks its backend per cluster config, so pin the section to
  // what actually ran (the counters are process-wide totals either way).
  obs::Json dsm_section = obs::dsm_backend_json();
  dsm_section.set("backend", backend_arg);
  report.set_section("dsm", std::move(dsm_section));
  const int emit_rc = bench::emit_report(report, args);
  return rc != 0 ? rc : emit_rc;
}
