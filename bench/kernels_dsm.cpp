// google-benchmark micro-benchmarks of the threaded DSM primitives on the
// build host (functional substrate, not the simulated 1998 cluster).
#include <benchmark/benchmark.h>

#include "dsm/cluster.h"
#include "gbench_json.h"

namespace {

using namespace gdsm::dsm;

void BM_LockUnlockRoundTrip(benchmark::State& state) {
  const auto iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster(2);
    cluster.run([&](Node& node) {
      if (node.id() == 0) {
        for (int i = 0; i < iters; ++i) {
          node.lock(1);
          node.unlock(1);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * iters);
}
BENCHMARK(BM_LockUnlockRoundTrip)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_CvPingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster(2);
    cluster.run([&](Node& node) {
      for (int i = 0; i < rounds; ++i) {
        if (node.id() == 0) {
          node.setcv(0);
          node.waitcv(1);
        } else {
          node.waitcv(0);
          node.setcv(1);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_CvPingPong)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_RemotePageFault(benchmark::State& state) {
  const auto pages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    DsmConfig cfg;
    cfg.cache_pages = 4;  // force re-faults
    Cluster cluster(2, cfg);
    const GlobalAddr arr =
        cluster.alloc(static_cast<std::size_t>(pages) * cfg.page_bytes, 0);
    cluster.run([&](Node& node) {
      if (node.id() == 1) {
        long sum = 0;
        for (int p = 0; p < pages; ++p) {
          sum += node.read<int>(arr + static_cast<GlobalAddr>(p) *
                                          cfg.page_bytes);
        }
        benchmark::DoNotOptimize(sum);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_RemotePageFault)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_BarrierWithDiffs(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster(nodes);
    const GlobalAddr arr =
        cluster.alloc(static_cast<std::size_t>(nodes) * sizeof(int), 0);
    cluster.run([&](Node& node) {
      for (int round = 0; round < 50; ++round) {
        node.write<int>(arr + node.id() * sizeof(int), round);
        node.barrier();
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_BarrierWithDiffs)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return gdsm::bench::gbench_main(
      argc, argv, "kernels_dsm",
      "Microbenchmarks — threaded DSM primitives on the build host");
}
