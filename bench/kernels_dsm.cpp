// google-benchmark micro-benchmarks of the DSM primitives on the build host
// (functional substrate, not the simulated 1998 cluster).  --backend=
// (threads|process) picks the DSM execution backend; run_all.sh's
// BENCH_BACKENDS axis re-runs this bench per backend so the baseline
// carries both primitive-cost rows side by side.
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "dsm/backend.h"
#include "dsm/cluster.h"
#include "gbench_json.h"
#include "obs/snapshots.h"

namespace {

using namespace gdsm::dsm;

/// The execution backend every benchmark's cluster runs on (set in main
/// from --backend before google-benchmark takes over argv).
Backend g_backend = Backend::kThreads;

DsmConfig base_cfg() {
  DsmConfig cfg;
  cfg.backend = g_backend;
  return cfg;
}

void BM_LockUnlockRoundTrip(benchmark::State& state) {
  const auto iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster(2, base_cfg());
    cluster.run([&](Node& node) {
      if (node.id() == 0) {
        for (int i = 0; i < iters; ++i) {
          node.lock(1);
          node.unlock(1);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * iters);
}
BENCHMARK(BM_LockUnlockRoundTrip)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_CvPingPong(benchmark::State& state) {
  const auto rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster(2, base_cfg());
    cluster.run([&](Node& node) {
      for (int i = 0; i < rounds; ++i) {
        if (node.id() == 0) {
          node.setcv(0);
          node.waitcv(1);
        } else {
          node.waitcv(0);
          node.setcv(1);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_CvPingPong)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_RemotePageFault(benchmark::State& state) {
  const auto pages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    DsmConfig cfg = base_cfg();
    cfg.cache_pages = 4;  // force re-faults
    Cluster cluster(2, cfg);
    const GlobalAddr arr =
        cluster.alloc(static_cast<std::size_t>(pages) * cfg.page_bytes, 0);
    cluster.run([&](Node& node) {
      if (node.id() == 1) {
        long sum = 0;
        for (int p = 0; p < pages; ++p) {
          sum += node.read<int>(arr + static_cast<GlobalAddr>(p) *
                                          cfg.page_bytes);
        }
        benchmark::DoNotOptimize(sum);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_RemotePageFault)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_BarrierWithDiffs(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Cluster cluster(nodes, base_cfg());
    const GlobalAddr arr =
        cluster.alloc(static_cast<std::size_t>(nodes) * sizeof(int), 0);
    cluster.run([&](Node& node) {
      for (int round = 0; round < 50; ++round) {
        node.write<int>(arr + node.id() * sizeof(int), round);
        node.barrier();
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_BarrierWithDiffs)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const gdsm::Args args(argc, argv);
  const std::string backend_arg = args.get("backend", "threads");
  if (backend_arg != "threads" && backend_arg != "process") {
    std::cerr << "kernels_dsm: --backend=" << backend_arg
              << " unknown (threads|process)\n";
    return 2;
  }
  g_backend =
      backend_arg == "process" ? Backend::kProcess : Backend::kThreads;

  // Strip --backend before google-benchmark sees argv (it rejects unknown
  // flags; gbench_main strips --json the same way).
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backend=", 10) == 0) continue;
    if (std::strcmp(argv[i], "--backend") == 0) {
      ++i;  // skip the separate value token too
      continue;
    }
    filtered.push_back(argv[i]);
  }

  // A distinct experiment id per backend keeps both runs side by side in
  // the merged baseline (merge_reports rejects duplicate ids).
  const std::string experiment = g_backend == Backend::kProcess
                                     ? "kernels_dsm_process"
                                     : "kernels_dsm";
  return gdsm::bench::gbench_main(
      static_cast<int>(filtered.size()), filtered.data(), experiment,
      "Microbenchmarks — " + backend_arg +
          "-backend DSM primitives on the build host",
      [&](gdsm::obs::RunReport& report) {
        report.set_param("backend", backend_arg);
        // The auto-attached dsm section names the process-wide *default*
        // backend; this bench picks its backend per cluster config, so pin
        // the section to what actually ran.
        gdsm::obs::Json dsm_section = gdsm::obs::dsm_backend_json();
        dsm_section.set("backend", backend_arg);
        report.set_section("dsm", std::move(dsm_section));
      });
}
