// --json support for the google-benchmark micro-bench binaries: a drop-in
// replacement for BENCHMARK_MAIN() that also emits the obs::RunReport
// counterpart of the console output (series "benchmarks", one row per run;
// see docs/METRICS.md).  The --json=<path> flag is stripped from argv before
// benchmark::Initialize sees it (google-benchmark rejects unknown flags).
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"

namespace gdsm::bench {

namespace detail {

/// Console output plus a side collection of every finished run.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) collected.push_back(run);
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Run> collected;
};

}  // namespace detail

/// Runs the registered google benchmarks; with --json=<path>, also writes a
/// RunReport whose "benchmarks" series carries per-run timings (host wall
/// clock, NOT the simulated 1998 platform) and user counters.  `decorate`,
/// when set, runs on the finished report before it is emitted — for benches
/// that add params or pin sections (e.g. the DSM backend axis).
inline int gbench_main(int argc, char** argv, const std::string& experiment,
                       const std::string& title,
                       const std::function<void(obs::RunReport&)>& decorate =
                           {}) {
  const Args args(argc, argv);

  // Rebuild argv without --json for benchmark::Initialize.
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0 ||
        std::strcmp(argv[i], "--json") == 0) {
      continue;
    }
    filtered.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(filtered.size());
  filtered.push_back(nullptr);

  banner(experiment, title + " (host-machine micro-benchmarks)");

  benchmark::Initialize(&filtered_argc, filtered.data());
  detail::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  obs::RunReport report(experiment, title);
  report.set_param("host_clock", true);  // times are this machine's, not 1998's
  for (const auto& run : reporter.collected) {
    if (run.error_occurred || run.run_type != benchmark::BenchmarkReporter::Run::RT_Iteration) {
      continue;
    }
    obs::Json row = obs::Json::object();
    row.set("name", run.benchmark_name());
    row.set("iterations", static_cast<std::int64_t>(run.iterations));
    row.set("real_time", run.GetAdjustedRealTime());
    row.set("cpu_time", run.GetAdjustedCPUTime());
    row.set("time_unit", benchmark::GetTimeUnitString(run.time_unit));
    if (!run.counters.empty()) {
      obs::Json counters = obs::Json::object();
      for (const auto& [name, counter] : run.counters) {
        counters.set(name, static_cast<double>(counter));
      }
      row.set("counters", std::move(counters));
    }
    report.add_row("benchmarks", std::move(row));
  }
  if (decorate) decorate(report);
  return emit_report(report, args);
}

}  // namespace gdsm::bench
