// Fig. 20: effect of the I/O options (no IO / immediate IO / deferred IO) on
// the pre-process strategy's run times, with 1K blocking (the configuration
// that saves columns most frequently).
#include <iostream>

#include "bench_common.h"
#include "core/report_io.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  using core::IoMode;
  const Args args(argc, argv);
  bench::banner("Figure 20",
                "Effect of different I/O options on run times (pre-process "
                "strategy, 1K blocks: band = save interleave = result "
                "interleave = 1024)");

  struct Mode {
    const char* label;
    const char* name;
    IoMode mode;
  };
  const Mode modes[] = {
      {"1K blks, no IO", "none", IoMode::kNone},
      {"1K blks, immed. IO", "immediate", IoMode::kImmediate},
      {"1K blks, def. IO", "deferred", IoMode::kDeferred},
  };

  obs::RunReport report("fig20_preprocess_io",
                        "Figure 20 — pre-process core times by I/O mode "
                        "(1K blocks)");
  report.set_param("band_rows", 1024);
  report.set_param("save_interleave", 1024);

  TextTable table("Figure 20 — core times (s)");
  table.set_header({"procs/size", modes[0].label, modes[1].label,
                    modes[2].label, "IO overhead"});
  for (int procs : {1, 2, 4, 8}) {
    for (const std::size_t n : std::vector<std::size_t>{16'384, 40'960, 81'920}) {
      std::vector<std::string> row{std::to_string(procs) + " procs/" +
                                   std::to_string(n / 1024) + "K seq."};
      double none = 0, imm = 0;
      for (const auto& m : modes) {
        core::SimPreprocessOptions opt;
        opt.band_rows = 1024;
        opt.save_interleave = 1024;
        opt.io_mode = m.mode;
        const double t = core::sim_preprocess(n, n, procs, opt).core_s;
        if (m.mode == IoMode::kNone) none = t;
        if (m.mode == IoMode::kImmediate) imm = t;
        row.push_back(fmt_f(t, 1));

        obs::Json rec = obs::Json::object();
        rec.set("procs", procs);
        rec.set("size", n);
        rec.set("io_mode", m.name);
        rec.set("core_s", t);
        report.add_row("core_times", std::move(rec));
      }
      row.push_back(fmt_f(100.0 * (imm / none - 1.0), 1) + "%");
      table.add_row(std::move(row));

      obs::Json orec = obs::Json::object();
      orec.set("procs", procs);
      orec.set("size", n);
      orec.set("immediate_io_overhead", imm / none - 1.0);
      report.add_row("io_overheads", std::move(orec));
    }
  }
  table.print(std::cout);
  std::cout
      << "Shape checks (paper): saving columns at this frequency has little\n"
         "effect on execution time, and the more complex deferred strategy\n"
         "brings nearly no benefit over immediate writes — the NFS buffer\n"
         "cache already acts as a deferred-I/O layer.\n";
  return bench::emit_report(report, args);
}
