// Fig. 20: effect of the I/O options (no IO / immediate IO / deferred IO) on
// the pre-process strategy's run times, with 1K blocking (the configuration
// that saves columns most frequently).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace gdsm;
  using core::IoMode;
  bench::banner("Figure 20",
                "Effect of different I/O options on run times (pre-process "
                "strategy, 1K blocks: band = save interleave = result "
                "interleave = 1024)");

  struct Mode {
    const char* label;
    IoMode mode;
  };
  const Mode modes[] = {
      {"1K blks, no IO", IoMode::kNone},
      {"1K blks, immed. IO", IoMode::kImmediate},
      {"1K blks, def. IO", IoMode::kDeferred},
  };

  TextTable table("Figure 20 — core times (s)");
  table.set_header({"procs/size", modes[0].label, modes[1].label,
                    modes[2].label, "IO overhead"});
  for (int procs : {1, 2, 4, 8}) {
    for (const std::size_t n : std::vector<std::size_t>{16'384, 40'960, 81'920}) {
      std::vector<std::string> row{std::to_string(procs) + " procs/" +
                                   std::to_string(n / 1024) + "K seq."};
      double none = 0, imm = 0;
      for (const auto& m : modes) {
        core::SimPreprocessOptions opt;
        opt.band_rows = 1024;
        opt.save_interleave = 1024;
        opt.io_mode = m.mode;
        const double t = core::sim_preprocess(n, n, procs, opt).core_s;
        if (m.mode == IoMode::kNone) none = t;
        if (m.mode == IoMode::kImmediate) imm = t;
        row.push_back(fmt_f(t, 1));
      }
      row.push_back(fmt_f(100.0 * (imm / none - 1.0), 1) + "%");
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
  std::cout
      << "Shape checks (paper): saving columns at this frequency has little\n"
         "effect on execution time, and the more complex deferred strategy\n"
         "brings nearly no benefit over immediate writes — the NFS buffer\n"
         "cache already acts as a deferred-I/O layer.\n";
  return 0;
}
