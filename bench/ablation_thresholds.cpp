// Ablation: the Section 4.1 heuristic's open/close thresholds — the knobs
// that trade candidate-queue size against region coverage.  Run on real
// data (threaded algorithms, not the simulator).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "sw/heuristic_scan.h"
#include "util/genome.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  bench::banner("Ablation — heuristic open/close thresholds",
                "Candidate queue size and planted-region coverage vs the "
                "Section 4.1 parameters (real scan, 8 kBP synthetic pair)");

  HomologousPairSpec spec;
  spec.length_s = 8'000;
  spec.length_t = 8'000;
  spec.n_regions = 8;
  spec.region_len_mean = 250;
  spec.region_len_spread = 60;
  spec.seed = 424242;
  const HomologousPair pair = make_homologous_pair(spec);

  obs::RunReport report("ablation_thresholds",
                        "Ablation — heuristic open/close threshold sweep");
  report.set_param("size", 8'000);
  report.set_param("planted_regions", pair.regions.size());
  report.set_param("min_report_score", 30);

  TextTable table("Threshold sweep");
  table.set_header({"open", "close", "min_report", "candidates",
                    "regions covered", "largest span"});
  for (const int open : {4, 6, 10}) {
    for (const int close : {2, 4, 8}) {
      HeuristicParams params;
      params.open_threshold = open;
      params.close_drop = close;
      params.min_report_score = 30;
      const auto queue = heuristic_scan(pair.s, pair.t, ScoreScheme{}, params);

      std::size_t covered = 0;
      for (const PlantedRegion& r : pair.regions) {
        covered += std::any_of(
            queue.begin(), queue.end(), [&](const Candidate& c) {
              return c.s_end >= r.s_begin + 1 && c.s_begin <= r.s_end &&
                     c.t_end >= r.t_begin + 1 && c.t_begin <= r.t_end;
            });
      }
      std::size_t largest = 0;
      for (const Candidate& c : queue) {
        largest = std::max<std::size_t>(largest, c.s_span());
      }
      table.add_row({std::to_string(open), std::to_string(close),
                     std::to_string(params.min_report_score),
                     std::to_string(queue.size()),
                     std::to_string(covered) + "/" +
                         std::to_string(pair.regions.size()),
                     std::to_string(largest)});

      obs::Json rec = obs::Json::object();
      rec.set("open_threshold", open);
      rec.set("close_drop", close);
      rec.set("candidates", queue.size());
      rec.set("regions_covered", covered);
      rec.set("largest_span", largest);
      report.add_row("sweep", std::move(rec));
    }
  }
  table.print(std::cout);
  std::cout
      << "Reading: lower open thresholds admit more (noisier) candidates;\n"
         "larger close drops keep candidates alive across score dips and\n"
         "merge neighbouring fragments into longer regions.  All settings\n"
         "cover the planted homologies — the thresholds tune precision, not\n"
         "recall, at these identity levels.\n";
  return bench::emit_report(report, args);
}
