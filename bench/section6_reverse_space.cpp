// Section 6 (Tables 5-7, Eq. 3): the exact reverse-rebuild method.
//
// Verifies, on real data, that (a) the rebuilt alignment always reproduces
// the full-matrix optimum, and (b) the pruned reverse pass touches only
// ~1/3 of the n' x n' rectangle for worst-case (diagonal) alignments, and
// much less for gappier ones — the paper's "necessary space is
// approximately 30%" remark.
#include <iostream>

#include "bench_common.h"
#include "sw/full_matrix.h"
#include "sw/reverse_rebuild.h"
#include "util/genome.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  using namespace gdsm;
  bench::banner("Section 6 (Tables 5-7, Eq. 3)",
                "Exact alignment retrieval over reversed prefixes with "
                "intermediate-zero elimination");

  // The paper's worked example first.
  {
    const Sequence s("s", "TCTCGACGGATTAGTATATATATA");
    const Sequence t("t", "ATATGATCGGAATAGCTCT");
    const RebuildResult res = rebuild_best_local_alignment(s, t);
    std::cout << "Worked example (Section 6): score " << res.alignment.score
              << ", s[" << res.alignment.s_begin + 1 << ".."
              << res.alignment.s_end() << "] x t["
              << res.alignment.t_begin + 1 << ".." << res.alignment.t_end()
              << "], reverse pass computed " << res.stats.computed_cells
              << " cells\n\n";
  }

  // True worst case first: identical sequences, where the useful region is
  // bounded exactly by the k + ceil(k/2) frontier of Eq. (3) and its area
  // tends to 1/3 of n'^2.
  TextTable worst("Worst case (identical sequences): Eq. (3)'s ~30% bound");
  worst.set_header({"n'", "computed cells", "fraction of n'^2",
                    "Eq. (3) bound"});
  for (const std::size_t len : std::vector<std::size_t>{100, 300, 1000, 3000}) {
    Rng wrng(123 + len);
    const Sequence shared = random_dna(len, wrng, "w");
    const RebuildResult res = rebuild_best_local_alignment(shared, shared);
    worst.add_row({std::to_string(len),
                   std::to_string(res.stats.computed_cells),
                   fmt_f(static_cast<double>(res.stats.computed_cells) /
                             (static_cast<double>(len) * len),
                         3),
                   "0.333"});
  }
  worst.print(std::cout);

  TextTable table("Planted homologies: pruned area vs the n' x n' rectangle");
  table.set_header({"n' (planted)", "identity", "score", "computed cells",
                    "fraction of n'^2", "exact?"});
  for (const std::size_t len : std::vector<std::size_t>{100, 200, 400, 800}) {
    for (const double sub_rate : {0.0, 0.10}) {
      HomologousPairSpec spec;
      spec.length_s = len * 4;
      spec.length_t = len * 4;
      spec.n_regions = 1;
      spec.region_len_mean = len;
      spec.region_len_spread = len / 20;
      spec.substitution_rate = sub_rate;
      spec.indel_rate = sub_rate / 5;
      spec.seed = 600 + len + static_cast<std::uint64_t>(sub_rate * 100);
      const HomologousPair pair = make_homologous_pair(spec);

      const Alignment full = smith_waterman(pair.s, pair.t);
      const RebuildResult res = rebuild_best_local_alignment(pair.s, pair.t);
      const double np = static_cast<double>(
          std::max(res.alignment.s_length(), res.alignment.t_length()));
      table.add_row({std::to_string(len),
                     sub_rate == 0.0 ? "100%" : "~90%",
                     std::to_string(res.alignment.score),
                     std::to_string(res.stats.computed_cells),
                     fmt_f(static_cast<double>(res.stats.computed_cells) /
                               (np * np),
                           3),
                     res.alignment.score == full.score ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "Shape checks: every rebuild reproduces the full-matrix score\n"
               "exactly; the computed fraction approaches the paper's ~1/3\n"
               "worst-case bound for perfect-identity (diagonal) alignments\n"
               "and is below it for gappier regions.  Space used is\n"
               "O(min(n,m) + n'^2) instead of O(nm).\n";
  return 0;
}
