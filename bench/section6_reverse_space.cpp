// Section 6 (Tables 5-7, Eq. 3): the exact reverse-rebuild method.
//
// Verifies, on real data, that (a) the rebuilt alignment always reproduces
// the full-matrix optimum, and (b) the pruned reverse pass touches only
// ~1/3 of the n' x n' rectangle for worst-case (diagonal) alignments, and
// much less for gappier ones — the paper's "necessary space is
// approximately 30%" remark.
#include <iostream>

#include "bench_common.h"
#include "sw/full_matrix.h"
#include "sw/reverse_rebuild.h"
#include "util/genome.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  bench::banner("Section 6 (Tables 5-7, Eq. 3)",
                "Exact alignment retrieval over reversed prefixes with "
                "intermediate-zero elimination");

  obs::RunReport report("section6_reverse_space",
                        "Section 6 — reverse-rebuild space usage vs the "
                        "Eq. (3) ~30% bound");

  // The paper's worked example first.
  {
    const Sequence s("s", "TCTCGACGGATTAGTATATATATA");
    const Sequence t("t", "ATATGATCGGAATAGCTCT");
    const RebuildResult res = rebuild_best_local_alignment(s, t);
    std::cout << "Worked example (Section 6): score " << res.alignment.score
              << ", s[" << res.alignment.s_begin + 1 << ".."
              << res.alignment.s_end() << "] x t["
              << res.alignment.t_begin + 1 << ".." << res.alignment.t_end()
              << "], reverse pass computed " << res.stats.computed_cells
              << " cells\n\n";
    report.metrics().set("worked_example_score", res.alignment.score);
    report.metrics().set("worked_example_computed_cells",
                         res.stats.computed_cells);
  }

  // True worst case first: identical sequences, where the useful region is
  // bounded exactly by the k + ceil(k/2) frontier of Eq. (3) and its area
  // tends to 1/3 of n'^2.
  TextTable worst("Worst case (identical sequences): Eq. (3)'s ~30% bound");
  worst.set_header({"n'", "computed cells", "fraction of n'^2",
                    "Eq. (3) bound"});
  for (const std::size_t len : std::vector<std::size_t>{100, 300, 1000, 3000}) {
    Rng wrng(123 + len);
    const Sequence shared = random_dna(len, wrng, "w");
    const RebuildResult res = rebuild_best_local_alignment(shared, shared);
    const double frac = static_cast<double>(res.stats.computed_cells) /
                        (static_cast<double>(len) * len);
    worst.add_row({std::to_string(len),
                   std::to_string(res.stats.computed_cells), fmt_f(frac, 3),
                   "0.333"});

    obs::Json rec = obs::Json::object();
    rec.set("n_prime", len);
    rec.set("computed_cells", res.stats.computed_cells);
    rec.set("fraction", frac);
    rec.set("bound", 1.0 / 3.0);
    report.add_row("worst_case", std::move(rec));
  }
  worst.print(std::cout);

  TextTable table("Planted homologies: pruned area vs the n' x n' rectangle");
  table.set_header({"n' (planted)", "identity", "score", "computed cells",
                    "fraction of n'^2", "exact?"});
  for (const std::size_t len : std::vector<std::size_t>{100, 200, 400, 800}) {
    for (const double sub_rate : {0.0, 0.10}) {
      HomologousPairSpec spec;
      spec.length_s = len * 4;
      spec.length_t = len * 4;
      spec.n_regions = 1;
      spec.region_len_mean = len;
      spec.region_len_spread = len / 20;
      spec.substitution_rate = sub_rate;
      spec.indel_rate = sub_rate / 5;
      spec.seed = 600 + len + static_cast<std::uint64_t>(sub_rate * 100);
      const HomologousPair pair = make_homologous_pair(spec);

      const Alignment full = smith_waterman(pair.s, pair.t);
      const RebuildResult res = rebuild_best_local_alignment(pair.s, pair.t);
      const double np = static_cast<double>(
          std::max(res.alignment.s_length(), res.alignment.t_length()));
      const double frac =
          static_cast<double>(res.stats.computed_cells) / (np * np);
      table.add_row({std::to_string(len),
                     sub_rate == 0.0 ? "100%" : "~90%",
                     std::to_string(res.alignment.score),
                     std::to_string(res.stats.computed_cells), fmt_f(frac, 3),
                     res.alignment.score == full.score ? "yes" : "NO"});

      obs::Json rec = obs::Json::object();
      rec.set("planted_len", len);
      rec.set("substitution_rate", sub_rate);
      rec.set("score", res.alignment.score);
      rec.set("full_matrix_score", full.score);
      rec.set("computed_cells", res.stats.computed_cells);
      rec.set("fraction", frac);
      rec.set("exact", res.alignment.score == full.score);
      report.add_row("planted", std::move(rec));
    }
  }
  table.print(std::cout);
  std::cout << "Shape checks: every rebuild reproduces the full-matrix score\n"
               "exactly; the computed fraction approaches the paper's ~1/3\n"
               "worst-case bound for perfect-identity (diagonal) alignments\n"
               "and is below it for gappier regions.  Space used is\n"
               "O(min(n,m) + n'^2) instead of O(nm).\n";
  return bench::emit_report(report, args);
}
