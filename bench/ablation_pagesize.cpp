// Ablation: DSM page size vs the border-handshake cost of the non-blocked
// strategy (DESIGN.md design-choice check: JIAJIA inherits the 4 KiB VM
// page; the strategies move 56-byte cells, so page size sets the
// false-sharing/transfer granularity).
//
// Two views per page size: the simulated 1998 cluster (CostModel sweep, the
// paper's regime) and a real 2-node host run of the write/barrier/read
// border handshake on the selected execution backend.  --backend=
// (threads|process) picks the latter; run_all.sh's BENCH_BACKENDS axis
// re-runs the bench per backend so the baseline carries both host rows.
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "core/report_io.h"
#include "dsm/backend.h"
#include "dsm/cluster.h"
#include "obs/snapshots.h"

namespace {

using namespace gdsm;

/// One border handshake per round: node 0 dirties one int per page across
/// a 64 KiB strip, a barrier ships the diffs, node 1 faults every page
/// back in.  Wall seconds for 10 rounds — the page count (round trips) and
/// page bytes (wire time) trade off exactly like the simulated columns.
double host_border_seconds(std::size_t page_bytes, dsm::Backend backend) {
  dsm::DsmConfig cfg;
  cfg.page_bytes = page_bytes;
  cfg.backend = backend;
  dsm::Cluster cluster(2, cfg);
  constexpr std::size_t kStripBytes = 64 * 1024;
  constexpr int kRounds = 10;
  const dsm::GlobalAddr arr = cluster.alloc(kStripBytes, 0);
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run([&](dsm::Node& node) {
    const std::size_t stride = page_bytes / sizeof(int);
    const std::size_t n = kStripBytes / sizeof(int);
    long sum = 0;
    for (int round = 0; round < kRounds; ++round) {
      if (node.id() == 0) {
        for (std::size_t i = 0; i < n; i += stride) {
          node.write<int>(arr + i * sizeof(int), round);
        }
      }
      node.barrier();
      if (node.id() == 1) {
        for (std::size_t i = 0; i < n; i += stride) {
          sum += node.read<int>(arr + i * sizeof(int));
        }
      }
      node.barrier();
    }
    // Keep the reads observable without a benchmark-library sink.
    if (node.id() == 1 && sum != static_cast<long>(n / stride) *
                                     (kRounds * (kRounds - 1) / 2)) {
      std::cerr << "ablation_pagesize: border checksum mismatch\n";
    }
  });
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::string backend_arg = args.get("backend", "threads");
  if (backend_arg != "threads" && backend_arg != "process") {
    std::cerr << "ablation_pagesize: --backend=" << backend_arg
              << " unknown (threads|process)\n";
    return 2;
  }
  const dsm::Backend backend = backend_arg == "process"
                                   ? dsm::Backend::kProcess
                                   : dsm::Backend::kThreads;
  bench::banner("Ablation — DSM page size (" + backend_arg + " backend)",
                "Page size vs strategy run time (50K sequences, 8 procs) "
                "plus a real 2-node border handshake");

  // A distinct experiment id per backend keeps both runs side by side in
  // the merged baseline (merge_reports rejects duplicate ids).
  const std::string experiment = backend == dsm::Backend::kProcess
                                     ? "ablation_pagesize_process"
                                     : "ablation_pagesize";
  obs::RunReport report(experiment,
                        "Ablation — DSM page size vs strategy run time (" +
                            backend_arg + " backend)");
  report.set_param("size", 50'000);
  report.set_param("procs", 8);
  report.set_param("backend", backend_arg);
  report.set_param("host_clock", true);  // the host column is wall clock

  TextTable table("Page size sweep");
  table.set_header({"page bytes", "no-block total (s)", "blocked 5x5 (s)",
                    "host border (ms)"});
  for (const std::size_t page :
       std::vector<std::size_t>{1024, 2048, 4096, 8192, 16384}) {
    sim::CostModel cm;
    cm.page_bytes = page;
    const core::SimReport noblock = core::sim_wavefront(50'000, 50'000, 8, cm);
    const core::SimReport blocked =
        core::sim_blocked(50'000, 50'000, 8, 40, 40, cm);
    const double host_s = host_border_seconds(page, backend);
    table.add_row({std::to_string(page), fmt_f(noblock.total_s, 1),
                   fmt_f(blocked.total_s, 1), fmt_f(host_s * 1e3, 2)});

    obs::Json rec = obs::Json::object();
    rec.set("page_bytes", page);
    rec.set("noblock_total_s", noblock.total_s);
    rec.set("blocked_total_s", blocked.total_s);
    rec.set("host_border_s", host_s);
    rec.set("noblock_sim", core::sim_report_json(noblock));
    rec.set("blocked_sim", core::sim_report_json(blocked));
    report.add_row("sweep", std::move(rec));
  }
  table.print(std::cout);
  std::cout
      << "Reading: the non-blocked strategy ships one page per border CELL,\n"
         "so larger pages only add wire time; the blocked strategy ships a\n"
         "whole block row, so larger pages amortize the per-page fault round\n"
         "trips and help until wire time dominates.  The host column is the\n"
         "same trade on the real substrate: fewer, larger pages per barrier.\n";
  // The auto-attached dsm section names the process-wide *default* backend;
  // this bench picks its backend per cluster config, so pin the section to
  // what actually ran.
  obs::Json dsm_section = obs::dsm_backend_json();
  dsm_section.set("backend", backend_arg);
  report.set_section("dsm", std::move(dsm_section));
  return bench::emit_report(report, args);
}
