// Ablation: DSM page size vs the border-handshake cost of the non-blocked
// strategy (DESIGN.md design-choice check: JIAJIA inherits the 4 KiB VM
// page; the strategies move 56-byte cells, so page size sets the
// false-sharing/transfer granularity).
#include <iostream>

#include "bench_common.h"
#include "core/report_io.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  bench::banner("Ablation — DSM page size",
                "Page size vs strategy run time (50K sequences, 8 procs)");

  obs::RunReport report("ablation_pagesize",
                        "Ablation — DSM page size vs strategy run time");
  report.set_param("size", 50'000);
  report.set_param("procs", 8);

  TextTable table("Page size sweep");
  table.set_header({"page bytes", "no-block total (s)", "blocked 5x5 (s)"});
  for (const std::size_t page :
       std::vector<std::size_t>{1024, 2048, 4096, 8192, 16384}) {
    sim::CostModel cm;
    cm.page_bytes = page;
    const core::SimReport noblock = core::sim_wavefront(50'000, 50'000, 8, cm);
    const core::SimReport blocked =
        core::sim_blocked(50'000, 50'000, 8, 40, 40, cm);
    table.add_row({std::to_string(page), fmt_f(noblock.total_s, 1),
                   fmt_f(blocked.total_s, 1)});

    obs::Json rec = obs::Json::object();
    rec.set("page_bytes", page);
    rec.set("noblock_total_s", noblock.total_s);
    rec.set("blocked_total_s", blocked.total_s);
    rec.set("noblock_sim", core::sim_report_json(noblock));
    rec.set("blocked_sim", core::sim_report_json(blocked));
    report.add_row("sweep", std::move(rec));
  }
  table.print(std::cout);
  std::cout
      << "Reading: the non-blocked strategy ships one page per border CELL,\n"
         "so larger pages only add wire time; the blocked strategy ships a\n"
         "whole block row, so larger pages amortize the per-page fault round\n"
         "trips and help until wire time dominates.\n";
  return bench::emit_report(report, args);
}
