// Fig. 15: phase-2 speed-ups (global alignment of subsequence pairs with
// scattered mapping) for 100..5000 comparisons on 2/4/8 processors.
#include <iostream>

#include "bench_common.h"
#include "core/report_io.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  bench::banner("Figure 15",
                "Speed-ups obtained in phase 2 for a varying number of "
                "subsequence comparisons (scattered mapping, Section 4.4); "
                "average subsequence size ~253 bytes");

  struct Row {
    std::size_t pairs;
    double paper8;  // the speed-ups the paper quotes for 8 processors
  };
  const Row rows[] = {{100, 5.33}, {1000, 7.57}, {2000, 7.2},
                      {3000, 7.0},  {4000, 6.9},  {5000, 6.80}};

  obs::RunReport report("fig15_phase2_speedups",
                        "Figure 15 — phase-2 speed-ups, scattered mapping");
  report.set_param("mean_pair_size", 253);

  TextTable table("Figure 15 — phase-2 speed-ups (8-proc paper value shown)");
  table.set_header({"Comparisons", "2 proc", "4 proc", "8 proc"});
  for (const Row& row : rows) {
    const auto pairs = core::phase2_pair_sizes(row.pairs);
    const core::SimReport serial = core::sim_phase2(pairs, 1);
    std::vector<std::string> cells{std::to_string(row.pairs)};
    for (int p : {2, 4, 8}) {
      const core::SimReport par = core::sim_phase2(pairs, p);
      const double sp = serial.core_s / par.core_s;
      cells.push_back(p == 8 ? bench::with_paper(sp, row.paper8)
                             : fmt_f(sp, 2));

      obs::Json rec = obs::Json::object();
      rec.set("pairs", row.pairs);
      rec.set("procs", p);
      rec.set("speedup", sp);
      if (p == 8) rec.set("paper_speedup", row.paper8);
      rec.set("serial_core_s", serial.core_s);
      rec.set("sim", core::sim_report_json(par));
      report.add_row("speedups", std::move(rec));
    }
    table.add_row(std::move(cells));
  }
  table.print(std::cout);
  std::cout << "Shape checks: 2/4-proc speed-ups sit near-linear (paper:\n"
               "1.91-2.0 and 3.76-4.0) independent of queue size; 8-proc\n"
               "speed-up is lowest at 100 pairs (startup amortizes poorly)\n"
               "and exceeds 7x around 1000+ pairs.\n";
  return bench::emit_report(report, args);
}
