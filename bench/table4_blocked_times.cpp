// Table 4 + Fig. 12: execution times and speed-ups of the blocked heuristic
// strategy for 8K, 15K and 50K sequences.
#include <iostream>

#include "bench_common.h"
#include "core/report_io.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  bench::banner("Table 4 / Figure 12",
                "Execution times (s) and speed-ups for 3 sequence sizes, "
                "heuristic strategy with blocking factors (Section 4.3)");

  struct Row {
    std::size_t n;
    std::size_t bands, blocks;
    double paper_time[4];
    double paper_speedup[3];
  };
  const Row rows[] = {
      {8'000, 40, 40, {57.18, 38.59, 21.18, 12.55}, {1.48, 2.72, 4.55}},
      {15'000, 40, 40, {266.51, 129.22, 67.42, 36.51}, {2.06, 3.95, 7.29}},
      {50'000, 40, 25, {2620.64, 1352.76, 701.95, 363.13}, {1.93, 3.73, 7.21}},
  };
  const int procs[] = {1, 2, 4, 8};

  obs::RunReport report("table4_blocked_times",
                        "Table 4 / Figure 12 — blocked heuristic strategy "
                        "times and speed-ups");

  TextTable times("Table 4 — execution times (s), measured (paper)");
  times.set_header({"Size", "Bands", "Serial", "2 proc", "4 proc", "8 proc"});
  TextTable speedups("Figure 12 — speed-ups, measured (paper)");
  speedups.set_header({"Size", "2 proc", "4 proc", "8 proc"});

  for (const Row& row : rows) {
    std::vector<std::string> tcells{
        std::to_string(row.n / 1000) + "K x " + std::to_string(row.n / 1000) + "K",
        std::to_string(row.bands) + " x " + std::to_string(row.blocks)};
    std::vector<std::string> scells{std::to_string(row.n / 1000) + "K"};
    double serial = 0;
    for (int k = 0; k < 4; ++k) {
      const core::SimReport rep =
          core::sim_blocked(row.n, row.n, procs[k], row.bands, row.blocks);
      if (k == 0) serial = rep.total_s;
      tcells.push_back(bench::with_paper(rep.total_s, row.paper_time[k]));

      obs::Json rec = obs::Json::object();
      rec.set("size", row.n);
      rec.set("bands", row.bands);
      rec.set("blocks", row.blocks);
      rec.set("procs", procs[k]);
      rec.set("total_s", rep.total_s);
      rec.set("paper_s", row.paper_time[k]);
      rec.set("sim", core::sim_report_json(rep));
      report.add_row("times", std::move(rec));

      if (k > 0) {
        const double sp = serial / rep.total_s;
        scells.push_back(bench::with_paper(sp, row.paper_speedup[k - 1]));
        obs::Json srec = obs::Json::object();
        srec.set("size", row.n);
        srec.set("procs", procs[k]);
        srec.set("speedup", sp);
        srec.set("paper_speedup", row.paper_speedup[k - 1]);
        report.add_row("speedups", std::move(srec));
      }
    }
    times.add_row(std::move(tcells));
    speedups.add_row(std::move(scells));
  }
  times.print(std::cout);
  speedups.print(std::cout);
  std::cout << "Shape checks: 8K gains modestly (short pipeline); 15K and 50K\n"
               "reach very good speed-ups (paper: 7.29 and 7.21 at 8 procs).\n";
  return bench::emit_report(report, args);
}
