// Fig. 19: effect of the different blocking options (balanced / equal /
// fixed band sizing, 1K and 4K blocking parameters) on the pre-process
// strategy's run times, without I/O.
#include <iostream>

#include "bench_common.h"
#include "core/report_io.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  using core::BandScheme;
  const Args args(argc, argv);
  bench::banner("Figure 19",
                "Effect of different blocking options on run times "
                "(pre-process strategy, no I/O)");

  struct Config {
    const char* label;
    const char* scheme_name;
    BandScheme scheme;
    std::size_t rows;
  };
  const Config configs[] = {
      {"Bal. 1K blks, no IO", "balanced", BandScheme::kBalanced, 1024},
      {"Equal blks, no IO", "even", BandScheme::kEven, 0},
      {"1K blks, no IO", "fixed", BandScheme::kFixed, 1024},
      {"Bal. 4K blks, no IO", "balanced", BandScheme::kBalanced, 4096},
      {"4K blks, no IO", "fixed", BandScheme::kFixed, 4096},
  };

  obs::RunReport report("fig19_preprocess_blocking",
                        "Figure 19 — pre-process core times by blocking "
                        "option (no I/O)");

  TextTable table("Figure 19 — core times (s)");
  std::vector<std::string> header{"procs/size"};
  for (const auto& c : configs) header.emplace_back(c.label);
  table.set_header(std::move(header));

  for (int procs : {1, 2, 4, 8}) {
    for (const std::size_t n : std::vector<std::size_t>{16'384, 40'960, 81'920}) {
      std::vector<std::string> row{std::to_string(procs) + " procs/" +
                                   std::to_string(n / 1024) + "K seq."};
      for (const auto& c : configs) {
        core::SimPreprocessOptions opt;
        opt.band_scheme = c.scheme;
        opt.band_rows = c.rows;
        const core::SimReport rep = core::sim_preprocess(n, n, procs, opt);
        row.push_back(fmt_f(rep.core_s, 1));

        obs::Json rec = obs::Json::object();
        rec.set("procs", procs);
        rec.set("size", n);
        rec.set("config", c.label);
        rec.set("band_scheme", c.scheme_name);
        rec.set("band_rows", c.rows);
        rec.set("core_s", rep.core_s);
        report.add_row("core_times", std::move(rec));
      }
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
  std::cout
      << "Shape checks (paper): on the SEQUENTIAL runs the 'equal' option is\n"
         "the worst (~20% above the others) because the band spans the whole\n"
         "sequence and spills the CPU cache; as nodes are added the even\n"
         "division shrinks the bands and catches up.  Balanced and fixed\n"
         "produce similar times (fixed makes output files easier to read).\n";
  return bench::emit_report(report, args);
}
