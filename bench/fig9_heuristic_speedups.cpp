// Fig. 9: absolute speed-ups of the non-blocked heuristic strategy (total
// execution time basis, as the paper computes them).
#include <iostream>

#include "bench_common.h"
#include "core/report_io.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  bench::banner("Figure 9",
                "Absolute speed-ups for DNA sequence comparison, heuristic "
                "strategy without blocking factors");

  const std::size_t sizes[] = {15'000, 50'000, 80'000, 150'000, 400'000};
  // Paper speed-ups derived from Table 1.
  const double paper[][3] = {
      {296.0 / 283.18, 296.0 / 202.18, 296.0 / 181.29},
      {3461.0 / 2884.15, 3461.0 / 1669.53, 3461.0 / 1107.02},
      {7967.0 / 6094.18, 7967.0 / 3370.40, 7967.0 / 2162.82},
      {24107.0 / 19522.95, 24107.0 / 10377.89, 24107.0 / 5991.79},
      {175295.0 / 141840.98, 175295.0 / 72770.99, 175295.0 / 38206.84},
  };
  const int procs[] = {2, 4, 8};

  obs::RunReport report("fig9_heuristic_speedups",
                        "Figure 9 — absolute speed-ups, heuristic strategy "
                        "without blocking factors");

  TextTable table("Figure 9 — absolute speed-ups, measured (paper)");
  table.set_header({"Size", "2 proc", "4 proc", "8 proc"});
  int r = 0;
  for (const std::size_t n : sizes) {
    const core::SimReport serial = core::sim_wavefront(n, n, 1);
    std::vector<std::string> cells{std::to_string(n / 1000) + "Kx" +
                                   std::to_string(n / 1000) + "K"};
    for (int k = 0; k < 3; ++k) {
      const core::SimReport par = core::sim_wavefront(n, n, procs[k]);
      const double speedup = serial.total_s / par.total_s;
      cells.push_back(bench::with_paper(speedup, paper[r][k]));

      obs::Json row = obs::Json::object();
      row.set("size", n);
      row.set("procs", procs[k]);
      row.set("speedup", speedup);
      row.set("paper_speedup", paper[r][k]);
      row.set("serial_total_s", serial.total_s);
      row.set("sim", core::sim_report_json(par));
      report.add_row("speedups", std::move(row));
    }
    table.add_row(std::move(cells));
    ++r;
  }
  table.print(std::cout);
  std::cout << "Shape checks: very bad speed-ups for 15K (synchronization\n"
               "dominates); speed-up grows monotonically with sequence size,\n"
               "reaching ~4.5-5x at 400K with 8 processors (paper: 4.59).\n";
  return bench::emit_report(report, args);
}
