// Fig. 13: execution times for 8 processors with the blocking and
// non-blocking strategies (plus the serial reference), 15K and 50K.
#include <iostream>

#include "bench_common.h"
#include "core/report_io.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  bench::banner("Figure 13",
                "Execution times for 8 processors with the blocking and "
                "non-blocking strategies");

  struct Row {
    std::size_t n;
    double paper_serial, paper_noblock, paper_block;
  };
  // Paper values: serial (Table 1), 8-proc no-block (Table 1), 8-proc
  // blocked (Table 4).
  const Row rows[] = {
      {15'000, 296, 181.29, 36.51},
      {50'000, 3461, 1107.02, 363.13},
  };

  obs::RunReport report("fig13_block_vs_noblock",
                        "Figure 13 — blocked vs non-blocked strategy, "
                        "8 processors");

  TextTable table("Figure 13 — measured (paper)");
  table.set_header({"Size", "serial (no block)", "8 proc (no block)",
                    "8 proc (block)"});
  for (const Row& row : rows) {
    const core::SimReport serial = core::sim_wavefront(row.n, row.n, 1);
    const core::SimReport noblock = core::sim_wavefront(row.n, row.n, 8);
    const core::SimReport block =
        core::sim_blocked(row.n, row.n, 8, 40, row.n == 50'000 ? 25 : 40);
    table.add_row({std::to_string(row.n / 1000) + "K x " +
                       std::to_string(row.n / 1000) + "K",
                   bench::with_paper(serial.total_s, row.paper_serial, 0),
                   bench::with_paper(noblock.total_s, row.paper_noblock),
                   bench::with_paper(block.total_s, row.paper_block)});

    const struct {
      const char* variant;
      const core::SimReport& rep;
      double paper;
    } recs[] = {{"serial", serial, row.paper_serial},
                {"noblock_8p", noblock, row.paper_noblock},
                {"blocked_8p", block, row.paper_block}};
    for (const auto& rec : recs) {
      obs::Json jrow = obs::Json::object();
      jrow.set("size", row.n);
      jrow.set("variant", rec.variant);
      jrow.set("total_s", rec.rep.total_s);
      jrow.set("paper_s", rec.paper);
      jrow.set("sim", core::sim_report_json(rec.rep));
      report.add_row("times", std::move(jrow));
    }
  }
  table.print(std::cout);
  std::cout << "Shape check: the blocked strategy beats the non-blocked one\n"
               "by ~3-5x at 8 processors (paper: 1107 s -> 363 s at 50K).\n";
  return bench::emit_report(report, args);
}
