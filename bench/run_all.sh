#!/usr/bin/env bash
# Run every bench binary with --json, validate each report, and merge them
# into one baseline document (BENCH_baseline.json by default).
#
#   bench/run_all.sh [build-dir] [output.json]
#
# The human-readable tables go to <out-dir>/<bench>.log; the JSON reports to
# <out-dir>/BENCH_<bench>.json.  See docs/METRICS.md for the schema and
# EXPERIMENTS.md for what each bench reproduces.
#
# Backend axis: benches that understand --backend= (the DSM execution
# backend, docs/DESIGN.md) are re-run once per entry in BENCH_BACKENDS
# (default "process") beyond the default threads pass, so the baseline
# carries the threads-vs-process comparison (schema v8).  Set
# BENCH_BACKENDS= (empty) to skip the extra passes.
#
# Kernel axis: the kernel-sensitive benches are re-run once per entry in
# BENCH_KERNELS (default "striped-avx2 avx2") with GDSM_KERNEL= forcing
# that dispatch backend (docs/KERNELS.md), so the baseline carries the
# striped vs anti-diagonal comparison (schema v9) — compare the forced
# `db_throughput_avx2` row's saturated `open.r4000.qps` against the
# auto/forced striped rows.  A forced run writes a suffixed
# experiment id (`kernels_sw_<kernel>`, `db_throughput_<kernel>`) so it sits
# next to the auto-dispatched run in the merged baseline.  A kernel the host
# cannot run is ignored by the dispatch (it logs a notice and keeps the auto
# pick; the report's `kernel` param and the experiment suffix record what
# actually ran).  Set BENCH_KERNELS= (empty) to skip.
set -euo pipefail

build_dir=${1:-build}
baseline=${2:-BENCH_baseline.json}
out_dir=${BENCH_OUT_DIR:-"$build_dir/reports"}

if [ ! -d "$build_dir/bench" ]; then
  echo "run_all.sh: $build_dir/bench not found — build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 2
fi

mkdir -p "$out_dir"
reports=()
failed=0
for bin in "$build_dir"/bench/*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name=$(basename "$bin")
  json="$out_dir/BENCH_$name.json"
  echo "== $name"
  if ! "$bin" --json="$json" > "$out_dir/$name.log" 2>&1; then
    echo "   FAILED (see $out_dir/$name.log)" >&2
    failed=1
    continue
  fi
  if [ -x "$build_dir/tools/validate_report" ]; then
    "$build_dir/tools/validate_report" "$json" >/dev/null
  fi
  reports+=("$json")
done

# The DSM execution-backend axis: the loop above ran every bench on the
# thread backend; re-run the backend-aware benches once per extra backend.
backend_benches=(ablation_comm kernels_dsm ablation_pagesize)
for backend in ${BENCH_BACKENDS-process}; do
  [ "$backend" = "threads" ] && continue  # the default pass above
  for name in "${backend_benches[@]}"; do
    bin="$build_dir/bench/$name"
    [ -f "$bin" ] && [ -x "$bin" ] || continue
    json="$out_dir/BENCH_${name}_${backend}.json"
    echo "== $name --backend=$backend"
    if ! "$bin" --backend="$backend" --json="$json" \
        > "$out_dir/${name}_${backend}.log" 2>&1; then
      echo "   FAILED (see $out_dir/${name}_${backend}.log)" >&2
      failed=1
      continue
    fi
    if [ -x "$build_dir/tools/validate_report" ]; then
      "$build_dir/tools/validate_report" "$json" >/dev/null
    fi
    reports+=("$json")
  done
done

# The kernel-dispatch axis: re-run the kernel-sensitive benches once per
# forced GDSM_KERNEL value (the default pass above used the auto pick).
kernel_benches=(kernels_sw db_throughput)
for kernel in ${BENCH_KERNELS-striped-avx2 avx2}; do
  for name in "${kernel_benches[@]}"; do
    bin="$build_dir/bench/$name"
    [ -f "$bin" ] && [ -x "$bin" ] || continue
    json="$out_dir/BENCH_${name}_${kernel}.json"
    echo "== $name GDSM_KERNEL=$kernel"
    if ! GDSM_KERNEL="$kernel" "$bin" --json="$json" \
        > "$out_dir/${name}_${kernel}.log" 2>&1; then
      echo "   FAILED (see $out_dir/${name}_${kernel}.log)" >&2
      failed=1
      continue
    fi
    if [ -x "$build_dir/tools/validate_report" ]; then
      "$build_dir/tools/validate_report" "$json" >/dev/null
    fi
    reports+=("$json")
  done
done

if [ "$failed" -ne 0 ]; then
  echo "run_all.sh: one or more benches failed; not writing $baseline" >&2
  exit 1
fi
if [ "${#reports[@]}" -eq 0 ]; then
  echo "run_all.sh: no reports produced" >&2
  exit 1
fi

"$build_dir/tools/merge_reports" -o "$baseline" "${reports[@]}"
echo "run_all.sh: ${#reports[@]} benches -> $baseline"
