// Ablation: DSM vs message passing for the blocked strategy (real threaded
// runs).  The paper picked DSM for its easier programming model (Section 7);
// this quantifies what that convenience costs on the wire.
#include <iostream>

#include "bench_common.h"
#include "core/blocked.h"
#include "core/blocked_mp.h"
#include "core/sim_strategies.h"
#include "util/genome.h"
#include "util/timer.h"

int main() {
  using namespace gdsm;
  bench::banner("Ablation — DSM vs message passing",
                "Blocked strategy on both substrates: identical results, "
                "different wire traffic (real threaded runs, 4 kBP pair)");

  HomologousPairSpec spec;
  spec.length_s = 4'000;
  spec.length_t = 4'000;
  spec.n_regions = 4;
  spec.region_len_mean = 200;
  spec.region_len_spread = 40;
  spec.seed = 1905;
  const HomologousPair pair = make_homologous_pair(spec);

  TextTable table("DSM vs MP, blocked strategy (2x2 multiplier)");
  table.set_header({"procs", "results equal", "DSM msgs", "DSM KiB", "MP msgs",
                    "MP KiB", "traffic ratio"});
  for (int procs : {2, 4, 8}) {
    core::BlockedConfig cfg;
    cfg.nprocs = procs;
    cfg.mult_w = 2;
    cfg.mult_h = 2;
    cfg.params.min_report_score = 40;

    const core::StrategyResult dsm_run = core::blocked_align(pair.s, pair.t, cfg);
    const core::MpStrategyResult mp_run =
        core::blocked_align_mp(pair.s, pair.t, cfg);

    const auto dsm_traffic = dsm_run.dsm_stats.total_traffic();
    table.add_row(
        {std::to_string(procs),
         dsm_run.candidates == mp_run.candidates ? "yes" : "NO",
         std::to_string(dsm_traffic.total_messages()),
         std::to_string(dsm_traffic.total_bytes() / 1024),
         std::to_string(mp_run.traffic.total_messages()),
         std::to_string(mp_run.traffic.total_bytes() / 1024),
         fmt_f(static_cast<double>(dsm_traffic.total_bytes()) /
                   static_cast<double>(mp_run.traffic.total_bytes()),
               2) +
             "x"});
  }
  table.print(std::cout);

  // Projected 1998-platform times for both substrates (simulated twins).
  TextTable sim_table("Simulated 1998-platform times, 50K sequences");
  sim_table.set_header({"procs", "DSM blocked (s)", "MP blocked (s)",
                        "DSM overhead"});
  for (int procs : {2, 4, 8}) {
    const auto bands = static_cast<std::size_t>(5 * procs);
    const double dsm_t =
        core::sim_blocked(50'000, 50'000, procs, bands, bands).total_s;
    const double mp_t =
        core::sim_blocked_mp(50'000, 50'000, procs, bands, bands).total_s;
    sim_table.add_row({std::to_string(procs), fmt_f(dsm_t, 1), fmt_f(mp_t, 1),
                       "+" + fmt_f(100.0 * (dsm_t / mp_t - 1.0), 1) + "%"});
  }
  sim_table.print(std::cout);

  std::cout
      << "Reading: both substrates compute the identical candidate queue.\n"
         "The DSM moves whole 4 KiB pages plus cv/diff/notice protocol\n"
         "messages where message passing ships exactly the boundary cells —\n"
         "the price of the shared-memory abstraction the paper found easier\n"
         "to program.\n";
  return 0;
}
