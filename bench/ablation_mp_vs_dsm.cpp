// Ablation: DSM vs message passing for the blocked strategy (real threaded
// runs).  The paper picked DSM for its easier programming model (Section 7);
// this quantifies what that convenience costs on the wire.
//
// Default pair size is 4 kBP; pass --size= to change it (the bench_smoke
// tests run a smaller pair).
#include <iostream>

#include "bench_common.h"
#include "core/blocked.h"
#include "core/blocked_mp.h"
#include "core/report_io.h"
#include "core/sim_strategies.h"
#include "obs/snapshots.h"
#include "util/genome.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  const auto size = static_cast<std::size_t>(args.get_int("size", 4'000));
  bench::banner("Ablation — DSM vs message passing",
                "Blocked strategy on both substrates: identical results, "
                "different wire traffic (real threaded runs, " +
                    std::to_string(size / 1000) + " kBP pair)");

  HomologousPairSpec spec;
  spec.length_s = size;
  spec.length_t = size;
  spec.n_regions = 4;
  spec.region_len_mean = 200;
  spec.region_len_spread = 40;
  spec.seed = 1905;
  const HomologousPair pair = make_homologous_pair(spec);

  obs::RunReport report("ablation_mp_vs_dsm",
                        "Ablation — DSM vs message passing, blocked strategy");
  report.set_param("size", size);
  report.set_param("mult_w", 2);
  report.set_param("mult_h", 2);

  TextTable table("DSM vs MP, blocked strategy (2x2 multiplier)");
  table.set_header({"procs", "results equal", "DSM msgs", "DSM KiB", "MP msgs",
                    "MP KiB", "traffic ratio"});
  for (int procs : {2, 4, 8}) {
    core::BlockedConfig cfg;
    cfg.nprocs = procs;
    cfg.mult_w = 2;
    cfg.mult_h = 2;
    cfg.params.min_report_score = 40;

    const core::StrategyResult dsm_run = core::blocked_align(pair.s, pair.t, cfg);
    const core::MpStrategyResult mp_run =
        core::blocked_align_mp(pair.s, pair.t, cfg);

    const auto dsm_traffic = dsm_run.dsm_stats.total_traffic();
    table.add_row(
        {std::to_string(procs),
         dsm_run.candidates == mp_run.candidates ? "yes" : "NO",
         std::to_string(dsm_traffic.total_messages()),
         std::to_string(dsm_traffic.total_bytes() / 1024),
         std::to_string(mp_run.traffic.total_messages()),
         std::to_string(mp_run.traffic.total_bytes() / 1024),
         fmt_f(static_cast<double>(dsm_traffic.total_bytes()) /
                   static_cast<double>(mp_run.traffic.total_bytes()),
               2) +
             "x"});

    obs::Json rec = obs::Json::object();
    rec.set("procs", procs);
    rec.set("results_equal", dsm_run.candidates == mp_run.candidates);
    rec.set("dsm", core::strategy_result_json(dsm_run));
    rec.set("mp_traffic", obs::to_json(mp_run.traffic));
    rec.set("traffic_ratio",
            static_cast<double>(dsm_traffic.total_bytes()) /
                static_cast<double>(mp_run.traffic.total_bytes()));
    report.add_row("substrates", std::move(rec));
  }
  table.print(std::cout);

  // Projected 1998-platform times for both substrates (simulated twins).
  TextTable sim_table("Simulated 1998-platform times, 50K sequences");
  sim_table.set_header({"procs", "DSM blocked (s)", "MP blocked (s)",
                        "DSM overhead"});
  for (int procs : {2, 4, 8}) {
    const auto bands = static_cast<std::size_t>(5 * procs);
    const core::SimReport dsm_rep =
        core::sim_blocked(50'000, 50'000, procs, bands, bands);
    const core::SimReport mp_rep =
        core::sim_blocked_mp(50'000, 50'000, procs, bands, bands);
    sim_table.add_row({std::to_string(procs), fmt_f(dsm_rep.total_s, 1),
                       fmt_f(mp_rep.total_s, 1),
                       "+" + fmt_f(100.0 * (dsm_rep.total_s / mp_rep.total_s -
                                            1.0),
                                   1) +
                           "%"});

    obs::Json rec = obs::Json::object();
    rec.set("procs", procs);
    rec.set("size", 50'000);
    rec.set("dsm_total_s", dsm_rep.total_s);
    rec.set("mp_total_s", mp_rep.total_s);
    rec.set("dsm_overhead", dsm_rep.total_s / mp_rep.total_s - 1.0);
    rec.set("dsm_sim", core::sim_report_json(dsm_rep));
    rec.set("mp_sim", core::sim_report_json(mp_rep));
    report.add_row("simulated_times", std::move(rec));
  }
  sim_table.print(std::cout);

  std::cout
      << "Reading: both substrates compute the identical candidate queue.\n"
         "The DSM moves whole 4 KiB pages plus cv/diff/notice protocol\n"
         "messages where message passing ships exactly the boundary cells —\n"
         "the price of the shared-memory abstraction the paper found easier\n"
         "to program.\n";
  return bench::emit_report(report, args);
}
