// Tests for the observability layer: the JSON document model (writer,
// parser, round-trips), the RunReport schema, and the DSM/sim snapshot
// conversions (docs/METRICS.md).
#include <cstdint>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "core/report_io.h"
#include "core/sim_strategies.h"
#include "dsm/cluster.h"
#include "obs/json.h"
#include "obs/report.h"
#include "obs/snapshots.h"
#include "obs/validate.h"

namespace gdsm::obs {
namespace {

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("line\nfeed"), "line\\nfeed");
  EXPECT_EQ(json_escape(std::string_view("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(json_escape("\x01\x1f"), "\\u0001\\u001f");
  // UTF-8 passes through unescaped.
  EXPECT_EQ(json_escape("séquence"), "séquence");
}

TEST(JsonWriter, ScalarForms) {
  EXPECT_EQ(Json().dump(0), "null");
  EXPECT_EQ(Json(true).dump(0), "true");
  EXPECT_EQ(Json(false).dump(0), "false");
  EXPECT_EQ(Json(42).dump(0), "42");
  EXPECT_EQ(Json(-7).dump(0), "-7");
  EXPECT_EQ(Json(1.5).dump(0), "1.5");
  // Whole doubles keep a trailing .0 so the type survives a round trip.
  EXPECT_EQ(Json(3.0).dump(0), "3.0");
  EXPECT_EQ(Json("hi").dump(0), "\"hi\"");
  // Non-finite doubles have no JSON form; they serialize as null.
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(0), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(0), "null");
}

TEST(JsonWriter, ObjectsPreserveInsertionOrder) {
  Json obj = Json::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  EXPECT_EQ(obj.dump(0), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  // set() on an existing key replaces in place, keeping the position.
  obj.set("alpha", 9);
  EXPECT_EQ(obj.dump(0), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
}

TEST(JsonRoundTrip, Integers64Bit) {
  const std::int64_t int_min = std::numeric_limits<std::int64_t>::min();
  const std::uint64_t uint_max = std::numeric_limits<std::uint64_t>::max();
  Json doc = Json::object();
  doc.set("int_min", int_min);
  doc.set("uint_max", uint_max);
  doc.set("big_counter", std::uint64_t{9'007'199'254'740'993u});  // 2^53 + 1

  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back.at("int_min").as_int(), int_min);
  EXPECT_EQ(back.at("uint_max").as_uint(), uint_max);
  // 2^53 + 1 is NOT representable as a double; exact integer round-trip is
  // the point of keeping separate int/uint alternatives.
  EXPECT_EQ(back.at("big_counter").as_uint(), 9'007'199'254'740'993u);
  EXPECT_EQ(back, doc);
}

TEST(JsonRoundTrip, NestedDocument) {
  Json doc = Json::object();
  doc.set("title", "escaped \"quotes\" and\nnewlines\t\\");
  doc.set("pi", 3.14159);
  doc.set("flag", true);
  doc.set("nothing", nullptr);
  Json arr = Json::array();
  arr.push(1);
  arr.push("two");
  Json inner = Json::object();
  inner.set("deep", -12.5);
  arr.push(std::move(inner));
  doc.set("items", std::move(arr));

  for (const int indent : {0, 2, 4}) {
    const Json back = Json::parse(doc.dump(indent));
    EXPECT_EQ(back, doc) << "indent=" << indent;
  }
}

TEST(JsonParser, UnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "é");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(), "\U0001F600");
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), JsonParseError);
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonParseError);
  EXPECT_THROW(Json::parse("{'a':1}"), JsonParseError);
  EXPECT_THROW(Json::parse("nul"), JsonParseError);
  EXPECT_THROW(Json::parse("1 2"), JsonParseError);  // trailing garbage
  EXPECT_THROW(Json::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(Json::parse("\"\\ud83d\""), JsonParseError);  // lone surrogate
  try {
    Json::parse("[1, oops]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_GT(e.offset(), 0u);
  }
}

TEST(MetricsRegistryTest, SetAddAndSerialize) {
  MetricsRegistry metrics;
  metrics.set("runs", 1);
  metrics.add("runs", 2);
  metrics.add("fresh_counter", 5);
  metrics.set("ratio", 0.5);
  EXPECT_TRUE(metrics.has("runs"));
  EXPECT_FALSE(metrics.has("absent"));

  const Json j = metrics.to_json();
  EXPECT_DOUBLE_EQ(j.at("runs").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(j.at("fresh_counter").as_double(), 5.0);
  EXPECT_DOUBLE_EQ(j.at("ratio").as_double(), 0.5);
}

TEST(RunReportTest, SchemaFieldsPresent) {
  RunReport report("unit_test_experiment", "A unit-test report");
  report.set_param("size", 128);
  report.metrics().set("elapsed_s", 1.25);
  Json row = Json::object();
  row.set("x", 1);
  report.add_row("points", std::move(row));

  const Json doc = report.to_json();
  EXPECT_EQ(doc.at("schema").as_string(), kReportSchema);
  EXPECT_EQ(doc.at("schema_version").as_int(), kSchemaVersion);
  EXPECT_EQ(doc.at("experiment").as_string(), "unit_test_experiment");
  EXPECT_EQ(doc.at("title").as_string(), "A unit-test report");
  EXPECT_FALSE(doc.at("build").at("git").as_string().empty());
  EXPECT_EQ(doc.at("params").at("size").as_int(), 128);
  EXPECT_EQ(doc.at("series").at("points").items().size(), 1u);

  // The document survives a serialize/parse cycle intact.
  std::ostringstream out;
  report.write(out);
  EXPECT_EQ(Json::parse(out.str()), doc);
}

TEST(RunReportTest, AddRowRequiresObjects) {
  RunReport report("x", "y");
  EXPECT_THROW(report.add_row("series", Json(1)), std::runtime_error);
}

// Object copy with one member dropped — for poking version-required fields
// out of otherwise-valid documents.
Json without_member(const Json& obj, const std::string& key) {
  Json out = Json::object();
  for (const auto& [k, v] : obj.members()) {
    if (k != key) out.set(k, v);
  }
  return out;
}

// The validator shared with tools/validate_report (obs/validate.h) must
// accept every supported schema version of a well-formed document and
// nothing outside [kSchemaVersionMin, kSchemaVersion].
TEST(ValidateReportTest, AcceptsSupportedVersionsOnly) {
  RunReport report("validate_unit", "validator coverage");
  Json row = Json::object();
  row.set("x", 1);
  report.add_row("points", std::move(row));
  // to_json() auto-attaches the kernel and comm sections, so a freshly
  // emitted report is valid at the current (v6) schema out of the box.
  Json doc = report.to_json();
  ASSERT_EQ(doc.at("schema_version").as_int(), kSchemaVersion);
  EXPECT_EQ(validate_run_report(doc), "");
  // The versioned sections are required *from their introducing version
  // on*, so the same body must also validate as every older supported
  // version (v3..v6 today).
  for (int v = kSchemaVersionMin; v <= kSchemaVersion; ++v) {
    doc.set("schema_version", v);
    EXPECT_EQ(validate_run_report(doc), "") << "schema_version=" << v;
  }
  doc.set("schema_version", kSchemaVersionMin - 1);
  EXPECT_NE(validate_run_report(doc), "");
  doc.set("schema_version", kSchemaVersion + 1);
  EXPECT_NE(validate_run_report(doc), "");
}

// Regression for the v6 gap-model requirement: a v6 document whose kernel
// section lost the affine fields must be rejected with an error that names
// the missing field (docs/METRICS.md v6).
TEST(ValidateReportTest, RejectsV6ReportMissingGapModelFields) {
  RunReport report("validate_unit_v6", "v6 gap-model regression");
  Json row = Json::object();
  row.set("x", 1);
  report.add_row("points", std::move(row));
  const Json good = report.to_json();
  ASSERT_GE(good.at("schema_version").as_int(), 6);
  ASSERT_EQ(validate_run_report(good), "");

  const Json& sections = good.at("sections");
  const Json& kernel = sections.at("kernel");

  {
    Json doc = good;
    Json s = without_member(sections, "kernel");
    s.set("kernel", without_member(kernel, "gap_models"));
    doc.set("sections", std::move(s));
    const std::string why = validate_run_report(doc);
    EXPECT_NE(why.find("gap_models"), std::string::npos) << why;
  }
  {
    Json doc = good;
    Json s = without_member(sections, "kernel");
    s.set("kernel", without_member(kernel, "nw_affine"));
    doc.set("sections", std::move(s));
    const std::string why = validate_run_report(doc);
    EXPECT_NE(why.find("nw_affine"), std::string::npos) << why;
  }
}

// Regression for the v7 database-serving requirement: a freshly emitted
// report auto-carries sections.db, and a v7 document that lost it (or its
// shard_balance arrays) must be rejected naming the missing field.
TEST(ValidateReportTest, RejectsV7ReportMissingDbSection) {
  RunReport report("validate_unit_v7", "v7 db-section regression");
  Json row = Json::object();
  row.set("x", 1);
  report.add_row("points", std::move(row));
  const Json good = report.to_json();
  ASSERT_GE(good.at("schema_version").as_int(), 7);
  ASSERT_EQ(validate_run_report(good), "");

  const Json& sections = good.at("sections");
  const Json& db = sections.at("db");
  for (const char* key : {"queries", "fragments_scanned", "fragments_rejected",
                          "fragments_aligned", "filtration_rate", "hits",
                          "shard_balance"}) {
    EXPECT_TRUE(db.has(key)) << key;
  }

  {
    Json doc = good;
    doc.set("sections", without_member(sections, "db"));
    const std::string why = validate_run_report(doc);
    EXPECT_NE(why.find("sections.db"), std::string::npos) << why;
  }
  {
    Json doc = good;
    Json s = without_member(sections, "db");
    s.set("db", without_member(db, "filtration_rate"));
    doc.set("sections", std::move(s));
    const std::string why = validate_run_report(doc);
    EXPECT_NE(why.find("filtration_rate"), std::string::npos) << why;
  }
  {
    Json doc = good;
    Json s = without_member(sections, "db");
    s.set("db", without_member(db, "shard_balance"));
    doc.set("sections", std::move(s));
    const std::string why = validate_run_report(doc);
    EXPECT_NE(why.find("shard_balance"), std::string::npos) << why;
  }
}

// Regression for the v8 process-backend requirement: a freshly emitted
// report auto-carries sections.dsm with the backend name and the process
// counters, and a v8 document that lost them must be rejected by name.
TEST(ValidateReportTest, RejectsV8ReportMissingDsmSection) {
  RunReport report("validate_unit_v8", "v8 dsm-section regression");
  Json row = Json::object();
  row.set("x", 1);
  report.add_row("points", std::move(row));
  const Json good = report.to_json();
  ASSERT_GE(good.at("schema_version").as_int(), 8);
  ASSERT_EQ(validate_run_report(good), "");

  const Json& sections = good.at("sections");
  const Json& dsm = sections.at("dsm");
  const std::string backend = dsm.at("backend").as_string();
  EXPECT_TRUE(backend == "threads" || backend == "process") << backend;
  for (const char* key :
       {"peer_failures", "segv_faults", "pages_mapped", "pages_protected",
        "twins_created", "socket_bytes_sent", "socket_bytes_received"}) {
    EXPECT_TRUE(dsm.has(key)) << key;
  }

  {
    Json doc = good;
    doc.set("sections", without_member(sections, "dsm"));
    const std::string why = validate_run_report(doc);
    EXPECT_NE(why.find("sections.dsm"), std::string::npos) << why;
  }
  {
    Json doc = good;
    Json s = without_member(sections, "dsm");
    s.set("dsm", without_member(dsm, "segv_faults"));
    doc.set("sections", std::move(s));
    const std::string why = validate_run_report(doc);
    EXPECT_NE(why.find("segv_faults"), std::string::npos) << why;
  }
  {
    // An unknown backend name is as bad as a missing one.
    Json doc = good;
    Json s = without_member(sections, "dsm");
    Json bad = without_member(dsm, "backend");
    bad.set("backend", "carrier-pigeon");
    s.set("dsm", std::move(bad));
    doc.set("sections", std::move(s));
    const std::string why = validate_run_report(doc);
    EXPECT_NE(why.find("backend"), std::string::npos) << why;
  }
  // A v7 document without the dsm section is still accepted (the window
  // reaches back to v3).
  {
    Json doc = good;
    doc.set("schema_version", 7);
    doc.set("sections", without_member(sections, "dsm"));
    EXPECT_EQ(validate_run_report(doc), "");
  }
}

// Regression for the v9 striped-kernel requirement: a freshly emitted
// report auto-carries sections.kernel.striped with the precision-ladder and
// profile-cache counters, and a v9 document that lost them must be rejected
// by name — while the same body still validates at v8 and below.
TEST(ValidateReportTest, RejectsV9ReportMissingStripedCounters) {
  RunReport report("validate_unit_v9", "v9 striped-kernel regression");
  Json row = Json::object();
  row.set("x", 1);
  report.add_row("points", std::move(row));
  const Json good = report.to_json();
  ASSERT_GE(good.at("schema_version").as_int(), 9);
  ASSERT_EQ(validate_run_report(good), "");

  const Json& sections = good.at("sections");
  const Json& kernel = sections.at("kernel");
  const Json& striped = kernel.at("striped");
  for (const char* key :
       {"sweeps8", "sweeps16", "cells8", "cells16", "overflow_reruns",
        "fallback32", "delegated", "profile_builds", "profile_hits"}) {
    EXPECT_TRUE(striped.has(key)) << key;
  }

  {
    Json doc = good;
    Json s = without_member(sections, "kernel");
    s.set("kernel", without_member(kernel, "striped"));
    doc.set("sections", std::move(s));
    const std::string why = validate_run_report(doc);
    EXPECT_NE(why.find("sections.kernel.striped"), std::string::npos) << why;
  }
  {
    Json doc = good;
    Json s = without_member(sections, "kernel");
    Json k = without_member(kernel, "striped");
    k.set("striped", without_member(striped, "overflow_reruns"));
    s.set("kernel", std::move(k));
    doc.set("sections", std::move(s));
    const std::string why = validate_run_report(doc);
    EXPECT_NE(why.find("overflow_reruns"), std::string::npos) << why;
  }
  // A v8 document without the striped object is still accepted (the window
  // reaches back to v3).
  {
    Json doc = good;
    doc.set("schema_version", 8);
    Json s = without_member(sections, "kernel");
    s.set("kernel", without_member(kernel, "striped"));
    doc.set("sections", std::move(s));
    EXPECT_EQ(validate_run_report(doc), "");
  }
}

// Regression for the v10 cascade requirement: a freshly emitted report
// auto-carries sections.db.cascade with the seed-and-extend funnel
// counters, and a v10 document that lost them must be rejected by name —
// while the same body still validates at v9 and below.
TEST(ValidateReportTest, RejectsV10ReportMissingCascadeCounters) {
  RunReport report("validate_unit_v10", "v10 cascade regression");
  Json row = Json::object();
  row.set("x", 1);
  report.add_row("points", std::move(row));
  const Json good = report.to_json();
  ASSERT_GE(good.at("schema_version").as_int(), 10);
  ASSERT_EQ(validate_run_report(good), "");

  const Json& sections = good.at("sections");
  const Json& db = sections.at("db");
  const Json& cascade = db.at("cascade");
  for (const char* key : {"seeds", "chains", "extensions",
                          "dp_skipped_by_bound", "dp_confirmed",
                          "index_mmap_hits"}) {
    EXPECT_TRUE(cascade.has(key)) << key;
  }

  {
    Json doc = good;
    Json s = without_member(sections, "db");
    s.set("db", without_member(db, "cascade"));
    doc.set("sections", std::move(s));
    const std::string why = validate_run_report(doc);
    EXPECT_NE(why.find("sections.db.cascade"), std::string::npos) << why;
  }
  {
    Json doc = good;
    Json s = without_member(sections, "db");
    Json d = without_member(db, "cascade");
    d.set("cascade", without_member(cascade, "dp_skipped_by_bound"));
    s.set("db", std::move(d));
    doc.set("sections", std::move(s));
    const std::string why = validate_run_report(doc);
    EXPECT_NE(why.find("dp_skipped_by_bound"), std::string::npos) << why;
  }
  // A v9 document without the cascade object is still accepted (the window
  // reaches back to v3).
  {
    Json doc = good;
    doc.set("schema_version", 9);
    Json s = without_member(sections, "db");
    s.set("db", without_member(db, "cascade"));
    doc.set("sections", std::move(s));
    EXPECT_EQ(validate_run_report(doc), "");
  }
}

TEST(SnapshotsTest, DsmStatsFromRealClusterRun) {
  dsm::Cluster cluster(2);
  const dsm::GlobalAddr arr = cluster.alloc(16 * 1024, 0);
  cluster.run([&](dsm::Node& node) {
    if (node.id() == 0) {
      for (std::size_t i = 0; i < 16 * 1024 / sizeof(int); ++i) {
        node.write<int>(arr + i * sizeof(int), static_cast<int>(i));
      }
    }
    node.barrier();
    if (node.id() == 1) {
      long sum = 0;
      for (std::size_t i = 0; i < 16 * 1024 / sizeof(int); ++i) {
        sum += node.read<int>(arr + i * sizeof(int));
      }
      EXPECT_GT(sum, 0);
    }
    node.barrier();
  });

  const dsm::DsmStats stats = cluster.stats();
  const Json j = to_json(stats);
  // Round-trip through text, as a bench report would.
  const Json back = Json::parse(j.dump());
  ASSERT_EQ(back.at("nodes").items().size(), 2u);
  EXPECT_GT(back.at("totals").at("node").at("read_faults").as_uint(), 0u);
  EXPECT_GT(back.at("totals").at("node").at("barriers").as_uint(), 0u);
  EXPECT_GT(back.at("totals").at("traffic").at("messages").as_uint(), 0u);
  EXPECT_GT(back.at("totals").at("traffic").at("bytes").as_uint(), 0u);
  // Every NodeStats counter is present on each per-node entry.
  for (const char* key :
       {"read_faults", "write_faults", "diffs_sent", "diff_bytes",
        "invalidations", "evictions", "lock_acquires", "lock_releases",
        "barriers", "cv_signals", "cv_waits", "diff_batches_sent",
        "diff_pages_batched", "bulk_fetches", "bulk_pages_fetched",
        "prefetch_issued", "prefetch_hits", "prefetch_wasted",
        "empty_diffs_suppressed", "peer_failures", "segv_faults",
        "pages_mapped", "pages_protected", "twins_created",
        "socket_bytes_sent", "socket_bytes_received"}) {
    EXPECT_TRUE(back.at("nodes").items()[0].has(key)) << key;
  }
  // v8: the stats snapshot names the backend that ran the job.
  const std::string backend = back.at("backend").as_string();
  EXPECT_TRUE(backend == "threads" || backend == "process") << backend;
}

TEST(SnapshotsTest, SimReportJson) {
  const core::SimReport rep = core::sim_wavefront(2'000, 2'000, 4);
  const Json j = core::sim_report_json(rep, /*per_node=*/true);
  EXPECT_GT(j.at("total_s").as_double(), 0.0);
  const Json& bd = j.at("breakdown");
  for (const char* key : {"computation_s", "communication_s", "lock_cv_s",
                          "barrier_s", "io_s", "total_s"}) {
    EXPECT_TRUE(bd.has(key)) << key;
  }
  EXPECT_EQ(j.at("per_node").items().size(), 4u);
}

}  // namespace
}  // namespace gdsm::obs
