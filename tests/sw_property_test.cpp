// Property-based sweeps over random inputs: the algebraic invariants the DP
// kernels must satisfy for any sequences and (sane) scoring schemes.
#include <gtest/gtest.h>

#include "sw/full_matrix.h"
#include "sw/hirschberg.h"
#include "sw/linear_score.h"
#include "testing/oracle.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm {
namespace {

struct PropCase {
  std::uint64_t seed;
  std::size_t len_s;
  std::size_t len_t;
  ScoreScheme scheme;
};

std::string prop_name(const ::testing::TestParamInfo<PropCase>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_s" + std::to_string(p.len_s) +
         "_t" + std::to_string(p.len_t) + "_m" + std::to_string(p.scheme.match) +
         "_x" + std::to_string(-p.scheme.mismatch) + "_g" +
         std::to_string(-p.scheme.gap);
}

class SwProperty : public ::testing::TestWithParam<PropCase> {
 protected:
  void SetUp() override {
    Rng rng(GetParam().seed);
    s_ = random_dna(GetParam().len_s, rng, "s");
    t_ = random_dna(GetParam().len_t, rng, "t");
  }
  Sequence s_, t_;
};

TEST_P(SwProperty, LocalScoreIsSymmetric) {
  const auto& scheme = GetParam().scheme;
  EXPECT_EQ(sw_best_score_linear(s_, t_, scheme).score,
            sw_best_score_linear(t_, s_, scheme).score);
}

TEST_P(SwProperty, LinearEqualsFullMatrix) {
  const auto& scheme = GetParam().scheme;
  MatrixBest best;
  sw_fill(s_, t_, scheme, &best);
  EXPECT_EQ(sw_best_score_linear(s_, t_, scheme).score, best.score);
}

TEST_P(SwProperty, ReverseInvariance) {
  // Observation 6.1: alignments of the reverses mirror the originals, so the
  // best local score is invariant under reversing both sequences.
  const auto& scheme = GetParam().scheme;
  EXPECT_EQ(sw_best_score_linear(s_, t_, scheme).score,
            sw_best_score_linear(s_.reversed(), t_.reversed(), scheme).score);
}

TEST_P(SwProperty, LocalDominatesGlobal) {
  const auto& scheme = GetParam().scheme;
  const Alignment local = smith_waterman(s_, t_, scheme);
  const Alignment global = needleman_wunsch(s_, t_, scheme);
  EXPECT_GE(local.score, 0);
  EXPECT_GE(local.score, global.score);
}

TEST_P(SwProperty, TracebackScoreConsistent) {
  const auto& scheme = GetParam().scheme;
  const Alignment local = smith_waterman(s_, t_, scheme);
  EXPECT_EQ(local.compute_score(s_, t_, scheme), local.score);
  EXPECT_LE(local.s_end(), s_.size());
  EXPECT_LE(local.t_end(), t_.size());
}

TEST_P(SwProperty, HirschbergEqualsNeedlemanWunsch) {
  const auto& scheme = GetParam().scheme;
  const Alignment h = hirschberg(s_, t_, scheme);
  const Alignment nw = needleman_wunsch(s_, t_, scheme);
  EXPECT_EQ(h.score, nw.score);
  EXPECT_EQ(h.compute_score(s_, t_, scheme), h.score);
}

TEST_P(SwProperty, SubstringScoreIsMonotone) {
  // Any local alignment inside a substring of s exists unchanged in s, so
  // extending a sequence can only keep or raise the best local score.
  const auto& scheme = GetParam().scheme;
  const int full = sw_best_score_linear(s_, t_, scheme).score;
  for (const double frac : {0.25, 0.5, 0.75}) {
    const auto cut = static_cast<std::size_t>(
        static_cast<double>(s_.size()) * frac);
    EXPECT_LE(sw_best_score_linear(s_.slice(0, cut), t_, scheme).score, full);
    EXPECT_LE(sw_best_score_linear(s_.slice(cut, s_.size()), t_, scheme).score,
              full);
  }
}

TEST_P(SwProperty, ConcatenationIsLowerBoundedByParts) {
  // s_ and t_ both survive intact inside s_ + t_, so aligning the
  // concatenation against either part scores at least as well as the best
  // of the parts against it.
  const auto& scheme = GetParam().scheme;
  Sequence cat = s_;
  for (std::size_t i = 0; i < t_.size(); ++i) cat.append(t_[i]);
  const int parts = std::max(sw_best_score_linear(s_, t_, scheme).score,
                             sw_best_score_linear(t_, t_, scheme).score);
  EXPECT_GE(sw_best_score_linear(cat, t_, scheme).score, parts);
}

TEST_P(SwProperty, NwLastRowMatchesMatrix) {
  const auto& scheme = GetParam().scheme;
  const DpMatrix a = nw_fill(s_, t_, scheme);
  const std::vector<int> last = nw_last_row(s_, t_, scheme);
  ASSERT_EQ(last.size(), a.cols());
  for (std::size_t j = 0; j < last.size(); ++j) {
    EXPECT_EQ(last[j], a.at(a.rows() - 1, j));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, SwProperty,
    ::testing::Values(
        PropCase{11, 40, 40, ScoreScheme{}},
        PropCase{12, 64, 32, ScoreScheme{}},
        PropCase{13, 33, 65, ScoreScheme{}},
        PropCase{14, 100, 100, ScoreScheme{}},
        PropCase{15, 1, 50, ScoreScheme{}},
        PropCase{16, 50, 1, ScoreScheme{}},
        PropCase{17, 128, 120, ScoreScheme{2, -1, -3}},
        PropCase{18, 77, 90, ScoreScheme{1, -2, -1}},
        PropCase{19, 90, 77, ScoreScheme{3, -2, -4}},
        PropCase{20, 200, 150, ScoreScheme{}},
        PropCase{21, 150, 200, ScoreScheme{1, -3, -5}}),
    prop_name);

// Homologous (planted) pairs must carry a strong local signal.
TEST(SwPlanted, PlantedRegionScoresHigh) {
  HomologousPairSpec spec;
  spec.length_s = 2000;
  spec.length_t = 2000;
  spec.n_regions = 2;
  spec.region_len_mean = 200;
  spec.region_len_spread = 20;
  spec.seed = 31;
  const HomologousPair pair = make_homologous_pair(spec);
  const BestLocal best = sw_best_score_linear(pair.s, pair.t);
  // A ~200 bp region at ~95% identity scores far above random background
  // (random DNA of this size stays below ~30).
  EXPECT_GT(best.score, 100);
}

// The differential oracle's seeded case generation must be deterministic
// and its two serial exact references must agree — the preconditions for
// the fault-matrix suite (tests/differential_oracle_test.cpp) to mean
// anything.  Mask 0 runs only the serial cross-check.
TEST(SwPlanted, OracleCaseIsDeterministicAndSelfConsistent) {
  testing::OracleCase c;
  c.seed = 23;
  c.length_s = c.length_t = 500;
  const HomologousPair a = c.make_pair();
  const HomologousPair b = c.make_pair();
  EXPECT_EQ(a.s, b.s);
  EXPECT_EQ(a.t, b.t);
  const testing::OracleVerdict v = run_differential(c, /*mask=*/0);
  EXPECT_TRUE(v.ok) << v.summary();
  EXPECT_GT(v.serial_best, 0);
  EXPECT_GT(v.serial_candidates, 0u);
}

}  // namespace
}  // namespace gdsm
