// Property-based sweeps over random inputs: the algebraic invariants the DP
// kernels must satisfy for any sequences and (sane) scoring schemes.
#include <gtest/gtest.h>

#include "db/subject_db.h"
#include "sw/affine.h"
#include "sw/full_matrix.h"
#include "sw/hirschberg.h"
#include "sw/linear_score.h"
#include "testing/oracle.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm {
namespace {

struct PropCase {
  std::uint64_t seed;
  std::size_t len_s;
  std::size_t len_t;
  ScoreScheme scheme;
};

// Serial Gotoh reference oriented like sw_best_score_linear: the kernel
// route puts the shorter word on the lane dimension (Section 6) and ties
// follow the scanned orientation, so a tied best can land on a different
// cell than an s-major scan.  Scanning the reference in the same
// orientation keeps the end-cell comparison exact.
BestLocal gotoh_ref_oriented(const Sequence& s, const Sequence& t,
                             const AffineScheme& sc) {
  if (t.size() <= s.size()) return sw_best_score_affine_linear(s, t, sc);
  BestLocal r = sw_best_score_affine_linear(t, s, sc);
  std::swap(r.end_i, r.end_j);
  return r;
}

std::string prop_name(const ::testing::TestParamInfo<PropCase>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_s" + std::to_string(p.len_s) +
         "_t" + std::to_string(p.len_t) + "_m" + std::to_string(p.scheme.match) +
         "_x" + std::to_string(-p.scheme.mismatch) + "_g" +
         std::to_string(-p.scheme.gap);
}

class SwProperty : public ::testing::TestWithParam<PropCase> {
 protected:
  void SetUp() override {
    Rng rng(GetParam().seed);
    s_ = random_dna(GetParam().len_s, rng, "s");
    t_ = random_dna(GetParam().len_t, rng, "t");
  }
  Sequence s_, t_;
};

TEST_P(SwProperty, LocalScoreIsSymmetric) {
  const auto& scheme = GetParam().scheme;
  EXPECT_EQ(sw_best_score_linear(s_, t_, scheme).score,
            sw_best_score_linear(t_, s_, scheme).score);
}

TEST_P(SwProperty, LinearEqualsFullMatrix) {
  const auto& scheme = GetParam().scheme;
  MatrixBest best;
  sw_fill(s_, t_, scheme, &best);
  EXPECT_EQ(sw_best_score_linear(s_, t_, scheme).score, best.score);
}

TEST_P(SwProperty, ReverseInvariance) {
  // Observation 6.1: alignments of the reverses mirror the originals, so the
  // best local score is invariant under reversing both sequences.
  const auto& scheme = GetParam().scheme;
  EXPECT_EQ(sw_best_score_linear(s_, t_, scheme).score,
            sw_best_score_linear(s_.reversed(), t_.reversed(), scheme).score);
}

TEST_P(SwProperty, LocalDominatesGlobal) {
  const auto& scheme = GetParam().scheme;
  const Alignment local = smith_waterman(s_, t_, scheme);
  const Alignment global = needleman_wunsch(s_, t_, scheme);
  EXPECT_GE(local.score, 0);
  EXPECT_GE(local.score, global.score);
}

TEST_P(SwProperty, TracebackScoreConsistent) {
  const auto& scheme = GetParam().scheme;
  const Alignment local = smith_waterman(s_, t_, scheme);
  EXPECT_EQ(local.compute_score(s_, t_, scheme), local.score);
  EXPECT_LE(local.s_end(), s_.size());
  EXPECT_LE(local.t_end(), t_.size());
}

TEST_P(SwProperty, HirschbergEqualsNeedlemanWunsch) {
  const auto& scheme = GetParam().scheme;
  const Alignment h = hirschberg(s_, t_, scheme);
  const Alignment nw = needleman_wunsch(s_, t_, scheme);
  EXPECT_EQ(h.score, nw.score);
  EXPECT_EQ(h.compute_score(s_, t_, scheme), h.score);
}

TEST_P(SwProperty, SubstringScoreIsMonotone) {
  // Any local alignment inside a substring of s exists unchanged in s, so
  // extending a sequence can only keep or raise the best local score.
  const auto& scheme = GetParam().scheme;
  const int full = sw_best_score_linear(s_, t_, scheme).score;
  for (const double frac : {0.25, 0.5, 0.75}) {
    const auto cut = static_cast<std::size_t>(
        static_cast<double>(s_.size()) * frac);
    EXPECT_LE(sw_best_score_linear(s_.slice(0, cut), t_, scheme).score, full);
    EXPECT_LE(sw_best_score_linear(s_.slice(cut, s_.size()), t_, scheme).score,
              full);
  }
}

TEST_P(SwProperty, ConcatenationIsLowerBoundedByParts) {
  // s_ and t_ both survive intact inside s_ + t_, so aligning the
  // concatenation against either part scores at least as well as the best
  // of the parts against it.
  const auto& scheme = GetParam().scheme;
  Sequence cat = s_;
  for (std::size_t i = 0; i < t_.size(); ++i) cat.append(t_[i]);
  const int parts = std::max(sw_best_score_linear(s_, t_, scheme).score,
                             sw_best_score_linear(t_, t_, scheme).score);
  EXPECT_GE(sw_best_score_linear(cat, t_, scheme).score, parts);
}

TEST_P(SwProperty, AffineWithZeroOpenEqualsLinear) {
  // gap(k) = open + k*extend degenerates to the linear model when open == 0;
  // the kernels promise bit-identity, not just equal scores, so compare the
  // end cell too.
  ScoreScheme affine = GetParam().scheme;
  affine.gap_open = 0;  // explicit: the affine recurrence with a free open
  const BestLocal lin = sw_best_score_linear(s_, t_, GetParam().scheme);
  const BestLocal aff = gotoh_ref_oriented(
      s_, t_, AffineScheme{affine.match, affine.mismatch, 0, affine.gap});
  EXPECT_EQ(lin.score, aff.score);
  EXPECT_EQ(lin.end_i, aff.end_i);
  EXPECT_EQ(lin.end_j, aff.end_j);
}

TEST_P(SwProperty, AffineScoreMonotoneInExtendPenalty) {
  // Every alignment's score is non-increasing as the extension penalty
  // deepens, so the best score is too.
  ScoreScheme sc = GetParam().scheme;
  sc.gap_open = -3;
  int prev = sw_best_score_linear(s_, t_, sc).score;
  for (int extend = sc.gap - 1; extend >= sc.gap - 3; --extend) {
    ScoreScheme harsher = sc;
    harsher.gap = extend;
    const int cur = sw_best_score_linear(s_, t_, harsher).score;
    EXPECT_LE(cur, prev) << "extend=" << extend;
    prev = cur;
  }
}

TEST_P(SwProperty, AffineIsUpperBoundedByLinear) {
  // Affine charges the (negative) open on top of the same per-space extend,
  // so no alignment can score better than under the linear model.
  ScoreScheme affine = GetParam().scheme;
  affine.gap_open = -4;
  EXPECT_LE(sw_best_score_linear(s_, t_, affine).score,
            sw_best_score_linear(s_, t_, GetParam().scheme).score);
}

TEST_P(SwProperty, AffineKernelsMatchSerialGotoh) {
  // The dispatched kernel path (sw_best_score_linear routes affine schemes
  // to the Gotoh kernels) against the independent scalar reference.
  ScoreScheme sc = GetParam().scheme;
  sc.gap_open = -3;
  const BestLocal kernel = sw_best_score_linear(s_, t_, sc);
  const BestLocal ref = gotoh_ref_oriented(s_, t_, to_affine(sc));
  EXPECT_EQ(kernel.score, ref.score);
  EXPECT_EQ(kernel.end_i, ref.end_i);
  EXPECT_EQ(kernel.end_j, ref.end_j);
}

TEST_P(SwProperty, HirschbergAffineEqualsGotoh) {
  ScoreScheme sc = GetParam().scheme;
  sc.gap_open = -3;
  const AffineScheme asc = to_affine(sc);
  const Alignment h = hirschberg_affine(s_, t_, asc);
  const Alignment nw = needleman_wunsch_affine(s_, t_, asc);
  EXPECT_EQ(h.score, nw.score);
  EXPECT_EQ(affine_alignment_score(h, s_, t_, asc), h.score);
}

TEST_P(SwProperty, NwLastRowMatchesMatrix) {
  const auto& scheme = GetParam().scheme;
  const DpMatrix a = nw_fill(s_, t_, scheme);
  const std::vector<int> last = nw_last_row(s_, t_, scheme);
  ASSERT_EQ(last.size(), a.cols());
  for (std::size_t j = 0; j < last.size(); ++j) {
    EXPECT_EQ(last[j], a.at(a.rows() - 1, j));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, SwProperty,
    ::testing::Values(
        PropCase{11, 40, 40, ScoreScheme{}},
        PropCase{12, 64, 32, ScoreScheme{}},
        PropCase{13, 33, 65, ScoreScheme{}},
        PropCase{14, 100, 100, ScoreScheme{}},
        PropCase{15, 1, 50, ScoreScheme{}},
        PropCase{16, 50, 1, ScoreScheme{}},
        PropCase{17, 128, 120, ScoreScheme{2, -1, -3}},
        PropCase{18, 77, 90, ScoreScheme{1, -2, -1}},
        PropCase{19, 90, 77, ScoreScheme{3, -2, -4}},
        PropCase{20, 200, 150, ScoreScheme{}},
        PropCase{21, 150, 200, ScoreScheme{1, -3, -5}}),
    prop_name);

// Homologous (planted) pairs must carry a strong local signal.
TEST(SwPlanted, PlantedRegionScoresHigh) {
  HomologousPairSpec spec;
  spec.length_s = 2000;
  spec.length_t = 2000;
  spec.n_regions = 2;
  spec.region_len_mean = 200;
  spec.region_len_spread = 20;
  spec.seed = 31;
  const HomologousPair pair = make_homologous_pair(spec);
  const BestLocal best = sw_best_score_linear(pair.s, pair.t);
  // A ~200 bp region at ~95% identity scores far above random background
  // (random DNA of this size stays below ~30).
  EXPECT_GT(best.score, 100);
}

// The differential oracle's seeded case generation must be deterministic
// and its two serial exact references must agree — the preconditions for
// the fault-matrix suite (tests/differential_oracle_test.cpp) to mean
// anything.  Mask 0 runs only the serial cross-check.
TEST(SwPlanted, OracleCaseIsDeterministicAndSelfConsistent) {
  testing::OracleCase c;
  c.seed = 23;
  c.length_s = c.length_t = 500;
  const HomologousPair a = c.make_pair();
  const HomologousPair b = c.make_pair();
  EXPECT_EQ(a.s, b.s);
  EXPECT_EQ(a.t, b.t);
  const testing::OracleVerdict v = run_differential(c, /*mask=*/0);
  EXPECT_TRUE(v.ok) << v.summary();
  EXPECT_GT(v.serial_best, 0);
  EXPECT_GT(v.serial_candidates, 0u);
}

// ----------------------------------------------- q-gram filtration bound --
// The database filter (src/db/subject_db.h) may discard a fragment only
// when its bound provably dominates the true alignment score.  These sweeps
// assert admissibility — bound >= Smith-Waterman (and Gotoh) score — on
// random pairs and on the adversarial shapes that stress the seeded-run DP:
// high-identity pairs (long match runs, every window seeded) and tandem
// repeats (the same q-grams recur everywhere, so seeding is dense while
// the true alignment still pays for the mutations).

ScoreScheme affine_scheme() {
  ScoreScheme sc;
  sc.gap_open = -3;
  sc.gap = -1;
  return sc;
}

void expect_admissible(const Sequence& a, const Sequence& b,
                       const ScoreScheme& sc, std::size_t q,
                       const char* what) {
  const int truth = sw_best_score_linear(a, b, sc).score;
  const int bound = db::qgram_score_bound(a, b, sc, q);
  EXPECT_GE(bound, truth) << what << ": q=" << q
                          << " gap=" << gap_model_name(sc.gap_model())
                          << " a=" << a.size() << " b=" << b.size();
}

TEST(QGramBound, NeverBelowTrueScoreOnRandomPairs) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const std::size_t la = 40 + rng.below(200);
    const std::size_t lb = 40 + rng.below(200);
    const Sequence a = random_dna(la, rng, "a");
    const Sequence b = random_dna(lb, rng, "b");
    for (const std::size_t q : {3u, 5u, 8u}) {
      expect_admissible(a, b, ScoreScheme{}, q, "random/linear");
      expect_admissible(a, b, affine_scheme(), q, "random/affine");
    }
  }
}

TEST(QGramBound, NeverBelowTrueScoreOnHighIdentityPairs) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 131);
    const Sequence a = random_dna(120 + rng.below(120), rng, "a");
    // 0.5%..10% divergence: long exact match runs, the regime where the
    // seeded-run DP must extend runs past q-1 and stay above the truth.
    const double sub = 0.005 + 0.001 * static_cast<double>(rng.below(95));
    const Sequence b = mutate(a, sub, sub / 4, rng);
    for (const std::size_t q : {3u, 5u, 8u}) {
      expect_admissible(a, b, ScoreScheme{}, q, "identity/linear");
      expect_admissible(a, b, affine_scheme(), q, "identity/affine");
    }
  }
}

TEST(QGramBound, NeverBelowTrueScoreOnTandemRepeats) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 733);
    // A short unit tiled many times: every q-gram of the repeat occurs in
    // both sequences, so seeding is maximal while mutations keep the true
    // score below perfect.
    const std::size_t unit_len = 3 + rng.below(9);
    const Sequence unit = random_dna(unit_len, rng, "unit");
    std::basic_string<Base> tiled;
    while (tiled.size() < 180) {
      tiled.append(unit.bases().begin(), unit.bases().end());
    }
    const Sequence a("rep_a", std::basic_string<Base>(tiled));
    const Sequence b = mutate(a, 0.08, 0.02, rng);
    for (const std::size_t q : {3u, 5u, 8u}) {
      expect_admissible(a, b, ScoreScheme{}, q, "tandem/linear");
      expect_admissible(a, b, affine_scheme(), q, "tandem/affine");
    }
  }
}

TEST(QGramBound, ExactOnIdenticalSequences) {
  Rng rng(77);
  const Sequence a = random_dna(150, rng, "a");
  // Self-comparison: every window is seeded, so the DP reaches the perfect
  // all-match score and the bound is tight (it cannot exceed m * match).
  EXPECT_EQ(db::qgram_score_bound(a, a, ScoreScheme{}, 5), 150);
  EXPECT_EQ(db::qgram_score_bound(a, a, affine_scheme(), 5), 150);
}

}  // namespace
}  // namespace gdsm
