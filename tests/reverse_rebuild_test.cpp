// Section 6 tests: rebuilding exact alignments over reversed prefixes with
// the zero-elimination pruning (Observation 6.1 / Theorem 6.2).
#include <gtest/gtest.h>

#include "sw/full_matrix.h"
#include "sw/linear_score.h"
#include "sw/reverse_rebuild.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm {
namespace {

const ScoreScheme kScheme{};

// The paper's Section 6 worked example (Tables 5-7).
TEST(ReverseRebuild, PaperWorkedExample) {
  const Sequence s("s", "TCTCGACGGATTAGTATATATATA");
  const Sequence t("t", "ATATGATCGGAATAGCTCT");
  const BestLocal best = sw_best_score_linear(s, t, kScheme);
  EXPECT_GT(best.score, 0);

  const RebuildResult res = rebuild_best_local_alignment(s, t, kScheme);
  EXPECT_EQ(res.alignment.score, best.score);
  EXPECT_EQ(res.alignment.compute_score(s, t, kScheme), best.score);
  // The pruned reverse pass must have touched strictly less area than the
  // full rectangle it ran over.
  EXPECT_GT(res.stats.computed_cells, 0u);
  EXPECT_LE(res.stats.computed_cells, res.stats.rect_area);
}

TEST(ReverseRebuild, MatchesFullMatrixTraceback) {
  for (std::uint64_t seed : {61, 62, 63, 64, 65}) {
    Rng rng(seed);
    HomologousPairSpec spec;
    spec.length_s = 400;
    spec.length_t = 400;
    spec.n_regions = 1;
    spec.region_len_mean = 80;
    spec.region_len_spread = 10;
    spec.seed = seed;
    const HomologousPair pair = make_homologous_pair(spec);

    const Alignment full = smith_waterman(pair.s, pair.t, kScheme);
    const RebuildResult res = rebuild_best_local_alignment(pair.s, pair.t, kScheme);
    EXPECT_EQ(res.alignment.score, full.score) << "seed " << seed;
    EXPECT_EQ(res.alignment.compute_score(pair.s, pair.t, kScheme), full.score);
  }
}

TEST(ReverseRebuild, HirschbergVariantSameScore) {
  Rng rng(66);
  HomologousPairSpec spec;
  spec.length_s = 600;
  spec.length_t = 500;
  spec.n_regions = 1;
  spec.region_len_mean = 120;
  spec.region_len_spread = 10;
  spec.seed = 66;
  const HomologousPair pair = make_homologous_pair(spec);
  const RebuildResult nw = rebuild_best_local_alignment(pair.s, pair.t, kScheme,
                                                        /*use_hirschberg=*/false);
  const RebuildResult h = rebuild_best_local_alignment(pair.s, pair.t, kScheme,
                                                       /*use_hirschberg=*/true);
  EXPECT_EQ(nw.alignment.score, h.alignment.score);
  EXPECT_EQ(h.alignment.compute_score(pair.s, pair.t, kScheme),
            h.alignment.score);
}

TEST(ReverseRebuild, StartCoordsDefineMinimalAlignment) {
  // The identified subwords must globally align to exactly the local score
  // (Theorem 6.2: a global alignment of that score exists between maximal
  // start positions, and none between later starts).
  Rng rng(67);
  const Sequence noise_s = random_dna(200, rng, "ns");
  const Sequence noise_t = random_dna(200, rng, "nt");
  const Sequence shared = random_dna(60, rng, "shared");
  Sequence s("s", noise_s.text() + shared.text());
  Sequence t("t", shared.text() + noise_t.text());

  const BestLocal best = sw_best_score_linear(s, t, kScheme);
  const StartCoords start =
      find_alignment_start(s, t, kScheme, best.end_i, best.end_j, best.score);
  ASSERT_GE(start.i, 1u);
  ASSERT_GE(start.j, 1u);
  const Alignment global = needleman_wunsch(
      s.slice(start.i - 1, best.end_i), t.slice(start.j - 1, best.end_j), kScheme);
  EXPECT_EQ(global.score, best.score);
}

TEST(ReverseRebuild, PrunedAreaMatchesPaperBound) {
  // Eq. (3): ~2/3 of the n' x n' square is unnecessary, i.e. the necessary
  // (worst-case) area is approximately 30%.  A perfect diagonal alignment
  // exercises exactly that worst case: the useful region is bounded by the
  // k + ceil(k/2) frontier in both directions, whose area tends to 1/3.
  Rng rng(68);
  const Sequence shared = random_dna(300, rng, "shared");
  const Sequence s = shared;
  const Sequence t = shared;
  const RebuildResult res = rebuild_best_local_alignment(s, t, kScheme);
  EXPECT_EQ(res.alignment.score, 300);
  const double frac = static_cast<double>(res.stats.computed_cells) /
                      (300.0 * 300.0);
  EXPECT_NEAR(frac, 1.0 / 3.0, 0.05)
      << "pruned area should approach the paper's ~30% bound";
}

TEST(ReverseRebuild, InvalidInputsThrow) {
  const Sequence s("s", "ACGTACGT");
  EXPECT_THROW(find_alignment_start(s, s, kScheme, 0, 1, 1), std::logic_error);
  EXPECT_THROW(find_alignment_start(s, s, kScheme, 1, 1, 0), std::logic_error);
  EXPECT_THROW(find_alignment_start(s, s, kScheme, 100, 1, 1), std::logic_error);
  // Score larger than achievable from that end cell.
  EXPECT_THROW(find_alignment_start(s, s, kScheme, 2, 2, 50), std::logic_error);
}

TEST(RebuildTopK, FindsAllPlantedRegionsExactly) {
  HomologousPairSpec spec;
  spec.length_s = 1500;
  spec.length_t = 1500;
  spec.n_regions = 4;
  spec.region_len_mean = 120;
  spec.region_len_spread = 20;
  spec.seed = 701;
  const HomologousPair pair = make_homologous_pair(spec);

  const auto results =
      rebuild_top_alignments(pair.s, pair.t, /*min_score=*/40, /*max_count=*/8);
  ASSERT_GE(results.size(), 4u);

  // Best first, each score verified against its own path.
  for (std::size_t k = 0; k < results.size(); ++k) {
    const Alignment& al = results[k].alignment;
    EXPECT_EQ(al.compute_score(pair.s, pair.t, kScheme), al.score);
    if (k > 0) EXPECT_GE(results[k - 1].alignment.score, al.score);
  }
  // The top result equals the global best; every planted region is covered.
  EXPECT_EQ(results[0].alignment.score,
            sw_best_score_linear(pair.s, pair.t, kScheme).score);
  for (const PlantedRegion& r : pair.regions) {
    const bool covered = std::any_of(
        results.begin(), results.end(), [&](const RebuildResult& res) {
          const Alignment& al = res.alignment;
          return al.s_end() > r.s_begin && al.s_begin < r.s_end &&
                 al.t_end() > r.t_begin && al.t_begin < r.t_end;
        });
    EXPECT_TRUE(covered);
  }
}

TEST(RebuildTopK, AlignmentsArePairwiseDisjoint) {
  HomologousPairSpec spec;
  spec.length_s = 1000;
  spec.length_t = 1000;
  spec.n_regions = 3;
  spec.region_len_mean = 100;
  spec.region_len_spread = 20;
  spec.seed = 702;
  const HomologousPair pair = make_homologous_pair(spec);
  const auto results = rebuild_top_alignments(pair.s, pair.t, 30, 10);
  for (std::size_t a = 0; a < results.size(); ++a) {
    for (std::size_t b = a + 1; b < results.size(); ++b) {
      const Alignment& x = results[a].alignment;
      const Alignment& y = results[b].alignment;
      const bool s_disjoint = x.s_end() <= y.s_begin || y.s_end() <= x.s_begin;
      const bool t_disjoint = x.t_end() <= y.t_begin || y.t_end() <= x.t_begin;
      EXPECT_TRUE(s_disjoint || t_disjoint);
    }
  }
}

TEST(RebuildTopK, MaxCountRespectedAndMinScoreValidated) {
  HomologousPairSpec spec;
  spec.length_s = 1200;
  spec.length_t = 1200;
  spec.n_regions = 5;
  spec.region_len_mean = 100;
  spec.region_len_spread = 10;
  spec.seed = 703;
  const HomologousPair pair = make_homologous_pair(spec);
  const auto results = rebuild_top_alignments(pair.s, pair.t, 30, 2);
  EXPECT_LE(results.size(), 2u);
  EXPECT_THROW(rebuild_top_alignments(pair.s, pair.t, 0), std::invalid_argument);
}

TEST(ReverseRebuild, EmptyAlignmentOnUnrelatedInput) {
  const Sequence s("s", "AAAA");
  const Sequence t("t", "CCCC");
  const RebuildResult res = rebuild_best_local_alignment(s, t, kScheme);
  EXPECT_EQ(res.alignment.score, 0);
  EXPECT_TRUE(res.alignment.ops.empty());
}

}  // namespace
}  // namespace gdsm
