#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "sw/full_matrix.h"
#include "viz/dotplot.h"

namespace gdsm::viz {
namespace {

TEST(DotPlot, MarksRegions) {
  const std::vector<Candidate> regions{{50, 100, 200, 100, 200},
                                       {40, 700, 760, 300, 360}};
  const std::string plot = render_dotplot(regions, 1000, 1000);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("2 similarity regions"), std::string::npos);
  // Region 1 sits near 10-20% of both axes: the mark must appear in the
  // upper-left quadrant (first rows of the grid).
  const auto first_star = plot.find('*');
  const auto plot_start = plot.find('+');
  EXPECT_LT(first_star - plot_start, plot.size() / 2);
}

TEST(DotPlot, EmptyRegionsStillRenders) {
  const std::string plot = render_dotplot({}, 100, 100);
  EXPECT_EQ(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("0 similarity regions"), std::string::npos);
}

TEST(DotPlot, PpmFileHasHeaderAndPixels) {
  const std::string path = testing::TempDir() + "/gdsm_plot.ppm";
  const std::vector<Candidate> regions{{10, 1, 50, 1, 50}};
  const std::size_t size = write_dotplot_ppm(path, regions, 100, 100, 64, 64);
  EXPECT_GT(size, 64u * 64u * 3u);       // pixels plus the "P6 ..." header
  EXPECT_LT(size, 64u * 64u * 3u + 32u);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  std::remove(path.c_str());
}

TEST(Heatmap, ShadesScaleWithDensity) {
  const std::vector<std::vector<std::uint64_t>> matrix{
      {0, 0, 100}, {0, 50, 0}, {10, 0, 0}};
  const std::string map = render_heatmap(matrix, "demo");
  EXPECT_NE(map.find("demo"), std::string::npos);
  EXPECT_NE(map.find("peak 100"), std::string::npos);
  // Three band rows, each 3 cells wide between pipes.
  EXPECT_EQ(std::count(map.begin(), map.end(), '\n'), 4);
  // The hottest cell renders with the densest shade present.
  const auto first_pipe = map.find('|');
  ASSERT_NE(first_pipe, std::string::npos);
  EXPECT_EQ(map[first_pipe + 3], '@');  // 100/100 -> top shade
}

TEST(Heatmap, EmptyMatrixRendersCleanly) {
  const std::string map = render_heatmap({{0, 0}, {0, 0}}, "flat");
  EXPECT_NE(map.find("peak 0"), std::string::npos);
  EXPECT_EQ(map.find('@'), std::string::npos);
}

TEST(Report, Fig16StyleFields) {
  const Sequence s("s", "ACGTACGTACGT");
  const Alignment al = smith_waterman(s, s);
  const std::string rep = format_alignment_report(s, s, {al}, /*wrap=*/8);
  EXPECT_NE(rep.find("initial_x: 1"), std::string::npos);
  EXPECT_NE(rep.find("similarity: 12"), std::string::npos);
  EXPECT_NE(rep.find("align_s: ACGTACGT"), std::string::npos);  // wrapped
  EXPECT_NE(rep.find("align_t: ACGTACGT"), std::string::npos);
}

}  // namespace
}  // namespace gdsm::viz
