// DSM torture tests: randomized (but seeded/deterministic) workloads that
// exercise diffs, invalidations, replacement and the managers together,
// with exact expected outcomes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "dsm/cluster.h"
#include "util/rng.h"

namespace gdsm::dsm {
namespace {

TEST(DsmStress, RandomDisjointWritersManyRounds) {
  constexpr int P = 4;
  constexpr int kSlots = 512;
  constexpr int kRounds = 12;
  DsmConfig cfg;
  cfg.page_bytes = 256;  // many slots per page: heavy multi-writer merging
  Cluster cluster(P, cfg);
  const GlobalAddr arr = cluster.alloc_striped(kSlots * sizeof(std::uint32_t));

  std::atomic<int> mismatches{0};
  cluster.run([&](Node& node) {
    node.barrier();
    for (int round = 0; round < kRounds; ++round) {
      // Slot k is owned by node k % P; owners write a value derived from
      // (round, slot) that every node can predict.
      for (int k = node.id(); k < kSlots; k += P) {
        node.write<std::uint32_t>(
            arr + static_cast<GlobalAddr>(k) * sizeof(std::uint32_t),
            static_cast<std::uint32_t>(round * 100'000 + k));
      }
      node.barrier();
      // Every node validates a seeded random sample of ALL slots.
      Rng rng(1000u * static_cast<unsigned>(round) +
              static_cast<unsigned>(node.id()));
      for (int probe = 0; probe < 64; ++probe) {
        const auto k = static_cast<int>(rng.below(kSlots));
        const auto v = node.read<std::uint32_t>(
            arr + static_cast<GlobalAddr>(k) * sizeof(std::uint32_t));
        if (v != static_cast<std::uint32_t>(round * 100'000 + k)) ++mismatches;
      }
      node.barrier();
    }
  });
  EXPECT_EQ(mismatches, 0);
  EXPECT_GT(cluster.stats().total_node().diffs_sent, 0u);
  EXPECT_GT(cluster.stats().total_node().invalidations, 0u);
}

TEST(DsmStress, RandomLockProtectedLedger) {
  constexpr int P = 4;
  constexpr int kAccounts = 8;
  constexpr int kOpsPerNode = 120;
  Cluster cluster(P);
  const GlobalAddr ledger = cluster.alloc(kAccounts * sizeof(long), 0);

  cluster.run([&](Node& node) {
    Rng rng(77u + static_cast<unsigned>(node.id()));
    for (int op = 0; op < kOpsPerNode; ++op) {
      const auto account = static_cast<int>(rng.below(kAccounts));
      node.lock(account);
      const GlobalAddr a = ledger + static_cast<GlobalAddr>(account) * sizeof(long);
      node.write<long>(a, node.read<long>(a) + 1);
      node.unlock(account);
    }
    node.barrier();
  });

  long total = 0;
  cluster.run([&](Node& node) {
    if (node.id() == 0) {
      long sum = 0;
      for (int k = 0; k < kAccounts; ++k) {
        sum += node.read<long>(ledger + static_cast<GlobalAddr>(k) * sizeof(long));
      }
      total = sum;
    }
  });
  EXPECT_EQ(total, static_cast<long>(P) * kOpsPerNode);
}

TEST(DsmStress, CvTokenRing) {
  constexpr int P = 5;
  constexpr int kLaps = 40;
  Cluster cluster(P);
  const GlobalAddr token = cluster.alloc(sizeof(long), 0);
  std::atomic<long> final_value{-1};

  // cv id p = "token available for node p".
  cluster.run([&](Node& node) {
    const int p = node.id();
    if (p == 0) {
      node.write<long>(token, 0);
      node.setcv(1);  // hand to node 1
    }
    for (int lap = 0; lap < kLaps; ++lap) {
      node.waitcv(p);  // wait for the token
      const long v = node.read<long>(token) + p + 1;
      node.write<long>(token, v);
      if (p == 0 && lap + 1 == kLaps) {
        final_value = v;
        break;
      }
      node.setcv((p + 1) % P);
    }
    node.barrier();
  });
  // Each full lap adds sum(1..P); the final write by node 0 closes lap kLaps.
  // Token path: 1,2,3,4,0 repeated; node 0 sees it once per lap.
  const long per_lap = P * (P + 1) / 2;
  EXPECT_EQ(final_value, static_cast<long>(kLaps) * per_lap);
}

TEST(DsmStress, TinyCacheThrashKeepsCoherence) {
  DsmConfig cfg;
  cfg.page_bytes = 128;
  cfg.cache_pages = 1;  // every remote access evicts
  constexpr int kPages = 24;
  Cluster cluster(2, cfg);
  const GlobalAddr arr = cluster.alloc(kPages * 128, /*home=*/0);
  std::atomic<long> sum{0};
  cluster.run([&](Node& node) {
    if (node.id() == 1) {
      // Interleave writes across pages so each one evicts a dirty victim.
      for (int round = 0; round < 3; ++round) {
        for (int pgi = 0; pgi < kPages; ++pgi) {
          const GlobalAddr a = arr + static_cast<GlobalAddr>(pgi) * 128 +
                               static_cast<GlobalAddr>(round) * sizeof(int);
          node.write<int>(a, round * 1000 + pgi);
        }
      }
    }
    node.barrier();
    if (node.id() == 0) {
      long total = 0;
      for (int round = 0; round < 3; ++round) {
        for (int pgi = 0; pgi < kPages; ++pgi) {
          const GlobalAddr a = arr + static_cast<GlobalAddr>(pgi) * 128 +
                               static_cast<GlobalAddr>(round) * sizeof(int);
          total += node.read<int>(a);
        }
      }
      sum = total;
    }
  });
  long expected = 0;
  for (int round = 0; round < 3; ++round) {
    for (int pgi = 0; pgi < kPages; ++pgi) expected += round * 1000 + pgi;
  }
  EXPECT_EQ(sum, expected);
  EXPECT_GT(cluster.stats().node[1].evictions, 20u);
}

TEST(DsmStress, LockNoticeLogGcSurvivesLongRuns) {
  // Hammer one lock past the notice-log GC threshold (1024 entries) from
  // both nodes; coherence must be unaffected by the log trimming.
  constexpr int kIters = 800;  // x2 nodes = 1600 log entries
  Cluster cluster(2);
  const GlobalAddr counter = cluster.alloc(sizeof(int), 0);
  cluster.run([&](Node& node) {
    for (int k = 0; k < kIters; ++k) {
      node.lock(3);
      node.write<int>(counter, node.read<int>(counter) + 1);
      node.unlock(3);
    }
    node.barrier();
  });
  int final_value = 0;
  cluster.run([&](Node& node) {
    if (node.id() == 0) final_value = node.read<int>(counter);
  });
  EXPECT_EQ(final_value, 2 * kIters);
}

struct StressCase {
  int nodes;
  std::size_t page_bytes;
  std::size_t cache_pages;
};

std::string stress_name(const testing::TestParamInfo<StressCase>& info) {
  return "n" + std::to_string(info.param.nodes) + "_pg" +
         std::to_string(info.param.page_bytes) + "_cache" +
         std::to_string(info.param.cache_pages);
}

class DsmConfigSweep : public testing::TestWithParam<StressCase> {};

TEST_P(DsmConfigSweep, DisjointWritesSurviveAnyGeometry) {
  const auto& prm = GetParam();
  DsmConfig cfg;
  cfg.page_bytes = prm.page_bytes;
  cfg.cache_pages = prm.cache_pages;
  Cluster cluster(prm.nodes, cfg);
  constexpr int kSlots = 200;
  const GlobalAddr arr = cluster.alloc_striped(kSlots * sizeof(int));
  std::atomic<int> bad{0};
  cluster.run([&](Node& node) {
    for (int k = node.id(); k < kSlots; k += node.nodes()) {
      node.write<int>(arr + static_cast<GlobalAddr>(k) * sizeof(int), k * 7);
    }
    node.barrier();
    for (int k = 0; k < kSlots; ++k) {
      if (node.read<int>(arr + static_cast<GlobalAddr>(k) * sizeof(int)) !=
          k * 7) {
        ++bad;
      }
    }
  });
  EXPECT_EQ(bad, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DsmConfigSweep,
    testing::Values(StressCase{2, 4096, 4096}, StressCase{3, 256, 8},
                    StressCase{4, 128, 2}, StressCase{8, 1024, 16},
                    StressCase{5, 64, 1}, StressCase{6, 512, 3}),
    stress_name);

struct CommCase {
  const char* name;
  bool batch_diffs;
  bool bulk_fetch;
  std::uint32_t prefetch_pages;
};

std::string comm_name(const testing::TestParamInfo<CommCase>& info) {
  return info.param.name;
}

class CommModeSweep : public testing::TestWithParam<CommCase> {};

// The same torture workload through every data-plane mode: multi-writer
// release diffs (batch path), whole-array read_bytes validation (bulk-fetch
// path) and forward per-page scans (read-ahead path) must all produce the
// exact values the legacy serial plane produces.
TEST_P(CommModeSweep, MultiWriterScansStayCoherentInEveryMode) {
  const CommCase& prm = GetParam();
  constexpr int P = 4;
  // 2048 u32 slots over 256-byte pages = 32 pages, 8 homed per node: every
  // reader faces 3 multi-page remote home groups, so bulk fetch engages.
  constexpr int kSlots = 2048;
  constexpr int kRounds = 4;
  DsmConfig cfg;
  cfg.page_bytes = 256;
  cfg.comm.batch_diffs = prm.batch_diffs;
  cfg.comm.bulk_fetch = prm.bulk_fetch;
  cfg.comm.prefetch_pages = prm.prefetch_pages;
  Cluster cluster(P, cfg);
  const GlobalAddr arr = cluster.alloc_striped(kSlots * sizeof(std::uint32_t));

  std::atomic<int> mismatches{0};
  cluster.run([&](Node& node) {
    node.barrier();
    for (int round = 0; round < kRounds; ++round) {
      for (int k = node.id(); k < kSlots; k += P) {
        node.write<std::uint32_t>(
            arr + static_cast<GlobalAddr>(k) * sizeof(std::uint32_t),
            static_cast<std::uint32_t>(round * 100'000 + k));
      }
      node.barrier();
      // One multi-page read_bytes sweep plus per-slot sequential reads.
      std::vector<std::uint32_t> snap(kSlots);
      node.read_bytes(arr, reinterpret_cast<std::byte*>(snap.data()),
                      kSlots * sizeof(std::uint32_t));
      for (int k = 0; k < kSlots; ++k) {
        const auto want = static_cast<std::uint32_t>(round * 100'000 + k);
        if (snap[static_cast<std::size_t>(k)] != want) ++mismatches;
        if (node.read<std::uint32_t>(
                arr + static_cast<GlobalAddr>(k) * sizeof(std::uint32_t)) !=
            want) {
          ++mismatches;
        }
      }
      node.barrier();
    }
  });
  EXPECT_EQ(mismatches, 0);

  const NodeStats totals = cluster.stats().total_node();
  if (prm.batch_diffs) {
    EXPECT_GT(totals.diff_batches_sent, 0u);
  } else {
    EXPECT_EQ(totals.diff_batches_sent, 0u);
  }
  if (prm.bulk_fetch) {
    EXPECT_GT(totals.bulk_fetches, 0u);
  } else {
    EXPECT_EQ(totals.bulk_fetches, 0u);
    if (prm.prefetch_pages > 0) {
      // With bulk fetch off the read_bytes sweep faults page by page, so
      // the sequential detector must kick in and save round trips.
      EXPECT_GT(totals.prefetch_issued, 0u);
      EXPECT_GT(totals.prefetch_hits, 0u);
    }
  }
  if (prm.prefetch_pages == 0) {
    EXPECT_EQ(totals.prefetch_issued, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CommModeSweep,
    testing::Values(CommCase{"legacy", false, false, 0},
                    CommCase{"batched", true, true, 0},
                    CommCase{"batched_prefetch", true, true, 4},
                    CommCase{"prefetch_only", false, false, 4}),
    comm_name);

}  // namespace
}  // namespace gdsm::dsm
