// Phase-2 tests: scattered-mapping global alignment of similarity regions.
#include <gtest/gtest.h>

#include "core/phase2.h"
#include "core/wavefront.h"
#include "sw/full_matrix.h"
#include "sw/heuristic_scan.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm::core {
namespace {

std::vector<Candidate> synthetic_queue(std::size_t count, std::size_t seq_len,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Candidate> queue;
  queue.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint32_t len = 20 + static_cast<std::uint32_t>(rng.below(80));
    const auto max_start = static_cast<std::uint32_t>(seq_len - len - 1);
    const std::uint32_t sb = 1 + static_cast<std::uint32_t>(rng.below(max_start));
    const std::uint32_t tb = 1 + static_cast<std::uint32_t>(rng.below(max_start));
    queue.push_back(Candidate{0, sb, sb + len - 1, tb, tb + len - 1});
  }
  return queue;
}

TEST(Phase2, ParallelEqualsSerial) {
  Rng rng(101);
  const Sequence s = random_dna(2000, rng, "s");
  const Sequence t = random_dna(2000, rng, "t");
  const auto queue = synthetic_queue(37, 2000, 102);

  const auto serial = phase2_serial(s, t, queue);
  for (int procs : {1, 2, 4, 8}) {
    Phase2Config cfg;
    cfg.nprocs = procs;
    const Phase2Result par = phase2_align(s, t, queue, cfg);
    EXPECT_EQ(par.alignments, serial) << procs << " processors";
  }
}

TEST(Phase2, ScoresMatchDirectNeedlemanWunsch) {
  Rng rng(103);
  const Sequence s = random_dna(500, rng, "s");
  const Sequence t = random_dna(500, rng, "t");
  const auto queue = synthetic_queue(5, 500, 104);
  const auto results = phase2_serial(s, t, queue);
  ASSERT_EQ(results.size(), queue.size());
  for (std::size_t k = 0; k < queue.size(); ++k) {
    const Candidate& c = queue[k];
    const Alignment al = needleman_wunsch(s.slice(c.s_begin - 1, c.s_end),
                                          t.slice(c.t_begin - 1, c.t_end));
    EXPECT_EQ(results[k].global_score, al.score);
    EXPECT_EQ(results[k].region, c);
  }
}

TEST(Phase2, EmptyQueue) {
  Rng rng(105);
  const Sequence s = random_dna(100, rng, "s");
  Phase2Config cfg;
  cfg.nprocs = 4;
  const Phase2Result res = phase2_align(s, s, {}, cfg);
  EXPECT_TRUE(res.alignments.empty());
}

TEST(Phase2, NoLocksUsed) {
  // The scattered mapping eliminates lock/cv synchronization entirely
  // (Section 4.4); only the start/end barriers remain.
  Rng rng(106);
  const Sequence s = random_dna(800, rng, "s");
  const Sequence t = random_dna(800, rng, "t");
  Phase2Config cfg;
  cfg.nprocs = 4;
  const Phase2Result res = phase2_align(s, t, synthetic_queue(16, 800, 107), cfg);
  const auto total = res.dsm_stats.total_node();
  EXPECT_EQ(total.lock_acquires, 0u);
  EXPECT_EQ(total.cv_signals, 0u);
  EXPECT_EQ(total.cv_waits, 0u);
  EXPECT_EQ(total.barriers, 8u);  // 2 barriers x 4 nodes
}

TEST(Phase2, AlignRegionMapsCoordinatesBack) {
  Rng rng(108);
  const Sequence shared = random_dna(60, rng, "shared");
  const Sequence s("s", random_dna(100, rng).text() + shared.text() +
                            random_dna(50, rng).text());
  const Sequence t("t", random_dna(30, rng).text() + shared.text() +
                            random_dna(120, rng).text());
  const Candidate c{60, 101, 160, 31, 90};
  const Alignment al = align_region(s, t, c);
  EXPECT_EQ(al.s_begin, 100u);
  EXPECT_EQ(al.t_begin, 30u);
  EXPECT_EQ(al.score, 60);
  EXPECT_EQ(al.compute_score(s, t, ScoreScheme{}), 60);
}

TEST(Phase2, AlignRegionLocalRecoversTrailingStart) {
  // The heuristic opens candidates late: a region whose begin coordinate
  // trails the true alignment start must be recovered by the padded local
  // re-alignment.
  Rng rng(110);
  const Sequence shared = random_dna(80, rng, "shared");
  const Sequence s("s", random_dna(60, rng).text() + shared.text() +
                            random_dna(40, rng).text());
  const Sequence t("t", random_dna(90, rng).text() + shared.text() +
                            random_dna(30, rng).text());
  // Candidate starting 10 bp INSIDE the true 80 bp region (1-based coords:
  // region is s[61..140] x t[91..170]).
  const Candidate late{60, 71, 140, 101, 170};
  const Alignment padded = align_region_local(s, t, late, /*margin=*/16);
  EXPECT_LE(padded.s_begin, 60u);  // recovered the real start
  EXPECT_LE(padded.t_begin, 90u);
  EXPECT_EQ(padded.score, 80);     // the full planted block
  EXPECT_EQ(padded.compute_score(s, t, ScoreScheme{}), padded.score);
  // The unpadded global alignment of the late region scores less.
  EXPECT_LT(align_region(s, t, late).score, padded.score);
}

TEST(Phase2, AlignRegionRejectsBadCoords) {
  const Sequence s("s", "ACGTACGT");
  EXPECT_THROW(align_region(s, s, Candidate{0, 0, 4, 1, 4}),
               std::invalid_argument);
  EXPECT_THROW(align_region(s, s, Candidate{0, 1, 100, 1, 4}),
               std::invalid_argument);
  EXPECT_THROW(align_region(s, s, Candidate{0, 5, 4, 1, 4}),
               std::invalid_argument);
}

TEST(Phase2, EndToEndWithPhase1) {
  // The full pipeline of the paper: heuristic phase 1 finds regions, phase 2
  // aligns them globally; planted homologies must come out with high scores.
  HomologousPairSpec spec;
  spec.length_s = 1500;
  spec.length_t = 1500;
  spec.n_regions = 2;
  spec.region_len_mean = 150;
  spec.region_len_spread = 20;
  spec.seed = 109;
  const HomologousPair pair = make_homologous_pair(spec);

  HeuristicParams params;
  params.min_report_score = 40;
  WavefrontConfig wf;
  wf.nprocs = 4;
  wf.params = params;
  const StrategyResult phase1 = wavefront_align(pair.s, pair.t, wf);
  ASSERT_FALSE(phase1.candidates.empty());

  Phase2Config cfg;
  cfg.nprocs = 4;
  const Phase2Result phase2 = phase2_align(pair.s, pair.t, phase1.candidates, cfg);
  ASSERT_EQ(phase2.alignments.size(), phase1.candidates.size());
  int best = 0;
  for (const auto& r : phase2.alignments) best = std::max(best, r.global_score);
  EXPECT_GT(best, 60);
}

}  // namespace
}  // namespace gdsm::core
