// Alignment-service tests: admission backpressure, deadline rejection,
// same-subject batching over the resident genome (DSM cache hits rising on
// the second query), failed-query recovery, and strategy answers matching
// the serial references through the whole service path.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "simd/dispatch.h"
#include "svc/queue.h"
#include "svc/scheduler.h"
#include "svc/service.h"
#include "svc/stats.h"
#include "sw/heuristic_scan.h"
#include "sw/linear_score.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm::svc {
namespace {

Sequence make_subject(std::size_t len, std::uint64_t seed,
                      const std::string& name) {
  Rng rng(seed);
  return random_dna(len, rng, name);
}

Sequence make_probe(const Sequence& subject, std::size_t begin,
                    std::size_t len, std::uint64_t seed) {
  Rng rng(seed);
  Sequence probe =
      mutate(subject.slice(begin, begin + len), 0.05, 0.01, rng);
  probe.set_name("probe");
  return probe;
}

// ---------------------------------------------------------------- queue --

TEST(QueryQueue, BackpressureAndClose) {
  QueryQueue q(2);
  EXPECT_EQ(q.try_push({}), QueryQueue::Reject::kNone);
  EXPECT_EQ(q.try_push({}), QueryQueue::Reject::kNone);
  EXPECT_EQ(q.try_push({}), QueryQueue::Reject::kFull);
  EXPECT_EQ(q.depth(), 2u);
  q.close();
  EXPECT_EQ(q.try_push({}), QueryQueue::Reject::kClosed);
  // close() drains the remainder before pop() reports end-of-stream.
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(QueryQueue, TakeMatchingRemovesInAdmissionOrder) {
  QueryQueue q(8);
  for (int i = 0; i < 5; ++i) {
    PendingQuery p;
    p.id = static_cast<std::uint64_t>(i);
    p.spec.subject = (i % 2 == 0) ? "even" : "odd";
    ASSERT_EQ(q.try_push(std::move(p)), QueryQueue::Reject::kNone);
  }
  const auto taken = q.take_matching(
      [](const PendingQuery& p) { return p.spec.subject == "even"; }, 2);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].id, 0u);
  EXPECT_EQ(taken[1].id, 2u);
  // The rest keeps its order: 1, 3, 4.
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_EQ(q.pop()->id, 3u);
  EXPECT_EQ(q.pop()->id, 4u);
}

// ------------------------------------------------------------ scheduler --

TEST(Scheduler, WavefrontWinsShortProbesBlockedMpWinsColdLongOnes) {
  const Scheduler sched(sim::CostModel{}, 4, 2, 2);
  const ScheduleDecision short_probe = sched.choose({8, 4000, false});
  EXPECT_EQ(short_probe.strategy, StrategyKind::kWavefront);
  const ScheduleDecision long_cold = sched.choose({2000, 4000, false});
  EXPECT_EQ(long_cold.strategy, StrategyKind::kBlockedMp);
  // The chosen estimate is the argmin of the three published ones.
  for (const auto& d : {short_probe, long_cold}) {
    EXPECT_LE(d.est_s, d.est_wavefront_s);
    EXPECT_LE(d.est_s, d.est_blocked_s);
    EXPECT_LE(d.est_s, d.est_blocked_mp_s);
  }
}

TEST(Scheduler, WarmSubjectCheapensDsmStrategiesOnly) {
  const Scheduler sched(sim::CostModel{}, 4, 2, 2);
  EXPECT_LT(sched.wavefront_estimate(500, 4000, true),
            sched.wavefront_estimate(500, 4000, false));
  EXPECT_LT(sched.blocked_estimate(500, 4000, true),
            sched.blocked_estimate(500, 4000, false));
  EXPECT_EQ(sched.blocked_mp_estimate(500, 4000),
            sched.blocked_mp_estimate(500, 4000));
}

TEST(Scheduler, PricesExactWorkWithThePerBackendCellCost) {
  Scheduler sched(sim::CostModel{}, 4, 2, 2);
  // The scheduler prices against whatever kernel the dispatch picked.
  EXPECT_EQ(sched.kernel_backend(), simd::active_backend_name());
  const ScheduleDecision d = sched.choose({200, 4000, false});
  EXPECT_EQ(d.kernel_backend, sched.kernel_backend());
  // A wider backend makes the same exact job cheaper, never dearer.
  sched.set_kernel_backend("scalar");
  const double scalar_s = sched.exact_estimate(2000, 4000);
  sched.set_kernel_backend("avx2");
  const double avx2_s = sched.exact_estimate(2000, 4000);
  EXPECT_GT(scalar_s, 0.0);
  EXPECT_LT(avx2_s, scalar_s);
  // The speedup the model applies is the CostModel's, exactly.
  const sim::CostModel cm;
  EXPECT_DOUBLE_EQ(cm.plain_cell_s("scalar"), cm.cell_s_plain);
  EXPECT_DOUBLE_EQ(cm.plain_cell_s("avx2"),
                   cm.cell_s_plain / cm.simd_speedup_avx2);
  EXPECT_DOUBLE_EQ(cm.nw_cell_s("sse41"),
                   cm.cell_s_nw / cm.simd_speedup_sse41);
  // Unknown names price conservatively at the scalar rate.
  EXPECT_DOUBLE_EQ(cm.plain_cell_s("altivec"), cm.cell_s_plain);
}

// ---------------------------------------------------------------- stats --

TEST(LatencyHistogram, QuantilesLandInTheRightBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(1e-3);   // ~1 ms
  for (int i = 0; i < 10; ++i) h.record(0.5);    // ~500 ms
  EXPECT_EQ(h.count, 100u);
  EXPECT_LT(h.quantile(0.5), 0.01);
  EXPECT_GT(h.quantile(0.99), 0.1);
  EXPECT_DOUBLE_EQ(h.max_s, 0.5);
  const obs::Json j = h.to_json();
  EXPECT_EQ(j.at("count").as_int(), 100);
}

TEST(ServiceStats, ToJsonCarriesEverySection) {
  ServiceStats s;
  s.admitted = 3;
  s.by_strategy[static_cast<std::size_t>(StrategyKind::kBlocked)] = 2;
  const obs::Json j = s.to_json();
  EXPECT_EQ(j.at("admission").at("admitted").as_int(), 3);
  EXPECT_EQ(j.at("dispatch_by_strategy").at("blocked").as_int(), 2);
  for (const char* key : {"completion", "residency", "batching", "queue",
                          "latency_total", "latency_run", "kernel_backend"}) {
    EXPECT_TRUE(j.has(key)) << key;
  }
}

// -------------------------------------------------------------- service --

TEST(AlignService, AnswersMatchTheSerialReferencePerStrategy) {
  const Sequence subject = make_subject(2500, 11, "chr");
  const Sequence probe = make_probe(subject, 400, 300, 12);
  const std::vector<Candidate> ref = heuristic_scan(probe, subject);

  ServiceConfig cfg;
  cfg.nprocs = 4;
  cfg.verify = true;  // the in-service oracle must agree too
  AlignService service(cfg);
  service.load_subject(subject);
  EXPECT_TRUE(service.has_subject("chr"));

  for (const StrategyKind k : {StrategyKind::kWavefront,
                               StrategyKind::kBlocked,
                               StrategyKind::kBlockedMp}) {
    QuerySpec spec;
    spec.subject = "chr";
    spec.query = probe;
    spec.strategy = k;
    const auto adm = service.submit(std::move(spec));
    ASSERT_TRUE(adm.admitted());
    const QueryOutcome& out = adm.ticket->wait();
    ASSERT_TRUE(out.ok) << strategy_name(k) << ": " << out.error;
    EXPECT_EQ(out.result.candidates, ref) << strategy_name(k);
  }

  QuerySpec exact;
  exact.subject = "chr";
  exact.query = probe;
  exact.strategy = StrategyKind::kExact;
  const auto adm = service.submit(std::move(exact));
  const QueryOutcome& out = adm.ticket->wait();
  ASSERT_TRUE(out.ok) << out.error;
  const BestLocal ref_best = sw_best_score_linear(probe, subject);
  EXPECT_EQ(out.result.best.score, ref_best.score);
  EXPECT_EQ(out.result.best.end_i, ref_best.end_i);
  EXPECT_EQ(out.result.best.end_j, ref_best.end_j);
}

TEST(AlignService, SecondQueryOnSameSubjectRunsWarm) {
  const Sequence subject = make_subject(9000, 21, "chr");
  const Sequence probe = make_probe(subject, 1000, 250, 22);

  ServiceConfig cfg;
  cfg.nprocs = 2;
  AlignService service(cfg);
  service.load_subject(subject);

  const auto run_one = [&] {
    QuerySpec spec;
    spec.subject = "chr";
    spec.query = probe;
    spec.strategy = StrategyKind::kBlocked;  // DSM path with residency
    const auto adm = service.submit(std::move(spec));
    const QueryOutcome& out = adm.ticket->wait();
    EXPECT_TRUE(out.ok) << out.error;
    return out.result;
  };
  const QueryResult cold = run_one();
  const QueryResult warm = run_one();
  EXPECT_FALSE(cold.warm);
  EXPECT_TRUE(warm.warm);
  // The resident subject pages survived the job boundary: the second query
  // hits the node page caches instead of re-faulting the genome in.
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_LT(warm.read_faults, cold.read_faults);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.warm_queries, 1u);
  EXPECT_EQ(stats.cold_queries, 1u);
}

TEST(AlignService, SameSubjectQueriesBatchMixedSubjectsDoNot) {
  const Sequence big = make_subject(6000, 31, "big");
  const Sequence other = make_subject(1500, 32, "other");
  const Sequence big_probe = make_probe(big, 500, 1200, 33);
  const Sequence small_probe = make_probe(other, 100, 150, 34);

  ServiceConfig cfg;
  cfg.nprocs = 2;
  cfg.workers = 1;  // deterministic: one dispatcher drains the queue
  AlignService service(cfg);
  service.load_subject(big);
  service.load_subject(other);

  const auto submit = [&](const std::string& subject, const Sequence& probe) {
    QuerySpec spec;
    spec.subject = subject;
    spec.query = probe;
    const auto adm = service.submit(std::move(spec));
    EXPECT_TRUE(adm.admitted());
    return adm.ticket;
  };

  // The long query occupies the only worker; once its dispatch group is
  // recorded (batches == 1) the worker is inside the alignment, so
  // everything submitted now waits in the queue for the next dispatch.
  const TicketPtr head = submit("big", big_probe);
  while (service.stats().batches == 0) std::this_thread::yield();
  const TicketPtr a1 = submit("other", small_probe);
  const TicketPtr a2 = submit("other", small_probe);
  const TicketPtr a3 = submit("other", small_probe);
  const TicketPtr b = submit("big", big_probe);

  EXPECT_EQ(a1->wait().result.batch_size, 3u);
  EXPECT_EQ(a2->wait().result.batch_size, 3u);
  EXPECT_EQ(a3->wait().result.batch_size, 3u);
  EXPECT_EQ(b->wait().result.batch_size, 1u);  // different subject: alone
  service.drain();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.max_batch, 3u);
  EXPECT_EQ(stats.batched_queries, 3u);
}

TEST(AlignService, DeadlineExpiredQueriesAreRejectedBeforeDispatch) {
  const Sequence subject = make_subject(4000, 41, "chr");
  const Sequence big_probe = make_probe(subject, 0, 1500, 42);
  const Sequence probe = make_probe(subject, 200, 200, 43);

  ServiceConfig cfg;
  cfg.nprocs = 2;
  cfg.workers = 1;
  AlignService service(cfg);
  service.load_subject(subject);

  QuerySpec head;  // keeps the worker busy so the next query queues
  head.subject = "chr";
  head.query = big_probe;
  const auto head_adm = service.submit(std::move(head));

  QuerySpec doomed;
  doomed.subject = "chr";
  doomed.query = probe;
  doomed.strategy = StrategyKind::kExact;  // not batchable with the head
  doomed.deadline_s = 1e-9;                // expires while queued
  const auto adm = service.submit(std::move(doomed));
  ASSERT_TRUE(adm.admitted());  // admission succeeded; dispatch rejects
  const QueryOutcome& out = adm.ticket->wait();
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, "deadline expired before dispatch");
  EXPECT_TRUE(head_adm.ticket->wait().ok);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_deadline, 1u);
  EXPECT_EQ(stats.failed, 0u);  // a deadline reject is not a failure
}

TEST(AlignService, FullQueueRejectsWithBackpressure) {
  const Sequence subject = make_subject(2500, 51, "chr");
  const Sequence big_probe = make_probe(subject, 0, 800, 52);

  ServiceConfig cfg;
  cfg.nprocs = 2;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  AlignService service(cfg);
  service.load_subject(subject);

  int rejects = 0;
  std::string reason;
  std::vector<TicketPtr> tickets;
  for (int i = 0; i < 4; ++i) {
    QuerySpec spec;
    spec.subject = "chr";
    spec.query = big_probe;
    spec.strategy = StrategyKind::kExact;  // not batchable: queue stays full
    const auto adm = service.submit(std::move(spec));
    tickets.push_back(adm.ticket);
    if (!adm.admitted()) {
      ++rejects;
      reason = adm.reject;
      // A rejected ticket is resolved immediately with the reason.
      EXPECT_TRUE(adm.ticket->ready());
      EXPECT_FALSE(adm.ticket->wait().ok);
    }
  }
  EXPECT_GT(rejects, 0);
  EXPECT_EQ(reason, "queue full");
  EXPECT_GT(service.stats().rejected_full, 0u);
  for (const auto& t : tickets) t->wait();
}

TEST(AlignService, InjectedFailureIsAbsorbedAndThePoolKeepsServing) {
  const Sequence subject = make_subject(3000, 61, "chr");
  const Sequence probe = make_probe(subject, 300, 250, 62);

  ServiceConfig cfg;
  cfg.nprocs = 2;
  AlignService service(cfg);
  service.load_subject(subject);

  // Warm the subject first so the recovery's cold restart is observable.
  QuerySpec warmup;
  warmup.subject = "chr";
  warmup.query = probe;
  warmup.strategy = StrategyKind::kBlocked;
  EXPECT_TRUE(service.submit(std::move(warmup)).ticket->wait().ok);

  QuerySpec poison;
  poison.subject = "chr";
  poison.query = probe;
  poison.inject_failure_node = 1;
  const TicketPtr poison_ticket = service.submit(std::move(poison)).ticket;
  const QueryOutcome& failed = poison_ticket->wait();
  EXPECT_FALSE(failed.ok);
  EXPECT_NE(failed.error.find("injected query failure"), std::string::npos)
      << failed.error;

  // The node pool is back: the same service answers the next query, cold
  // again (the failed job dropped every cached frame).
  QuerySpec after;
  after.subject = "chr";
  after.query = probe;
  after.strategy = StrategyKind::kBlocked;
  const TicketPtr after_ticket = service.submit(std::move(after)).ticket;
  const QueryOutcome& out = after_ticket->wait();
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_FALSE(out.result.warm);
  EXPECT_EQ(out.result.candidates, heuristic_scan(probe, subject));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
}

TEST(AlignService, UnknownSubjectFailsTheQueryNotTheService) {
  ServiceConfig cfg;
  cfg.nprocs = 2;
  AlignService service(cfg);
  service.load_subject(make_subject(2000, 71, "known"));

  QuerySpec spec;
  spec.subject = "missing";
  spec.query = make_subject(100, 72, "probe");
  const TicketPtr ticket = service.submit(std::move(spec)).ticket;
  const QueryOutcome& out = ticket->wait();
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("unknown subject"), std::string::npos);
  EXPECT_EQ(service.stats().failed, 1u);
}

TEST(AlignService, LoadSubjectRejectsDuplicatesAndAnonymous) {
  ServiceConfig cfg;
  cfg.nprocs = 2;
  AlignService service(cfg);
  service.load_subject(make_subject(1000, 81, "chr"));
  EXPECT_THROW(service.load_subject(make_subject(1000, 82, "chr")),
               std::invalid_argument);
  Sequence anonymous = make_subject(1000, 83, "x");
  anonymous.set_name("");
  EXPECT_THROW(service.load_subject(anonymous), std::invalid_argument);
}

TEST(AlignService, ShutdownRejectsNewQueriesAndDrains) {
  const Sequence subject = make_subject(2000, 91, "chr");
  const Sequence probe = make_probe(subject, 100, 200, 92);

  ServiceConfig cfg;
  cfg.nprocs = 2;
  AlignService service(cfg);
  service.load_subject(subject);
  QuerySpec spec;
  spec.subject = "chr";
  spec.query = probe;
  const auto adm = service.submit(std::move(spec));
  service.shutdown();
  EXPECT_TRUE(adm.ticket->ready());  // admitted work was drained first
  QuerySpec late;
  late.subject = "chr";
  late.query = probe;
  const auto rejected = service.submit(std::move(late));
  EXPECT_FALSE(rejected.admitted());
  EXPECT_EQ(rejected.reject, "service shutting down");
  EXPECT_FALSE(rejected.ticket->wait().ok);
}

}  // namespace
}  // namespace gdsm::svc
