// Exhaustive-oracle cross-validation of the DP kernels on tiny inputs:
//   * a brute-force recursive enumerator of ALL global alignments validates
//     needleman_wunsch;
//   * local alignment is validated as the maximum NW score over every
//     substring pair (its defining property).
// Slow by design, kept to tiny strings.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "sw/affine.h"
#include "sw/full_matrix.h"
#include "sw/linear_score.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm {
namespace {

// Enumerates every global alignment path and returns the best score.
int brute_force_global(const Sequence& s, const Sequence& t,
                       const ScoreScheme& scheme, std::size_t i, std::size_t j) {
  if (i == s.size() && j == t.size()) return 0;
  int best = std::numeric_limits<int>::min() / 2;
  if (i < s.size() && j < t.size()) {
    best = std::max(best, scheme.substitution(s[i], t[j]) +
                              brute_force_global(s, t, scheme, i + 1, j + 1));
  }
  if (i < s.size()) {
    best = std::max(best,
                    scheme.gap + brute_force_global(s, t, scheme, i + 1, j));
  }
  if (j < t.size()) {
    best = std::max(best,
                    scheme.gap + brute_force_global(s, t, scheme, i, j + 1));
  }
  return best;
}

// Local score by definition: best global score over all substring pairs
// (floored at zero by the empty alignment).
int brute_force_local(const Sequence& s, const Sequence& t,
                      const ScoreScheme& scheme) {
  int best = 0;
  for (std::size_t i0 = 0; i0 <= s.size(); ++i0) {
    for (std::size_t i1 = i0; i1 <= s.size(); ++i1) {
      for (std::size_t j0 = 0; j0 <= t.size(); ++j0) {
        for (std::size_t j1 = j0; j1 <= t.size(); ++j1) {
          best = std::max(best, needleman_wunsch(s.slice(i0, i1),
                                                 t.slice(j0, j1), scheme)
                                    .score);
        }
      }
    }
  }
  return best;
}

TEST(Oracle, GlobalMatchesBruteForceEnumeration) {
  Rng rng(961);
  for (int round = 0; round < 20; ++round) {
    const Sequence s = random_dna(1 + rng.below(6), rng, "s");
    const Sequence t = random_dna(1 + rng.below(6), rng, "t");
    for (const ScoreScheme scheme :
         {ScoreScheme{}, ScoreScheme{2, -1, -3}, ScoreScheme{1, -2, -1}}) {
      EXPECT_EQ(needleman_wunsch(s, t, scheme).score,
                brute_force_global(s, t, scheme, 0, 0))
          << "s=" << s.text() << " t=" << t.text();
    }
  }
}

TEST(Oracle, LocalMatchesBestSubstringGlobal) {
  Rng rng(962);
  for (int round = 0; round < 10; ++round) {
    const Sequence s = random_dna(2 + rng.below(7), rng, "s");
    const Sequence t = random_dna(2 + rng.below(7), rng, "t");
    const int oracle = brute_force_local(s, t, ScoreScheme{});
    EXPECT_EQ(smith_waterman(s, t).score, oracle)
        << "s=" << s.text() << " t=" << t.text();
    EXPECT_EQ(sw_best_score_linear(s, t).score, oracle);
  }
}

TEST(Oracle, AffineReducesToLinearOracleWhenOpenIsZero) {
  Rng rng(963);
  for (int round = 0; round < 10; ++round) {
    const Sequence s = random_dna(2 + rng.below(6), rng, "s");
    const Sequence t = random_dna(2 + rng.below(6), rng, "t");
    const AffineScheme affine{1, -1, 0, -2};
    EXPECT_EQ(needleman_wunsch_affine(s, t, affine).score,
              brute_force_global(s, t, ScoreScheme{1, -1, -2}, 0, 0));
  }
}

}  // namespace
}  // namespace gdsm
