// Differential suite for the SIMD kernel layer (src/simd).
//
// Every compiled backend is held to the scalar reference, cell for cell:
// same best score, same end cell on ties, same per-column hit counts, the
// same hit multiset, the same NW last rows — across a fuzz corpus that
// covers the shapes the fuzzer cares about (empty, 1-char, degenerate
// alphabet, N runs, boundary-loaded blocks) plus inputs sized to force both
// the 16-bit saturating path and the 32-bit overflow fallback.  A final
// group pins the GDSM_KERNEL forcing logic so CI can exercise the scalar
// fallback on wide hosts.
#include "simd/dispatch.h"

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sw/linear_score.h"
#include "util/sequence.h"

namespace gdsm::simd {
namespace {

using Hit = std::tuple<std::size_t, std::size_t, std::int32_t>;

struct BackendFns {
  const char* name;
  BestCell (*block_best)(const DiagBlock&, const ScoreParams&);
  void (*block_count)(const DiagBlock&, const ScoreParams&, std::int32_t,
                      std::uint64_t*);
  void (*block_hits)(const DiagBlock&, const ScoreParams&, std::int32_t,
                     const HitSink&);
  void (*nw_last_row)(const Base*, std::size_t, const Base*, std::size_t,
                      const ScoreParams&, std::int32_t*);
  void (*nw_last_row_affine)(const Base*, std::size_t, const Base*,
                             std::size_t, const ScoreParams&, std::int32_t,
                             std::int32_t*, std::int32_t*);
};

bool backend_available(Backend b) {
  return std::find(available_backends().begin(), available_backends().end(),
                   b) != available_backends().end();
}

std::vector<BackendFns> vector_backends() {
  std::vector<BackendFns> out;
#if GDSM_SIMD_SSE41
  if (backend_available(Backend::kSse41))
    out.push_back({"sse41", sse41::block_best, sse41::block_count,
                   sse41::block_hits, sse41::nw_last_row,
                   sse41::nw_last_row_affine});
#endif
#if GDSM_SIMD_AVX2
  if (backend_available(Backend::kAvx2))
    out.push_back({"avx2", avx2::block_best, avx2::block_count,
                   avx2::block_hits, avx2::nw_last_row,
                   avx2::nw_last_row_affine});
#endif
  // Striped (Farrar) backends replace only block_best; every other kernel
  // delegates to the paired anti-diagonal twin, so the twin's functions are
  // registered here and the corpus holds the striped sweep itself — and its
  // whole delegation ladder (boundary feeds, N chars, 8-bit saturation
  // re-runs, 32-bit fallback) — to the scalar reference.
  out.push_back({"striped-scalar", striped_scalar::block_best,
                 scalar::block_count, scalar::block_hits, scalar::nw_last_row,
                 scalar::nw_last_row_affine});
#if GDSM_SIMD_SSE41
  if (backend_available(Backend::kStripedSse41))
    out.push_back({"striped-sse41", striped_sse41::block_best,
                   sse41::block_count, sse41::block_hits, sse41::nw_last_row,
                   sse41::nw_last_row_affine});
#endif
#if GDSM_SIMD_AVX2
  if (backend_available(Backend::kStripedAvx2))
    out.push_back({"striped-avx2", striped_avx2::block_best, avx2::block_count,
                   avx2::block_hits, avx2::nw_last_row,
                   avx2::nw_last_row_affine});
#endif
#if GDSM_SIMD_AVX512
  if (backend_available(Backend::kStripedAvx512))
    out.push_back({"striped-avx512", striped_avx512::block_best,
                   avx2::block_count, avx2::block_hits, avx2::nw_last_row,
                   avx2::nw_last_row_affine});
#endif
  return out;
}

std::vector<Base> random_bases(std::size_t n, std::mt19937& rng,
                               int alphabet = 4) {
  std::uniform_int_distribution<int> d(0, alphabet - 1);
  std::vector<Base> out(n);
  for (auto& b : out) b = static_cast<Base>(d(rng));
  return out;
}

struct Case {
  std::string label;
  DiagBlock blk;
  ScoreParams sp;
  std::int32_t threshold = 1;
  // Owning storage behind the block's borrowed pointers.
  std::vector<Base> a, b;
  std::vector<std::int32_t> ba, bb, be, bf;
};

// The corpus: (a_len, b_len) shapes crossing strip-width boundaries, the
// fuzzer's degenerate shapes, schemes that overflow 16-bit lanes, and
// boundary-loaded blocks as the preprocess/exact strategies produce them.
std::vector<Case> corpus() {
  std::vector<Case> cases;
  std::mt19937 rng(20260805);
  auto add = [&](std::string label, std::size_t A, std::size_t B,
                 ScoreParams sp, std::int32_t thr, int alphabet,
                 bool with_bounds, std::int32_t bound_scale) {
    Case c;
    c.label = std::move(label);
    c.sp = sp;
    c.threshold = thr;
    c.a = random_bases(A, rng, alphabet);
    c.b = random_bases(B, rng, alphabet);
    c.blk.a_seq = c.a.data();
    c.blk.a_len = A;
    c.blk.b_seq = c.b.data();
    c.blk.b_len = B;
    if (with_bounds) {
      std::uniform_int_distribution<std::int32_t> d(0, bound_scale);
      c.ba.resize(A);
      c.bb.resize(B);
      for (auto& v : c.ba) v = d(rng);
      for (auto& v : c.bb) v = d(rng);
      c.blk.bound_a = c.ba.data();
      c.blk.bound_b = c.bb.data();
      c.blk.corner = d(rng);
      if (sp.gap_open != 0) {
        // Affine boundary feeds as the exact strategy produces them: an E/F
        // value is either a live gap run (the H bound with a freshly charged
        // open + extend) or kNegInf where no run crosses the edge.
        c.be.resize(A);
        c.bf.resize(B);
        for (std::size_t i = 0; i < A; ++i)
          c.be[i] = i % 3 == 0 ? kNegInf : c.ba[i] + sp.gap_open + sp.gap;
        for (std::size_t j = 0; j < B; ++j)
          c.bf[j] = j % 3 == 0 ? kNegInf : c.bb[j] + sp.gap_open + sp.gap;
        c.blk.bound_e = c.be.data();
        c.blk.bound_f = c.bf.data();
      }
    }
    cases.push_back(std::move(c));
  };

  const ScoreParams plain{1, -1, -2};
  const ScoreParams rich{5, -4, -7};
  const ScoreParams big{1000, -900, -1100};  // forces the 32-bit fallback
  // Shapes straddling every lane-count boundary (4/8/16) and the scalar
  // small-block fallback threshold.
  for (std::size_t A : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                        std::size_t{8}, std::size_t{15}, std::size_t{16},
                        std::size_t{17}, std::size_t{33}, std::size_t{100}})
    for (std::size_t B : {std::size_t{1}, std::size_t{7}, std::size_t{31},
                          std::size_t{64}, std::size_t{65}, std::size_t{200}})
      add("shape_" + std::to_string(A) + "x" + std::to_string(B), A, B, plain,
          2, 4, false, 0);
  // Empty dimensions (with edges requested: the boundary-copy contract).
  add("empty_a", 0, 50, plain, 1, 4, true, 9);
  add("empty_b", 40, 0, plain, 1, 4, true, 9);
  add("empty_both", 0, 0, plain, 1, 4, false, 0);
  // Degenerate alphabet: all-same chars (dense matches => dense hits) and
  // all-N (nothing ever matches, scores pinned at 0).
  add("all_same", 70, 300, plain, 3, 1, false, 0);
  add("rich_same", 40, 150, rich, 10, 1, false, 0);
  for (auto alphabet_n : {5}) {
    add("with_n", 50, 260, plain, 2, alphabet_n, false, 0);
    add("with_n_bounds", 33, 140, plain, 2, alphabet_n, true, 40);
  }
  // Score overflow: long same-char runs under big match scores blow through
  // 16-bit lanes; boundary-loaded variants push the start value up too.
  add("overflow_scheme", 64, 400, big, 5000, 1, false, 0);
  add("overflow_bounds", 48, 300, big, 5000, 1, true, 2000000);
  add("overflow_run", 80, 40000, ScoreParams{1, -1, -2}, 32100, 1, false, 0);
  // Boundary-loaded blocks shaped like the exact strategy's grid cells.
  add("block_grid", 128, 256, plain, 4, 4, true, 60);
  add("block_grid_rich", 96, 320, rich, 12, 4, true, 200);
  // Long thin blocks exercise the segment-flush cadence cheaply … and one
  // seam case where b_len sits just above/below the 2*lanes fallback line.
  add("thin", 4, 3000, plain, 3, 4, false, 0);
  add("seam_15", 20, 15, plain, 2, 4, false, 0);
  add("seam_16", 20, 16, plain, 2, 4, false, 0);
  add("seam_17", 20, 17, plain, 2, 4, false, 0);
  // Affine (Gotoh) schemes: a nonzero gap_open routes the very same entry
  // points to the three-matrix E/F/H sweep.  Shapes re-cross the lane
  // boundaries; boundary-loaded cases feed live E/F edges; the big scheme
  // forces the 32-bit affine fallback; zero open must collapse to linear.
  const ScoreParams affine{1, -1, -1, -3};
  const ScoreParams affine_rich{5, -4, -3, -10};
  const ScoreParams affine_big{1000, -900, -500, -2000};
  for (std::size_t A : {std::size_t{1}, std::size_t{7}, std::size_t{16},
                        std::size_t{17}, std::size_t{33}, std::size_t{100}})
    for (std::size_t B : {std::size_t{1}, std::size_t{31}, std::size_t{64},
                          std::size_t{65}, std::size_t{200}})
      add("affine_shape_" + std::to_string(A) + "x" + std::to_string(B), A, B,
          affine, 2, 4, false, 0);
  add("affine_empty_a", 0, 50, affine, 1, 4, true, 9);
  add("affine_empty_b", 40, 0, affine, 1, 4, true, 9);
  add("affine_same", 70, 300, affine, 3, 1, false, 0);
  add("affine_rich", 40, 150, affine_rich, 8, 4, false, 0);
  add("affine_with_n", 50, 260, affine, 2, 5, false, 0);
  add("affine_zero_open", 60, 180, ScoreParams{1, -1, -2, 0}, 2, 4, false, 0);
  add("affine_overflow", 64, 400, affine_big, 5000, 1, false, 0);
  add("affine_overflow_bounds", 48, 300, affine_big, 5000, 1, true, 2000000);
  add("affine_block_grid", 128, 256, affine, 4, 4, true, 60);
  add("affine_block_grid_rich", 96, 320, affine_rich, 10, 4, true, 200);
  add("affine_thin", 4, 3000, affine, 3, 4, false, 0);
  add("affine_seam_16", 20, 16, affine, 2, 4, false, 0);
  return cases;
}

std::vector<Hit> collect_hits(
    void (*fn)(const DiagBlock&, const ScoreParams&, std::int32_t,
               const HitSink&),
    const DiagBlock& blk, const ScoreParams& sp, std::int32_t thr) {
  std::vector<Hit> hits;
  fn(blk, sp, thr, [&](std::size_t a, std::size_t b, std::int32_t v) {
    hits.emplace_back(a, b, v);
  });
  std::sort(hits.begin(), hits.end());
  return hits;
}

TEST(SimdKernelDifferential, AllBackendsMatchScalarOnCorpus) {
  const auto backends = vector_backends();
  if (backends.empty()) GTEST_SKIP() << "no vector backend on this host";
  for (auto& c : corpus()) {
    const bool affine = c.sp.gap_open != 0;
    // Scalar reference, with edge outputs (plus E/F edges under affine).
    std::vector<std::int32_t> ref_last_b(c.blk.a_len),
        ref_last_a(c.blk.b_len);
    std::vector<std::int32_t> ref_last_b_e, ref_last_a_f;
    DiagBlock ref_blk = c.blk;
    ref_blk.out_last_b = ref_last_b.data();
    ref_blk.out_last_a = ref_last_a.data();
    if (affine) {
      ref_last_b_e.assign(c.blk.a_len, -777);
      ref_last_a_f.assign(c.blk.b_len, -777);
      ref_blk.out_last_b_e = ref_last_b_e.data();
      ref_blk.out_last_a_f = ref_last_a_f.data();
    }
    const BestCell ref_best = scalar::block_best(ref_blk, c.sp);
    std::vector<std::uint64_t> ref_counts(c.blk.a_len, 0);
    scalar::block_count(c.blk, c.sp, c.threshold, ref_counts.data());
    const auto ref_hits =
        collect_hits(scalar::block_hits, c.blk, c.sp, c.threshold);

    for (const auto& be : backends) {
      SCOPED_TRACE(c.label + " on " + be.name);
      std::vector<std::int32_t> last_b(c.blk.a_len), last_a(c.blk.b_len);
      std::vector<std::int32_t> last_b_e, last_a_f;
      DiagBlock blk = c.blk;
      blk.out_last_b = last_b.data();
      blk.out_last_a = last_a.data();
      if (affine) {
        last_b_e.assign(c.blk.a_len, -888);
        last_a_f.assign(c.blk.b_len, -888);
        blk.out_last_b_e = last_b_e.data();
        blk.out_last_a_f = last_a_f.data();
      }
      const BestCell best = be.block_best(blk, c.sp);
      EXPECT_EQ(best.score, ref_best.score);
      if (ref_best.score > 0) {
        EXPECT_EQ(best.a, ref_best.a);
        EXPECT_EQ(best.b, ref_best.b);
      }
      EXPECT_EQ(last_b, ref_last_b);
      EXPECT_EQ(last_a, ref_last_a);
      EXPECT_EQ(last_b_e, ref_last_b_e);
      EXPECT_EQ(last_a_f, ref_last_a_f);
      std::vector<std::uint64_t> counts(c.blk.a_len, 0);
      be.block_count(c.blk, c.sp, c.threshold, counts.data());
      EXPECT_EQ(counts, ref_counts);
      EXPECT_EQ(collect_hits(be.block_hits, c.blk, c.sp, c.threshold),
                ref_hits);
    }
  }
}

TEST(SimdKernelDifferential, NwLastRowMatchesScalar) {
  const auto backends = vector_backends();
  if (backends.empty()) GTEST_SKIP() << "no vector backend on this host";
  std::mt19937 rng(7);
  const ScoreParams sp{1, -1, -2};
  for (auto [A, B] : {std::pair<std::size_t, std::size_t>{1, 1},
                      {5, 3},
                      {16, 64},
                      {33, 200},
                      {200, 33},
                      {301, 1000},
                      {64, 0},
                      {0, 64}}) {
    const auto a = random_bases(A, rng, 5);
    const auto b = random_bases(B, rng, 5);
    std::vector<std::int32_t> ref(A, -12345);
    scalar::nw_last_row(a.data(), A, b.data(), B, sp, ref.data());
    for (const auto& be : backends) {
      SCOPED_TRACE(std::string(be.name) + " " + std::to_string(A) + "x" +
                   std::to_string(B));
      std::vector<std::int32_t> got(A, -54321);
      be.nw_last_row(a.data(), A, b.data(), B, sp, got.data());
      EXPECT_EQ(got, ref);
    }
  }
}

TEST(SimdKernelDifferential, NwLastRowAffineMatchesScalar) {
  const auto backends = vector_backends();
  if (backends.empty()) GTEST_SKIP() << "no vector backend on this host";
  std::mt19937 rng(11);
  // Both tb_open flavours per scheme: the normal charge and the Myers–Miller
  // boundary discount (a gap already open across b == 0).  The zero-open
  // scheme pins the degenerate collapse onto the linear recurrence.
  for (const ScoreParams sp : {ScoreParams{1, -1, -1, -3},
                               ScoreParams{5, -4, -3, -10},
                               ScoreParams{1, -1, -2, 0}}) {
    for (auto [A, B] : {std::pair<std::size_t, std::size_t>{1, 1},
                        {5, 3},
                        {16, 64},
                        {33, 200},
                        {200, 33},
                        {301, 1000},
                        {64, 0},
                        {0, 64}}) {
      const auto a = random_bases(A, rng, 5);
      const auto b = random_bases(B, rng, 5);
      for (const std::int32_t tb : {sp.gap_open, std::int32_t{0}}) {
        std::vector<std::int32_t> ref_h(A, -12345), ref_e(A, -12345);
        scalar::nw_last_row_affine(a.data(), A, b.data(), B, sp, tb,
                                   ref_h.data(), ref_e.data());
        for (const auto& be : backends) {
          SCOPED_TRACE(std::string(be.name) + " " + std::to_string(A) + "x" +
                       std::to_string(B) + " open=" +
                       std::to_string(sp.gap_open) + " tb=" +
                       std::to_string(tb));
          std::vector<std::int32_t> h(A, -54321), e(A, -54321);
          be.nw_last_row_affine(a.data(), A, b.data(), B, sp, tb, h.data(),
                                e.data());
          EXPECT_EQ(h, ref_h);
          EXPECT_EQ(e, ref_e);
          // out_e is optional; a null sink must not change out_h.
          std::vector<std::int32_t> h_only(A, -54321);
          be.nw_last_row_affine(a.data(), A, b.data(), B, sp, tb,
                                h_only.data(), nullptr);
          EXPECT_EQ(h_only, ref_h);
        }
      }
    }
  }
}

// gap_open == 0 must make the affine entry points bit-identical to the
// historical linear sweep — scores, edges, counts, and hits — which is what
// lets every caller route on scheme.affine() without a behaviour cliff.
TEST(SimdKernelDifferential, AffineZeroOpenCollapsesToLinear) {
  std::mt19937 rng(13);
  const ScoreParams linear{2, -1, -2};
  ScoreParams zero_open = linear;
  zero_open.gap_open = 0;
  const auto a = random_bases(65, rng, 4);
  const auto b = random_bases(210, rng, 4);
  std::vector<std::int32_t> ba(a.size()), bb(b.size());
  std::uniform_int_distribution<std::int32_t> d(0, 25);
  for (auto& v : ba) v = d(rng);
  for (auto& v : bb) v = d(rng);

  std::vector<BackendFns> all = vector_backends();
  all.push_back({"scalar", scalar::block_best, scalar::block_count,
                 scalar::block_hits, scalar::nw_last_row,
                 scalar::nw_last_row_affine});
  for (const auto& be : all) {
    SCOPED_TRACE(be.name);
    std::vector<std::int32_t> lin_b(a.size()), lin_a(b.size());
    std::vector<std::int32_t> aff_b(a.size()), aff_a(b.size());
    DiagBlock blk;
    blk.a_seq = a.data();
    blk.a_len = a.size();
    blk.b_seq = b.data();
    blk.b_len = b.size();
    blk.bound_a = ba.data();
    blk.bound_b = bb.data();
    blk.corner = 7;
    blk.out_last_b = lin_b.data();
    blk.out_last_a = lin_a.data();
    const BestCell lin = be.block_best(blk, linear);
    blk.out_last_b = aff_b.data();
    blk.out_last_a = aff_a.data();
    const BestCell aff = be.block_best(blk, zero_open);
    EXPECT_EQ(aff.score, lin.score);
    EXPECT_EQ(aff.a, lin.a);
    EXPECT_EQ(aff.b, lin.b);
    EXPECT_EQ(aff_b, lin_b);
    EXPECT_EQ(aff_a, lin_a);
    std::vector<std::uint64_t> lin_counts(a.size(), 0), aff_counts(a.size(), 0);
    be.block_count(blk, linear, 3, lin_counts.data());
    be.block_count(blk, zero_open, 3, aff_counts.data());
    EXPECT_EQ(aff_counts, lin_counts);
    EXPECT_EQ(collect_hits(be.block_hits, blk, zero_open, 3),
              collect_hits(be.block_hits, blk, linear, 3));
  }
}

// Tie-break parity on adversarial inputs: uniform sequences produce massive
// score ties; every backend must land on the scalar scan's first-in-(b, a)
// cell, which is what keeps sw_best_score_linear's documented row-major
// tie-break backend-independent.
TEST(SimdKernelDifferential, TieBreaksMatchScalar) {
  const auto backends = vector_backends();
  if (backends.empty()) GTEST_SKIP() << "no vector backend on this host";
  const ScoreParams sp{1, -1, -2};
  for (std::size_t A : {17u, 40u})
    for (std::size_t B : {64u, 130u}) {
      std::vector<Base> a(A, kBaseA), b(B, kBaseA);
      DiagBlock blk{a.data(), A, b.data(), B, nullptr, nullptr, 0, nullptr,
                    nullptr};
      const BestCell ref = scalar::block_best(blk, sp);
      ASSERT_GT(ref.score, 0);
      for (const auto& be : backends) {
        SCOPED_TRACE(be.name);
        const BestCell got = be.block_best(blk, sp);
        EXPECT_EQ(got.score, ref.score);
        EXPECT_EQ(got.a, ref.a);
        EXPECT_EQ(got.b, ref.b);
      }
    }
}

// The public entry points (sw_best_score_linear & co.) must give identical
// results whichever backend dispatch pins — this is what `tools/ci.sh` runs
// once per GDSM_KERNEL value.
TEST(SimdKernelDispatch, ForcingIsObeyedAndConsistent) {
  const Backend saved = active_backend();
  struct Restore {
    Backend b;
    ~Restore() { force_backend(b); }
  } restore{saved};

  // Forcing an available backend activates it; GDSM_KERNEL uses the same
  // vocabulary (dispatch reads the env once at startup, so the test drives
  // the programmatic path the env handler shares).
  for (Backend b : available_backends()) {
    EXPECT_EQ(force_backend(b), b);
    EXPECT_EQ(active_backend(), b);
    EXPECT_EQ(force_backend(backend_name(b)), b) << backend_name(b);
  }
  // Unknown names keep the current choice.
  const Backend cur = active_backend();
  EXPECT_EQ(force_backend("no-such-kernel"), cur);

  // Same answers through the full sw_* wrappers under every forcing.
  std::mt19937 rng(99);
  auto make_seq = [&](std::size_t n) {
    const auto v = random_bases(n, rng, 5);
    return Sequence("seq", std::basic_string<Base>(v.begin(), v.end()));
  };
  const Sequence s = make_seq(300);
  const Sequence t = make_seq(180);
  force_backend(Backend::kScalar);
  const BestLocal ref = sw_best_score_linear(s, t);
  const std::vector<int> ref_row = nw_last_row(s, t, ScoreScheme{});
  ScoreScheme affine;
  affine.gap_open = -3;
  const BestLocal aref = sw_best_score_linear(s, t, affine);
  for (Backend b : available_backends()) {
    force_backend(b);
    const BestLocal got = sw_best_score_linear(s, t);
    EXPECT_EQ(got.score, ref.score) << backend_name(b);
    EXPECT_EQ(got.end_i, ref.end_i) << backend_name(b);
    EXPECT_EQ(got.end_j, ref.end_j) << backend_name(b);
    EXPECT_EQ(nw_last_row(s, t, ScoreScheme{}), ref_row) << backend_name(b);
    // The affine route obeys the same forcing (ci.sh re-runs this suite once
    // per GDSM_KERNEL value with --gap=affine semantics).
    const BestLocal agot = sw_best_score_linear(s, t, affine);
    EXPECT_EQ(agot.score, aref.score) << backend_name(b);
    EXPECT_EQ(agot.end_i, aref.end_i) << backend_name(b);
    EXPECT_EQ(agot.end_j, aref.end_j) << backend_name(b);
  }
}

TEST(SimdKernelDispatch, StatsAccumulateCellsAndBackendName) {
  reset_kernel_stats();
  std::mt19937 rng(5);
  const auto a = random_bases(120, rng);
  const auto b = random_bases(400, rng);
  DiagBlock blk{a.data(), a.size(), b.data(), b.size(),
                nullptr,  nullptr,  0,        nullptr,  nullptr};
  (void)block_best(blk, ScoreParams{});
  const KernelStats st = kernel_stats();
  EXPECT_STREQ(st.backend, active_backend_name());
  EXPECT_EQ(st.best.calls, 1u);
  EXPECT_EQ(st.best.cells, 120u * 400u);
  EXPECT_EQ(st.count.calls, 0u);
  reset_kernel_stats();
  EXPECT_EQ(kernel_stats().best.calls, 0u);
}

// The schema-v6 nw_affine counter block must meter the dispatched affine
// last-row kernel (docs/METRICS.md v6).
TEST(SimdKernelDispatch, StatsAccumulateAffineCounters) {
  reset_kernel_stats();
  std::mt19937 rng(6);
  const auto a = random_bases(64, rng);
  const auto b = random_bases(128, rng);
  std::vector<std::int32_t> h(a.size()), e(a.size());
  const ScoreParams sp{1, -1, -1, -3};
  nw_last_row_affine(a.data(), a.size(), b.data(), b.size(), sp, sp.gap_open,
                     h.data(), e.data());
  const KernelStats st = kernel_stats();
  EXPECT_EQ(st.nw_affine.calls, 1u);
  EXPECT_EQ(st.nw_affine.cells, 64u * 128u);
  EXPECT_EQ(st.nw.calls, 0u);
  reset_kernel_stats();
  EXPECT_EQ(kernel_stats().nw_affine.calls, 0u);
}

// The schema-v9 `kernel.striped` counters: sweep/cell metering per
// precision, profile-cache traffic (including the service's pre-warm hook),
// and the ineligible-block delegation path (docs/METRICS.md v9).
TEST(SimdKernelDispatch, StripedCountersAndProfileCacheMeter) {
  const Backend saved = active_backend();
  struct Restore {
    Backend b;
    ~Restore() { force_backend(b); }
  } restore{saved};
  ASSERT_EQ(force_backend(Backend::kStripedScalar), Backend::kStripedScalar);
  clear_query_profile_cache();
  reset_kernel_stats();

  std::mt19937 rng(21);
  const auto a = random_bases(100, rng);
  const auto b = random_bases(300, rng);
  DiagBlock blk;
  blk.a_seq = a.data();
  blk.a_len = a.size();
  blk.b_seq = b.data();
  blk.b_len = b.size();
  (void)block_best(blk, ScoreParams{});
  KernelStats st = kernel_stats();
  EXPECT_EQ(st.striped.sweeps8, 1u);
  EXPECT_EQ(st.striped.cells8, 100u * 300u);
  EXPECT_EQ(st.striped.profile_builds, 1u);
  EXPECT_EQ(st.striped.profile_hits, 0u);
  EXPECT_EQ(st.striped.delegated, 0u);
  EXPECT_EQ(st.striped.overflow_reruns, 0u);

  // Same query + params again: the profile is served from the cache.
  (void)block_best(blk, ScoreParams{});
  st = kernel_stats();
  EXPECT_EQ(st.striped.profile_hits, 1u);
  EXPECT_EQ(st.striped.profile_builds, 1u);

  // The service's pre-warm hook builds ahead of the first scan, so the scan
  // itself is a pure cache hit.
  const auto q2 = random_bases(64, rng);
  warm_query_profile(q2.data(), q2.size(), ScoreParams{});
  EXPECT_EQ(kernel_stats().striped.profile_builds, 2u);
  DiagBlock blk2 = blk;
  blk2.a_seq = q2.data();
  blk2.a_len = q2.size();
  (void)block_best(blk2, ScoreParams{});
  st = kernel_stats();
  EXPECT_EQ(st.striped.profile_builds, 2u);
  EXPECT_EQ(st.striped.profile_hits, 2u);
  EXPECT_EQ(st.striped.sweeps8, 3u);

  // A boundary-loaded block is not striped-eligible: it delegates to the
  // paired anti-diagonal backend and says so.
  std::vector<std::int32_t> ba(a.size(), 1), bb(b.size(), 1);
  DiagBlock bounded = blk;
  bounded.bound_a = ba.data();
  bounded.bound_b = bb.data();
  (void)block_best(bounded, ScoreParams{});
  EXPECT_EQ(kernel_stats().striped.delegated, 1u);

  reset_kernel_stats();
  const KernelStats zeroed = kernel_stats();
  EXPECT_EQ(zeroed.striped.sweeps8, 0u);
  EXPECT_EQ(zeroed.striped.profile_builds, 0u);
  EXPECT_EQ(zeroed.striped.delegated, 0u);
}

}  // namespace
}  // namespace gdsm::simd
