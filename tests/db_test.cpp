// Database-serving tests: fragment partitioning, exact filtration, the
// sharded scan against its serial all-pairs oracle (>= 1000 fuzzed
// query/database cases across gap models, comm-plane modes and an injected
// fault plan), and the service path (load_db admission, batching, verify
// mode, error reporting).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "db/db_align.h"
#include "db/subject_db.h"
#include "dsm/cluster.h"
#include "svc/service.h"
#include "svc/stats.h"
#include "sw/linear_score.h"
#include "testing/db_oracle.h"
#include "testing/oracle.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm {
namespace {

std::vector<Sequence> make_db_sequences(std::size_t n, std::size_t len,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Sequence> seqs;
  for (std::size_t i = 0; i < n; ++i) {
    seqs.push_back(random_dna(len, rng, "chr" + std::to_string(i)));
  }
  return seqs;
}

Sequence make_probe(const Sequence& src, std::size_t begin, std::size_t len,
                    std::uint64_t seed) {
  Rng rng(seed);
  Sequence probe = mutate(src.slice(begin, begin + len), 0.05, 0.01, rng);
  probe.set_name("probe");
  return probe;
}

Sequence make_random_probe(std::size_t len, std::uint64_t seed) {
  Rng rng(seed);
  return random_dna(len, rng, "probe");
}

// The three data-plane modes GDSM_COMM selects between.
dsm::CommConfig comm_mode(int which) {
  dsm::CommConfig comm;
  switch (which % 3) {
    case 0:  // legacy: serial one-page-per-message plane
      comm.batch_diffs = false;
      comm.bulk_fetch = false;
      comm.prefetch_pages = 0;
      break;
    case 1:  // batched coalescing only
      comm.prefetch_pages = 0;
      break;
    default:  // batched+prefetch
      comm.prefetch_pages = 4;
      break;
  }
  return comm;
}

// ----------------------------------------------------------- SubjectDb --

TEST(SubjectDb, FragmentsTileEverySequenceWithOverlap) {
  const auto seqs = make_db_sequences(3, 700, 101);
  db::DbConfig cfg;
  cfg.fragment_len = 256;
  cfg.overlap = 24;
  const db::SubjectDb db(seqs, cfg);
  ASSERT_FALSE(db.fragments().empty());
  EXPECT_EQ(db.total_bases(), 3u * 700u);

  std::vector<std::uint32_t> last_end(seqs.size(), 0);
  std::vector<std::uint32_t> last_begin(seqs.size(), 0);
  std::set<std::uint32_t> ids;
  for (const db::Fragment& f : db.fragments()) {
    ASSERT_LT(f.seq_index, seqs.size());
    EXPECT_TRUE(ids.insert(f.id).second) << "duplicate fragment id";
    EXPECT_LT(f.begin, f.end);
    EXPECT_LE(f.end, seqs[f.seq_index].size());
    EXPECT_LE(f.end - f.begin, cfg.fragment_len);
    if (last_end[f.seq_index] > 0) {
      // Consecutive windows of one sequence share `overlap` bases, so an
      // alignment crossing the cut survives in one of the two.
      EXPECT_EQ(f.begin, last_begin[f.seq_index] + cfg.fragment_len -
                             cfg.overlap);
    } else {
      EXPECT_EQ(f.begin, 0u);
    }
    last_end[f.seq_index] = f.end;
    last_begin[f.seq_index] = f.begin;
    // fragment_seq materializes exactly the window.
    const Sequence fs = db.fragment_seq(f.id);
    EXPECT_EQ(fs.size(), f.end - f.begin);
    EXPECT_EQ(fs, seqs[f.seq_index].slice(f.begin, f.end));
  }
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(last_end[i], seqs[i].size()) << "sequence " << i << " not tiled";
  }
}

TEST(SubjectDb, FilterRejectsOnlyProvablyHopelessFragments) {
  const auto seqs = make_db_sequences(4, 500, 102);
  const db::SubjectDb db(seqs, {});
  Rng rng(103);
  const Sequence query = random_dna(100, rng, "q");
  // Well above what chance q-gram collisions can justify for a 100-base
  // probe (the no-seed ceiling is ~60; sparse accidental seeds add ~20).
  const int min_score = 90;

  for (const ScoreScheme sc :
       {ScoreScheme{}, ScoreScheme{1, -1, -1, -3}}) {
    const db::SubjectDb::Filtration f = db.filter(query, sc, min_score);
    EXPECT_EQ(f.scanned, db.fragments().size());
    EXPECT_EQ(f.rejected + f.survivors.size(), f.scanned);
    EXPECT_GT(f.rejected, 0u) << "random probe should reject fragments";
    const std::set<std::uint32_t> kept(f.survivors.begin(), f.survivors.end());
    for (const db::Fragment& frag : db.fragments()) {
      if (kept.count(frag.id)) continue;
      // Exactness: a rejected fragment must truly score below min_score.
      const int truth =
          sw_best_score_linear(query, db.fragment_seq(frag.id), sc).score;
      EXPECT_LT(truth, min_score) << "fragment " << frag.id << " lost a hit";
    }
  }
}

// ------------------------------------------------- differential oracle --

// The acceptance sweep: >= 1000 fuzzed (query, database) comparisons of
// db_query against brute_force_hits, rotating gap model, comm mode and
// report threshold so filtration is exercised both when it bites and when
// it passes everything through.
TEST(DbOracle, FuzzedQueriesMatchBruteForce) {
  std::size_t compared = 0;
  std::size_t rejected = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    testing::DbOracleCase c;
    c.seed = seed;
    c.n_sequences = 3;
    c.seq_len = 400;
    c.n_queries = 25;
    c.query_len = 100;
    c.nprocs = (seed % 2 == 0) ? 4 : 3;
    c.comm = comm_mode(static_cast<int>(seed));
    if (seed % 2 == 0) {
      c.scheme.gap_open = -3;
      c.scheme.gap = -1;
    }
    // Rotate the threshold across the filtration regimes: permissive (all
    // fragments survive), mid, and aggressive (random probes mostly
    // rejected, homologous probes must still come through).
    c.min_score = (seed % 3 == 0) ? 25 : (seed % 3 == 1 ? 45 : 80);
    const testing::DbOracleVerdict v = run_db_differential(c);
    ASSERT_TRUE(v.ok) << c.to_string() << " -> " << v.summary();
    EXPECT_EQ(v.queries, c.n_queries);
    compared += v.queries;
    rejected += v.fragments_rejected;
  }
  EXPECT_GE(compared, 1000u);
  EXPECT_GT(rejected, 0u);  // the aggressive-threshold cases filtered
}

TEST(DbOracle, AgreesUnderEveryCommMode) {
  for (int mode = 0; mode < 3; ++mode) {
    testing::DbOracleCase c;
    c.seed = 500 + static_cast<std::uint64_t>(mode);
    c.comm = comm_mode(mode);
    c.min_score = 40;
    const testing::DbOracleVerdict v = run_db_differential(c);
    EXPECT_TRUE(v.ok) << c.to_string() << " -> " << v.summary();
    EXPECT_GT(v.total_hits, 0u) << "homologous probes must hit";
  }
}

TEST(DbOracle, SurvivesInjectedFaults) {
  // The representative plan of the acceptance matrix: everything at once
  // (drop + reorder + delay + a partition window), with the retry layer
  // turned on so dropped messages are recovered.
  testing::DbOracleCase c;
  c.seed = 904;
  c.n_queries = 6;
  c.retry.timeout_us = 2000;
  c.retry.max_retries = 64;
  c.faults = testing::standard_fault_plans(904).back();
  ASSERT_TRUE(c.faults.enabled());
  const testing::DbOracleVerdict v = run_db_differential(c);
  EXPECT_TRUE(v.ok) << c.to_string() << " -> " << v.summary();
}

TEST(DbOracle, MinimizeKeepsPassingCasesUntouched) {
  testing::DbOracleCase c;
  c.seed = 7;
  const testing::DbOracleCase m = testing::minimize_db(c);
  EXPECT_EQ(m.to_string(), c.to_string());
}

TEST(DbOracle, ReproLineCarriesTheCase) {
  testing::DbOracleCase c;
  c.seed = 42;
  c.scheme.gap_open = -3;
  c.faults = testing::standard_fault_plans(42)[0];
  const std::string repro = c.to_string();
  EXPECT_NE(repro.find("seed=42"), std::string::npos);
  EXPECT_NE(repro.find("gap=affine"), std::string::npos);
  EXPECT_NE(repro.find("faults="), std::string::npos);
}

// ------------------------------------------------------------- service --

TEST(DbService, ServesDatabaseQueriesExactly) {
  const auto seqs = make_db_sequences(3, 600, 201);
  const db::SubjectDb reference_db(seqs, {});

  svc::ServiceConfig cfg;
  cfg.nprocs = 4;
  cfg.verify = true;  // in-service brute-force oracle must agree too
  svc::AlignService service(cfg);
  service.load_db("nt", seqs);
  EXPECT_TRUE(service.has_db("nt"));
  EXPECT_FALSE(service.has_db("missing"));

  for (std::uint64_t k = 0; k < 4; ++k) {
    const Sequence probe =
        k % 2 == 0 ? make_probe(seqs[k % seqs.size()], 150, 120, 300 + k)
                   : make_random_probe(120, 300 + k);
    svc::QuerySpec spec;
    spec.database = "nt";
    spec.query = probe;
    spec.min_score = 40;
    const auto adm = service.submit(std::move(spec));
    ASSERT_TRUE(adm.admitted());
    const svc::QueryOutcome& out = adm.ticket->wait();
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.result.strategy, svc::StrategyKind::kDbScan);
    const auto expected =
        db::brute_force_hits(reference_db, probe, ScoreScheme{}, 40);
    EXPECT_EQ(out.result.db_hits, expected);
    EXPECT_EQ(out.result.db_fragments_scanned, reference_db.fragments().size());
    if (k % 2 == 0) EXPECT_FALSE(out.result.db_hits.empty());
  }

  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.db_queries, 4u);
  EXPECT_GT(stats.db_fragments_scanned, 0u);
}

TEST(DbService, SecondQueryOnSameDatabaseRunsWarm) {
  const auto seqs = make_db_sequences(2, 800, 202);
  svc::ServiceConfig cfg;
  cfg.nprocs = 2;
  svc::AlignService service(cfg);
  service.load_db("nt", seqs);
  const Sequence probe = make_probe(seqs[0], 100, 150, 203);

  const auto run_one = [&] {
    svc::QuerySpec spec;
    spec.database = "nt";
    spec.query = probe;
    spec.min_score = 40;
    const auto adm = service.submit(std::move(spec));
    const svc::QueryOutcome& out = adm.ticket->wait();
    EXPECT_TRUE(out.ok) << out.error;
    return out.result;
  };
  const svc::QueryResult cold = run_one();
  const svc::QueryResult warm = run_one();
  EXPECT_FALSE(cold.warm);
  EXPECT_TRUE(warm.warm);
}

TEST(DbService, RejectsBadDatabaseQueries) {
  const auto seqs = make_db_sequences(1, 400, 204);
  svc::ServiceConfig cfg;
  cfg.nprocs = 2;
  svc::AlignService service(cfg);
  service.load_db("nt", seqs);
  EXPECT_THROW(service.load_db("nt", seqs), std::invalid_argument);

  Rng rng(205);
  const Sequence probe = random_dna(80, rng, "probe");

  svc::QuerySpec unknown;
  unknown.database = "nope";
  unknown.query = probe;
  unknown.min_score = 10;
  const auto out1 = service.submit(std::move(unknown)).ticket->wait();
  EXPECT_FALSE(out1.ok);
  EXPECT_NE(out1.error.find("unknown database"), std::string::npos);

  svc::QuerySpec no_threshold;
  no_threshold.database = "nt";
  no_threshold.query = probe;
  const auto out2 = service.submit(std::move(no_threshold)).ticket->wait();
  EXPECT_FALSE(out2.ok);
  EXPECT_NE(out2.error.find("min_score"), std::string::npos);

  svc::QuerySpec wrong_strategy;
  wrong_strategy.database = "nt";
  wrong_strategy.query = probe;
  wrong_strategy.min_score = 10;
  wrong_strategy.strategy = svc::StrategyKind::kExact;
  const auto out3 = service.submit(std::move(wrong_strategy)).ticket->wait();
  EXPECT_FALSE(out3.ok);
  EXPECT_NE(out3.error.find("db_scan"), std::string::npos);
}

}  // namespace
}  // namespace gdsm
