// End-to-end equivalence of the parallel heuristic strategies with the
// serial scan: the parallelization must change WHO computes each cell, never
// WHAT is computed.
#include <gtest/gtest.h>

#include "core/blocked.h"
#include "core/wavefront.h"
#include "sw/heuristic_scan.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm::core {
namespace {

HomologousPair make_pair(std::size_t len, std::uint64_t seed,
                         std::size_t regions = 3) {
  HomologousPairSpec spec;
  spec.length_s = len;
  spec.length_t = len;
  spec.n_regions = regions;
  spec.region_len_mean = std::min<std::size_t>(150, len / 6);
  spec.region_len_spread = spec.region_len_mean / 4;
  spec.seed = seed;
  return make_homologous_pair(spec);
}

struct StratCase {
  int nprocs;
  std::size_t len;
  std::uint64_t seed;
};

std::string strat_name(const testing::TestParamInfo<StratCase>& info) {
  return "p" + std::to_string(info.param.nprocs) + "_n" +
         std::to_string(info.param.len) + "_seed" +
         std::to_string(info.param.seed);
}

class WavefrontVsSerial : public testing::TestWithParam<StratCase> {};

TEST_P(WavefrontVsSerial, IdenticalCandidateQueues) {
  const auto& prm = GetParam();
  const HomologousPair pair = make_pair(prm.len, prm.seed);
  HeuristicParams params;
  params.min_report_score = 25;

  const auto serial = heuristic_scan(pair.s, pair.t, ScoreScheme{}, params);

  WavefrontConfig cfg;
  cfg.nprocs = prm.nprocs;
  cfg.params = params;
  const StrategyResult par = wavefront_align(pair.s, pair.t, cfg);
  EXPECT_FALSE(par.overflow);
  EXPECT_EQ(par.candidates, serial);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WavefrontVsSerial,
    testing::Values(StratCase{1, 400, 71}, StratCase{2, 400, 71},
                    StratCase{3, 401, 72}, StratCase{4, 512, 73},
                    StratCase{8, 512, 73}, StratCase{8, 777, 74},
                    StratCase{5, 999, 75}),
    strat_name);

class BlockedVsSerial : public testing::TestWithParam<StratCase> {};

TEST_P(BlockedVsSerial, IdenticalCandidateQueues) {
  const auto& prm = GetParam();
  const HomologousPair pair = make_pair(prm.len, prm.seed);
  HeuristicParams params;
  params.min_report_score = 25;

  const auto serial = heuristic_scan(pair.s, pair.t, ScoreScheme{}, params);

  BlockedConfig cfg;
  cfg.nprocs = prm.nprocs;
  cfg.params = params;
  cfg.mult_w = 2;
  cfg.mult_h = 2;
  const StrategyResult par = blocked_align(pair.s, pair.t, cfg);
  EXPECT_FALSE(par.overflow);
  EXPECT_EQ(par.candidates, serial);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockedVsSerial,
    testing::Values(StratCase{1, 400, 71}, StratCase{2, 400, 71},
                    StratCase{3, 401, 72}, StratCase{4, 512, 73},
                    StratCase{8, 512, 73}, StratCase{8, 777, 74},
                    StratCase{6, 999, 75}),
    strat_name);

TEST(BlockedVariants, BlockShapeDoesNotChangeResults) {
  const HomologousPair pair = make_pair(600, 81);
  HeuristicParams params;
  params.min_report_score = 25;
  const auto serial = heuristic_scan(pair.s, pair.t, ScoreScheme{}, params);

  for (const auto& [bands, blocks] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {4, 4}, {7, 3}, {16, 16}, {40, 40}, {600, 1}, {1, 600}}) {
    BlockedConfig cfg;
    cfg.nprocs = 4;
    cfg.params = params;
    cfg.bands = bands;
    cfg.blocks = blocks;
    const StrategyResult par = blocked_align(pair.s, pair.t, cfg);
    EXPECT_EQ(par.candidates, serial)
        << "bands=" << bands << " blocks=" << blocks;
  }
}

TEST(WavefrontEdge, MoreProcessorsThanColumns) {
  Rng rng(82);
  const Sequence s = random_dna(40, rng, "s");
  const Sequence t = random_dna(5, rng, "t");  // 5 columns, 8 processors
  HeuristicParams params;
  params.min_report_score = 2;
  const auto serial = heuristic_scan(s, t, ScoreScheme{}, params);
  WavefrontConfig cfg;
  cfg.nprocs = 8;
  cfg.params = params;
  const StrategyResult par = wavefront_align(s, t, cfg);
  EXPECT_EQ(par.candidates, serial);
}

TEST(WavefrontEdge, EmptyInputs) {
  const Sequence e("e", "");
  const Sequence s("s", "ACGTACGT");
  WavefrontConfig cfg;
  cfg.nprocs = 4;
  EXPECT_TRUE(wavefront_align(e, s, cfg).candidates.empty());
  EXPECT_TRUE(wavefront_align(s, e, cfg).candidates.empty());
}

TEST(BlockedEdge, EmptyInputs) {
  const Sequence e("e", "");
  const Sequence s("s", "ACGTACGT");
  BlockedConfig cfg;
  cfg.nprocs = 4;
  EXPECT_TRUE(blocked_align(e, s, cfg).candidates.empty());
  EXPECT_TRUE(blocked_align(s, e, cfg).candidates.empty());
}

TEST(StrategyStats, WavefrontUsesCvProtocol) {
  const HomologousPair pair = make_pair(400, 83);
  WavefrontConfig cfg;
  cfg.nprocs = 4;
  const StrategyResult res = wavefront_align(pair.s, pair.t, cfg);
  const auto total = res.dsm_stats.total_node();
  // One data_ready signal per interior border per row, plus slot-free acks.
  EXPECT_GE(total.cv_signals, 2 * 3 * 400u - 8u);
  EXPECT_GE(total.cv_waits, 2 * 3 * 400u - 8u);
  EXPECT_EQ(total.barriers, 8u);  // 2 barriers x 4 nodes
  EXPECT_GT(total.invalidations, 0u);
}

TEST(StrategyStats, BlockingReducesSignalTraffic) {
  const HomologousPair pair = make_pair(512, 84);
  WavefrontConfig wf;
  wf.nprocs = 4;
  const auto r1 = wavefront_align(pair.s, pair.t, wf);
  BlockedConfig bl;
  bl.nprocs = 4;
  bl.mult_w = 2;
  bl.mult_h = 2;
  const auto r2 = blocked_align(pair.s, pair.t, bl);
  // The whole point of Strategy 2: far fewer synchronization operations.
  EXPECT_LT(r2.dsm_stats.total_node().cv_signals,
            r1.dsm_stats.total_node().cv_signals / 4);
}

TEST(WavefrontSharedRows, PaperLiteralModeIsEquivalent) {
  const HomologousPair pair = make_pair(500, 86);
  HeuristicParams params;
  params.min_report_score = 25;
  const auto serial = heuristic_scan(pair.s, pair.t, ScoreScheme{}, params);

  WavefrontConfig cfg;
  cfg.nprocs = 4;
  cfg.params = params;
  cfg.rows_in_shared_memory = true;
  const StrategyResult shared = wavefront_align(pair.s, pair.t, cfg);
  EXPECT_EQ(shared.candidates, serial);

  // The literal layout pushes every row through the DSM write path: far
  // more pages written than the buffer-swapping default.
  cfg.rows_in_shared_memory = false;
  const StrategyResult local = wavefront_align(pair.s, pair.t, cfg);
  EXPECT_EQ(local.candidates, serial);
}

TEST(WavefrontOverflow, TruncationIsReported) {
  const HomologousPair pair = make_pair(1200, 85, /*regions=*/5);
  WavefrontConfig cfg;
  cfg.nprocs = 2;
  cfg.params.min_report_score = 8;  // lots of noise candidates
  cfg.max_candidates_per_node = 1;  // force overflow
  const StrategyResult res = wavefront_align(pair.s, pair.t, cfg);
  EXPECT_TRUE(res.overflow);
}

}  // namespace
}  // namespace gdsm::core
