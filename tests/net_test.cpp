#include <gtest/gtest.h>

#include <thread>

#include "net/mailbox.h"
#include "net/transport.h"

namespace gdsm::net {
namespace {

TEST(Mailbox, FifoOrder) {
  Mailbox box;
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.a = static_cast<std::uint64_t>(i);
    box.push(std::move(m));
  }
  for (int i = 0; i < 5; ++i) {
    const auto m = box.pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->a, static_cast<std::uint64_t>(i));
  }
}

TEST(Mailbox, CloseWakesBlockedConsumer) {
  Mailbox box;
  std::thread consumer([&] {
    const auto m = box.pop();
    EXPECT_FALSE(m.has_value());
  });
  box.close();
  consumer.join();
}

TEST(Mailbox, DrainsQueuedMessagesAfterClose) {
  Mailbox box;
  Message m;
  m.a = 7;
  box.push(std::move(m));
  box.close();
  const auto got = box.pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->a, 7u);
  EXPECT_FALSE(box.pop().has_value());
}

TEST(Mailbox, CrossThreadDelivery) {
  Mailbox box;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) {
      Message m;
      m.a = static_cast<std::uint64_t>(i);
      box.push(std::move(m));
    }
  });
  std::uint64_t sum = 0;
  for (int i = 0; i < 100; ++i) {
    const auto m = box.pop();
    ASSERT_TRUE(m.has_value());
    sum += m->a;
  }
  producer.join();
  EXPECT_EQ(sum, 4950u);
}

TEST(Transport, RoutesToServiceAndReplyBoxes) {
  Transport tp(3);
  Message m;
  m.src = 0;
  m.dst = 2;
  m.type = MsgType::kGetPage;
  tp.send(std::move(m));
  Message r;
  r.src = 2;
  r.dst = 0;
  r.type = MsgType::kPageData;
  r.to_reply_box = true;
  tp.send(std::move(r));

  EXPECT_EQ(tp.service_box(2).size(), 1u);
  EXPECT_EQ(tp.reply_box(0).size(), 1u);
  EXPECT_EQ(tp.service_box(0).size(), 0u);
}

TEST(Transport, CountsTrafficPerSourceAndType) {
  Transport tp(2);
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.type = MsgType::kDiff;
    m.payload.resize(100);
    tp.send(std::move(m));
  }
  const TrafficCounters c = tp.counters(0);
  EXPECT_EQ(c.messages[static_cast<int>(MsgType::kDiff)], 3u);
  EXPECT_EQ(c.bytes[static_cast<int>(MsgType::kDiff)], 3 * (40u + 100u));
  EXPECT_EQ(c.total_messages(), 3u);
  EXPECT_EQ(tp.counters(1).total_messages(), 0u);
}

TEST(Transport, SelfMessagesAreNotCountedAsTraffic) {
  Transport tp(2);
  Message m;
  m.src = 1;
  m.dst = 1;
  m.type = MsgType::kSetCv;
  tp.send(std::move(m));
  EXPECT_EQ(tp.counters(1).total_messages(), 0u);  // loopback, no wire
  EXPECT_EQ(tp.service_box(1).size(), 1u);         // still delivered
}

TEST(Transport, MessageTypeNames) {
  EXPECT_STREQ(msg_type_name(MsgType::kBarrier), "BARR");
  EXPECT_STREQ(msg_type_name(MsgType::kBarrierGrant), "BARRGRANT");
  EXPECT_STREQ(msg_type_name(MsgType::kAcquire), "ACQ");
}

}  // namespace
}  // namespace gdsm::net
