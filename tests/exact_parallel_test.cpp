// Parallel exact alignment (Section 6 score pass distributed over message
// passing) must reproduce the serial Algorithm 1 exactly.
#include <gtest/gtest.h>

#include "core/exact_parallel.h"
#include "sw/full_matrix.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm::core {
namespace {

struct ExactCase {
  int nprocs;
  std::size_t bands, blocks;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<ExactCase>& info) {
  return "p" + std::to_string(info.param.nprocs) + "_b" +
         std::to_string(info.param.bands) + "x" +
         std::to_string(info.param.blocks) + "_seed" +
         std::to_string(info.param.seed);
}

class ExactParallel : public testing::TestWithParam<ExactCase> {};

TEST_P(ExactParallel, MatchesSerialAlgorithm1) {
  const auto& prm = GetParam();
  HomologousPairSpec spec;
  spec.length_s = 600;
  spec.length_t = 600;
  spec.n_regions = 2;
  spec.region_len_mean = 90;
  spec.region_len_spread = 15;
  spec.seed = prm.seed;
  const HomologousPair pair = make_homologous_pair(spec);

  const BestLocal serial_best = sw_best_score_linear(pair.s, pair.t);
  const RebuildResult serial = rebuild_best_local_alignment(pair.s, pair.t);

  ExactParallelConfig cfg;
  cfg.nprocs = prm.nprocs;
  cfg.bands = prm.bands;
  cfg.blocks = prm.blocks;
  const ExactParallelResult par = exact_align_parallel(pair.s, pair.t, cfg);

  EXPECT_EQ(par.best.score, serial_best.score);
  EXPECT_EQ(par.best.end_i, serial_best.end_i);
  EXPECT_EQ(par.best.end_j, serial_best.end_j);
  EXPECT_EQ(par.rebuilt.alignment.score, serial.alignment.score);
  EXPECT_EQ(par.rebuilt.alignment.s_begin, serial.alignment.s_begin);
  EXPECT_EQ(par.rebuilt.alignment.t_begin, serial.alignment.t_begin);
  EXPECT_EQ(par.rebuilt.alignment.compute_score(pair.s, pair.t, ScoreScheme{}),
            par.rebuilt.alignment.score);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactParallel,
    testing::Values(ExactCase{1, 4, 4, 821}, ExactCase{2, 8, 8, 821},
                    ExactCase{4, 16, 16, 822}, ExactCase{8, 16, 7, 823},
                    ExactCase{3, 11, 13, 824}, ExactCase{4, 600, 1, 825},
                    ExactCase{4, 1, 600, 825}),
    case_name);

TEST(ExactParallelEdge, RandomInputTieBreaksLikeSerial) {
  // Random DNA has many equal-score cells: the reduction's lexicographic
  // tie-break must reproduce the serial scan's first-in-row-major choice.
  Rng rng(826);
  const Sequence s = random_dna(400, rng, "s");
  const Sequence t = random_dna(400, rng, "t");
  const BestLocal serial = sw_best_score_linear(s, t);
  ExactParallelConfig cfg;
  cfg.nprocs = 4;
  const ExactParallelResult par = exact_align_parallel(s, t, cfg);
  EXPECT_EQ(par.best.score, serial.score);
  EXPECT_EQ(par.best.end_i, serial.end_i);
  EXPECT_EQ(par.best.end_j, serial.end_j);
}

TEST(ExactParallelEdge, EmptyAndUnrelatedInputs) {
  const Sequence e("e", "");
  const Sequence a("a", "AAAAAAAA");
  const Sequence c("c", "CCCCCCCC");
  ExactParallelConfig cfg;
  cfg.nprocs = 2;
  EXPECT_EQ(exact_align_parallel(e, a, cfg).best.score, 0);
  EXPECT_EQ(exact_align_parallel(a, c, cfg).best.score, 0);
  EXPECT_TRUE(exact_align_parallel(a, c, cfg).rebuilt.alignment.ops.empty());
}

TEST(ExactParallelEdge, HirschbergVariant) {
  HomologousPairSpec spec;
  spec.length_s = 500;
  spec.length_t = 500;
  spec.n_regions = 1;
  spec.region_len_mean = 120;
  spec.region_len_spread = 10;
  spec.seed = 827;
  const HomologousPair pair = make_homologous_pair(spec);
  ExactParallelConfig cfg;
  cfg.nprocs = 4;
  cfg.use_hirschberg = true;
  const ExactParallelResult par = exact_align_parallel(pair.s, pair.t, cfg);
  EXPECT_EQ(par.best.score, sw_best_score_linear(pair.s, pair.t).score);
  EXPECT_EQ(par.rebuilt.alignment.compute_score(pair.s, pair.t, ScoreScheme{}),
            par.best.score);
}

}  // namespace
}  // namespace gdsm::core
