// Ground-truth tests of the DP kernels, anchored on the paper's worked
// examples (Figs. 1, 3, 4).
#include <gtest/gtest.h>

#include "sw/full_matrix.h"
#include "sw/hirschberg.h"
#include "sw/linear_score.h"
#include "util/sequence.h"

namespace gdsm {
namespace {

const ScoreScheme kScheme{};  // +1 / -1 / -2 as in Section 2

// Fig. 1: the global alignment of GACGGATTAG and GATCGGAATAG scores 6
// (nine identities, one mismatch, one space: 9 - 1 - 2 = 6).
TEST(NeedlemanWunsch, PaperFig1Score) {
  const Sequence s("s", "GACGGATTAG");
  const Sequence t("t", "GATCGGAATAG");
  const Alignment al = needleman_wunsch(s, t, kScheme);
  EXPECT_EQ(al.score, 6);
  EXPECT_EQ(al.compute_score(s, t, kScheme), al.score);
  // Global alignment consumes both sequences entirely.
  EXPECT_EQ(al.s_begin, 0u);
  EXPECT_EQ(al.t_begin, 0u);
  EXPECT_EQ(al.s_end(), s.size());
  EXPECT_EQ(al.t_end(), t.size());
}

// Fig. 4: the NW array of ATAGCT x GATATGCA.  Spot-check the border
// initialization (gap penalties) and the corner value.
TEST(NeedlemanWunsch, PaperFig4Borders) {
  const Sequence s("s", "ATAGCT");
  const Sequence t("t", "GATATGCA");
  const DpMatrix a = nw_fill(s, t, kScheme);
  EXPECT_EQ(a.at(0, 0), 0);
  EXPECT_EQ(a.at(0, 1), -2);
  EXPECT_EQ(a.at(0, 8), -16);
  EXPECT_EQ(a.at(1, 0), -2);
  EXPECT_EQ(a.at(6, 0), -12);
}

// Fig. 3: the SW array of the same pair has zero first row and column and
// no negative entries anywhere.
TEST(SmithWaterman, PaperFig3ZeroBordersAndFloor) {
  const Sequence s("s", "ATAGCT");
  const Sequence t("t", "GATATGCA");
  MatrixBest best;
  const DpMatrix a = sw_fill(s, t, kScheme, &best);
  for (std::size_t j = 0; j < a.cols(); ++j) EXPECT_EQ(a.at(0, j), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) EXPECT_EQ(a.at(i, 0), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) EXPECT_GE(a.at(i, j), 0);
  }
  EXPECT_GT(best.score, 0);
  EXPECT_EQ(a.at(best.i, best.j), best.score);
}

TEST(SmithWaterman, IdenticalStrings) {
  const Sequence s("s", "ACGTACGTAC");
  const Alignment al = smith_waterman(s, s, kScheme);
  EXPECT_EQ(al.score, static_cast<int>(s.size()));
  EXPECT_EQ(al.ops.size(), s.size());
  for (Op op : al.ops) EXPECT_EQ(op, Op::Diag);
}

TEST(SmithWaterman, DisjointAlphabetsHaveNoAlignment) {
  const Sequence s("s", "AAAAAAAA");
  const Sequence t("t", "CCCCCCCC");
  const Alignment al = smith_waterman(s, t, kScheme);
  EXPECT_EQ(al.score, 0);
  EXPECT_TRUE(al.ops.empty());
}

TEST(SmithWaterman, FindsEmbeddedMatch) {
  // t contains an exact copy of the middle of s.
  const Sequence s("s", "TTTTTACGTACGTACGTTTTTT");
  const Sequence t("t", "GGGGACGTACGTACGTGGGG");
  const Alignment al = smith_waterman(s, t, kScheme);
  EXPECT_GE(al.score, 12);
  EXPECT_EQ(al.compute_score(s, t, kScheme), al.score);
}

TEST(SmithWaterman, EmptyInputs) {
  const Sequence e("e", "");
  const Sequence s("s", "ACGT");
  EXPECT_EQ(smith_waterman(e, s, kScheme).score, 0);
  EXPECT_EQ(smith_waterman(s, e, kScheme).score, 0);
  EXPECT_EQ(smith_waterman(e, e, kScheme).score, 0);
}

TEST(SmithWaterman, NNeverMatches) {
  const Sequence s("s", "NNNNNNNN");
  EXPECT_EQ(smith_waterman(s, s, kScheme).score, 0);
}

TEST(LinearScore, MatchesFullMatrixBest) {
  const Sequence s("s", "GATCGGAATAGCTACGGATCG");
  const Sequence t("t", "TTACGGATCGATCGGAATAGC");
  MatrixBest best;
  sw_fill(s, t, kScheme, &best);
  const BestLocal lin = sw_best_score_linear(s, t, kScheme);
  EXPECT_EQ(lin.score, best.score);
  // The end cell must actually hold that score.
  const DpMatrix a = sw_fill(s, t, kScheme, nullptr);
  EXPECT_EQ(a.at(lin.end_i, lin.end_j), lin.score);
}

TEST(LinearScore, ScanHitsCountsThreshold) {
  const Sequence s("s", "ACGTACGTACGT");
  const Sequence t("t", "ACGTACGTACGT");
  const DpMatrix a = sw_fill(s, t, kScheme, nullptr);
  std::size_t expected = 0;
  for (std::size_t i = 1; i < a.rows(); ++i) {
    for (std::size_t j = 1; j < a.cols(); ++j) expected += (a.at(i, j) >= 4);
  }
  std::size_t got = 0;
  sw_scan_hits(s, t, kScheme, 4,
               [&](std::size_t, std::size_t, int) { ++got; });
  EXPECT_EQ(got, expected);
}

TEST(Hirschberg, MatchesNeedlemanWunschScore) {
  const Sequence s("s", "GACGGATTAG");
  const Sequence t("t", "GATCGGAATAG");
  const Alignment h = hirschberg(s, t, kScheme);
  const Alignment nw = needleman_wunsch(s, t, kScheme);
  EXPECT_EQ(h.score, nw.score);
  EXPECT_EQ(h.compute_score(s, t, kScheme), h.score);
  EXPECT_EQ(h.s_end(), s.size());
  EXPECT_EQ(h.t_end(), t.size());
}

TEST(Hirschberg, DegenerateShapes) {
  const Sequence e("e", "");
  const Sequence s("s", "ACGT");
  EXPECT_EQ(hirschberg(e, s, kScheme).score, -8);   // 4 gaps
  EXPECT_EQ(hirschberg(s, e, kScheme).score, -8);
  EXPECT_EQ(hirschberg(s, s, kScheme).score, 4);
  EXPECT_EQ(hirschberg(e, e, kScheme).score, 0);
}

TEST(Alignment, RenderShowsGapsAndBars) {
  const Sequence s("s", "ACGT");
  const Sequence t("t", "AGT");
  const Alignment al = needleman_wunsch(s, t, kScheme);
  const auto lines = al.render(s, t);
  EXPECT_EQ(lines[0].size(), lines[2].size());
  EXPECT_NE(lines[2].find('_'), std::string::npos);  // a gap in t
  EXPECT_NE(lines[1].find('|'), std::string::npos);  // some identity
}

TEST(Alignment, ToRecordHasOneBasedCoords) {
  const Sequence s("s", "ACGT");
  const Alignment al = smith_waterman(s, s, kScheme);
  const std::string rec = al.to_record(s, s);
  EXPECT_NE(rec.find("initial_x: 1"), std::string::npos);
  EXPECT_NE(rec.find("final_x: 4"), std::string::npos);
  EXPECT_NE(rec.find("similarity: 4"), std::string::npos);
}

TEST(AllAlignments, FindsTwoSeparateRegions) {
  // Two distinct shared blocks separated by unrelated sequence.
  const Sequence s("s", "ACGTACGTACGTTTTTTTTTTTTGGCCGGCCGGCC");
  const Sequence t("t", "AAAAAACGTACGTACGTAAAAAAAGGCCGGCCGGCC");
  const auto als = sw_all_alignments(s, t, kScheme, /*min_score=*/8);
  ASSERT_GE(als.size(), 2u);
  for (const auto& al : als) {
    EXPECT_GE(al.score, 8);
    EXPECT_EQ(al.compute_score(s, t, kScheme), al.score);
  }
}

TEST(Candidates, CullKeepsBestDisjointRegions) {
  std::vector<Candidate> q{
      {50, 100, 200, 100, 200},  // region A, best
      {45, 150, 250, 150, 250},  // overlaps A: culled
      {40, 500, 600, 500, 600},  // region B, kept
      {35, 90, 110, 400, 420},   // s overlaps A but t disjoint: kept
      {30, 505, 595, 505, 595},  // inside B: culled
  };
  const auto kept = cull_overlapping_candidates(q, 10);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].score, 50);
  EXPECT_EQ(kept[1].score, 40);
  EXPECT_EQ(kept[2].score, 35);
  // max_count cap applies after sorting by score.
  EXPECT_EQ(cull_overlapping_candidates(q, 1).size(), 1u);
  EXPECT_EQ(cull_overlapping_candidates(q, 1)[0].score, 50);
  EXPECT_TRUE(cull_overlapping_candidates({}, 4).empty());
}

TEST(Candidates, FinalizeSortsBySizeAndDedupes) {
  std::vector<Candidate> q{
      {10, 5, 9, 5, 9},    // spans 5+5
      {12, 1, 20, 1, 20},  // spans 20+20 (largest)
      {10, 5, 9, 5, 9},    // duplicate
  };
  finalize_candidates(q);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0].s_begin, 1u);  // largest first
  EXPECT_EQ(q[1].s_begin, 5u);
}

}  // namespace
}  // namespace gdsm
