// Banded alignment and CIGAR round-trip tests.
#include <gtest/gtest.h>

#include "sw/banded.h"
#include "sw/full_matrix.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm {
namespace {

TEST(Banded, WideBandEqualsFullNeedlemanWunsch) {
  Rng rng(911);
  for (int round = 0; round < 6; ++round) {
    const Sequence s = random_dna(40 + rng.below(60), rng, "s");
    const Sequence t = random_dna(40 + rng.below(60), rng, "t");
    const int band = static_cast<int>(std::max(s.size(), t.size()));
    const auto banded = banded_needleman_wunsch(s, t, band);
    ASSERT_TRUE(banded.has_value());
    EXPECT_EQ(banded->score, needleman_wunsch(s, t).score);
    EXPECT_EQ(banded->compute_score(s, t, ScoreScheme{}), banded->score);
  }
}

TEST(Banded, WideBandEqualsFullSmithWaterman) {
  Rng rng(912);
  HomologousPairSpec spec;
  spec.length_s = 300;
  spec.length_t = 300;
  spec.n_regions = 1;
  spec.region_len_mean = 80;
  spec.region_len_spread = 10;
  spec.seed = 912;
  const HomologousPair pair = make_homologous_pair(spec);
  const Alignment banded = banded_smith_waterman(pair.s, pair.t, 300);
  EXPECT_EQ(banded.score, smith_waterman(pair.s, pair.t).score);
}

TEST(Banded, NarrowBandOnDiagonalHomologyStillFindsIt) {
  // A nearly-diagonal alignment fits inside a narrow band at a fraction of
  // the full-matrix cost.
  Rng rng(913);
  const Sequence shared = random_dna(150, rng, "shared");
  const Sequence s = shared;
  const Sequence t = mutate(shared, 0.05, 0.0, rng);  // no indels: on-diagonal
  const Alignment banded = banded_smith_waterman(s, t, /*band=*/3);
  const Alignment full = smith_waterman(s, t);
  EXPECT_EQ(banded.score, full.score);
}

TEST(Banded, BandTooNarrowForOffsetReturnsNullopt) {
  const Sequence s("s", "ACGTACGT");           // 8
  const Sequence t("t", "ACGTACGTACGTACGTAC");  // 18: offset 10 > band 4
  EXPECT_FALSE(banded_needleman_wunsch(s, t, 4).has_value());
  EXPECT_TRUE(banded_needleman_wunsch(s, t, 10).has_value());
}

TEST(Banded, CenterDiagonalShiftsTheBand) {
  // The shared block sits 100 columns to the right: reachable only when the
  // band is centered near diagonal +100.
  Rng rng(914);
  const Sequence shared = random_dna(60, rng, "shared");
  const Sequence s("s", shared.text() + random_dna(100, rng).text());
  const Sequence t("t", random_dna(100, rng).text() + shared.text());
  const Alignment centered = banded_smith_waterman(s, t, 8, /*center=*/100);
  EXPECT_GE(centered.score, 50);
  const Alignment wrong = banded_smith_waterman(s, t, 8, /*center=*/0);
  EXPECT_LT(wrong.score, centered.score);
}

TEST(Cigar, RoundTrip) {
  Rng rng(915);
  const Sequence s = random_dna(120, rng, "s");
  const Sequence t = random_dna(110, rng, "t");
  const Alignment al = needleman_wunsch(s, t);
  const std::string cig = al.cigar();
  EXPECT_FALSE(cig.empty());
  EXPECT_EQ(parse_cigar(cig), al.ops);
}

TEST(Cigar, KnownString) {
  Alignment al;
  al.ops = {Op::Diag, Op::Diag, Op::Left, Op::Left, Op::Diag, Op::Up};
  EXPECT_EQ(al.cigar(), "2M2D1M1I");
  EXPECT_EQ(parse_cigar("2M2D1M1I"), al.ops);
  EXPECT_EQ(parse_cigar("1=1X"), (std::vector<Op>{Op::Diag, Op::Diag}));
}

TEST(Cigar, RejectsMalformed) {
  EXPECT_THROW(parse_cigar("M"), std::invalid_argument);
  EXPECT_THROW(parse_cigar("3"), std::invalid_argument);
  EXPECT_THROW(parse_cigar("0M"), std::invalid_argument);
  EXPECT_THROW(parse_cigar("2Q"), std::invalid_argument);
  EXPECT_TRUE(parse_cigar("").empty());
}

}  // namespace
}  // namespace gdsm
