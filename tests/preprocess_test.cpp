// Strategy 3 tests: band sizing schemes, chunk schedules, the result-matrix
// scoreboard against a serial recount, and the column stores.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/preprocess.h"
#include "sw/full_matrix.h"
#include "sw/linear_score.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm::core {
namespace {

TEST(BandOffsets, FixedScheme) {
  const auto offs = band_offsets(1000, 4, BandScheme::kFixed, 300);
  ASSERT_EQ(offs.size(), 5u);  // 300+300+300+100
  EXPECT_EQ(offs.front(), 0u);
  EXPECT_EQ(offs.back(), 1000u);
  EXPECT_EQ(offs[1], 300u);
}

TEST(BandOffsets, EvenSchemeOneBandPerNode) {
  const auto offs = band_offsets(1000, 4, BandScheme::kEven, 0);
  ASSERT_EQ(offs.size(), 5u);  // 4 bands of 250
  for (std::size_t b = 0; b + 1 < offs.size(); ++b) {
    EXPECT_EQ(offs[b + 1] - offs[b], 250u);
  }
}

TEST(BandOffsets, BalancedGivesEqualBandCountPerNode) {
  // m=1000, request 300-row bands over 4 nodes: ceil(ceil(1000/300)/4)=1
  // band per node -> heights near 250.
  const auto offs = band_offsets(1000, 4, BandScheme::kBalanced, 300);
  const std::size_t bands = offs.size() - 1;
  EXPECT_EQ(bands % 4, 0u);
  // All bands but the last are equal.
  for (std::size_t b = 1; b + 1 < bands; ++b) {
    EXPECT_EQ(offs[b + 1] - offs[b], offs[1] - offs[0]);
  }
}

TEST(BandOffsets, DegenerateInputs) {
  EXPECT_EQ(band_offsets(0, 4, BandScheme::kFixed, 100).size(), 1u);
  const auto one = band_offsets(5, 8, BandScheme::kFixed, 100);
  ASSERT_EQ(one.size(), 2u);  // single band of 5 rows
  EXPECT_EQ(one.back(), 5u);
}

TEST(ChunkOffsets, FixedArithmeticGeometric) {
  const auto fixed = chunk_offsets(100, 30, ChunkGrowth::kFixed);
  EXPECT_EQ(fixed, (std::vector<std::size_t>{0, 30, 60, 90, 100}));
  const auto arith = chunk_offsets(200, 20, ChunkGrowth::kArithmetic);
  EXPECT_EQ(arith, (std::vector<std::size_t>{0, 20, 60, 120, 200}));
  const auto geom = chunk_offsets(200, 20, ChunkGrowth::kGeometric);
  EXPECT_EQ(geom, (std::vector<std::size_t>{0, 20, 60, 140, 200}));
}

// Serial recount of the result matrix via the linear hit scan.
std::vector<std::vector<std::uint64_t>> reference_matrix(
    const Sequence& s, const Sequence& t, int threshold,
    const std::vector<std::size_t>& rows, std::size_t ipr) {
  const std::size_t groups = (t.size() + ipr - 1) / ipr;
  std::vector<std::vector<std::uint64_t>> ref(rows.size() - 1,
                                              std::vector<std::uint64_t>(groups));
  sw_scan_hits(s, t, ScoreScheme{}, threshold,
               [&](std::size_t i, std::size_t j, int) {
                 const auto band =
                     static_cast<std::size_t>(
                         std::upper_bound(rows.begin(), rows.end(), i - 1) -
                         rows.begin()) - 1;
                 ++ref[band][(j - 1) / ipr];
               });
  return ref;
}

struct PreCase {
  int nprocs;
  BandScheme scheme;
  std::size_t band_rows;
  std::size_t chunk;
  ChunkGrowth growth;
};

std::string pre_name(const testing::TestParamInfo<PreCase>& info) {
  const auto& p = info.param;
  return "p" + std::to_string(p.nprocs) + "_" +
         std::string(band_scheme_name(p.scheme)) + "_h" +
         std::to_string(p.band_rows) + "_c" + std::to_string(p.chunk) + "_" +
         chunk_growth_name(p.growth);
}

class PreprocessSweep : public testing::TestWithParam<PreCase> {};

TEST_P(PreprocessSweep, ResultMatrixMatchesSerialRecount) {
  const auto& prm = GetParam();
  HomologousPairSpec spec;
  spec.length_s = 500;
  spec.length_t = 600;
  spec.n_regions = 2;
  spec.region_len_mean = 120;
  spec.region_len_spread = 20;
  spec.seed = 91;
  const HomologousPair pair = make_homologous_pair(spec);

  PreProcessConfig cfg;
  cfg.nprocs = prm.nprocs;
  cfg.threshold = 20;
  cfg.band_scheme = prm.scheme;
  cfg.band_rows = prm.band_rows;
  cfg.chunk_cols = prm.chunk;
  cfg.chunk_growth = prm.growth;
  cfg.result_interleave = 64;

  const PreProcessResult res = preprocess_align(pair.s, pair.t, cfg);
  const auto ref = reference_matrix(pair.s, pair.t, cfg.threshold,
                                    res.row_offsets, res.result_interleave);
  EXPECT_EQ(res.result_matrix, ref);
  EXPECT_GT(res.total_hits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PreprocessSweep,
    testing::Values(
        PreCase{1, BandScheme::kFixed, 100, 64, ChunkGrowth::kFixed},
        PreCase{2, BandScheme::kFixed, 100, 64, ChunkGrowth::kFixed},
        PreCase{4, BandScheme::kFixed, 50, 32, ChunkGrowth::kFixed},
        PreCase{8, BandScheme::kFixed, 37, 41, ChunkGrowth::kFixed},
        PreCase{4, BandScheme::kEven, 0, 64, ChunkGrowth::kFixed},
        PreCase{4, BandScheme::kBalanced, 80, 64, ChunkGrowth::kFixed},
        PreCase{4, BandScheme::kFixed, 100, 16, ChunkGrowth::kArithmetic},
        PreCase{4, BandScheme::kFixed, 100, 16, ChunkGrowth::kGeometric},
        PreCase{3, BandScheme::kBalanced, 64, 25, ChunkGrowth::kGeometric}),
    pre_name);

TEST(PreprocessStore, SavedColumnsMatchFullMatrix) {
  Rng rng(92);
  const Sequence s = random_dna(300, rng, "s");
  const Sequence t = random_dna(300, rng, "t");

  MemoryColumnStore store;
  PreProcessConfig cfg;
  cfg.nprocs = 4;
  cfg.band_rows = 64;
  cfg.save_interleave = 50;
  cfg.io_mode = IoMode::kImmediate;
  cfg.store = &store;
  preprocess_align(s, t, cfg);

  const DpMatrix a = sw_fill(s, t, ScoreScheme{}, nullptr);
  const auto saved = store.snapshot();
  EXPECT_FALSE(saved.empty());
  // Every 50th column must be present, fragmented by band, and exact.
  for (const auto& [key, values] : saved) {
    const auto [col, row_begin] = key;
    EXPECT_EQ(col % 50, 0u);
    for (std::size_t k = 0; k < values.size(); ++k) {
      EXPECT_EQ(values[k], a.at(row_begin + k, col))
          << "col " << col << " row " << row_begin + k;
    }
  }
  // 300/50 = 6 saved columns, each split over ceil(300/64)=5 bands.
  EXPECT_EQ(store.fragments(), 6u * 5u);
  EXPECT_EQ(store.total_cells(), 6u * 300u);
}

TEST(PreprocessStore, FileStoreRoundTrip) {
  Rng rng(93);
  const Sequence s = random_dna(200, rng, "s");
  const Sequence t = random_dna(200, rng, "t");

  const std::string path = testing::TempDir() + "/gdsm_columns.bin";
  MemoryColumnStore reference;
  for (IoMode mode : {IoMode::kImmediate, IoMode::kDeferred}) {
    FileColumnStore file(path, mode);
    PreProcessConfig cfg;
    cfg.nprocs = 2;
    cfg.band_rows = 80;
    cfg.save_interleave = 64;
    cfg.io_mode = mode;
    cfg.store = &file;
    preprocess_align(s, t, cfg);
    file.flush();

    const auto loaded = FileColumnStore::load(path);
    EXPECT_FALSE(loaded.empty());

    MemoryColumnStore mem;
    cfg.store = &mem;
    preprocess_align(s, t, cfg);
    EXPECT_EQ(loaded, mem.snapshot()) << io_mode_name(mode);
  }
  std::remove(path.c_str());
}

TEST(Preprocess, NoStoreRequiredWithoutIo) {
  Rng rng(94);
  const Sequence s = random_dna(100, rng, "s");
  const Sequence t = random_dna(100, rng, "t");
  PreProcessConfig cfg;
  cfg.nprocs = 2;
  cfg.band_rows = 40;
  EXPECT_NO_THROW(preprocess_align(s, t, cfg));
  cfg.io_mode = IoMode::kImmediate;
  EXPECT_THROW(preprocess_align(s, t, cfg), std::invalid_argument);
}

TEST(Preprocess, HitCountsLocateThePlantedRegion) {
  // The scoreboard's whole purpose: the hottest result cell points at the
  // similar region.
  HomologousPairSpec spec;
  spec.length_s = 800;
  spec.length_t = 800;
  spec.n_regions = 1;
  spec.region_len_mean = 200;
  spec.region_len_spread = 10;
  spec.seed = 95;
  const HomologousPair pair = make_homologous_pair(spec);

  PreProcessConfig cfg;
  cfg.nprocs = 4;
  cfg.threshold = 30;
  cfg.band_rows = 100;
  cfg.result_interleave = 100;
  const PreProcessResult res = preprocess_align(pair.s, pair.t, cfg);

  std::size_t best_band = 0, best_group = 0;
  std::uint64_t best = 0;
  for (std::size_t b = 0; b < res.result_matrix.size(); ++b) {
    for (std::size_t g = 0; g < res.result_matrix[b].size(); ++g) {
      if (res.result_matrix[b][g] > best) {
        best = res.result_matrix[b][g];
        best_band = b;
        best_group = g;
      }
    }
  }
  ASSERT_GT(best, 0u);
  const auto& r = pair.regions[0];
  // The hottest cell must sit on the region's diagonal trail.  Note that
  // high scores DECAY slowly after the region ends (random DNA loses only
  // ~0.5 per column at this scoring), so the trail extends well past the
  // region in the down/right direction but never precedes it.
  const std::size_t band_lo = res.row_offsets[best_band];
  const std::size_t band_hi = res.row_offsets[best_band + 1];
  const std::size_t col_lo = best_group * cfg.result_interleave;
  const std::size_t col_hi = col_lo + cfg.result_interleave;
  const std::size_t trail = 2 * (r.s_end - r.s_begin);  // decay length bound
  EXPECT_GE(band_hi, r.s_begin);             // not before the region
  EXPECT_LE(band_lo, r.s_end + trail);       // not past the decayed trail
  EXPECT_GE(col_hi, r.t_begin);
  EXPECT_LE(col_lo, r.t_end + trail);
}

}  // namespace
}  // namespace gdsm::core
