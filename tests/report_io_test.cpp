// Round-trips a run report carrying the v2 fault/retry counter blocks
// through the writer and the JSON parser, asserting the gdsm.run_report
// schema-version bump and the presence of the new counters end to end.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/blocked.h"
#include "core/exact_parallel.h"
#include "core/report_io.h"
#include "obs/report.h"
#include "obs/snapshots.h"
#include "testing/oracle.h"

namespace gdsm {
namespace {

using obs::Json;

/// A small blocked run under a fault plan, so the counters are non-trivial.
core::StrategyResult faulted_blocked_run() {
  const testing::OracleCase c = [] {
    testing::OracleCase base;
    base.seed = 17;
    base.length_s = base.length_t = 300;
    base.n_regions = 2;
    base.nprocs = 2;
    return base;
  }();
  const HomologousPair pair = c.make_pair();
  core::BlockedConfig cfg;
  cfg.nprocs = c.nprocs;
  cfg.dsm.faults = testing::standard_fault_plans(17)[0];  // drop/retry
  cfg.dsm.retry.timeout_us = 2000;
  return core::blocked_align(pair.s, pair.t, cfg);
}

TEST(ReportIoTest, SchemaVersionIsBumpedToTen) {
  // v10 added the cascade funnel counters (db.cascade: seeds, chains,
  // extensions, dp_skipped_by_bound, dp_confirmed, index_mmap_hits) for the
  // seed-and-extend middle stage and the persisted mmap q-gram index;
  // docs/METRICS.md pins the layout to schema version 10, with v3-v9 files
  // still accepted by the tools.
  EXPECT_EQ(obs::kSchemaVersion, 10);
  EXPECT_EQ(obs::kSchemaVersionMin, 3);
}

TEST(ReportIoTest, NodeStatsJsonCarriesRetryCounters) {
  dsm::NodeStats ns;
  ns.request_timeouts = 3;
  ns.request_retries = 2;
  ns.stale_replies = 1;
  const Json j = obs::to_json(ns);
  EXPECT_EQ(j.at("request_timeouts").as_int(), 3);
  EXPECT_EQ(j.at("request_retries").as_int(), 2);
  EXPECT_EQ(j.at("stale_replies").as_int(), 1);
}

TEST(ReportIoTest, FaultCountersJsonIsComplete) {
  net::FaultCounters fc;
  fc.faulted_messages = 10;
  fc.drops = 1;
  fc.retransmits = 2;
  fc.delays = 3;
  fc.reorder_holds = 4;
  fc.duplicates_suppressed = 5;
  fc.partition_stalls = 6;
  const Json j = obs::to_json(fc);
  EXPECT_EQ(j.at("faulted_messages").as_int(), 10);
  EXPECT_EQ(j.at("drops").as_int(), 1);
  EXPECT_EQ(j.at("retransmits").as_int(), 2);
  EXPECT_EQ(j.at("delays").as_int(), 3);
  EXPECT_EQ(j.at("reorder_holds").as_int(), 4);
  EXPECT_EQ(j.at("duplicates_suppressed").as_int(), 5);
  EXPECT_EQ(j.at("partition_stalls").as_int(), 6);
}

TEST(ReportIoTest, StrategyResultJsonIncludesDsmFaultBlock) {
  const core::StrategyResult r = faulted_blocked_run();
  const Json j = core::strategy_result_json(r);
  ASSERT_TRUE(j.at("dsm").has("faults"));
  const Json& faults = j.at("dsm").at("faults");
  EXPECT_GT(faults.at("faulted_messages").as_int() + faults.at("delays").as_int() +
                faults.at("retransmits").as_int(),
            0)
      << "the drop/retry plan injected nothing";
}

TEST(ReportIoTest, ExactResultJsonIncludesFaultBlock) {
  core::ExactParallelResult r;
  r.faults.drops = 4;
  const Json j = core::exact_result_json(r);
  ASSERT_TRUE(j.has("faults"));
  EXPECT_EQ(j.at("faults").at("drops").as_int(), 4);
}

TEST(ReportIoTest, RunReportRoundTripsThroughDiskAtVersionTwo) {
  obs::RunReport report("report_io_test", "fault/retry counter round trip");
  report.set_param("seed", 17);
  report.metrics().set("cases", 1);
  const core::StrategyResult run = faulted_blocked_run();
  Json row = Json::object();
  row.set("strategy", "blocked");
  row.set("result", core::strategy_result_json(run));
  report.add_row("runs", std::move(row));

  const std::string path =
      ::testing::TempDir() + "/gdsm_report_io_test.json";
  ASSERT_TRUE(report.write_file(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const Json doc = Json::parse(buf.str());
  std::remove(path.c_str());

  EXPECT_EQ(doc.at("schema").as_string(), obs::kReportSchema);
  EXPECT_EQ(doc.at("schema_version").as_int(), obs::kSchemaVersion);
  // v4: every report auto-attaches the kernel section; this run had no
  // host_clock param, so only the deterministic counters appear.
  const Json& kernel = doc.at("sections").at("kernel");
  EXPECT_FALSE(kernel.at("backend").as_string().empty());
  EXPECT_TRUE(kernel.at("best").has("calls"));
  EXPECT_FALSE(kernel.at("best").has("seconds"));
  // v5: every report auto-attaches the comm section naming the data-plane
  // mode; the faulted blocked run above went through the batched default,
  // so the batch counters are live.
  const Json& comm = doc.at("sections").at("comm");
  EXPECT_FALSE(comm.at("mode").as_string().empty());
  EXPECT_TRUE(comm.has("round_trips_saved"));
  EXPECT_TRUE(comm.has("empty_diffs_suppressed"));
  const Json& parsed_run =
      doc.at("series").at("runs").items().at(0).at("result");
  // The v2 additions survive serialization: the fault block and the
  // per-node retry counters.
  ASSERT_TRUE(parsed_run.at("dsm").has("faults"));
  const Json& node0 = parsed_run.at("dsm").at("nodes").items().at(0);
  EXPECT_TRUE(node0.has("request_timeouts"));
  EXPECT_TRUE(node0.has("request_retries"));
  EXPECT_TRUE(node0.has("stale_replies"));
}

}  // namespace
}  // namespace gdsm
