// Section 5 checkpoint/re-process tests: saved columns + passage rows must
// allow bit-exact recomputation of any anchored subregion.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/preprocess.h"
#include "core/reprocess.h"
#include "sw/affine.h"
#include "sw/full_matrix.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm::core {
namespace {

struct Checkpoints {
  MemoryColumnStore columns;
  MemoryColumnStore rows;
  PreProcessResult run;
};

// Runs the pre-process strategy with both checkpoint stores enabled.
void run_with_checkpoints(const Sequence& s, const Sequence& t,
                          std::size_t band_rows, std::size_t save_ip,
                          Checkpoints& out, int procs = 4,
                          const ScoreScheme& scheme = {}) {
  PreProcessConfig cfg;
  cfg.nprocs = procs;
  cfg.threshold = 25;
  cfg.band_rows = band_rows;
  cfg.result_interleave = band_rows;
  cfg.save_interleave = save_ip;
  cfg.io_mode = IoMode::kImmediate;
  cfg.scheme = scheme;
  cfg.store = &out.columns;
  cfg.row_store = &out.rows;
  out.run = preprocess_align(s, t, cfg);
}

// Dense serial Gotoh H fill, (m+1) x (n+1), written straight from the
// recurrence — the affine analogue of sw_fill for cell-exact comparison.
std::vector<std::vector<int>> gotoh_h_matrix(const Sequence& s,
                                             const Sequence& t,
                                             const ScoreScheme& sc) {
  constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
  const std::size_t m = s.size();
  const std::size_t n = t.size();
  std::vector<std::vector<int>> h(m + 1, std::vector<int>(n + 1, 0));
  std::vector<std::vector<int>> e(m + 1, std::vector<int>(n + 1, kNegInf));
  std::vector<std::vector<int>> f(m + 1, std::vector<int>(n + 1, kNegInf));
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      e[i][j] = std::max(h[i - 1][j] + sc.gap_open + sc.gap,
                         e[i - 1][j] + sc.gap);
      f[i][j] = std::max(h[i][j - 1] + sc.gap_open + sc.gap,
                         f[i][j - 1] + sc.gap);
      const int diag = h[i - 1][j - 1] + sc.substitution(s[i - 1], t[j - 1]);
      h[i][j] = std::max({0, diag, e[i][j], f[i][j]});
    }
  }
  return h;
}

TEST(Reprocess, SubregionMatchesFullMatrixExactly) {
  Rng rng(941);
  const Sequence s = random_dna(400, rng, "s");
  const Sequence t = random_dna(400, rng, "t");
  Checkpoints cp;
  run_with_checkpoints(s, t, /*band_rows=*/100, /*save_ip=*/64, cp);

  const DpMatrix full = sw_fill(s, t, ScoreScheme{}, nullptr);
  const Subregion region{150, 320, 200, 380};
  const ReprocessResult res = reprocess_region(
      s, t, cp.columns.snapshot(), cp.rows.snapshot(), region, /*min_score=*/20);

  // Snapped to the nearest checkpoints at or before the request.
  EXPECT_LE(res.computed.row_lo, region.row_lo);
  EXPECT_LE(res.computed.col_lo, region.col_lo);
  EXPECT_EQ((res.computed.row_lo - 1) % 100, 0u);  // a band bottom
  EXPECT_EQ((res.computed.col_lo - 1) % 64, 0u);   // a saved column

  for (std::size_t i = res.computed.row_lo; i <= res.computed.row_hi; ++i) {
    for (std::size_t j = res.computed.col_lo; j <= res.computed.col_hi; ++j) {
      ASSERT_EQ(res.at(i, j), full.at(i, j)) << "cell " << i << "," << j;
    }
  }
}

TEST(Reprocess, RegionTouchingOriginNeedsNoCheckpoints) {
  Rng rng(942);
  const Sequence s = random_dna(120, rng, "s");
  const Sequence t = random_dna(120, rng, "t");
  const DpMatrix full = sw_fill(s, t, ScoreScheme{}, nullptr);
  const ReprocessResult res =
      reprocess_region(s, t, {}, {}, Subregion{1, 120, 1, 120}, 10);
  for (std::size_t i = 1; i <= 120; ++i) {
    for (std::size_t j = 1; j <= 120; ++j) {
      ASSERT_EQ(res.at(i, j), full.at(i, j));
    }
  }
}

TEST(Reprocess, RecoversPlantedAlignmentFromHotRegion) {
  HomologousPairSpec spec;
  spec.length_s = 900;
  spec.length_t = 900;
  spec.n_regions = 1;
  spec.region_len_mean = 150;
  spec.region_len_spread = 10;
  spec.seed = 943;
  const HomologousPair pair = make_homologous_pair(spec);
  Checkpoints cp;
  run_with_checkpoints(pair.s, pair.t, /*band_rows=*/128, /*save_ip=*/128, cp);

  // Find the hottest result cell and re-process a padded region around it.
  std::size_t hot_band = 0, hot_group = 0;
  std::uint64_t hot = 0;
  for (std::size_t b = 0; b < cp.run.result_matrix.size(); ++b) {
    for (std::size_t g = 0; g < cp.run.result_matrix[b].size(); ++g) {
      if (cp.run.result_matrix[b][g] > hot) {
        hot = cp.run.result_matrix[b][g];
        hot_band = b;
        hot_group = g;
      }
    }
  }
  ASSERT_GT(hot, 0u);
  const std::size_t pad = 384;
  Subregion region;
  region.row_lo = cp.run.row_offsets[hot_band] > pad
                      ? cp.run.row_offsets[hot_band] - pad + 1
                      : 1;
  region.row_hi = std::min(pair.s.size(), cp.run.row_offsets[hot_band + 1] + pad);
  const std::size_t col_group_lo = hot_group * cp.run.result_interleave;
  region.col_lo = col_group_lo > pad ? col_group_lo - pad + 1 : 1;
  region.col_hi = std::min(pair.t.size(),
                           (hot_group + 1) * cp.run.result_interleave + pad);

  const ReprocessResult res = reprocess_region(
      pair.s, pair.t, cp.columns.snapshot(), cp.rows.snapshot(), region, 60);
  ASSERT_FALSE(res.alignments.empty());
  const Alignment& best = res.alignments[0];
  // The recovered alignment must match the planted region and carry a score
  // consistent with its own path.
  EXPECT_EQ(best.compute_score(pair.s, pair.t, ScoreScheme{}), best.score);
  const PlantedRegion& r = pair.regions[0];
  EXPECT_LT(best.s_begin, r.s_end);
  EXPECT_GT(best.s_end(), r.s_begin);
  EXPECT_GT(best.score, 100);
}

// Regression: affine schemes used to be rejected outright by the column
// checkpoint path.  Saved columns now carry the Gotoh F state (and passage
// rows the E state), so any anchored subregion recomputes bit-exactly.
TEST(Reprocess, AffineSubregionMatchesGotohExactly) {
  ScoreScheme scheme;
  scheme.match = 2;
  scheme.mismatch = -1;
  scheme.gap = -1;
  scheme.gap_open = -2;
  Rng rng(947);
  const Sequence s = random_dna(400, rng, "s");
  const Sequence t = random_dna(400, rng, "t");
  Checkpoints cp;
  run_with_checkpoints(s, t, /*band_rows=*/100, /*save_ip=*/64, cp,
                       /*procs=*/4, scheme);

  const auto full = gotoh_h_matrix(s, t, scheme);
  const Subregion region{150, 320, 200, 380};
  const ReprocessResult res =
      reprocess_region(s, t, cp.columns.snapshot(), cp.rows.snapshot(), region,
                       /*min_score=*/20, scheme);
  for (std::size_t i = res.computed.row_lo; i <= res.computed.row_hi; ++i) {
    for (std::size_t j = res.computed.col_lo; j <= res.computed.col_hi; ++j) {
      ASSERT_EQ(res.at(i, j), full[i][j]) << "cell " << i << "," << j;
    }
  }
}

TEST(Reprocess, AffineRegionTouchingOriginNeedsNoCheckpoints) {
  ScoreScheme scheme;
  scheme.gap = -1;
  scheme.gap_open = -3;
  Rng rng(948);
  const Sequence s = random_dna(120, rng, "s");
  const Sequence t = random_dna(120, rng, "t");
  const auto full = gotoh_h_matrix(s, t, scheme);
  const ReprocessResult res =
      reprocess_region(s, t, {}, {}, Subregion{1, 120, 1, 120}, 10, scheme);
  for (std::size_t i = 1; i <= 120; ++i) {
    for (std::size_t j = 1; j <= 120; ++j) {
      ASSERT_EQ(res.at(i, j), full[i][j]) << "cell " << i << "," << j;
    }
  }
}

TEST(Reprocess, AffineRecoversPlantedAlignment) {
  // The scheme must sit in SW's local (logarithmic) phase — with cheap gaps
  // the optimal path drifts through the random flanks instead of staying on
  // the planted homology.
  ScoreScheme scheme;
  scheme.match = 1;
  scheme.mismatch = -2;
  scheme.gap = -2;
  scheme.gap_open = -2;
  HomologousPairSpec spec;
  spec.length_s = 700;
  spec.length_t = 700;
  spec.n_regions = 1;
  spec.region_len_mean = 140;
  spec.region_len_spread = 10;
  spec.seed = 949;
  const HomologousPair pair = make_homologous_pair(spec);
  Checkpoints cp;
  run_with_checkpoints(pair.s, pair.t, /*band_rows=*/128, /*save_ip=*/96, cp,
                       /*procs=*/4, scheme);

  const PlantedRegion& r = pair.regions[0];
  const std::size_t pad = 256;
  Subregion region;
  region.row_lo = r.s_begin > pad ? r.s_begin - pad + 1 : 1;
  region.row_hi = std::min(pair.s.size(), r.s_end + pad);
  region.col_lo = r.t_begin > pad ? r.t_begin - pad + 1 : 1;
  region.col_hi = std::min(pair.t.size(), r.t_end + pad);

  const ReprocessResult res =
      reprocess_region(pair.s, pair.t, cp.columns.snapshot(),
                       cp.rows.snapshot(), region, 50, scheme);
  ASSERT_FALSE(res.alignments.empty());
  const Alignment& best = res.alignments[0];
  // The three-state traceback must emit a path whose affine score equals the
  // reported cell score, and the path must overlap the planted homology.
  EXPECT_EQ(affine_alignment_score(best, pair.s, pair.t, to_affine(scheme)),
            best.score);
  EXPECT_LT(best.s_begin, r.s_end);
  EXPECT_GT(best.s_end(), r.s_begin);
  EXPECT_GT(best.score, 80);
}

TEST(Reprocess, MissingCoverageThrows) {
  Rng rng(944);
  const Sequence s = random_dna(200, rng, "s");
  const Sequence t = random_dna(200, rng, "t");
  // A column checkpoint that covers only rows 1..50 cannot anchor a region
  // reaching row 150.
  SavedFragments cols;
  cols[{100u, 1u}] = std::vector<std::int32_t>(50, 0);
  EXPECT_THROW(reprocess_region(s, t, cols, {}, Subregion{120, 150, 120, 180},
                                10),
               std::runtime_error);
}

TEST(Reprocess, RejectsBadRegions) {
  Rng rng(945);
  const Sequence s = random_dna(50, rng, "s");
  EXPECT_THROW(reprocess_region(s, s, {}, {}, Subregion{0, 10, 1, 10}, 5),
               std::invalid_argument);
  EXPECT_THROW(reprocess_region(s, s, {}, {}, Subregion{10, 5, 1, 10}, 5),
               std::invalid_argument);
  EXPECT_THROW(reprocess_region(s, s, {}, {}, Subregion{1, 10, 1, 100}, 5),
               std::invalid_argument);
}

TEST(Reprocess, FileStoreCheckpointsRoundTrip) {
  Rng rng(946);
  const Sequence s = random_dna(300, rng, "s");
  const Sequence t = random_dna(300, rng, "t");
  const std::string cpath = testing::TempDir() + "/gdsm_cols.bin";
  const std::string rpath = testing::TempDir() + "/gdsm_rows.bin";
  {
    FileColumnStore cols(cpath, IoMode::kImmediate);
    FileColumnStore rows(rpath, IoMode::kImmediate);
    PreProcessConfig cfg;
    cfg.nprocs = 2;
    cfg.band_rows = 75;
    cfg.save_interleave = 60;
    cfg.io_mode = IoMode::kImmediate;
    cfg.store = &cols;
    cfg.row_store = &rows;
    preprocess_align(s, t, cfg);
    cols.flush();
    rows.flush();
  }
  const DpMatrix full = sw_fill(s, t, ScoreScheme{}, nullptr);
  const ReprocessResult res =
      reprocess_region(s, t, FileColumnStore::load(cpath),
                       FileColumnStore::load(rpath), Subregion{100, 280, 100, 290},
                       10);
  for (std::size_t i = res.computed.row_lo; i <= res.computed.row_hi; ++i) {
    for (std::size_t j = res.computed.col_lo; j <= res.computed.col_hi; ++j) {
      ASSERT_EQ(res.at(i, j), full.at(i, j));
    }
  }
  std::remove(cpath.c_str());
  std::remove(rpath.c_str());
}

}  // namespace
}  // namespace gdsm::core
