// Affine-gap (Gotoh) alignment tests.
#include <gtest/gtest.h>

#include "sw/affine.h"
#include "sw/full_matrix.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm {
namespace {

TEST(Affine, DegeneratesToLinearWhenOpenIsZero) {
  Rng rng(901);
  for (int round = 0; round < 8; ++round) {
    const Sequence s = random_dna(60 + rng.below(60), rng, "s");
    const Sequence t = random_dna(60 + rng.below(60), rng, "t");
    const AffineScheme affine{1, -1, 0, -2};
    const ScoreScheme linear{1, -1, -2};
    EXPECT_EQ(smith_waterman_affine(s, t, affine).score,
              smith_waterman(s, t, linear).score);
    EXPECT_EQ(needleman_wunsch_affine(s, t, affine).score,
              needleman_wunsch(s, t, linear).score);
  }
}

TEST(Affine, LinearSpaceMatchesFullMatrix) {
  Rng rng(902);
  for (int round = 0; round < 8; ++round) {
    const Sequence s = random_dna(50 + rng.below(100), rng, "s");
    const Sequence t = random_dna(50 + rng.below(100), rng, "t");
    const AffineScheme scheme{2, -2, -4, -1};
    const Alignment full = smith_waterman_affine(s, t, scheme);
    const BestLocal lin = sw_best_score_affine_linear(s, t, scheme);
    EXPECT_EQ(lin.score, full.score);
  }
}

TEST(Affine, TracebackScoreConsistent) {
  Rng rng(903);
  HomologousPairSpec spec;
  spec.length_s = 400;
  spec.length_t = 400;
  spec.n_regions = 1;
  spec.region_len_mean = 120;
  spec.region_len_spread = 20;
  spec.indel_rate = 0.05;  // gappy homology: affine structure matters
  spec.seed = 903;
  const HomologousPair pair = make_homologous_pair(spec);
  const AffineScheme scheme{1, -1, -3, -1};
  const Alignment local = smith_waterman_affine(pair.s, pair.t, scheme);
  EXPECT_GT(local.score, 0);
  EXPECT_EQ(affine_alignment_score(local, pair.s, pair.t, scheme), local.score);

  const Alignment global = needleman_wunsch_affine(pair.s, pair.t, scheme);
  EXPECT_EQ(affine_alignment_score(global, pair.s, pair.t, scheme),
            global.score);
  EXPECT_EQ(global.s_length(), pair.s.size());
  EXPECT_EQ(global.t_length(), pair.t.size());
}

TEST(Affine, OneGapCheaperThanTwoUnderAffine) {
  // s aligns to t with either one 2-gap or two 1-gaps; affine must prefer
  // the single opening.  s = ACGTACGT, t = ACGGGTACGT (GG inserted).
  const Sequence s("s", "ACGTTTACGT");
  const Sequence t("t", "ACGTTTAAGGCGT");  // needs a 3-length gap region
  const AffineScheme scheme{1, -2, -3, -1};
  const Alignment al = needleman_wunsch_affine(s, t, scheme);
  EXPECT_EQ(affine_alignment_score(al, s, t, scheme), al.score);
  // Count gap openings: maximal runs of Up/Left.
  int openings = 0;
  Op prev = Op::Diag;
  bool first = true;
  for (Op op : al.ops) {
    if (op != Op::Diag && (first || prev != op)) ++openings;
    prev = op;
    first = false;
  }
  EXPECT_LE(openings, 1) << "affine gaps should coalesce into one run";
}

TEST(Affine, GapRunsCoalesceComparedToLinear) {
  // Under a strong opening penalty the number of gap runs must not exceed
  // the linear-gap alignment's count.
  Rng rng(905);
  HomologousPairSpec spec;
  spec.length_s = 300;
  spec.length_t = 300;
  spec.n_regions = 1;
  spec.region_len_mean = 150;
  spec.region_len_spread = 10;
  spec.indel_rate = 0.08;
  spec.seed = 905;
  const HomologousPair pair = make_homologous_pair(spec);

  auto count_runs = [](const Alignment& al) {
    int runs = 0;
    Op prev = Op::Diag;
    bool first = true;
    for (Op op : al.ops) {
      if (op != Op::Diag && (first || prev != op)) ++runs;
      prev = op;
      first = false;
    }
    return runs;
  };
  const Alignment linear = smith_waterman(pair.s, pair.t, ScoreScheme{1, -1, -2});
  const Alignment affine =
      smith_waterman_affine(pair.s, pair.t, AffineScheme{1, -1, -6, -1});
  EXPECT_LE(count_runs(affine), count_runs(linear) + 1);
}

TEST(Affine, ScoreSymmetricUnderSwap) {
  Rng rng(906);
  const Sequence s = random_dna(120, rng, "s");
  const Sequence t = random_dna(140, rng, "t");
  const AffineScheme scheme{1, -1, -4, -1};
  EXPECT_EQ(sw_best_score_affine_linear(s, t, scheme).score,
            sw_best_score_affine_linear(t, s, scheme).score);
}

TEST(Affine, EmptyInputs) {
  const Sequence e("e", "");
  const Sequence s("s", "ACGT");
  const AffineScheme scheme;
  EXPECT_EQ(smith_waterman_affine(e, s, scheme).score, 0);
  EXPECT_EQ(sw_best_score_affine_linear(s, e, scheme).score, 0);
  // Global: one gap of length 4 = open + 4 * extend.
  EXPECT_EQ(needleman_wunsch_affine(e, s, scheme).score,
            scheme.gap_open + 4 * scheme.gap_extend);
}

TEST(Affine, IdenticalStrings) {
  const Sequence s("s", "ACGTACGTACGT");
  const AffineScheme scheme;
  const Alignment al = smith_waterman_affine(s, s, scheme);
  EXPECT_EQ(al.score, 12);
  for (Op op : al.ops) EXPECT_EQ(op, Op::Diag);
}

}  // namespace
}  // namespace gdsm
