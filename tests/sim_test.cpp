// Discrete-event engine and strategy-simulator tests: determinism, category
// accounting, and the qualitative shapes the paper's evaluation reports.
#include <gtest/gtest.h>

#include "core/sim_strategies.h"
#include "sim/engine.h"

namespace gdsm {
namespace {

using core::SimReport;
using sim::Cat;
using sim::ClusterSim;
using sim::CostModel;

TEST(Engine, BusyAdvancesClockAndAccounts) {
  ClusterSim cs(2, CostModel{});
  cs.busy(0, 1.5, Cat::kCompute);
  cs.busy(0, 0.5, Cat::kIo);
  EXPECT_DOUBLE_EQ(cs.now(0), 2.0);
  EXPECT_DOUBLE_EQ(cs.breakdown(0)[Cat::kCompute], 1.5);
  EXPECT_DOUBLE_EQ(cs.breakdown(0)[Cat::kIo], 0.5);
  EXPECT_DOUBLE_EQ(cs.now(1), 0.0);
  EXPECT_DOUBLE_EQ(cs.makespan(), 2.0);
}

TEST(Engine, WaitUntilAttributesIdleTime) {
  ClusterSim cs(1, CostModel{});
  cs.wait_until(0, 3.0, Cat::kBarrier);
  cs.wait_until(0, 1.0, Cat::kBarrier);  // already past: no-op
  EXPECT_DOUBLE_EQ(cs.now(0), 3.0);
  EXPECT_DOUBLE_EQ(cs.breakdown(0)[Cat::kBarrier], 3.0);
}

TEST(Engine, BreakdownSumsToClock) {
  CostModel cm;
  ClusterSim cs(3, cm);
  cs.busy(1, 2.0, Cat::kCompute);
  cs.rpc(0, 1, 64, 4096, Cat::kComm);
  cs.rpc(2, 1, 8, 16, Cat::kLockCv, /*extra_ready=*/1.0);
  for (int p = 0; p < 3; ++p) {
    EXPECT_NEAR(cs.breakdown(p).total(), cs.now(p), 1e-12) << "node " << p;
  }
}

TEST(Engine, ServerChargesHandlerCost) {
  CostModel cm;
  ClusterSim cs(3, cm);
  // A round trip costs at least two latencies plus handler dispatch.
  cs.rpc(1, 0, 8, 8, Cat::kLockCv);
  EXPECT_GT(cs.now(1), 2 * cm.msg_latency_s + cm.proto_op_s);
}

TEST(Engine, SelfMessagesSkipTheWire) {
  CostModel cm;
  ClusterSim a(2, cm), b(2, cm);
  a.rpc(0, 0, 8, 8, Cat::kLockCv);
  b.rpc(0, 1, 8, 8, Cat::kLockCv);
  EXPECT_LT(a.now(0), b.now(0));
}

TEST(SimWavefront, Deterministic) {
  const SimReport a = core::sim_wavefront(5000, 5000, 4);
  const SimReport b = core::sim_wavefront(5000, 5000, 4);
  EXPECT_DOUBLE_EQ(a.total_s, b.total_s);
  EXPECT_DOUBLE_EQ(a.core_s, b.core_s);
}

TEST(SimWavefront, SerialMatchesClosedForm) {
  CostModel cm;
  const std::size_t n = 50000;
  const SimReport rep = core::sim_wavefront(n, n, 1, cm);
  const double cell = cm.effective_cell(cm.cell_s_heuristic,
                                        2 * n * cm.heuristic_cell_bytes);
  EXPECT_NEAR(rep.total_s, double(n) * double(n) * cell, 1e-6);
}

TEST(SimWavefront, LargeInputsSpeedUpSmallOnesDoNot) {
  // The paper's central Figure 9 shape: 15 kBP speeds up poorly; 400 kBP
  // reaches ~4.5x on 8 processors.
  const SimReport s15 = core::sim_wavefront(15000, 15000, 1);
  const SimReport p15 = core::sim_wavefront(15000, 15000, 8);
  const double sp15 = s15.total_s / p15.total_s;
  EXPECT_GT(sp15, 1.0);
  EXPECT_LT(sp15, 3.5);

  const SimReport s400 = core::sim_wavefront(400000, 400000, 1);
  const SimReport p400 = core::sim_wavefront(400000, 400000, 8);
  const double sp400 = s400.total_s / p400.total_s;
  EXPECT_GT(sp400, 3.5);
  EXPECT_LT(sp400, 6.5);
  EXPECT_GT(sp400, sp15);
}

TEST(SimWavefront, ComputationShareGrowsWithSize) {
  // Fig. 10: the relative time spent computing grows with sequence size.
  auto compute_share = [](const SimReport& r) {
    const double total = r.average.total();
    return r.average[Cat::kCompute] / total;
  };
  const SimReport small = core::sim_wavefront(15000, 15000, 8);
  const SimReport big = core::sim_wavefront(150000, 150000, 8);
  EXPECT_GT(compute_share(big), compute_share(small));
}

TEST(SimBlocked, BeatsNonBlockedAtFiftyK) {
  // Fig. 13: with 8 processors on 50 kBP, blocking wins by a large factor.
  const SimReport noblock = core::sim_wavefront(50000, 50000, 8);
  const SimReport block = core::sim_blocked(50000, 50000, 8, 40, 40);
  EXPECT_LT(block.total_s, noblock.total_s / 2.0);
}

TEST(SimBlocked, OneByOneMultiplierIsWorst) {
  // Table 3: the 1x1 blocking multiplier is by far the worst.
  const std::size_t n = 50000;
  const SimReport m11 = core::sim_blocked(n, n, 8, 8, 8);
  const SimReport m33 = core::sim_blocked(n, n, 8, 24, 24);
  const SimReport m55 = core::sim_blocked(n, n, 8, 40, 40);
  EXPECT_GT(m11.total_s, m33.total_s);
  EXPECT_GT(m33.total_s, m55.total_s * 0.99);
}

TEST(SimBlocked, GoodSpeedupAtFifteenK) {
  // Table 4: 15 kBP with 40x40 reaches very good speed-ups (paper: 7.29).
  const SimReport serial = core::sim_blocked(15000, 15000, 1, 40, 40);
  const SimReport p8 = core::sim_blocked(15000, 15000, 8, 40, 40);
  const double sp = serial.total_s / p8.total_s;
  EXPECT_GT(sp, 5.0);
  EXPECT_LE(sp, 8.0);
}

TEST(SimBlockedMp, LeanerThanDsmAndDeterministic) {
  // The MP twin ships one eager message per boundary instead of the cv +
  // page-fault protocol: it must never be slower, and both are exact.
  const SimReport a = core::sim_blocked_mp(50'000, 50'000, 8, 40, 40);
  const SimReport b = core::sim_blocked_mp(50'000, 50'000, 8, 40, 40);
  EXPECT_DOUBLE_EQ(a.total_s, b.total_s);
  const SimReport dsm = core::sim_blocked(50'000, 50'000, 8, 40, 40);
  EXPECT_LE(a.total_s, dsm.total_s);
  // Still dominated by the same compute: within ~10% of the DSM run.
  EXPECT_GT(a.total_s, dsm.total_s * 0.90);
}

TEST(SimBlockedMp, SerialMatchesDsmSerial) {
  const SimReport mp = core::sim_blocked_mp(15'000, 15'000, 1, 40, 40);
  const SimReport dsm = core::sim_blocked(15'000, 15'000, 1, 40, 40);
  EXPECT_DOUBLE_EQ(mp.total_s, dsm.total_s);
}

TEST(SimPreprocess, SpeedupNearThreeQuartersLinear) {
  // Fig. 18: speed-ups roughly 75-80% of linear.
  core::SimPreprocessOptions opt;
  opt.band_rows = 1024;
  const SimReport serial = core::sim_preprocess(40960, 40960, 1, opt);
  const SimReport p8 = core::sim_preprocess(40960, 40960, 8, opt);
  const double sp = serial.core_s / p8.core_s;
  EXPECT_GT(sp, 5.0);
  EXPECT_LT(sp, 8.0);
}

TEST(SimPreprocess, EvenBandsHurtSequentially) {
  // Fig. 19: "even" blocking is ~20% worse than fixed 1K bands on one node
  // for large sequences (the band is the whole sequence: L2 spill).
  core::SimPreprocessOptions fixed;
  fixed.band_scheme = core::BandScheme::kFixed;
  fixed.band_rows = 1024;
  core::SimPreprocessOptions even;
  even.band_scheme = core::BandScheme::kEven;
  const SimReport f = core::sim_preprocess(81920, 81920, 1, fixed);
  const SimReport e = core::sim_preprocess(81920, 81920, 1, even);
  EXPECT_GT(e.core_s, f.core_s * 1.1);
}

TEST(SimPreprocess, IoModesBarelyMatter) {
  // Fig. 20: saving columns at the 1K interleave has little effect, and
  // deferred is no better than immediate.
  core::SimPreprocessOptions none;
  none.band_rows = 1024;
  core::SimPreprocessOptions immediate = none;
  immediate.save_interleave = 1024;
  immediate.io_mode = core::IoMode::kImmediate;
  core::SimPreprocessOptions deferred = immediate;
  deferred.io_mode = core::IoMode::kDeferred;

  const SimReport r_none = core::sim_preprocess(40960, 40960, 4, none);
  const SimReport r_imm = core::sim_preprocess(40960, 40960, 4, immediate);
  const SimReport r_def = core::sim_preprocess(40960, 40960, 4, deferred);
  EXPECT_GE(r_imm.core_s, r_none.core_s);
  EXPECT_LT(r_imm.core_s, r_none.core_s * 1.10);
  EXPECT_LE(r_def.core_s, r_imm.core_s * 1.01);
}

TEST(SimPhase2, SpeedupShapeAcrossQueueSizes) {
  // Fig. 15: ~5.3x at 100 pairs and >7x around 1000 pairs on 8 processors.
  const auto pairs100 = core::phase2_pair_sizes(100);
  const auto pairs1000 = core::phase2_pair_sizes(1000);
  const SimReport s100 = core::sim_phase2(pairs100, 1);
  const SimReport p100 = core::sim_phase2(pairs100, 8);
  const SimReport s1000 = core::sim_phase2(pairs1000, 1);
  const SimReport p1000 = core::sim_phase2(pairs1000, 8);
  // Fig. 15 reports the phase-2 processing speed-up (the DSM environment
  // is already up after phase 1), so core time is the right basis.
  const double sp100 = s100.core_s / p100.core_s;
  const double sp1000 = s1000.core_s / p1000.core_s;
  EXPECT_GT(sp100, 3.0);
  EXPECT_LT(sp100, 7.0);
  EXPECT_GT(sp1000, sp100);
  EXPECT_LT(sp1000, 8.0);
}

TEST(SimPhase2, PairSizesDeterministicAroundMean) {
  const auto a = core::phase2_pair_sizes(500, 253, 7);
  const auto b = core::phase2_pair_sizes(500, 253, 7);
  EXPECT_EQ(a, b);
  double mean = 0;
  for (const auto& [x, y] : a) mean += double(x + y) / 2.0;
  mean /= 500;
  EXPECT_NEAR(mean, 253.0, 40.0);
}

}  // namespace
}  // namespace gdsm
