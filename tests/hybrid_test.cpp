// Tests of the Section-7 future-work experiment: hybrid MP/DSM federation
// of (possibly heterogeneous) sub-clusters.
#include <gtest/gtest.h>

#include <array>

#include "core/sim_hybrid.h"
#include "core/sim_strategies.h"

namespace gdsm::core {
namespace {

TEST(HybridOwners, RoundRobinByDefault) {
  HybridSpec spec;
  spec.clusters = 2;
  spec.nodes_per_cluster = 2;
  const auto owners = hybrid_band_owners(8, spec);
  EXPECT_EQ(owners, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(HybridOwners, WeightedGivesFastNodesMoreBands) {
  HybridSpec spec;
  spec.clusters = 2;
  spec.nodes_per_cluster = 2;
  spec.speeds = {1.0, 2.0};  // cluster 1 is twice as fast
  spec.weighted_bands = true;
  const auto owners = hybrid_band_owners(60, spec);
  std::array<int, 4> count{};
  for (int g : owners) ++count[static_cast<std::size_t>(g)];
  // Nodes 2 and 3 (cluster 1) should get ~twice the bands of nodes 0 and 1.
  EXPECT_GT(count[2], count[0] * 3 / 2);
  EXPECT_GT(count[3], count[1] * 3 / 2);
  EXPECT_EQ(count[0] + count[1] + count[2] + count[3], 60);
}

TEST(Hybrid, Deterministic) {
  HybridSpec spec;
  const auto a = sim_hybrid_blocked(50'000, 50'000, spec);
  const auto b = sim_hybrid_blocked(50'000, 50'000, spec);
  EXPECT_DOUBLE_EQ(a.total_s, b.total_s);
}

TEST(Hybrid, SingleClusterTracksPlainBlocked) {
  // One sub-cluster = the plain blocked strategy (same decomposition).
  HybridSpec spec;
  spec.clusters = 1;
  spec.nodes_per_cluster = 8;
  const auto hybrid = sim_hybrid_blocked(50'000, 50'000, spec);
  const auto plain = sim_blocked(50'000, 50'000, 8, 40, 40);
  EXPECT_NEAR(hybrid.total_s, plain.total_s, plain.total_s * 0.02);
}

TEST(Hybrid, TwoClustersBeatOne) {
  // Doubling the nodes across a second cluster must help at 400K, even
  // paying the inter-cluster link.
  HybridSpec one;
  one.clusters = 1;
  one.nodes_per_cluster = 8;
  HybridSpec two;
  two.clusters = 2;
  two.nodes_per_cluster = 8;
  const auto t1 = sim_hybrid_blocked(400'000, 400'000, one);
  const auto t2 = sim_hybrid_blocked(400'000, 400'000, two);
  EXPECT_LT(t2.total_s, t1.total_s * 0.65);
}

TEST(Hybrid, SlowerInterconnectCostsTime) {
  HybridSpec fast;
  fast.inter_latency_s = 1e-3;
  HybridSpec slow;
  slow.inter_latency_s = 50e-3;
  const auto tf = sim_hybrid_blocked(100'000, 100'000, fast);
  const auto ts = sim_hybrid_blocked(100'000, 100'000, slow);
  EXPECT_GT(ts.total_s, tf.total_s);
}

TEST(Hybrid, WeightedBandsFixHeterogeneousImbalance) {
  // Cluster 1 is 2x faster.  Round-robin leaves the fast nodes waiting on
  // the slow ones; weighted assignment must recover most of the loss.
  HybridSpec base;
  base.clusters = 2;
  base.nodes_per_cluster = 4;
  base.speeds = {1.0, 2.0};

  HybridSpec weighted = base;
  weighted.weighted_bands = true;

  const auto rr = sim_hybrid_blocked(200'000, 200'000, base);
  const auto wt = sim_hybrid_blocked(200'000, 200'000, weighted);
  EXPECT_LT(wt.total_s, rr.total_s * 0.90);
}

TEST(Hybrid, ValidatesSpeedsSize) {
  HybridSpec spec;
  spec.clusters = 2;
  spec.speeds = {1.0};  // wrong size
  EXPECT_THROW(sim_hybrid_blocked(10'000, 10'000, spec), std::invalid_argument);
}

}  // namespace
}  // namespace gdsm::core
