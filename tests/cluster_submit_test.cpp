// Persistent-cluster engine tests: submit/await job tickets, per-job stats,
// subject residency (host_write + retain_range), and — the regression the
// alignment service depends on — a failed job NOT poisoning the node pool.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "dsm/cluster.h"

namespace gdsm::dsm {
namespace {

/// Per-node result slots read back through node 0 — under the process
/// backend nodes 1..n-1 are forked children whose writes to captured host
/// variables are invisible here, so programs publish through shared memory.
std::vector<int> read_back(Cluster& cluster, GlobalAddr base, std::size_t n) {
  std::vector<int> out(n, 0);
  cluster.run([&](Node& node) {
    if (node.id() == 0) {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = node.read<int>(base + i * sizeof(int));
      }
    }
  });
  return out;
}

TEST(ClusterSubmit, AwaitReturnsThatJobsStats) {
  Cluster cluster(3);
  const GlobalAddr a = cluster.alloc(64, /*home=*/0);
  const Cluster::Ticket t1 = cluster.submit([&](Node& node) {
    if (node.id() == 0) node.write<int>(a, 7);
    node.barrier();
  });
  const Cluster::Ticket t2 = cluster.submit([](Node& node) { node.barrier(); });
  const DsmStats s1 = cluster.await(t1);
  const DsmStats s2 = cluster.await(t2);
  ASSERT_EQ(s1.node.size(), 3u);
  ASSERT_EQ(s2.node.size(), 3u);
  // Each job sees only its own activity: both barriered once per node.
  EXPECT_EQ(s1.total_node().barriers, 3u);
  EXPECT_EQ(s2.total_node().barriers, 3u);
  EXPECT_EQ(s2.total_node().write_faults, 0u);
}

TEST(ClusterSubmit, JobsAreSerializedInSubmissionOrder) {
  Cluster cluster(2);
  std::atomic<int> order{0};
  std::vector<int> first_seen(3, -1);
  std::vector<Cluster::Ticket> tickets;
  for (int j = 0; j < 3; ++j) {
    tickets.push_back(cluster.submit([&, j](Node& node) {
      node.barrier();
      if (node.id() == 0) first_seen[static_cast<std::size_t>(j)] = order++;
    }));
  }
  for (const auto& t : tickets) cluster.await(t);
  EXPECT_EQ(first_seen, (std::vector<int>{0, 1, 2}));
}

TEST(ClusterSubmit, RunIsSubmitPlusAwait) {
  Cluster cluster(2);
  const GlobalAddr res = cluster.alloc(2 * sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    node.write<int>(res + node.id() * sizeof(int), 1);
    node.barrier();
  });
  const std::vector<int> hits = read_back(cluster, res, 2);
  EXPECT_EQ(hits, (std::vector<int>{1, 1}));
}

TEST(ClusterSubmit, FailedJobDoesNotPoisonThePool) {
  Cluster cluster(4);
  EXPECT_THROW(
      cluster.run([](Node& node) {
        if (node.id() == 2) throw std::runtime_error("boom on 2");
      }),
      std::runtime_error);
  // The pool must come back: the same nodes run the next job to completion,
  // including full protocol traffic (writes, barrier, remote reads).
  const GlobalAddr a = cluster.alloc(4 * sizeof(int), /*home=*/1);
  const GlobalAddr res = cluster.alloc(4 * sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    if (node.id() == 1) {
      for (int i = 0; i < 4; ++i) {
        node.write<int>(a + i * sizeof(int), 40 + i);
      }
    }
    node.barrier();
    node.write<int>(res + node.id() * sizeof(int),
                    node.read<int>(a + node.id() * sizeof(int)));
    node.barrier();
  });
  const std::vector<int> seen = read_back(cluster, res, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], 40 + i);
  }
}

TEST(ClusterSubmit, FailureAggregatesEveryFailingNode) {
  Cluster cluster(3);
  try {
    cluster.run([](Node& node) {
      if (node.id() != 0) {
        throw std::runtime_error("fail " + std::to_string(node.id()));
      }
    });
    FAIL() << "expected the job to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    // Either both programs failed (aggregate message) or one failed and the
    // other unwound through the recovery abort; node 1 is always reported.
    EXPECT_NE(what.find("fail 1"), std::string::npos) << what;
  }
  cluster.run([](Node& node) { node.barrier(); });  // pool still accepts work
}

TEST(ClusterSubmit, QueuedJobsStillRunAfterAFailedJob) {
  Cluster cluster(2);
  const GlobalAddr res = cluster.alloc(2 * sizeof(int), /*home=*/0);
  const Cluster::Ticket bad = cluster.submit([](Node& node) {
    if (node.id() == 0) throw std::runtime_error("bad job");
  });
  const Cluster::Ticket good = cluster.submit([&](Node& node) {
    node.write<int>(res + node.id() * sizeof(int), 1);
    node.barrier();
  });
  EXPECT_THROW(cluster.await(bad), std::runtime_error);
  cluster.await(good);
  EXPECT_EQ(read_back(cluster, res, 2), (std::vector<int>{1, 1}));
}

TEST(ClusterSubmit, HostWriteSeedsHomePages) {
  Cluster cluster(3);
  std::vector<std::byte> pattern(3 * 4096 + 100);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::byte>(i * 31 + 7);
  }
  const GlobalAddr a = cluster.alloc_striped(pattern.size());
  cluster.host_write(a, pattern.data(), pattern.size());
  const GlobalAddr res = cluster.alloc(3 * sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    std::vector<std::byte> got(pattern.size());
    node.read_bytes(a, got.data(), got.size());
    node.write<int>(res + node.id() * sizeof(int), got == pattern ? 1 : 0);
    node.barrier();
  });
  EXPECT_EQ(read_back(cluster, res, 3), (std::vector<int>{1, 1, 1}));
}

TEST(ClusterSubmit, RetainRangeKeepsPagesWarmAcrossJobs) {
  Cluster cluster(2);
  const std::size_t bytes = 4 * 4096;
  const GlobalAddr a = cluster.alloc_striped(bytes);
  std::vector<std::byte> seed(bytes, std::byte{0x5a});
  cluster.host_write(a, seed.data(), bytes);
  cluster.retain_range(a, bytes);

  const auto touch_all = [&](Node& node) {
    std::vector<std::byte> got(bytes);
    node.read_bytes(a, got.data(), got.size());
  };
  const DsmStats cold = cluster.await(cluster.submit(touch_all));
  const DsmStats warm = cluster.await(cluster.submit(touch_all));
  // Cold: every node faults in the pages it is not home for.  Warm: the
  // retained frames survived the end-of-job sweep, so the same reads hit
  // the local page cache instead.
  EXPECT_GT(cold.total_node().read_faults, 0u);
  EXPECT_GT(warm.node[0].cache_hits, 0u);
  EXPECT_EQ(warm.node[0].read_faults, 0u);
  if (cluster.config().backend == Backend::kThreads) {
    EXPECT_EQ(warm.total_node().read_faults, 0u);
  } else {
    // Process backend: children are forked per job and always start cold;
    // retained warmth is a property of the persistent parent (node 0) only.
    EXPECT_GT(warm.total_node().read_faults, 0u);
  }
}

TEST(ClusterSubmit, WithoutRetainRangePagesGoColdEachJob) {
  Cluster cluster(2);
  const std::size_t bytes = 2 * 4096;
  const GlobalAddr a = cluster.alloc_striped(bytes);
  std::vector<std::byte> seed(bytes, std::byte{0x11});
  cluster.host_write(a, seed.data(), bytes);

  const auto touch_all = [&](Node& node) {
    std::vector<std::byte> got(bytes);
    node.read_bytes(a, got.data(), got.size());
  };
  const DsmStats first = cluster.await(cluster.submit(touch_all));
  const DsmStats second = cluster.await(cluster.submit(touch_all));
  EXPECT_GT(first.total_node().read_faults, 0u);
  EXPECT_EQ(second.total_node().read_faults,
            first.total_node().read_faults);
}

TEST(ClusterSubmit, FailedJobColdRestartsRetainedPagesThenRewarms) {
  Cluster cluster(2);
  const std::size_t bytes = 2 * 4096;
  const GlobalAddr a = cluster.alloc_striped(bytes);
  std::vector<std::byte> seed(bytes, std::byte{0x77});
  cluster.host_write(a, seed.data(), bytes);
  cluster.retain_range(a, bytes);

  const auto touch_all = [&](Node& node) {
    std::vector<std::byte> got(bytes);
    node.read_bytes(a, got.data(), got.size());
  };
  cluster.await(cluster.submit(touch_all));  // warm the caches
  EXPECT_THROW(cluster.run([](Node& node) {
                 if (node.id() == 0) throw std::runtime_error("abort");
               }),
               std::runtime_error);
  // A failed job cold-restarts the caches, but the retained marking stays:
  // the next touch faults the pages back in, the one after runs warm again.
  const DsmStats rewarm = cluster.await(cluster.submit(touch_all));
  const DsmStats warm = cluster.await(cluster.submit(touch_all));
  EXPECT_GT(rewarm.total_node().read_faults, 0u);
  EXPECT_EQ(warm.node[0].read_faults, 0u);
  EXPECT_GT(warm.node[0].cache_hits, 0u);
  if (cluster.config().backend == Backend::kThreads) {
    EXPECT_EQ(warm.total_node().read_faults, 0u);  // children cold under proc
  }
}

TEST(ClusterSubmit, StopIsIdempotentAndTheEngineRestarts) {
  Cluster cluster(2);
  cluster.run([](Node& node) { node.barrier(); });
  cluster.stop();
  // stop() is idempotent and the engine restarts on the next submit.
  cluster.stop();
  const GlobalAddr res = cluster.alloc(2 * sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    node.write<int>(res + node.id() * sizeof(int), 1);
    node.barrier();
  });
  EXPECT_EQ(read_back(cluster, res, 2), (std::vector<int>{1, 1}));
}

}  // namespace
}  // namespace gdsm::dsm
