// Message-passing layer tests: point-to-point matching, collectives, and
// the MP variant of the blocked strategy.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <numeric>

#include "core/blocked.h"
#include "core/blocked_mp.h"
#include "mp/comm.h"
#include "sw/heuristic_scan.h"
#include "util/genome.h"

namespace gdsm::mp {
namespace {

TEST(Mp, SendRecvValue) {
  World world(2);
  std::atomic<int> got{0};
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, /*tag=*/7, 4242);
    } else {
      got = comm.recv_value<int>(0, 7);
    }
  });
  EXPECT_EQ(got, 4242);
}

TEST(Mp, TagMatchingHoldsOutOfOrderMessages) {
  World world(2);
  std::atomic<int> first{0}, second{0};
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, /*tag=*/1, 111);
      comm.send_value(1, /*tag=*/2, 222);
    } else {
      // Receive tag 2 first: tag 1's message must be stashed, not lost.
      second = comm.recv_value<int>(0, 2);
      first = comm.recv_value<int>(0, 1);
    }
  });
  EXPECT_EQ(first, 111);
  EXPECT_EQ(second, 222);
}

TEST(Mp, WildcardReceive) {
  World world(3);
  std::atomic<int> sum{0};
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      int total = 0;
      for (int k = 0; k < 2; ++k) {
        int src = -1;
        const auto bytes = comm.recv(kAnySource, kAnyTag, &src);
        EXPECT_EQ(bytes.size(), sizeof(int));
        int v;
        std::memcpy(&v, bytes.data(), sizeof v);
        EXPECT_EQ(v, src * 10);
        total += v;
      }
      sum = total;
    } else {
      comm.send_value(0, comm.rank(), comm.rank() * 10);
    }
  });
  EXPECT_EQ(sum, 30);
}

TEST(Mp, BarrierSynchronizes) {
  World world(4);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  world.run([&](Comm& comm) {
    ++before;
    comm.barrier();
    if (before.load() != comm.size()) violated = true;
  });
  EXPECT_FALSE(violated);
}

TEST(Mp, BroadcastFromNonZeroRoot) {
  World world(4);
  std::array<std::atomic<int>, 4> seen{};
  world.run([&](Comm& comm) {
    int v = comm.rank() == 2 ? 777 : 0;
    comm.bcast(2, &v, sizeof v);
    seen[static_cast<std::size_t>(comm.rank())] = v;
  });
  for (const auto& v : seen) EXPECT_EQ(v, 777);
}

TEST(Mp, AllReduceSum) {
  World world(5);
  std::array<std::atomic<long>, 5> results{};
  world.run([&](Comm& comm) {
    results[static_cast<std::size_t>(comm.rank())] =
        comm.all_reduce_sum<long>(comm.rank() + 1);
  });
  for (const auto& r : results) EXPECT_EQ(r, 15);
}

TEST(Mp, GatherCollectsPerRankBuffers) {
  World world(3);
  std::atomic<int> total{0};
  world.run([&](Comm& comm) {
    const int mine = (comm.rank() + 1) * 5;
    const auto gathered = comm.gather(0, &mine, sizeof mine);
    if (comm.rank() == 0) {
      int sum = 0;
      for (const auto& bytes : gathered) {
        int v;
        std::memcpy(&v, bytes.data(), sizeof v);
        sum += v;
      }
      total = sum;
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
  EXPECT_EQ(total, 30);
}

TEST(Mp, TrafficCounted) {
  World world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 0, nullptr, 0);
    } else {
      (void)comm.recv(0, 0);
    }
  });
  EXPECT_EQ(world.counters(0).total_messages(), 1u);
}

TEST(Mp, ExceptionUnblocksPeers) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
    if (comm.rank() == 0) throw std::runtime_error("boom");
    (void)comm.recv(0, 0);  // would block forever without shutdown
  }),
               std::runtime_error);
}

}  // namespace
}  // namespace gdsm::mp

namespace gdsm::core {
namespace {

TEST(BlockedMp, MatchesSerialAndDsmVariant) {
  HomologousPairSpec spec;
  spec.length_s = 700;
  spec.length_t = 700;
  spec.n_regions = 3;
  spec.region_len_mean = 100;
  spec.region_len_spread = 20;
  spec.seed = 801;
  const HomologousPair pair = make_homologous_pair(spec);

  HeuristicParams params;
  params.min_report_score = 25;
  const auto serial = heuristic_scan(pair.s, pair.t, ScoreScheme{}, params);

  for (int procs : {1, 2, 4, 8}) {
    BlockedConfig cfg;
    cfg.nprocs = procs;
    cfg.params = params;
    cfg.mult_w = 2;
    cfg.mult_h = 2;
    const MpStrategyResult mp_result = blocked_align_mp(pair.s, pair.t, cfg);
    EXPECT_EQ(mp_result.candidates, serial) << procs << " ranks";
    const StrategyResult dsm_result = blocked_align(pair.s, pair.t, cfg);
    EXPECT_EQ(mp_result.candidates, dsm_result.candidates);
  }
}

TEST(BlockedMp, MovesFewerBytesThanDsm) {
  // Message passing ships exactly the boundary cells; the DSM moves whole
  // pages plus protocol messages.  The MP variant must be leaner on the
  // wire — the quantitative side of the paper's "DSM is easier but not
  // free" trade-off.
  HomologousPairSpec spec;
  spec.length_s = 600;
  spec.length_t = 600;
  spec.n_regions = 2;
  spec.seed = 802;
  spec.region_len_mean = 90;
  spec.region_len_spread = 10;
  const HomologousPair pair = make_homologous_pair(spec);

  BlockedConfig cfg;
  cfg.nprocs = 4;
  cfg.mult_w = 2;
  cfg.mult_h = 2;
  const MpStrategyResult mp_result = blocked_align_mp(pair.s, pair.t, cfg);
  const StrategyResult dsm_result = blocked_align(pair.s, pair.t, cfg);
  EXPECT_LT(mp_result.traffic.total_bytes(),
            dsm_result.dsm_stats.total_traffic().total_bytes());
}

TEST(BlockedMp, EmptyInputs) {
  const Sequence e("e", "");
  const Sequence s("s", "ACGTACGT");
  BlockedConfig cfg;
  cfg.nprocs = 3;
  EXPECT_TRUE(blocked_align_mp(e, s, cfg).candidates.empty());
  EXPECT_TRUE(blocked_align_mp(s, e, cfg).candidates.empty());
}

}  // namespace
}  // namespace gdsm::core
