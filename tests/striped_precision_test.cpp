// Precision-boundary property suite for the striped (Farrar) kernels
// (src/simd/striped.h).
//
// The striped path's whole value proposition is running the DP in 8-bit
// saturating lanes and escalating — 8 -> 16 -> 32-bit delegation — only when
// a block provably (or detectably) needs more headroom.  These tests build
// inputs whose best scores straddle each rung's boundary and prove, per
// compiled backend, that
//   * scores stay bit-identical to the scalar anti-diagonal reference on
//     BOTH sides of every boundary (escalation is invisible to callers),
//   * the overflow_reruns / fallback32 counters fire exactly when the
//     boundary is crossed (escalation happens when and only when needed).
// tools/ci.sh re-runs this suite under ASan: the re-run path recycles the
// thread-local scratch rows at a different width, which is exactly where a
// stale-size bug would hide.
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "simd/dispatch.h"
#include "util/alphabet.h"

namespace gdsm::simd {
namespace {

struct StripedFn {
  const char* name;
  BestCell (*block_best)(const DiagBlock&, const ScoreParams&);
};

bool backend_available(Backend b) {
  for (Backend have : available_backends()) {
    if (have == b) return true;
  }
  return false;
}

std::vector<StripedFn> striped_backends_under_test() {
  std::vector<StripedFn> out{{"striped-scalar", striped_scalar::block_best}};
#if GDSM_SIMD_SSE41
  if (backend_available(Backend::kStripedSse41))
    out.push_back({"striped-sse41", striped_sse41::block_best});
#endif
#if GDSM_SIMD_AVX2
  if (backend_available(Backend::kStripedAvx2))
    out.push_back({"striped-avx2", striped_avx2::block_best});
#endif
#if GDSM_SIMD_AVX512
  if (backend_available(Backend::kStripedAvx512))
    out.push_back({"striped-avx512", striped_avx512::block_best});
#endif
  return out;
}

DiagBlock fresh_block(const std::vector<Base>& a, const std::vector<Base>& b) {
  DiagBlock blk;
  blk.a_seq = a.data();
  blk.a_len = a.size();
  blk.b_seq = b.data();
  blk.b_len = b.size();
  return blk;
}

std::vector<Base> mutated_copy(const std::vector<Base>& src, double rate,
                               std::mt19937& rng) {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<int> pick(0, 3);
  std::vector<Base> out = src;
  for (auto& c : out) {
    if (coin(rng) < rate) c = static_cast<Base>(pick(rng));
  }
  return out;
}

// Identical length-L sequences under {match=1, mismatch=-1, gap=-2} score
// exactly L, and bias = 1 puts the 8-bit detection cap at 255 - 1 = 254:
// the first DP cell whose true value reaches 254 saturates (in the biased
// domain) and must trigger the 16-bit re-run.  L = 253 is the largest block
// the 8-bit rung may answer by itself.
TEST(StripedPrecision, Int8SaturationBoundaryIsScoreExact) {
  const ScoreParams sp{1, -1, -2};
  for (const auto& be : striped_backends_under_test()) {
    for (const std::size_t L :
         {std::size_t{250}, std::size_t{253}, std::size_t{254},
          std::size_t{255}, std::size_t{300}, std::size_t{400}}) {
      SCOPED_TRACE(std::string(be.name) + " L=" + std::to_string(L));
      const std::vector<Base> a(L, kBaseA), b(L, kBaseA);
      const DiagBlock blk = fresh_block(a, b);
      const BestCell ref = scalar::block_best(blk, sp);
      ASSERT_EQ(ref.score, static_cast<std::int32_t>(L));

      const StripedCounters before = striped_counters();
      const BestCell got = be.block_best(blk, sp);
      const StripedCounters after = striped_counters();

      EXPECT_EQ(got.score, ref.score);
      EXPECT_EQ(got.a, ref.a);
      EXPECT_EQ(got.b, ref.b);
      const bool expect_rerun = L >= 254;
      EXPECT_EQ(after.overflow_reruns - before.overflow_reruns,
                expect_rerun ? 1u : 0u);
      EXPECT_EQ(after.sweeps8 - before.sweeps8, 1u);
      EXPECT_EQ(after.sweeps16 - before.sweeps16, expect_rerun ? 1u : 0u);
      EXPECT_EQ(after.cells8 - before.cells8, static_cast<std::uint64_t>(L) * L);
      EXPECT_EQ(after.fallback32 - before.fallback32, 0u);
    }
  }
}

// Same boundary under the affine (Gotoh) gap model: a nonzero gap_open runs
// the identical biased sweep with gap_oe = -(open + extend), and the
// escalation ladder must stay score-exact there too.  match=2, bias=3 puts
// the cap at 252, so identical length-L sequences (score 2L) cross it
// between L=125 and L=126.
TEST(StripedPrecision, Int8BoundaryIsScoreExactUnderAffineGaps) {
  const ScoreParams sp{2, -3, -1, -3};
  for (const auto& be : striped_backends_under_test()) {
    for (const std::size_t L : {std::size_t{120}, std::size_t{125},
                                std::size_t{126}, std::size_t{200}}) {
      SCOPED_TRACE(std::string(be.name) + " L=" + std::to_string(L));
      const std::vector<Base> a(L, kBaseA), b(L, kBaseA);
      const DiagBlock blk = fresh_block(a, b);
      const BestCell ref = scalar::block_best(blk, sp);
      ASSERT_EQ(ref.score, static_cast<std::int32_t>(2 * L));

      const StripedCounters before = striped_counters();
      const BestCell got = be.block_best(blk, sp);
      const StripedCounters after = striped_counters();

      EXPECT_EQ(got.score, ref.score);
      EXPECT_EQ(got.a, ref.a);
      EXPECT_EQ(got.b, ref.b);
      const bool expect_rerun = 2 * L >= 252;
      EXPECT_EQ(after.overflow_reruns - before.overflow_reruns,
                expect_rerun ? 1u : 0u);
      EXPECT_EQ(after.sweeps16 - before.sweeps16, expect_rerun ? 1u : 0u);
    }
  }
}

// The 16-bit rung is guarded by a proven bound instead of detection:
// step_gain * min(m, n) + step_gain + bias <= 65000.  With match=300 /
// mismatch=-200 (bias=200, so fit8 is off and every block starts at the
// 16-bit rung) the bound flips between m = 215 (64500 + 500 = 65000, sweeps
// at 16 bits) and m = 216 (65300, delegates to the anti-diagonal backend's
// 32-bit routing).  Scores must be exact on both sides.
TEST(StripedPrecision, Int16BoundGateFallsBackExactly) {
  const ScoreParams sp{300, -200, -150};
  for (const auto& be : striped_backends_under_test()) {
    for (const std::size_t L : {std::size_t{215}, std::size_t{216}}) {
      SCOPED_TRACE(std::string(be.name) + " L=" + std::to_string(L));
      const std::vector<Base> a(L, kBaseA), b(L, kBaseA);
      const DiagBlock blk = fresh_block(a, b);
      const BestCell ref = scalar::block_best(blk, sp);
      ASSERT_EQ(ref.score, static_cast<std::int32_t>(300 * L));

      const StripedCounters before = striped_counters();
      const BestCell got = be.block_best(blk, sp);
      const StripedCounters after = striped_counters();

      EXPECT_EQ(got.score, ref.score);
      EXPECT_EQ(got.a, ref.a);
      EXPECT_EQ(got.b, ref.b);
      const bool expect_fallback = L >= 216;
      EXPECT_EQ(after.fallback32 - before.fallback32,
                expect_fallback ? 1u : 0u);
      EXPECT_EQ(after.sweeps16 - before.sweeps16, expect_fallback ? 0u : 1u);
      EXPECT_EQ(after.sweeps8 - before.sweeps8, 0u);  // fit8 is off: bias 200
    }
  }
}

// Property fuzz across the 8-bit boundary: high-identity pairs (a mutated
// copy) of lengths chosen so best scores land on both sides of the cap.
// Every block must match the scalar reference exactly, whichever rung
// answered it — and across the whole sweep both rungs must actually have
// been used (the straddle is real, not vacuous).
TEST(StripedPrecision, HighIdentityFuzzIsExactAcrossEscalation) {
  const ScoreParams linear{2, -3, -4};
  const ScoreParams affine{2, -3, -1, -3};
  std::mt19937 rng(20260808);
  for (const auto& be : striped_backends_under_test()) {
    const StripedCounters start = striped_counters();
    std::uint64_t blocks = 0;
    for (const ScoreParams& sp : {linear, affine}) {
      for (const std::size_t L :
           {std::size_t{60}, std::size_t{100}, std::size_t{126},
            std::size_t{140}, std::size_t{220}, std::size_t{400}}) {
        for (int trial = 0; trial < 3; ++trial) {
          SCOPED_TRACE(std::string(be.name) + (sp.gap_open ? " affine" : "") +
                       " L=" + std::to_string(L) + " trial=" +
                       std::to_string(trial));
          std::uniform_int_distribution<int> pick(0, 3);
          std::vector<Base> a(L);
          for (auto& c : a) c = static_cast<Base>(pick(rng));
          const std::vector<Base> b = mutated_copy(a, 0.02, rng);
          const DiagBlock blk = fresh_block(a, b);
          const BestCell ref = scalar::block_best(blk, sp);
          const BestCell got = be.block_best(blk, sp);
          EXPECT_EQ(got.score, ref.score);
          if (ref.score > 0) {
            EXPECT_EQ(got.a, ref.a);
            EXPECT_EQ(got.b, ref.b);
          }
          ++blocks;
        }
      }
    }
    const StripedCounters end = striped_counters();
    EXPECT_EQ(end.sweeps8 - start.sweeps8, blocks);  // every block starts at 8
    EXPECT_GT(end.overflow_reruns - start.overflow_reruns, 0u);
    EXPECT_LT(end.overflow_reruns - start.overflow_reruns, blocks);
    EXPECT_EQ(end.delegated - start.delegated, 0u);
  }
}

}  // namespace
}  // namespace gdsm::simd
