// Cascade admissibility and index-persistence tests (docs/SERVICE.md
// "Cascade").
//
// The seed-and-extend middle stage claims two certificates: a resolved
// fragment's (score, end cell) equals the reference kernel's, and a
// cascade-dropped fragment contains NO alignment reaching min_score.  These
// tests attack both claims with adversarial inputs (random probes,
// high-identity probes, tandem repeats — the band-merge worst case) under
// both gap models, cross-check the full pipeline against brute_force_hits
// with the cascade on and off and with the cluster path forced, and
// round-trip the persisted q-gram index including corruption rejection.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "db/bound_batch.h"
#include "db/db_align.h"
#include "db/qgram_index.h"
#include "db/subject_db.h"
#include "sw/linear_score.h"
#include "testing/db_oracle.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm {
namespace {

const ScoreScheme kLinear{};
const ScoreScheme kAffine{1, -1, -1, -3};

std::vector<Sequence> make_db_sequences(std::size_t n, std::size_t len,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Sequence> seqs;
  for (std::size_t i = 0; i < n; ++i) {
    seqs.push_back(random_dna(len, rng, "chr" + std::to_string(i)));
  }
  return seqs;
}

/// A sequence of `copies` concatenated repeats of a random `motif_len`
/// motif — every copy seeds against every other, the chaining/band-merge
/// worst case.
Sequence tandem_repeat(std::size_t motif_len, std::size_t copies,
                       std::uint64_t seed, const std::string& name) {
  Rng rng(seed);
  const Sequence motif = random_dna(motif_len, rng);
  Sequence out;
  out.set_name(name);
  for (std::size_t c = 0; c < copies; ++c) {
    for (std::size_t i = 0; i < motif.size(); ++i) out.append(motif[i]);
  }
  return out;
}

/// The core admissibility property for one (db, query, scheme, threshold):
///  - the cascade only re-routes: forwarded + resolved-or-dropped survivors
///    partition filter()'s survivor set;
///  - a resolved hit is the reference kernel's answer, exactly;
///  - a survivor that is neither forwarded nor a resolved hit was certified
///    hopeless, so the full matrix must really score below min_score.
void expect_cascade_admissible(const db::SubjectDb& db, const Sequence& query,
                               const ScoreScheme& scheme, int min_score,
                               db::CascadeCounters* totals = nullptr) {
  const db::SubjectDb::Filtration filt = db.filter(query, scheme, min_score);
  const db::SubjectDb::ScanResult scan = db.scan(query, scheme, min_score);
  ASSERT_EQ(scan.scanned, db.fragments().size());
  EXPECT_EQ(scan.rejected, filt.rejected);

  const std::set<std::uint32_t> survivors(filt.survivors.begin(),
                                          filt.survivors.end());
  const std::set<std::uint32_t> forwarded(scan.forwarded.begin(),
                                          scan.forwarded.end());
  std::map<std::uint32_t, db::SubjectDb::ScanHit> resolved;
  for (const db::SubjectDb::ScanHit& h : scan.resolved) {
    EXPECT_TRUE(resolved.emplace(h.fragment, h).second)
        << "fragment " << h.fragment << " resolved twice";
  }

  for (const std::uint32_t id : scan.forwarded) {
    EXPECT_TRUE(survivors.count(id)) << "forwarded a rejected fragment";
    EXPECT_FALSE(resolved.count(id)) << "fragment both forwarded and resolved";
  }
  for (const auto& [id, hit] : resolved) {
    EXPECT_TRUE(survivors.count(id)) << "resolved a rejected fragment";
  }

  for (const std::uint32_t id : filt.survivors) {
    if (forwarded.count(id)) continue;  // full DP will decide this one
    const BestLocal truth =
        sw_best_score_linear(query, db.fragment_seq(id), scheme);
    const auto it = resolved.find(id);
    if (it != resolved.end()) {
      // Certified hit: score AND canonical end cell must be the kernel's.
      EXPECT_GE(it->second.score, min_score);
      EXPECT_EQ(it->second.score, truth.score) << "fragment " << id;
      EXPECT_EQ(it->second.end_i, truth.end_i) << "fragment " << id;
      EXPECT_EQ(it->second.end_j, truth.end_j) << "fragment " << id;
    } else {
      // Certified drop: the admissibility claim under attack.
      EXPECT_LT(truth.score, min_score)
          << "cascade dropped fragment " << id << " which scores "
          << truth.score << " >= " << min_score;
    }
  }

  if (totals != nullptr) {
    totals->seeds += scan.cascade.seeds;
    totals->chains += scan.cascade.chains;
    totals->extensions += scan.cascade.extensions;
    totals->dp_skipped_by_bound += scan.cascade.dp_skipped_by_bound;
    totals->dp_confirmed += scan.cascade.dp_confirmed;
  }
}

// ------------------------------------------------------- admissibility --

TEST(CascadeAdmissibility, RandomProbesBothGapModels) {
  const auto seqs = make_db_sequences(3, 500, 11);
  const db::SubjectDb db(seqs, {});
  for (const ScoreScheme& scheme : {kLinear, kAffine}) {
    for (std::uint64_t s = 0; s < 12; ++s) {
      Rng rng(100 + s);
      const Sequence probe = random_dna(120, rng, "rand");
      for (const int min_score : {30, 60, 90}) {
        expect_cascade_admissible(db, probe, scheme, min_score);
      }
    }
  }
}

TEST(CascadeAdmissibility, HighIdentityProbesBothGapModels) {
  const auto seqs = make_db_sequences(3, 500, 12);
  const db::SubjectDb db(seqs, {});
  db::CascadeCounters totals;
  for (const ScoreScheme& scheme : {kLinear, kAffine}) {
    for (std::uint64_t s = 0; s < 12; ++s) {
      Rng rng(200 + s);
      const Sequence& src = seqs[s % seqs.size()];
      const std::size_t begin = (s * 37) % (src.size() - 150);
      // Sweep divergence from near-exact to moderate, so the extension
      // score lands above, at, and below the certification gate.
      const double sub = 0.005 * static_cast<double>(s % 6);
      Sequence probe = mutate(src.slice(begin, begin + 150), sub, sub / 4, rng);
      probe.set_name("hom");
      for (const int min_score : {80, 110, 130}) {
        expect_cascade_admissible(db, probe, scheme, min_score, &totals);
      }
    }
  }
  // The gate must actually fire on high-identity traffic — an admissible
  // cascade that never resolves anything is a no-op, not a cascade.
  EXPECT_GT(totals.extensions, 0u);
  EXPECT_GT(totals.dp_skipped_by_bound, 0u);
}

TEST(CascadeAdmissibility, TandemRepeatAdversaryBothGapModels) {
  // Repeats seed everywhere: every motif copy in the probe matches every
  // copy in the subject, so runs pile onto many diagonals and the merged
  // band (or the width guard) must still never certify a wrong answer.
  std::vector<Sequence> seqs;
  seqs.push_back(tandem_repeat(17, 40, 31, "rep17"));
  seqs.push_back(tandem_repeat(8, 80, 32, "rep8"));
  seqs.push_back(make_db_sequences(1, 600, 33)[0]);
  const db::SubjectDb db(seqs, {});
  for (const ScoreScheme& scheme : {kLinear, kAffine}) {
    for (std::uint64_t s = 0; s < 8; ++s) {
      Rng rng(300 + s);
      // Probe: mutated window of a repeat, sometimes with a period slip
      // (delete a partial motif) so the best chain is off-diagonal.
      const Sequence& src = seqs[s % 2];
      const std::size_t begin = (s * 23) % (src.size() - 140);
      Sequence probe =
          mutate(src.slice(begin, begin + 140), 0.02, 0.01, rng);
      probe.set_name("repprobe");
      for (const int min_score : {60, 100, 125}) {
        expect_cascade_admissible(db, probe, scheme, min_score);
      }
    }
  }
}

TEST(CascadeAdmissibility, CascadeOffForwardsEverySurvivor) {
  const auto seqs = make_db_sequences(2, 500, 14);
  db::DbConfig cfg;
  cfg.cascade = false;
  const db::SubjectDb db(seqs, cfg);
  Rng rng(400);
  const Sequence probe =
      mutate(seqs[0].slice(60, 190), 0.01, 0.005, rng);
  const db::SubjectDb::Filtration filt = db.filter(probe, kLinear, 100);
  const db::SubjectDb::ScanResult scan = db.scan(probe, kLinear, 100);
  EXPECT_TRUE(scan.resolved.empty());
  EXPECT_EQ(scan.forwarded, filt.survivors);
  EXPECT_EQ(scan.cascade.extensions, 0u);
  EXPECT_EQ(scan.cascade.dp_skipped_by_bound, 0u);
}

// ------------------------------------------------------- batch bound --

// The AVX2 batched bound (bound_batch.h) must agree lane-for-lane with the
// scalar seeded-run DP on arbitrary seed-flag matrices: all-zero and
// all-one lanes, random densities, both gap models, the fixed-q
// instantiations and the generic fallback, and counts off the lane
// multiple.  Skipped (never silently passed) when the host or build has no
// batch backend.
TEST(BoundBatch, MatchesScalarBoundLaneForLane) {
  if (!db::bound_batch_available()) {
    GTEST_SKIP() << "AVX2 batch bound not available on this build/CPU";
  }
  Rng rng(77);
  for (const ScoreScheme* scheme : {&kLinear, &kAffine}) {
    const int a = scheme->match;
    const int p = std::max(0, std::min(-scheme->mismatch, -scheme->gap));
    for (const std::size_t q : {std::size_t{2}, std::size_t{5},
                                std::size_t{7}, std::size_t{11}}) {
      for (const std::size_t m : {q, std::size_t{33}, std::size_t{150}}) {
        const std::size_t windows = m - q + 1;
        for (const std::size_t count :
             {std::size_t{1}, std::size_t{8}, std::size_t{13}}) {
          const std::size_t stride = (count + 7) & ~std::size_t{7};
          std::vector<std::uint8_t> flags_t(windows * stride, 0);
          for (std::size_t c = 0; c < count; ++c) {
            // Lane 0 stays unseeded and lane 1 fully seeded; the rest get
            // densities spanning sparse to near-solid.
            const std::uint64_t den = 1 + (c * 11) % 90;
            for (std::size_t w = 0; w < windows; ++w) {
              if (c == 1 || (c > 1 && rng() % 100 < den)) {
                flags_t[w * stride + c] = 1;
              }
            }
          }
          std::vector<std::int32_t> got(stride, 0);
          db::seeded_bound_batch(m, flags_t.data(), windows, stride, count,
                                 a, p, q, got.data());
          for (std::size_t c = 0; c < count; ++c) {
            std::vector<char> col(windows, 0);
            for (std::size_t w = 0; w < windows; ++w) {
              col[w] = static_cast<char>(flags_t[w * stride + c]);
            }
            EXPECT_EQ(db::seeded_run_bound(m, col, *scheme, q), got[c])
                << "lane " << c << " q=" << q << " m=" << m
                << " count=" << count << " affine="
                << (scheme->gap_open != 0);
          }
        }
      }
    }
  }
}

// ------------------------------------------------- differential oracle --

// The three data-plane modes GDSM_COMM selects between (same rotation as
// tests/db_test.cpp).
dsm::CommConfig comm_mode(int which) {
  dsm::CommConfig comm;
  switch (which % 3) {
    case 0:
      comm.batch_diffs = false;
      comm.bulk_fetch = false;
      comm.prefetch_pages = 0;
      break;
    case 1:
      comm.prefetch_pages = 0;
      break;
    default:
      comm.prefetch_pages = 4;
      break;
  }
  return comm;
}

// >= 1000 fuzzed queries through the full db_query pipeline against
// brute_force_hits, rotating cascade on/off, the direct-align vs cluster
// resolution path, gap model, comm mode and threshold regime.  Identity of
// the on and off hit sets follows: both must equal the brute-force oracle.
TEST(DbCascadeOracle, FuzzedOnOffAndClusterPathsMatchBruteForce) {
  std::size_t compared = 0;
  std::size_t cascade_on_queries = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    testing::DbOracleCase c;
    c.seed = 9000 + seed;
    c.n_sequences = 3;
    c.seq_len = 350;
    c.n_queries = 25;
    c.query_len = 100;
    c.nprocs = (seed % 2 == 0) ? 4 : 3;
    c.comm = comm_mode(static_cast<int>(seed));
    if (seed % 2 == 0) {
      c.scheme.gap_open = -3;
      c.scheme.gap = -1;
    }
    c.db_cfg.cascade = (seed % 4) < 2;
    // direct_align_max = 0 forces every forwarded candidate through the
    // cluster SPMD path, so certified resolutions mix with both comm modes.
    c.db_cfg.direct_align_max = (seed % 3 == 0) ? 0 : 8;
    c.min_score = (seed % 3 == 0) ? 25 : (seed % 3 == 1 ? 45 : 80);
    const testing::DbOracleVerdict v = run_db_differential(c);
    ASSERT_TRUE(v.ok) << c.to_string() << " -> " << v.summary();
    compared += v.queries;
    if (c.db_cfg.cascade) cascade_on_queries += v.queries;
  }
  EXPECT_GE(compared, 1000u);
  EXPECT_GE(cascade_on_queries, 400u);
}

// ---------------------------------------------------- persisted index --

std::string temp_index_path(const std::string& tag) {
  return ::testing::TempDir() + "gdsm_qidx_" + tag;
}

TEST(PersistedIndex, SaveOpenRoundTripServesIdenticalScans) {
  const auto seqs = make_db_sequences(3, 700, 51);
  const std::string path = temp_index_path("roundtrip");
  const db::SubjectDb cold(seqs, {});
  cold.save_index(path);
  const db::SubjectDb warm = db::SubjectDb::open_index(seqs, path, {});
  ASSERT_EQ(warm.fragments().size(), cold.fragments().size());

  for (std::uint64_t s = 0; s < 6; ++s) {
    Rng rng(600 + s);
    const Sequence probe =
        s % 2 == 0 ? mutate(seqs[s % seqs.size()].slice(100, 230), 0.02,
                            0.005, rng)
                   : random_dna(130, rng);
    for (const ScoreScheme& scheme : {kLinear, kAffine}) {
      const db::SubjectDb::ScanResult a = cold.scan(probe, scheme, 90);
      const db::SubjectDb::ScanResult b = warm.scan(probe, scheme, 90);
      EXPECT_EQ(a.forwarded, b.forwarded);
      ASSERT_EQ(a.resolved.size(), b.resolved.size());
      for (std::size_t k = 0; k < a.resolved.size(); ++k) {
        EXPECT_EQ(a.resolved[k].fragment, b.resolved[k].fragment);
        EXPECT_EQ(a.resolved[k].score, b.resolved[k].score);
        EXPECT_EQ(a.resolved[k].end_i, b.resolved[k].end_i);
        EXPECT_EQ(a.resolved[k].end_j, b.resolved[k].end_j);
      }
      EXPECT_EQ(a.rejected, b.rejected);
    }
  }
  std::remove(path.c_str());
}

TEST(PersistedIndex, RejectsCorruptionAndMismatch) {
  const auto seqs = make_db_sequences(2, 600, 52);
  const std::string path = temp_index_path("corrupt");
  const db::SubjectDb cold(seqs, {});
  cold.save_index(path);

  const auto flip_byte = [&](std::streamoff at, unsigned char mask) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f) << path;
    char b = 0;
    f.seekg(at, std::ios::beg);
    f.read(&b, 1);
    b = static_cast<char>(b ^ mask);
    f.seekp(at, std::ios::beg);
    f.write(&b, 1);
  };

  // Corrupt the stored content checksum (header bytes 56..63): the index
  // no longer matches the sequences it claims to cover.
  flip_byte(56, 0x5a);
  EXPECT_THROW(db::SubjectDb::open_index(seqs, path, {}),
               std::runtime_error);

  // Corrupt the CSR payload: blow the high byte of the second offsets
  // entry so it exceeds its successor — the monotonicity check must trip
  // before any entry is dereferenced.
  cold.save_index(path);
  flip_byte(64 + 8 + 7, 0xff);
  EXPECT_THROW(db::SubjectDb::open_index(seqs, path, {}),
               std::runtime_error);

  // A truncated file must be rejected before any entry is dereferenced.
  cold.save_index(path);
  {
    std::ifstream in(path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(all.data(), static_cast<std::streamsize>(all.size() / 2));
  }
  EXPECT_THROW(db::SubjectDb::open_index(seqs, path, {}),
               std::runtime_error);

  // A geometry mismatch (different q) is a different index, not this one.
  cold.save_index(path);
  db::DbConfig other;
  other.q = 7;
  EXPECT_THROW(db::SubjectDb::open_index(seqs, path, other),
               std::runtime_error);

  // And a clean save must open again after all that rejection.
  EXPECT_NO_THROW(db::SubjectDb::open_index(seqs, path, {}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gdsm
