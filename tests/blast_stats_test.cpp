// Karlin–Altschul statistics tests.
#include <gtest/gtest.h>

#include <cmath>

#include "blast/blastn.h"
#include "blast/statistics.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm::blast {
namespace {

TEST(KarlinAltschul, LambdaMatchesPublishedBlastnValues) {
  // NCBI BLASTN tables (ungapped, uniform composition):
  //   +1/-3: lambda = 1.374, K = 0.711
  //   +1/-2: lambda = 1.28,  K = 0.46
  const KarlinParams p13 = karlin_altschul(1, -3);
  EXPECT_NEAR(p13.lambda, 1.374, 0.005);
  EXPECT_NEAR(p13.k, 0.711, 1e-9);
  // +1/-2's exact uniform-composition root is 1.3327 (NCBI quotes 1.28,
  // which includes edge-effect corrections); check the exact root.
  const KarlinParams p12 = karlin_altschul(1, -2);
  EXPECT_NEAR(p12.lambda, 1.3327, 0.001);
  EXPECT_NEAR(p12.k, 0.46, 1e-9);
}

TEST(KarlinAltschul, LambdaSolvesTheDefiningEquation) {
  const KarlinParams p = karlin_altschul(2, -3);
  const double sum =
      0.25 * std::exp(p.lambda * 2) + 0.75 * std::exp(p.lambda * -3);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(p.h, 0);
}

TEST(KarlinAltschul, RejectsNonNegativeExpectation) {
  EXPECT_THROW(karlin_altschul(1, 0), std::invalid_argument);
  EXPECT_THROW(karlin_altschul(3, -1), std::invalid_argument);
  EXPECT_THROW(karlin_altschul(0, -1), std::invalid_argument);
}

TEST(KarlinAltschul, EvalueScalesWithSearchSpaceAndScore) {
  const KarlinParams p = karlin_altschul(1, -3);
  const double e1 = evalue(30, 10'000, 10'000, p);
  EXPECT_GT(evalue(30, 20'000, 10'000, p), e1 * 1.99);
  EXPECT_LT(evalue(40, 10'000, 10'000, p), e1);
  EXPECT_GT(bit_score(40, p), bit_score(30, p));
}

TEST(BlastnEvalues, RealHitsAreSignificantNoiseIsNot) {
  HomologousPairSpec spec;
  spec.length_s = 5'000;
  spec.length_t = 5'000;
  spec.n_regions = 2;
  spec.region_len_mean = 300;
  spec.region_len_spread = 30;
  spec.seed = 921;
  const HomologousPair pair = make_homologous_pair(spec);
  const auto hits = blastn(pair.s, pair.t);
  ASSERT_FALSE(hits.empty());
  // A 300 bp ~95% identity hit is overwhelmingly significant.
  EXPECT_LT(hits[0].evalue, 1e-20);
  EXPECT_GT(hits[0].bit_score, 50);
  // E-values are monotone against raw scores.
  for (std::size_t k = 1; k < hits.size(); ++k) {
    EXPECT_GE(hits[k].evalue, hits[k - 1].evalue * 0.999);
  }
}

}  // namespace
}  // namespace gdsm::blast
