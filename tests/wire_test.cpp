// Round-trip tests for the byte-level wire encoding (net/frame.h) that the
// process backend trusts across a real socket: every message type, partial-
// page diff payloads, max-size payloads, split/coalesced socket writes, and
// the malformed-input guards.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "dsm/wire.h"
#include "net/frame.h"
#include "net/message.h"

namespace gdsm::net {
namespace {

std::vector<std::byte> random_payload(std::mt19937& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  std::uniform_int_distribution<int> byte(0, 255);
  for (auto& b : out) b = static_cast<std::byte>(byte(rng));
  return out;
}

Message random_message(std::mt19937& rng, MsgType type,
                       std::size_t payload_len) {
  std::uniform_int_distribution<int> node(-1, 63);
  std::uniform_int_distribution<std::uint64_t> word;
  Message m;
  m.src = node(rng);
  m.dst = node(rng);
  m.type = type;
  m.to_reply_box = (word(rng) & 1) != 0;
  m.a = word(rng);
  m.b = word(rng);
  m.c = word(rng);
  m.payload = random_payload(rng, payload_len);
  return m;
}

void expect_equal(const Message& got, const Message& want) {
  EXPECT_EQ(got.src, want.src);
  EXPECT_EQ(got.dst, want.dst);
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.to_reply_box, want.to_reply_box);
  EXPECT_EQ(got.a, want.a);
  EXPECT_EQ(got.b, want.b);
  EXPECT_EQ(got.c, want.c);
  EXPECT_EQ(got.payload, want.payload);
}

TEST(WireMessage, RoundTripsEveryTypeWithFuzzedFields) {
  std::mt19937 rng(20260808);
  const std::size_t lens[] = {0, 1, 7, 64, 4096};
  for (int t = 0; t < kNumMsgTypes; ++t) {
    for (const std::size_t len : lens) {
      const Message want = random_message(rng, static_cast<MsgType>(t), len);
      const std::vector<std::byte> body = encode_message(want);
      ASSERT_EQ(body.size(), 38u + len);
      expect_equal(decode_message(body), want);
    }
  }
}

TEST(WireMessage, RoundTripsPartialPageDiffPayload) {
  // A realistic kDiff payload: sparse dirty runs in a 4 KiB page, encoded by
  // the same diff writer the release path uses.
  std::mt19937 rng(7);
  std::vector<std::byte> twin = random_payload(rng, 4096);
  std::vector<std::byte> page = twin;
  for (const std::size_t off : {13u, 900u, 901u, 2048u, 4090u}) {
    page[off] = static_cast<std::byte>(~std::to_integer<unsigned>(page[off]));
  }
  Message m = random_message(rng, MsgType::kDiff, 0);
  m.payload = dsm::wire::make_diff(twin, page);
  ASSERT_FALSE(m.payload.empty());
  ASSERT_LT(m.payload.size(), page.size());  // partial, not a full page

  const Message back = decode_message(encode_message(m));
  expect_equal(back, m);

  // The decoded payload still applies: twin + diff == dirty page.
  std::vector<std::byte> rebuilt = twin;
  dsm::wire::apply_diff(rebuilt.data(), rebuilt.size(), back.payload);
  EXPECT_EQ(rebuilt, page);
}

TEST(WireMessage, RoundTripsDiffBatchAndPagesDataPayloads) {
  std::mt19937 rng(11);
  const std::size_t page_bytes = 1024;

  Message batch = random_message(rng, MsgType::kDiffBatch, 0);
  std::vector<std::byte> twin = random_payload(rng, page_bytes);
  std::vector<std::byte> dirty = twin;
  dirty[0] = static_cast<std::byte>(0xAA);
  dirty[500] = static_cast<std::byte>(0xBB);
  ASSERT_TRUE(
      dsm::wire::append_diff_batch_page(batch.payload, 3, twin, dirty));
  ASSERT_TRUE(
      dsm::wire::append_diff_batch_page(batch.payload, 9, twin, dirty));
  const Message batch_back = decode_message(encode_message(batch));
  expect_equal(batch_back, batch);
  const auto spans = dsm::wire::decode_diff_batch(batch_back.payload);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].page, 3u);
  EXPECT_EQ(spans[1].page, 9u);

  Message pages = random_message(rng, MsgType::kPagesData, 0);
  dsm::wire::append_page_data(pages.payload, 5, twin.data(), page_bytes);
  dsm::wire::append_page_data(pages.payload, 6, dirty.data(), page_bytes);
  const Message pages_back = decode_message(encode_message(pages));
  expect_equal(pages_back, pages);
  const auto pd = dsm::wire::decode_pages_data(pages_back.payload, page_bytes);
  ASSERT_EQ(pd.size(), 2u);
  EXPECT_EQ(pd[0].page, 5u);
  EXPECT_EQ(pd[1].page, 6u);
}

TEST(WireMessage, RejectsMalformedBodies) {
  std::mt19937 rng(3);
  const Message m = random_message(rng, MsgType::kPageData, 32);
  std::vector<std::byte> body = encode_message(m);

  // Truncated header and truncated payload.
  EXPECT_THROW(decode_message(body.data(), 10), std::runtime_error);
  EXPECT_THROW(decode_message(body.data(), body.size() - 1),
               std::runtime_error);
  // Trailing garbage (payload length no longer matches).
  body.push_back(std::byte{0});
  EXPECT_THROW(decode_message(body), std::runtime_error);
  // Unknown type byte (offset 8 = after src/dst).
  std::vector<std::byte> bad = encode_message(m);
  bad[8] = static_cast<std::byte>(kNumMsgTypes);
  EXPECT_THROW(decode_message(bad), std::runtime_error);
}

TEST(WireFrame, RoundTripsEveryKindOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::mt19937 rng(42);

  for (const FrameKind kind :
       {FrameKind::kMessage, FrameKind::kDone, FrameKind::kStats,
        FrameKind::kAbort, FrameKind::kHalt, FrameKind::kDrained}) {
    const std::vector<std::byte> body =
        random_payload(rng, kind == FrameKind::kHalt ? 0 : 777);
    write_frame(fds[0], kind, body.data(), body.size());
    const auto got = read_frame(fds[1]);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->kind, kind);
    EXPECT_EQ(got->body, body);
  }

  ::close(fds[0]);
  EXPECT_FALSE(read_frame(fds[1]).has_value());  // clean EOF
  ::close(fds[1]);
}

TEST(WireFrame, ReassemblesFramesSplitAcrossWrites) {
  // A stream delivers bytes, not records: dribble three concatenated frames
  // through the socket one odd-sized chunk at a time and expect read_frame
  // to reassemble each message intact.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::mt19937 rng(99);

  std::vector<Message> sent;
  std::vector<std::byte> stream;
  for (const std::size_t len : {0u, 100u, 4096u}) {
    sent.push_back(random_message(rng, MsgType::kPagesData, len));
    append_message_frame(stream, sent.back());
  }

  std::thread dribbler([&] {
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t n = std::min<std::size_t>(97, stream.size() - off);
      ASSERT_EQ(::write(fds[0], stream.data() + off, n),
                static_cast<ssize_t>(n));
      off += n;
    }
    ::close(fds[0]);
  });

  for (const Message& want : sent) {
    const auto f = read_frame(fds[1]);
    ASSERT_TRUE(f.has_value());
    ASSERT_EQ(f->kind, FrameKind::kMessage);
    expect_equal(decode_message(f->body), want);
  }
  EXPECT_FALSE(read_frame(fds[1]).has_value());
  dribbler.join();
  ::close(fds[1]);
}

TEST(WireFrame, CarriesMaxSizePageBatchPayload) {
  // The largest payload the protocol actually ships: a full kPagesData batch
  // (dsm::kMaxPagesPerFetch-sized fetches of 16 KiB pages land well under
  // kMaxFrameBody, but push a deliberately huge 8 MiB payload through to
  // prove the framing never truncates or splits large bodies).
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::mt19937 rng(5);
  const Message want = random_message(rng, MsgType::kPagesData, 8u << 20);

  std::thread writer([&] {
    write_message_frame(fds[0], want);
    ::close(fds[0]);
  });
  const auto f = read_frame(fds[1]);
  writer.join();
  ASSERT_TRUE(f.has_value());
  expect_equal(decode_message(f->body), want);
  ::close(fds[1]);
}

TEST(WireFrame, RejectsOversizedAndCorruptHeaders) {
  std::vector<std::byte> out;
  EXPECT_THROW(append_frame(out, FrameKind::kMessage, nullptr, kMaxFrameBody),
               std::runtime_error);

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Length field larger than kMaxFrameBody.
  const std::uint32_t huge = kMaxFrameBody + 1;
  ASSERT_EQ(::write(fds[0], &huge, sizeof(huge)),
            static_cast<ssize_t>(sizeof(huge)));
  EXPECT_THROW(read_frame(fds[1]), std::runtime_error);
  ::close(fds[0]);
  ::close(fds[1]);

  // Unknown frame kind.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint32_t len = 1;
  const std::uint8_t bad_kind = 200;
  ASSERT_EQ(::write(fds[0], &len, sizeof(len)),
            static_cast<ssize_t>(sizeof(len)));
  ASSERT_EQ(::write(fds[0], &bad_kind, 1), 1);
  EXPECT_THROW(read_frame(fds[1]), std::runtime_error);
  ::close(fds[0]);
  ::close(fds[1]);

  // EOF mid-frame (header promised more bytes than arrive).
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint32_t promised = 100;
  const std::uint8_t kind = 0;
  ASSERT_EQ(::write(fds[0], &promised, sizeof(promised)),
            static_cast<ssize_t>(sizeof(promised)));
  ASSERT_EQ(::write(fds[0], &kind, 1), 1);
  ::close(fds[0]);
  EXPECT_THROW(read_frame(fds[1]), std::runtime_error);
  ::close(fds[1]);
}

TEST(WireFrame, FuzzedMessagesSurviveCoalescedStream) {
  // Property test: 200 random messages with random types/payload sizes,
  // written as one contiguous byte stream, all decode back identically.
  std::mt19937 rng(777);
  std::uniform_int_distribution<int> type(0, kNumMsgTypes - 1);
  std::uniform_int_distribution<std::size_t> len(0, 2048);

  std::vector<Message> sent;
  std::vector<std::byte> stream;
  for (int i = 0; i < 200; ++i) {
    sent.push_back(
        random_message(rng, static_cast<MsgType>(type(rng)), len(rng)));
    append_message_frame(stream, sent.back());
  }

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread writer([&] {
    std::size_t off = 0;
    while (off < stream.size()) {
      const ssize_t r =
          ::send(fds[0], stream.data() + off, stream.size() - off, 0);
      ASSERT_GT(r, 0);
      off += static_cast<std::size_t>(r);
    }
    ::close(fds[0]);
  });

  for (const Message& want : sent) {
    const auto f = read_frame(fds[1]);
    ASSERT_TRUE(f.has_value());
    expect_equal(decode_message(f->body), want);
  }
  EXPECT_FALSE(read_frame(fds[1]).has_value());
  writer.join();
  ::close(fds[1]);
}

}  // namespace
}  // namespace gdsm::net
