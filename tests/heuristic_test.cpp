// Tests of the Section 4.1 heuristic linear-space scan (Martins candidate
// tracking): kernel-level behaviour and end-to-end region detection.
#include <gtest/gtest.h>

#include "sw/full_matrix.h"
#include "sw/heuristic_scan.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm {
namespace {

const ScoreScheme kScheme{};

TEST(HeuristicKernel, ZeroCellRestarts) {
  const HeuristicParams params;
  const HeuristicKernel kernel(kScheme, params);
  CandidateSink sink(params);
  const CellInfo zero{};
  // Mismatch with all-zero neighbours floors at 0: fresh cell.
  const CellInfo cell = kernel.update_cell(kBaseA, kBaseC, 1, 1, zero, zero,
                                           zero, sink);
  EXPECT_EQ(cell, CellInfo{});
}

TEST(HeuristicKernel, MatchFromZeroScoresOne) {
  const HeuristicParams params;
  const HeuristicKernel kernel(kScheme, params);
  CandidateSink sink(params);
  const CellInfo zero{};
  const CellInfo cell = kernel.update_cell(kBaseA, kBaseA, 3, 4, zero, zero,
                                           zero, sink);
  EXPECT_EQ(cell.score, 1);
  EXPECT_EQ(cell.max_score, 1);
  EXPECT_EQ(cell.matches, 1u);
  EXPECT_EQ(cell.max_i, 3u);
  EXPECT_EQ(cell.max_j, 4u);
  EXPECT_EQ(cell.flag, 0);  // not yet open (threshold 6)
}

TEST(HeuristicKernel, OpensAfterThresholdRise) {
  const HeuristicParams params;  // open_threshold 6
  const HeuristicKernel kernel(kScheme, params);
  CandidateSink sink(params);
  CellInfo diag{};
  // Simulate a run of matches along the diagonal.
  for (std::uint32_t k = 1; k <= 6; ++k) {
    const CellInfo zero{};
    diag = kernel.update_cell(kBaseA, kBaseA, k, k, diag, zero, zero, sink);
  }
  EXPECT_EQ(diag.score, 6);
  EXPECT_EQ(diag.flag, 1);
  EXPECT_EQ(diag.begin_i, 6u);  // opened at the current position (paper)
  EXPECT_EQ(diag.begin_j, 6u);
}

TEST(HeuristicKernel, ClosesAfterDrop) {
  const HeuristicParams params;  // close_drop 4, min_report 10
  const HeuristicKernel kernel(kScheme, params);
  CandidateSink sink(params);
  CellInfo diag{};
  // 12 matches: opens and reaches score 12.
  for (std::uint32_t k = 1; k <= 12; ++k) {
    const CellInfo zero{};
    diag = kernel.update_cell(kBaseA, kBaseA, k, k, diag, zero, zero, sink);
  }
  ASSERT_EQ(diag.flag, 1);
  ASSERT_EQ(diag.max_score, 12);
  // 4 mismatches: 12 -> 11 -> 10 -> 9 -> 8; the fall of close_drop=4 below
  // the maximum closes the candidate at score 8.
  for (std::uint32_t k = 13; k <= 16; ++k) {
    const CellInfo zero{};
    diag = kernel.update_cell(kBaseA, kBaseC, k, k, diag, zero, zero, sink);
  }
  ASSERT_EQ(sink.queue().size(), 1u);
  const Candidate& c = sink.queue()[0];
  EXPECT_EQ(c.score, 12);
  EXPECT_EQ(c.s_end, 12u);
  EXPECT_EQ(c.t_end, 12u);
  EXPECT_EQ(diag.flag, 0);
  // Counters survive the close (Section 4.1).
  EXPECT_EQ(diag.matches, 12u);
  EXPECT_EQ(diag.mismatches, 4u);
}

TEST(HeuristicKernel, TieBreakPrefersHigherCounterWeight) {
  const HeuristicParams params;
  const HeuristicKernel kernel(kScheme, params);
  CandidateSink sink(params);
  CellInfo up{};
  up.score = 5;
  up.matches = 7;  // weight 14
  CellInfo left{};
  left.score = 5;
  left.matches = 2;  // weight 4
  const CellInfo zero{};
  // Both gap moves give 3; diag gives mismatch path -1 -> floored out.
  const CellInfo cell =
      kernel.update_cell(kBaseA, kBaseC, 2, 2, zero, up, left, sink);
  EXPECT_EQ(cell.score, 3);
  EXPECT_EQ(cell.matches, 7u);  // inherited from `up`, the heavier origin
  EXPECT_EQ(cell.gaps, 1u);
}

TEST(HeuristicKernel, TieBreakFallsBackToHorizontal) {
  const HeuristicParams params;
  const HeuristicKernel kernel(kScheme, params);
  CandidateSink sink(params);
  CellInfo up{};
  up.score = 5;
  up.matches = 3;
  up.begin_i = 77;  // marker
  CellInfo left = up;
  left.begin_i = 99;  // same weight, different marker
  const CellInfo zero{};
  const CellInfo cell =
      kernel.update_cell(kBaseA, kBaseC, 2, 2, zero, up, left, sink);
  // Equal weights: horizontal (left) wins over vertical (up).
  EXPECT_EQ(cell.begin_i, 99u);
}

TEST(HeuristicScan, FindsPlantedRegions) {
  HomologousPairSpec spec;
  spec.length_s = 4000;
  spec.length_t = 4000;
  spec.n_regions = 4;
  spec.region_len_mean = 250;
  spec.region_len_spread = 30;
  spec.seed = 41;
  const HomologousPair pair = make_homologous_pair(spec);

  HeuristicParams params;
  params.min_report_score = 40;
  const auto queue = heuristic_scan(pair.s, pair.t, kScheme, params);
  ASSERT_FALSE(queue.empty());

  // Every planted region must be hit by some candidate.
  for (const PlantedRegion& r : pair.regions) {
    const bool covered = std::any_of(
        queue.begin(), queue.end(), [&](const Candidate& c) {
          const bool s_overlap = c.s_end >= r.s_begin + 1 && c.s_begin <= r.s_end;
          const bool t_overlap = c.t_end >= r.t_begin + 1 && c.t_begin <= r.t_end;
          return s_overlap && t_overlap;
        });
    EXPECT_TRUE(covered) << "planted region s[" << r.s_begin << ".." << r.s_end
                         << ") not detected";
  }
}

TEST(HeuristicScan, CandidatesHaveValidCoordinates) {
  Rng rng(51);
  const Sequence s = random_dna(600, rng, "s");
  const Sequence t = random_dna(600, rng, "t");
  HeuristicParams params;
  params.min_report_score = 8;
  const auto queue = heuristic_scan(s, t, kScheme, params);
  for (const Candidate& c : queue) {
    EXPECT_GE(c.score, params.min_report_score);
    EXPECT_GE(c.s_begin, 1u);
    EXPECT_GE(c.t_begin, 1u);
    EXPECT_LE(c.s_end, s.size());
    EXPECT_LE(c.t_end, t.size());
    EXPECT_LE(c.s_begin, c.s_end);
    EXPECT_LE(c.t_begin, c.t_end);
  }
  // Sorted by subsequence size, descending.
  for (std::size_t i = 1; i < queue.size(); ++i) {
    EXPECT_GE(queue[i - 1].size_key(), queue[i].size_key());
  }
  // No exact repeats.
  for (std::size_t i = 1; i < queue.size(); ++i) {
    EXPECT_FALSE(queue[i - 1] == queue[i]);
  }
}

TEST(HeuristicScan, ReportedScoreIsAchievable) {
  // The candidate's score must match the full-matrix value at its end cell:
  // the heuristic tracks real DP scores, it only approximates the *regions*.
  Rng rng(52);
  const Sequence s = random_dna(300, rng, "s");
  const Sequence t = random_dna(300, rng, "t");
  HeuristicParams params;
  params.min_report_score = 8;
  const auto queue = heuristic_scan(s, t, kScheme, params);
  const DpMatrix a = sw_fill(s, t, kScheme, nullptr);
  for (const Candidate& c : queue) {
    EXPECT_EQ(a.at(c.s_end, c.t_end), c.score)
        << "candidate end cell does not hold the reported score";
  }
}

TEST(HeuristicScan, Deterministic) {
  Rng rng(53);
  const Sequence s = random_dna(500, rng, "s");
  const Sequence t = random_dna(500, rng, "t");
  const auto a = heuristic_scan(s, t);
  const auto b = heuristic_scan(s, t);
  EXPECT_EQ(a, b);
}

TEST(HeuristicScan, EmptyAndTinyInputs) {
  const Sequence e("e", "");
  const Sequence s("s", "ACGT");
  EXPECT_TRUE(heuristic_scan(e, s).empty());
  EXPECT_TRUE(heuristic_scan(s, e).empty());
  EXPECT_TRUE(heuristic_scan(e, e).empty());
  EXPECT_TRUE(heuristic_scan(s, s).empty());  // score 4 < min_report 10
}

TEST(HeuristicScan, PerfectLongMatchReported) {
  const Sequence s("s", "ACGTACGTACGTACGTACGT");  // 20 bp
  const auto queue = heuristic_scan(s, s);
  ASSERT_FALSE(queue.empty());
  EXPECT_EQ(queue[0].score, 20);
  EXPECT_EQ(queue[0].s_end, 20u);
  EXPECT_EQ(queue[0].t_end, 20u);
}

}  // namespace
}  // namespace gdsm
