// The deterministic fault-injection layer: plan parsing, the transport
// invariants it must preserve (exactly-once, per-flow FIFO), the DSM retry
// path it exercises, and the multi-node failure aggregation of Cluster::run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dsm/cluster.h"
#include "net/fault.h"
#include "net/transport.h"
#include "testing/oracle.h"

namespace gdsm {
namespace {

using net::FaultPlan;

FaultPlan chaos_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_rate = 0.15;
  plan.retry_backoff_us = 50;
  plan.delay_rate = 0.3;
  plan.delay_max_us = 150;
  plan.reorder_rate = 0.2;
  plan.reorder_hold_us = 200;
  plan.duplicate_rate = 0.2;
  return plan;
}

TEST(FaultPlanTest, DefaultPlanIsDisabledAndRendersNone) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(plan.to_string(), "none");
  EXPECT_EQ(FaultPlan::parse("none"), plan);
  EXPECT_EQ(FaultPlan::parse(""), plan);
}

TEST(FaultPlanTest, ToStringParseRoundTrips) {
  FaultPlan plan = chaos_plan(99);
  plan.partitions.push_back(net::PartitionWindow{2, 5, 25});
  plan.partitions.push_back(net::PartitionWindow{0, 40, 45});
  const FaultPlan reparsed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(reparsed, plan);
  // And the canonical form is a fixpoint.
  EXPECT_EQ(reparsed.to_string(), plan.to_string());
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("drop"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop=zzz"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("nonsense=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("part=1@9"), std::invalid_argument);
}

TEST(FaultInjectionTest, EveryMessageDeliveredExactlyOnce) {
  net::Transport transport(2, chaos_plan(7));
  constexpr int kMessages = 300;
  for (int k = 0; k < kMessages; ++k) {
    net::Message msg;
    msg.src = 0;
    msg.dst = 1;
    msg.type = net::MsgType::kUserData;
    msg.a = static_cast<std::uint64_t>(k);
    transport.send(std::move(msg));
  }
  transport.quiesce();
  for (int k = 0; k < kMessages; ++k) {
    auto msg = transport.service_box(1).pop();
    ASSERT_TRUE(msg.has_value()) << "message " << k << " never arrived";
    // Per-flow FIFO: one (src, dst) flow must come out in submission order
    // regardless of the delays individual messages picked up.
    EXPECT_EQ(msg->a, static_cast<std::uint64_t>(k));
  }
}

TEST(FaultInjectionTest, PerFlowFifoSurvivesConcurrentSenders) {
  net::Transport transport(4, chaos_plan(21));
  constexpr int kPerSender = 150;
  std::vector<std::thread> senders;
  for (int src = 0; src < 3; ++src) {
    senders.emplace_back([&, src] {
      for (int k = 0; k < kPerSender; ++k) {
        net::Message msg;
        msg.src = src;
        msg.dst = 3;
        msg.type = net::MsgType::kUserData;
        msg.a = static_cast<std::uint64_t>(k);
        transport.send(std::move(msg));
      }
    });
  }
  for (auto& t : senders) t.join();
  transport.quiesce();

  std::vector<std::uint64_t> next(3, 0);
  for (int k = 0; k < 3 * kPerSender; ++k) {
    auto msg = transport.service_box(3).pop();
    ASSERT_TRUE(msg.has_value());
    ASSERT_GE(msg->src, 0);
    ASSERT_LT(msg->src, 3);
    EXPECT_EQ(msg->a, next[static_cast<std::size_t>(msg->src)])
        << "flow " << msg->src << " reordered";
    ++next[static_cast<std::size_t>(msg->src)];
  }
}

TEST(FaultInjectionTest, DecisionChainsAreDeterministic) {
  // Two transports fed the identical message sequence under the same plan
  // must absorb the identical faults — that is the replay guarantee
  // fuzz_align's repro lines depend on.
  const auto run_once = [] {
    net::Transport transport(3, chaos_plan(1234));
    for (int k = 0; k < 400; ++k) {
      net::Message msg;
      msg.src = k % 3;
      msg.dst = (k + 1) % 3;
      msg.type = (k % 2) ? net::MsgType::kUserData : net::MsgType::kGetPage;
      msg.a = static_cast<std::uint64_t>(k);
      transport.send(std::move(msg));
    }
    transport.quiesce();
    return transport.fault_counters();
  };
  const net::FaultCounters a = run_once();
  const net::FaultCounters b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.total(), 0u) << "plan injected nothing; the test is vacuous";
}

TEST(FaultInjectionTest, DifferentSeedsChangeTheFaultPattern) {
  const auto counters_for = [](std::uint64_t seed) {
    net::Transport transport(2, chaos_plan(seed));
    for (int k = 0; k < 400; ++k) {
      net::Message msg;
      msg.src = 0;
      msg.dst = 1;
      msg.type = net::MsgType::kUserData;
      transport.send(std::move(msg));
    }
    transport.quiesce();
    return transport.fault_counters();
  };
  EXPECT_NE(counters_for(1), counters_for(2));
}

TEST(FaultInjectionTest, PartitionWindowStallsAndCounts) {
  FaultPlan plan;
  plan.seed = 5;
  plan.partitions.push_back(net::PartitionWindow{1, 0, 20});
  net::Transport transport(2, plan);
  ASSERT_TRUE(plan.enabled());
  net::Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.type = net::MsgType::kUserData;
  const auto t0 = std::chrono::steady_clock::now();
  transport.send(std::move(msg));
  auto got = transport.service_box(1).pop();
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(got.has_value());
  EXPECT_GE(waited, std::chrono::milliseconds(5));
  EXPECT_EQ(transport.fault_counters().partition_stalls, 1u);
}

TEST(FaultInjectionTest, DsmRunUnderChaosStaysCorrect) {
  dsm::DsmConfig cfg;
  cfg.page_bytes = 256;
  cfg.faults = chaos_plan(3);
  cfg.retry.timeout_us = 1500;  // exercise the reply-timeout path too
  dsm::Cluster cluster(4, cfg);
  const dsm::GlobalAddr counter = cluster.alloc(sizeof(std::int64_t));

  constexpr int kIncrements = 25;
  cluster.run([&](dsm::Node& node) {
    node.barrier();
    for (int k = 0; k < kIncrements; ++k) {
      node.lock(0);
      node.write<std::int64_t>(counter,
                               node.read<std::int64_t>(counter) + 1);
      node.unlock(0);
    }
    node.barrier();
  });

  std::int64_t total = 0;
  cluster.run([&](dsm::Node& node) {
    if (node.id() == 0) total = node.read<std::int64_t>(counter);
  });
  EXPECT_EQ(total, 4 * kIncrements);
  const dsm::DsmStats stats = cluster.stats();
  EXPECT_GT(stats.faults.total(), 0u) << "no faults fired; raise the rates";
}

TEST(FaultInjectionTest, RetryLayerRetransmitsIdempotentRequests) {
  // A partitioned home node makes page fetches exceed the tiny timeout, so
  // the requester must retransmit and then discard the stale duplicates.
  dsm::DsmConfig cfg;
  cfg.page_bytes = 128;
  cfg.faults.seed = 11;
  cfg.faults.partitions.push_back(net::PartitionWindow{0, 0, 15});
  cfg.retry.timeout_us = 500;
  cfg.retry.max_retries = 4;
  cfg.retry.backoff_us = 200;
  dsm::Cluster cluster(2, cfg);
  const dsm::GlobalAddr addr = cluster.alloc(64, /*home=*/0);

  cluster.run([&](dsm::Node& node) {
    if (node.id() == 1) {
      // This page fetch lands inside the partition window, so the reply
      // overshoots the 500us timeout and the request must be retransmitted.
      EXPECT_EQ(node.read<std::int32_t>(addr), 0);
    }
    node.barrier();
    if (node.id() == 0) node.write<std::int32_t>(addr, 41);
    node.barrier();
    EXPECT_EQ(node.read<std::int32_t>(addr), 41);
    node.barrier();
  });

  const dsm::NodeStats totals = cluster.stats().total_node();
  EXPECT_GT(totals.request_timeouts, 0u);
  EXPECT_GT(totals.request_retries, 0u);
}

TEST(FaultInjectionTest, BatchedPlaneSurvivesChaosWithCountersLive) {
  // The full coalesced data plane (diff batches, bulk fetches, read-ahead)
  // under drops/delays/reorders/duplicates: kDiffBatch and kGetPages are
  // idempotent, so retransmits and duplicate replies must be harmless.
  dsm::DsmConfig cfg;
  cfg.page_bytes = 128;
  cfg.comm = dsm::CommConfig{};
  cfg.comm.prefetch_pages = 4;
  cfg.faults = chaos_plan(9);
  cfg.retry.timeout_us = 1500;
  constexpr int kPages = 12;
  dsm::Cluster cluster(2, cfg);
  const dsm::GlobalAddr arr = cluster.alloc(kPages * 128, /*home=*/0);

  std::atomic<int> mismatches{0};
  cluster.run([&](dsm::Node& node) {
    if (node.id() == 1) {
      // Dirty every page so the release ships one multi-page diff batch.
      for (int pgi = 0; pgi < kPages; ++pgi) {
        node.write<int>(arr + static_cast<dsm::GlobalAddr>(pgi) * 128,
                        pgi + 1);
      }
    }
    node.barrier();
    // Sequential scans on both nodes drive bulk fetch and read-ahead.
    for (int pgi = 0; pgi < kPages; ++pgi) {
      if (node.read<int>(arr + static_cast<dsm::GlobalAddr>(pgi) * 128) !=
          pgi + 1) {
        ++mismatches;
      }
    }
    node.barrier();
  });
  EXPECT_EQ(mismatches, 0);
  const dsm::DsmStats stats = cluster.stats();
  EXPECT_GT(stats.node[1].diff_batches_sent, 0u);
  EXPECT_GT(stats.faults.total(), 0u) << "no faults fired; raise the rates";
}

TEST(FaultInjectionTest, OracleMatchesUnderEveryPlanWithBatchingOnAndOff) {
  // The acceptance matrix of the data plane: every standard fault plan
  // (drop/retry, reorder, delay, chaos+partition) plus a duplicate-heavy
  // plan, each run with the legacy plane and with batching+prefetch.  The
  // DSM-backed strategies must reproduce serial SW bit-for-bit either way.
  dsm::CommConfig legacy;
  legacy.batch_diffs = false;
  legacy.bulk_fetch = false;
  legacy.prefetch_pages = 0;
  dsm::CommConfig batched;  // defaults: batch + bulk fetch
  batched.prefetch_pages = 2;

  std::vector<net::FaultPlan> plans = testing::standard_fault_plans(31);
  net::FaultPlan duplicates;
  duplicates.seed = 35;
  duplicates.duplicate_rate = 0.4;
  plans.push_back(duplicates);

  for (const dsm::CommConfig& comm : {legacy, batched}) {
    for (const net::FaultPlan& plan : plans) {
      testing::OracleCase c;
      c.seed = 23;
      c.length_s = c.length_t = 256;
      c.n_regions = 2;
      c.nprocs = 2;
      c.retry.timeout_us = 2000;
      c.comm = comm;
      c.faults = plan;
      const testing::OracleVerdict v = testing::run_differential(
          c, testing::kWavefront | testing::kBlocked);
      EXPECT_TRUE(v.ok) << c.to_string() << "\n" << v.summary();
    }
  }
}

TEST(ClusterFailureTest, SingleNodeFailureRethrowsOriginalType) {
  dsm::Cluster cluster(3);
  if (cluster.config().backend == dsm::Backend::kThreads) {
    EXPECT_THROW(cluster.run([](dsm::Node& node) {
                   if (node.id() == 1) throw std::invalid_argument("just me");
                 }),
                 std::invalid_argument);
  } else {
    // A child process can only ship the message across the socket, not the
    // exception object; the type degrades to runtime_error but the
    // diagnostic must survive.
    try {
      cluster.run([](dsm::Node& node) {
        if (node.id() == 1) throw std::invalid_argument("just me");
      });
      FAIL() << "run() should have thrown";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("just me"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ClusterFailureTest, Node0FailureRethrowsOriginalTypeOnBothBackends) {
  // Node 0 runs in the host address space under both backends, so its
  // exception object is preserved end to end.
  dsm::Cluster cluster(3);
  EXPECT_THROW(cluster.run([](dsm::Node& node) {
                 if (node.id() == 0) throw std::invalid_argument("me first");
               }),
               std::invalid_argument);
}

TEST(ClusterFailureTest, MultiNodeFailureAggregatesEveryDiagnostic) {
  dsm::Cluster cluster(3);
  try {
    cluster.run([](dsm::Node& node) {
      throw std::runtime_error("boom from node " +
                               std::to_string(node.id()));
    });
    FAIL() << "run() should have thrown";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3 node programs failed"), std::string::npos) << what;
    for (int n = 0; n < 3; ++n) {
      EXPECT_NE(what.find("boom from node " + std::to_string(n)),
                std::string::npos)
          << what;
    }
  }
}

TEST(MailboxTest, PopForDistinguishesTimeoutFromClose) {
  net::Mailbox box;
  bool closed = false;
  EXPECT_FALSE(
      box.pop_for(std::chrono::microseconds(1000), &closed).has_value());
  EXPECT_FALSE(closed);  // timed out, still open

  net::Message msg;
  msg.a = 77;
  box.push(std::move(msg));
  const auto got = box.pop_for(std::chrono::microseconds(1000), &closed);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->a, 77u);

  box.close();
  closed = false;
  EXPECT_FALSE(
      box.pop_for(std::chrono::microseconds(1000), &closed).has_value());
  EXPECT_TRUE(closed);
}

}  // namespace
}  // namespace gdsm
