#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sw/full_matrix.h"
#include "util/args.h"
#include "util/fasta.h"
#include "util/genome.h"
#include "util/rng.h"
#include "util/sequence.h"
#include "util/table.h"

namespace gdsm {
namespace {

TEST(Alphabet, EncodeDecodeRoundTrip) {
  for (char c : std::string("ACGT")) {
    EXPECT_EQ(decode_base(encode_base(c)), c);
  }
  EXPECT_EQ(encode_base('a'), kBaseA);
  EXPECT_EQ(encode_base('t'), kBaseT);
  EXPECT_EQ(encode_base('N'), kBaseN);
  EXPECT_EQ(encode_base('X'), kBaseN);
  EXPECT_EQ(decode_base(kBaseN), 'N');
}

TEST(Alphabet, Complement) {
  EXPECT_EQ(complement(kBaseA), kBaseT);
  EXPECT_EQ(complement(kBaseT), kBaseA);
  EXPECT_EQ(complement(kBaseC), kBaseG);
  EXPECT_EQ(complement(kBaseG), kBaseC);
  EXPECT_EQ(complement(kBaseN), kBaseN);
}

TEST(Alphabet, StrictBase) {
  EXPECT_TRUE(is_strict_base('A'));
  EXPECT_TRUE(is_strict_base('g'));
  EXPECT_FALSE(is_strict_base('N'));
  EXPECT_FALSE(is_strict_base('-'));
}

TEST(Sequence, BasicAccessors) {
  const Sequence s("seq1", "ACGTN");
  EXPECT_EQ(s.name(), "seq1");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[0], kBaseA);
  EXPECT_EQ(s[4], kBaseN);
  EXPECT_EQ(s.text(), "ACGTN");
}

TEST(Sequence, SliceAndReverse) {
  const Sequence s("x", "ACGTACGT");
  EXPECT_EQ(s.slice(2, 6).text(), "GTAC");
  EXPECT_EQ(s.reversed().text(), "TGCATGCA");
  EXPECT_EQ(s.reverse_complement().text(), "ACGTACGT");
  EXPECT_THROW(s.slice(5, 3), std::out_of_range);
  EXPECT_THROW(s.slice(0, 9), std::out_of_range);
}

TEST(Sequence, EqualityIgnoresName) {
  EXPECT_EQ(Sequence("a", "ACGT"), Sequence("b", "ACGT"));
  EXPECT_FALSE(Sequence("a", "ACGT") == Sequence("a", "ACGA"));
}

TEST(Fasta, RoundTrip) {
  std::vector<Sequence> seqs{Sequence("alpha", "ACGTACGTACGT"),
                             Sequence("beta", "TTTTGGGGCCCCAAAA")};
  std::ostringstream out;
  write_fasta(out, seqs, /*width=*/5);
  std::istringstream in(out.str());
  const auto back = read_fasta(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name(), "alpha");
  EXPECT_EQ(back[0].text(), "ACGTACGTACGT");
  EXPECT_EQ(back[1].name(), "beta");
  EXPECT_EQ(back[1].text(), "TTTTGGGGCCCCAAAA");
}

TEST(Fasta, HeaderNameStopsAtWhitespace) {
  std::istringstream in(">chr1 homo sapiens\nACGT\n");
  const auto seqs = read_fasta(in);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].name(), "chr1");
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n>late\nACGT\n");
  EXPECT_THROW(read_fasta(in), std::runtime_error);
}

// ----------------------------------------------- streaming FASTA reader --
// The chunked FastaStreamReader must parse byte-for-byte like the
// line-oriented read_fasta oracle; these tests feed both paths the same
// file and compare records.

namespace {

/// Writes `text` to a temp file, parses it with both the streaming path and
/// the istream oracle, and expects identical records.
void expect_stream_matches_oracle(const std::string& text,
                                  const std::string& tag) {
  const std::string path = ::testing::TempDir() + "fasta_stream_" + tag;
  {
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  std::istringstream in(text);
  const std::vector<Sequence> oracle = read_fasta(in);
  const std::vector<Sequence> streamed = read_fasta_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(streamed.size(), oracle.size()) << tag;
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(streamed[i].name(), oracle[i].name()) << tag << " record " << i;
    EXPECT_EQ(streamed[i].text(), oracle[i].text()) << tag << " record " << i;
  }
}

}  // namespace

TEST(FastaStream, MatchesOracleOnMessyInput) {
  expect_stream_matches_oracle(
      ">a first\nACGT\nacgt\n\n;comment line\n>b\tsecond\n  AC GT \nNNN\n>c\n",
      "messy");
  expect_stream_matches_oracle(">crlf desc\r\nACGT\r\nTTTT\r\n>two\r\nGG\r\n",
                               "crlf");
  expect_stream_matches_oracle(">no_trailing_newline\nACGTAC", "notrail");
  expect_stream_matches_oracle(">trailing_cr_eof\nACGT\r", "creof");
  expect_stream_matches_oracle("", "empty");
  expect_stream_matches_oracle(";only a comment\n", "commentonly");
}

TEST(FastaStream, RecordsSpanReadChunks) {
  // One record much larger than the 64 KiB read buffer plus many small
  // records, so headers and sequence lines land on chunk boundaries.
  Rng rng(7);
  std::string text = ">big whole-buffer record\n";
  const std::string big = random_dna(300'000, rng).text();
  for (std::size_t i = 0; i < big.size(); i += 70) {
    text += big.substr(i, 70);
    text += '\n';
  }
  for (int k = 0; k < 50; ++k) {
    text += ">small" + std::to_string(k) + "\nACGTACGTAA\n";
  }
  expect_stream_matches_oracle(text, "chunks");
}

TEST(FastaStream, RejectsDataBeforeHeaderAndMissingFile) {
  const std::string path = ::testing::TempDir() + "fasta_stream_badlead";
  {
    std::ofstream out(path, std::ios::binary);
    out << "ACGT\n>late\nACGT\n";
  }
  EXPECT_THROW(read_fasta_file(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(read_fasta_file(path), std::runtime_error);  // now absent
  EXPECT_THROW(read_fasta_file(path, /*stream=*/false), std::runtime_error);
}

TEST(FastaStream, SlurpFlagTakesTheLegacyPath) {
  const std::string path = ::testing::TempDir() + "fasta_stream_slurp";
  {
    std::ofstream out(path, std::ios::binary);
    out << ">x one\nACGT\n>y\nTTGG\n";
  }
  const auto streamed = read_fasta_file(path, /*stream=*/true);
  const auto slurped = read_fasta_file(path, /*stream=*/false);
  std::remove(path.c_str());
  ASSERT_EQ(streamed.size(), slurped.size());
  for (std::size_t i = 0; i < slurped.size(); ++i) {
    EXPECT_EQ(streamed[i].name(), slurped[i].name());
    EXPECT_EQ(streamed[i].text(), slurped[i].text());
  }
}

TEST(FastaStream, PullInterfaceYieldsOneRecordAtATime) {
  const std::string path = ::testing::TempDir() + "fasta_stream_pull";
  {
    std::ofstream out(path, std::ios::binary);
    out << ">one\nAC\n>two\nGT\n";
  }
  FastaStreamReader reader(path);
  Sequence s;
  ASSERT_TRUE(reader.next(s));
  EXPECT_EQ(s.name(), "one");
  EXPECT_EQ(s.text(), "AC");
  ASSERT_TRUE(reader.next(s));
  EXPECT_EQ(s.name(), "two");
  EXPECT_EQ(s.text(), "GT");
  EXPECT_FALSE(reader.next(s));
  std::remove(path.c_str());
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Rng a2(1);
  for (int i = 0; i < 10; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(4);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Genome, RandomDnaHasOnlyStrictBases) {
  Rng rng(5);
  const Sequence s = random_dna(1000, rng);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_LT(s[i], 4);
}

TEST(Genome, MutateRates) {
  Rng rng(6);
  const Sequence src = random_dna(20000, rng);
  const Sequence mut = mutate(src, 0.1, 0.0, rng);
  ASSERT_EQ(mut.size(), src.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < src.size(); ++i) diffs += (src[i] != mut[i]);
  EXPECT_NEAR(static_cast<double>(diffs) / src.size(), 0.1, 0.02);
}

TEST(Genome, PlantedRegionsAreWhereClaimed) {
  HomologousPairSpec spec;
  spec.length_s = 20000;
  spec.length_t = 20000;
  spec.n_regions = 8;
  spec.seed = 99;
  const HomologousPair pair = make_homologous_pair(spec);
  ASSERT_EQ(pair.regions.size(), 8u);
  for (const auto& r : pair.regions) {
    ASSERT_LT(r.s_begin, r.s_end);
    ASSERT_LE(r.s_end, pair.s.size());
    ASSERT_LT(r.t_begin, r.t_end);
    ASSERT_LE(r.t_end, pair.t.size());
    // The two copies descend from one ancestor with ~5% total divergence.
    // Indels shift positions, so homology is checked by alignment score,
    // not positional identity: a global alignment of the two copies must
    // score far above what unrelated DNA achieves (which is negative at
    // +1/-1/-2 scoring).
    const std::size_t len = std::min(r.s_end - r.s_begin, r.t_end - r.t_begin);
    const int score = needleman_wunsch(pair.s.slice(r.s_begin, r.s_end),
                                       pair.t.slice(r.t_begin, r.t_end))
                          .score;
    EXPECT_GT(score, static_cast<int>(len) / 2)
        << "planted region does not look homologous";
  }
}

TEST(Genome, Deterministic) {
  HomologousPairSpec spec;
  spec.length_s = 5000;
  spec.length_t = 5000;
  spec.n_regions = 3;
  spec.seed = 1234;
  const auto a = make_homologous_pair(spec);
  const auto b = make_homologous_pair(spec);
  EXPECT_EQ(a.s, b.s);
  EXPECT_EQ(a.t, b.t);
}

TEST(Args, ParsesForms) {
  const char* argv[] = {"prog", "--size=50000", "--procs", "8",
                        "--verbose", "input.fa"};
  const Args args(6, argv, {"procs"});
  EXPECT_EQ(args.get_int("size", 0), 50000);
  EXPECT_EQ(args.get_int("procs", 0), 8);
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.get_bool("quiet"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.fa");
}

TEST(Args, UnknownKeys) {
  const char* argv[] = {"prog", "--foo=1", "--bar=2"};
  const Args args(3, argv);
  const auto unknown = args.unknown_keys({"foo"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "bar");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_f(1107.019, 2), "1107.02");
  EXPECT_EQ(fmt_f(7.287, 2), "7.29");
  EXPECT_EQ(fmt_sec(175295.4), "175,295");
  EXPECT_EQ(fmt_sec(296), "296");
}

TEST(Table, PrintAligned) {
  TextTable t("Demo");
  t.set_header({"Size", "Serial", "8 proc"});
  t.add_row({"50K x 50K", "3461", "1107.02"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== Demo =="), std::string::npos);
  EXPECT_NE(text.find("1107.02"), std::string::npos);
}

}  // namespace
}  // namespace gdsm
