#include <gtest/gtest.h>

#include <sstream>

#include "sw/full_matrix.h"
#include "util/args.h"
#include "util/fasta.h"
#include "util/genome.h"
#include "util/rng.h"
#include "util/sequence.h"
#include "util/table.h"

namespace gdsm {
namespace {

TEST(Alphabet, EncodeDecodeRoundTrip) {
  for (char c : std::string("ACGT")) {
    EXPECT_EQ(decode_base(encode_base(c)), c);
  }
  EXPECT_EQ(encode_base('a'), kBaseA);
  EXPECT_EQ(encode_base('t'), kBaseT);
  EXPECT_EQ(encode_base('N'), kBaseN);
  EXPECT_EQ(encode_base('X'), kBaseN);
  EXPECT_EQ(decode_base(kBaseN), 'N');
}

TEST(Alphabet, Complement) {
  EXPECT_EQ(complement(kBaseA), kBaseT);
  EXPECT_EQ(complement(kBaseT), kBaseA);
  EXPECT_EQ(complement(kBaseC), kBaseG);
  EXPECT_EQ(complement(kBaseG), kBaseC);
  EXPECT_EQ(complement(kBaseN), kBaseN);
}

TEST(Alphabet, StrictBase) {
  EXPECT_TRUE(is_strict_base('A'));
  EXPECT_TRUE(is_strict_base('g'));
  EXPECT_FALSE(is_strict_base('N'));
  EXPECT_FALSE(is_strict_base('-'));
}

TEST(Sequence, BasicAccessors) {
  const Sequence s("seq1", "ACGTN");
  EXPECT_EQ(s.name(), "seq1");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[0], kBaseA);
  EXPECT_EQ(s[4], kBaseN);
  EXPECT_EQ(s.text(), "ACGTN");
}

TEST(Sequence, SliceAndReverse) {
  const Sequence s("x", "ACGTACGT");
  EXPECT_EQ(s.slice(2, 6).text(), "GTAC");
  EXPECT_EQ(s.reversed().text(), "TGCATGCA");
  EXPECT_EQ(s.reverse_complement().text(), "ACGTACGT");
  EXPECT_THROW(s.slice(5, 3), std::out_of_range);
  EXPECT_THROW(s.slice(0, 9), std::out_of_range);
}

TEST(Sequence, EqualityIgnoresName) {
  EXPECT_EQ(Sequence("a", "ACGT"), Sequence("b", "ACGT"));
  EXPECT_FALSE(Sequence("a", "ACGT") == Sequence("a", "ACGA"));
}

TEST(Fasta, RoundTrip) {
  std::vector<Sequence> seqs{Sequence("alpha", "ACGTACGTACGT"),
                             Sequence("beta", "TTTTGGGGCCCCAAAA")};
  std::ostringstream out;
  write_fasta(out, seqs, /*width=*/5);
  std::istringstream in(out.str());
  const auto back = read_fasta(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name(), "alpha");
  EXPECT_EQ(back[0].text(), "ACGTACGTACGT");
  EXPECT_EQ(back[1].name(), "beta");
  EXPECT_EQ(back[1].text(), "TTTTGGGGCCCCAAAA");
}

TEST(Fasta, HeaderNameStopsAtWhitespace) {
  std::istringstream in(">chr1 homo sapiens\nACGT\n");
  const auto seqs = read_fasta(in);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].name(), "chr1");
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n>late\nACGT\n");
  EXPECT_THROW(read_fasta(in), std::runtime_error);
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool differs = false;
  Rng a2(1);
  for (int i = 0; i < 10; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(4);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Genome, RandomDnaHasOnlyStrictBases) {
  Rng rng(5);
  const Sequence s = random_dna(1000, rng);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_LT(s[i], 4);
}

TEST(Genome, MutateRates) {
  Rng rng(6);
  const Sequence src = random_dna(20000, rng);
  const Sequence mut = mutate(src, 0.1, 0.0, rng);
  ASSERT_EQ(mut.size(), src.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < src.size(); ++i) diffs += (src[i] != mut[i]);
  EXPECT_NEAR(static_cast<double>(diffs) / src.size(), 0.1, 0.02);
}

TEST(Genome, PlantedRegionsAreWhereClaimed) {
  HomologousPairSpec spec;
  spec.length_s = 20000;
  spec.length_t = 20000;
  spec.n_regions = 8;
  spec.seed = 99;
  const HomologousPair pair = make_homologous_pair(spec);
  ASSERT_EQ(pair.regions.size(), 8u);
  for (const auto& r : pair.regions) {
    ASSERT_LT(r.s_begin, r.s_end);
    ASSERT_LE(r.s_end, pair.s.size());
    ASSERT_LT(r.t_begin, r.t_end);
    ASSERT_LE(r.t_end, pair.t.size());
    // The two copies descend from one ancestor with ~5% total divergence.
    // Indels shift positions, so homology is checked by alignment score,
    // not positional identity: a global alignment of the two copies must
    // score far above what unrelated DNA achieves (which is negative at
    // +1/-1/-2 scoring).
    const std::size_t len = std::min(r.s_end - r.s_begin, r.t_end - r.t_begin);
    const int score = needleman_wunsch(pair.s.slice(r.s_begin, r.s_end),
                                       pair.t.slice(r.t_begin, r.t_end))
                          .score;
    EXPECT_GT(score, static_cast<int>(len) / 2)
        << "planted region does not look homologous";
  }
}

TEST(Genome, Deterministic) {
  HomologousPairSpec spec;
  spec.length_s = 5000;
  spec.length_t = 5000;
  spec.n_regions = 3;
  spec.seed = 1234;
  const auto a = make_homologous_pair(spec);
  const auto b = make_homologous_pair(spec);
  EXPECT_EQ(a.s, b.s);
  EXPECT_EQ(a.t, b.t);
}

TEST(Args, ParsesForms) {
  const char* argv[] = {"prog", "--size=50000", "--procs", "8",
                        "--verbose", "input.fa"};
  const Args args(6, argv, {"procs"});
  EXPECT_EQ(args.get_int("size", 0), 50000);
  EXPECT_EQ(args.get_int("procs", 0), 8);
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.get_bool("quiet"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.fa");
}

TEST(Args, UnknownKeys) {
  const char* argv[] = {"prog", "--foo=1", "--bar=2"};
  const Args args(3, argv);
  const auto unknown = args.unknown_keys({"foo"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "bar");
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_f(1107.019, 2), "1107.02");
  EXPECT_EQ(fmt_f(7.287, 2), "7.29");
  EXPECT_EQ(fmt_sec(175295.4), "175,295");
  EXPECT_EQ(fmt_sec(296), "296");
}

TEST(Table, PrintAligned) {
  TextTable t("Demo");
  t.set_header({"Size", "Serial", "8 proc"});
  t.add_row({"50K x 50K", "3461", "1107.02"});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("== Demo =="), std::string::npos);
  EXPECT_NE(text.find("1107.02"), std::string::npos);
}

}  // namespace
}  // namespace gdsm
