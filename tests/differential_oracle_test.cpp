// The cross-strategy differential oracle (src/testing): every parallel
// strategy must reproduce its serial reference bit-for-bit, with and without
// injected interconnect faults.  This is the acceptance suite of the fault
// layer: all four strategies under every standard fault plan.
#include <gtest/gtest.h>

#include <string>

#include "testing/oracle.h"

namespace gdsm {
namespace {

using testing::OracleCase;
using testing::OracleVerdict;

OracleCase small_case(std::uint64_t seed) {
  OracleCase c;
  c.seed = seed;
  c.length_s = 400;
  c.length_t = 400;
  c.n_regions = 3;
  c.nprocs = 4;
  c.retry.timeout_us = 2000;  // keep the retry layer in play under faults
  return c;
}

TEST(DifferentialOracleTest, AllStrategiesMatchSerialWithoutFaults) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const OracleVerdict v = run_differential(small_case(seed));
    EXPECT_TRUE(v.ok) << "seed " << seed << ":\n" << v.summary();
    EXPECT_EQ(v.outcomes.size(), 4u);
    EXPECT_GT(v.serial_best, 0) << "seed " << seed << " has no signal";
    EXPECT_GT(v.serial_candidates, 0u);
  }
}

struct PlanCase {
  std::uint64_t seed;
  std::size_t plan_index;  ///< into standard_fault_plans
};

class OracleUnderFaults : public ::testing::TestWithParam<PlanCase> {};

// The ISSUE's acceptance matrix: all four strategies, >= 3 distinct seeded
// fault plans (drop/retry, reorder, delay, plus the combined plan), exact
// score and region-set agreement with the serial references.
TEST_P(OracleUnderFaults, MatchesSerialReferences) {
  const auto& [seed, plan_index] = GetParam();
  OracleCase c = small_case(seed);
  const auto plans = testing::standard_fault_plans(seed * 1000);
  ASSERT_LT(plan_index, plans.size());
  c.faults = plans[plan_index];
  ASSERT_TRUE(c.faults.enabled());

  const OracleVerdict v = run_differential(c);
  EXPECT_TRUE(v.ok) << c.to_string() << "\n" << v.summary();

  // The plan must have actually perturbed the run for at least one strategy,
  // otherwise this acceptance test proves nothing.
  std::uint64_t injected = 0;
  for (const auto& o : v.outcomes) injected += o.faults.total();
  EXPECT_GT(injected, 0u) << "plan " << c.faults.to_string()
                          << " never fired";
}

std::string plan_case_name(const ::testing::TestParamInfo<PlanCase>& info) {
  static constexpr const char* kPlanNames[] = {"drop", "reorder", "delay",
                                               "chaos"};
  return std::string(kPlanNames[info.param.plan_index]) + "_seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    FaultMatrix, OracleUnderFaults,
    ::testing::Values(PlanCase{1, 0}, PlanCase{1, 1}, PlanCase{1, 2},
                      PlanCase{1, 3}, PlanCase{2, 0}, PlanCase{2, 1},
                      PlanCase{2, 2}, PlanCase{2, 3}),
    plan_case_name);

TEST(DifferentialOracleTest, MaskRestrictsWhichStrategiesRun) {
  const OracleVerdict v =
      run_differential(small_case(5), testing::kBlockedMp);
  ASSERT_EQ(v.outcomes.size(), 1u);
  EXPECT_EQ(v.outcomes[0].name, "blocked_mp");
  EXPECT_TRUE(v.ok) << v.summary();
}

TEST(DifferentialOracleTest, MinimizeKeepsPassingCasesUntouched) {
  const OracleCase c = small_case(3);
  const OracleCase m = testing::minimize(c);
  EXPECT_EQ(m.length_s, c.length_s);
  EXPECT_EQ(m.n_regions, c.n_regions);
  EXPECT_EQ(m.nprocs, c.nprocs);
}

TEST(DifferentialOracleTest, CaseDescribesItself) {
  OracleCase c = small_case(9);
  c.faults = testing::standard_fault_plans(9)[0];
  const std::string repro = c.to_string();
  EXPECT_NE(repro.find("seed=9"), std::string::npos);
  EXPECT_NE(repro.find("faults=seed="), std::string::npos);
  EXPECT_NE(repro.find("drop=0.2"), std::string::npos);
  // The embedded plan spec must round-trip through the parser.
  const auto at = repro.find("faults=");
  const net::FaultPlan reparsed =
      net::FaultPlan::parse(repro.substr(at + 7));
  EXPECT_EQ(reparsed, c.faults);
}

}  // namespace
}  // namespace gdsm
