// Mini-BlastN baseline tests.
#include <gtest/gtest.h>

#include "blast/blastn.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm::blast {
namespace {

TEST(Blastn, FindsExactSharedSegment) {
  Rng rng(111);
  const Sequence shared = random_dna(120, rng, "shared");
  const Sequence s("s", random_dna(400, rng).text() + shared.text() +
                            random_dna(300, rng).text());
  const Sequence t("t", random_dna(150, rng).text() + shared.text() +
                            random_dna(500, rng).text());
  const auto hits = blastn(s, t);
  ASSERT_FALSE(hits.empty());
  const BlastHit& top = hits[0];
  // The shared block sits at s[401..520], t[151..270] (1-based).
  EXPECT_LE(top.s_begin, 401u + 5);
  EXPECT_GE(top.s_end, 520u - 5);
  EXPECT_LE(top.t_begin, 151u + 5);
  EXPECT_GE(top.t_end, 270u - 5);
  EXPECT_GE(top.score, 100);
}

TEST(Blastn, FindsMutatedHomologies) {
  HomologousPairSpec spec;
  spec.length_s = 5000;
  spec.length_t = 5000;
  spec.n_regions = 3;
  spec.region_len_mean = 300;
  spec.region_len_spread = 30;
  spec.seed = 112;
  const HomologousPair pair = make_homologous_pair(spec);
  const auto hits = blastn(pair.s, pair.t);
  for (const PlantedRegion& r : pair.regions) {
    const bool covered = std::any_of(hits.begin(), hits.end(), [&](const BlastHit& h) {
      return h.s_end >= r.s_begin + 1 && h.s_begin <= r.s_end &&
             h.t_end >= r.t_begin + 1 && h.t_begin <= r.t_end;
    });
    EXPECT_TRUE(covered) << "planted region not found by blastn";
  }
}

TEST(Blastn, MostlyQuietOnUnrelatedSequences) {
  Rng rng(113);
  const Sequence s = random_dna(3000, rng, "s");
  const Sequence t = random_dna(3000, rng, "t");
  const auto hits = blastn(s, t);
  // Random 3 kBP sequences share 11-mers only rarely; with the default
  // report threshold the hit list stays (nearly) empty.
  EXPECT_LE(hits.size(), 2u);
}

TEST(Blastn, HitsAreSortedAndValid) {
  HomologousPairSpec spec;
  spec.length_s = 4000;
  spec.length_t = 4000;
  spec.n_regions = 4;
  spec.seed = 114;
  const HomologousPair pair = make_homologous_pair(spec);
  const auto hits = blastn(pair.s, pair.t);
  ASSERT_GE(hits.size(), 2u);
  for (std::size_t k = 0; k < hits.size(); ++k) {
    const BlastHit& h = hits[k];
    EXPECT_GE(h.s_begin, 1u);
    EXPECT_LE(h.s_end, pair.s.size());
    EXPECT_LE(h.s_begin, h.s_end);
    EXPECT_GE(h.t_begin, 1u);
    EXPECT_LE(h.t_end, pair.t.size());
    EXPECT_LE(h.t_begin, h.t_end);
    if (k > 0) EXPECT_GE(hits[k - 1].score, h.score);
  }
}

TEST(Blastn, ShortInputsYieldNothing) {
  const Sequence s("s", "ACGTACGT");  // below the word size
  EXPECT_TRUE(blastn(s, s).empty());
}

TEST(Blastn, WordSizeParameterRespected) {
  Rng rng(115);
  const Sequence shared = random_dna(40, rng, "shared");
  const Sequence s("s", random_dna(200, rng).text() + shared.text());
  const Sequence t("t", shared.text() + random_dna(200, rng).text());
  BlastParams p;
  p.word_size = 7;
  p.min_score = 20;
  const auto hits = blastn(s, t, p);
  EXPECT_FALSE(hits.empty());
}

}  // namespace
}  // namespace gdsm::blast
