// Protein alignment tests: alphabet, BLOSUM62 ground truths, Gotoh local
// and global behaviour.
#include <gtest/gtest.h>

#include "sw/protein.h"

namespace gdsm {
namespace {

TEST(ProteinAlphabet, EncodeDecodeRoundTrip) {
  const std::string residues = "ARNDCQEGHILKMFPSTWYV";
  for (char c : residues) {
    EXPECT_EQ(decode_amino_acid(encode_amino_acid(c)), c);
  }
  EXPECT_EQ(encode_amino_acid('a'), encode_amino_acid('A'));
  EXPECT_EQ(encode_amino_acid('B'), kAaX);
  EXPECT_EQ(encode_amino_acid('Z'), kAaX);
  EXPECT_EQ(decode_amino_acid(kAaX), 'X');
}

TEST(Blosum62, KnownEntries) {
  const auto& m = SubstitutionMatrix::blosum62();
  auto sc = [&](char a, char b) {
    return m.score(encode_amino_acid(a), encode_amino_acid(b));
  };
  EXPECT_EQ(sc('W', 'W'), 11);  // tryptophan self-score, the matrix maximum
  EXPECT_EQ(sc('A', 'A'), 4);
  EXPECT_EQ(sc('W', 'A'), -3);
  EXPECT_EQ(sc('I', 'L'), 2);  // conservative hydrophobic substitution
  EXPECT_EQ(sc('D', 'E'), 2);  // conservative acidic substitution
  EXPECT_EQ(sc('C', 'C'), 9);
  EXPECT_EQ(sc('G', 'W'), -2);
  EXPECT_EQ(sc('X', 'W'), -1);  // unknown residue
}

TEST(Blosum62, Symmetric) {
  const auto& m = SubstitutionMatrix::blosum62();
  for (int a = 0; a < kProteinAlphabetSize; ++a) {
    for (int b = 0; b < kProteinAlphabetSize; ++b) {
      EXPECT_EQ(m.score(static_cast<AminoAcid>(a), static_cast<AminoAcid>(b)),
                m.score(static_cast<AminoAcid>(b), static_cast<AminoAcid>(a)));
    }
  }
}

TEST(ProteinAlign, SelfAlignmentSumsDiagonal) {
  const ProteinSequence p("p", "MKTAYIAKQR");
  const Alignment al = protein_smith_waterman(p, p);
  int expected = 0;
  const auto& m = SubstitutionMatrix::blosum62();
  for (std::size_t k = 0; k < p.size(); ++k) expected += m.score(p[k], p[k]);
  EXPECT_EQ(al.score, expected);
  EXPECT_EQ(al.ops.size(), p.size());
}

TEST(ProteinAlign, LocalFindsConservedCore) {
  // Two proteins sharing a conserved core with different flanks.
  const ProteinSequence a("a", "GGGGGWWCDEHKWWGGGGG");
  const ProteinSequence b("b", "PPPWWCDEHKWWPPP");
  const Alignment al = protein_smith_waterman(a, b);
  EXPECT_GT(al.score, 40);  // W-rich core scores very high under BLOSUM62
  const auto lines = render_protein_alignment(al, a, b);
  EXPECT_NE(lines[1].find('W'), std::string::npos);  // identity midline
}

TEST(ProteinAlign, GlobalConsumesBothSequences) {
  const ProteinSequence a("a", "MKTAYIAK");
  const ProteinSequence b("b", "MKTAYK");
  const Alignment al = protein_needleman_wunsch(a, b);
  EXPECT_EQ(al.s_length(), a.size());
  EXPECT_EQ(al.t_length(), b.size());
  EXPECT_EQ(protein_alignment_score(al, a, b, SubstitutionMatrix::blosum62(),
                                    ProteinGaps{}),
            al.score);
}

TEST(ProteinAlign, AffineGapsCoalesce) {
  // A 3-residue deletion should cost one opening, not three.
  const ProteinSequence a("a", "MKTAYIAKQRQISFVK");
  const ProteinSequence b("b", "MKTAYIQRQISFVK");  // AK.. 2-residue deletion
  const Alignment al = protein_needleman_wunsch(a, b);
  int openings = 0;
  Op prev = Op::Diag;
  bool first = true;
  for (Op op : al.ops) {
    if (op != Op::Diag && (first || prev != op)) ++openings;
    prev = op;
    first = false;
  }
  EXPECT_EQ(openings, 1);
  EXPECT_EQ(protein_alignment_score(al, a, b, SubstitutionMatrix::blosum62(),
                                    ProteinGaps{}),
            al.score);
}

TEST(ProteinAlign, ConservativeSubstitutionBeatsGap) {
  // I<->L scores +2: the aligner must substitute, not gap around it.
  const ProteinSequence a("a", "WWWIWWW");
  const ProteinSequence b("b", "WWWLWWW");
  const Alignment al = protein_smith_waterman(a, b);
  EXPECT_EQ(al.ops.size(), 7u);
  for (Op op : al.ops) EXPECT_EQ(op, Op::Diag);
  const auto lines = render_protein_alignment(al, a, b);
  EXPECT_EQ(lines[1][3], '+');  // positive non-identity midline marker
}

TEST(ProteinAlign, EmptyAndUnrelated) {
  const ProteinSequence e("e", "");
  const ProteinSequence p("p", "WWWW");
  EXPECT_EQ(protein_smith_waterman(e, p).score, 0);
  EXPECT_EQ(protein_smith_waterman(p, e).score, 0);
  // Global of empty vs p: one gap run.
  const Alignment g = protein_needleman_wunsch(e, p);
  EXPECT_EQ(g.score, ProteinGaps{}.open + 4 * ProteinGaps{}.extend);
}

TEST(ProteinSequenceType, SliceAndText) {
  const ProteinSequence p("p", "MKTAYIAKQR");
  EXPECT_EQ(p.text(), "MKTAYIAKQR");
  EXPECT_EQ(p.slice(2, 6).text(), "TAYI");
  EXPECT_THROW(p.slice(8, 4), std::out_of_range);
}

}  // namespace
}  // namespace gdsm
