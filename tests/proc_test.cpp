// Process-backend tests (src/dsm/proc): explicit Backend::kProcess clusters
// regardless of GDSM_BACKEND, bit-identity against the thread backend and
// the serial reference, process-specific stats counters, space exhaustion,
// and — the no-hang guarantee — a child killed mid-run surfacing as a clean
// Cluster::run failure.
#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/wavefront.h"
#include "dsm/cluster.h"
#include "sw/heuristic_scan.h"
#include "testing/oracle.h"
#include "util/genome.h"

namespace gdsm::dsm {
namespace {

DsmConfig proc_cfg() {
  DsmConfig cfg;
  cfg.backend = Backend::kProcess;
  return cfg;
}

std::vector<int> read_back(Cluster& cluster, GlobalAddr base, std::size_t n) {
  std::vector<int> out(n, 0);
  cluster.run([&](Node& node) {
    if (node.id() == 0) {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = node.read<int>(base + i * sizeof(int));
      }
    }
  });
  return out;
}

TEST(ProcBackend, GlobalSpaceRunsPlacedAndBoundsAllocations) {
  DsmConfig cfg = proc_cfg();
  cfg.page_bytes = 4096;
  cfg.proc_space_bytes = 16 * 4096;
  Cluster cluster(2, cfg);
  EXPECT_EQ(cluster.config().backend, Backend::kProcess);
  (void)cluster.alloc(8 * 4096, 0);  // fits
  EXPECT_THROW(cluster.alloc(16 * 4096, 0), std::runtime_error);
}

TEST(ProcBackend, LockCounterCoherentAcrossProcesses) {
  Cluster cluster(4, proc_cfg());
  const GlobalAddr counter = cluster.alloc(sizeof(int), /*home=*/3);
  constexpr int kIters = 20;
  cluster.run([&](Node& node) {
    for (int k = 0; k < kIters; ++k) {
      node.lock(5);
      node.write<int>(counter, node.read<int>(counter) + 1);
      node.unlock(5);
    }
    node.barrier();
  });
  EXPECT_EQ(read_back(cluster, counter, 1)[0], 4 * kIters);
}

TEST(ProcBackend, MultipleWriterDiffsMergeAtHome) {
  // Disjoint slices of one page written by every process: the SIGSEGV
  // twin/diff path must merge all writers without false sharing.
  Cluster cluster(4, proc_cfg());
  constexpr int kInts = 64;  // per node
  const GlobalAddr arr = cluster.alloc(4 * kInts * sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    for (int i = 0; i < kInts; ++i) {
      node.write<int>(arr + (node.id() * kInts + i) * sizeof(int),
                      node.id() * 1000 + i);
    }
    node.barrier();
  });
  const std::vector<int> all =
      read_back(cluster, arr, static_cast<std::size_t>(4 * kInts));
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < kInts; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(p * kInts + i)], p * 1000 + i);
    }
  }
}

TEST(ProcBackend, StatsCarryProcessCountersAndBackendTag) {
  Cluster cluster(2, proc_cfg());
  const GlobalAddr x = cluster.alloc(sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    if (node.id() == 1) node.write<int>(x, 9);  // child: fault + twin + diff
    node.barrier();
  });
  const DsmStats stats = cluster.stats();
  EXPECT_EQ(stats.backend, Backend::kProcess);
  const NodeStats& child = stats.node[1];
  EXPECT_GE(child.segv_faults, 2u);  // read fault + write upgrade
  EXPECT_GE(child.read_faults, 1u);
  EXPECT_GE(child.write_faults, 1u);
  EXPECT_GE(child.twins_created, 1u);
  EXPECT_GE(child.pages_mapped, 1u);
  EXPECT_GE(child.pages_protected, 1u);
  EXPECT_GE(child.diffs_sent, 1u);
  // Every child message crosses the parent's socket plane.
  EXPECT_GT(stats.node[0].socket_bytes_sent, 0u);
  EXPECT_GT(stats.node[0].socket_bytes_received, 0u);
  EXPECT_GT(child.socket_bytes_sent, 0u);
  EXPECT_EQ(stats.total_node().peer_failures, 0u);
}

TEST(ProcBackend, ThreadBackendStatsStayZeroForProcessCounters) {
  DsmConfig cfg;
  cfg.backend = Backend::kThreads;
  Cluster cluster(2, cfg);
  const GlobalAddr x = cluster.alloc(sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    if (node.id() == 1) node.write<int>(x, 9);
    node.barrier();
  });
  const DsmStats stats = cluster.stats();
  EXPECT_EQ(stats.backend, Backend::kThreads);
  EXPECT_EQ(stats.total_node().segv_faults, 0u);
  EXPECT_EQ(stats.total_node().twins_created, 0u);
  EXPECT_EQ(stats.total_node().socket_bytes_sent, 0u);
}

TEST(ProcBackend, WavefrontBitIdenticalToThreadsAndSerial) {
  testing::OracleCase c;
  c.seed = 20260808;
  c.length_s = 400;
  c.length_t = 400;
  c.n_regions = 3;
  const HomologousPair pair = c.make_pair();
  const std::vector<Candidate> serial =
      heuristic_scan(pair.s, pair.t, c.scheme, c.params);

  const auto run_with = [&](Backend backend) {
    core::WavefrontConfig cfg;
    cfg.nprocs = 4;
    cfg.scheme = c.scheme;
    cfg.params = c.params;
    cfg.dsm.backend = backend;
    return core::wavefront_align(pair.s, pair.t, cfg);
  };
  const core::StrategyResult threads = run_with(Backend::kThreads);
  const core::StrategyResult process = run_with(Backend::kProcess);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(threads.candidates, serial);
  EXPECT_EQ(process.candidates, serial);
  EXPECT_EQ(process.candidates, threads.candidates);
  EXPECT_EQ(process.dsm_stats.backend, Backend::kProcess);
}

TEST(ProcBackend, KilledChildSurfacesAsFailureNotHang) {
  // Node 2 kills its own process mid-job while the others sit in a barrier.
  // The supervisor must observe the socket EOF, count a peer failure, unwind
  // every blocked node and fail the job — with the default
  // RetryPolicy.timeout_us == 0 (wait forever), so only the peer-death path
  // can break the wait.
  Cluster cluster(3, proc_cfg());
  try {
    cluster.run([](Node& node) {
      if (node.id() == 2) {
        ::raise(SIGKILL);  // never returns: no kDone, just socket EOF
      }
      node.barrier();
    });
    FAIL() << "run() should have thrown";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("node process 2"), std::string::npos) << what;
    EXPECT_NE(what.find("died"), std::string::npos) << what;
  }
  EXPECT_GE(cluster.stats().node[0].peer_failures, 1u);

  // The pool is not poisoned: the next job forks fresh children and runs.
  const GlobalAddr res = cluster.alloc(3 * sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    node.write<int>(res + node.id() * sizeof(int), 1);
    node.barrier();
  });
  EXPECT_EQ(read_back(cluster, res, 3), (std::vector<int>{1, 1, 1}));
}

TEST(ProcBackend, ChildExceptionRethrowsWithOriginalType) {
  // Typed exception propagation over the socket: a child's throw crosses the
  // process boundary as an ErrorKind tag in its kDone frame, and the parent
  // rethrows the original exception TYPE — not a degraded runtime_error.
  // Node 0's program must return cleanly (any DSM wait it sat in would be
  // unwound by the abort and add a second, parent-side failure, sending
  // await down the combined-failure path instead of the typed rethrow).
  Cluster cluster(3, proc_cfg());
  try {
    cluster.run([](Node& node) {
      if (node.id() == 1) {
        throw std::invalid_argument("shard count must be positive");
      }
    });
    FAIL() << "run() should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "shard count must be positive");
  }

  // A derived type outside the tagged vocabulary degrades to its nearest
  // tagged base (std::ios_base::failure -> system_error is unlisted, but
  // out_of_range is tagged and must round-trip too).
  try {
    cluster.run([](Node& node) {
      if (node.id() == 2) throw std::out_of_range("fragment 7 of 4");
    });
    FAIL() << "run() should have thrown";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "fragment 7 of 4");
  }

  // The pool survives typed failures like any other failure.
  const GlobalAddr res = cluster.alloc(3 * sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    node.write<int>(res + node.id() * sizeof(int), 7);
    node.barrier();
  });
  EXPECT_EQ(read_back(cluster, res, 3), (std::vector<int>{7, 7, 7}));
}

TEST(ProcBackend, ChildExitWithoutDoneIsAFailure) {
  // _exit(0) skips the kDone/kStats handshake entirely; EOF alone must be
  // treated as node death, not success.
  Cluster cluster(2, proc_cfg());
  EXPECT_THROW(cluster.run([](Node& node) {
                 if (node.id() == 1) ::_exit(0);
                 node.barrier();
               }),
               std::runtime_error);
  EXPECT_GE(cluster.stats().node[0].peer_failures, 1u);
}

TEST(ProcBackend, CommModesAllProduceIdenticalResults) {
  // legacy / batched / batched+prefetch over the socket data plane.
  const auto run_mode = [](CommConfig comm) {
    DsmConfig cfg = proc_cfg();
    cfg.comm = comm;
    cfg.page_bytes = 256;
    Cluster cluster(3, cfg);
    constexpr int kInts = 512;  // 8 pages of subject data homed at 0
    const GlobalAddr arr = cluster.alloc(kInts * sizeof(int), /*home=*/0);
    const GlobalAddr res = cluster.alloc(3 * sizeof(int), /*home=*/2);
    cluster.run([&](Node& node) {
      if (node.id() == 0) {
        for (int i = 0; i < kInts; ++i) {
          node.write<int>(arr + i * sizeof(int), i * 3 + 1);
        }
      }
      node.barrier();
      long sum = 0;  // every node scans the full array (bulk fetch/prefetch)
      for (int i = 0; i < kInts; ++i) {
        sum += node.read<int>(arr + i * sizeof(int));
      }
      node.write<int>(res + node.id() * sizeof(int), static_cast<int>(sum));
      node.barrier();
    });
    return read_back(cluster, res, 3);
  };

  CommConfig legacy;
  legacy.batch_diffs = false;
  legacy.bulk_fetch = false;
  legacy.prefetch_pages = 0;
  CommConfig batched;  // defaults: batch + bulk fetch
  CommConfig prefetch = batched;
  prefetch.prefetch_pages = 4;

  const std::vector<int> a = run_mode(legacy);
  const std::vector<int> b = run_mode(batched);
  const std::vector<int> c = run_mode(prefetch);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(a[0], a[1]);
  EXPECT_EQ(a[1], a[2]);
}

}  // namespace
}  // namespace gdsm::dsm
