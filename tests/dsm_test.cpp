// JIAJIA-like DSM substrate tests: shared memory semantics under the scope
// consistency protocol, locks, condition variables, barriers, replacement.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "dsm/cluster.h"

namespace gdsm::dsm {
namespace {

/// Reads `n` ints back from shared memory via node 0.  Results a program
/// wants checked must travel through the global space, not captured host
/// variables: under the process backend every node but 0 runs in a forked
/// child whose writes to captures die with it.  Node 0 always runs in the
/// host address space, so a follow-up job reading on node 0 works on both
/// backends.
std::vector<int> read_back(Cluster& cluster, GlobalAddr base, std::size_t n) {
  std::vector<int> out(n, 0);
  cluster.run([&](Node& node) {
    if (node.id() == 0) {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = node.read<int>(base + i * sizeof(int));
      }
    }
  });
  return out;
}

TEST(GlobalSpace, AllocRoundsToPagesAndAssignsHomes) {
  DsmConfig cfg;
  cfg.page_bytes = 256;
  GlobalSpace space(4, cfg);
  const GlobalAddr a = space.alloc(300, 2);  // 2 pages
  const GlobalAddr b = space.alloc(1, 3);
  EXPECT_EQ(space.offset_in_page(a), 0u);
  EXPECT_EQ(space.home_of(space.page_of(a)), 2);
  EXPECT_EQ(space.home_of(space.page_of(a) + 1), 2);
  EXPECT_EQ(space.home_of(space.page_of(b)), 3);
  EXPECT_EQ(b, a + 2 * 256);
}

TEST(GlobalSpace, StripedAllocCyclesHomes) {
  DsmConfig cfg;
  cfg.page_bytes = 128;
  GlobalSpace space(3, cfg);
  const GlobalAddr a = space.alloc_striped(128 * 6);
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_EQ(space.home_of(space.page_of(a) + k), static_cast<int>(k % 3));
  }
}

TEST(PageCache, LruEviction) {
  PageCache cache(2);
  PageCache::Evicted ev;
  cache.insert(1, std::vector<std::byte>(8), &ev);
  EXPECT_FALSE(ev.valid);
  cache.insert(2, std::vector<std::byte>(8), &ev);
  EXPECT_FALSE(ev.valid);
  ASSERT_NE(cache.lookup(1), nullptr);  // touch 1 -> 2 becomes LRU
  cache.insert(3, std::vector<std::byte>(8), &ev);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.page, 2u);
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
}

TEST(PageCache, DirtyTracking) {
  PageCache cache(4);
  Frame* f = cache.insert(5, std::vector<std::byte>(8), nullptr);
  EXPECT_TRUE(cache.dirty_pages().empty());
  f->dirty = true;
  const auto dirty = cache.dirty_pages();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 5u);
  cache.erase(5);
  EXPECT_TRUE(cache.dirty_pages().empty());
}

TEST(Cluster, HomeWritesVisibleAfterBarrier) {
  Cluster cluster(4);
  const GlobalAddr arr = cluster.alloc(4 * sizeof(int), /*home=*/0);
  const GlobalAddr res = cluster.alloc(4 * sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    if (node.id() == 0) {
      for (int i = 0; i < 4; ++i) node.write<int>(arr + i * sizeof(int), 100 + i);
    }
    node.barrier();
    node.write<int>(res + node.id() * sizeof(int),
                    node.read<int>(arr + node.id() * sizeof(int)));
    node.barrier();  // flushes every node's result diff home
  });
  const std::vector<int> seen = read_back(cluster, res, 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], 100 + i);
}

TEST(Cluster, RemoteWritesReachHomeViaDiffs) {
  Cluster cluster(3);
  const GlobalAddr arr = cluster.alloc(3 * sizeof(int), /*home=*/0);
  const GlobalAddr res = cluster.alloc(sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    // Every node writes its own slot (disjoint offsets of the SAME page):
    // the multiple-writer protocol must merge all three at the home.
    node.write<int>(arr + node.id() * sizeof(int), node.id() + 1);
    node.barrier();
    if (node.id() == 2) {
      int total = 0;
      for (int i = 0; i < 3; ++i) total += node.read<int>(arr + i * sizeof(int));
      node.write<int>(res, total);
    }
    node.barrier();
  });
  const DsmStats stats = cluster.stats();  // before read_back's job clobbers it
  EXPECT_EQ(read_back(cluster, res, 1)[0], 6);
  EXPECT_GE(stats.total_node().diffs_sent, 2u);  // nodes 1 and 2 diffed
}

TEST(Cluster, LockProvidesMutualExclusionAndCoherence) {
  Cluster cluster(4);
  const GlobalAddr counter = cluster.alloc(sizeof(int), /*home=*/3);
  constexpr int kIters = 25;
  cluster.run([&](Node& node) {
    for (int k = 0; k < kIters; ++k) {
      node.lock(7);
      const int v = node.read<int>(counter);
      node.write<int>(counter, v + 1);
      node.unlock(7);
    }
    node.barrier();
  });
  // Verify via a second program on the same cluster (state persists).
  int final_value = 0;
  cluster.run([&](Node& node) {
    if (node.id() == 0) final_value = node.read<int>(counter);
  });
  EXPECT_EQ(final_value, 4 * kIters);
}

TEST(Cluster, ConditionVariablePassesValue) {
  Cluster cluster(2);
  const GlobalAddr slot = cluster.alloc(sizeof(int), /*home=*/0);
  const GlobalAddr res = cluster.alloc(sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    if (node.id() == 0) {
      node.write<int>(slot, 4242);
      node.setcv(1);  // release semantics: flush + notices ride the signal
    } else {
      node.waitcv(1);  // acquire: invalidate noticed pages
      node.write<int>(res, node.read<int>(slot));
    }
    node.barrier();
  });
  EXPECT_EQ(read_back(cluster, res, 1)[0], 4242);
}

TEST(Cluster, ConditionVariableCountsSignals) {
  Cluster cluster(2);
  const GlobalAddr res = cluster.alloc(sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    if (node.id() == 0) {
      for (int i = 0; i < 5; ++i) node.setcv(3);
    } else {
      int woken = 0;
      for (int i = 0; i < 5; ++i) {
        node.waitcv(3);
        ++woken;
      }
      node.write<int>(res, woken);
    }
    node.barrier();
  });
  EXPECT_EQ(read_back(cluster, res, 1)[0], 5);
}

TEST(Cluster, ProducerConsumerChainThroughSharedMemory) {
  // A mini wave-front: each node increments the value and hands it on, ten
  // rounds, exactly the Strategy-1 border-cell pattern.
  constexpr int P = 4;
  constexpr int kRounds = 10;
  Cluster cluster(P);
  std::vector<GlobalAddr> slots;
  for (int p = 0; p + 1 < P; ++p) slots.push_back(cluster.alloc(sizeof(int), p));
  const GlobalAddr res = cluster.alloc(sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    const int p = node.id();
    for (int r = 0; r < kRounds; ++r) {
      int value = r;
      if (p > 0) {
        node.waitcv(p - 1);
        value = node.read<int>(slots[static_cast<std::size_t>(p - 1)]);
        node.setcv(P + p - 1);  // slot free
      }
      ++value;
      if (p + 1 < P) {
        if (r > 0) node.waitcv(P + p);
        node.write<int>(slots[static_cast<std::size_t>(p)], value);
        node.setcv(p);
      } else if (r == kRounds - 1) {
        node.write<int>(res, value);
      }
    }
    node.barrier();
  });
  EXPECT_EQ(read_back(cluster, res, 1)[0], kRounds - 1 + P);
}

TEST(Cluster, ReplacementKeepsSemantics) {
  // A cache of 2 remote frames forces constant eviction, including dirty
  // victims that must be flushed home.
  DsmConfig cfg;
  cfg.page_bytes = 256;
  cfg.cache_pages = 2;
  Cluster cluster(2, cfg);
  constexpr int kPages = 10;
  const GlobalAddr arr = cluster.alloc(kPages * 256, /*home=*/0);
  std::atomic<long> total{0};
  cluster.run([&](Node& node) {
    if (node.id() == 1) {
      for (int k = 0; k < kPages; ++k) {
        node.write<int>(arr + static_cast<GlobalAddr>(k) * 256, k * 11);
      }
    }
    node.barrier();
    if (node.id() == 0) {
      long sum = 0;
      for (int k = 0; k < kPages; ++k) {
        sum += node.read<int>(arr + static_cast<GlobalAddr>(k) * 256);
      }
      total = sum;
    }
  });
  EXPECT_EQ(total, 11L * (kPages - 1) * kPages / 2);
  EXPECT_GT(cluster.stats().node[1].evictions, 0u);
}

TEST(Cluster, AllocInsideProgram) {
  Cluster cluster(3);
  const GlobalAddr mailbox = cluster.alloc(sizeof(GlobalAddr), 0);
  const GlobalAddr res = cluster.alloc(sizeof(int), 0);
  cluster.run([&](Node& node) {
    if (node.id() == 1) {
      const GlobalAddr fresh = node.alloc(sizeof(int), 2);
      node.write<int>(fresh, 777);
      node.write<GlobalAddr>(mailbox, fresh);
    }
    node.barrier();
    if (node.id() == 2) {
      const GlobalAddr fresh = node.read<GlobalAddr>(mailbox);
      node.write<int>(res, node.read<int>(fresh));
    }
    node.barrier();
  });
  EXPECT_EQ(read_back(cluster, res, 1)[0], 777);
}

TEST(Cluster, StatsAccountProtocolActivity) {
  Cluster cluster(2);
  const GlobalAddr x = cluster.alloc(sizeof(int), 0);
  cluster.run([&](Node& node) {
    node.barrier();
    if (node.id() == 1) {
      node.lock(0);
      node.write<int>(x, 5);
      node.unlock(0);
    }
    node.barrier();
    if (node.id() == 0) (void)node.read<int>(x);
  });
  const DsmStats stats = cluster.stats();
  EXPECT_EQ(stats.node[1].lock_acquires, 1u);
  EXPECT_EQ(stats.node[1].lock_releases, 1u);
  EXPECT_GE(stats.node[1].read_faults, 1u);   // faulted the page in to write
  EXPECT_GE(stats.node[1].write_faults, 1u);  // twin created
  EXPECT_GE(stats.node[1].diffs_sent, 1u);
  EXPECT_EQ(stats.node[0].barriers, 2u);
  EXPECT_GT(stats.total_traffic().total_messages(), 0u);
}

TEST(Cluster, UnimplementedJiaConfigOptionsThrow) {
  DsmConfig cfg;
  cfg.load_balancing = true;
  Cluster cluster(2, cfg);
  EXPECT_THROW(cluster.run([](Node&) {}), std::runtime_error);
}

TEST(HomeMigration, SingleWriterPageMigrates) {
  DsmConfig cfg;
  cfg.home_migration = true;
  Cluster cluster(2, cfg);
  // Page homed at node 0, but written only by node 1.
  const GlobalAddr x = cluster.alloc(sizeof(int), /*home=*/0);
  const PageId page = cluster.space().page_of(x);
  cluster.run([&](Node& node) {
    if (node.id() == 1) node.write<int>(x, 1);
    node.barrier();  // writer is unique: page migrates to node 1
  });
  EXPECT_EQ(cluster.space().home_of(page), 1);
  EXPECT_EQ(cluster.stats().home_migrations, 1u);
}

TEST(HomeMigration, MigrationStopsDiffTraffic) {
  auto run_rounds = [](bool migrate) {
    DsmConfig cfg;
    cfg.home_migration = migrate;
    Cluster cluster(2, cfg);
    const GlobalAddr x = cluster.alloc(sizeof(int) * 64, /*home=*/0);
    cluster.run([&](Node& node) {
      for (int round = 0; round < 10; ++round) {
        if (node.id() == 1) node.write<int>(x + 4 * round, round);
        node.barrier();
      }
    });
    const auto& stats = cluster.stats().node[1];
    return std::pair(stats.diffs_sent, stats.empty_diffs_suppressed);
  };
  const auto [diffs_without, suppressed_without] = run_rounds(false);
  const auto [diffs_with, suppressed_with] = run_rounds(true);
  // Round 0 writes the int value 0 over freshly zeroed memory, so its diff
  // is empty and the round-trip is suppressed; rounds 1..9 each ship one
  // real diff per interval, forever.
  EXPECT_EQ(diffs_without, 9u);
  EXPECT_EQ(suppressed_without, 1u);
  // With migration the suppressed round 0 produces no write notice, so the
  // page migrates after round 1's diff — the one and only diff sent.
  EXPECT_EQ(diffs_with, 1u);
  EXPECT_EQ(suppressed_with, 1u);
}

TEST(HomeMigration, MultiWriterPageStaysPut) {
  DsmConfig cfg;
  cfg.home_migration = true;
  Cluster cluster(3, cfg);
  const GlobalAddr arr = cluster.alloc(3 * sizeof(int), /*home=*/0);
  const PageId page = cluster.space().page_of(arr);
  cluster.run([&](Node& node) {
    node.write<int>(arr + node.id() * sizeof(int), node.id());
    node.barrier();
  });
  EXPECT_EQ(cluster.space().home_of(page), 0);
  EXPECT_EQ(cluster.stats().home_migrations, 0u);
}

TEST(HomeMigration, DataStaysCoherentAcrossMigration) {
  DsmConfig cfg;
  cfg.home_migration = true;
  Cluster cluster(4, cfg);
  const GlobalAddr x = cluster.alloc(sizeof(long), /*home=*/0);
  const GlobalAddr res = cluster.alloc(sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    // Round 1: node 3 writes (page migrates to 3).
    if (node.id() == 3) node.write<long>(x, 111);
    node.barrier();
    // Round 2: node 2 writes the migrated page (migrates to 2).
    if (node.id() == 2) node.write<long>(x, node.read<long>(x) + 222);
    node.barrier();
    // Everyone must see both updates.
    if (node.id() == 1) node.write<int>(res, static_cast<int>(node.read<long>(x)));
    node.barrier();
  });
  EXPECT_EQ(read_back(cluster, res, 1)[0], 333);
  // x migrated twice; the result page also migrated to its single writer 1.
  EXPECT_EQ(cluster.stats().home_migrations, 3u);
}

CommConfig legacy_comm_cfg() {
  CommConfig c;
  c.batch_diffs = false;
  c.bulk_fetch = false;
  c.prefetch_pages = 0;
  return c;
}

TEST(CommPlane, BulkFetchCoalescesMultiPageReads) {
  // A read_bytes spanning 8 uncached remote pages must cost one kGetPages
  // exchange, not 8 serial faults; accounting stays per-page (read_faults).
  constexpr int kPages = 8;
  DsmConfig cfg;
  cfg.page_bytes = 128;
  cfg.comm = CommConfig{};  // pin batched mode regardless of GDSM_COMM
  Cluster cluster(2, cfg);
  const GlobalAddr arr = cluster.alloc(kPages * 128, /*home=*/0);
  cluster.run([&](Node& node) {
    if (node.id() == 0) {
      for (int pgi = 0; pgi < kPages; ++pgi) {
        node.write<int>(arr + static_cast<GlobalAddr>(pgi) * 128, pgi + 1);
      }
    }
    node.barrier();
    if (node.id() == 1) {
      std::vector<int> buf(kPages * 128 / sizeof(int));
      node.read_bytes(arr, reinterpret_cast<std::byte*>(buf.data()),
                      kPages * 128);
      for (int pgi = 0; pgi < kPages; ++pgi) {
        EXPECT_EQ(buf[static_cast<std::size_t>(pgi) * (128 / sizeof(int))],
                  pgi + 1);
      }
    }
    node.barrier();
  });
  const NodeStats& reader = cluster.stats().node[1];
  EXPECT_EQ(reader.bulk_fetches, 1u);
  EXPECT_EQ(reader.bulk_pages_fetched, static_cast<std::uint64_t>(kPages));
  EXPECT_EQ(reader.read_faults, static_cast<std::uint64_t>(kPages));
  EXPECT_GE(reader.round_trips_saved(), static_cast<std::uint64_t>(kPages - 1));
}

TEST(CommPlane, LegacyModeNeverBulksOrBatches) {
  DsmConfig cfg;
  cfg.page_bytes = 128;
  cfg.comm = legacy_comm_cfg();
  Cluster cluster(2, cfg);
  const GlobalAddr arr = cluster.alloc(6 * 128, /*home=*/0);
  cluster.run([&](Node& node) {
    if (node.id() == 1) {
      std::vector<int> buf(6 * 128 / sizeof(int));
      node.read_bytes(arr, reinterpret_cast<std::byte*>(buf.data()), 6 * 128);
      for (int pgi = 0; pgi < 6; ++pgi) {
        node.write<int>(arr + static_cast<GlobalAddr>(pgi) * 128, pgi);
      }
    }
    node.barrier();
  });
  const NodeStats& n1 = cluster.stats().node[1];
  EXPECT_EQ(n1.bulk_fetches, 0u);
  EXPECT_EQ(n1.diff_batches_sent, 0u);
  EXPECT_EQ(n1.prefetch_issued, 0u);
  EXPECT_EQ(n1.read_faults, 6u);  // one serial fault per page
}

TEST(CommPlane, SequentialScanPrefetchesAhead) {
  // A forward per-page scan must trip the sequential detector: later pages
  // arrive through async kGetPages read-ahead and count as prefetch hits,
  // not read faults.
  constexpr int kPages = 16;
  DsmConfig cfg;
  cfg.page_bytes = 128;
  cfg.comm = CommConfig{};      // pin the mode regardless of GDSM_COMM
  cfg.comm.bulk_fetch = false;  // isolate the read-ahead path
  cfg.comm.prefetch_pages = 4;
  Cluster cluster(2, cfg);
  const GlobalAddr arr = cluster.alloc(kPages * 128, /*home=*/0);
  cluster.run([&](Node& node) {
    if (node.id() == 0) {
      for (int pgi = 0; pgi < kPages; ++pgi) {
        node.write<int>(arr + static_cast<GlobalAddr>(pgi) * 128, 10 * pgi);
      }
    }
    node.barrier();
    if (node.id() == 1) {
      for (int pgi = 0; pgi < kPages; ++pgi) {
        EXPECT_EQ(node.read<int>(arr + static_cast<GlobalAddr>(pgi) * 128),
                  10 * pgi);
      }
    }
    node.barrier();
  });
  const NodeStats& reader = cluster.stats().node[1];
  EXPECT_GT(reader.prefetch_issued, 0u);
  EXPECT_GT(reader.prefetch_hits, 0u);
  EXPECT_LT(reader.read_faults, static_cast<std::uint64_t>(kPages));
}

TEST(CommPlane, EmptyDiffsSuppressedInEveryMode) {
  // Writing the value already in place yields a zero-record diff; shipping
  // it would be a pure round-trip, so every mode suppresses it.
  for (const bool batched : {false, true}) {
    DsmConfig cfg;
    cfg.page_bytes = 128;
    cfg.comm = batched ? CommConfig{} : legacy_comm_cfg();
    Cluster cluster(2, cfg);
    const GlobalAddr x = cluster.alloc(sizeof(int), /*home=*/0);
    cluster.run([&](Node& node) {
      if (node.id() == 1) node.write<int>(x, 0);  // no-op over zeroed memory
      node.barrier();
    });
    const NodeStats& writer = cluster.stats().node[1];
    EXPECT_EQ(writer.diffs_sent, 0u) << "batched=" << batched;
    EXPECT_EQ(writer.empty_diffs_suppressed, 1u) << "batched=" << batched;
  }
}

TEST(CommPlane, ReleaseDiffsCoalescePerHome) {
  // Six dirty pages with the same home leave as ONE kDiffBatch; per-page
  // diff accounting (diffs_sent) matches the legacy plane exactly.
  constexpr int kPages = 6;
  auto diffs_for = [](CommConfig comm) {
    DsmConfig cfg;
    cfg.page_bytes = 128;
    cfg.comm = comm;
    Cluster cluster(2, cfg);
    const GlobalAddr arr = cluster.alloc(kPages * 128, /*home=*/0);
    cluster.run([&](Node& node) {
      if (node.id() == 1) {
        for (int pgi = 0; pgi < kPages; ++pgi) {
          node.write<int>(arr + static_cast<GlobalAddr>(pgi) * 128, pgi + 1);
        }
      }
      node.barrier();
      if (node.id() == 0) {
        for (int pgi = 0; pgi < kPages; ++pgi) {
          EXPECT_EQ(node.read<int>(arr + static_cast<GlobalAddr>(pgi) * 128),
                    pgi + 1);
        }
      }
      node.barrier();
    });
    return cluster.stats().node[1];
  };
  const NodeStats batched = diffs_for(CommConfig{});
  const NodeStats legacy = diffs_for(legacy_comm_cfg());
  EXPECT_EQ(batched.diff_batches_sent, 1u);
  EXPECT_EQ(batched.diff_pages_batched, static_cast<std::uint64_t>(kPages));
  EXPECT_EQ(batched.diffs_sent, legacy.diffs_sent);
  EXPECT_EQ(legacy.diff_batches_sent, 0u);
  EXPECT_GE(batched.round_trips_saved(), static_cast<std::uint64_t>(kPages - 1));
}

TEST(Cluster, SpmdProgramSeesOwnRank) {
  Cluster cluster(5);
  const GlobalAddr res = cluster.alloc(5 * sizeof(int), /*home=*/0);
  cluster.run([&](Node& node) {
    node.write<int>(res + node.id() * sizeof(int),
                    node.nodes() == 5 ? node.id() : -1);
    node.barrier();
  });
  const std::vector<int> ranks = read_back(cluster, res, 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ranks[static_cast<std::size_t>(i)], i);
}

TEST(Cluster, ProgramExceptionPropagates) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([](Node& node) {
    if (node.id() == 1) throw std::runtime_error("boom");
    // Node 0 would block forever at this barrier without error unwinding.
    node.barrier();
  }),
               std::runtime_error);
}

}  // namespace
}  // namespace gdsm::dsm
