file(REMOVE_RECURSE
  "CMakeFiles/reverse_rebuild_test.dir/reverse_rebuild_test.cpp.o"
  "CMakeFiles/reverse_rebuild_test.dir/reverse_rebuild_test.cpp.o.d"
  "reverse_rebuild_test"
  "reverse_rebuild_test.pdb"
  "reverse_rebuild_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_rebuild_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
