# Empty dependencies file for reverse_rebuild_test.
# This may be replaced when dependencies are built.
