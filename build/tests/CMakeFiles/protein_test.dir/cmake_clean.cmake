file(REMOVE_RECURSE
  "CMakeFiles/protein_test.dir/protein_test.cpp.o"
  "CMakeFiles/protein_test.dir/protein_test.cpp.o.d"
  "protein_test"
  "protein_test.pdb"
  "protein_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
