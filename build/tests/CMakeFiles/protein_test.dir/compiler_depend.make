# Empty compiler generated dependencies file for protein_test.
# This may be replaced when dependencies are built.
