file(REMOVE_RECURSE
  "CMakeFiles/exact_parallel_test.dir/exact_parallel_test.cpp.o"
  "CMakeFiles/exact_parallel_test.dir/exact_parallel_test.cpp.o.d"
  "exact_parallel_test"
  "exact_parallel_test.pdb"
  "exact_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
