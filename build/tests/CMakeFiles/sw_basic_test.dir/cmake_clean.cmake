file(REMOVE_RECURSE
  "CMakeFiles/sw_basic_test.dir/sw_basic_test.cpp.o"
  "CMakeFiles/sw_basic_test.dir/sw_basic_test.cpp.o.d"
  "sw_basic_test"
  "sw_basic_test.pdb"
  "sw_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
