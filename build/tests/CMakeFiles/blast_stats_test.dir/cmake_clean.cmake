file(REMOVE_RECURSE
  "CMakeFiles/blast_stats_test.dir/blast_stats_test.cpp.o"
  "CMakeFiles/blast_stats_test.dir/blast_stats_test.cpp.o.d"
  "blast_stats_test"
  "blast_stats_test.pdb"
  "blast_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
