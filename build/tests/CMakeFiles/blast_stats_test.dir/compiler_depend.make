# Empty compiler generated dependencies file for blast_stats_test.
# This may be replaced when dependencies are built.
