# Empty dependencies file for sw_property_test.
# This may be replaced when dependencies are built.
