file(REMOVE_RECURSE
  "CMakeFiles/sw_property_test.dir/sw_property_test.cpp.o"
  "CMakeFiles/sw_property_test.dir/sw_property_test.cpp.o.d"
  "sw_property_test"
  "sw_property_test.pdb"
  "sw_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
