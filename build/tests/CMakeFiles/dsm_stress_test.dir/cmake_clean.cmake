file(REMOVE_RECURSE
  "CMakeFiles/dsm_stress_test.dir/dsm_stress_test.cpp.o"
  "CMakeFiles/dsm_stress_test.dir/dsm_stress_test.cpp.o.d"
  "dsm_stress_test"
  "dsm_stress_test.pdb"
  "dsm_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
