file(REMOVE_RECURSE
  "CMakeFiles/phase2_test.dir/phase2_test.cpp.o"
  "CMakeFiles/phase2_test.dir/phase2_test.cpp.o.d"
  "phase2_test"
  "phase2_test.pdb"
  "phase2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
