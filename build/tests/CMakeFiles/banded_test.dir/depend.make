# Empty dependencies file for banded_test.
# This may be replaced when dependencies are built.
