file(REMOVE_RECURSE
  "CMakeFiles/banded_test.dir/banded_test.cpp.o"
  "CMakeFiles/banded_test.dir/banded_test.cpp.o.d"
  "banded_test"
  "banded_test.pdb"
  "banded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
