# Empty compiler generated dependencies file for reprocess_test.
# This may be replaced when dependencies are built.
