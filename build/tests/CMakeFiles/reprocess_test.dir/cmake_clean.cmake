file(REMOVE_RECURSE
  "CMakeFiles/reprocess_test.dir/reprocess_test.cpp.o"
  "CMakeFiles/reprocess_test.dir/reprocess_test.cpp.o.d"
  "reprocess_test"
  "reprocess_test.pdb"
  "reprocess_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reprocess_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
