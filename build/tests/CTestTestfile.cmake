# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sw_basic_test[1]_include.cmake")
include("/root/repo/build/tests/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/sw_property_test[1]_include.cmake")
include("/root/repo/build/tests/affine_test[1]_include.cmake")
include("/root/repo/build/tests/banded_test[1]_include.cmake")
include("/root/repo/build/tests/protein_test[1]_include.cmake")
include("/root/repo/build/tests/heuristic_test[1]_include.cmake")
include("/root/repo/build/tests/reverse_rebuild_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/mp_test[1]_include.cmake")
include("/root/repo/build/tests/dsm_test[1]_include.cmake")
include("/root/repo/build/tests/dsm_stress_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/exact_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/strategy_test[1]_include.cmake")
include("/root/repo/build/tests/preprocess_test[1]_include.cmake")
include("/root/repo/build/tests/reprocess_test[1]_include.cmake")
include("/root/repo/build/tests/phase2_test[1]_include.cmake")
include("/root/repo/build/tests/blast_test[1]_include.cmake")
include("/root/repo/build/tests/blast_stats_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
