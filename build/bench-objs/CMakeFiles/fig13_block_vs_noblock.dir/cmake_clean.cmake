file(REMOVE_RECURSE
  "../bench/fig13_block_vs_noblock"
  "../bench/fig13_block_vs_noblock.pdb"
  "CMakeFiles/fig13_block_vs_noblock.dir/fig13_block_vs_noblock.cpp.o"
  "CMakeFiles/fig13_block_vs_noblock.dir/fig13_block_vs_noblock.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_block_vs_noblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
