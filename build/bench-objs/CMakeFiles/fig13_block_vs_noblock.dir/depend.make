# Empty dependencies file for fig13_block_vs_noblock.
# This may be replaced when dependencies are built.
