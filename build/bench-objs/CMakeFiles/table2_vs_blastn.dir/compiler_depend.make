# Empty compiler generated dependencies file for table2_vs_blastn.
# This may be replaced when dependencies are built.
