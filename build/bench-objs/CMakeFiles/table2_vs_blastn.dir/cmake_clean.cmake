file(REMOVE_RECURSE
  "../bench/table2_vs_blastn"
  "../bench/table2_vs_blastn.pdb"
  "CMakeFiles/table2_vs_blastn.dir/table2_vs_blastn.cpp.o"
  "CMakeFiles/table2_vs_blastn.dir/table2_vs_blastn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_vs_blastn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
