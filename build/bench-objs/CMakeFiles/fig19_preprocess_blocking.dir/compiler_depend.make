# Empty compiler generated dependencies file for fig19_preprocess_blocking.
# This may be replaced when dependencies are built.
