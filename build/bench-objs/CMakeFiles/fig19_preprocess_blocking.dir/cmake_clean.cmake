file(REMOVE_RECURSE
  "../bench/fig19_preprocess_blocking"
  "../bench/fig19_preprocess_blocking.pdb"
  "CMakeFiles/fig19_preprocess_blocking.dir/fig19_preprocess_blocking.cpp.o"
  "CMakeFiles/fig19_preprocess_blocking.dir/fig19_preprocess_blocking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_preprocess_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
