file(REMOVE_RECURSE
  "../bench/table1_heuristic_times"
  "../bench/table1_heuristic_times.pdb"
  "CMakeFiles/table1_heuristic_times.dir/table1_heuristic_times.cpp.o"
  "CMakeFiles/table1_heuristic_times.dir/table1_heuristic_times.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_heuristic_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
