# Empty dependencies file for table1_heuristic_times.
# This may be replaced when dependencies are built.
