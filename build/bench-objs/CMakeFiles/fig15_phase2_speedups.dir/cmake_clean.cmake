file(REMOVE_RECURSE
  "../bench/fig15_phase2_speedups"
  "../bench/fig15_phase2_speedups.pdb"
  "CMakeFiles/fig15_phase2_speedups.dir/fig15_phase2_speedups.cpp.o"
  "CMakeFiles/fig15_phase2_speedups.dir/fig15_phase2_speedups.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_phase2_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
