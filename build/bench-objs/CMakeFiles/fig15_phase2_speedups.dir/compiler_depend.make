# Empty compiler generated dependencies file for fig15_phase2_speedups.
# This may be replaced when dependencies are built.
