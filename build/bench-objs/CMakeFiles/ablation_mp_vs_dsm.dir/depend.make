# Empty dependencies file for ablation_mp_vs_dsm.
# This may be replaced when dependencies are built.
