file(REMOVE_RECURSE
  "../bench/ablation_mp_vs_dsm"
  "../bench/ablation_mp_vs_dsm.pdb"
  "CMakeFiles/ablation_mp_vs_dsm.dir/ablation_mp_vs_dsm.cpp.o"
  "CMakeFiles/ablation_mp_vs_dsm.dir/ablation_mp_vs_dsm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mp_vs_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
