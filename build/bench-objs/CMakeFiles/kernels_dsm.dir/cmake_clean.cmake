file(REMOVE_RECURSE
  "../bench/kernels_dsm"
  "../bench/kernels_dsm.pdb"
  "CMakeFiles/kernels_dsm.dir/kernels_dsm.cpp.o"
  "CMakeFiles/kernels_dsm.dir/kernels_dsm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
