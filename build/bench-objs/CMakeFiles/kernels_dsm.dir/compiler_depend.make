# Empty compiler generated dependencies file for kernels_dsm.
# This may be replaced when dependencies are built.
