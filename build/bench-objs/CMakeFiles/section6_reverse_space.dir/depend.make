# Empty dependencies file for section6_reverse_space.
# This may be replaced when dependencies are built.
