file(REMOVE_RECURSE
  "../bench/section6_reverse_space"
  "../bench/section6_reverse_space.pdb"
  "CMakeFiles/section6_reverse_space.dir/section6_reverse_space.cpp.o"
  "CMakeFiles/section6_reverse_space.dir/section6_reverse_space.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section6_reverse_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
