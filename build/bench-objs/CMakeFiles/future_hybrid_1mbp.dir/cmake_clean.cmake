file(REMOVE_RECURSE
  "../bench/future_hybrid_1mbp"
  "../bench/future_hybrid_1mbp.pdb"
  "CMakeFiles/future_hybrid_1mbp.dir/future_hybrid_1mbp.cpp.o"
  "CMakeFiles/future_hybrid_1mbp.dir/future_hybrid_1mbp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_hybrid_1mbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
