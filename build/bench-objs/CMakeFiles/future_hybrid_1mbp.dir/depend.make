# Empty dependencies file for future_hybrid_1mbp.
# This may be replaced when dependencies are built.
