file(REMOVE_RECURSE
  "../bench/kernels_sw"
  "../bench/kernels_sw.pdb"
  "CMakeFiles/kernels_sw.dir/kernels_sw.cpp.o"
  "CMakeFiles/kernels_sw.dir/kernels_sw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
