# Empty dependencies file for kernels_sw.
# This may be replaced when dependencies are built.
