file(REMOVE_RECURSE
  "../bench/fig10_breakdown"
  "../bench/fig10_breakdown.pdb"
  "CMakeFiles/fig10_breakdown.dir/fig10_breakdown.cpp.o"
  "CMakeFiles/fig10_breakdown.dir/fig10_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
