
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_breakdown.cpp" "bench-objs/CMakeFiles/fig10_breakdown.dir/fig10_breakdown.cpp.o" "gcc" "bench-objs/CMakeFiles/fig10_breakdown.dir/fig10_breakdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gdsm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/gdsm_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/blast/CMakeFiles/gdsm_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/gdsm_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gdsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/gdsm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gdsm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/gdsm_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gdsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
