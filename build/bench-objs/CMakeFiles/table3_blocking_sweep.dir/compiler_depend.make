# Empty compiler generated dependencies file for table3_blocking_sweep.
# This may be replaced when dependencies are built.
