file(REMOVE_RECURSE
  "../bench/table3_blocking_sweep"
  "../bench/table3_blocking_sweep.pdb"
  "CMakeFiles/table3_blocking_sweep.dir/table3_blocking_sweep.cpp.o"
  "CMakeFiles/table3_blocking_sweep.dir/table3_blocking_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_blocking_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
