# Empty compiler generated dependencies file for fig20_preprocess_io.
# This may be replaced when dependencies are built.
