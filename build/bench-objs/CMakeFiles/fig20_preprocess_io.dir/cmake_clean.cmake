file(REMOVE_RECURSE
  "../bench/fig20_preprocess_io"
  "../bench/fig20_preprocess_io.pdb"
  "CMakeFiles/fig20_preprocess_io.dir/fig20_preprocess_io.cpp.o"
  "CMakeFiles/fig20_preprocess_io.dir/fig20_preprocess_io.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_preprocess_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
