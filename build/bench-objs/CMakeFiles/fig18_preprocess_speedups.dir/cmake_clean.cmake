file(REMOVE_RECURSE
  "../bench/fig18_preprocess_speedups"
  "../bench/fig18_preprocess_speedups.pdb"
  "CMakeFiles/fig18_preprocess_speedups.dir/fig18_preprocess_speedups.cpp.o"
  "CMakeFiles/fig18_preprocess_speedups.dir/fig18_preprocess_speedups.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_preprocess_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
