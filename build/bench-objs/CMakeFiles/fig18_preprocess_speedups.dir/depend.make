# Empty dependencies file for fig18_preprocess_speedups.
# This may be replaced when dependencies are built.
