file(REMOVE_RECURSE
  "../bench/table4_blocked_times"
  "../bench/table4_blocked_times.pdb"
  "CMakeFiles/table4_blocked_times.dir/table4_blocked_times.cpp.o"
  "CMakeFiles/table4_blocked_times.dir/table4_blocked_times.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_blocked_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
