# Empty compiler generated dependencies file for table4_blocked_times.
# This may be replaced when dependencies are built.
