file(REMOVE_RECURSE
  "../bench/ablation_pagesize"
  "../bench/ablation_pagesize.pdb"
  "CMakeFiles/ablation_pagesize.dir/ablation_pagesize.cpp.o"
  "CMakeFiles/ablation_pagesize.dir/ablation_pagesize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
