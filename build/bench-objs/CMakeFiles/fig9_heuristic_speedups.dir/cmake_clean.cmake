file(REMOVE_RECURSE
  "../bench/fig9_heuristic_speedups"
  "../bench/fig9_heuristic_speedups.pdb"
  "CMakeFiles/fig9_heuristic_speedups.dir/fig9_heuristic_speedups.cpp.o"
  "CMakeFiles/fig9_heuristic_speedups.dir/fig9_heuristic_speedups.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_heuristic_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
