# Empty compiler generated dependencies file for fig9_heuristic_speedups.
# This may be replaced when dependencies are built.
