file(REMOVE_RECURSE
  "libgdsm_dsm.a"
)
