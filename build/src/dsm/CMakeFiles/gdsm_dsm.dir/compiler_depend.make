# Empty compiler generated dependencies file for gdsm_dsm.
# This may be replaced when dependencies are built.
