
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsm/cluster.cpp" "src/dsm/CMakeFiles/gdsm_dsm.dir/cluster.cpp.o" "gcc" "src/dsm/CMakeFiles/gdsm_dsm.dir/cluster.cpp.o.d"
  "/root/repo/src/dsm/global_space.cpp" "src/dsm/CMakeFiles/gdsm_dsm.dir/global_space.cpp.o" "gcc" "src/dsm/CMakeFiles/gdsm_dsm.dir/global_space.cpp.o.d"
  "/root/repo/src/dsm/node.cpp" "src/dsm/CMakeFiles/gdsm_dsm.dir/node.cpp.o" "gcc" "src/dsm/CMakeFiles/gdsm_dsm.dir/node.cpp.o.d"
  "/root/repo/src/dsm/page_cache.cpp" "src/dsm/CMakeFiles/gdsm_dsm.dir/page_cache.cpp.o" "gcc" "src/dsm/CMakeFiles/gdsm_dsm.dir/page_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/gdsm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gdsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
