file(REMOVE_RECURSE
  "CMakeFiles/gdsm_dsm.dir/cluster.cpp.o"
  "CMakeFiles/gdsm_dsm.dir/cluster.cpp.o.d"
  "CMakeFiles/gdsm_dsm.dir/global_space.cpp.o"
  "CMakeFiles/gdsm_dsm.dir/global_space.cpp.o.d"
  "CMakeFiles/gdsm_dsm.dir/node.cpp.o"
  "CMakeFiles/gdsm_dsm.dir/node.cpp.o.d"
  "CMakeFiles/gdsm_dsm.dir/page_cache.cpp.o"
  "CMakeFiles/gdsm_dsm.dir/page_cache.cpp.o.d"
  "libgdsm_dsm.a"
  "libgdsm_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdsm_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
