file(REMOVE_RECURSE
  "CMakeFiles/gdsm_sim.dir/cost_model.cpp.o"
  "CMakeFiles/gdsm_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/gdsm_sim.dir/engine.cpp.o"
  "CMakeFiles/gdsm_sim.dir/engine.cpp.o.d"
  "libgdsm_sim.a"
  "libgdsm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdsm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
