file(REMOVE_RECURSE
  "libgdsm_sim.a"
)
