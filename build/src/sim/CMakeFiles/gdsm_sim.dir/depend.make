# Empty dependencies file for gdsm_sim.
# This may be replaced when dependencies are built.
