
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/alphabet.cpp" "src/util/CMakeFiles/gdsm_util.dir/alphabet.cpp.o" "gcc" "src/util/CMakeFiles/gdsm_util.dir/alphabet.cpp.o.d"
  "/root/repo/src/util/args.cpp" "src/util/CMakeFiles/gdsm_util.dir/args.cpp.o" "gcc" "src/util/CMakeFiles/gdsm_util.dir/args.cpp.o.d"
  "/root/repo/src/util/fasta.cpp" "src/util/CMakeFiles/gdsm_util.dir/fasta.cpp.o" "gcc" "src/util/CMakeFiles/gdsm_util.dir/fasta.cpp.o.d"
  "/root/repo/src/util/genome.cpp" "src/util/CMakeFiles/gdsm_util.dir/genome.cpp.o" "gcc" "src/util/CMakeFiles/gdsm_util.dir/genome.cpp.o.d"
  "/root/repo/src/util/sequence.cpp" "src/util/CMakeFiles/gdsm_util.dir/sequence.cpp.o" "gcc" "src/util/CMakeFiles/gdsm_util.dir/sequence.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/gdsm_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/gdsm_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
