file(REMOVE_RECURSE
  "libgdsm_util.a"
)
