file(REMOVE_RECURSE
  "CMakeFiles/gdsm_util.dir/alphabet.cpp.o"
  "CMakeFiles/gdsm_util.dir/alphabet.cpp.o.d"
  "CMakeFiles/gdsm_util.dir/args.cpp.o"
  "CMakeFiles/gdsm_util.dir/args.cpp.o.d"
  "CMakeFiles/gdsm_util.dir/fasta.cpp.o"
  "CMakeFiles/gdsm_util.dir/fasta.cpp.o.d"
  "CMakeFiles/gdsm_util.dir/genome.cpp.o"
  "CMakeFiles/gdsm_util.dir/genome.cpp.o.d"
  "CMakeFiles/gdsm_util.dir/sequence.cpp.o"
  "CMakeFiles/gdsm_util.dir/sequence.cpp.o.d"
  "CMakeFiles/gdsm_util.dir/table.cpp.o"
  "CMakeFiles/gdsm_util.dir/table.cpp.o.d"
  "libgdsm_util.a"
  "libgdsm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdsm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
