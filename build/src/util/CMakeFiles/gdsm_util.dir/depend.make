# Empty dependencies file for gdsm_util.
# This may be replaced when dependencies are built.
