# Empty compiler generated dependencies file for gdsm_viz.
# This may be replaced when dependencies are built.
