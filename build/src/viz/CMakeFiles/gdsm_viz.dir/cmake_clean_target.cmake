file(REMOVE_RECURSE
  "libgdsm_viz.a"
)
