file(REMOVE_RECURSE
  "CMakeFiles/gdsm_viz.dir/dotplot.cpp.o"
  "CMakeFiles/gdsm_viz.dir/dotplot.cpp.o.d"
  "libgdsm_viz.a"
  "libgdsm_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdsm_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
