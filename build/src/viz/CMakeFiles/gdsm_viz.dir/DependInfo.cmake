
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/dotplot.cpp" "src/viz/CMakeFiles/gdsm_viz.dir/dotplot.cpp.o" "gcc" "src/viz/CMakeFiles/gdsm_viz.dir/dotplot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sw/CMakeFiles/gdsm_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gdsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
