file(REMOVE_RECURSE
  "CMakeFiles/gdsm_mp.dir/comm.cpp.o"
  "CMakeFiles/gdsm_mp.dir/comm.cpp.o.d"
  "libgdsm_mp.a"
  "libgdsm_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdsm_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
