# Empty compiler generated dependencies file for gdsm_mp.
# This may be replaced when dependencies are built.
