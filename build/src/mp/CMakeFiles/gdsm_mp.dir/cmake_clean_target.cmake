file(REMOVE_RECURSE
  "libgdsm_mp.a"
)
