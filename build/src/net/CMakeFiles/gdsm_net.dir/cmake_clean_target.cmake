file(REMOVE_RECURSE
  "libgdsm_net.a"
)
