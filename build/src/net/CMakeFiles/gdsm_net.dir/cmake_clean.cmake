file(REMOVE_RECURSE
  "CMakeFiles/gdsm_net.dir/transport.cpp.o"
  "CMakeFiles/gdsm_net.dir/transport.cpp.o.d"
  "libgdsm_net.a"
  "libgdsm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdsm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
