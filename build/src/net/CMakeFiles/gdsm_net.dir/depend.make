# Empty dependencies file for gdsm_net.
# This may be replaced when dependencies are built.
