
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sw/affine.cpp" "src/sw/CMakeFiles/gdsm_sw.dir/affine.cpp.o" "gcc" "src/sw/CMakeFiles/gdsm_sw.dir/affine.cpp.o.d"
  "/root/repo/src/sw/alignment.cpp" "src/sw/CMakeFiles/gdsm_sw.dir/alignment.cpp.o" "gcc" "src/sw/CMakeFiles/gdsm_sw.dir/alignment.cpp.o.d"
  "/root/repo/src/sw/banded.cpp" "src/sw/CMakeFiles/gdsm_sw.dir/banded.cpp.o" "gcc" "src/sw/CMakeFiles/gdsm_sw.dir/banded.cpp.o.d"
  "/root/repo/src/sw/full_matrix.cpp" "src/sw/CMakeFiles/gdsm_sw.dir/full_matrix.cpp.o" "gcc" "src/sw/CMakeFiles/gdsm_sw.dir/full_matrix.cpp.o.d"
  "/root/repo/src/sw/heuristic_scan.cpp" "src/sw/CMakeFiles/gdsm_sw.dir/heuristic_scan.cpp.o" "gcc" "src/sw/CMakeFiles/gdsm_sw.dir/heuristic_scan.cpp.o.d"
  "/root/repo/src/sw/hirschberg.cpp" "src/sw/CMakeFiles/gdsm_sw.dir/hirschberg.cpp.o" "gcc" "src/sw/CMakeFiles/gdsm_sw.dir/hirschberg.cpp.o.d"
  "/root/repo/src/sw/linear_score.cpp" "src/sw/CMakeFiles/gdsm_sw.dir/linear_score.cpp.o" "gcc" "src/sw/CMakeFiles/gdsm_sw.dir/linear_score.cpp.o.d"
  "/root/repo/src/sw/protein.cpp" "src/sw/CMakeFiles/gdsm_sw.dir/protein.cpp.o" "gcc" "src/sw/CMakeFiles/gdsm_sw.dir/protein.cpp.o.d"
  "/root/repo/src/sw/reverse_rebuild.cpp" "src/sw/CMakeFiles/gdsm_sw.dir/reverse_rebuild.cpp.o" "gcc" "src/sw/CMakeFiles/gdsm_sw.dir/reverse_rebuild.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gdsm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
