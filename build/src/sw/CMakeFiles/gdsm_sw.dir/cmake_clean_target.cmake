file(REMOVE_RECURSE
  "libgdsm_sw.a"
)
