# Empty compiler generated dependencies file for gdsm_sw.
# This may be replaced when dependencies are built.
