file(REMOVE_RECURSE
  "CMakeFiles/gdsm_sw.dir/affine.cpp.o"
  "CMakeFiles/gdsm_sw.dir/affine.cpp.o.d"
  "CMakeFiles/gdsm_sw.dir/alignment.cpp.o"
  "CMakeFiles/gdsm_sw.dir/alignment.cpp.o.d"
  "CMakeFiles/gdsm_sw.dir/banded.cpp.o"
  "CMakeFiles/gdsm_sw.dir/banded.cpp.o.d"
  "CMakeFiles/gdsm_sw.dir/full_matrix.cpp.o"
  "CMakeFiles/gdsm_sw.dir/full_matrix.cpp.o.d"
  "CMakeFiles/gdsm_sw.dir/heuristic_scan.cpp.o"
  "CMakeFiles/gdsm_sw.dir/heuristic_scan.cpp.o.d"
  "CMakeFiles/gdsm_sw.dir/hirschberg.cpp.o"
  "CMakeFiles/gdsm_sw.dir/hirschberg.cpp.o.d"
  "CMakeFiles/gdsm_sw.dir/linear_score.cpp.o"
  "CMakeFiles/gdsm_sw.dir/linear_score.cpp.o.d"
  "CMakeFiles/gdsm_sw.dir/protein.cpp.o"
  "CMakeFiles/gdsm_sw.dir/protein.cpp.o.d"
  "CMakeFiles/gdsm_sw.dir/reverse_rebuild.cpp.o"
  "CMakeFiles/gdsm_sw.dir/reverse_rebuild.cpp.o.d"
  "libgdsm_sw.a"
  "libgdsm_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdsm_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
