file(REMOVE_RECURSE
  "CMakeFiles/gdsm_blast.dir/blastn.cpp.o"
  "CMakeFiles/gdsm_blast.dir/blastn.cpp.o.d"
  "CMakeFiles/gdsm_blast.dir/statistics.cpp.o"
  "CMakeFiles/gdsm_blast.dir/statistics.cpp.o.d"
  "libgdsm_blast.a"
  "libgdsm_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdsm_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
