file(REMOVE_RECURSE
  "libgdsm_blast.a"
)
