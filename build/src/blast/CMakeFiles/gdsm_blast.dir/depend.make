# Empty dependencies file for gdsm_blast.
# This may be replaced when dependencies are built.
