file(REMOVE_RECURSE
  "CMakeFiles/gdsm_core.dir/blocked.cpp.o"
  "CMakeFiles/gdsm_core.dir/blocked.cpp.o.d"
  "CMakeFiles/gdsm_core.dir/blocked_mp.cpp.o"
  "CMakeFiles/gdsm_core.dir/blocked_mp.cpp.o.d"
  "CMakeFiles/gdsm_core.dir/column_store.cpp.o"
  "CMakeFiles/gdsm_core.dir/column_store.cpp.o.d"
  "CMakeFiles/gdsm_core.dir/exact_parallel.cpp.o"
  "CMakeFiles/gdsm_core.dir/exact_parallel.cpp.o.d"
  "CMakeFiles/gdsm_core.dir/phase2.cpp.o"
  "CMakeFiles/gdsm_core.dir/phase2.cpp.o.d"
  "CMakeFiles/gdsm_core.dir/preprocess.cpp.o"
  "CMakeFiles/gdsm_core.dir/preprocess.cpp.o.d"
  "CMakeFiles/gdsm_core.dir/reprocess.cpp.o"
  "CMakeFiles/gdsm_core.dir/reprocess.cpp.o.d"
  "CMakeFiles/gdsm_core.dir/sim_hybrid.cpp.o"
  "CMakeFiles/gdsm_core.dir/sim_hybrid.cpp.o.d"
  "CMakeFiles/gdsm_core.dir/sim_strategies.cpp.o"
  "CMakeFiles/gdsm_core.dir/sim_strategies.cpp.o.d"
  "CMakeFiles/gdsm_core.dir/wavefront.cpp.o"
  "CMakeFiles/gdsm_core.dir/wavefront.cpp.o.d"
  "libgdsm_core.a"
  "libgdsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gdsm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
