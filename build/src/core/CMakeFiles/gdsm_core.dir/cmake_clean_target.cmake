file(REMOVE_RECURSE
  "libgdsm_core.a"
)
