
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/blocked.cpp" "src/core/CMakeFiles/gdsm_core.dir/blocked.cpp.o" "gcc" "src/core/CMakeFiles/gdsm_core.dir/blocked.cpp.o.d"
  "/root/repo/src/core/blocked_mp.cpp" "src/core/CMakeFiles/gdsm_core.dir/blocked_mp.cpp.o" "gcc" "src/core/CMakeFiles/gdsm_core.dir/blocked_mp.cpp.o.d"
  "/root/repo/src/core/column_store.cpp" "src/core/CMakeFiles/gdsm_core.dir/column_store.cpp.o" "gcc" "src/core/CMakeFiles/gdsm_core.dir/column_store.cpp.o.d"
  "/root/repo/src/core/exact_parallel.cpp" "src/core/CMakeFiles/gdsm_core.dir/exact_parallel.cpp.o" "gcc" "src/core/CMakeFiles/gdsm_core.dir/exact_parallel.cpp.o.d"
  "/root/repo/src/core/phase2.cpp" "src/core/CMakeFiles/gdsm_core.dir/phase2.cpp.o" "gcc" "src/core/CMakeFiles/gdsm_core.dir/phase2.cpp.o.d"
  "/root/repo/src/core/preprocess.cpp" "src/core/CMakeFiles/gdsm_core.dir/preprocess.cpp.o" "gcc" "src/core/CMakeFiles/gdsm_core.dir/preprocess.cpp.o.d"
  "/root/repo/src/core/reprocess.cpp" "src/core/CMakeFiles/gdsm_core.dir/reprocess.cpp.o" "gcc" "src/core/CMakeFiles/gdsm_core.dir/reprocess.cpp.o.d"
  "/root/repo/src/core/sim_hybrid.cpp" "src/core/CMakeFiles/gdsm_core.dir/sim_hybrid.cpp.o" "gcc" "src/core/CMakeFiles/gdsm_core.dir/sim_hybrid.cpp.o.d"
  "/root/repo/src/core/sim_strategies.cpp" "src/core/CMakeFiles/gdsm_core.dir/sim_strategies.cpp.o" "gcc" "src/core/CMakeFiles/gdsm_core.dir/sim_strategies.cpp.o.d"
  "/root/repo/src/core/wavefront.cpp" "src/core/CMakeFiles/gdsm_core.dir/wavefront.cpp.o" "gcc" "src/core/CMakeFiles/gdsm_core.dir/wavefront.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sw/CMakeFiles/gdsm_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/gdsm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/gdsm_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gdsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gdsm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gdsm_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
