# Empty compiler generated dependencies file for gdsm_core.
# This may be replaced when dependencies are built.
