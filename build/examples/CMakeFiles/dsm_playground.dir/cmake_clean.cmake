file(REMOVE_RECURSE
  "CMakeFiles/dsm_playground.dir/dsm_playground.cpp.o"
  "CMakeFiles/dsm_playground.dir/dsm_playground.cpp.o.d"
  "dsm_playground"
  "dsm_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
