# Empty compiler generated dependencies file for dsm_playground.
# This may be replaced when dependencies are built.
