file(REMOVE_RECURSE
  "CMakeFiles/exact_pipeline.dir/exact_pipeline.cpp.o"
  "CMakeFiles/exact_pipeline.dir/exact_pipeline.cpp.o.d"
  "exact_pipeline"
  "exact_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
