# Empty compiler generated dependencies file for exact_pipeline.
# This may be replaced when dependencies are built.
