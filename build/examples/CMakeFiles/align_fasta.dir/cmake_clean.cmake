file(REMOVE_RECURSE
  "CMakeFiles/align_fasta.dir/align_fasta.cpp.o"
  "CMakeFiles/align_fasta.dir/align_fasta.cpp.o.d"
  "align_fasta"
  "align_fasta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_fasta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
