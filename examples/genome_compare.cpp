// genome_compare: the full GenomeDSM workflow on whole (synthetic) genomes,
// running the PARALLEL strategies on the threaded DSM cluster.
//
//   build/examples/genome_compare [--size=12000] [--procs=4]
//                                 [--strategy=blocked|wavefront]
//                                 [--regions=10] [--fasta-out=pair.fa]
//
// Pipeline (Sections 4.2-4.4):
//   1. generate (or load) two genomes with shared homologous regions;
//   2. phase 1 on the DSM cluster: similarity regions + protocol stats;
//   3. phase 2 on the DSM cluster: scattered-mapping global alignment;
//   4. visualize: terminal dot plot (the paper's Fig. 14 tool) and Fig. 16
//      alignment records for the top regions.
#include <algorithm>
#include <iostream>

#include "core/blocked.h"
#include "core/phase2.h"
#include "core/wavefront.h"
#include "util/args.h"
#include "util/fasta.h"
#include "util/genome.h"
#include "util/timer.h"
#include "viz/dotplot.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  const auto size = static_cast<std::size_t>(args.get_int("size", 12'000));
  const int procs = static_cast<int>(args.get_int("procs", 4));
  const std::string strategy = args.get("strategy", "blocked");
  const auto n_regions = static_cast<std::size_t>(args.get_int("regions", 10));

  std::cout << "GenomeDSM genome comparison: " << size / 1000 << " kBP x "
            << size / 1000 << " kBP, " << procs << " DSM nodes, strategy '"
            << strategy << "'\n\n";

  HomologousPairSpec spec;
  spec.length_s = size;
  spec.length_t = size;
  spec.n_regions = n_regions;
  spec.region_len_mean = 300;  // the paper's average similar-region size
  spec.region_len_spread = 100;
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 2005));
  const HomologousPair pair = make_homologous_pair(spec);

  if (args.has("fasta-out")) {
    write_fasta_file(args.get("fasta-out"), {pair.s, pair.t});
    std::cout << "wrote FASTA pair to " << args.get("fasta-out") << "\n";
  }

  // ---- phase 1: similarity regions on the DSM cluster ----
  Timer timer;
  HeuristicParams params;
  params.min_report_score = 50;
  core::StrategyResult phase1;
  if (strategy == "wavefront") {
    core::WavefrontConfig cfg;
    cfg.nprocs = procs;
    cfg.params = params;
    phase1 = core::wavefront_align(pair.s, pair.t, cfg);
  } else {
    core::BlockedConfig cfg;
    cfg.nprocs = procs;
    cfg.params = params;
    phase1 = core::blocked_align(pair.s, pair.t, cfg);
  }
  std::cout << "phase 1: " << phase1.candidates.size()
            << " similarity regions in " << timer.seconds()
            << " s (host wall clock)\n";
  const auto total = phase1.dsm_stats.total_node();
  std::cout << "  DSM activity: " << total.read_faults << " page faults, "
            << total.diffs_sent << " diffs, " << total.invalidations
            << " invalidations, " << total.cv_signals << " cv signals, "
            << phase1.dsm_stats.total_traffic().total_messages()
            << " messages ("
            << phase1.dsm_stats.total_traffic().total_bytes() / 1024
            << " KiB)\n\n";

  // ---- dot plot (Fig. 14) ----
  std::cout << viz::render_dotplot(phase1.candidates, pair.s.size(),
                                   pair.t.size())
            << "\n";

  // ---- phase 2: global alignments with scattered mapping ----
  timer.reset();
  core::Phase2Config p2;
  p2.nprocs = procs;
  const core::Phase2Result phase2 =
      core::phase2_align(pair.s, pair.t, phase1.candidates, p2);
  std::cout << "phase 2: " << phase2.alignments.size()
            << " global alignments in " << timer.seconds() << " s\n\n";

  // ---- Fig. 16-style records for the top distinct regions ----
  const auto distinct = cull_overlapping_candidates(phase1.candidates, 2);
  std::vector<Alignment> top;
  for (const Candidate& c : distinct) {
    top.push_back(core::align_region(pair.s, pair.t, c));
  }
  std::cout << viz::format_alignment_report(pair.s, pair.t, top);

  // ---- ground truth check ----
  std::size_t covered = 0;
  for (const PlantedRegion& r : pair.regions) {
    covered += std::any_of(
        phase1.candidates.begin(), phase1.candidates.end(),
        [&](const Candidate& c) {
          return c.s_end >= r.s_begin + 1 && c.s_begin <= r.s_end &&
                 c.t_end >= r.t_begin + 1 && c.t_begin <= r.t_end;
        });
  }
  std::cout << "ground truth: " << covered << "/" << pair.regions.size()
            << " planted homologies detected\n";
  return covered == pair.regions.size() ? 0 : 1;
}
