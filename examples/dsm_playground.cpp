// dsm_playground: the JIAJIA-like DSM substrate by itself.
//
//   build/examples/dsm_playground [--nodes=4]
//
// Three classic shared-memory idioms, with the protocol activity printed
// after each (page faults, twins/diffs, invalidations, message counts):
//   1. a lock-protected shared counter (mutual exclusion + coherence);
//   2. a producer/consumer pipeline over condition variables — exactly the
//      Strategy-1 border-cell handshake;
//   3. a barrier-synchronized multiple-writer page (each node writes its own
//      slice of ONE page; the home merges the diffs).
#include <iostream>

#include "dsm/cluster.h"
#include "util/args.h"

namespace {

void print_stats(const char* what, const gdsm::dsm::DsmStats& stats) {
  const auto t = stats.total_node();
  std::cout << "  [" << what << "] faults=" << t.read_faults
            << " twins=" << t.write_faults << " diffs=" << t.diffs_sent
            << " (" << t.diff_bytes << " B) invalidations=" << t.invalidations
            << " locks=" << t.lock_acquires << " cv=" << t.cv_signals << "/"
            << t.cv_waits << " barriers=" << t.barriers
            << " msgs=" << stats.total_traffic().total_messages() << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gdsm::dsm;
  const gdsm::Args args(argc, argv);
  const int nodes = static_cast<int>(args.get_int("nodes", 4));

  std::cout << "JIAJIA-like DSM playground, " << nodes << " nodes\n\n";

  // --- 1. lock-protected shared counter ---
  {
    Cluster cluster(nodes);
    const GlobalAddr counter = cluster.alloc(sizeof(int), /*home=*/0);
    cluster.run([&](Node& node) {
      for (int k = 0; k < 100; ++k) {
        node.lock(0);
        node.write<int>(counter, node.read<int>(counter) + 1);
        node.unlock(0);
      }
      node.barrier();
      if (node.id() == 0) {
        std::cout << "1. shared counter after " << 100 * node.nodes()
                  << " locked increments: " << node.read<int>(counter) << "\n";
      }
    });
    print_stats("locks", cluster.stats());
  }

  // --- 2. producer/consumer pipeline (the wave-front handshake) ---
  {
    Cluster cluster(nodes);
    std::vector<GlobalAddr> slots;
    for (int p = 0; p + 1 < nodes; ++p) {
      slots.push_back(cluster.alloc(sizeof(long), p));
    }
    cluster.run([&](Node& node) {
      const int p = node.id();
      constexpr int kRounds = 200;
      for (int r = 0; r < kRounds; ++r) {
        long value = r;
        if (p > 0) {
          node.waitcv(p - 1);  // data ready
          value = node.read<long>(slots[static_cast<std::size_t>(p - 1)]);
          node.setcv(nodes + p - 1);  // slot free
        }
        value += p + 1;
        if (p + 1 < nodes) {
          if (r > 0) node.waitcv(nodes + p);
          node.write<long>(slots[static_cast<std::size_t>(p)], value);
          node.setcv(p);
        } else if (r + 1 == kRounds) {
          // value = (r) + sum(1..nodes)
          std::cout << "2. pipeline delivered " << value << " (expected "
                    << (kRounds - 1) + nodes * (nodes + 1) / 2 << ")\n";
        }
      }
      node.barrier();
    });
    print_stats("pipeline", cluster.stats());
  }

  // --- 3. multiple writers on one page, merged at a barrier ---
  {
    Cluster cluster(nodes);
    const GlobalAddr arr =
        cluster.alloc(static_cast<std::size_t>(nodes) * sizeof(int), 0);
    cluster.run([&](Node& node) {
      node.write<int>(arr + node.id() * sizeof(int), (node.id() + 1) * 11);
      node.barrier();  // diffs travel home, write notices invalidate copies
      if (node.id() == nodes - 1) {
        int sum = 0;
        for (int i = 0; i < node.nodes(); ++i) {
          sum += node.read<int>(arr + i * sizeof(int));
        }
        std::cout << "3. multiple-writer page sums to " << sum << " (expected "
                  << 11 * nodes * (nodes + 1) / 2 << ")\n";
      }
      node.barrier();
    });
    print_stats("multi-writer", cluster.stats());
  }
  return 0;
}
