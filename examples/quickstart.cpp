// Quickstart: align two small DNA sequences end to end.
//
//   build/examples/quickstart
//
// Demonstrates the two-phase GenomeDSM pipeline on a toy input:
//   phase 1 — the heuristic linear-space Smith-Waterman scan finds
//             similarity regions (candidate queue);
//   phase 2 — each region is globally aligned (Needleman-Wunsch) and
//             printed in the paper's Fig. 16 record format.
// Also shows the exact Section 6 alternative (reverse rebuild).
#include <iostream>

#include "core/phase2.h"
#include "sw/heuristic_scan.h"
#include "sw/protein.h"
#include "sw/reverse_rebuild.h"
#include "viz/dotplot.h"

int main() {
  using namespace gdsm;

  // The paper's own example pair (Fig. 1), embedded in some flanking DNA.
  const Sequence s("query", "TTGCAAGTCCAGACGGATTAGCCTTGGAGTAC");
  const Sequence t("subject", "CCGTAAGATCGGAATAGTTAAGCCGCGTATGG");

  std::cout << "Sequences:\n  s = " << s.text() << "\n  t = " << t.text()
            << "\n\n";

  // Phase 1: similarity regions via the heuristic linear-space scan.
  HeuristicParams params;
  params.min_report_score = 5;
  const auto regions = heuristic_scan(s, t, ScoreScheme{}, params);
  std::cout << "Phase 1 found " << regions.size() << " similarity region(s)\n";
  for (const Candidate& c : regions) {
    std::cout << "  score " << c.score << " at s[" << c.s_begin << ".."
              << c.s_end << "] x t[" << c.t_begin << ".." << c.t_end << "]\n";
  }
  std::cout << "\n";

  // Phase 2: re-align each region in a padded window (the heuristic's begin
  // coordinate trails the true start by ~open_threshold columns) and print
  // Fig. 16-style records.
  std::vector<Alignment> alignments;
  for (const Candidate& c : regions) {
    alignments.push_back(core::align_region_local(s, t, c, /*margin=*/16));
  }
  std::cout << viz::format_alignment_report(s, t, alignments);

  // The exact alternative: best local alignment via Section 6's
  // linear-space detection + reverse rebuild.
  const RebuildResult exact = rebuild_best_local_alignment(s, t);
  std::cout << "Exact best local alignment (Section 6 rebuild), score "
            << exact.alignment.score << " (CIGAR " << exact.alignment.cigar()
            << "):\n";
  const auto lines = exact.alignment.render(s, t);
  std::cout << "  " << lines[0] << "\n  " << lines[1] << "\n  " << lines[2]
            << "\n\n";

  // Bonus: the same machinery aligns proteins (BLOSUM62 + affine gaps).
  const ProteinSequence pa("pa", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIE");
  const ProteinSequence pb("pb", "MKTAYIAKQRQISFVKSHFSRQEERLGLIE");
  const Alignment pal = protein_smith_waterman(pa, pb);
  const auto plines = render_protein_alignment(pal, pa, pb);
  std::cout << "Protein local alignment (BLOSUM62), score " << pal.score
            << ":\n  " << plines[0] << "\n  " << plines[1] << "\n  "
            << plines[2] << "\n";
  return 0;
}
