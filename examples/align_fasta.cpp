// align_fasta: the end-user tool — locally align two FASTA sequences with
// any of the repository's strategies.
//
//   build/examples/align_fasta [query.fa subject.fa]
//       [--strategy=blocked|wavefront|mp|exact|preprocess]
//       [--procs=4] [--min-score=50] [--top=3] [--dotplot=plot.ppm]
//
// With no files given, a demonstration pair with planted homologies is
// generated (and written to /tmp so the run is repeatable by hand).
//
// Strategies:
//   blocked    — Strategy 2 on the threaded DSM cluster (default)
//   wavefront  — Strategy 1 (per-row handshakes) on the DSM cluster
//   mp         — Strategy 2 on the message-passing substrate
//   exact      — Section 6: parallel score pass + reverse rebuild (top-k)
//   preprocess — Strategy 3: result-matrix scoreboard (prints the heat map)
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/blocked.h"
#include "core/blocked_mp.h"
#include "core/exact_parallel.h"
#include "core/phase2.h"
#include "core/preprocess.h"
#include "core/wavefront.h"
#include "sw/reverse_rebuild.h"
#include "util/args.h"
#include "util/fasta.h"
#include "util/table.h"
#include "util/genome.h"
#include "util/timer.h"
#include "viz/dotplot.h"

namespace {

using namespace gdsm;

std::pair<Sequence, Sequence> load_or_generate(const Args& args) {
  if (args.positional().size() >= 2) {
    const auto qs = read_fasta_file(args.positional()[0]);
    const auto ss = read_fasta_file(args.positional()[1]);
    if (qs.empty() || ss.empty()) {
      throw std::runtime_error("align_fasta: empty FASTA input");
    }
    return {qs[0], ss[0]};
  }
  std::cout << "(no FASTA inputs given: generating a 10 kBP demo pair with "
               "planted homologies)\n";
  HomologousPairSpec spec;
  spec.length_s = 10'000;
  spec.length_t = 10'000;
  spec.n_regions = 6;
  spec.region_len_mean = 300;
  spec.region_len_spread = 80;
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 77));
  const HomologousPair pair = make_homologous_pair(spec);
  write_fasta_file("/tmp/gdsm_demo_query.fa", {pair.s});
  write_fasta_file("/tmp/gdsm_demo_subject.fa", {pair.t});
  std::cout << "(wrote /tmp/gdsm_demo_query.fa and /tmp/gdsm_demo_subject.fa)\n\n";
  return {pair.s, pair.t};
}

int run_region_strategy(const Sequence& s, const Sequence& t, const Args& args,
                        const std::string& strategy) {
  const int procs = static_cast<int>(args.get_int("procs", 4));
  HeuristicParams params;
  params.min_report_score = static_cast<int>(args.get_int("min-score", 50));

  Timer timer;
  std::vector<Candidate> queue;
  if (strategy == "wavefront") {
    core::WavefrontConfig cfg;
    cfg.nprocs = procs;
    cfg.params = params;
    queue = core::wavefront_align(s, t, cfg).candidates;
  } else if (strategy == "mp") {
    core::BlockedConfig cfg;
    cfg.nprocs = procs;
    cfg.params = params;
    queue = core::blocked_align_mp(s, t, cfg).candidates;
  } else {
    core::BlockedConfig cfg;
    cfg.nprocs = procs;
    cfg.params = params;
    queue = core::blocked_align(s, t, cfg).candidates;
  }
  std::cout << "phase 1 (" << strategy << ", " << procs << " nodes): "
            << queue.size() << " raw candidates in " << fmt_f(timer.seconds(), 2)
            << " s\n";

  const auto top = cull_overlapping_candidates(
      queue, static_cast<std::size_t>(args.get_int("top", 3)));
  std::cout << "top " << top.size() << " distinct regions:\n\n";
  std::vector<Alignment> alignments;
  for (const Candidate& c : top) {
    alignments.push_back(core::align_region_local(s, t, c, /*margin=*/48));
  }
  std::cout << viz::format_alignment_report(s, t, alignments);
  std::cout << viz::render_dotplot(top, s.size(), t.size());

  if (args.has("dotplot")) {
    const std::string path = args.get("dotplot");
    viz::write_dotplot_ppm(path, queue, s.size(), t.size());
    std::cout << "wrote " << path << "\n";
  }
  return top.empty() ? 1 : 0;
}

int run_exact(const Sequence& s, const Sequence& t, const Args& args) {
  const int procs = static_cast<int>(args.get_int("procs", 4));
  const int min_score = static_cast<int>(args.get_int("min-score", 50));
  Timer timer;

  core::ExactParallelConfig cfg;
  cfg.nprocs = procs;
  const core::ExactParallelResult best = core::exact_align_parallel(s, t, cfg);
  std::cout << "exact parallel score pass (" << procs << " ranks): best score "
            << best.best.score << " ending at (" << best.best.end_i << ","
            << best.best.end_j << ") in " << fmt_f(timer.seconds(), 2)
            << " s\n\n";
  if (best.best.score < min_score) {
    std::cout << "best score below --min-score; nothing to report\n";
    return 1;
  }
  const auto top = rebuild_top_alignments(
      s, t, min_score, static_cast<std::size_t>(args.get_int("top", 3)));
  std::vector<Alignment> alignments;
  alignments.reserve(top.size());
  for (const auto& r : top) alignments.push_back(r.alignment);
  std::cout << viz::format_alignment_report(s, t, alignments);
  return 0;
}

int run_preprocess(const Sequence& s, const Sequence& t, const Args& args) {
  const int procs = static_cast<int>(args.get_int("procs", 4));
  core::PreProcessConfig cfg;
  cfg.nprocs = procs;
  cfg.threshold = static_cast<int>(args.get_int("min-score", 50));
  cfg.band_rows = static_cast<std::size_t>(args.get_int("band", 1024));
  cfg.result_interleave = cfg.band_rows;

  Timer timer;
  const core::PreProcessResult res = core::preprocess_align(s, t, cfg);
  std::cout << "pre-process (" << procs << " nodes): " << res.total_hits()
            << " cells above threshold in " << fmt_f(timer.seconds(), 2)
            << " s\n";
  std::cout << viz::render_heatmap(res.result_matrix,
                                   "result matrix (hits per band x column group)");
  return res.total_hits() > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  try {
    const auto [s, t] = load_or_generate(args);
    std::cout << "query   " << s.name() << " (" << s.size() << " bp)\n"
              << "subject " << t.name() << " (" << t.size() << " bp)\n\n";
    const std::string strategy = args.get("strategy", "blocked");
    if (strategy == "exact") return run_exact(s, t, args);
    if (strategy == "preprocess") return run_preprocess(s, t, args);
    return run_region_strategy(s, t, args, strategy);
  } catch (const std::exception& e) {
    std::cerr << "align_fasta: " << e.what() << "\n";
    return 2;
  }
}
