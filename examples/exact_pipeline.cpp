// exact_pipeline: the EXACT workflow of Sections 5 and 6 — no heuristics.
//
//   build/examples/exact_pipeline [--size=6000] [--procs=4]
//                                 [--threshold=30] [--store=columns.bin]
//
//   1. Strategy 3 (pre-process) computes the full score matrix in bands on
//      the DSM cluster, building the result-matrix scoreboard and saving
//      every ip-th column to disk (immediate I/O).
//   2. The hottest result cell localizes an interesting area, which is
//      re-processed with full DP to retrieve its alignments (the paper's
//      "knowing interesting areas ... allows one to reprocess these limited
//      areas so as to retrieve the local alignments").
//   3. Section 6's reverse rebuild retrieves the best alignment EXACTLY
//      with no disk storage at all, in O(min(n,m) + n'^2) space.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/preprocess.h"
#include "core/reprocess.h"
#include "sw/full_matrix.h"
#include "sw/reverse_rebuild.h"
#include "util/args.h"
#include "util/genome.h"
#include "util/timer.h"
#include "viz/dotplot.h"

int main(int argc, char** argv) {
  using namespace gdsm;
  const Args args(argc, argv);
  const auto size = static_cast<std::size_t>(args.get_int("size", 6'000));
  const int procs = static_cast<int>(args.get_int("procs", 4));
  const int threshold = static_cast<int>(args.get_int("threshold", 30));
  const std::string store_path = args.get("store", "/tmp/gdsm_columns.bin");

  std::cout << "Exact pipeline (pre-process strategy + Section 6), " << size
            << " x " << size << ", " << procs << " DSM nodes\n\n";

  HomologousPairSpec spec;
  spec.length_s = size;
  spec.length_t = size;
  spec.n_regions = 3;
  spec.region_len_mean = 300;
  spec.region_len_spread = 50;
  spec.seed = 606;
  const HomologousPair pair = make_homologous_pair(spec);

  // ---- step 1: pre-process strategy with column + passage-row saving ----
  core::FileColumnStore store(store_path, core::IoMode::kImmediate);
  core::MemoryColumnStore row_store;  // passage-band checkpoints
  core::PreProcessConfig cfg;
  cfg.nprocs = procs;
  cfg.threshold = threshold;
  cfg.band_rows = 512;
  cfg.result_interleave = 512;
  cfg.save_interleave = 512;
  cfg.io_mode = core::IoMode::kImmediate;
  cfg.store = &store;
  cfg.row_store = &row_store;

  Timer timer;
  const core::PreProcessResult res = preprocess_align(pair.s, pair.t, cfg);
  std::cout << "pre-process: " << res.total_hits() << " hits >= " << threshold
            << " across " << res.bands() << " bands in " << timer.seconds()
            << " s; saved columns in " << store_path << "\n\n";

  // The result matrix as an ASCII heat map (the "scoreboard of points of
  // interest").
  std::cout << viz::render_heatmap(res.result_matrix,
                                   "result matrix (hits per band x column group)")
            << "\n";

  // ---- step 2: locate and re-process the hottest area ----
  std::size_t hot_band = 0, hot_group = 0;
  std::uint64_t hot = 0;
  for (std::size_t b = 0; b < res.result_matrix.size(); ++b) {
    for (std::size_t g = 0; g < res.result_matrix[b].size(); ++g) {
      if (res.result_matrix[b][g] > hot) {
        hot = res.result_matrix[b][g];
        hot_band = b;
        hot_group = g;
      }
    }
  }
  if (hot == 0) {
    std::cout << "no hits above threshold; try a lower --threshold\n";
    return 1;
  }
  // Pad the hot block (alignments crest inside it but start earlier), then
  // re-process EXACTLY from the saved checkpoints: the nearest saved column
  // anchors the left boundary, the nearest passage row the top boundary.
  const std::size_t pad = 600;
  core::Subregion region;
  region.row_lo = res.row_offsets[hot_band] > pad
                      ? res.row_offsets[hot_band] - pad + 1
                      : 1;
  region.row_hi = std::min(pair.s.size(), res.row_offsets[hot_band + 1] + pad);
  const std::size_t col_group_lo = hot_group * res.result_interleave;
  region.col_lo = col_group_lo > pad ? col_group_lo - pad + 1 : 1;
  region.col_hi =
      std::min(pair.t.size(), (hot_group + 1) * res.result_interleave + pad);
  std::cout << "hottest cell: band " << hot_band << ", column group "
            << hot_group << " (" << hot << " hits) -> re-processing s["
            << region.row_lo << ".." << region.row_hi << "] x t["
            << region.col_lo << ".." << region.col_hi << "]\n";

  const core::ReprocessResult rep = core::reprocess_region(
      pair.s, pair.t, core::FileColumnStore::load(store_path),
      row_store.snapshot(), region, threshold);
  std::cout << "checkpoint-anchored recomputation covered s["
            << rep.computed.row_lo << ".." << rep.computed.row_hi << "] x t["
            << rep.computed.col_lo << ".." << rep.computed.col_hi << "] ("
            << rep.scores.size() << " cells, vs "
            << pair.s.size() * pair.t.size() << " for the full matrix) and "
            << "yields " << rep.alignments.size() << " alignment(s); best score "
            << (rep.alignments.empty() ? 0 : rep.alignments[0].score) << "\n\n";

  // ---- step 3: Section 6 — exact best alignment, no disk at all ----
  timer.reset();
  const RebuildResult exact = rebuild_best_local_alignment(pair.s, pair.t);
  std::cout << "Section 6 rebuild: best local score " << exact.alignment.score
            << " at s[" << exact.alignment.s_begin + 1 << ".."
            << exact.alignment.s_end() << "] x t["
            << exact.alignment.t_begin + 1 << ".." << exact.alignment.t_end()
            << "] in " << timer.seconds() << " s; reverse pass computed "
            << exact.stats.computed_cells << " cells (vs "
            << exact.stats.rect_area << " rectangle)\n";
  std::remove(store_path.c_str());
  return 0;
}
