// align_serve: command-line front end of the multi-query alignment service
// (src/svc, docs/SERVICE.md).
//
// Loads one or more seeded subject genomes into the persistent DSM cluster,
// submits a batch of seeded probe queries through admission, and prints each
// outcome plus the service counters.  The default strategy is `auto` (the
// cost-model scheduler picks per query); `--verify` re-derives every answer
// with the serial reference.  `--report=<path>` writes a gdsm.run_report v3
// document with the "service" section (docs/METRICS.md).
//
//   align_serve --subjects=2 --queries=12 --subject-len=4000 \
//               --query-len=400 --verify --report=serve.json
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report.h"
#include "svc/service.h"
#include "util/args.h"
#include "util/fasta.h"
#include "util/genome.h"
#include "util/rng.h"

namespace {

using gdsm::obs::Json;
using gdsm::svc::StrategyKind;

constexpr const char* kUsage =
    "usage: align_serve [--subjects=K] [--queries=N] [--subject-len=L]\n"
    "                   [--query-len=L] [--seed=S] [--procs=P] [--workers=W]\n"
    "                   [--queue-cap=C] [--max-batch=B] [--strategy=NAME]\n"
    "                   [--gap=MODEL] [--gap-open=O] [--gap-extend=E]\n"
    "                   [--deadline-s=D] [--verify] [--report=PATH] [--quiet]\n"
    "                   [--db=FASTA | --db-gen=K] [--min-score=N]\n"
    "  --strategy  auto | wavefront | blocked | blocked_mp | exact\n"
    "  --gap       linear (default) | affine | mixed (alternate per query);\n"
    "              affine charges gap-open O (default -3) once per gap run\n"
    "              plus gap-extend E (default -1) per space\n"
    "  --db        serve a multi-sequence subject DATABASE from a FASTA file\n"
    "              instead of resident subjects: queries run the filtered\n"
    "              sharded scan and report per-fragment hits >= --min-score\n"
    "              (default 40).  --db-gen=K generates a seeded K-sequence\n"
    "              database of --subject-len bases each instead of reading\n"
    "              a file.\n";

bool parse_strategy(const std::string& name, StrategyKind& out) {
  for (int k = 0; k < gdsm::svc::kNumStrategies; ++k) {
    const auto kind = static_cast<StrategyKind>(k);
    if (name == gdsm::svc::strategy_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

/// A probe: a random slice of the subject, mutated, so it genuinely aligns.
gdsm::Sequence make_probe(const gdsm::Sequence& subject, std::size_t len,
                          gdsm::Rng& rng, std::uint64_t id) {
  len = std::min(len, subject.size());
  const std::size_t begin =
      len < subject.size() ? rng() % (subject.size() - len) : 0;
  gdsm::Sequence probe =
      gdsm::mutate(subject.slice(begin, begin + len), 0.05, 0.01, rng);
  probe.set_name("probe" + std::to_string(id));
  return probe;
}

}  // namespace

int main(int argc, char** argv) {
  const gdsm::Args args(argc, argv,
                        {"subjects", "queries", "subject-len", "query-len",
                         "seed", "procs", "workers", "queue-cap", "max-batch",
                         "strategy", "gap", "gap-open", "gap-extend",
                         "deadline-s", "db", "db-gen", "min-score", "report"});
  const auto unknown = args.unknown_keys(
      {"subjects", "queries", "subject-len", "query-len", "seed", "procs",
       "workers", "queue-cap", "max-batch", "strategy", "gap", "gap-open",
       "gap-extend", "deadline-s", "db", "db-gen", "min-score", "verify",
       "report", "quiet", "help"});
  if (!unknown.empty() || args.get_bool("help")) {
    std::cerr << kUsage;
    return unknown.empty() ? 0 : 2;
  }

  const auto n_subjects =
      static_cast<std::size_t>(args.get_int("subjects", 1));
  const auto n_queries = static_cast<std::size_t>(args.get_int("queries", 8));
  const auto subject_len =
      static_cast<std::size_t>(args.get_int("subject-len", 4000));
  const auto query_len =
      static_cast<std::size_t>(args.get_int("query-len", 400));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const bool quiet = args.get_bool("quiet");

  StrategyKind strategy = StrategyKind::kAuto;
  if (!parse_strategy(args.get("strategy", "auto"), strategy)) {
    std::cerr << "align_serve: unknown --strategy\n" << kUsage;
    return 2;
  }

  const std::string gap_mode = args.get("gap", "linear");
  if (gap_mode != "linear" && gap_mode != "affine" && gap_mode != "mixed") {
    std::cerr << "align_serve: unknown --gap\n" << kUsage;
    return 2;
  }
  gdsm::ScoreScheme affine_scheme;  // defaults except the open penalty
  affine_scheme.gap_open = static_cast<int>(args.get_int("gap-open", -3));
  affine_scheme.gap = static_cast<int>(args.get_int("gap-extend", -1));
  if (gap_mode != "linear" && !affine_scheme.affine()) {
    std::cerr << "align_serve: --gap=" << gap_mode
              << " needs a non-zero --gap-open\n";
    return 2;
  }

  gdsm::svc::ServiceConfig cfg;
  cfg.nprocs = static_cast<int>(args.get_int("procs", 4));
  cfg.workers = static_cast<int>(args.get_int("workers", 2));
  cfg.queue_capacity = static_cast<std::size_t>(args.get_int("queue-cap", 64));
  cfg.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 8));
  cfg.verify = args.get_bool("verify");
  gdsm::svc::AlignService service(cfg);

  const bool db_mode = args.has("db") || args.has("db-gen");
  const int min_score = static_cast<int>(args.get_int("min-score", 40));

  gdsm::Rng rng(seed);
  std::vector<gdsm::Sequence> subjects;  // db mode: the database sequences
  if (db_mode) {
    if (args.has("db")) {
      try {
        subjects = gdsm::read_fasta_file(args.get("db"));
      } catch (const std::exception& e) {
        std::cerr << "align_serve: cannot read --db FASTA: " << e.what()
                  << "\n";
        return 2;
      }
    } else {
      const auto n = static_cast<std::size_t>(args.get_int("db-gen", 4));
      for (std::size_t k = 0; k < n; ++k) {
        subjects.push_back(
            gdsm::random_dna(subject_len, rng, "db" + std::to_string(k)));
      }
    }
    if (subjects.empty()) {
      std::cerr << "align_serve: the database has no sequences\n";
      return 2;
    }
    service.load_db("db", subjects);
  } else {
    for (std::size_t k = 0; k < n_subjects; ++k) {
      gdsm::Sequence subject =
          gdsm::random_dna(subject_len, rng, "subject" + std::to_string(k));
      service.load_subject(subject);
      subjects.push_back(std::move(subject));
    }
  }

  std::vector<gdsm::svc::AlignService::Admission> admissions;
  admissions.reserve(n_queries);
  for (std::size_t i = 0; i < n_queries; ++i) {
    const gdsm::Sequence& subject = subjects[i % subjects.size()];
    gdsm::svc::QuerySpec spec;
    if (db_mode) {
      spec.database = "db";
      spec.min_score = min_score;
      // Alternate homologous probes (mutated database windows, which must
      // hit) with pure random probes (which mostly filter away).
      spec.query = i % 2 == 0
                       ? make_probe(subject, query_len, rng, i)
                       : gdsm::random_dna(query_len, rng,
                                          "probe" + std::to_string(i));
    } else {
      spec.subject = subject.name();
      spec.query = make_probe(subject, query_len, rng, i);
      spec.strategy = strategy;
    }
    // Mixed traffic alternates gap models so one service instance exercises
    // both dispatch paths (and, with --verify, both serial references).
    if (gap_mode == "affine" || (gap_mode == "mixed" && i % 2 == 1)) {
      spec.scheme = affine_scheme;
    }
    spec.deadline_s = args.get_double("deadline-s", 0.0);
    admissions.push_back(service.submit(std::move(spec)));
  }

  int failures = 0;
  std::vector<Json> rows;
  rows.reserve(admissions.size());
  for (std::size_t i = 0; i < admissions.size(); ++i) {
    const auto& adm = admissions[i];
    const bool affine_query =
        gap_mode == "affine" || (gap_mode == "mixed" && i % 2 == 1);
    const gdsm::svc::QueryOutcome& out = adm.ticket->wait();
    if (!out.ok) ++failures;
    Json row = Json::object();
    row.set("id", out.result.id);
    row.set("ok", out.ok);
    row.set("gap_model", affine_query ? "affine" : "linear");
    if (out.ok) {
      row.set("strategy", gdsm::svc::strategy_name(out.result.strategy));
      row.set("warm", out.result.warm);
      row.set("batch_size", out.result.batch_size);
      row.set("candidates", out.result.candidates.size());
      row.set("wait_s", out.result.wait_s);
      row.set("total_s", out.result.total_s);
      row.set("cache_hits", out.result.cache_hits);
      row.set("read_faults", out.result.read_faults);
      if (out.result.strategy == StrategyKind::kDbScan) {
        row.set("hits", out.result.db_hits.size());
        row.set("top_score",
                out.result.db_hits.empty() ? 0 : out.result.db_hits[0].score);
        row.set("fragments_scanned", out.result.db_fragments_scanned);
        row.set("fragments_rejected", out.result.db_fragments_rejected);
        row.set("fragments_aligned", out.result.db_fragments_aligned);
      }
    } else {
      row.set("error", out.error);
    }
    rows.push_back(std::move(row));
    if (quiet) continue;
    if (!out.ok) {
      std::cout << "query failed: " << out.error << "\n";
    } else if (out.result.strategy == StrategyKind::kDbScan) {
      std::cout << "query " << out.result.id << ": db_scan, "
                << (out.result.warm ? "warm" : "cold") << ", "
                << out.result.db_hits.size() << " hit(s)"
                << (out.result.db_hits.empty()
                        ? ""
                        : " top " + std::to_string(out.result.db_hits[0].score))
                << ", " << out.result.db_fragments_rejected << "/"
                << out.result.db_fragments_scanned << " filtered, total "
                << out.result.total_s * 1e3 << " ms\n";
    } else {
      std::cout << "query " << out.result.id << ": "
                << gdsm::svc::strategy_name(out.result.strategy) << ", "
                << (out.result.warm ? "warm" : "cold") << ", "
                << out.result.candidates.size() << " candidate(s)"
                << (out.result.strategy == StrategyKind::kExact
                        ? " best " + std::to_string(out.result.best.score)
                        : "")
                << ", batch " << out.result.batch_size << ", total "
                << out.result.total_s * 1e3 << " ms\n";
    }
  }

  service.drain();
  const gdsm::svc::ServiceStats stats = service.stats();
  service.shutdown();

  if (!quiet) {
    std::cout << "align_serve: " << stats.completed << " completed, "
              << stats.failed << " failed, " << stats.warm_queries
              << " warm / " << stats.cold_queries << " cold, "
              << stats.batched_queries << " batched\n";
  }

  if (args.has("report")) {
    gdsm::obs::RunReport report("align_serve",
                                "Multi-query alignment service run");
    report.set_param("subjects", args.get_int("subjects", 1));
    report.set_param("queries", args.get_int("queries", 8));
    report.set_param("subject_len", args.get_int("subject-len", 4000));
    report.set_param("query_len", args.get_int("query-len", 400));
    report.set_param("seed", args.get_int("seed", 42));
    report.set_param("procs", args.get_int("procs", 4));
    report.set_param("workers", args.get_int("workers", 2));
    report.set_param("strategy", args.get("strategy", "auto"));
    report.set_param("gap", gap_mode);
    if (gap_mode != "linear") {
      report.set_param("gap_open", affine_scheme.gap_open);
      report.set_param("gap_extend", affine_scheme.gap);
    }
    report.set_param("verify", cfg.verify);
    if (db_mode) {
      report.set_param("db", args.has("db") ? args.get("db") : "generated");
      report.set_param("db_sequences", subjects.size());
      report.set_param("min_score", min_score);
    }
    report.set_param("host_clock", true);  // latencies are wall time
    report.metrics().set("completed", stats.completed);
    report.metrics().set("failed", stats.failed);
    report.metrics().set("latency.p50_s", stats.total_latency.quantile(0.5));
    report.metrics().set("latency.p99_s", stats.total_latency.quantile(0.99));
    for (Json& row : rows) report.add_row("queries", std::move(row));
    report.set_section("service", stats.to_json());
    if (!report.write_file(args.get("report"))) return 2;
  }
  return failures == 0 ? 0 : 1;
}
