// kernel_info: print the SIMD kernel backends this binary can run on this
// host, one name per line (the GDSM_KERNEL vocabulary), widest last.  With
// --active, print only the backend the dispatch would pick (honouring
// GDSM_KERNEL).  tools/ci.sh uses the list to run tier-1 once per backend.
#include <cstring>
#include <iostream>

#include "simd/dispatch.h"

int main(int argc, char** argv) {
  bool active_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--active") == 0) {
      active_only = true;
    } else {
      std::cerr << "usage: kernel_info [--active]\n";
      return 2;
    }
  }
  if (active_only) {
    std::cout << gdsm::simd::active_backend_name() << "\n";
    return 0;
  }
  for (const gdsm::simd::Backend b : gdsm::simd::available_backends()) {
    std::cout << gdsm::simd::backend_name(b) << "\n";
  }
  return 0;
}
