// loadgen: seeded open-loop load generator for the alignment service.
//
// Arrivals are generated on a fixed seeded schedule (exponential
// inter-arrival times at `--rate` queries/s) regardless of how fast the
// service drains them — the open-loop discipline that actually exposes
// queueing: when the service falls behind, the admission queue fills and
// try_push rejects with backpressure instead of the generator slowing down.
//
// Every completed query is verified against its single-query serial
// reference (heuristic_scan / sw_best_score_linear) computed independently
// here; any mismatch fails the run.  `--report=<path>` writes a
// gdsm.run_report v3 document with throughput, latency and the full
// "service" section.
//
//   loadgen --rate=40 --duration-s=5 --verify-all --report=loadgen.json
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "db/db_align.h"
#include "db/subject_db.h"
#include "obs/report.h"
#include "svc/service.h"
#include "sw/affine.h"
#include "sw/heuristic_scan.h"
#include "sw/linear_score.h"
#include "util/args.h"
#include "util/fasta.h"
#include "util/genome.h"
#include "util/rng.h"

namespace {

using gdsm::obs::Json;
using gdsm::svc::StrategyKind;

constexpr const char* kUsage =
    "usage: loadgen [--rate=QPS] [--duration-s=S] [--subjects=K]\n"
    "               [--subject-len=L] [--query-len=L] [--seed=S] [--procs=P]\n"
    "               [--workers=W] [--queue-cap=C] [--max-batch=B]\n"
    "               [--deadline-s=D] [--exact-every=N] [--no-verify]\n"
    "               [--gap=MODEL] [--gap-open=O] [--gap-extend=E]\n"
    "               [--min-in-flight=N] [--db=FASTA | --db-gen=K]\n"
    "               [--min-score=N] [--report=PATH] [--quiet]\n"
    "  open-loop: arrivals follow the seeded schedule even when the service\n"
    "  falls behind; backpressure rejects are counted, not retried.\n"
    "  --exact-every=N    every Nth query runs the exact strategy (0 = never)\n"
    "  --gap=MODEL        linear (default) | affine | mixed: gap model of the\n"
    "                     offered queries (mixed alternates per arrival)\n"
    "  --min-in-flight=N  fail unless N queries were ever in flight at once\n"
    "  --db / --db-gen    offer database-scan traffic instead of subject\n"
    "                     queries: a FASTA database (or K generated\n"
    "                     sequences of --subject-len bases) served through\n"
    "                     the filtered sharded scan; each completed query is\n"
    "                     verified against the serial all-pairs oracle\n";

struct Flight {
  std::size_t subject_idx = 0;
  gdsm::Sequence query;
  StrategyKind strategy = StrategyKind::kAuto;
  gdsm::ScoreScheme scheme{};  ///< gap model this arrival carried
  gdsm::svc::TicketPtr ticket;
};

}  // namespace

int main(int argc, char** argv) {
  const gdsm::Args args(argc, argv,
                        {"rate", "duration-s", "subjects", "subject-len",
                         "query-len", "seed", "procs", "workers", "queue-cap",
                         "max-batch", "deadline-s", "exact-every", "gap",
                         "gap-open", "gap-extend", "min-in-flight", "db",
                         "db-gen", "min-score", "report"});
  const auto unknown = args.unknown_keys(
      {"rate", "duration-s", "subjects", "subject-len", "query-len", "seed",
       "procs", "workers", "queue-cap", "max-batch", "deadline-s",
       "exact-every", "gap", "gap-open", "gap-extend", "min-in-flight", "db",
       "db-gen", "min-score", "no-verify", "report", "quiet", "help"});
  if (!unknown.empty() || args.get_bool("help")) {
    std::cerr << kUsage;
    return unknown.empty() ? 0 : 2;
  }

  const double rate = args.get_double("rate", 20.0);
  const double duration_s = args.get_double("duration-s", 5.0);
  const auto n_subjects = static_cast<std::size_t>(args.get_int("subjects", 2));
  const auto subject_len =
      static_cast<std::size_t>(args.get_int("subject-len", 3000));
  const auto query_len =
      static_cast<std::size_t>(args.get_int("query-len", 300));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto exact_every =
      static_cast<std::size_t>(args.get_int("exact-every", 0));
  const bool verify = !args.get_bool("no-verify");
  const bool quiet = args.get_bool("quiet");
  if (rate <= 0 || duration_s <= 0) {
    std::cerr << "loadgen: --rate and --duration-s must be positive\n";
    return 2;
  }

  const std::string gap_mode = args.get("gap", "linear");
  if (gap_mode != "linear" && gap_mode != "affine" && gap_mode != "mixed") {
    std::cerr << "loadgen: unknown --gap\n" << kUsage;
    return 2;
  }
  gdsm::ScoreScheme affine_scheme;
  affine_scheme.gap_open = static_cast<int>(args.get_int("gap-open", -3));
  affine_scheme.gap = static_cast<int>(args.get_int("gap-extend", -1));
  if (gap_mode != "linear" && !affine_scheme.affine()) {
    std::cerr << "loadgen: --gap=" << gap_mode
              << " needs a non-zero --gap-open\n";
    return 2;
  }

  gdsm::svc::ServiceConfig cfg;
  cfg.nprocs = static_cast<int>(args.get_int("procs", 4));
  cfg.workers = static_cast<int>(args.get_int("workers", 2));
  cfg.queue_capacity = static_cast<std::size_t>(args.get_int("queue-cap", 64));
  cfg.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 8));
  gdsm::svc::AlignService service(cfg);

  const bool db_mode = args.has("db") || args.has("db-gen");
  const int min_score = static_cast<int>(args.get_int("min-score", 40));

  gdsm::Rng rng(seed);
  std::vector<gdsm::Sequence> subjects;  // db mode: the database sequences
  gdsm::db::SubjectDb reference_db;      // db mode: the verify oracle's copy
  if (db_mode) {
    if (args.has("db")) {
      try {
        subjects = gdsm::read_fasta_file(args.get("db"));
      } catch (const std::exception& e) {
        std::cerr << "loadgen: cannot read --db FASTA: " << e.what() << "\n";
        return 2;
      }
    } else {
      const auto n = static_cast<std::size_t>(args.get_int("db-gen", 4));
      for (std::size_t k = 0; k < n; ++k) {
        subjects.push_back(
            gdsm::random_dna(subject_len, rng, "db" + std::to_string(k)));
      }
    }
    if (subjects.empty()) {
      std::cerr << "loadgen: the database has no sequences\n";
      return 2;
    }
    service.load_db("db", subjects);
    if (verify) reference_db = gdsm::db::SubjectDb(subjects);
  } else {
    for (std::size_t k = 0; k < n_subjects; ++k) {
      gdsm::Sequence subject =
          gdsm::random_dna(subject_len, rng, "subject" + std::to_string(k));
      service.load_subject(subject);
      subjects.push_back(std::move(subject));
    }
  }

  // Open loop: the whole arrival schedule is derived from the seed before
  // any query runs, so two loadgen runs offer identical traffic.
  std::vector<double> arrival_s;
  for (double t = 0;;) {
    const double u =
        (static_cast<double>(rng() >> 11) + 0.5) * 0x1p-53;  // (0, 1)
    t += -std::log(u) / rate;  // exponential inter-arrival
    if (t >= duration_s) break;
    arrival_s.push_back(t);
  }

  std::vector<Flight> flights;
  flights.reserve(arrival_s.size());
  std::uint64_t offered = 0, rejected = 0;
  std::size_t max_in_flight = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const double at : arrival_s) {
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(at)));
    Flight f;
    f.subject_idx = rng() % subjects.size();
    const gdsm::Sequence& subject = subjects[f.subject_idx];
    const std::size_t len = std::min(query_len, subject.size());
    if (db_mode && offered % 2 == 1) {
      // Half the offered database traffic is pure random probes, so the
      // filtration front-end sees both regimes under load.
      f.query = gdsm::random_dna(len, rng, "probe" + std::to_string(offered));
    } else {
      const std::size_t begin =
          len < subject.size() ? rng() % (subject.size() - len) : 0;
      f.query =
          gdsm::mutate(subject.slice(begin, begin + len), 0.05, 0.01, rng);
      f.query.set_name("probe" + std::to_string(offered));
    }
    if (!db_mode && exact_every != 0 && (offered + 1) % exact_every == 0) {
      f.strategy = StrategyKind::kExact;
    }
    if (gap_mode == "affine" || (gap_mode == "mixed" && offered % 2 == 1)) {
      f.scheme = affine_scheme;
    }
    gdsm::svc::QuerySpec spec;
    if (db_mode) {
      spec.database = "db";
      spec.min_score = min_score;
    } else {
      spec.subject = subject.name();
      spec.strategy = f.strategy;
    }
    spec.query = f.query;
    spec.scheme = f.scheme;
    spec.deadline_s = args.get_double("deadline-s", 0.0);
    gdsm::svc::AlignService::Admission adm = service.submit(std::move(spec));
    ++offered;
    if (!adm.admitted()) {
      ++rejected;
      continue;
    }
    f.ticket = std::move(adm.ticket);
    flights.push_back(std::move(f));
    std::size_t in_flight = 0;
    for (const Flight& fl : flights) {
      if (!fl.ticket->ready()) ++in_flight;
    }
    max_in_flight = std::max(max_in_flight, in_flight);
  }

  service.drain();

  // Judge every admitted query against its independently computed
  // single-query reference.
  std::uint64_t completed = 0, failed = 0, mismatches = 0;
  std::vector<Json> rows;
  rows.reserve(flights.size());
  for (const Flight& f : flights) {
    const gdsm::svc::QueryOutcome& out = f.ticket->wait();
    Json row = Json::object();
    row.set("id", out.result.id);
    row.set("ok", out.ok);
    row.set("gap_model", gdsm::gap_model_name(f.scheme.gap_model()));
    if (out.ok) {
      row.set("strategy", gdsm::svc::strategy_name(out.result.strategy));
      row.set("warm", out.result.warm);
      row.set("batch_size", out.result.batch_size);
      row.set("wait_s", out.result.wait_s);
      row.set("total_s", out.result.total_s);
    } else {
      row.set("error", out.error);
    }
    rows.push_back(std::move(row));
    if (!out.ok) {
      ++failed;
      if (!quiet) std::cout << "loadgen: query failed: " << out.error << "\n";
      continue;
    }
    ++completed;
    if (!verify) continue;
    const gdsm::Sequence& subject = subjects[f.subject_idx];
    if (db_mode) {
      // The filtered sharded scan must reproduce the serial all-pairs hit
      // set exactly (same oracle as tests/db_test.cpp).
      if (out.result.db_hits !=
          gdsm::db::brute_force_hits(reference_db, f.query, f.scheme,
                                     min_score)) {
        ++mismatches;
        std::cout << "loadgen: ORACLE MISMATCH (db hits) on query "
                  << out.result.id << "\n";
      }
    } else if (out.result.strategy == StrategyKind::kExact) {
      // Affine queries are judged by the serial scalar Gotoh scan, which
      // shares no code with the SIMD kernels the service dispatched.
      const gdsm::BestLocal ref =
          f.scheme.affine()
              ? gdsm::sw_best_score_affine_linear(f.query, subject,
                                                  gdsm::to_affine(f.scheme))
              : gdsm::sw_best_score_linear(f.query, subject, f.scheme);
      if (ref.score != out.result.best.score ||
          ref.end_i != out.result.best.end_i ||
          ref.end_j != out.result.best.end_j) {
        ++mismatches;
        std::cout << "loadgen: ORACLE MISMATCH (exact) on query "
                  << out.result.id << "\n";
      }
    } else if (gdsm::heuristic_scan(f.query, subject, f.scheme) !=
               out.result.candidates) {
      ++mismatches;
      std::cout << "loadgen: ORACLE MISMATCH (candidates) on query "
                << out.result.id << " via "
                << gdsm::svc::strategy_name(out.result.strategy) << "\n";
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const gdsm::svc::ServiceStats stats = service.stats();
  service.shutdown();

  const double throughput =
      wall_s > 0 ? static_cast<double>(completed) / wall_s : 0;
  if (!quiet) {
    std::cout << "loadgen: offered " << offered << ", completed " << completed
              << ", rejected " << rejected << ", failed " << failed
              << ", mismatches " << mismatches << "\n"
              << "  throughput " << throughput << " q/s, max in-flight "
              << max_in_flight << ", p50 "
              << stats.total_latency.quantile(0.5) * 1e3 << " ms, p99 "
              << stats.total_latency.quantile(0.99) * 1e3 << " ms\n";
  }

  if (args.has("report")) {
    gdsm::obs::RunReport report("loadgen",
                                "Open-loop service load generation");
    report.set_param("rate_qps", rate);
    report.set_param("duration_s", duration_s);
    report.set_param("subjects", args.get_int("subjects", 2));
    report.set_param("subject_len", args.get_int("subject-len", 3000));
    report.set_param("query_len", args.get_int("query-len", 300));
    report.set_param("seed", args.get_int("seed", 42));
    report.set_param("procs", args.get_int("procs", 4));
    report.set_param("workers", args.get_int("workers", 2));
    report.set_param("gap", gap_mode);
    if (gap_mode != "linear") {
      report.set_param("gap_open", affine_scheme.gap_open);
      report.set_param("gap_extend", affine_scheme.gap);
    }
    report.set_param("verify", verify);
    if (db_mode) {
      report.set_param("db", args.has("db") ? args.get("db") : "generated");
      report.set_param("db_sequences", subjects.size());
      report.set_param("min_score", min_score);
    }
    report.set_param("host_clock", true);  // wall-clock arrivals + latencies
    report.metrics().set("offered", offered);
    report.metrics().set("completed", completed);
    report.metrics().set("rejected", rejected);
    report.metrics().set("failed", failed);
    report.metrics().set("mismatches", mismatches);
    report.metrics().set("throughput_qps", throughput);
    report.metrics().set("max_in_flight", max_in_flight);
    report.metrics().set("latency.p50_s", stats.total_latency.quantile(0.5));
    report.metrics().set("latency.p99_s", stats.total_latency.quantile(0.99));
    for (Json& row : rows) report.add_row("queries", std::move(row));
    report.set_section("service", stats.to_json());
    if (!report.write_file(args.get("report"))) return 2;
  }
  const auto min_in_flight =
      static_cast<std::size_t>(args.get_int("min-in-flight", 0));
  if (max_in_flight < min_in_flight) {
    std::cout << "loadgen: max in-flight " << max_in_flight << " < required "
              << min_in_flight << " (raise --rate or lower --workers)\n";
    return 1;
  }
  return mismatches == 0 && failed == 0 ? 0 : 1;
}
