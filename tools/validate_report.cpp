// validate_report: check that a JSON file is a well-formed gdsm.run_report
// document (see docs/METRICS.md).  Used by the bench_smoke ctest label to
// fail loudly when a bench stops emitting a required key.
//
//   validate_report <report.json> [--require-read-faults]
//
// --require-read-faults additionally demands that some "read_faults"
// counter anywhere in the document is > 0 — i.e. the bench really drove
// the DSM, not just the simulator.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/report.h"

namespace {

using gdsm::obs::Json;

int fail(const std::string& path, const std::string& why) {
  std::cerr << "validate_report: " << path << ": " << why << "\n";
  return 1;
}

bool any_positive_read_faults(const Json& j) {
  switch (j.kind()) {
    case Json::Kind::kObject:
      for (const auto& [key, value] : j.members()) {
        if (key == "read_faults" && value.is_number() &&
            value.as_double() > 0) {
          return true;
        }
        if (any_positive_read_faults(value)) return true;
      }
      return false;
    case Json::Kind::kArray:
      for (const Json& item : j.items()) {
        if (any_positive_read_faults(item)) return true;
      }
      return false;
    default:
      return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool require_read_faults = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-read-faults") {
      require_read_faults = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "usage: validate_report <report.json> "
                   "[--require-read-faults]\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: validate_report <report.json> "
                 "[--require-read-faults]\n";
    return 2;
  }

  std::ifstream in(path);
  if (!in) return fail(path, "cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();

  Json doc;
  try {
    doc = Json::parse(buf.str());
  } catch (const gdsm::obs::JsonParseError& e) {
    return fail(path, e.what());
  }
  if (!doc.is_object()) return fail(path, "top level is not an object");

  for (const char* key : {"schema", "schema_version", "experiment", "title",
                          "build", "params", "metrics", "series"}) {
    if (!doc.has(key)) return fail(path, std::string("missing key '") + key +
                                             "'");
  }
  if (doc.at("schema").as_string() != gdsm::obs::kReportSchema) {
    return fail(path, "schema is not " +
                          std::string(gdsm::obs::kReportSchema));
  }
  if (!doc.at("schema_version").is_number() ||
      doc.at("schema_version").as_int() < gdsm::obs::kSchemaVersionMin ||
      doc.at("schema_version").as_int() > gdsm::obs::kSchemaVersion) {
    return fail(path, "schema_version outside [" +
                          std::to_string(gdsm::obs::kSchemaVersionMin) + ", " +
                          std::to_string(gdsm::obs::kSchemaVersion) + "]");
  }
  if (doc.at("experiment").as_string().empty()) {
    return fail(path, "empty experiment id");
  }
  if (!doc.at("build").is_object() || !doc.at("build").has("git") ||
      doc.at("build").at("git").as_string().empty()) {
    return fail(path, "missing build.git provenance");
  }
  const Json& series = doc.at("series");
  if (!series.is_object()) return fail(path, "series is not an object");
  if (series.members().empty()) return fail(path, "series is empty");
  for (const auto& [name, arr] : series.members()) {
    if (!arr.is_array() || arr.items().empty()) {
      return fail(path, "series '" + name + "' is not a non-empty array");
    }
    for (std::size_t r = 0; r < arr.items().size(); ++r) {
      if (!arr.items()[r].is_object()) {
        return fail(path, "series '" + name + "' row " + std::to_string(r) +
                              " is not an object");
      }
    }
  }

  if (doc.at("schema_version").as_int() >= 4) {
    // v4: the kernel section names the dispatched backend and carries the
    // four per-kernel counter blocks.
    const Json* sections = doc.find("sections");
    const Json* kernel = sections ? sections->find("kernel") : nullptr;
    if (kernel == nullptr || !kernel->is_object()) {
      return fail(path, "v4 report without sections.kernel");
    }
    const Json* backend = kernel->find("backend");
    if (backend == nullptr || !backend->is_string() ||
        backend->as_string().empty()) {
      return fail(path, "sections.kernel.backend missing or empty");
    }
    for (const char* k : {"best", "count", "hits", "nw"}) {
      const Json* counters = kernel->find(k);
      if (counters == nullptr || !counters->is_object() ||
          counters->find("calls") == nullptr ||
          counters->find("cells") == nullptr) {
        return fail(path, std::string("sections.kernel.") + k +
                              " missing calls/cells");
      }
    }
  }

  if (doc.at("schema_version").as_int() >= 5) {
    // v5: the comm section names the DSM data-plane mode and carries the
    // batched-plane counters.
    const Json* sections = doc.find("sections");
    const Json* comm = sections ? sections->find("comm") : nullptr;
    if (comm == nullptr || !comm->is_object()) {
      return fail(path, "v5 report without sections.comm");
    }
    const Json* mode = comm->find("mode");
    if (mode == nullptr || !mode->is_string() || mode->as_string().empty()) {
      return fail(path, "sections.comm.mode missing or empty");
    }
    for (const char* k :
         {"diff_batches_sent", "diff_pages_batched", "bulk_fetches",
          "bulk_pages_fetched", "prefetch_issued", "prefetch_hits",
          "prefetch_wasted", "empty_diffs_suppressed", "round_trips_saved"}) {
      const Json* counter = comm->find(k);
      if (counter == nullptr || !counter->is_number()) {
        return fail(path, std::string("sections.comm.") + k +
                              " missing or not a number");
      }
    }
  }

  if (require_read_faults && !any_positive_read_faults(doc)) {
    return fail(path, "no positive read_faults counter found "
                      "(--require-read-faults)");
  }

  std::cout << "validate_report: " << path << ": OK ("
            << doc.at("experiment").as_string() << ", " << series.size()
            << " series)\n";
  return 0;
}
