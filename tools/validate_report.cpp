// validate_report: check that a JSON file is a well-formed gdsm.run_report
// document (see docs/METRICS.md).  Used by the bench_smoke ctest label and
// tools/ci.sh to fail loudly when a bench stops emitting a required key.
//
//   validate_report <report.json> [--require-read-faults]
//
// --require-read-faults additionally demands that some "read_faults"
// counter anywhere in the document is > 0 — i.e. the bench really drove
// the DSM, not just the simulator.
//
// The schema rules themselves live in obs/validate.h (shared with
// tests/obs_test.cpp); this binary only adds file I/O and exit codes:
// 0 valid, 1 invalid, 2 usage.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/validate.h"

namespace {

int fail(const std::string& path, const std::string& why) {
  std::cerr << "validate_report: " << path << ": " << why << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool require_read_faults = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-read-faults") {
      require_read_faults = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "usage: validate_report <report.json> "
                   "[--require-read-faults]\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: validate_report <report.json> "
                 "[--require-read-faults]\n";
    return 2;
  }

  std::ifstream in(path);
  if (!in) return fail(path, "cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();

  gdsm::obs::Json doc;
  try {
    doc = gdsm::obs::Json::parse(buf.str());
  } catch (const gdsm::obs::JsonParseError& e) {
    return fail(path, e.what());
  }

  const std::string why =
      gdsm::obs::validate_run_report(doc, require_read_faults);
  if (!why.empty()) return fail(path, why);

  std::cout << "validate_report: " << path << ": OK ("
            << doc.at("experiment").as_string() << ", "
            << doc.at("series").size() << " series)\n";
  return 0;
}
