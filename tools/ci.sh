#!/usr/bin/env bash
# The repository's CI gate, runnable locally or from any CI provider:
#
#   tools/ci.sh            # configure + build + tier1 + bench_smoke + fuzz
#   tools/ci.sh --tsan     # additionally build the tsan preset and run the
#                          # concurrency suites under ThreadSanitizer
#
# Stages:
#   1. docs link check         -- every relative link in README.md and
#                                 docs/*.md resolves; every doc is reachable
#                                 from the README documentation map
#   2. configure + build (Release, build/)
#   3. ctest -L tier1          -- the correctness gate (see ROADMAP.md)
#   4. kernel dispatch         -- tier1 re-run once per SIMD backend this
#                                 host supports (GDSM_KERNEL=scalar|sse41|
#                                 avx2 plus the striped-* query-profile
#                                 family; docs/KERNELS.md).  striped-avx512
#                                 is skipped with a notice on hosts without
#                                 AVX-512BW
#   5. affine dispatch         -- oracle-verified --gap=affine service run
#                                 once per backend (docs/ALGORITHMS.md)
#   6. comm ablation           -- the DSM suites re-run once per data-plane
#                                 mode (GDSM_COMM=legacy|batched|
#                                 batched+prefetch; docs/DESIGN.md)
#   7. proc_smoke              -- the DSM/strategy/oracle suites re-run with
#                                 the protocol hosted in real OS processes
#                                 (GDSM_BACKEND=process: shm segments,
#                                 SIGSEGV fetch-on-fault, socket transport),
#                                 plus a fault-plan fuzz sweep on that
#                                 backend (docs/DESIGN.md)
#   8. ctest -L bench_smoke    -- tiny benches, schema-validated reports
#   9. fuzz_align, 30 s budget -- differential fuzz over the fault matrix
#  10. service_smoke           -- 5 s oracle-verified loadgen burst against
#                                 the alignment service, mixed gap models
#                                 (docs/SERVICE.md)
#  11. db_smoke                -- database serving gate: oracle-verified
#                                 --db loadgen burst + db fuzz sweep in the
#                                 Release tree, then the db suite, a db
#                                 fuzz replay and the striped overflow-
#                                 escalation suite rebuilt and re-run under
#                                 Address/UBSanitizer (docs/SERVICE.md)
#  12. db_cascade              -- the certified seed-and-extend stage:
#                                 cascade on/off hit-for-hit identity vs the
#                                 brute-force oracle and the persisted
#                                 q-gram index round-trip (corrupted
#                                 checksum rejected) in the Release tree AND
#                                 under Address/UBSanitizer, plus a
#                                 GDSM_DB_BOUND=scalar rerun covering the
#                                 scalar bound fallback
#                                 (docs/SERVICE.md "Cascade")
#  13. (--tsan) TSan build + the dsm/fault/oracle/service/db suites raced
#      under ThreadSanitizer (admission must stay deadlock-free; the preset
#      builds the same SSE4.1/AVX2 kernel objects as the Release build;
#      the process backend is exercised by stage 7, not here -- TSan does
#      not follow children across fork)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
RUN_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --tsan) RUN_TSAN=1 ;;
    *) echo "usage: tools/ci.sh [--tsan]" >&2; exit 2 ;;
  esac
done

# Stage 1: the documentation is part of the interface — a broken relative
# link or an orphaned docs/ page fails CI before anything is compiled.
echo "==> docs link check"
DOCS_FAIL=0
for f in README.md docs/*.md; do
  # Inline markdown link targets, web links and pure #anchors excluded;
  # in-page anchors on relative links are stripped before the existence test.
  links="$(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//' || true)"
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"
    [ -n "$target" ] || continue
    if [ ! -e "$(dirname "$f")/$target" ]; then
      echo "ci.sh: broken link in $f: $link" >&2
      DOCS_FAIL=1
    fi
  done
done
# Every docs/ page must be reachable from the README documentation map.
for doc in docs/*.md; do
  if ! grep -q "$(basename "$doc")" README.md; then
    echo "ci.sh: $doc is not linked from README.md" >&2
    DOCS_FAIL=1
  fi
done
[ "$DOCS_FAIL" -eq 0 ] || exit 1

echo "==> configure + build (Release)"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "==> ctest -L tier1"
ctest --test-dir build -L tier1 --output-on-failure -j "$JOBS"

# The default pass above ran on the auto-picked (widest) backend; repeat the
# gate with dispatch pinned to every other backend this host can run, so the
# scalar reference and each vector path stay release-gated even on AVX2 hosts.
ACTIVE_BACKEND="$(build/tools/kernel_info --active)"
AVAILABLE_BACKENDS="$(build/tools/kernel_info)"
case " $(echo $AVAILABLE_BACKENDS) " in
  *" striped-avx512 "*) : ;;
  *) echo "==> notice: striped-avx512 unavailable on this build/CPU" \
         "(needs AVX-512F+BW); skipping its tier1 forcing" ;;
esac
for backend in $AVAILABLE_BACKENDS; do
  [ "$backend" = "$ACTIVE_BACKEND" ] && continue
  echo "==> ctest -L tier1 (GDSM_KERNEL=$backend)"
  GDSM_KERNEL="$backend" ctest --test-dir build -L tier1 \
    --output-on-failure -j "$JOBS"
done

# The affine (Gotoh) mode rides the same dispatch: run an oracle-verified
# service batch with --gap=affine pinned to every backend, so each vector
# path's three-matrix sweep is release-gated against the serial Gotoh
# reference end-to-end (admission -> scheduler -> kernels -> verify).
for backend in $(build/tools/kernel_info); do
  echo "==> affine dispatch (GDSM_KERNEL=$backend, --gap=affine)"
  GDSM_KERNEL="$backend" build/tools/align_serve --queries=8 --subjects=2 \
    --subject-len=1500 --query-len=200 --gap=affine --verify --quiet
done

# The data-plane counterpart of the kernel sweep: the default pass above ran
# with the built-in batched plane; re-run the DSM-facing suites with the
# plane forced to each mode so the legacy bit-identical path and the
# read-ahead path stay release-gated too.
for comm in legacy batched batched+prefetch; do
  echo "==> DSM suites (GDSM_COMM=$comm)"
  for t in dsm_test dsm_stress_test fault_injection_test \
           differential_oracle_test cluster_submit_test strategy_test; do
    GDSM_COMM="$comm" "build/tests/$t" --gtest_brief=1
  done
done

# The execution-backend counterpart: every suite above ran the protocol
# state machine across threads in one address space; re-run the DSM-facing
# suites with the cluster hosted in real OS processes (shm_open/mmap pages,
# mprotect+SIGSEGV fetch-on-fault, Unix-socket transport), so the paper's
# workstation model stays release-gated end to end.  proc_test adds the
# backend-specific gates (killed child surfaces as a failure, not a hang).
# ASAN_OPTIONS lets the user SIGSEGV handler coexist with sanitized builds
# should this stage ever run against one; harmless on the Release tree.
echo "==> proc_smoke (GDSM_BACKEND=process)"
PROC_ASAN="handle_segv=0:allow_user_segv_handler=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}"
for t in proc_test dsm_test dsm_stress_test fault_injection_test \
         differential_oracle_test cluster_submit_test strategy_test; do
  echo "---- $t (process backend)"
  GDSM_BACKEND=process ASAN_OPTIONS="$PROC_ASAN" \
    "build/tests/$t" --gtest_brief=1
done
# A short differential fuzz on the process backend sweeps the fault-plan
# matrix (drops, delays, reorders, partitions) over forked node processes.
GDSM_BACKEND=process ASAN_OPTIONS="$PROC_ASAN" \
  build/tools/fuzz_align --budget-s=10 --quiet

echo "==> ctest -L bench_smoke"
ctest --test-dir build -L bench_smoke --output-on-failure

echo "==> fuzz_align (30 s budget)"
build/tools/fuzz_align --budget-s=30 --quiet

echo "==> service_smoke (5 s oracle-verified loadgen, mixed gap models)"
build/tools/loadgen --rate=120 --duration-s=5 --subjects=2 \
  --subject-len=2000 --query-len=250 --queue-cap=512 --min-in-flight=4 \
  --gap=mixed --quiet

echo "==> db_smoke (oracle-verified database serving + ASan re-run)"
# Release-tree gate: an open-loop database burst judged against the serial
# all-pairs oracle, then a short differential fuzz over the fault matrix.
build/tools/loadgen --db-gen=3 --subject-len=1200 --query-len=150 \
  --rate=150 --duration-s=2 --queue-cap=512 --min-score=40 --quiet
build/tools/fuzz_align --db --budget-s=10 --quiet
# The same surfaces under Address/UBSanitizer: the db suite (SubjectDb,
# oracle, service path), one seeded db fuzz replay, and the striped
# overflow-escalation suite — the 8->16-bit re-run recycles thread-local
# scratch rows at a different lane width, exactly where a stale-size or
# out-of-bounds bug would hide (docs/KERNELS.md).
cmake -B build-asan -S . -DGDSM_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "$JOBS" --target db_test fuzz_align \
  striped_precision_test db_cascade_test
build-asan/tests/db_test --gtest_brief=1
build-asan/tools/fuzz_align --db --seed=1 --faults=none --quiet
echo "==> striped escalation suite (ASan)"
build-asan/tests/striped_precision_test --gtest_brief=1

echo "==> db_cascade (certified seed-and-extend + persisted index)"
# Cascade on/off hit-for-hit identity against the brute-force oracle,
# admissibility adversaries (random / high-identity / tandem-repeat probes,
# both gap models) and the persisted-index round-trip with its corrupted-
# checksum reject — in the Release tree, then again under ASan/UBSan: the
# banded restricted DP recycles thread-local scratch rows, exactly where a
# stale-size or out-of-bounds bug would hide.
build/tests/db_cascade_test --gtest_brief=1
build-asan/tests/db_cascade_test --gtest_brief=1
# Same suite with the AVX2 batched bound forced off: on AVX2 hosts this is
# the only coverage of the scalar per-fragment fallback the batch path
# shadows (bound_batch.h), and the two must reject/accept identically.
GDSM_DB_BOUND=scalar build/tests/db_cascade_test --gtest_brief=1

if [ "$RUN_TSAN" -eq 1 ]; then
  echo "==> TSan build + concurrency suites"
  cmake -B build-tsan -S . -DGDSM_TSAN=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-tsan -j "$JOBS" --target \
    dsm_stress_test fault_injection_test differential_oracle_test mp_test \
    dsm_test cluster_submit_test svc_test db_test loadgen
  for t in dsm_stress_test fault_injection_test differential_oracle_test \
           mp_test dsm_test cluster_submit_test svc_test db_test; do
    echo "---- $t (tsan)"
    TSAN_OPTIONS="halt_on_error=1" "build-tsan/tests/$t"
  done
  # Admission under load must be deadlock-free: a short raced loadgen burst.
  echo "---- loadgen (tsan)"
  TSAN_OPTIONS="halt_on_error=1" build-tsan/tools/loadgen --rate=200 \
    --duration-s=2 --subjects=2 --subject-len=1500 --query-len=200 \
    --queue-cap=256 --quiet
  # And the same discipline for database traffic (sharded scan + filter).
  echo "---- loadgen --db (tsan)"
  TSAN_OPTIONS="halt_on_error=1" build-tsan/tools/loadgen --db-gen=2 \
    --subject-len=1000 --query-len=150 --rate=150 --duration-s=2 \
    --queue-cap=256 --min-score=40 --quiet
fi

echo "==> CI OK"
