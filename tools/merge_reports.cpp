// merge_reports: combine per-bench run-report JSON files (written by the
// benches' --json= flag) into one baseline document keyed by experiment id.
//
//   merge_reports -o BENCH_baseline.json out/BENCH_*.json
//
// The output schema is "gdsm.baseline" (see docs/METRICS.md).  Inputs that
// fail to parse or carry the wrong schema abort the merge — a baseline with
// silently missing benches is worse than no baseline.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"

namespace {

int usage() {
  std::cerr << "usage: merge_reports -o <output.json> <report.json>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using gdsm::obs::Json;

  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (i + 1 >= argc) return usage();
      out_path = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (out_path.empty() || inputs.empty()) return usage();

  Json reports = Json::object();
  std::string git;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "merge_reports: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    Json doc;
    try {
      doc = Json::parse(buf.str());
    } catch (const gdsm::obs::JsonParseError& e) {
      std::cerr << "merge_reports: " << path << ": " << e.what() << "\n";
      return 1;
    }
    if (!doc.is_object() || !doc.has("schema") ||
        doc.at("schema").as_string() != gdsm::obs::kReportSchema) {
      std::cerr << "merge_reports: " << path << ": not a "
                << gdsm::obs::kReportSchema << " document\n";
      return 1;
    }
    const std::string experiment = doc.at("experiment").as_string();
    if (reports.has(experiment)) {
      std::cerr << "merge_reports: duplicate experiment '" << experiment
                << "' (from " << path << ")\n";
      return 1;
    }
    if (git.empty() && doc.has("build") && doc.at("build").has("git")) {
      git = doc.at("build").at("git").as_string();
    }
    reports.set(experiment, std::move(doc));
  }

  Json baseline = Json::object();
  baseline.set("schema", gdsm::obs::kBaselineSchema);
  baseline.set("schema_version", gdsm::obs::kSchemaVersion);
  Json build = Json::object();
  build.set("git", git.empty() ? gdsm::obs::build_version() : git);
  baseline.set("build", std::move(build));
  baseline.set("report_count", reports.size());
  baseline.set("reports", std::move(reports));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "merge_reports: cannot write " << out_path << "\n";
    return 1;
  }
  baseline.write(out);
  out << "\n";
  std::cout << "merge_reports: wrote " << out_path << " ("
            << baseline.at("report_count").as_uint() << " reports)\n";
  return out ? 0 : 1;
}
