// fuzz_align: differential fuzzer over (genome seed, fault plan) pairs.
//
// Replay one exact case (the line a previous run printed):
//   fuzz_align --seed=7 --faults="drop=0.2,retries=3,backoff_us=80"
//
// Fuzz for a time budget over the standard fault-plan matrix:
//   fuzz_align --budget-s=30
//
// Every case runs the cross-strategy differential oracle (src/testing): the
// serial references judge wavefront, blocked, blocked_mp and exact_parallel
// on the same seeded genome pair under the same fault plan.  On divergence
// the case is minimized and the exact `--seed=... --faults=...` repro line
// is printed; the exit code is 1.  `--report=<path>` additionally writes a
// gdsm.run_report JSON document (docs/METRICS.md).
#include <chrono>
#include <iostream>
#include <string>

#include "obs/report.h"
#include "obs/snapshots.h"
#include "testing/oracle.h"
#include "util/args.h"

namespace {

using gdsm::obs::Json;

constexpr const char* kUsage =
    "usage: fuzz_align [--seed=N] [--faults=SPEC] [--budget-s=S]\n"
    "                  [--len=N] [--procs=P] [--regions=R]\n"
    "                  [--strategies=MASK] [--report=PATH] [--quiet]\n"
    "  --seed + --faults  replay one case and exit (0 = match, 1 = diverged)\n"
    "  --budget-s         fuzz new (seed, plan) pairs for S seconds\n"
    "  --faults           fault-plan spec, e.g. \"drop=0.2,retries=3\" or "
    "\"none\"\n";

gdsm::testing::OracleCase base_case(const gdsm::Args& args) {
  gdsm::testing::OracleCase c;
  c.length_s = c.length_t =
      static_cast<std::size_t>(args.get_int("len", 600));
  c.nprocs = static_cast<int>(args.get_int("procs", 4));
  c.n_regions = static_cast<std::size_t>(args.get_int("regions", 4));
  // A tight reply timeout keeps the retry layer exercised whenever the plan
  // delays traffic; harmless (zero counters) when the plan is empty.
  c.retry.timeout_us = 2000;
  return c;
}

Json case_row(const gdsm::testing::OracleCase& c,
              const gdsm::testing::OracleVerdict& v) {
  Json row = Json::object();
  row.set("seed", c.seed);
  row.set("faults", c.faults.to_string());
  row.set("ok", v.ok);
  row.set("serial_best", v.serial_best);
  row.set("serial_candidates", v.serial_candidates);
  Json outcomes = Json::array();
  for (const auto& o : v.outcomes) {
    if (!o.ran) continue;
    Json oj = Json::object();
    oj.set("strategy", o.name);
    oj.set("ok", o.ok());
    oj.set("best_score", o.best_score);
    oj.set("faults", gdsm::obs::to_json(o.faults));
    outcomes.push(std::move(oj));
  }
  row.set("outcomes", std::move(outcomes));
  return row;
}

void report_divergence(const gdsm::testing::OracleCase& failing,
                       const gdsm::testing::OracleVerdict& verdict,
                       unsigned mask) {
  std::cout << "DIVERGENCE (" << failing.to_string() << ")\n"
            << verdict.summary();
  const gdsm::testing::OracleCase small =
      gdsm::testing::minimize(failing, mask);
  std::cout << "minimized repro:\n"
            << "  fuzz_align --seed=" << small.seed << " --len="
            << small.length_s << " --procs=" << small.nprocs << " --regions="
            << small.n_regions << " --faults=\"" << small.faults.to_string()
            << "\"\n";
}

}  // namespace

int main(int argc, char** argv) {
  const gdsm::Args args(argc, argv,
                        {"seed", "faults", "budget-s", "len", "procs",
                         "regions", "strategies", "report"});
  const auto unknown = args.unknown_keys({"seed", "faults", "budget-s", "len",
                                          "procs", "regions", "strategies",
                                          "report", "quiet"});
  if (!unknown.empty()) {
    std::cerr << "fuzz_align: unknown option --" << unknown.front() << "\n"
              << kUsage;
    return 2;
  }
  const bool quiet = args.get_bool("quiet", false);
  const auto mask =
      static_cast<unsigned>(args.get_int("strategies",
                                         gdsm::testing::kAllStrategies));

  gdsm::obs::RunReport report("fuzz_align",
                              "Cross-strategy differential fuzzing");
  report.set_param("len", args.get_int("len", 600));
  report.set_param("procs", args.get_int("procs", 4));
  report.set_param("regions", args.get_int("regions", 4));
  // Verdicts and scores replay deterministically, but the embedded fault
  // counters depend on live thread interleaving (how many retransmissions a
  // retry window catches varies run-to-run) — flag the report accordingly.
  report.set_param("host_clock", true);

  int divergences = 0;
  std::size_t cases = 0;

  const auto run_case = [&](gdsm::testing::OracleCase c) {
    const gdsm::testing::OracleVerdict v =
        gdsm::testing::run_differential(c, mask);
    ++cases;
    report.add_row("cases", case_row(c, v));
    if (v.ok) {
      if (!quiet) {
        std::cout << "ok: " << c.to_string() << " (serial best "
                  << v.serial_best << ", " << v.serial_candidates
                  << " candidates)\n";
      }
    } else {
      ++divergences;
      report_divergence(c, v, mask);
    }
    return v.ok;
  };

  if (args.has("seed")) {
    // Replay mode: one exact (seed, plan) case.
    gdsm::testing::OracleCase c = base_case(args);
    c.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    try {
      c.faults = gdsm::net::FaultPlan::parse(args.get("faults", "none"));
    } catch (const std::exception& e) {
      std::cerr << "fuzz_align: bad --faults spec: " << e.what() << "\n";
      return 2;
    }
    run_case(c);
  } else {
    // Fuzz mode: sweep seeds over the standard plan matrix until the budget
    // runs out.  Plans are re-derived per seed so their decision chains
    // differ between iterations too.
    const double budget_s = args.get_double("budget-s", 10.0);
    const auto t0 = std::chrono::steady_clock::now();
    const auto elapsed_s = [&] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    report.set_param("budget_s", budget_s);
    std::uint64_t seed = 1;
    while (elapsed_s() < budget_s) {
      gdsm::testing::OracleCase c = base_case(args);
      c.seed = seed;
      c.faults = gdsm::net::FaultPlan{};  // baseline: no faults
      if (!run_case(c) && elapsed_s() >= budget_s) break;
      for (gdsm::net::FaultPlan& plan :
           gdsm::testing::standard_fault_plans(seed * 1000)) {
        if (elapsed_s() >= budget_s) break;
        c.faults = plan;
        run_case(c);
      }
      ++seed;
    }
    report.set_param("seeds_swept", seed - 1);
  }

  report.metrics().set("cases", cases);
  report.metrics().set("divergences", divergences);
  if (args.has("report") && !report.write_file(args.get("report"))) return 2;

  std::cout << "fuzz_align: " << cases << " case(s), " << divergences
            << " divergence(s)\n";
  return divergences == 0 ? 0 : 1;
}
