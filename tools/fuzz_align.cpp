// fuzz_align: differential fuzzer over (genome seed, fault plan) pairs.
//
// Replay one exact case (the line a previous run printed):
//   fuzz_align --seed=7 --faults="drop=0.2,retries=3,backoff_us=80"
//
// Fuzz for a time budget over the standard fault-plan matrix:
//   fuzz_align --budget-s=30
//
// Every case runs the cross-strategy differential oracle (src/testing): the
// serial references judge wavefront, blocked, blocked_mp and exact_parallel
// on the same seeded genome pair under the same fault plan.  On divergence
// the case is minimized and the exact `--seed=... --faults=...` repro line
// is printed; the exit code is 1.  `--report=<path>` additionally writes a
// gdsm.run_report JSON document (docs/METRICS.md).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report.h"
#include "obs/snapshots.h"
#include "svc/service.h"
#include "testing/db_oracle.h"
#include "testing/oracle.h"
#include "util/args.h"

namespace {

using gdsm::obs::Json;

constexpr const char* kUsage =
    "usage: fuzz_align [--seed=N] [--faults=SPEC] [--budget-s=S]\n"
    "                  [--len=N] [--procs=P] [--regions=R]\n"
    "                  [--strategies=MASK] [--service] [--report=PATH]\n"
    "                  [--quiet]\n"
    "  --seed + --faults  replay one case and exit (0 = match, 1 = diverged)\n"
    "  --budget-s         fuzz new (seed, plan) pairs for S seconds\n"
    "  --faults           fault-plan spec, e.g. \"drop=0.2,retries=3\" or "
    "\"none\"\n"
    "  --service          run each case through the alignment service\n"
    "                     (admission + scheduler + persistent cluster)\n"
    "                     instead of calling the strategies directly\n"
    "  --db               fuzz the database scan instead: db_query vs the\n"
    "                     serial all-pairs oracle (--db-seqs, --queries,\n"
    "                     --query-len, --min-score size the cases; --len is\n"
    "                     the per-sequence length)\n";

gdsm::testing::OracleCase base_case(const gdsm::Args& args) {
  gdsm::testing::OracleCase c;
  c.length_s = c.length_t =
      static_cast<std::size_t>(args.get_int("len", 600));
  c.nprocs = static_cast<int>(args.get_int("procs", 4));
  c.n_regions = static_cast<std::size_t>(args.get_int("regions", 4));
  // A tight reply timeout keeps the retry layer exercised whenever the plan
  // delays traffic; harmless (zero counters) when the plan is empty.
  c.retry.timeout_us = 2000;
  return c;
}

Json case_row(const gdsm::testing::OracleCase& c,
              const gdsm::testing::OracleVerdict& v) {
  Json row = Json::object();
  row.set("seed", c.seed);
  row.set("faults", c.faults.to_string());
  row.set("ok", v.ok);
  row.set("serial_best", v.serial_best);
  row.set("serial_candidates", v.serial_candidates);
  Json outcomes = Json::array();
  for (const auto& o : v.outcomes) {
    if (!o.ran) continue;
    Json oj = Json::object();
    oj.set("strategy", o.name);
    oj.set("ok", o.ok());
    oj.set("best_score", o.best_score);
    oj.set("faults", gdsm::obs::to_json(o.faults));
    outcomes.push(std::move(oj));
  }
  row.set("outcomes", std::move(outcomes));
  return row;
}

/// The service-path twin of testing::run_differential: the case's genome
/// pair is replayed through admission, the scheduler and the persistent
/// cluster (one submit per unmasked strategy, all in flight together so
/// batching engages), and every answer is judged against the serial
/// references.  The fault plan rides on the service cluster's transport.
gdsm::testing::OracleVerdict run_service_case(
    const gdsm::testing::OracleCase& c, unsigned mask) {
  namespace svc = gdsm::svc;
  gdsm::testing::OracleVerdict v;

  const gdsm::HomologousPair pair = c.make_pair();
  gdsm::Sequence subject = pair.t;
  subject.set_name("t");

  const std::vector<gdsm::Candidate> ref_candidates =
      gdsm::heuristic_scan(pair.s, subject, c.scheme, c.params);
  const gdsm::BestLocal ref_best =
      gdsm::sw_best_score_linear(pair.s, subject, c.scheme);
  v.serial_best = ref_best.score;
  v.serial_candidates = ref_candidates.size();
  if (!ref_candidates.empty()) {
    for (const auto& cand : ref_candidates) {
      v.serial_heuristic_best = std::max(v.serial_heuristic_best, cand.score);
    }
  }

  svc::ServiceConfig scfg;
  scfg.nprocs = c.nprocs;
  scfg.dsm.retry = c.retry;
  scfg.dsm.faults = c.faults;
  svc::AlignService service(scfg);
  service.load_subject(subject);

  struct Probe {
    unsigned bit;
    svc::StrategyKind kind;
    const char* name;
  };
  const Probe probes[] = {
      {gdsm::testing::kWavefront, svc::StrategyKind::kWavefront, "wavefront"},
      {gdsm::testing::kBlocked, svc::StrategyKind::kBlocked, "blocked"},
      {gdsm::testing::kBlockedMp, svc::StrategyKind::kBlockedMp, "blocked_mp"},
      {gdsm::testing::kExactParallel, svc::StrategyKind::kExact, "exact"},
  };

  std::vector<std::pair<const Probe*, svc::TicketPtr>> in_flight;
  for (const Probe& p : probes) {
    gdsm::testing::StrategyOutcome o;
    o.name = std::string("service.") + p.name;
    o.ran = (mask & p.bit) != 0;
    v.outcomes.push_back(std::move(o));
    if ((mask & p.bit) == 0) continue;
    svc::QuerySpec spec;
    spec.subject = subject.name();
    spec.query = pair.s;
    spec.strategy = p.kind;
    spec.scheme = c.scheme;
    spec.params = c.params;
    svc::AlignService::Admission adm = service.submit(std::move(spec));
    if (!adm.admitted()) {
      v.outcomes.back().score_ok = false;
      v.outcomes.back().detail = "admission rejected: " + adm.reject;
      continue;
    }
    in_flight.emplace_back(&p, std::move(adm.ticket));
  }

  for (auto& [p, ticket] : in_flight) {
    const svc::QueryOutcome& out = ticket->wait();
    gdsm::testing::StrategyOutcome* o = nullptr;
    for (auto& candidate_o : v.outcomes) {
      if (candidate_o.name == std::string("service.") + p->name) {
        o = &candidate_o;
      }
    }
    if (!out.ok) {
      o->score_ok = false;
      o->detail = "query failed: " + out.error;
      continue;
    }
    if (p->kind == svc::StrategyKind::kExact) {
      o->best_score = out.result.best.score;
      if (out.result.best.score != ref_best.score ||
          out.result.best.end_i != ref_best.end_i ||
          out.result.best.end_j != ref_best.end_j) {
        o->score_ok = false;
        o->detail = "exact best != sw_best_score_linear";
      }
    } else {
      for (const auto& cand : out.result.candidates) {
        o->best_score = std::max(o->best_score, cand.score);
      }
      if (out.result.candidates != ref_candidates) {
        o->regions_ok = false;
        o->detail = "candidate queue != heuristic_scan";
      }
    }
  }
  service.shutdown();

  for (const auto& o : v.outcomes) v.ok = v.ok && o.ok();
  return v;
}

gdsm::testing::DbOracleCase base_db_case(const gdsm::Args& args) {
  gdsm::testing::DbOracleCase c;
  c.n_sequences = static_cast<std::size_t>(args.get_int("db-seqs", 4));
  c.seq_len = static_cast<std::size_t>(args.get_int("len", 600));
  c.n_queries = static_cast<std::size_t>(args.get_int("queries", 5));
  c.query_len = static_cast<std::size_t>(args.get_int("query-len", 120));
  c.min_score = static_cast<int>(args.get_int("min-score", 30));
  c.nprocs = static_cast<int>(args.get_int("procs", 4));
  c.retry.timeout_us = 2000;
  return c;
}

Json db_case_row(const gdsm::testing::DbOracleCase& c,
                 const gdsm::testing::DbOracleVerdict& v) {
  Json row = Json::object();
  row.set("seed", c.seed);
  row.set("faults", c.faults.to_string());
  row.set("ok", v.ok);
  row.set("queries", v.queries);
  row.set("mismatched_queries", v.mismatched_queries);
  row.set("hits", v.total_hits);
  row.set("fragments_scanned", v.fragments_scanned);
  row.set("fragments_rejected", v.fragments_rejected);
  return row;
}

void report_db_divergence(const gdsm::testing::DbOracleCase& failing,
                          const gdsm::testing::DbOracleVerdict& verdict) {
  const gdsm::testing::DbOracleCase small = gdsm::testing::minimize_db(failing);
  std::cout << "DIVERGENCE (" << failing.to_string() << ")\n"
            << verdict.summary() << "\nminimized repro:\n"
            << "  fuzz_align --db --seed=" << small.seed << " --db-seqs="
            << small.n_sequences << " --len=" << small.seq_len << " --queries="
            << small.n_queries << " --query-len=" << small.query_len
            << " --min-score=" << small.min_score << " --procs="
            << small.nprocs << " --faults=\"" << small.faults.to_string()
            << "\"\n";
}

void report_divergence(const gdsm::testing::OracleCase& failing,
                       const gdsm::testing::OracleVerdict& verdict,
                       unsigned mask, bool service) {
  std::cout << "DIVERGENCE (" << failing.to_string() << ")\n"
            << verdict.summary();
  if (service) {
    // The minimizer replays through the direct strategy calls, which a
    // service-path divergence may not reproduce — print the case verbatim.
    std::cout << "repro:\n"
              << "  fuzz_align --service --seed=" << failing.seed << " --len="
              << failing.length_s << " --procs=" << failing.nprocs
              << " --regions=" << failing.n_regions << " --faults=\""
              << failing.faults.to_string() << "\"\n";
    return;
  }
  const gdsm::testing::OracleCase small =
      gdsm::testing::minimize(failing, mask);
  std::cout << "minimized repro:\n"
            << "  fuzz_align --seed=" << small.seed << " --len="
            << small.length_s << " --procs=" << small.nprocs << " --regions="
            << small.n_regions << " --faults=\"" << small.faults.to_string()
            << "\"\n";
}

}  // namespace

int main(int argc, char** argv) {
  const gdsm::Args args(argc, argv,
                        {"seed", "faults", "budget-s", "len", "procs",
                         "regions", "strategies", "db-seqs", "queries",
                         "query-len", "min-score", "report"});
  const auto unknown = args.unknown_keys({"seed", "faults", "budget-s", "len",
                                          "procs", "regions", "strategies",
                                          "service", "db", "db-seqs",
                                          "queries", "query-len", "min-score",
                                          "report", "quiet"});
  if (!unknown.empty()) {
    std::cerr << "fuzz_align: unknown option --" << unknown.front() << "\n"
              << kUsage;
    return 2;
  }
  const bool quiet = args.get_bool("quiet", false);
  const bool service = args.get_bool("service", false);
  const bool db_mode = args.get_bool("db", false);
  if (service && db_mode) {
    std::cerr << "fuzz_align: --service and --db are mutually exclusive\n";
    return 2;
  }
  const auto mask =
      static_cast<unsigned>(args.get_int("strategies",
                                         gdsm::testing::kAllStrategies));

  gdsm::obs::RunReport report("fuzz_align",
                              "Cross-strategy differential fuzzing");
  report.set_param("service", service);
  report.set_param("db", db_mode);
  report.set_param("len", args.get_int("len", 600));
  report.set_param("procs", args.get_int("procs", 4));
  report.set_param("regions", args.get_int("regions", 4));
  // Verdicts and scores replay deterministically, but the embedded fault
  // counters depend on live thread interleaving (how many retransmissions a
  // retry window catches varies run-to-run) — flag the report accordingly.
  report.set_param("host_clock", true);

  int divergences = 0;
  std::size_t cases = 0;

  const auto run_db_case = [&](gdsm::testing::DbOracleCase c) {
    const gdsm::testing::DbOracleVerdict v = run_db_differential(c);
    ++cases;
    report.add_row("cases", db_case_row(c, v));
    if (v.ok) {
      if (!quiet) {
        std::cout << "ok: " << c.to_string() << " (" << v.summary() << ")\n";
      }
    } else {
      ++divergences;
      report_db_divergence(c, v);
    }
    return v.ok;
  };

  const auto run_case = [&](gdsm::testing::OracleCase c) {
    const gdsm::testing::OracleVerdict v =
        service ? run_service_case(c, mask)
                : gdsm::testing::run_differential(c, mask);
    ++cases;
    report.add_row("cases", case_row(c, v));
    if (v.ok) {
      if (!quiet) {
        std::cout << "ok: " << c.to_string() << " (serial best "
                  << v.serial_best << ", " << v.serial_candidates
                  << " candidates)\n";
      }
    } else {
      ++divergences;
      report_divergence(c, v, mask, service);
    }
    return v.ok;
  };

  if (args.has("seed")) {
    // Replay mode: one exact (seed, plan) case.
    gdsm::net::FaultPlan plan;
    try {
      plan = gdsm::net::FaultPlan::parse(args.get("faults", "none"));
    } catch (const std::exception& e) {
      std::cerr << "fuzz_align: bad --faults spec: " << e.what() << "\n";
      return 2;
    }
    if (db_mode) {
      gdsm::testing::DbOracleCase c = base_db_case(args);
      c.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      c.faults = plan;
      run_db_case(c);
    } else {
      gdsm::testing::OracleCase c = base_case(args);
      c.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
      c.faults = plan;
      run_case(c);
    }
  } else if (db_mode) {
    // Database fuzz mode: sweep seeds over the standard plan matrix, same
    // discipline as the strategy fuzz below.
    const double budget_s = args.get_double("budget-s", 10.0);
    const auto t0 = std::chrono::steady_clock::now();
    const auto elapsed_s = [&] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    report.set_param("budget_s", budget_s);
    std::uint64_t seed = 1;
    while (elapsed_s() < budget_s) {
      gdsm::testing::DbOracleCase c = base_db_case(args);
      c.seed = seed;
      c.faults = gdsm::net::FaultPlan{};  // baseline: no faults
      if (!run_db_case(c) && elapsed_s() >= budget_s) break;
      for (gdsm::net::FaultPlan& plan :
           gdsm::testing::standard_fault_plans(seed * 1000)) {
        if (elapsed_s() >= budget_s) break;
        c.faults = plan;
        run_db_case(c);
      }
      ++seed;
    }
    report.set_param("seeds_swept", seed - 1);
  } else {
    // Fuzz mode: sweep seeds over the standard plan matrix until the budget
    // runs out.  Plans are re-derived per seed so their decision chains
    // differ between iterations too.
    const double budget_s = args.get_double("budget-s", 10.0);
    const auto t0 = std::chrono::steady_clock::now();
    const auto elapsed_s = [&] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    report.set_param("budget_s", budget_s);
    std::uint64_t seed = 1;
    while (elapsed_s() < budget_s) {
      gdsm::testing::OracleCase c = base_case(args);
      c.seed = seed;
      c.faults = gdsm::net::FaultPlan{};  // baseline: no faults
      if (!run_case(c) && elapsed_s() >= budget_s) break;
      for (gdsm::net::FaultPlan& plan :
           gdsm::testing::standard_fault_plans(seed * 1000)) {
        if (elapsed_s() >= budget_s) break;
        c.faults = plan;
        run_case(c);
      }
      ++seed;
    }
    report.set_param("seeds_swept", seed - 1);
  }

  report.metrics().set("cases", cases);
  report.metrics().set("divergences", divergences);
  if (args.has("report") && !report.write_file(args.get("report"))) return 2;

  std::cout << "fuzz_align: " << cases << " case(s), " << divergences
            << " divergence(s)\n";
  return divergences == 0 ? 0 : 1;
}
