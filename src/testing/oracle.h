// The cross-strategy differential oracle.
//
// Every parallel strategy in this repository claims to reproduce a serial
// reference bit-for-bit: the heuristic strategies (wavefront, blocked,
// blocked_mp) must emit exactly heuristic_scan's candidate queue, and the
// parallel exact scorer must find sw_best_score_linear's best cell.  The
// oracle runs all of them on a seeded random genome pair — optionally under
// an injected fault plan (net/fault.h) — and reports every divergence.
// tests/differential_oracle_test.cpp asserts the verdict; tools/fuzz_align
// searches the (seed, plan) space and minimizes failures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsm/config.h"
#include "net/fault.h"
#include "sw/heuristic_scan.h"
#include "sw/scoring.h"
#include "util/genome.h"

namespace gdsm::testing {

/// Which parallel strategies a differential run exercises.
enum StrategyMask : unsigned {
  kWavefront = 1u << 0,
  kBlocked = 1u << 1,
  kBlockedMp = 1u << 2,
  kExactParallel = 1u << 3,
  kAllStrategies = kWavefront | kBlocked | kBlockedMp | kExactParallel,
};

/// One oracle input: a seeded genome pair plus the cluster, retry and fault
/// configuration under test.  Everything is deterministic in (the fields of)
/// this struct, so a failing case IS its own reproduction recipe.
struct OracleCase {
  std::uint64_t seed = 1;      ///< genome-pair seed (util/genome.h)
  std::size_t length_s = 600;
  std::size_t length_t = 600;
  std::size_t n_regions = 4;   ///< planted homologies
  int nprocs = 4;
  ScoreScheme scheme{};
  HeuristicParams params{};
  dsm::RetryPolicy retry{};    ///< DSM reply timeout/retransmit policy
  dsm::CommConfig comm{};      ///< data-plane aggregation knobs under test
  net::FaultPlan faults{};     ///< simulated interconnect misbehaviour

  /// The deterministic genome pair of this case.
  HomologousPair make_pair() const;

  /// "seed=N len=AxB regions=R procs=P comm=<mode> faults=<plan>" (the
  /// repro line).
  std::string to_string() const;
};

/// How one strategy compared against its serial reference.
struct StrategyOutcome {
  std::string name;
  bool ran = false;        ///< false when masked out
  bool score_ok = true;    ///< best score equals the reference's
  bool regions_ok = true;  ///< candidate queue matches (heuristic strategies)
  int best_score = 0;
  std::string detail;      ///< human diagnosis, empty when everything matched
  net::FaultCounters faults;  ///< fault pressure the run absorbed

  bool ok() const noexcept { return !ran || (score_ok && regions_ok); }
};

struct OracleVerdict {
  bool ok = true;  ///< every strategy that ran agrees with its reference
  int serial_best = 0;               ///< sw_best_score_linear (== sw_fill)
  int serial_heuristic_best = 0;     ///< best candidate of heuristic_scan
  std::size_t serial_candidates = 0; ///< size of the serial candidate queue
  std::vector<StrategyOutcome> outcomes;

  /// One line per strategy ("strategy: OK" / the mismatch detail).
  std::string summary() const;
};

/// Runs the serial references and every masked-in strategy on `c`.  The two
/// serial exact scorers (sw_best_score_linear, sw_fill) are cross-checked
/// against each other first, so a bug in the reference itself cannot
/// silently validate the parallel runs.
OracleVerdict run_differential(const OracleCase& c,
                               unsigned mask = kAllStrategies);

/// Greedily shrinks a failing case (shorter sequences, fewer regions, fewer
/// processors — the fault plan is preserved, it is part of the repro) while
/// it keeps failing.  Returns the smallest failing case found; returns `c`
/// unchanged if it does not fail.
OracleCase minimize(OracleCase c, unsigned mask = kAllStrategies);

/// The standard fault-plan matrix of the acceptance suite, all chains keyed
/// on `seed`: {drop/retry, reorder, delay, everything-at-once + partition}.
std::vector<net::FaultPlan> standard_fault_plans(std::uint64_t seed);

}  // namespace gdsm::testing
