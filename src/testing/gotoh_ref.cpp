#include "testing/gotoh_ref.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace gdsm::testing {

BestLocal gotoh_best_ref(const Sequence& s, const Sequence& t,
                         const ScoreScheme& sc) {
  constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
  const std::size_t m = s.size();
  const std::size_t n = t.size();
  const std::size_t cols = n + 1;
  // Dense H/E/F, (m+1) x (n+1).  With gap_open == 0 the E/F states collapse
  // onto the linear recurrence (H >= E, F everywhere), so one code path
  // covers both gap models without branching on the scheme.
  std::vector<int> h((m + 1) * cols, 0);
  std::vector<int> e((m + 1) * cols, kNegInf);
  std::vector<int> f((m + 1) * cols, kNegInf);
  BestLocal best;
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      const std::size_t c = i * cols + j;
      e[c] = std::max(h[c - 1] + sc.gap_open + sc.gap, e[c - 1] + sc.gap);
      f[c] = std::max(h[c - cols] + sc.gap_open + sc.gap, f[c - cols] + sc.gap);
      const int diag =
          h[c - cols - 1] + sc.substitution(s[i - 1], t[j - 1]);
      const int v = std::max({0, diag, e[c], f[c]});
      h[c] = v;
      if (v > best.score) best = BestLocal{v, i, j};
    }
  }
  return best;
}

}  // namespace gdsm::testing
