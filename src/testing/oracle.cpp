#include "testing/oracle.h"

#include <algorithm>
#include <sstream>

#include "core/blocked.h"
#include "core/blocked_mp.h"
#include "core/exact_parallel.h"
#include "core/wavefront.h"
#include "sw/full_matrix.h"
#include "sw/linear_score.h"
#include "testing/gotoh_ref.h"

namespace gdsm::testing {
namespace {

int best_candidate_score(const std::vector<Candidate>& queue) {
  int best = 0;
  for (const Candidate& c : queue) best = std::max(best, int(c.score));
  return best;
}

/// Index of the first position where the queues differ (or the shorter
/// length); used only to build the mismatch diagnosis.
std::string diff_queues(const std::vector<Candidate>& expected,
                        const std::vector<Candidate>& got) {
  std::ostringstream os;
  os << "expected " << expected.size() << " candidates, got " << got.size();
  const std::size_t n = std::min(expected.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (expected[i] == got[i]) continue;
    const Candidate& e = expected[i];
    const Candidate& g = got[i];
    os << "; first mismatch at [" << i << "]: expected (score=" << e.score
       << " s=" << e.s_begin << ".." << e.s_end << " t=" << e.t_begin << ".."
       << e.t_end << "), got (score=" << g.score << " s=" << g.s_begin << ".."
       << g.s_end << " t=" << g.t_begin << ".." << g.t_end << ")";
    break;
  }
  return os.str();
}

void judge_heuristic(StrategyOutcome& out,
                     const std::vector<Candidate>& reference,
                     const std::vector<Candidate>& got) {
  out.ran = true;
  out.best_score = best_candidate_score(got);
  out.score_ok = out.best_score == best_candidate_score(reference);
  out.regions_ok = got == reference;
  if (!out.regions_ok) out.detail = diff_queues(reference, got);
}

}  // namespace

HomologousPair OracleCase::make_pair() const {
  HomologousPairSpec spec;
  spec.length_s = length_s;
  spec.length_t = length_t;
  spec.n_regions = n_regions;
  // Small sequences want proportionally small planted regions so several
  // distinct homologies fit.
  spec.region_len_mean = std::max<std::size_t>(24, length_s / 12);
  spec.region_len_spread = spec.region_len_mean / 3;
  spec.seed = seed;
  return make_homologous_pair(spec);
}

std::string OracleCase::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed << " len=" << length_s << "x" << length_t
     << " regions=" << n_regions << " procs=" << nprocs
     << " gap=" << gap_model_name(scheme.gap_model());
  if (scheme.affine()) {
    os << "(" << scheme.gap_open << "," << scheme.gap << ")";
  }
  os << " comm=" << dsm::comm_mode_name(comm)
     << " faults=" << faults.to_string();
  return os.str();
}

std::string OracleVerdict::summary() const {
  std::ostringstream os;
  os << "serial: best=" << serial_best << " candidates=" << serial_candidates
     << "\n";
  for (const StrategyOutcome& o : outcomes) {
    if (!o.ran) continue;
    os << o.name << ": ";
    if (o.ok()) {
      os << "OK (best=" << o.best_score << ")";
    } else {
      os << "DIVERGED (best=" << o.best_score
         << (o.score_ok ? "" : " score mismatch")
         << (o.regions_ok ? "" : " region mismatch");
      if (!o.detail.empty()) os << "; " << o.detail;
      os << ")";
    }
    os << "\n";
  }
  return os.str();
}

OracleVerdict run_differential(const OracleCase& c, unsigned mask) {
  const HomologousPair pair = c.make_pair();
  OracleVerdict v;

  // Serial references, cross-checked against each other: the kernel-backed
  // linear-space scan and an independent dense fill must agree before they
  // may judge anyone.  Under affine gaps the dense side is gotoh_best_ref —
  // a from-the-recurrence Gotoh that shares no code with the SIMD kernels.
  const BestLocal linear = sw_best_score_linear(pair.s, pair.t, c.scheme);
  MatrixBest full;
  if (c.scheme.affine()) {
    const BestLocal g = gotoh_best_ref(pair.s, pair.t, c.scheme);
    full = MatrixBest{g.score, g.end_i, g.end_j};
  } else {
    (void)sw_fill(pair.s, pair.t, c.scheme, &full);
  }
  v.serial_best = linear.score;
  if (linear.score != full.score || linear.end_i != full.i ||
      linear.end_j != full.j) {
    v.ok = false;
    StrategyOutcome& o = v.outcomes.emplace_back();
    o.name = "serial_cross_check";
    o.ran = true;
    o.score_ok = false;
    std::ostringstream os;
    os << "sw_best_score_linear (" << linear.score << " @" << linear.end_i
       << "," << linear.end_j << ") != "
       << (c.scheme.affine() ? "gotoh_best_ref" : "sw_fill") << " ("
       << full.score << " @" << full.i << "," << full.j << ")";
    o.detail = os.str();
    return v;  // the references disagree; judging strategies is meaningless
  }

  const std::vector<Candidate> reference =
      heuristic_scan(pair.s, pair.t, c.scheme, c.params);
  v.serial_heuristic_best = best_candidate_score(reference);
  v.serial_candidates = reference.size();

  if (mask & kWavefront) {
    StrategyOutcome& o = v.outcomes.emplace_back();
    o.name = "wavefront";
    core::WavefrontConfig cfg;
    cfg.nprocs = c.nprocs;
    cfg.scheme = c.scheme;
    cfg.params = c.params;
    cfg.dsm.retry = c.retry;
    cfg.dsm.comm = c.comm;
    cfg.dsm.faults = c.faults;
    const core::StrategyResult r = core::wavefront_align(pair.s, pair.t, cfg);
    judge_heuristic(o, reference, r.candidates);
    o.faults = r.dsm_stats.faults;
  }

  if (mask & kBlocked) {
    StrategyOutcome& o = v.outcomes.emplace_back();
    o.name = "blocked";
    core::BlockedConfig cfg;
    cfg.nprocs = c.nprocs;
    cfg.scheme = c.scheme;
    cfg.params = c.params;
    cfg.dsm.retry = c.retry;
    cfg.dsm.comm = c.comm;
    cfg.dsm.faults = c.faults;
    const core::StrategyResult r = core::blocked_align(pair.s, pair.t, cfg);
    judge_heuristic(o, reference, r.candidates);
    o.faults = r.dsm_stats.faults;
  }

  if (mask & kBlockedMp) {
    StrategyOutcome& o = v.outcomes.emplace_back();
    o.name = "blocked_mp";
    core::BlockedConfig cfg;
    cfg.nprocs = c.nprocs;
    cfg.scheme = c.scheme;
    cfg.params = c.params;
    cfg.dsm.faults = c.faults;
    const core::MpStrategyResult r = core::blocked_align_mp(pair.s, pair.t, cfg);
    judge_heuristic(o, reference, r.candidates);
    o.faults = r.faults;
  }

  if (mask & kExactParallel) {
    StrategyOutcome& o = v.outcomes.emplace_back();
    o.name = "exact_parallel";
    core::ExactParallelConfig cfg;
    cfg.nprocs = c.nprocs;
    cfg.scheme = c.scheme;
    cfg.faults = c.faults;
    const core::ExactParallelResult r =
        core::exact_align_parallel(pair.s, pair.t, cfg);
    o.ran = true;
    o.best_score = r.best.score;
    o.regions_ok = true;  // the exact pass has no candidate queue to compare
    o.score_ok = r.best.score == linear.score &&
                 r.best.end_i == linear.end_i && r.best.end_j == linear.end_j;
    if (!o.score_ok) {
      std::ostringstream os;
      os << "expected best " << linear.score << " @" << linear.end_i << ","
         << linear.end_j << ", got " << r.best.score << " @" << r.best.end_i
         << "," << r.best.end_j;
      o.detail = os.str();
    }
    o.faults = r.faults;
  }

  for (const StrategyOutcome& o : v.outcomes) {
    if (!o.ok()) v.ok = false;
  }
  return v;
}

OracleCase minimize(OracleCase c, unsigned mask) {
  if (run_differential(c, mask).ok) return c;  // nothing to minimize
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    // Each reduction is kept only if the case still fails.
    const auto try_case = [&](const OracleCase& next) {
      if (run_differential(next, mask).ok) return false;
      c = next;
      shrunk = true;
      return true;
    };
    if (c.length_s > 64 || c.length_t > 64) {
      OracleCase next = c;
      next.length_s = std::max<std::size_t>(64, c.length_s / 2);
      next.length_t = std::max<std::size_t>(64, c.length_t / 2);
      try_case(next);
    }
    if (c.n_regions > 1) {
      OracleCase next = c;
      next.n_regions = c.n_regions / 2;
      try_case(next);
    }
    if (c.nprocs > 2) {
      OracleCase next = c;
      next.nprocs = 2;
      try_case(next);
    }
  }
  return c;
}

std::vector<net::FaultPlan> standard_fault_plans(std::uint64_t seed) {
  net::FaultPlan drop;
  drop.seed = seed;
  drop.drop_rate = 0.2;
  drop.drop_retries = 3;
  drop.retry_backoff_us = 80;

  net::FaultPlan reorder;
  reorder.seed = seed + 1;
  reorder.reorder_rate = 0.3;
  reorder.reorder_hold_us = 400;

  net::FaultPlan delay;
  delay.seed = seed + 2;
  delay.delay_rate = 0.5;
  delay.delay_max_us = 300;

  net::FaultPlan chaos;  // everything at once, plus a partition window
  chaos.seed = seed + 3;
  chaos.drop_rate = 0.1;
  chaos.retry_backoff_us = 60;
  chaos.delay_rate = 0.2;
  chaos.delay_max_us = 200;
  chaos.reorder_rate = 0.15;
  chaos.reorder_hold_us = 300;
  chaos.duplicate_rate = 0.2;
  chaos.partitions.push_back(net::PartitionWindow{1, 0, 2});

  return {drop, reorder, delay, chaos};
}

}  // namespace gdsm::testing
