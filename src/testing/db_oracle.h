// The database differential oracle.
//
// db_query (src/db/db_align.h) claims exactness: filtration plus the
// shard-parallel scan returns hit-for-hit what the serial all-pairs
// reference brute_force_hits returns, for either gap model, under any
// comm-plane mode and any injected fault plan.  The oracle fuzzes that
// claim: it generates a seeded database and query mix (random probes plus
// mutated copies of database windows, so both filtration outcomes are
// exercised), runs every query through both paths on a live cluster, and
// reports the first divergence.  tests/db_test.cpp asserts the verdict;
// tools/fuzz_align --db searches the (seed, plan) space and minimizes
// failures.
#pragma once

#include <cstdint>
#include <string>

#include "db/subject_db.h"
#include "dsm/config.h"
#include "net/fault.h"
#include "sw/scoring.h"

namespace gdsm::testing {

/// One oracle input.  Everything is deterministic in the fields, so a
/// failing case IS its own reproduction recipe.
struct DbOracleCase {
  std::uint64_t seed = 1;
  std::size_t n_sequences = 4;   ///< database sequences
  std::size_t seq_len = 600;     ///< bases per database sequence
  std::size_t n_queries = 5;
  std::size_t query_len = 120;
  int nprocs = 4;
  db::DbConfig db_cfg{};
  ScoreScheme scheme{};
  int min_score = 30;
  dsm::RetryPolicy retry{};
  dsm::CommConfig comm{};
  net::FaultPlan faults{};

  /// "seed=N db=SxL queries=QxM procs=P min=K comm=<mode> faults=<plan>"
  /// (the repro line).
  std::string to_string() const;
};

struct DbOracleVerdict {
  bool ok = true;
  std::size_t queries = 0;             ///< queries compared
  std::size_t mismatched_queries = 0;  ///< queries whose hit sets diverged
  std::size_t total_hits = 0;          ///< brute-force hits, all queries
  std::size_t fragments_scanned = 0;   ///< db_query counters, all queries
  std::size_t fragments_rejected = 0;
  std::string detail;  ///< first divergence, human-readable; empty when ok

  /// One line: "N queries, H hits, R/S rejected: OK" / the divergence.
  std::string summary() const;
};

/// Builds the deterministic database + query mix of `c`, stands up a
/// cluster with the case's comm/retry/fault configuration, and compares
/// db_query against brute_force_hits on every query.
DbOracleVerdict run_db_differential(const DbOracleCase& c);

/// Greedily shrinks a failing case (fewer/shorter sequences, fewer/shorter
/// queries, fewer processors — the fault plan is preserved, it is part of
/// the repro) while it keeps failing.  Returns `c` unchanged if it does
/// not fail.
DbOracleCase minimize_db(DbOracleCase c);

}  // namespace gdsm::testing
