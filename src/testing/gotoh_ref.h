// Independent serial Gotoh reference for the differential oracle.
//
// The production affine paths share code: the SIMD kernels feed
// sw_best_score_linear, the strategies, and the service alike, and
// sw/affine.cpp backs both the linear-space scan and the rebuild fallback.
// This file is the deliberately naive judge that shares nothing with them —
// a dense three-matrix Gotoh fill written straight from the recurrence, so
// a bug in the shared kernels cannot agree with itself across the oracle's
// cross-check.
#pragma once

#include "sw/linear_score.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm::testing {

/// Best local score and end cell (first of maximum in row-major order) under
/// the scheme's gap model — affine (Gotoh) when scheme.gap_open != 0, plain
/// linear otherwise.  Dense O(mn) space; oracle-sized inputs only.
BestLocal gotoh_best_ref(const Sequence& s, const Sequence& t,
                         const ScoreScheme& scheme);

}  // namespace gdsm::testing
