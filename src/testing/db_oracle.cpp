#include "testing/db_oracle.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "db/db_align.h"
#include "dsm/cluster.h"
#include "util/genome.h"
#include "util/rng.h"

namespace gdsm::testing {
namespace {

/// The deterministic database of a case: n_sequences random sequences.
std::vector<Sequence> make_database(const DbOracleCase& c, Rng& rng) {
  std::vector<Sequence> seqs;
  seqs.reserve(c.n_sequences);
  for (std::size_t i = 0; i < c.n_sequences; ++i) {
    seqs.push_back(random_dna(c.seq_len, rng, "db" + std::to_string(i)));
  }
  return seqs;
}

/// The query mix: odd indices are pure random probes (filtration should
/// reject almost everything), even indices are mutated copies of database
/// windows (filtration must keep the homologous fragment).
std::vector<Sequence> make_queries(const DbOracleCase& c,
                                   const std::vector<Sequence>& seqs,
                                   Rng& rng) {
  std::vector<Sequence> queries;
  queries.reserve(c.n_queries);
  for (std::size_t k = 0; k < c.n_queries; ++k) {
    const std::string name = "q" + std::to_string(k);
    if (k % 2 == 1 || seqs.empty()) {
      queries.push_back(random_dna(c.query_len, rng, name));
      continue;
    }
    const Sequence& src = seqs[rng.below(seqs.size())];
    const std::size_t len = std::min(c.query_len, src.size());
    const std::size_t begin =
        src.size() > len ? rng.below(src.size() - len + 1) : 0;
    Sequence probe = mutate(src.slice(begin, begin + len), 0.05, 0.01, rng);
    probe.set_name(name);
    queries.push_back(std::move(probe));
  }
  return queries;
}

std::string diff_hits(const std::vector<db::DbHit>& expected,
                      const std::vector<db::DbHit>& got) {
  std::ostringstream os;
  os << "expected " << expected.size() << " hits, got " << got.size();
  const std::size_t n = std::min(expected.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (expected[i] == got[i]) continue;
    const db::DbHit& e = expected[i];
    const db::DbHit& g = got[i];
    os << "; first mismatch at [" << i << "]: expected (frag=" << e.fragment
       << " score=" << e.score << " end=" << e.end_i << "," << e.end_j
       << "), got (frag=" << g.fragment << " score=" << g.score
       << " end=" << g.end_i << "," << g.end_j << ")";
    break;
  }
  return os.str();
}

}  // namespace

std::string DbOracleCase::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed << " db=" << n_sequences << "x" << seq_len
     << " queries=" << n_queries << "x" << query_len << " procs=" << nprocs
     << " min=" << min_score << " gap=" << gap_model_name(scheme.gap_model());
  if (scheme.affine()) {
    os << "(" << scheme.gap_open << "," << scheme.gap << ")";
  }
  os << " comm=" << dsm::comm_mode_name(comm)
     << " faults=" << faults.to_string();
  return os.str();
}

std::string DbOracleVerdict::summary() const {
  std::ostringstream os;
  os << queries << " queries, " << total_hits << " hits, "
     << fragments_rejected << "/" << fragments_scanned << " rejected: ";
  if (ok) {
    os << "OK";
  } else {
    os << mismatched_queries << " divergent (" << detail << ")";
  }
  return os.str();
}

DbOracleVerdict run_db_differential(const DbOracleCase& c) {
  DbOracleVerdict v;
  Rng rng(c.seed);
  const std::vector<Sequence> seqs = make_database(c, rng);
  const std::vector<Sequence> queries = make_queries(c, seqs, rng);
  const db::SubjectDb db(seqs, c.db_cfg);

  dsm::DsmConfig dsm_cfg;
  dsm_cfg.retry = c.retry;
  dsm_cfg.comm = c.comm;
  dsm_cfg.faults = c.faults;
  dsm::Cluster cluster(c.nprocs, dsm_cfg);
  const db::DbShards shards(cluster, db);

  for (std::size_t k = 0; k < queries.size(); ++k) {
    const std::vector<db::DbHit> expected =
        db::brute_force_hits(db, queries[k], c.scheme, c.min_score);
    const db::DbQueryResult got =
        db::db_query(cluster, db, shards, queries[k], c.scheme, c.min_score);
    ++v.queries;
    v.total_hits += expected.size();
    v.fragments_scanned += got.fragments_scanned;
    v.fragments_rejected += got.fragments_rejected;
    if (got.hits != expected) {
      v.ok = false;
      ++v.mismatched_queries;
      if (v.detail.empty()) {
        v.detail = "query " + std::to_string(k) + ": " +
                   diff_hits(expected, got.hits);
      }
    }
  }
  return v;
}

DbOracleCase minimize_db(DbOracleCase c) {
  if (run_db_differential(c).ok) return c;
  // Greedy shrink, one dimension at a time, re-checking after each cut.
  const auto still_fails = [](const DbOracleCase& t) {
    return !run_db_differential(t).ok;
  };
  for (bool shrunk = true; shrunk;) {
    shrunk = false;
    DbOracleCase t = c;
    if (t.n_sequences > 1) {
      t.n_sequences /= 2;
      if (still_fails(t)) { c = t; shrunk = true; continue; }
    }
    t = c;
    if (t.seq_len > 64) {
      t.seq_len /= 2;
      if (still_fails(t)) { c = t; shrunk = true; continue; }
    }
    t = c;
    if (t.n_queries > 1) {
      t.n_queries = (t.n_queries + 1) / 2;
      if (still_fails(t)) { c = t; shrunk = true; continue; }
    }
    t = c;
    if (t.query_len > 32) {
      t.query_len /= 2;
      if (still_fails(t)) { c = t; shrunk = true; continue; }
    }
    t = c;
    if (t.nprocs > 1) {
      t.nprocs /= 2;
      if (still_fails(t)) { c = t; shrunk = true; continue; }
    }
  }
  return c;
}

}  // namespace gdsm::testing
