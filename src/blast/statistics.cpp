#include "blast/statistics.h"

#include <cmath>
#include <stdexcept>

namespace gdsm::blast {
namespace {

// E[e^{lambda s}] - 1 for uniform base composition: a match occurs with
// probability 1/4, a mismatch with 3/4.
double phi(double lambda, int match, int mismatch) {
  return 0.25 * std::exp(lambda * match) +
         0.75 * std::exp(lambda * mismatch) - 1.0;
}

// Published BLASTN K values for the common (reward, penalty) regimes; the
// general computation (Karlin & Altschul's infinite series) is out of scope.
double k_for(int match, int mismatch) {
  struct Entry {
    int match, mismatch;
    double k;
  };
  static constexpr Entry kTable[] = {
      {1, -1, 0.20}, {1, -2, 0.46}, {1, -3, 0.711}, {1, -4, 0.78},
      {2, -3, 0.46}, {2, -5, 0.71}, {2, -7, 0.78},  {3, -4, 0.29},
  };
  for (const Entry& e : kTable) {
    if (e.match == match && e.mismatch == mismatch) return e.k;
  }
  return 0.35;  // conservative fallback for unusual regimes
}

}  // namespace

KarlinParams karlin_altschul(int match, int mismatch) {
  if (match <= 0) {
    throw std::invalid_argument("karlin_altschul: match must be positive");
  }
  // Expected score must be negative or lambda does not exist.
  const double expected = 0.25 * match + 0.75 * mismatch;
  if (expected >= 0) {
    throw std::invalid_argument(
        "karlin_altschul: expected score must be negative");
  }
  // phi is convex with phi(0) = 0, phi'(0) = E[s] < 0 and phi -> +inf, so
  // the positive root is unique: bracket then bisect.
  double hi = 1.0;
  while (phi(hi, match, mismatch) < 0) hi *= 2;
  double lo = 0.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (phi(mid, match, mismatch) < 0 ? lo : hi) = mid;
  }
  KarlinParams out;
  out.lambda = 0.5 * (lo + hi);
  out.k = k_for(match, mismatch);
  // Relative entropy H = lambda * E[s e^{lambda s}] (nats per pair).
  out.h = out.lambda * (0.25 * match * std::exp(out.lambda * match) +
                        0.75 * mismatch * std::exp(out.lambda * mismatch));
  return out;
}

double bit_score(int raw_score, const KarlinParams& params) {
  return (params.lambda * raw_score - std::log(params.k)) / std::log(2.0);
}

double evalue(int raw_score, std::size_t m, std::size_t n,
              const KarlinParams& params) {
  return params.k * static_cast<double>(m) * static_cast<double>(n) *
         std::exp(-params.lambda * raw_score);
}

}  // namespace gdsm::blast
