// Mini-BlastN: a classical seed-and-extend nucleotide search engine.
//
// Stands in for the NCBI BlastN binary the paper compares against in
// Table 2.  The pipeline is the textbook one: exact word hits from a k-mer
// index of the subject, diagonal-deduplicated, extended ungapped with an
// X-drop rule, then refined by a gapped local alignment in a window around
// the ungapped high-scoring pair.  Like the real program it uses its own
// scoring regime, so its coordinates are expected to be *close to but not
// exactly* those of the exhaustive DP strategies — which is precisely the
// observation Table 2 makes.
#pragma once

#include <cstddef>
#include <vector>

#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm::blast {

struct BlastParams {
  int word_size = 11;      ///< classic BLASTN default seed length
  int match = 1;           ///< reward
  int mismatch = -3;       ///< penalty (BLASTN 2.x default regime)
  int gap = -5;            ///< linear gap penalty
  int xdrop_ungapped = 16; ///< stop extension when score falls this far below max
  int min_ungapped_score = 20;  ///< HSPs below this are not gapped-extended
  int min_score = 28;      ///< report threshold after gapped extension
  std::size_t window_pad = 64;  ///< gapped-extension window margin
  std::size_t max_hits = 128;
};

struct BlastHit {
  std::size_t s_begin = 0;  ///< 1-based inclusive, like the paper's Table 2
  std::size_t s_end = 0;
  std::size_t t_begin = 0;
  std::size_t t_end = 0;
  int score = 0;
  double bit_score = 0;  ///< Karlin–Altschul normalized score
  double evalue = 0;     ///< expected chance hits of this score in m x n
};

/// All gapped hits between s and t, best score first, greedily
/// non-overlapping, at most max_hits.
std::vector<BlastHit> blastn(const Sequence& s, const Sequence& t,
                             const BlastParams& params = {});

/// An ungapped diagonal segment produced by X-drop extension (0-based,
/// half-open coordinates into the two raw base arrays).
struct UngappedSegment {
  std::size_t s_begin = 0, s_end = 0;
  std::size_t t_begin = 0, t_end = 0;
  int score = 0;
};

/// Ungapped X-drop extension of an exact seed match s[sp, sp+seed_len) ==
/// t[tp, tp+seed_len) along its diagonal: extend right then left, keeping
/// the first maximal-scoring reach in each direction, abandoning a
/// direction once the running score falls more than `xdrop` below the best.
/// Operates on raw base arrays and allocates nothing, so a per-candidate
/// cascade loop can call it for every chained run (docs/SERVICE.md
/// "Cascade").  With `xdrop` >= match * min(s_len, t_len) the result is the
/// maximal-scoring segment on the diagonal that contains the seed.
UngappedSegment extend_ungapped_xdrop(const Base* s, std::size_t s_len,
                                      const Base* t, std::size_t t_len,
                                      std::size_t sp, std::size_t tp,
                                      std::size_t seed_len, int match,
                                      int mismatch, int xdrop);

}  // namespace gdsm::blast
