#include "blast/words.h"

#include <algorithm>

namespace gdsm::blast {

void chain_seed_runs(const SeedPair* pairs, std::size_t n, int k,
                     std::vector<SeedRun>& runs,
                     std::vector<SeedPair>& scratch) {
  runs.clear();
  if (n == 0 || k <= 0) return;
  scratch.assign(pairs, pairs + n);
  std::sort(scratch.begin(), scratch.end(),
            [](const SeedPair& a, const SeedPair& b) {
              const std::int64_t da = static_cast<std::int64_t>(a.s_pos) -
                                      static_cast<std::int64_t>(a.q_pos);
              const std::int64_t db = static_cast<std::int64_t>(b.s_pos) -
                                      static_cast<std::int64_t>(b.q_pos);
              if (da != db) return da < db;
              return a.q_pos < b.q_pos;
            });
  const auto kk = static_cast<std::uint32_t>(k);
  for (const SeedPair& p : scratch) {
    const std::int64_t diag = static_cast<std::int64_t>(p.s_pos) -
                              static_cast<std::int64_t>(p.q_pos);
    if (!runs.empty() && runs.back().diagonal == diag &&
        p.q_pos <= runs.back().q_end) {
      SeedRun& run = runs.back();
      run.q_end = std::max(run.q_end, p.q_pos + kk);
      ++run.seeds;
      continue;
    }
    runs.push_back(SeedRun{diag, p.q_pos, p.q_pos + kk, p.s_pos, 1});
  }
}

bool pack_word(const Sequence& seq, std::size_t pos, int k,
               std::uint32_t* out) {
  std::uint32_t code = 0;
  for (int i = 0; i < k; ++i) {
    const Base b = seq[pos + static_cast<std::size_t>(i)];
    if (b >= 4) return false;
    code = (code << 2) | b;
  }
  *out = code;
  return true;
}

WordIndex::WordIndex(const Sequence& seq, int k) : k_(k) {
  if (k <= 0 || seq.size() < static_cast<std::size_t>(k)) return;
  index_.reserve(seq.size());
  for (std::size_t pos = 0; pos + static_cast<std::size_t>(k) <= seq.size();
       ++pos) {
    std::uint32_t code;
    if (pack_word(seq, pos, k, &code)) {
      index_[code].push_back(static_cast<std::uint32_t>(pos));
    }
  }
}

const std::vector<std::uint32_t>& WordIndex::positions(
    std::uint32_t code) const {
  static const std::vector<std::uint32_t> kEmpty;
  const auto it = index_.find(code);
  return it == index_.end() ? kEmpty : it->second;
}

std::vector<std::uint32_t> WordIndex::codes() const {
  std::vector<std::uint32_t> out;
  out.reserve(index_.size());
  for (const auto& [code, positions] : index_) out.push_back(code);
  return out;
}

}  // namespace gdsm::blast
