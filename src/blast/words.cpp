#include "blast/words.h"

namespace gdsm::blast {

bool pack_word(const Sequence& seq, std::size_t pos, int k,
               std::uint32_t* out) {
  std::uint32_t code = 0;
  for (int i = 0; i < k; ++i) {
    const Base b = seq[pos + static_cast<std::size_t>(i)];
    if (b >= 4) return false;
    code = (code << 2) | b;
  }
  *out = code;
  return true;
}

WordIndex::WordIndex(const Sequence& seq, int k) : k_(k) {
  if (k <= 0 || seq.size() < static_cast<std::size_t>(k)) return;
  index_.reserve(seq.size());
  for (std::size_t pos = 0; pos + static_cast<std::size_t>(k) <= seq.size();
       ++pos) {
    std::uint32_t code;
    if (pack_word(seq, pos, k, &code)) {
      index_[code].push_back(static_cast<std::uint32_t>(pos));
    }
  }
}

const std::vector<std::uint32_t>& WordIndex::positions(
    std::uint32_t code) const {
  static const std::vector<std::uint32_t> kEmpty;
  const auto it = index_.find(code);
  return it == index_.end() ? kEmpty : it->second;
}

std::vector<std::uint32_t> WordIndex::codes() const {
  std::vector<std::uint32_t> out;
  out.reserve(index_.size());
  for (const auto& [code, positions] : index_) out.push_back(code);
  return out;
}

}  // namespace gdsm::blast
