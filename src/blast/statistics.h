// Karlin–Altschul statistics for ungapped local alignment scores
// (Karlin & Altschul, PNAS 1990): the foundation of BLAST's E-values.
//
// For a scoring regime with positive expected mismatch penalty, the score
// of the best local alignment between random sequences follows an extreme
// value distribution with parameters lambda (solved from
// sum_ij p_i p_j e^{lambda s_ij} = 1) and K.  lambda is computed here
// numerically; K comes from the published BLASTN tables for the common
// nucleotide regimes (its general computation involves an infinite series
// that is out of scope — the table covers every regime this repo uses).
#pragma once

#include <cstddef>

namespace gdsm::blast {

struct KarlinParams {
  double lambda = 0;  ///< nats per raw score unit
  double k = 0;       ///< search-space scale factor
  double h = 0;       ///< relative entropy (nats per aligned pair)
};

/// Parameters for uniform base composition (p = 1/4 each) and the given
/// match/mismatch scores.  Requires match > 0 and an overall negative
/// expected score (mismatch <= -match is sufficient); throws otherwise.
KarlinParams karlin_altschul(int match, int mismatch);

/// Normalized bit score: (lambda * raw - ln K) / ln 2.
double bit_score(int raw_score, const KarlinParams& params);

/// Expected number of chance alignments with score >= raw in an m x n
/// search space: K * m * n * exp(-lambda * raw).
double evalue(int raw_score, std::size_t m, std::size_t n,
              const KarlinParams& params);

}  // namespace gdsm::blast
