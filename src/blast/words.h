// Exact-word (q-gram / k-mer) machinery shared by the seed-and-extend
// engine (blastn.cpp) and the database filtration front-end (src/db).
//
// A *word* is a window of k consecutive bases packed into a 2-bit code.
// Windows containing 'N' have no code: an N never matches anything
// (sw/scoring.h), so an N window can never be part of an exact occurrence
// and excluding it from indexes and seed scans is lossless.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/sequence.h"

namespace gdsm::blast {

/// 2-bit packs seq[pos, pos+k) into *out.  Returns false (no code) when the
/// window contains an N or other non-ACGT base.
bool pack_word(const Sequence& seq, std::size_t pos, int k,
               std::uint32_t* out);

/// Word index of one sequence: code -> every position the word starts at,
/// ascending.  The classic BLAST subject index, reused by src/db as the
/// per-fragment q-gram index (there only membership is consulted).
class WordIndex {
 public:
  WordIndex() = default;
  WordIndex(const Sequence& seq, int k);

  int word_size() const noexcept { return k_; }

  /// Positions of `code` in the indexed sequence (empty when absent).
  const std::vector<std::uint32_t>& positions(std::uint32_t code) const;

  bool contains(std::uint32_t code) const {
    return index_.find(code) != index_.end();
  }

  /// Distinct word codes of the indexed sequence, unordered.
  std::vector<std::uint32_t> codes() const;

 private:
  int k_ = 0;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> index_;
};

}  // namespace gdsm::blast
