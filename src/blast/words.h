// Exact-word (q-gram / k-mer) machinery shared by the seed-and-extend
// engine (blastn.cpp) and the database filtration front-end (src/db).
//
// A *word* is a window of k consecutive bases packed into a 2-bit code.
// Windows containing 'N' have no code: an N never matches anything
// (sw/scoring.h), so an N window can never be part of an exact occurrence
// and excluding it from indexes and seed scans is lossless.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/sequence.h"

namespace gdsm::blast {

/// 2-bit packs seq[pos, pos+k) into *out.  Returns false (no code) when the
/// window contains an N or other non-ACGT base.
bool pack_word(const Sequence& seq, std::size_t pos, int k,
               std::uint32_t* out);

/// One exact q-gram co-occurrence: query word starting at q_pos matches the
/// subject word starting at s_pos.  The database cascade gathers these from
/// the posting index; blastn derives them from its per-subject WordIndex.
struct SeedPair {
  std::uint32_t q_pos = 0;
  std::uint32_t s_pos = 0;
};

/// A maximal run of overlapping or touching seeds on one diagonal: the
/// query columns [q_begin, q_end) match subject [s_begin, s_begin +
/// (q_end - q_begin)) exactly.  `seeds` counts the word pairs joined in —
/// the classic two-hit signal (>= 2 means two word hits joined on the
/// diagonal; a lone word stays a single-seed run).
struct SeedRun {
  std::int64_t diagonal = 0;  ///< s_pos - q_pos
  std::uint32_t q_begin = 0;
  std::uint32_t q_end = 0;
  std::uint32_t s_begin = 0;
  std::uint32_t seeds = 0;

  std::uint32_t length() const noexcept { return q_end - q_begin; }
};

/// Diagonal binning + two-hit joining: bins `pairs` (any order) by diagonal
/// and merges seeds whose k-windows overlap or touch (q' <= q + k) into
/// SeedRuns.  Appends nothing on n == 0.  `runs` is cleared first; `scratch`
/// is caller-owned so a per-candidate loop never reallocates once warm.
/// Output is sorted by (diagonal, q_begin).
void chain_seed_runs(const SeedPair* pairs, std::size_t n, int k,
                     std::vector<SeedRun>& runs,
                     std::vector<SeedPair>& scratch);

/// Word index of one sequence: code -> every position the word starts at,
/// ascending.  The classic BLAST subject index, reused by src/db as the
/// per-fragment q-gram index (there only membership is consulted).
class WordIndex {
 public:
  WordIndex() = default;
  WordIndex(const Sequence& seq, int k);

  int word_size() const noexcept { return k_; }

  /// Positions of `code` in the indexed sequence (empty when absent).
  const std::vector<std::uint32_t>& positions(std::uint32_t code) const;

  bool contains(std::uint32_t code) const {
    return index_.find(code) != index_.end();
  }

  /// Distinct word codes of the indexed sequence, unordered.
  std::vector<std::uint32_t> codes() const;

 private:
  int k_ = 0;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> index_;
};

}  // namespace gdsm::blast
