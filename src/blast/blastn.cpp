#include "blast/blastn.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "blast/statistics.h"
#include "blast/words.h"
#include "sw/banded.h"

namespace gdsm::blast {
namespace {

struct Hsp {
  std::size_t s_begin, s_end;  // 0-based half-open here; converted on output
  std::size_t t_begin, t_end;
  int score;
};

// Ungapped X-drop extension of a word-index seed (exact by construction:
// pack_word never emits a code for an N window) along its diagonal.
Hsp extend_ungapped(const Sequence& s, const Sequence& t, std::size_t sp,
                    std::size_t tp, int k, const BlastParams& params) {
  const UngappedSegment seg = extend_ungapped_xdrop(
      s.data(), s.size(), t.data(), t.size(), sp, tp,
      static_cast<std::size_t>(k), params.match, params.mismatch,
      params.xdrop_ungapped);
  return Hsp{seg.s_begin, seg.s_end, seg.t_begin, seg.t_end, seg.score};
}

}  // namespace

UngappedSegment extend_ungapped_xdrop(const Base* s, std::size_t s_len,
                                      const Base* t, std::size_t t_len,
                                      std::size_t sp, std::size_t tp,
                                      std::size_t seed_len, int match,
                                      int mismatch, int xdrop) {
  UngappedSegment seg{sp, sp + seed_len, tp, tp + seed_len,
                      static_cast<int>(seed_len) * match};
  // Right extension.
  int best = seg.score;
  int run = seg.score;
  std::size_t i = seg.s_end, j = seg.t_end;
  while (i < s_len && j < t_len && run > best - xdrop) {
    run += (s[i] == t[j] && s[i] < 4) ? match : mismatch;
    ++i;
    ++j;
    if (run > best) {
      best = run;
      seg.s_end = i;
      seg.t_end = j;
    }
  }
  // Left extension.
  run = best;
  i = seg.s_begin;
  j = seg.t_begin;
  while (i > 0 && j > 0 && run > best - xdrop) {
    run += (s[i - 1] == t[j - 1] && s[i - 1] < 4) ? match : mismatch;
    --i;
    --j;
    if (run > best) {
      best = run;
      seg.s_begin = i;
      seg.t_begin = j;
    }
  }
  seg.score = best;
  return seg;
}

std::vector<BlastHit> blastn(const Sequence& s, const Sequence& t,
                             const BlastParams& params) {
  const int k = params.word_size;
  std::vector<BlastHit> out;
  if (s.size() < static_cast<std::size_t>(k) ||
      t.size() < static_cast<std::size_t>(k)) {
    return out;
  }

  // 1. Word index of the subject s.
  const WordIndex index(s, k);

  // 2. Scan the query t; for each word hit, extend once per diagonal region.
  // covered[diag] = first t position not yet covered by an extension.
  std::unordered_map<std::int64_t, std::size_t> covered;
  std::vector<Hsp> hsps;
  for (std::size_t tp = 0; tp + static_cast<std::size_t>(k) <= t.size(); ++tp) {
    std::uint32_t code;
    if (!pack_word(t, tp, k, &code)) continue;
    for (const std::uint32_t sp : index.positions(code)) {
      const std::int64_t diag =
          static_cast<std::int64_t>(tp) - static_cast<std::int64_t>(sp);
      const auto cov = covered.find(diag);
      if (cov != covered.end() && tp < cov->second) continue;
      const Hsp hsp = extend_ungapped(s, t, sp, tp, k, params);
      covered[diag] = hsp.t_end;
      if (hsp.score >= params.min_ungapped_score) hsps.push_back(hsp);
    }
  }

  // 3. Gapped refinement: a BANDED local alignment in a padded window around
  // each HSP (the optimal gapped alignment stays near the seed diagonal), in
  // the BLAST scoring regime.
  std::sort(hsps.begin(), hsps.end(),
            [](const Hsp& a, const Hsp& b) { return a.score > b.score; });
  const ScoreScheme scheme{params.match, params.mismatch, params.gap};
  const KarlinParams stats = karlin_altschul(params.match, params.mismatch);
  std::vector<BlastHit> hits;
  for (const Hsp& hsp : hsps) {
    const std::size_t s_lo = hsp.s_begin > params.window_pad
                                 ? hsp.s_begin - params.window_pad
                                 : 0;
    const std::size_t s_hi = std::min(s.size(), hsp.s_end + params.window_pad);
    const std::size_t t_lo = hsp.t_begin > params.window_pad
                                 ? hsp.t_begin - params.window_pad
                                 : 0;
    const std::size_t t_hi = std::min(t.size(), hsp.t_end + params.window_pad);
    const int center =
        static_cast<int>(static_cast<std::int64_t>(hsp.t_begin - t_lo) -
                         static_cast<std::int64_t>(hsp.s_begin - s_lo));
    const Alignment al = banded_smith_waterman(
        s.slice(s_lo, s_hi), t.slice(t_lo, t_hi),
        static_cast<int>(params.window_pad), center, scheme);
    if (al.score < params.min_score || al.ops.empty()) continue;
    BlastHit hit{s_lo + al.s_begin + 1, s_lo + al.s_end(),
                 t_lo + al.t_begin + 1, t_lo + al.t_end(), al.score, 0, 0};
    hit.bit_score = bit_score(al.score, stats);
    hit.evalue = evalue(al.score, s.size(), t.size(), stats);
    hits.push_back(hit);
  }

  // 4. Cull: best first, drop overlaps, cap the list.
  std::sort(hits.begin(), hits.end(), [](const BlastHit& a, const BlastHit& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.s_begin != b.s_begin) return a.s_begin < b.s_begin;
    return a.t_begin < b.t_begin;
  });
  for (const BlastHit& h : hits) {
    if (out.size() >= params.max_hits) break;
    const bool overlaps =
        std::any_of(out.begin(), out.end(), [&](const BlastHit& prev) {
          const bool s_disjoint =
              h.s_end < prev.s_begin || prev.s_end < h.s_begin;
          const bool t_disjoint =
              h.t_end < prev.t_begin || prev.t_end < h.t_begin;
          return !(s_disjoint || t_disjoint);
        });
    if (!overlaps) out.push_back(h);
  }
  return out;
}

}  // namespace gdsm::blast
