#include "sim/cost_model.h"

// The cost model is header-only arithmetic; this translation unit exists so
// the library has a stable archive member and a home for future non-inline
// calibration helpers.

namespace gdsm::sim {}
