// Calibrated cost model of the paper's evaluation platform: a dedicated
// cluster of 8 Pentium II 350 MHz workstations (160 MB RAM, 512 KB L2)
// connected by a 100 Mbps switched Ethernet, running JIAJIA v2.1 over
// Debian Linux with NFS (Section 4.2.1).
//
// Calibration sources (derivation in EXPERIMENTS.md):
//  * heuristic DP cell with candidate bookkeeping: Table 1/Table 4 serial
//    times (~1.0-1.4 us/cell depending on locality);
//  * the cache penalty reproduces why the banded strategy's *serial* run
//    beats the two-linear-arrays serial run (Table 4 vs Table 1) and why
//    "equal" band sizing is ~20% worse sequentially (Fig. 19);
//  * plain counting cell of the pre-process strategy: Fig. 19's ~1000 s for
//    an 80 k serial run -> ~0.155 us/cell;
//  * per-message latency and protocol software overhead: the residual
//    per-row handshake cost implied by Table 1's parallel times (a few ms
//    per border communication).
#pragma once

#include <cstddef>
#include <string_view>

namespace gdsm::sim {

struct CostModel {
  // -- CPU ------------------------------------------------------------
  double cell_s_heuristic = 1.05e-6;  ///< heuristic cell, cache-resident rows
  double cell_s_plain = 0.155e-6;     ///< pre-process counting cell
  double cell_s_nw = 0.11e-6;         ///< phase-2 NW cell incl. traceback share
  double cache_penalty = 0.32;        ///< extra cell cost when rows spill L2
  std::size_t l2_bytes = 512 * 1024;  ///< Pentium II 512 KB L2
  std::size_t heuristic_cell_bytes = 56;  ///< CellInfo footprint per column
  std::size_t plain_cell_bytes = 8;       ///< int32 score + hit bookkeeping
                                          ///< per column-array row (Section 5)
  double dsm_write_factor = 0.55;  ///< extra per-cell cost when the two rows
                                   ///< live in shared (DSM-checked) memory,
                                   ///< as in the non-blocked strategy

  // -- network: 100 Mbps switched Ethernet + UDP + SIGIO ----------------
  double msg_latency_s = 300e-6;   ///< one-way wire+stack latency
  double wire_s_per_byte = 8.0e-8; ///< 100 Mbps
  double proto_op_s = 550e-6;      ///< handler dispatch / twin / diff software cost
  std::size_t page_bytes = 4096;
  std::size_t msg_header_bytes = 40;

  // -- disk: NFS over the same network ----------------------------------
  double disk_s_per_byte = 2.5e-7;      ///< ~4 MB/s effective NFS write
  double disk_latency_s = 5e-3;         ///< per-operation latency
  double buffer_cache_s_per_byte = 2.0e-8;  ///< absorbing write to page cache
  std::size_t nfs_cache_bytes = 64u << 20;  ///< client buffer cache size

  // -- fixed phases ------------------------------------------------------
  double init_time_s = 8.0;  ///< DSM startup ("ran under 10 s for all tests")
  double term_time_s = 4.0;  ///< final synchronization ("most under 7 s")

  /// Wire time of one message with `payload` bytes (headers included).
  double message_time(std::size_t payload) const {
    return msg_latency_s + (payload + msg_header_bytes) * wire_s_per_byte;
  }

  // -- SIMD kernel backends (v4) ----------------------------------------
  // Measured single-node speedups of the dispatched score-only kernels over
  // the scalar reference (bench/kernels_sw on the dev host; docs/KERNELS.md).
  // The Pentium II calibration above stays the scalar baseline; these scale
  // it so strategy selection sees the machine the run will actually use.
  double simd_speedup_sse41 = 4.0;
  double simd_speedup_avx2 = 7.0;
  // Striped (Farrar) query-profile backends (v9): 8-bit saturating lanes
  // quadruple per-vector parallelism over the 32-bit anti-diagonal sweeps
  // and the sweep has no per-cell bookkeeping (best tracking rides the
  // lane maxima), so the measured ratios are large.  striped-avx512
  // measures at parity with striped-avx2 on the Skylake-SP-class dev host
  // (512-bit integer throughput is port-limited there); the dispatch
  // still auto-picks striped-avx2 (docs/KERNELS.md "Backend matrix").
  double simd_speedup_striped_scalar = 7.0;
  double simd_speedup_striped_sse41 = 49.0;
  double simd_speedup_striped_avx2 = 91.0;
  double simd_speedup_striped_avx512 = 93.0;

  /// Speedup of the named backend (the GDSM_KERNEL vocabulary; unknown
  /// names are conservatively scalar).
  double kernel_speedup(std::string_view backend) const {
    if (backend == "sse41") return simd_speedup_sse41;
    if (backend == "avx2") return simd_speedup_avx2;
    if (backend == "striped-scalar") return simd_speedup_striped_scalar;
    if (backend == "striped-sse41") return simd_speedup_striped_sse41;
    if (backend == "striped-avx2") return simd_speedup_striped_avx2;
    if (backend == "striped-avx512") return simd_speedup_striped_avx512;
    return 1.0;
  }

  // -- affine gap model (v6) ---------------------------------------------
  // Gotoh's three-matrix recurrence adds the E/F companions to every cell:
  // two extra running maxima plus the extra boundary traffic.  Measured
  // per-backend cell-cost ratios of bench/kernels_sw --gap=affine over the
  // linear kernels; the SIMD backends amortize the extra maxima better than
  // the scalar loop does.
  double affine_cell_factor_scalar = 1.9;
  double affine_cell_factor_sse41 = 1.5;
  double affine_cell_factor_avx2 = 1.5;
  /// Heuristic CellInfo update under affine gaps (bookkeeping dominates, so
  /// the two extra maxima cost proportionally less than in the kernels).
  double affine_cell_factor_heuristic = 1.2;

  /// The striped kernels run the same Gotoh-shaped sweep for both gap
  /// models (linear gaps are affine with a zero open surcharge), so the
  /// affine surcharge is noise-level there (bench/kernels_sw).
  double affine_cell_factor_striped = 1.0;

  /// Affine/linear cell-cost ratio of the named kernel backend.
  double affine_cell_factor(std::string_view backend) const {
    if (backend.substr(0, 8) == "striped-") return affine_cell_factor_striped;
    if (backend == "sse41") return affine_cell_factor_sse41;
    if (backend == "avx2") return affine_cell_factor_avx2;
    return affine_cell_factor_scalar;
  }

  /// Pre-process counting cell on the named kernel backend.
  double plain_cell_s(std::string_view backend) const {
    return cell_s_plain / kernel_speedup(backend);
  }

  /// Pre-process counting cell on the named backend under the given gap
  /// model (affine pays the per-backend Gotoh factor).
  double plain_cell_s(std::string_view backend, bool affine) const {
    return plain_cell_s(backend) *
           (affine ? affine_cell_factor(backend) : 1.0);
  }

  /// Phase-2 NW cell on the named kernel backend (the traceback share does
  /// not vectorize, but the last-row sweeps dominate).
  double nw_cell_s(std::string_view backend) const {
    return cell_s_nw / kernel_speedup(backend);
  }

  /// Effective per-cell cost given the strategy's base cost and the working
  /// set a node streams over per row (two linear arrays of `row_bytes`).
  double effective_cell(double base, std::size_t working_set_bytes) const {
    return working_set_bytes > l2_bytes ? base * (1.0 + cache_penalty) : base;
  }

  // -- seed-and-extend cascade (v10) -------------------------------------
  // The db scan's middle stage (src/db/cascade.h): seeded stage-1
  // survivors are chained and X-drop-extended on the serving host, and
  // candidates whose extension clears the no-seed bound resolve through a
  // banded certified DP instead of the sharded full DP.  Rates measured on
  // the bench/db_throughput funnel at the default thresholds.
  double cascade_resolve_rate = 0.3;  ///< survivors certified host-side
  double cascade_band_area = 0.25;    ///< banded-DP cells / full-matrix cells
  /// Host-side chaining + ungapped-extension cost per gathered seed
  /// occurrence (scalar, serving node).
  double cascade_seed_s = 25e-9;
};

}  // namespace gdsm::sim
