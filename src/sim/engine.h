// Deterministic timestamp-algebra cluster simulator.
//
// Each node has an *application* clock (the SPMD program) and a *service*
// availability time (the SIGIO protocol handler).  Strategy simulators
// replay the exact message sequence their threaded counterparts issue;
// makespans and per-category breakdowns fall out of max/plus arithmetic, so
// results are bit-reproducible and independent of the host machine.
//
// Time accounting categories match the paper's Fig. 10 breakdown
// (computation / communication / lock+cv / barrier) plus disk I/O for the
// pre-process strategy.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "sim/cost_model.h"

namespace gdsm::sim {

enum class Cat : int {
  kCompute = 0,
  kComm,     ///< page fetches, diffs, data transfer
  kLockCv,   ///< lock/cv protocol and the waiting they induce
  kBarrier,  ///< barrier protocol and waiting
  kIo,       ///< disk writes (pre-process strategy)
  kCount
};

inline constexpr int kNumCats = static_cast<int>(Cat::kCount);

const char* cat_name(Cat c) noexcept;

/// Per-node accumulated seconds by category.
struct Breakdown {
  std::array<double, kNumCats> seconds{};

  double total() const noexcept {
    double t = 0;
    for (double v : seconds) t += v;
    return t;
  }
  double operator[](Cat c) const noexcept { return seconds[static_cast<int>(c)]; }
};

class ClusterSim {
 public:
  ClusterSim(int n_nodes, const CostModel& cm);

  int nodes() const noexcept { return n_; }
  const CostModel& cost() const noexcept { return cm_; }

  double now(int node) const { return clock_[static_cast<std::size_t>(node)]; }

  /// Advances a node's application clock by busy work.
  void busy(int node, double dt, Cat cat);

  /// Blocks the node until absolute time `t` (no-op if already past);
  /// the waiting time is attributed to `cat`.
  void wait_until(int node, double t, Cat cat);

  /// One-way message from the application thread of `src` to the service
  /// thread of `dst`: send CPU is charged to src, handler occupancy to
  /// dst's service timeline.  Returns the time the handler *finishes*
  /// processing it (e.g. when a forwarded grant could be emitted).
  double send_async(int src, int dst, std::size_t payload_bytes, Cat cat);

  /// Request/response round trip (page fetch, lock acquire, cv wait,
  /// barrier): charges send CPU, queues on the server, waits for the reply.
  /// `extra_ready` (absolute time) optionally delays the server's reply
  /// until some other event has happened (e.g. the matching signal).
  void rpc(int src, int server, std::size_t request_bytes,
           std::size_t reply_bytes, Cat cat, double extra_ready = 0.0);

  /// Service-side processing of an event arriving at `arrival` (handler
  /// dispatch cost, no queueing — see the implementation note).  Returns
  /// completion time.
  double server_process(int server, double arrival);

  /// Convenience: the max application clock over all nodes.
  double makespan() const;

  const Breakdown& breakdown(int node) const {
    return acc_[static_cast<std::size_t>(node)];
  }

  /// Aggregated over nodes (averaged), for Fig. 10-style relative shares.
  Breakdown average_breakdown() const;

 private:
  int n_;
  CostModel cm_;
  std::vector<double> clock_;  ///< application thread time per node
  std::vector<Breakdown> acc_;
};

}  // namespace gdsm::sim
