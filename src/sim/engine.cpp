#include "sim/engine.h"

#include <algorithm>
#include <stdexcept>

namespace gdsm::sim {

const char* cat_name(Cat c) noexcept {
  switch (c) {
    case Cat::kCompute: return "computation";
    case Cat::kComm: return "communication";
    case Cat::kLockCv: return "lock+cv";
    case Cat::kBarrier: return "barrier";
    case Cat::kIo: return "io";
    default: return "?";
  }
}

ClusterSim::ClusterSim(int n_nodes, const CostModel& cm)
    : n_(n_nodes),
      cm_(cm),
      clock_(static_cast<std::size_t>(n_nodes), 0.0),
      acc_(static_cast<std::size_t>(n_nodes)) {
  if (n_nodes <= 0) throw std::invalid_argument("ClusterSim: need >= 1 node");
}

void ClusterSim::busy(int node, double dt, Cat cat) {
  clock_[static_cast<std::size_t>(node)] += dt;
  acc_[static_cast<std::size_t>(node)].seconds[static_cast<int>(cat)] += dt;
}

void ClusterSim::wait_until(int node, double t, Cat cat) {
  auto& clk = clock_[static_cast<std::size_t>(node)];
  if (t > clk) {
    acc_[static_cast<std::size_t>(node)].seconds[static_cast<int>(cat)] += t - clk;
    clk = t;
  }
}

double ClusterSim::server_process(int server, double arrival) {
  // Stateless handler model: the service cost is charged per event, but no
  // queueing is tracked.  Strategy simulators invoke events in dependency
  // order, not global timestamp order, so a busy-until marker would let a
  // *later* event (already simulated) block an *earlier* one — a real
  // queueing model needs a full event calendar, and handler occupancy on
  // this platform (~0.4 ms) is far below the inter-arrival times of every
  // strategy here, so contention is negligible anyway.
  (void)server;
  return arrival + cm_.proto_op_s;
}

double ClusterSim::send_async(int src, int dst, std::size_t payload_bytes,
                              Cat cat) {
  // Self-addressed messages (a manager co-located with the caller) skip the
  // wire entirely: only the handler dispatch cost remains.
  if (src == dst) {
    busy(src, cm_.proto_op_s, cat);
    return server_process(dst, now(src));
  }
  // Sender CPU: handler dispatch + serialization onto the wire.
  busy(src, cm_.proto_op_s + (payload_bytes + cm_.msg_header_bytes) *
                                 cm_.wire_s_per_byte,
       cat);
  const double arrival = now(src) + cm_.msg_latency_s;
  return server_process(dst, arrival);
}

void ClusterSim::rpc(int src, int server, std::size_t request_bytes,
                     std::size_t reply_bytes, Cat cat, double extra_ready) {
  double done = send_async(src, server, request_bytes, cat);
  done = std::max(done, extra_ready);
  if (src == server) {
    wait_until(src, done, cat);
    return;
  }
  // The grant may fire long after the request was processed (extra_ready:
  // e.g. a cv wait blocked on the matching signal).  The server is NOT busy
  // while the grant is pending, so its availability is not pushed out —
  // only the reply's own wire time delays the requester.
  const double reply_sent =
      done + (reply_bytes + cm_.msg_header_bytes) * cm_.wire_s_per_byte;
  const double reply_arrival = reply_sent + cm_.msg_latency_s;
  wait_until(src, reply_arrival, cat);
  // Receiver-side handler cost of consuming the reply.
  busy(src, cm_.proto_op_s, cat);
}

double ClusterSim::makespan() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

Breakdown ClusterSim::average_breakdown() const {
  Breakdown avg;
  for (const auto& b : acc_) {
    for (int c = 0; c < kNumCats; ++c) avg.seconds[c] += b.seconds[c];
  }
  for (int c = 0; c < kNumCats; ++c) avg.seconds[c] /= n_;
  return avg;
}

}  // namespace gdsm::sim
