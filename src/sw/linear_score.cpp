// Thin orientation adapters over the runtime-dispatched block kernels
// (src/simd): rows of the scan map onto the kernel's sweep dimension `b`,
// which makes the kernel's (b, a)-lexicographic tie-break exactly this
// layer's documented row-major rule.  The scalar loops that used to live
// here are now simd::scalar::* — the reference backend of the dispatch.
#include "sw/linear_score.h"

#include "simd/dispatch.h"

namespace gdsm {
namespace {

simd::ScoreParams to_params(const ScoreScheme& scheme) {
  return simd::ScoreParams{scheme.match, scheme.mismatch, scheme.gap,
                           scheme.gap_open};
}

}  // namespace

BestLocal sw_best_score_linear(const Sequence& s, const Sequence& t,
                               const ScoreScheme& scheme) {
  // Keep the shorter word on the lane dimension (the "shorter input string
  // will index the rows" remark of Section 6); the tie-break follows the
  // scanned orientation, as before.
  const bool transpose = t.size() > s.size();
  const Sequence& rows = transpose ? t : s;
  const Sequence& cols = transpose ? s : t;
  simd::DiagBlock blk;
  blk.a_seq = cols.data();
  blk.a_len = cols.size();
  blk.b_seq = rows.data();
  blk.b_len = rows.size();
  const simd::BestCell bc = simd::block_best(blk, to_params(scheme));
  BestLocal best;
  if (bc.score > 0) {
    best.score = bc.score;
    best.end_i = transpose ? bc.a + 1 : bc.b + 1;
    best.end_j = transpose ? bc.b + 1 : bc.a + 1;
  }
  return best;
}

void sw_scan_hits(const Sequence& s, const Sequence& t, const ScoreScheme& scheme,
                  int threshold,
                  const std::function<void(std::size_t, std::size_t, int)>& hit) {
  simd::DiagBlock blk;
  blk.a_seq = t.data();
  blk.a_len = t.size();
  blk.b_seq = s.data();
  blk.b_len = s.size();
  simd::block_hits(blk, to_params(scheme), threshold,
                   [&](std::size_t a, std::size_t b, std::int32_t v) {
                     hit(b + 1, a + 1, v);
                   });
}

std::vector<int> nw_last_row(const Sequence& s, const Sequence& t,
                             const ScoreScheme& scheme) {
  static_assert(sizeof(int) == sizeof(std::int32_t));
  const std::size_t m = s.size();
  const std::size_t n = t.size();
  std::vector<int> row(n + 1);
  row[0] = static_cast<int>(m) * scheme.gap;
  simd::nw_last_row(t.data(), n, s.data(), m, to_params(scheme),
                    reinterpret_cast<std::int32_t*>(row.data() + 1));
  return row;
}

}  // namespace gdsm
