#include "sw/linear_score.h"

#include <algorithm>

namespace gdsm {
namespace {

BestLocal scan_rows(const Sequence& rows, const Sequence& cols,
                    const ScoreScheme& scheme) {
  const std::size_t m = rows.size();
  const std::size_t n = cols.size();
  std::vector<int> prev(n + 1, 0);
  std::vector<int> cur(n + 1, 0);
  BestLocal best;
  for (std::size_t i = 1; i <= m; ++i) {
    cur[0] = 0;
    const Base si = rows[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      const int diag = prev[j - 1] + scheme.substitution(si, cols[j - 1]);
      const int up = prev[j] + scheme.gap;
      const int left = cur[j - 1] + scheme.gap;
      const int v = std::max({0, diag, up, left});
      cur[j] = v;
      if (v > best.score) best = BestLocal{v, i, j};
    }
    std::swap(prev, cur);
  }
  return best;
}

}  // namespace

BestLocal sw_best_score_linear(const Sequence& s, const Sequence& t,
                               const ScoreScheme& scheme) {
  if (t.size() <= s.size()) {
    return scan_rows(s, t, scheme);
  }
  // Transpose: scan with the shorter word on columns, then swap coordinates.
  // Row-major-first tie-breaking differs across the transposition, so pick
  // the transposed winner; scores are identical either way.
  BestLocal b = scan_rows(t, s, scheme);
  std::swap(b.end_i, b.end_j);
  return b;
}

void sw_scan_hits(const Sequence& s, const Sequence& t, const ScoreScheme& scheme,
                  int threshold,
                  const std::function<void(std::size_t, std::size_t, int)>& hit) {
  const std::size_t m = s.size();
  const std::size_t n = t.size();
  std::vector<int> prev(n + 1, 0);
  std::vector<int> cur(n + 1, 0);
  for (std::size_t i = 1; i <= m; ++i) {
    cur[0] = 0;
    const Base si = s[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      const int diag = prev[j - 1] + scheme.substitution(si, t[j - 1]);
      const int up = prev[j] + scheme.gap;
      const int left = cur[j - 1] + scheme.gap;
      const int v = std::max({0, diag, up, left});
      cur[j] = v;
      if (v >= threshold) hit(i, j, v);
    }
    std::swap(prev, cur);
  }
}

std::vector<int> nw_last_row(const Sequence& s, const Sequence& t,
                             const ScoreScheme& scheme) {
  const std::size_t m = s.size();
  const std::size_t n = t.size();
  std::vector<int> prev(n + 1);
  std::vector<int> cur(n + 1);
  for (std::size_t j = 0; j <= n; ++j) prev[j] = static_cast<int>(j) * scheme.gap;
  for (std::size_t i = 1; i <= m; ++i) {
    cur[0] = static_cast<int>(i) * scheme.gap;
    const Base si = s[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      const int diag = prev[j - 1] + scheme.substitution(si, t[j - 1]);
      const int up = prev[j] + scheme.gap;
      const int left = cur[j - 1] + scheme.gap;
      cur[j] = std::max({diag, up, left});
    }
    std::swap(prev, cur);
  }
  return prev;
}

}  // namespace gdsm
