// Hirschberg's linear-space global alignment [Hirschberg 1977], referenced by
// Section 6 as the method of choice once an alignment's subregion is known
// but too large to hold a full DP matrix in memory.
#pragma once

#include "sw/alignment.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm {

/// Global alignment of s and t in O(min(m,n)) space and O(mn) time (the
/// divide-and-conquer at most doubles the work).  Produces the same score as
/// needleman_wunsch; the operation path may differ among co-optimal paths.
Alignment hirschberg(const Sequence& s, const Sequence& t,
                     const ScoreScheme& scheme = {});

}  // namespace gdsm
