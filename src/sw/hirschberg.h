// Hirschberg's linear-space global alignment [Hirschberg 1977], referenced by
// Section 6 as the method of choice once an alignment's subregion is known
// but too large to hold a full DP matrix in memory.
#pragma once

#include "sw/affine.h"
#include "sw/alignment.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm {

/// Global alignment of s and t in O(min(m,n)) space and O(mn) time (the
/// divide-and-conquer at most doubles the work).  Produces the same score as
/// needleman_wunsch; the operation path may differ among co-optimal paths.
/// An affine scheme (gap_open != 0) routes to hirschberg_affine.
Alignment hirschberg(const Sequence& s, const Sequence& t,
                     const ScoreScheme& scheme = {});

/// Affine-gap global alignment in linear space (Myers–Miller 1988): the
/// Hirschberg divide-and-conquer with the extra E-state last rows and the
/// split-through-a-gap join, so a vertical gap run crossing the midpoint is
/// charged its open exactly once.  Same score as needleman_wunsch_affine.
Alignment hirschberg_affine(const Sequence& s, const Sequence& t,
                            const AffineScheme& scheme = {});

}  // namespace gdsm
