#include "sw/banded.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <vector>

namespace gdsm {
namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

// Row-windowed score storage: row i holds columns [lo(i), hi(i)].
class BandMatrix {
 public:
  BandMatrix(std::size_t m, std::size_t n, int band, int center)
      : n_(n), band_(band), center_(center), rows_(m + 1) {
    for (std::size_t i = 0; i <= m; ++i) {
      const auto ii = static_cast<long long>(i);
      const long long lo = std::max<long long>(0, ii + center - band);
      const long long hi =
          std::min<long long>(static_cast<long long>(n), ii + center + band);
      rows_[i].lo = lo;
      if (hi >= lo) rows_[i].cells.assign(static_cast<std::size_t>(hi - lo + 1), kNegInf);
    }
  }

  bool in_band(std::size_t i, std::size_t j) const {
    const auto& r = rows_[i];
    const auto jj = static_cast<long long>(j);
    return jj >= r.lo && jj < r.lo + static_cast<long long>(r.cells.size());
  }
  int at(std::size_t i, std::size_t j) const {
    if (!in_band(i, j)) return kNegInf;
    return rows_[i].cells[static_cast<std::size_t>(static_cast<long long>(j) -
                                                   rows_[i].lo)];
  }
  void set(std::size_t i, std::size_t j, int v) {
    rows_[i].cells[static_cast<std::size_t>(static_cast<long long>(j) -
                                            rows_[i].lo)] = v;
  }
  long long lo(std::size_t i) const { return rows_[i].lo; }
  long long hi(std::size_t i) const {
    return rows_[i].lo + static_cast<long long>(rows_[i].cells.size()) - 1;
  }

 private:
  std::size_t n_;
  int band_, center_;
  struct Row {
    long long lo = 0;
    std::vector<int> cells;
  };
  std::vector<Row> rows_;
};

Alignment band_traceback(const BandMatrix& a, const Sequence& s,
                         const Sequence& t, const ScoreScheme& scheme,
                         std::size_t i, std::size_t j, bool local) {
  Alignment out;
  out.score = a.at(i, j);
  std::vector<Op> rev;
  while (i > 0 || j > 0) {
    const int v = a.at(i, j);
    if (local && v == 0) break;
    if (i > 0 && j > 0 &&
        v == a.at(i - 1, j - 1) + scheme.substitution(s[i - 1], t[j - 1])) {
      rev.push_back(Op::Diag);
      --i;
      --j;
      continue;
    }
    if (i > 0 && a.at(i - 1, j) > kNegInf && v == a.at(i - 1, j) + scheme.gap) {
      rev.push_back(Op::Up);
      --i;
      continue;
    }
    if (j > 0 && a.at(i, j - 1) > kNegInf && v == a.at(i, j - 1) + scheme.gap) {
      rev.push_back(Op::Left);
      --j;
      continue;
    }
    break;  // local start, or the band's corner
  }
  out.s_begin = i;
  out.t_begin = j;
  out.ops.assign(rev.rbegin(), rev.rend());
  return out;
}

}  // namespace

std::optional<Alignment> banded_needleman_wunsch(const Sequence& s,
                                                 const Sequence& t, int band,
                                                 int center_diag,
                                                 const ScoreScheme& scheme) {
  const std::size_t m = s.size();
  const std::size_t n = t.size();
  // The end cell's diagonal must lie inside the band.
  if (std::llabs(static_cast<long long>(n) - static_cast<long long>(m) -
                 center_diag) > band) {
    return std::nullopt;
  }
  BandMatrix a(m, n, band, center_diag);
  if (a.in_band(0, 0)) a.set(0, 0, 0);
  for (std::size_t j = 1; j <= n && a.in_band(0, j); ++j) {
    a.set(0, j, static_cast<int>(j) * scheme.gap);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    for (long long j = std::max<long long>(a.lo(i), 0); j <= a.hi(i); ++j) {
      const auto uj = static_cast<std::size_t>(j);
      if (uj == 0) {
        a.set(i, 0, static_cast<int>(i) * scheme.gap);
        continue;
      }
      const int diag =
          a.at(i - 1, uj - 1) == kNegInf
              ? kNegInf
              : a.at(i - 1, uj - 1) + scheme.substitution(s[i - 1], t[uj - 1]);
      const int up = a.at(i - 1, uj) == kNegInf ? kNegInf
                                                : a.at(i - 1, uj) + scheme.gap;
      const int left = a.at(i, uj - 1) == kNegInf
                           ? kNegInf
                           : a.at(i, uj - 1) + scheme.gap;
      a.set(i, uj, std::max({diag, up, left}));
    }
  }
  if (a.at(m, n) <= kNegInf) return std::nullopt;
  return band_traceback(a, s, t, scheme, m, n, /*local=*/false);
}

Alignment banded_smith_waterman(const Sequence& s, const Sequence& t, int band,
                                int center_diag, const ScoreScheme& scheme) {
  const std::size_t m = s.size();
  const std::size_t n = t.size();
  BandMatrix a(m, n, band, center_diag);
  if (a.in_band(0, 0)) a.set(0, 0, 0);
  for (std::size_t j = 1; j <= n && a.in_band(0, j); ++j) a.set(0, j, 0);
  int best = 0;
  std::size_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    for (long long j = std::max<long long>(a.lo(i), 0); j <= a.hi(i); ++j) {
      const auto uj = static_cast<std::size_t>(j);
      if (uj == 0) {
        a.set(i, 0, 0);
        continue;
      }
      const int diag_in = a.at(i - 1, uj - 1);
      const int up_in = a.at(i - 1, uj);
      const int left_in = a.at(i, uj - 1);
      const int v = std::max(
          {0,
           diag_in == kNegInf
               ? kNegInf
               : diag_in + scheme.substitution(s[i - 1], t[uj - 1]),
           up_in == kNegInf ? kNegInf : up_in + scheme.gap,
           left_in == kNegInf ? kNegInf : left_in + scheme.gap});
      a.set(i, uj, v);
      if (v > best) {
        best = v;
        bi = i;
        bj = uj;
      }
    }
  }
  if (best == 0) return Alignment{};
  return band_traceback(a, s, t, scheme, bi, bj, /*local=*/true);
}

}  // namespace gdsm
