// Section 6: retrieving exact local alignments in O(min(n,m) + n'^2) space
// without storing intermediate columns.
//
// Step 1: a linear-space SW pass finds the best score k and its end cell
// (i, j).  Step 2 (Observation 6.1): an alignment of score k *ending* at
// (i, j) corresponds to one of the same score *starting* at the beginnings
// of the reversed prefixes s[1..i]^rev, t[1..j]^rev; running the zero-floored
// DP over the reverses until score k first appears yields the start cell,
// and (Theorem 6.2) every cell whose path passes through an intermediate
// zero can be pruned, which the paper shows leaves only ~30% of the n'xn'
// area in the worst case.  Step 3: the actual alignment is a global
// alignment of the now-known subwords (Needleman–Wunsch, or Hirschberg when
// n' is large).
#pragma once

#include <cstddef>

#include "sw/affine.h"
#include "sw/alignment.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm {

/// Cell-count accounting of the pruned reverse pass, used to validate the
/// paper's ~30% necessary-area bound (Eq. 3).
struct RebuildStats {
  std::size_t rows_used = 0;       ///< rows of the reverse DP actually touched
  std::size_t rect_area = 0;       ///< bounding rectangle rows_used x max row width
  std::size_t computed_cells = 0;  ///< cells actually evaluated
};

/// Start cell of the minimal-length alignment of score `score` that ends at
/// (end_i, end_j) (all coordinates 1-based, per the paper's presentation).
struct StartCoords {
  std::size_t i = 0;
  std::size_t j = 0;
  RebuildStats stats;
};

/// Runs the pruned DP over the reversed prefixes.  Requires score > 0 and
/// that some alignment of exactly `score` ends at (end_i, end_j) — both are
/// guaranteed when the inputs come from sw_best_score_linear.  Throws
/// std::logic_error if the score is never reached (inconsistent inputs).
StartCoords find_alignment_start(const Sequence& s, const Sequence& t,
                                 const ScoreScheme& scheme, std::size_t end_i,
                                 std::size_t end_j, int score);

/// Affine-gap variant of the reverse pass.  The positivity pruning of
/// Theorem 6.2 is not exact under affine costs (cutting a path mid gap-run
/// re-charges the open, so a witness may dip non-positive and still be the
/// only one), so this pass instead anchors at (end_i, end_j) and prunes with
/// the admissible future-gain bound value + match * min(rows, cols left) <
/// score — exact for any scheme with match > 0.  Same contract otherwise.
StartCoords find_alignment_start_affine(const Sequence& s, const Sequence& t,
                                        const AffineScheme& scheme,
                                        std::size_t end_i, std::size_t end_j,
                                        int score);

struct RebuildResult {
  Alignment alignment;
  RebuildStats stats;
};

/// The full Algorithm 1 driver: linear scan for (k, i, j), reverse pass for
/// the start, then a global alignment of the identified subwords.  With
/// `use_hirschberg` the final step runs in linear space as well, making the
/// whole procedure O(min(n,m) + n') space at the cost of ~2x time in the
/// rebuild region.
RebuildResult rebuild_best_local_alignment(const Sequence& s, const Sequence& t,
                                           const ScoreScheme& scheme = {},
                                           bool use_hirschberg = false);

/// Extension of Algorithm 1 to ALL significant alignments: the linear pass
/// records every cell scoring >= min_score; candidates are processed best
/// first, each rebuilt exactly via the reverse pass, and cells lying inside
/// an already-rebuilt alignment's region (its decay trail) are skipped.
/// Returns at most max_count exact, pairwise non-overlapping alignments,
/// best first.  Space stays O(min(n,m) + candidates + n'^2).
std::vector<RebuildResult> rebuild_top_alignments(
    const Sequence& s, const Sequence& t, int min_score,
    std::size_t max_count = 16, const ScoreScheme& scheme = {},
    bool use_hirschberg = false);

}  // namespace gdsm
