// Affine-gap alignment (Gotoh 1982): gap cost = open + k * extend.
//
// The paper uses linear gap costs (-2 per space).  Affine penalties are the
// standard extension every production aligner provides (and what the real
// BlastN uses); we implement the full-matrix local/global variants with
// traceback plus a linear-space score-only scan, mirroring the linear-gap
// API so the strategies could be lifted onto it.
#pragma once

#include "sw/alignment.h"
#include "sw/linear_score.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm {

/// Affine scoring: a gap run of length k costs gap_open + k * gap_extend
/// (both negative).  With gap_open == 0 this degenerates to the linear
/// scheme with gap == gap_extend.
struct AffineScheme {
  int match = 1;
  int mismatch = -1;
  int gap_open = -2;
  int gap_extend = -1;

  constexpr int substitution(Base a, Base b) const noexcept {
    return (a == b && a != kBaseN) ? match : mismatch;
  }
};

/// The two scheme structs describe the same cost family: ScoreScheme carries
/// gap_open (0 = linear) next to `gap` as the extension cost, AffineScheme
/// names the fields explicitly.  The converters are exact in both directions,
/// including the degenerate open == 0 case.
constexpr AffineScheme to_affine(const ScoreScheme& sc) noexcept {
  return AffineScheme{sc.match, sc.mismatch, sc.gap_open, sc.gap};
}
constexpr ScoreScheme to_scheme(const AffineScheme& sc) noexcept {
  return ScoreScheme{sc.match, sc.mismatch, sc.gap_extend, sc.gap_open};
}

/// Best local alignment under affine gaps (Gotoh's three-matrix recurrence),
/// with full traceback.  O(mn) time and space.
Alignment smith_waterman_affine(const Sequence& s, const Sequence& t,
                                const AffineScheme& scheme = {});

/// Local affine alignment forced to end at matrix cell (end_i, end_j),
/// 1-based — the traceback the windowed rebuild fallback needs when the end
/// cell is known but is not the global best of the window.
Alignment smith_waterman_affine_ending_at(const Sequence& s, const Sequence& t,
                                          const AffineScheme& scheme,
                                          std::size_t end_i, std::size_t end_j);

/// Global alignment under affine gaps, with full traceback.
Alignment needleman_wunsch_affine(const Sequence& s, const Sequence& t,
                                  const AffineScheme& scheme = {});

/// Linear-space best local score and end cell under affine gaps.
BestLocal sw_best_score_affine_linear(const Sequence& s, const Sequence& t,
                                      const AffineScheme& scheme = {});

/// Score of an explicit alignment under affine gaps (each maximal run of
/// Up/Left ops is one gap).
int affine_alignment_score(const Alignment& al, const Sequence& s,
                           const Sequence& t, const AffineScheme& scheme);

}  // namespace gdsm
