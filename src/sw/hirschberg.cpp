#include "sw/hirschberg.h"

#include <algorithm>

#include "sw/full_matrix.h"
#include "sw/linear_score.h"

namespace gdsm {
namespace {

// Appends the global alignment ops of s[s_lo..s_hi) x t[t_lo..t_hi) to out.
void solve(const Sequence& s, const Sequence& t, const ScoreScheme& scheme,
           std::size_t s_lo, std::size_t s_hi, std::size_t t_lo, std::size_t t_hi,
           std::vector<Op>& out) {
  const std::size_t m = s_hi - s_lo;
  const std::size_t n = t_hi - t_lo;
  if (m == 0) {
    out.insert(out.end(), n, Op::Left);
    return;
  }
  if (n == 0) {
    out.insert(out.end(), m, Op::Up);
    return;
  }
  if (m == 1) {
    // Base case: align the single character with full DP (tiny).
    const Alignment al =
        needleman_wunsch(s.slice(s_lo, s_hi), t.slice(t_lo, t_hi), scheme);
    out.insert(out.end(), al.ops.begin(), al.ops.end());
    return;
  }

  const std::size_t mid = s_lo + m / 2;
  // Forward scores: s[s_lo..mid) against prefixes of t[t_lo..t_hi).
  const std::vector<int> fwd =
      nw_last_row(s.slice(s_lo, mid), t.slice(t_lo, t_hi), scheme);
  // Backward scores: reversed s[mid..s_hi) against reversed suffixes.
  const std::vector<int> bwd = nw_last_row(s.slice(mid, s_hi).reversed(),
                                           t.slice(t_lo, t_hi).reversed(), scheme);

  std::size_t split = 0;
  int best = fwd[0] + bwd[n];
  for (std::size_t j = 1; j <= n; ++j) {
    const int v = fwd[j] + bwd[n - j];
    if (v > best) {
      best = v;
      split = j;
    }
  }
  solve(s, t, scheme, s_lo, mid, t_lo, t_lo + split, out);
  solve(s, t, scheme, mid, s_hi, t_lo + split, t_hi, out);
}

}  // namespace

Alignment hirschberg(const Sequence& s, const Sequence& t,
                     const ScoreScheme& scheme) {
  Alignment out;
  out.s_begin = 0;
  out.t_begin = 0;
  solve(s, t, scheme, 0, s.size(), 0, t.size(), out.ops);
  out.score = out.compute_score(s, t, scheme);
  return out;
}

}  // namespace gdsm
