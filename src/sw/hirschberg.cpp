#include "sw/hirschberg.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "simd/dispatch.h"
#include "sw/full_matrix.h"
#include "sw/linear_score.h"

namespace gdsm {
namespace {

// Both last-row passes of a split go straight to the dispatched NW kernel on
// raw subranges, with the reversal staged into reusable buffers — the old
// slice()/reversed() Sequence copies allocated four strings per recursion
// level.  The buffers are safe to share down the recursion because each
// level consumes fwd/bwd fully (split choice) before recursing.
struct SplitScratch {
  std::vector<Base> rev_s, rev_t;
  std::vector<std::int32_t> fwd, bwd;
};

// Appends the global alignment ops of s[s_lo..s_hi) x t[t_lo..t_hi) to out.
void solve(const Sequence& s, const Sequence& t, const ScoreScheme& scheme,
           std::size_t s_lo, std::size_t s_hi, std::size_t t_lo, std::size_t t_hi,
           SplitScratch& scr, std::vector<Op>& out) {
  const std::size_t m = s_hi - s_lo;
  const std::size_t n = t_hi - t_lo;
  if (m == 0) {
    out.insert(out.end(), n, Op::Left);
    return;
  }
  if (n == 0) {
    out.insert(out.end(), m, Op::Up);
    return;
  }
  if (m == 1) {
    // Base case: align the single character with full DP (tiny).
    const Alignment al =
        needleman_wunsch(s.slice(s_lo, s_hi), t.slice(t_lo, t_hi), scheme);
    out.insert(out.end(), al.ops.begin(), al.ops.end());
    return;
  }

  const simd::ScoreParams sp{scheme.match, scheme.mismatch, scheme.gap};
  const std::size_t mid = s_lo + m / 2;
  // Forward scores: s[s_lo..mid) against prefixes of t[t_lo..t_hi).
  scr.fwd.resize(n + 1);
  scr.fwd[0] = static_cast<std::int32_t>(mid - s_lo) * scheme.gap;
  simd::nw_last_row(t.data() + t_lo, n, s.data() + s_lo, mid - s_lo, sp,
                    scr.fwd.data() + 1);
  // Backward scores: reversed s[mid..s_hi) against reversed suffixes.
  scr.rev_s.assign(s.data() + mid, s.data() + s_hi);
  std::reverse(scr.rev_s.begin(), scr.rev_s.end());
  scr.rev_t.assign(t.data() + t_lo, t.data() + t_hi);
  std::reverse(scr.rev_t.begin(), scr.rev_t.end());
  scr.bwd.resize(n + 1);
  scr.bwd[0] = static_cast<std::int32_t>(s_hi - mid) * scheme.gap;
  simd::nw_last_row(scr.rev_t.data(), n, scr.rev_s.data(), s_hi - mid, sp,
                    scr.bwd.data() + 1);

  std::size_t split = 0;
  std::int32_t best = scr.fwd[0] + scr.bwd[n];
  for (std::size_t j = 1; j <= n; ++j) {
    const std::int32_t v = scr.fwd[j] + scr.bwd[n - j];
    if (v > best) {
      best = v;
      split = j;
    }
  }
  solve(s, t, scheme, s_lo, mid, t_lo, t_lo + split, scr, out);
  solve(s, t, scheme, mid, s_hi, t_lo + split, t_hi, scr, out);
}

}  // namespace

Alignment hirschberg(const Sequence& s, const Sequence& t,
                     const ScoreScheme& scheme) {
  Alignment out;
  out.s_begin = 0;
  out.t_begin = 0;
  SplitScratch scr;
  solve(s, t, scheme, 0, s.size(), 0, t.size(), scr, out.ops);
  out.score = out.compute_score(s, t, scheme);
  return out;
}

}  // namespace gdsm
