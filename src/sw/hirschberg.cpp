#include "sw/hirschberg.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "simd/dispatch.h"
#include "sw/full_matrix.h"
#include "sw/linear_score.h"

namespace gdsm {
namespace {

// Both last-row passes of a split go straight to the dispatched NW kernel on
// raw subranges, with the reversal staged into reusable buffers — the old
// slice()/reversed() Sequence copies allocated four strings per recursion
// level.  The buffers are safe to share down the recursion because each
// level consumes fwd/bwd fully (split choice) before recursing.
struct SplitScratch {
  std::vector<Base> rev_s, rev_t;
  std::vector<std::int32_t> fwd, bwd;
  std::vector<std::int32_t> fwd_e, bwd_e;  // affine E-state last rows
};

// Appends the global alignment ops of s[s_lo..s_hi) x t[t_lo..t_hi) to out.
void solve(const Sequence& s, const Sequence& t, const ScoreScheme& scheme,
           std::size_t s_lo, std::size_t s_hi, std::size_t t_lo, std::size_t t_hi,
           SplitScratch& scr, std::vector<Op>& out) {
  const std::size_t m = s_hi - s_lo;
  const std::size_t n = t_hi - t_lo;
  if (m == 0) {
    out.insert(out.end(), n, Op::Left);
    return;
  }
  if (n == 0) {
    out.insert(out.end(), m, Op::Up);
    return;
  }
  if (m == 1) {
    // Base case: align the single character with full DP (tiny).
    const Alignment al =
        needleman_wunsch(s.slice(s_lo, s_hi), t.slice(t_lo, t_hi), scheme);
    out.insert(out.end(), al.ops.begin(), al.ops.end());
    return;
  }

  const simd::ScoreParams sp{scheme.match, scheme.mismatch, scheme.gap};
  const std::size_t mid = s_lo + m / 2;
  // Forward scores: s[s_lo..mid) against prefixes of t[t_lo..t_hi).
  scr.fwd.resize(n + 1);
  scr.fwd[0] = static_cast<std::int32_t>(mid - s_lo) * scheme.gap;
  simd::nw_last_row(t.data() + t_lo, n, s.data() + s_lo, mid - s_lo, sp,
                    scr.fwd.data() + 1);
  // Backward scores: reversed s[mid..s_hi) against reversed suffixes.
  scr.rev_s.assign(s.data() + mid, s.data() + s_hi);
  std::reverse(scr.rev_s.begin(), scr.rev_s.end());
  scr.rev_t.assign(t.data() + t_lo, t.data() + t_hi);
  std::reverse(scr.rev_t.begin(), scr.rev_t.end());
  scr.bwd.resize(n + 1);
  scr.bwd[0] = static_cast<std::int32_t>(s_hi - mid) * scheme.gap;
  simd::nw_last_row(scr.rev_t.data(), n, scr.rev_s.data(), s_hi - mid, sp,
                    scr.bwd.data() + 1);

  std::size_t split = 0;
  std::int32_t best = scr.fwd[0] + scr.bwd[n];
  for (std::size_t j = 1; j <= n; ++j) {
    const std::int32_t v = scr.fwd[j] + scr.bwd[n - j];
    if (v > best) {
      best = v;
      split = j;
    }
  }
  solve(s, t, scheme, s_lo, mid, t_lo, t_lo + split, scr, out);
  solve(s, t, scheme, mid, s_hi, t_lo + split, t_hi, scr, out);
}

// Myers–Miller affine divide-and-conquer.  tb / te are the gap-open costs
// charged to a vertical (Up) run touching the top / bottom edge of this
// subproblem: gap_open normally, 0 when an ancestor split cut through a
// vertical run there and its open is already paid.  Horizontal (Left) runs
// need no such bookkeeping — a run lying on the midpoint row always admits a
// clean type-1 split at its first column, so the plain H-join already prices
// it correctly at some j.
void solve_affine(const Sequence& s, const Sequence& t, const AffineScheme& sc,
                  std::size_t s_lo, std::size_t s_hi, std::size_t t_lo,
                  std::size_t t_hi, std::int32_t tb, std::int32_t te,
                  SplitScratch& scr, std::vector<Op>& out) {
  const std::size_t m = s_hi - s_lo;
  const std::size_t n = t_hi - t_lo;
  if (m == 0) {
    out.insert(out.end(), n, Op::Left);
    return;
  }
  if (n == 0) {
    out.insert(out.end(), m, Op::Up);
    return;
  }
  const std::int32_t open = sc.gap_open;
  const std::int32_t ext = sc.gap_extend;
  if (m == 1) {
    // One s character: either delete it (one Up run, merged towards the
    // better-discounted edge) around an insertion of all of t, or match it
    // against some t[j] between two Left runs (which earn no discount).
    const auto gap_l = [&](std::size_t k) {
      return k ? open + static_cast<std::int32_t>(k) * ext : 0;
    };
    std::int32_t best = std::max(tb, te) + ext + gap_l(n);
    std::ptrdiff_t match_j = -1;
    for (std::size_t j = 0; j < n; ++j) {
      const std::int32_t v = gap_l(j) + sc.substitution(s[s_lo], t[t_lo + j]) +
                             gap_l(n - 1 - j);
      if (v > best) {
        best = v;
        match_j = static_cast<std::ptrdiff_t>(j);
      }
    }
    if (match_j < 0) {
      if (tb >= te) out.push_back(Op::Up);
      out.insert(out.end(), n, Op::Left);
      if (tb < te) out.push_back(Op::Up);
    } else {
      const std::size_t j = static_cast<std::size_t>(match_j);
      out.insert(out.end(), j, Op::Left);
      out.push_back(Op::Diag);
      out.insert(out.end(), n - 1 - j, Op::Left);
    }
    return;
  }

  const simd::ScoreParams sp{sc.match, sc.mismatch, sc.gap_extend,
                             sc.gap_open};
  const std::size_t i = m / 2;  // forward half s[s_lo .. s_lo+i), i >= 1
  scr.fwd.resize(n + 1);
  scr.fwd_e.resize(n + 1);
  scr.fwd[0] = tb + static_cast<std::int32_t>(i) * ext;
  scr.fwd_e[0] = scr.fwd[0];  // all-Up prefix, run still open
  simd::nw_last_row_affine(t.data() + t_lo, n, s.data() + s_lo, i, sp, tb,
                           scr.fwd.data() + 1, scr.fwd_e.data() + 1);
  scr.rev_s.assign(s.data() + s_lo + i, s.data() + s_hi);
  std::reverse(scr.rev_s.begin(), scr.rev_s.end());
  scr.rev_t.assign(t.data() + t_lo, t.data() + t_hi);
  std::reverse(scr.rev_t.begin(), scr.rev_t.end());
  scr.bwd.resize(n + 1);
  scr.bwd_e.resize(n + 1);
  scr.bwd[0] = te + static_cast<std::int32_t>(m - i) * ext;
  scr.bwd_e[0] = scr.bwd[0];
  simd::nw_last_row_affine(scr.rev_t.data(), n, scr.rev_s.data(), m - i, sp,
                           te, scr.bwd.data() + 1, scr.bwd_e.data() + 1);

  // Type-1 joins pass through a node on the midpoint row; type-2 joins pass
  // through a vertical run crossing it — both halves charged that run an
  // open, so one is refunded, and the two Ups bracketing the midpoint are
  // emitted here with zero-discount boundaries handed down.
  std::size_t split = 0;
  bool through_gap = false;
  std::int32_t best = scr.fwd[0] + scr.bwd[n];
  for (std::size_t j = 0; j <= n; ++j) {
    const std::int32_t v1 = scr.fwd[j] + scr.bwd[n - j];
    if (v1 > best) {
      best = v1;
      split = j;
      through_gap = false;
    }
    const std::int32_t v2 = scr.fwd_e[j] + scr.bwd_e[n - j] - open;
    if (v2 > best) {
      best = v2;
      split = j;
      through_gap = true;
    }
  }
  if (through_gap) {
    solve_affine(s, t, sc, s_lo, s_lo + i - 1, t_lo, t_lo + split, tb, 0, scr,
                 out);
    out.push_back(Op::Up);
    out.push_back(Op::Up);
    solve_affine(s, t, sc, s_lo + i + 1, s_hi, t_lo + split, t_hi, 0, te, scr,
                 out);
  } else {
    solve_affine(s, t, sc, s_lo, s_lo + i, t_lo, t_lo + split, tb, open, scr,
                 out);
    solve_affine(s, t, sc, s_lo + i, s_hi, t_lo + split, t_hi, open, te, scr,
                 out);
  }
}

}  // namespace

Alignment hirschberg(const Sequence& s, const Sequence& t,
                     const ScoreScheme& scheme) {
  if (scheme.affine()) return hirschberg_affine(s, t, to_affine(scheme));
  Alignment out;
  out.s_begin = 0;
  out.t_begin = 0;
  SplitScratch scr;
  solve(s, t, scheme, 0, s.size(), 0, t.size(), scr, out.ops);
  out.score = out.compute_score(s, t, scheme);
  return out;
}

Alignment hirschberg_affine(const Sequence& s, const Sequence& t,
                            const AffineScheme& scheme) {
  Alignment out;
  out.s_begin = 0;
  out.t_begin = 0;
  SplitScratch scr;
  solve_affine(s, t, scheme, 0, s.size(), 0, t.size(), scheme.gap_open,
               scheme.gap_open, scr, out.ops);
  out.score = affine_alignment_score(out, s, t, scheme);
  return out;
}

}  // namespace gdsm
