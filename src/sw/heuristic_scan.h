// The heuristic linear-space Smith–Waterman variant of Section 4.1
// (Martins et al.'s candidate-alignment tracking).
//
// Instead of retaining the O(n^2) similarity array, every DP cell carries a
// small record (current/max/min score, candidate coordinates, gap and
// match/mismatch counters, an "open candidate" flag).  Candidate alignments
// are *opened* when the score rises `open_threshold` above the running
// minimum and *closed* (pushed to the queue) when it falls `close_drop`
// below the running maximum.  When several predecessors tie for the cell
// score, the origin whose counters maximize 2*matches + 2*mismatches + gaps
// wins; remaining ties prefer the horizontal, then vertical, then diagonal
// arrow (keeping gap runs together, per the paper).
//
// The row-segment kernel below is shared verbatim by the serial scan and by
// the two parallel heuristic strategies: a parallel worker owns a column
// range and feeds the kernel the border cells received from its left
// neighbour, which is exactly the information the paper passes between
// processors.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "sw/alignment.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm {

/// Tunable thresholds of the Section 4.1 heuristics.
struct HeuristicParams {
  int open_threshold = 6;   ///< rise above the running minimum that opens a candidate
  int close_drop = 4;       ///< fall below the running maximum that closes it
  int min_report_score = 10;///< candidates below this score are discarded
};

/// "minus infinity" for the affine gap-state fields of CellInfo: boundary
/// cells carry it so no gap run continues across the matrix edge.  Deep
/// enough to never win, shallow enough that one extension cannot underflow.
inline constexpr std::int32_t kCellNegInf = INT32_MIN / 4;

/// Per-cell record of the heuristic scan.  This is the value transmitted
/// between processors at partition borders, so it is kept trivially
/// copyable and fixed-size.
///
/// The affine gap model (scheme.gap_open != 0) adds the two Gotoh gap-state
/// values `e` (gap run consuming t-characters, fed from the left) and `f`
/// (gap run consuming s-characters, fed from above).  Under the linear model
/// both stay at kCellNegInf everywhere, so linear scans are bit-identical to
/// the historical record.
struct CellInfo {
  std::int32_t score = 0;      ///< sim(s[1..i], t[1..j])
  std::int32_t max_score = 0;  ///< running maximum along the inherited path
  std::int32_t min_score = 0;  ///< running minimum along the inherited path
  std::int32_t e = kCellNegInf;///< Gotoh E state (horizontal run), affine only
  std::int32_t f = kCellNegInf;///< Gotoh F state (vertical run), affine only
  std::uint32_t begin_i = 0;   ///< candidate start row (1-based), valid when open
  std::uint32_t begin_j = 0;   ///< candidate start column (1-based)
  std::uint32_t max_i = 0;     ///< cell where max_score was reached
  std::uint32_t max_j = 0;
  std::uint32_t gaps = 0;      ///< gap counter (never reset; see paper)
  std::uint32_t matches = 0;   ///< match counter
  std::uint32_t mismatches = 0;///< mismatch counter
  std::uint8_t flag = 0;       ///< 1 while a candidate alignment is open

  /// Tie-break weight: gaps are penalized relative to aligned columns.
  std::int64_t tie_weight() const noexcept {
    return 2 * std::int64_t(matches) + 2 * std::int64_t(mismatches) + gaps;
  }

  friend bool operator==(const CellInfo&, const CellInfo&) = default;
};

static_assert(std::is_trivially_copyable_v<CellInfo>,
              "CellInfo crosses DSM borders as raw bytes");

/// Streaming sink for closed candidates.
class CandidateSink {
 public:
  explicit CandidateSink(const HeuristicParams& params) : params_(params) {}

  /// Closes the candidate recorded in `cell` if it clears the report bar.
  void close(const CellInfo& cell) {
    if (cell.max_score >= params_.min_report_score) {
      queue_.push_back(Candidate{cell.max_score, cell.begin_i, cell.max_i,
                                 cell.begin_j, cell.max_j});
    }
  }

  /// Flushes a still-open candidate at the end of the scan.
  void flush_open(const CellInfo& cell) {
    if (cell.flag) close(cell);
  }

  std::vector<Candidate>& queue() { return queue_; }
  const std::vector<Candidate>& queue() const { return queue_; }

 private:
  HeuristicParams params_;
  std::vector<Candidate> queue_;
};

/// The row-segment kernel.  Stateless apart from its parameters, so one
/// instance can be shared by all workers.
class HeuristicKernel {
 public:
  HeuristicKernel(const ScoreScheme& scheme, const HeuristicParams& params)
      : scheme_(scheme), params_(params) {}

  const HeuristicParams& params() const noexcept { return params_; }
  const ScoreScheme& scheme() const noexcept { return scheme_; }

  /// Computes cells (row, col_begin .. col_begin+len-1), 1-based matrix
  /// coordinates, of the similarity array.
  ///
  ///  - `prev` holds the previous row over the same columns;
  ///  - `diag_left` is cell (row-1, col_begin-1);
  ///  - `left` is cell (row, col_begin-1) — at a partition border these two
  ///    are the values received from the left neighbour;
  ///  - `out` receives the new row segment (may alias `prev` only if the
  ///    caller copies, so it must NOT alias here);
  ///  - closed candidates stream into `sink`.
  void process_row_segment(Base s_char, std::uint32_t row,
                           std::span<const Base> t_cols, std::uint32_t col_begin,
                           std::span<const CellInfo> prev, const CellInfo& diag_left,
                           const CellInfo& left, std::span<CellInfo> out,
                           CandidateSink& sink) const;

  /// Single-cell update, exposed for exhaustive unit testing.
  CellInfo update_cell(Base s_char, Base t_char, std::uint32_t row,
                       std::uint32_t col, const CellInfo& diag, const CellInfo& up,
                       const CellInfo& left, CandidateSink& sink) const;

 private:
  ScoreScheme scheme_;
  HeuristicParams params_;
};

/// Serial phase-1 driver: scans the whole matrix with two rows of CellInfo
/// and returns the finalized candidate queue (sorted by subsequence size,
/// repeats removed).  This is the reference the parallel strategies must
/// reproduce exactly.
std::vector<Candidate> heuristic_scan(const Sequence& s, const Sequence& t,
                                      const ScoreScheme& scheme = {},
                                      const HeuristicParams& params = {});

}  // namespace gdsm
