// Protein alignment: 20-letter amino-acid alphabet, substitution matrices
// (BLOSUM62 built in), and Gotoh affine-gap local/global alignment.
//
// The paper is DNA-only, but the SW/NW/Gotoh machinery is residue-agnostic;
// this module provides the protein surface a production alignment library
// is expected to have.  Alignments reuse the same Op/Alignment types, so
// rendering, CIGAR and coordinate handling carry over.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sw/alignment.h"

namespace gdsm {

/// Amino-acid code: the 20 standard residues in "ARNDCQEGHILKMFPSTWYV"
/// order (the BLOSUM row order), plus kAaX for anything else.
using AminoAcid = std::uint8_t;
inline constexpr AminoAcid kAaX = 20;
inline constexpr int kProteinAlphabetSize = 21;

AminoAcid encode_amino_acid(char c) noexcept;
char decode_amino_acid(AminoAcid a) noexcept;

/// A protein sequence (name + residue codes).
class ProteinSequence {
 public:
  ProteinSequence() = default;
  ProteinSequence(std::string name, std::string_view text);

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return codes_.size(); }
  AminoAcid operator[](std::size_t i) const noexcept { return codes_[i]; }
  std::string text() const;

  ProteinSequence slice(std::size_t begin, std::size_t end) const;

 private:
  std::string name_;
  std::vector<AminoAcid> codes_;
};

/// Symmetric residue substitution matrix.
class SubstitutionMatrix {
 public:
  /// The BLOSUM62 matrix (Henikoff & Henikoff 1992), X scored as the
  /// standard -1 against everything.
  static const SubstitutionMatrix& blosum62();

  int score(AminoAcid a, AminoAcid b) const noexcept {
    return cells_[a][b];
  }

  explicit SubstitutionMatrix(
      const std::array<std::array<std::int8_t, kProteinAlphabetSize>,
                       kProteinAlphabetSize>& cells)
      : cells_(cells) {}

 private:
  std::array<std::array<std::int8_t, kProteinAlphabetSize>,
             kProteinAlphabetSize>
      cells_;
};

/// Affine-gap protein alignment parameters (BLAST defaults: 11/1).
struct ProteinGaps {
  int open = -11;
  int extend = -1;
};

/// Best local alignment (Gotoh) with traceback.
Alignment protein_smith_waterman(const ProteinSequence& s,
                                 const ProteinSequence& t,
                                 const SubstitutionMatrix& matrix =
                                     SubstitutionMatrix::blosum62(),
                                 const ProteinGaps& gaps = {});

/// Global alignment (Gotoh) with traceback.
Alignment protein_needleman_wunsch(const ProteinSequence& s,
                                   const ProteinSequence& t,
                                   const SubstitutionMatrix& matrix =
                                       SubstitutionMatrix::blosum62(),
                                   const ProteinGaps& gaps = {});

/// Score of an explicit alignment under (matrix, gaps); used by tests.
int protein_alignment_score(const Alignment& al, const ProteinSequence& s,
                            const ProteinSequence& t,
                            const SubstitutionMatrix& matrix,
                            const ProteinGaps& gaps);

/// Three-line rendering analogous to Alignment::render (with '+' marking
/// positive-scoring substitutions, the classic BLAST midline).
std::array<std::string, 3> render_protein_alignment(
    const Alignment& al, const ProteinSequence& s, const ProteinSequence& t,
    const SubstitutionMatrix& matrix = SubstitutionMatrix::blosum62());

}  // namespace gdsm
