#include "sw/heuristic_scan.h"

#include <algorithm>
#include <cassert>

namespace gdsm {

CellInfo HeuristicKernel::update_cell(Base s_char, Base t_char, std::uint32_t row,
                                      std::uint32_t col, const CellInfo& diag,
                                      const CellInfo& up, const CellInfo& left,
                                      CandidateSink& sink) const {
  const int sub = scheme_.substitution(s_char, t_char);
  const bool affine = scheme_.affine();
  const int from_diag = diag.score + sub;
  // Under the affine model the Up/Left arrivals are the Gotoh gap states:
  // open a fresh run from the neighbour's score or extend its running one.
  // Linear is the open == 0 degenerate (H >= E/F makes the fresh branch win
  // or tie, so the values — and therefore the tie-breaks — are unchanged).
  const int from_up =
      affine ? std::max(up.score + scheme_.gap_open + scheme_.gap,
                        up.f + scheme_.gap)
             : up.score + scheme_.gap;
  const int from_left =
      affine ? std::max(left.score + scheme_.gap_open + scheme_.gap,
                        left.e + scheme_.gap)
             : left.score + scheme_.gap;
  const int best = std::max({0, from_diag, from_up, from_left});

  if (best == 0) {
    // Eq. (1) floor: no alignment ends here; the cell restarts empty.  The
    // gap states restart too (E, F <= H = 0 here, so nothing positive is
    // ever discarded).
    return CellInfo{};
  }

  // Select the origin entry.  Among predecessors achieving `best`, the one
  // with the largest 2*matches + 2*mismatches + gaps weight wins; remaining
  // ties prefer horizontal, then vertical, then diagonal (Section 4.1).
  enum { kLeft, kUp, kDiag };
  int origin = -1;
  std::int64_t origin_weight = -1;
  auto consider = [&](int which, int value, const CellInfo& cell) {
    if (value != best) return;
    const std::int64_t w = cell.tie_weight();
    if (w > origin_weight) {
      origin = which;
      origin_weight = w;
    }
  };
  consider(kLeft, from_left, left);
  consider(kUp, from_up, up);
  consider(kDiag, from_diag, diag);
  assert(origin >= 0);

  CellInfo cur = origin == kLeft ? left : origin == kUp ? up : diag;
  cur.score = best;
  if (affine) {
    cur.e = from_left;  // this cell's Gotoh gap states, read by (i, j+1)
    cur.f = from_up;    // and (i+1, j) regardless of the origin chosen
  } else {
    cur.e = kCellNegInf;
    cur.f = kCellNegInf;
  }
  if (origin == kDiag) {
    if (sub > 0) {
      ++cur.matches;
    } else {
      ++cur.mismatches;
    }
  } else {
    ++cur.gaps;
  }

  // Running extrema of the inherited path.
  if (cur.score > cur.max_score) {
    cur.max_score = cur.score;
    cur.max_i = row;
    cur.max_j = col;
  }
  if (cur.score < cur.min_score) {
    cur.min_score = cur.score;
    if (!cur.flag) {
      // While no candidate is open we are watching for a RISE of
      // open_threshold; a new minimum restarts that window, otherwise a
      // stale maximum could open a candidate on a *decline* and yield
      // end coordinates that precede the start.
      cur.max_score = cur.score;
      cur.max_i = row;
      cur.max_j = col;
    }
  }

  // Close: score dropped close_drop below the running maximum.
  if (cur.flag && cur.score <= cur.max_score - params_.close_drop) {
    sink.close(cur);
    cur.flag = 0;
    // Restart the extremum window so the same path can later reopen; the
    // gap/match/mismatch counters are intentionally NOT reset (Section 4.1).
    cur.max_score = cur.min_score = cur.score;
    cur.max_i = row;
    cur.max_j = col;
  }

  // Open: score rose open_threshold above the running minimum.
  if (!cur.flag && cur.max_score >= cur.min_score + params_.open_threshold) {
    cur.flag = 1;
    cur.begin_i = row;
    cur.begin_j = col;
  }
  return cur;
}

void HeuristicKernel::process_row_segment(Base s_char, std::uint32_t row,
                                          std::span<const Base> t_cols,
                                          std::uint32_t col_begin,
                                          std::span<const CellInfo> prev,
                                          const CellInfo& diag_left,
                                          const CellInfo& left,
                                          std::span<CellInfo> out,
                                          CandidateSink& sink) const {
  assert(t_cols.size() == prev.size());
  assert(t_cols.size() == out.size());
  assert(out.data() != prev.data());
  const CellInfo* diag = &diag_left;
  const CellInfo* west = &left;
  for (std::size_t k = 0; k < t_cols.size(); ++k) {
    out[k] = update_cell(s_char, t_cols[k], row,
                         col_begin + static_cast<std::uint32_t>(k), *diag,
                         prev[k], *west, sink);
    diag = &prev[k];
    west = &out[k];
  }
}

std::vector<Candidate> heuristic_scan(const Sequence& s, const Sequence& t,
                                      const ScoreScheme& scheme,
                                      const HeuristicParams& params) {
  const HeuristicKernel kernel(scheme, params);
  CandidateSink sink(params);
  const std::size_t m = s.size();
  const std::size_t n = t.size();

  // Two linear arrays, exactly as in Section 4.1.
  std::vector<CellInfo> reading(n);
  std::vector<CellInfo> writing(n);
  const CellInfo zero{};

  for (std::size_t i = 1; i <= m; ++i) {
    kernel.process_row_segment(s[i - 1], static_cast<std::uint32_t>(i),
                               t.bases(), /*col_begin=*/1, reading, zero, zero,
                               writing, sink);
    std::swap(reading, writing);
  }
  // Candidates still open at the bottom of the matrix.
  for (const CellInfo& cell : reading) sink.flush_open(cell);

  std::vector<Candidate> queue = std::move(sink.queue());
  finalize_candidates(queue);
  return queue;
}

}  // namespace gdsm
