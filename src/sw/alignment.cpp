#include "sw/alignment.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace gdsm {

std::size_t Alignment::s_length() const noexcept {
  std::size_t n = 0;
  for (Op op : ops) n += (op != Op::Left);
  return n;
}

std::size_t Alignment::t_length() const noexcept {
  std::size_t n = 0;
  for (Op op : ops) n += (op != Op::Up);
  return n;
}

int Alignment::compute_score(const Sequence& s, const Sequence& t,
                             const ScoreScheme& scheme) const {
  int total = 0;
  std::size_t i = s_begin;
  std::size_t j = t_begin;
  for (Op op : ops) {
    switch (op) {
      case Op::Diag:
        total += scheme.substitution(s[i], t[j]);
        ++i;
        ++j;
        break;
      case Op::Up:
        total += scheme.gap;
        ++i;
        break;
      case Op::Left:
        total += scheme.gap;
        ++j;
        break;
    }
  }
  return total;
}

std::array<std::string, 3> Alignment::render(const Sequence& s,
                                             const Sequence& t) const {
  std::array<std::string, 3> lines;
  std::size_t i = s_begin;
  std::size_t j = t_begin;
  for (Op op : ops) {
    switch (op) {
      case Op::Diag:
        lines[0].push_back(decode_base(s[i]));
        lines[1].push_back(s[i] == t[j] && s[i] != kBaseN ? '|' : ' ');
        lines[2].push_back(decode_base(t[j]));
        ++i;
        ++j;
        break;
      case Op::Up:
        lines[0].push_back(decode_base(s[i]));
        lines[1].push_back(' ');
        lines[2].push_back('_');
        ++i;
        break;
      case Op::Left:
        lines[0].push_back('_');
        lines[1].push_back(' ');
        lines[2].push_back(decode_base(t[j]));
        ++j;
        break;
    }
  }
  return lines;
}

std::string Alignment::to_record(const Sequence& s, const Sequence& t) const {
  std::ostringstream out;
  out << "initial_x: " << s_begin + 1 << " final_x: " << s_end() << "\n"
      << "initial_y: " << t_begin + 1 << " final_y: " << t_end() << "\n"
      << "similarity: " << score << "\n";
  const auto lines = render(s, t);
  out << "align_s: " << lines[0] << "\n"
      << "align_t: " << lines[2] << "\n";
  return out.str();
}

std::string Alignment::cigar() const {
  std::string out;
  std::size_t run = 0;
  char code = 0;
  auto flush = [&] {
    if (run > 0) {
      out += std::to_string(run);
      out.push_back(code);
    }
  };
  for (Op op : ops) {
    const char c = op == Op::Diag ? 'M' : op == Op::Up ? 'I' : 'D';
    if (c != code) {
      flush();
      code = c;
      run = 0;
    }
    ++run;
  }
  flush();
  return out;
}

std::vector<Op> parse_cigar(const std::string& text) {
  std::vector<Op> ops;
  std::size_t i = 0;
  while (i < text.size()) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      throw std::invalid_argument("parse_cigar: expected a length at " +
                                  std::to_string(i));
    }
    std::size_t run = 0;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
      run = run * 10 + static_cast<std::size_t>(text[i] - '0');
      ++i;
    }
    if (i >= text.size() || run == 0) {
      throw std::invalid_argument("parse_cigar: truncated or zero-length run");
    }
    Op op;
    switch (text[i]) {
      case 'M':
      case '=':
      case 'X':
        op = Op::Diag;
        break;
      case 'I':
        op = Op::Up;
        break;
      case 'D':
        op = Op::Left;
        break;
      default:
        throw std::invalid_argument(std::string("parse_cigar: bad op '") +
                                    text[i] + "'");
    }
    ops.insert(ops.end(), run, op);
    ++i;
  }
  return ops;
}

void finalize_candidates(std::vector<Candidate>& queue) {
  std::sort(queue.begin(), queue.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.size_key() != b.size_key()) return a.size_key() > b.size_key();
              if (a.s_begin != b.s_begin) return a.s_begin < b.s_begin;
              if (a.t_begin != b.t_begin) return a.t_begin < b.t_begin;
              if (a.s_end != b.s_end) return a.s_end < b.s_end;
              if (a.t_end != b.t_end) return a.t_end < b.t_end;
              return a.score > b.score;
            });
  queue.erase(std::unique(queue.begin(), queue.end()), queue.end());
}

std::vector<Candidate> cull_overlapping_candidates(std::vector<Candidate> queue,
                                                   std::size_t max_count) {
  std::sort(queue.begin(), queue.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.size_key() != b.size_key()) return a.size_key() > b.size_key();
              if (a.s_begin != b.s_begin) return a.s_begin < b.s_begin;
              return a.t_begin < b.t_begin;
            });
  std::vector<Candidate> kept;
  for (const Candidate& c : queue) {
    if (kept.size() >= max_count) break;
    const bool overlaps = std::any_of(
        kept.begin(), kept.end(), [&](const Candidate& prev) {
          const bool s_disjoint =
              c.s_end < prev.s_begin || prev.s_end < c.s_begin;
          const bool t_disjoint =
              c.t_end < prev.t_begin || prev.t_end < c.t_begin;
          return !(s_disjoint || t_disjoint);
        });
    if (!overlaps) kept.push_back(c);
  }
  return kept;
}

}  // namespace gdsm
