#include "sw/reverse_rebuild.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sw/full_matrix.h"
#include "sw/hirschberg.h"
#include "sw/linear_score.h"

namespace gdsm {
namespace {

constexpr int kNoPath = std::numeric_limits<int>::min() / 2;

// A row of the pruned reverse DP: scores over the window [lo, hi] (1-based
// reverse columns); cells outside the window are pruned (Theorem 6.2 — their
// paths would pass through an intermediate zero).
struct PrunedRow {
  std::size_t lo = 1;
  std::vector<int> scores;  // scores[c - lo], kNoPath when not useful

  int at(std::size_t c) const {
    if (c < lo || c >= lo + scores.size()) return kNoPath;
    return scores[c - lo];
  }
  bool useful(std::size_t c) const { return at(c) > 0; }
  std::size_t hi() const { return lo + scores.size() - 1; }
  bool empty() const { return scores.empty(); }
};

}  // namespace

StartCoords find_alignment_start(const Sequence& s, const Sequence& t,
                                 const ScoreScheme& scheme, std::size_t end_i,
                                 std::size_t end_j, int score) {
  if (score <= 0 || end_i == 0 || end_j == 0 || end_i > s.size() ||
      end_j > t.size()) {
    throw std::logic_error("find_alignment_start: invalid end cell or score");
  }
  // Reversed prefixes, addressed without materializing them:
  // sr[r] = s[end_i - r], tr[c] = t[end_j - c] (1-based r, c).
  auto sr = [&](std::size_t r) { return s[end_i - r]; };
  auto tr = [&](std::size_t c) { return t[end_j - c]; };

  StartCoords out;
  PrunedRow prev;  // starts empty: row 0 has no useful cells (the (0,0)
                   // anchor is handled specially for cell (1,1))

  std::size_t max_hi = 0;
  for (std::size_t r = 1; r <= end_i; ++r) {
    PrunedRow cur;
    cur.lo = prev.empty() ? 1 : prev.lo;
    if (r == 1) cur.lo = 1;

    std::size_t c = cur.lo;
    const std::size_t soft_hi = prev.empty() ? 1 : prev.hi() + 1;
    bool last_useful = false;
    while (c <= end_j && (c <= soft_hi || last_useful)) {
      int from_diag = kNoPath;
      if (r == 1 && c == 1) {
        from_diag = scheme.substitution(sr(1), tr(1));  // anchored at (0,0)
      } else if (prev.useful(c - 1)) {
        from_diag = prev.at(c - 1) + scheme.substitution(sr(r), tr(c));
      }
      const int from_up = prev.useful(c) ? prev.at(c) + scheme.gap : kNoPath;
      const int from_left =
          (c > cur.lo && cur.useful(c - 1)) ? cur.at(c - 1) + scheme.gap : kNoPath;

      const int best = std::max({from_diag, from_up, from_left});
      ++out.stats.computed_cells;
      const int value = best > 0 ? best : 0;
      cur.scores.push_back(value > 0 ? value : kNoPath);
      last_useful = value > 0;

      if (value >= score) {
        out.stats.rows_used = r;
        max_hi = std::max(max_hi, c);
        out.stats.rect_area = r * max_hi;
        out.i = end_i - r + 1;
        out.j = end_j - c + 1;
        return out;
      }
      ++c;
    }
    // Trim non-useful cells from both ends of the window.
    while (!cur.scores.empty() && cur.scores.front() == kNoPath) {
      cur.scores.erase(cur.scores.begin());
      ++cur.lo;
    }
    while (!cur.scores.empty() && cur.scores.back() == kNoPath) {
      cur.scores.pop_back();
    }
    if (cur.scores.empty()) {
      throw std::logic_error(
          "find_alignment_start: useful region died before reaching the score");
    }
    max_hi = std::max(max_hi, cur.hi());
    out.stats.rows_used = r;
    prev = std::move(cur);
  }
  throw std::logic_error("find_alignment_start: score never reached");
}

std::vector<RebuildResult> rebuild_top_alignments(const Sequence& s,
                                                  const Sequence& t,
                                                  int min_score,
                                                  std::size_t max_count,
                                                  const ScoreScheme& scheme,
                                                  bool use_hirschberg) {
  if (min_score <= 0) {
    throw std::invalid_argument("rebuild_top_alignments: min_score must be > 0");
  }
  struct Hit {
    int score;
    std::size_t i, j;
  };
  std::vector<Hit> hits;
  sw_scan_hits(s, t, scheme, min_score,
               [&](std::size_t i, std::size_t j, int score) {
                 hits.push_back(Hit{score, i, j});
               });
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });

  std::vector<RebuildResult> out;
  for (const Hit& h : hits) {
    if (out.size() >= max_count) break;
    // Skip cells belonging to an already-rebuilt alignment or its decay
    // trail (scores fade down/right of the true region).
    const bool covered = std::any_of(
        out.begin(), out.end(), [&](const RebuildResult& r) {
          const Alignment& al = r.alignment;
          const std::size_t trail_s = 2 * al.s_length();
          const std::size_t trail_t = 2 * al.t_length();
          return h.i + 1 > al.s_begin && h.i <= al.s_end() + trail_s &&
                 h.j + 1 > al.t_begin && h.j <= al.t_end() + trail_t;
        });
    if (covered) continue;

    Alignment al;
    RebuildStats stats;
    try {
      const StartCoords start =
          find_alignment_start(s, t, scheme, h.i, h.j, h.score);
      const Sequence sub_s = s.slice(start.i - 1, h.i);
      const Sequence sub_t = t.slice(start.j - 1, h.j);
      al = use_hirschberg ? hirschberg(sub_s, sub_t, scheme)
                          : needleman_wunsch(sub_s, sub_t, scheme);
      al.s_begin = start.i - 1;
      al.t_begin = start.j - 1;
      stats = start.stats;
    } catch (const std::logic_error&) {
      // Theorem 6.2's pruning is exact for the GLOBAL maximum, but a
      // non-peak cell's alignment may have a non-positive reverse prefix
      // (e.g. its last column is a gap, or an equal-score crest occurred
      // earlier on its path), which the pruned pass rightfully cuts.
      // Fall back to a windowed full-matrix traceback ending at the cell.
      const std::size_t window =
          std::min<std::size_t>(8 * static_cast<std::size_t>(h.score) + 64,
                                std::max(h.i, h.j));
      const std::size_t s_lo = h.i > window ? h.i - window : 0;
      const std::size_t t_lo = h.j > window ? h.j - window : 0;
      const Sequence sub_s = s.slice(s_lo, h.i);
      const Sequence sub_t = t.slice(t_lo, h.j);
      const DpMatrix grid = sw_fill(sub_s, sub_t, scheme, nullptr);
      al = sw_traceback(grid, sub_s, sub_t, scheme, sub_s.size(), sub_t.size());
      al.s_begin += s_lo;
      al.t_begin += t_lo;
      stats.computed_cells = (sub_s.size() + 1) * (sub_t.size() + 1);
      stats.rect_area = stats.computed_cells;
      stats.rows_used = sub_s.size();
    }
    // Overlap cull against kept alignments (a weaker alignment sharing a
    // region with a stronger one is a shadow, not a distinct discovery).
    const bool overlaps = std::any_of(
        out.begin(), out.end(), [&](const RebuildResult& r) {
          const Alignment& prev = r.alignment;
          const bool s_disjoint =
              al.s_end() <= prev.s_begin || prev.s_end() <= al.s_begin;
          const bool t_disjoint =
              al.t_end() <= prev.t_begin || prev.t_end() <= al.t_begin;
          return !(s_disjoint || t_disjoint);
        });
    if (overlaps) continue;
    out.push_back(RebuildResult{std::move(al), stats});
  }
  return out;
}

RebuildResult rebuild_best_local_alignment(const Sequence& s, const Sequence& t,
                                           const ScoreScheme& scheme,
                                           bool use_hirschberg) {
  RebuildResult out;
  const BestLocal best = sw_best_score_linear(s, t, scheme);
  if (best.score <= 0) return out;  // empty alignment

  const StartCoords start = find_alignment_start(s, t, scheme, best.end_i,
                                                 best.end_j, best.score);
  out.stats = start.stats;

  const Sequence sub_s = s.slice(start.i - 1, best.end_i);
  const Sequence sub_t = t.slice(start.j - 1, best.end_j);
  Alignment al = use_hirschberg ? hirschberg(sub_s, sub_t, scheme)
                                : needleman_wunsch(sub_s, sub_t, scheme);
  if (al.score != best.score) {
    throw std::logic_error(
        "rebuild: global alignment of the identified subwords does not "
        "reproduce the detected score");
  }
  al.s_begin = start.i - 1;
  al.t_begin = start.j - 1;
  out.alignment = std::move(al);
  return out;
}

}  // namespace gdsm
