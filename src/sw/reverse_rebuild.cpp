#include "sw/reverse_rebuild.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sw/full_matrix.h"
#include "sw/hirschberg.h"
#include "sw/linear_score.h"

namespace gdsm {
namespace {

constexpr int kNoPath = std::numeric_limits<int>::min() / 2;

// A row of the pruned reverse DP: scores over the window [lo, hi] (1-based
// reverse columns); cells outside the window are pruned (Theorem 6.2 — their
// paths would pass through an intermediate zero).
struct PrunedRow {
  std::size_t lo = 1;
  std::vector<int> scores;  // scores[c - lo], kNoPath when not useful

  int at(std::size_t c) const {
    if (c < lo || c >= lo + scores.size()) return kNoPath;
    return scores[c - lo];
  }
  bool useful(std::size_t c) const { return at(c) > 0; }
  std::size_t hi() const { return lo + scores.size() - 1; }
  bool empty() const { return scores.empty(); }
};

}  // namespace

StartCoords find_alignment_start(const Sequence& s, const Sequence& t,
                                 const ScoreScheme& scheme, std::size_t end_i,
                                 std::size_t end_j, int score) {
  if (score <= 0 || end_i == 0 || end_j == 0 || end_i > s.size() ||
      end_j > t.size()) {
    throw std::logic_error("find_alignment_start: invalid end cell or score");
  }
  // Reversed prefixes, addressed without materializing them:
  // sr[r] = s[end_i - r], tr[c] = t[end_j - c] (1-based r, c).
  auto sr = [&](std::size_t r) { return s[end_i - r]; };
  auto tr = [&](std::size_t c) { return t[end_j - c]; };

  StartCoords out;
  PrunedRow prev;  // starts empty: row 0 has no useful cells (the (0,0)
                   // anchor is handled specially for cell (1,1))

  std::size_t max_hi = 0;
  for (std::size_t r = 1; r <= end_i; ++r) {
    PrunedRow cur;
    cur.lo = prev.empty() ? 1 : prev.lo;
    if (r == 1) cur.lo = 1;

    std::size_t c = cur.lo;
    const std::size_t soft_hi = prev.empty() ? 1 : prev.hi() + 1;
    bool last_useful = false;
    while (c <= end_j && (c <= soft_hi || last_useful)) {
      int from_diag = kNoPath;
      if (r == 1 && c == 1) {
        from_diag = scheme.substitution(sr(1), tr(1));  // anchored at (0,0)
      } else if (prev.useful(c - 1)) {
        from_diag = prev.at(c - 1) + scheme.substitution(sr(r), tr(c));
      }
      const int from_up = prev.useful(c) ? prev.at(c) + scheme.gap : kNoPath;
      const int from_left =
          (c > cur.lo && cur.useful(c - 1)) ? cur.at(c - 1) + scheme.gap : kNoPath;

      const int best = std::max({from_diag, from_up, from_left});
      ++out.stats.computed_cells;
      const int value = best > 0 ? best : 0;
      cur.scores.push_back(value > 0 ? value : kNoPath);
      last_useful = value > 0;

      if (value >= score) {
        out.stats.rows_used = r;
        max_hi = std::max(max_hi, c);
        out.stats.rect_area = r * max_hi;
        out.i = end_i - r + 1;
        out.j = end_j - c + 1;
        return out;
      }
      ++c;
    }
    // Trim non-useful cells from both ends of the window.
    while (!cur.scores.empty() && cur.scores.front() == kNoPath) {
      cur.scores.erase(cur.scores.begin());
      ++cur.lo;
    }
    while (!cur.scores.empty() && cur.scores.back() == kNoPath) {
      cur.scores.pop_back();
    }
    if (cur.scores.empty()) {
      throw std::logic_error(
          "find_alignment_start: useful region died before reaching the score");
    }
    max_hi = std::max(max_hi, cur.hi());
    out.stats.rows_used = r;
    prev = std::move(cur);
  }
  throw std::logic_error("find_alignment_start: score never reached");
}

StartCoords find_alignment_start_affine(const Sequence& s, const Sequence& t,
                                        const AffineScheme& scheme,
                                        std::size_t end_i, std::size_t end_j,
                                        int score) {
  if (score <= 0 || end_i == 0 || end_j == 0 || end_i > s.size() ||
      end_j > t.size()) {
    throw std::logic_error(
        "find_alignment_start_affine: invalid end cell or score");
  }
  if (scheme.match <= 0) {
    throw std::logic_error(
        "find_alignment_start_affine: needs match > 0 for the future-gain "
        "prune");
  }
  auto sr = [&](std::size_t r) { return s[end_i - r]; };
  auto tr = [&](std::size_t c) { return t[end_j - c]; };
  const int open_ext = scheme.gap_open + scheme.gap_extend;
  const int ext = scheme.gap_extend;
  auto add = [](int v, int x) { return v <= kNoPath / 2 ? kNoPath : v + x; };

  // Anchored Gotoh over the reversed prefixes: cell (r, c) holds the best
  // score of an alignment consuming exactly sr[1..r] and tr[1..c] whose
  // first operation is the Diag at (1, 1) — an optimal local alignment never
  // starts or ends with a gap, so the witness is of this form and every such
  // alignment maps to one ending at (end_i, end_j).  No value can exceed
  // `score` when the end cell came from a best-score scan, so the first cell
  // reaching it is the minimal-length start.
  struct Row {
    std::size_t lo = 1;
    std::vector<int> h, e, f;  // kNoPath outside the window / when pruned
    int ah(std::size_t c) const {
      return c < lo || c >= lo + h.size() ? kNoPath : h[c - lo];
    }
    int ae(std::size_t c) const {
      return c < lo || c >= lo + e.size() ? kNoPath : e[c - lo];
    }
    int af(std::size_t c) const {
      return c < lo || c >= lo + f.size() ? kNoPath : f[c - lo];
    }
    bool useful(std::size_t c) const { return ah(c) > kNoPath / 2; }
    std::size_t hi() const { return lo + h.size() - 1; }
    bool empty() const { return h.empty(); }
  };

  StartCoords out;
  Row prev;
  std::size_t max_hi = 0;
  for (std::size_t r = 1; r <= end_i; ++r) {
    Row cur;
    cur.lo = (r == 1 || prev.empty()) ? 1 : prev.lo;
    std::size_t c = cur.lo;
    const std::size_t soft_hi = prev.empty() ? 1 : prev.hi() + 1;
    bool last_useful = false;
    while (c <= end_j && (c <= soft_hi || last_useful)) {
      int from_diag = kNoPath;
      if (r == 1 && c == 1) {
        from_diag = scheme.substitution(sr(1), tr(1));
      } else if (r > 1 && c > 1) {
        from_diag = add(prev.ah(c - 1), scheme.substitution(sr(r), tr(c)));
      }
      const int e = std::max(add(c > cur.lo ? cur.ah(c - 1) : kNoPath, open_ext),
                             add(c > cur.lo ? cur.ae(c - 1) : kNoPath, ext));
      const int f = std::max(add(prev.ah(c), open_ext), add(prev.af(c), ext));
      int h = std::max({from_diag, e, f});
      ++out.stats.computed_cells;

      // Admissible prune: even a run of perfect matches from here cannot
      // recover to `score`.
      const int remaining = static_cast<int>(std::min(end_i - r, end_j - c));
      if (h > kNoPath / 2 && h + scheme.match * remaining < score) h = kNoPath;

      cur.h.push_back(h);
      cur.e.push_back(h > kNoPath / 2 ? e : kNoPath);
      cur.f.push_back(h > kNoPath / 2 ? f : kNoPath);
      last_useful = h > kNoPath / 2;

      if (h >= score) {
        out.stats.rows_used = r;
        max_hi = std::max(max_hi, c);
        out.stats.rect_area = r * max_hi;
        out.i = end_i - r + 1;
        out.j = end_j - c + 1;
        return out;
      }
      ++c;
    }
    while (!cur.h.empty() && cur.h.front() == kNoPath) {
      cur.h.erase(cur.h.begin());
      cur.e.erase(cur.e.begin());
      cur.f.erase(cur.f.begin());
      ++cur.lo;
    }
    while (!cur.h.empty() && cur.h.back() == kNoPath) {
      cur.h.pop_back();
      cur.e.pop_back();
      cur.f.pop_back();
    }
    if (cur.h.empty()) {
      throw std::logic_error(
          "find_alignment_start_affine: useful region died before reaching "
          "the score");
    }
    max_hi = std::max(max_hi, cur.hi());
    out.stats.rows_used = r;
    prev = std::move(cur);
  }
  throw std::logic_error("find_alignment_start_affine: score never reached");
}

std::vector<RebuildResult> rebuild_top_alignments(const Sequence& s,
                                                  const Sequence& t,
                                                  int min_score,
                                                  std::size_t max_count,
                                                  const ScoreScheme& scheme,
                                                  bool use_hirschberg) {
  if (min_score <= 0) {
    throw std::invalid_argument("rebuild_top_alignments: min_score must be > 0");
  }
  struct Hit {
    int score;
    std::size_t i, j;
  };
  std::vector<Hit> hits;
  sw_scan_hits(s, t, scheme, min_score,
               [&](std::size_t i, std::size_t j, int score) {
                 hits.push_back(Hit{score, i, j});
               });
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });

  std::vector<RebuildResult> out;
  for (const Hit& h : hits) {
    if (out.size() >= max_count) break;
    // Skip cells belonging to an already-rebuilt alignment or its decay
    // trail (scores fade down/right of the true region).
    const bool covered = std::any_of(
        out.begin(), out.end(), [&](const RebuildResult& r) {
          const Alignment& al = r.alignment;
          const std::size_t trail_s = 2 * al.s_length();
          const std::size_t trail_t = 2 * al.t_length();
          return h.i + 1 > al.s_begin && h.i <= al.s_end() + trail_s &&
                 h.j + 1 > al.t_begin && h.j <= al.t_end() + trail_t;
        });
    if (covered) continue;

    Alignment al;
    RebuildStats stats;
    const bool affine = scheme.affine();
    try {
      const StartCoords start =
          affine ? find_alignment_start_affine(s, t, to_affine(scheme), h.i,
                                               h.j, h.score)
                 : find_alignment_start(s, t, scheme, h.i, h.j, h.score);
      const Sequence sub_s = s.slice(start.i - 1, h.i);
      const Sequence sub_t = t.slice(start.j - 1, h.j);
      if (affine) {
        al = use_hirschberg
                 ? hirschberg_affine(sub_s, sub_t, to_affine(scheme))
                 : needleman_wunsch_affine(sub_s, sub_t, to_affine(scheme));
      } else {
        al = use_hirschberg ? hirschberg(sub_s, sub_t, scheme)
                            : needleman_wunsch(sub_s, sub_t, scheme);
      }
      al.s_begin = start.i - 1;
      al.t_begin = start.j - 1;
      stats = start.stats;
    } catch (const std::logic_error&) {
      // Theorem 6.2's pruning is exact for the GLOBAL maximum, but a
      // non-peak cell's alignment may have a non-positive reverse prefix
      // (e.g. its last column is a gap, or an equal-score crest occurred
      // earlier on its path), which the pruned pass rightfully cuts.
      // Fall back to a windowed full-matrix traceback ending at the cell.
      const std::size_t window =
          std::min<std::size_t>(8 * static_cast<std::size_t>(h.score) + 64,
                                std::max(h.i, h.j));
      const std::size_t s_lo = h.i > window ? h.i - window : 0;
      const std::size_t t_lo = h.j > window ? h.j - window : 0;
      const Sequence sub_s = s.slice(s_lo, h.i);
      const Sequence sub_t = t.slice(t_lo, h.j);
      if (affine) {
        al = smith_waterman_affine_ending_at(sub_s, sub_t, to_affine(scheme),
                                             sub_s.size(), sub_t.size());
      } else {
        const DpMatrix grid = sw_fill(sub_s, sub_t, scheme, nullptr);
        al = sw_traceback(grid, sub_s, sub_t, scheme, sub_s.size(),
                          sub_t.size());
      }
      al.s_begin += s_lo;
      al.t_begin += t_lo;
      stats.computed_cells = (sub_s.size() + 1) * (sub_t.size() + 1);
      stats.rect_area = stats.computed_cells;
      stats.rows_used = sub_s.size();
    }
    // Overlap cull against kept alignments (a weaker alignment sharing a
    // region with a stronger one is a shadow, not a distinct discovery).
    const bool overlaps = std::any_of(
        out.begin(), out.end(), [&](const RebuildResult& r) {
          const Alignment& prev = r.alignment;
          const bool s_disjoint =
              al.s_end() <= prev.s_begin || prev.s_end() <= al.s_begin;
          const bool t_disjoint =
              al.t_end() <= prev.t_begin || prev.t_end() <= al.t_begin;
          return !(s_disjoint || t_disjoint);
        });
    if (overlaps) continue;
    out.push_back(RebuildResult{std::move(al), stats});
  }
  return out;
}

RebuildResult rebuild_best_local_alignment(const Sequence& s, const Sequence& t,
                                           const ScoreScheme& scheme,
                                           bool use_hirschberg) {
  RebuildResult out;
  const BestLocal best = sw_best_score_linear(s, t, scheme);
  if (best.score <= 0) return out;  // empty alignment

  const bool affine = scheme.affine();
  const StartCoords start =
      affine ? find_alignment_start_affine(s, t, to_affine(scheme), best.end_i,
                                           best.end_j, best.score)
             : find_alignment_start(s, t, scheme, best.end_i, best.end_j,
                                    best.score);
  out.stats = start.stats;

  const Sequence sub_s = s.slice(start.i - 1, best.end_i);
  const Sequence sub_t = t.slice(start.j - 1, best.end_j);
  Alignment al =
      affine ? (use_hirschberg
                    ? hirschberg_affine(sub_s, sub_t, to_affine(scheme))
                    : needleman_wunsch_affine(sub_s, sub_t, to_affine(scheme)))
             : (use_hirschberg ? hirschberg(sub_s, sub_t, scheme)
                               : needleman_wunsch(sub_s, sub_t, scheme));
  if (al.score != best.score) {
    throw std::logic_error(
        "rebuild: global alignment of the identified subwords does not "
        "reproduce the detected score");
  }
  al.s_begin = start.i - 1;
  al.t_begin = start.j - 1;
  out.alignment = std::move(al);
  return out;
}

}  // namespace gdsm
