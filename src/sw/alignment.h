// Alignment value types: edit operations, alignments with coordinates, and
// the candidate records produced by the heuristic linear-space scan.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm {

/// One alignment column, named by the traceback arrow of Section 2.2:
/// Diag  = north-west arrow, s[i] aligned to t[j];
/// Up    = north arrow, s[i] aligned to a space in t;
/// Left  = west arrow, a space in s aligned to t[j].
enum class Op : std::uint8_t { Diag, Up, Left };

/// An alignment between s[s_begin ..] and t[t_begin ..] described by its
/// operation list (in left-to-right order).  Coordinates are 0-based.
struct Alignment {
  std::size_t s_begin = 0;
  std::size_t t_begin = 0;
  int score = 0;
  std::vector<Op> ops;

  /// Number of characters of s / t consumed by the operation list.
  std::size_t s_length() const noexcept;
  std::size_t t_length() const noexcept;
  std::size_t s_end() const noexcept { return s_begin + s_length(); }  ///< exclusive
  std::size_t t_end() const noexcept { return t_begin + t_length(); }  ///< exclusive

  /// Recomputes the score from the operations — used by tests to validate
  /// that `score` is consistent with the claimed path.
  int compute_score(const Sequence& s, const Sequence& t,
                    const ScoreScheme& scheme) const;

  /// Renders the classic three-line view (s on top, '|' markers, t below),
  /// as in the paper's Figs. 1 and 16.
  std::array<std::string, 3> render(const Sequence& s, const Sequence& t) const;

  /// Fig. 16-style record: coordinates, similarity and the two gapped rows.
  std::string to_record(const Sequence& s, const Sequence& t) const;

  /// SAM-style CIGAR with s as the query and t as the reference:
  /// Diag -> M, Up (consumes s only) -> I, Left (consumes t only) -> D.
  /// Example: "12M2D5M1I3M".  Empty ops yield "".
  std::string cigar() const;
};

/// Inverse of Alignment::cigar().  Accepts M/=/X as Diag, I as Up, D as
/// Left; throws std::invalid_argument on malformed input.
std::vector<Op> parse_cigar(const std::string& text);

/// A similarity region found by phase 1 (the heuristic scan).  Coordinates
/// are 1-based inclusive, matching the paper's Table 2 presentation.
struct Candidate {
  std::int32_t score = 0;
  std::uint32_t s_begin = 0;
  std::uint32_t s_end = 0;
  std::uint32_t t_begin = 0;
  std::uint32_t t_end = 0;

  std::uint32_t s_span() const noexcept { return s_end - s_begin + 1; }
  std::uint32_t t_span() const noexcept { return t_end - t_begin + 1; }
  /// Sorting key used for the paper's "sorted by subsequence size" queue.
  std::uint64_t size_key() const noexcept {
    return std::uint64_t(s_span()) + t_span();
  }

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

/// Sorts by subsequence size (descending, then by coordinates for
/// determinism) and removes exact repeats — the paper's end-of-phase-1
/// post-processing of the queue `alignments`.
void finalize_candidates(std::vector<Candidate>& queue);

/// Greedy overlap culling: keeps the best-scoring candidates whose regions
/// do not overlap an already-kept one (in both sequences), up to max_count.
/// The heuristic scan closes the same alignment at many nearby cells, so
/// reporting layers use this to reduce the queue to distinct regions.
std::vector<Candidate> cull_overlapping_candidates(std::vector<Candidate> queue,
                                                   std::size_t max_count = 64);

}  // namespace gdsm
