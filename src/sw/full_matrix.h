// Full-matrix dynamic programming (Section 2): the textbook Smith–Waterman
// similarity array with traceback, and the Needleman–Wunsch global variant.
//
// These are O(mn) space and intended for worked examples, tests, phase-2
// global alignment of similar regions (~300 bp) and the Section 6 rebuild of
// small subregions.  Long sequences use the linear-space scans instead.
#pragma once

#include <cstddef>
#include <vector>

#include "sw/alignment.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm {

/// The similarity array A of Section 2.1, (m+1) x (n+1), row-major, where
/// m = |s| indexes rows and n = |t| indexes columns.
class DpMatrix {
 public:
  DpMatrix(std::size_t m, std::size_t n)
      : rows_(m + 1), cols_(n + 1), cells_(rows_ * cols_, 0) {}

  int& at(std::size_t i, std::size_t j) { return cells_[i * cols_ + j]; }
  int at(std::size_t i, std::size_t j) const { return cells_[i * cols_ + j]; }

  std::size_t rows() const noexcept { return rows_; }  ///< m + 1
  std::size_t cols() const noexcept { return cols_; }  ///< n + 1

 private:
  std::size_t rows_, cols_;
  std::vector<int> cells_;
};

struct MatrixBest {
  int score = 0;
  std::size_t i = 0;  ///< 1-based row of the best cell
  std::size_t j = 0;  ///< 1-based column of the best cell
};

/// Fills the local-alignment array per Eq. (1) (first row/column zero, zero
/// floor).  Returns the matrix; `best` receives the maximal cell (first in
/// row-major order on ties).
DpMatrix sw_fill(const Sequence& s, const Sequence& t, const ScoreScheme& scheme,
                 MatrixBest* best = nullptr);

/// Fills the global-alignment array of Section 2.3 (first row/column get gap
/// penalties, no zero floor).
DpMatrix nw_fill(const Sequence& s, const Sequence& t, const ScoreScheme& scheme);

/// Traceback of a local alignment from cell (i, j) of a sw_fill matrix,
/// following arrows until a zero cell (Section 2.2).  Arrow preference on
/// ties is diagonal, then up, then left (compact alignments).
Alignment sw_traceback(const DpMatrix& a, const Sequence& s, const Sequence& t,
                       const ScoreScheme& scheme, std::size_t i, std::size_t j);

/// Traceback of the global alignment from the bottom-right corner of an
/// nw_fill matrix.
Alignment nw_traceback(const DpMatrix& a, const Sequence& s, const Sequence& t,
                       const ScoreScheme& scheme);

/// Convenience: the best local alignment between s and t.  Honours the
/// scheme's gap model: an affine scheme (gap_open != 0) routes to the Gotoh
/// three-matrix aligner.  The sw_fill/nw_fill primitives above stay
/// linear-only — they expose the raw H array, which has no affine analogue
/// without the E/F companions.
Alignment smith_waterman(const Sequence& s, const Sequence& t,
                         const ScoreScheme& scheme = {});

/// Convenience: the global alignment between s and t.  Routes affine schemes
/// to needleman_wunsch_affine, like smith_waterman above.
Alignment needleman_wunsch(const Sequence& s, const Sequence& t,
                           const ScoreScheme& scheme = {});

/// All local alignments with score >= min_score whose end cells are local
/// maxima, greedily made non-overlapping (best first).  Used as ground truth
/// for the heuristic strategies on small inputs.
std::vector<Alignment> sw_all_alignments(const Sequence& s, const Sequence& t,
                                         const ScoreScheme& scheme, int min_score,
                                         std::size_t max_count = 64);

}  // namespace gdsm
