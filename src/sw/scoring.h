// Scoring scheme of the paper (Section 2): +1 match, -1 mismatch, -2 space.
#pragma once

#include "util/alphabet.h"

namespace gdsm {

/// Column scores for alignments.  The paper fixes (+1, -1, -2); the fields
/// are configurable so tests can probe other regimes, but gap must stay
/// negative and match positive for the local-alignment theory to hold.
struct ScoreScheme {
  int match = 1;
  int mismatch = -1;
  int gap = -2;

  /// Substitution score for a pair of bases.  'N' never matches, not even
  /// itself, so ambiguity codes cannot fabricate similarity.
  constexpr int substitution(Base a, Base b) const noexcept {
    return (a == b && a != kBaseN) ? match : mismatch;
  }
};

}  // namespace gdsm
