// Scoring scheme of the paper (Section 2): +1 match, -1 mismatch, -2 space —
// extended with an optional Gotoh affine gap model (docs/ALGORITHMS.md).
#pragma once

#include "util/alphabet.h"

namespace gdsm {

/// Which gap cost family a scheme uses.  Linear charges `gap` per space;
/// affine charges gap_open once per run plus `gap` (the extension cost) per
/// space, i.e. a run of k spaces costs gap_open + k * gap.
enum class GapModel : int { kLinear = 0, kAffine = 1 };

/// Column scores for alignments.  The paper fixes (+1, -1, -2); the fields
/// are configurable so tests can probe other regimes, but gap must stay
/// negative and match positive for the local-alignment theory to hold.
///
/// gap_open == 0 is the linear model (every layer treats it as such); a
/// negative gap_open selects Gotoh affine scoring, in which `gap` plays the
/// role of the per-space extension penalty.  The degenerate affine scheme
/// (open = 0, extend = g) is therefore *identical* to linear(g) by
/// construction, which the property tests rely on.
struct ScoreScheme {
  int match = 1;
  int mismatch = -1;
  int gap = -2;
  int gap_open = 0;  ///< once-per-run surcharge; 0 = linear gaps

  constexpr GapModel gap_model() const noexcept {
    return gap_open != 0 ? GapModel::kAffine : GapModel::kLinear;
  }
  constexpr bool affine() const noexcept { return gap_open != 0; }

  /// Substitution score for a pair of bases.  'N' never matches, not even
  /// itself, so ambiguity codes cannot fabricate similarity.
  constexpr int substitution(Base a, Base b) const noexcept {
    return (a == b && a != kBaseN) ? match : mismatch;
  }
};

/// "linear" / "affine" — the vocabulary reports and repro lines carry.
inline constexpr const char* gap_model_name(GapModel m) noexcept {
  return m == GapModel::kAffine ? "affine" : "linear";
}

}  // namespace gdsm
