#include "sw/protein.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <stdexcept>

namespace gdsm {
namespace {

constexpr std::string_view kResidues = "ARNDCQEGHILKMFPSTWYV";

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

// BLOSUM62, rows/columns in ARNDCQEGHILKMFPSTWYV order.
constexpr std::int8_t kBlosum62[20][20] = {
    /*A*/ {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0},
    /*R*/ {-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3},
    /*N*/ {-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3},
    /*D*/ {-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3},
    /*C*/ {0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1},
    /*Q*/ {-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2},
    /*E*/ {-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2},
    /*G*/ {0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3},
    /*H*/ {-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3},
    /*I*/ {-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3},
    /*L*/ {-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1},
    /*K*/ {-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2},
    /*M*/ {-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1},
    /*F*/ {-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1},
    /*P*/ {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2},
    /*S*/ {1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2},
    /*T*/ {0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0},
    /*W*/ {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3},
    /*Y*/ {-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1},
    /*V*/ {0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4},
};

// Gotoh over protein codes; `local` floors at zero.
Alignment gotoh_protein(const ProteinSequence& s, const ProteinSequence& t,
                        const SubstitutionMatrix& mx, const ProteinGaps& gaps,
                        bool local) {
  const std::size_t m = s.size();
  const std::size_t n = t.size();
  const std::size_t cols = n + 1;
  std::vector<int> h((m + 1) * cols, 0), e((m + 1) * cols, kNegInf),
      f((m + 1) * cols, kNegInf);
  auto H = [&](std::size_t i, std::size_t j) -> int& { return h[i * cols + j]; };
  auto E = [&](std::size_t i, std::size_t j) -> int& { return e[i * cols + j]; };
  auto F = [&](std::size_t i, std::size_t j) -> int& { return f[i * cols + j]; };

  if (!local) {
    for (std::size_t i = 1; i <= m; ++i) {
      H(i, 0) = gaps.open + static_cast<int>(i) * gaps.extend;
    }
    for (std::size_t j = 1; j <= n; ++j) {
      H(0, j) = gaps.open + static_cast<int>(j) * gaps.extend;
    }
  }
  int best = 0;
  std::size_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      E(i, j) = std::max(H(i, j - 1) + gaps.open + gaps.extend,
                         E(i, j - 1) + gaps.extend);
      F(i, j) = std::max(H(i - 1, j) + gaps.open + gaps.extend,
                         F(i - 1, j) + gaps.extend);
      int v = std::max({H(i - 1, j - 1) + mx.score(s[i - 1], t[j - 1]),
                        E(i, j), F(i, j)});
      if (local) v = std::max(v, 0);
      H(i, j) = v;
      if (v > best) {
        best = v;
        bi = i;
        bj = j;
      }
    }
  }

  std::size_t i = local ? bi : m;
  std::size_t j = local ? bj : n;
  if (local && best == 0) return Alignment{};

  Alignment out;
  out.score = H(i, j);
  std::vector<Op> rev;
  enum State { kH, kE, kF };
  State state = kH;
  while (i > 0 || j > 0) {
    if (state == kH) {
      const int v = H(i, j);
      if (local && v == 0) break;
      if (i > 0 && j > 0 &&
          v == H(i - 1, j - 1) + mx.score(s[i - 1], t[j - 1])) {
        rev.push_back(Op::Diag);
        --i;
        --j;
        continue;
      }
      if (j > 0 && v == E(i, j)) {
        state = kE;
        continue;
      }
      if (i > 0 && v == F(i, j)) {
        state = kF;
        continue;
      }
      if (local) break;
      if (i == 0 && j > 0) {
        rev.push_back(Op::Left);
        --j;
        continue;
      }
      if (j == 0 && i > 0) {
        rev.push_back(Op::Up);
        --i;
        continue;
      }
      throw std::logic_error("gotoh_protein: inconsistent matrix");
    }
    if (state == kE) {
      rev.push_back(Op::Left);
      if (j > 1 && E(i, j) == E(i, j - 1) + gaps.extend) {
        --j;
        continue;
      }
      --j;
      state = kH;
      continue;
    }
    rev.push_back(Op::Up);
    if (i > 1 && F(i, j) == F(i - 1, j) + gaps.extend) {
      --i;
      continue;
    }
    --i;
    state = kH;
  }
  out.s_begin = i;
  out.t_begin = j;
  out.ops.assign(rev.rbegin(), rev.rend());
  return out;
}

}  // namespace

AminoAcid encode_amino_acid(char c) noexcept {
  const char upper = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  const auto pos = kResidues.find(upper);
  return pos == std::string_view::npos ? kAaX : static_cast<AminoAcid>(pos);
}

char decode_amino_acid(AminoAcid a) noexcept {
  return a < 20 ? kResidues[a] : 'X';
}

ProteinSequence::ProteinSequence(std::string name, std::string_view text)
    : name_(std::move(name)) {
  codes_.reserve(text.size());
  for (char c : text) codes_.push_back(encode_amino_acid(c));
}

std::string ProteinSequence::text() const {
  std::string out;
  out.reserve(codes_.size());
  for (AminoAcid a : codes_) out.push_back(decode_amino_acid(a));
  return out;
}

ProteinSequence ProteinSequence::slice(std::size_t begin, std::size_t end) const {
  if (begin > end || end > codes_.size()) {
    throw std::out_of_range("ProteinSequence::slice: invalid range");
  }
  ProteinSequence out;
  out.name_ = name_ + "[" + std::to_string(begin) + ".." + std::to_string(end) + ")";
  out.codes_.assign(codes_.begin() + static_cast<std::ptrdiff_t>(begin),
                    codes_.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

const SubstitutionMatrix& SubstitutionMatrix::blosum62() {
  static const SubstitutionMatrix instance = [] {
    std::array<std::array<std::int8_t, kProteinAlphabetSize>,
               kProteinAlphabetSize>
        cells{};
    for (int a = 0; a < kProteinAlphabetSize; ++a) {
      for (int b = 0; b < kProteinAlphabetSize; ++b) {
        cells[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
            (a < 20 && b < 20) ? kBlosum62[a][b] : -1;  // X vs anything: -1
      }
    }
    return SubstitutionMatrix(cells);
  }();
  return instance;
}

Alignment protein_smith_waterman(const ProteinSequence& s,
                                 const ProteinSequence& t,
                                 const SubstitutionMatrix& matrix,
                                 const ProteinGaps& gaps) {
  return gotoh_protein(s, t, matrix, gaps, /*local=*/true);
}

Alignment protein_needleman_wunsch(const ProteinSequence& s,
                                   const ProteinSequence& t,
                                   const SubstitutionMatrix& matrix,
                                   const ProteinGaps& gaps) {
  return gotoh_protein(s, t, matrix, gaps, /*local=*/false);
}

int protein_alignment_score(const Alignment& al, const ProteinSequence& s,
                            const ProteinSequence& t,
                            const SubstitutionMatrix& matrix,
                            const ProteinGaps& gaps) {
  int total = 0;
  std::size_t i = al.s_begin;
  std::size_t j = al.t_begin;
  Op prev = Op::Diag;
  bool first = true;
  for (Op op : al.ops) {
    switch (op) {
      case Op::Diag:
        total += matrix.score(s[i], t[j]);
        ++i;
        ++j;
        break;
      case Op::Up:
        if (first || prev != Op::Up) total += gaps.open;
        total += gaps.extend;
        ++i;
        break;
      case Op::Left:
        if (first || prev != Op::Left) total += gaps.open;
        total += gaps.extend;
        ++j;
        break;
    }
    prev = op;
    first = false;
  }
  return total;
}

std::array<std::string, 3> render_protein_alignment(
    const Alignment& al, const ProteinSequence& s, const ProteinSequence& t,
    const SubstitutionMatrix& matrix) {
  std::array<std::string, 3> lines;
  std::size_t i = al.s_begin;
  std::size_t j = al.t_begin;
  for (Op op : al.ops) {
    switch (op) {
      case Op::Diag: {
        const char a = decode_amino_acid(s[i]);
        const char b = decode_amino_acid(t[j]);
        lines[0].push_back(a);
        lines[1].push_back(a == b            ? a
                           : matrix.score(s[i], t[j]) > 0 ? '+'
                                                          : ' ');
        lines[2].push_back(b);
        ++i;
        ++j;
        break;
      }
      case Op::Up:
        lines[0].push_back(decode_amino_acid(s[i]));
        lines[1].push_back(' ');
        lines[2].push_back('-');
        ++i;
        break;
      case Op::Left:
        lines[0].push_back('-');
        lines[1].push_back(' ');
        lines[2].push_back(decode_amino_acid(t[j]));
        ++j;
        break;
    }
  }
  return lines;
}

}  // namespace gdsm
