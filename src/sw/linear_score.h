// Linear-space score-only dynamic programming passes.
//
// sw_best_score_linear is step 1 of the Section 6 exact method: find the
// best local score and its end cell using two rows of memory.  nw_last_row
// is the building block of Hirschberg's linear-space global alignment.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm {

/// Best local alignment score and the (1-based) matrix cell where it ends.
/// On ties the first cell in row-major order wins, matching sw_fill.
struct BestLocal {
  int score = 0;
  std::size_t end_i = 0;  ///< 1-based: alignment consumes s[1..end_i]
  std::size_t end_j = 0;  ///< 1-based: alignment consumes t[1..end_j]
};

/// O(min(m,n)) extra space, O(mn) time.  When |t| < |s| the scan internally
/// transposes the problem (similarity is symmetric) so the row buffer is as
/// short as possible — the "shorter input string will index the rows" remark
/// of Section 6.  Despite the historical name this honours both gap models:
/// an affine scheme (gap_open != 0) routes to the Gotoh kernels underneath.
BestLocal sw_best_score_linear(const Sequence& s, const Sequence& t,
                               const ScoreScheme& scheme = {});

/// All cells with score >= threshold, streamed to a callback as (i, j, score)
/// with 1-based coordinates.  This is the "scoreboard of points of interest"
/// used by the pre-process strategy's result matrix.
void sw_scan_hits(const Sequence& s, const Sequence& t, const ScoreScheme& scheme,
                  int threshold,
                  const std::function<void(std::size_t, std::size_t, int)>& hit);

/// Last row of the Needleman–Wunsch matrix of s versus t: entry j is the
/// global-alignment score of the whole of s against t[1..j].
std::vector<int> nw_last_row(const Sequence& s, const Sequence& t,
                             const ScoreScheme& scheme);

}  // namespace gdsm
