#include "sw/affine.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sw/full_matrix.h"

namespace gdsm {
namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

// Dense (m+1) x (n+1) int grid.
class Grid {
 public:
  Grid(std::size_t m, std::size_t n, int fill)
      : cols_(n + 1), cells_((m + 1) * (n + 1), fill) {}
  int& at(std::size_t i, std::size_t j) { return cells_[i * cols_ + j]; }
  int at(std::size_t i, std::size_t j) const { return cells_[i * cols_ + j]; }

 private:
  std::size_t cols_;
  std::vector<int> cells_;
};

// Shared Gotoh fill; `local` floors H at zero and zeroes the borders.
struct Filled {
  Grid h, e, f;
  MatrixBest best;
};

Filled gotoh_fill(const Sequence& s, const Sequence& t,
                  const AffineScheme& sc, bool local) {
  const std::size_t m = s.size();
  const std::size_t n = t.size();
  Filled out{Grid(m, n, 0), Grid(m, n, kNegInf), Grid(m, n, kNegInf),
             MatrixBest{}};
  if (!local) {
    for (std::size_t i = 1; i <= m; ++i) {
      out.h.at(i, 0) = sc.gap_open + static_cast<int>(i) * sc.gap_extend;
    }
    for (std::size_t j = 1; j <= n; ++j) {
      out.h.at(0, j) = sc.gap_open + static_cast<int>(j) * sc.gap_extend;
    }
  }
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      const int e = std::max(out.h.at(i, j - 1) + sc.gap_open + sc.gap_extend,
                             out.e.at(i, j - 1) + sc.gap_extend);
      const int f = std::max(out.h.at(i - 1, j) + sc.gap_open + sc.gap_extend,
                             out.f.at(i - 1, j) + sc.gap_extend);
      int h = std::max(
          {out.h.at(i - 1, j - 1) + sc.substitution(s[i - 1], t[j - 1]), e, f});
      if (local) h = std::max(h, 0);
      out.e.at(i, j) = e;
      out.f.at(i, j) = f;
      out.h.at(i, j) = h;
      if (h > out.best.score) out.best = MatrixBest{h, i, j};
    }
  }
  return out;
}

Alignment gotoh_traceback(const Filled& m_, const Sequence& s, const Sequence& t,
                          const AffineScheme& sc, std::size_t i, std::size_t j,
                          bool local) {
  enum State { kH, kE, kF };
  State state = kH;
  std::vector<Op> rev;
  Alignment out;
  out.score = m_.h.at(i, j);
  while (i > 0 || j > 0) {
    if (state == kH) {
      const int v = m_.h.at(i, j);
      if (local && v == 0) break;
      if (i > 0 && j > 0 &&
          v == m_.h.at(i - 1, j - 1) + sc.substitution(s[i - 1], t[j - 1])) {
        rev.push_back(Op::Diag);
        --i;
        --j;
        continue;
      }
      if (j > 0 && v == m_.e.at(i, j)) {
        state = kE;
        continue;
      }
      if (i > 0 && v == m_.f.at(i, j)) {
        state = kF;
        continue;
      }
      if (local) break;
      // Global border runs (first row/column).
      if (i == 0 && j > 0) {
        rev.push_back(Op::Left);
        --j;
        continue;
      }
      if (j == 0 && i > 0) {
        rev.push_back(Op::Up);
        --i;
        continue;
      }
      throw std::logic_error("gotoh_traceback: inconsistent H matrix");
    }
    if (state == kE) {
      rev.push_back(Op::Left);
      const int v = m_.e.at(i, j);
      if (j > 1 && v == m_.e.at(i, j - 1) + sc.gap_extend) {
        --j;
        continue;  // stay in E
      }
      --j;
      state = kH;
      continue;
    }
    // state == kF
    rev.push_back(Op::Up);
    const int v = m_.f.at(i, j);
    if (i > 1 && v == m_.f.at(i - 1, j) + sc.gap_extend) {
      --i;
      continue;
    }
    --i;
    state = kH;
  }
  out.s_begin = i;
  out.t_begin = j;
  out.ops.assign(rev.rbegin(), rev.rend());
  return out;
}

}  // namespace

Alignment smith_waterman_affine(const Sequence& s, const Sequence& t,
                                const AffineScheme& scheme) {
  const Filled filled = gotoh_fill(s, t, scheme, /*local=*/true);
  if (filled.best.score <= 0) return Alignment{};
  return gotoh_traceback(filled, s, t, scheme, filled.best.i, filled.best.j,
                         /*local=*/true);
}

Alignment smith_waterman_affine_ending_at(const Sequence& s, const Sequence& t,
                                          const AffineScheme& scheme,
                                          std::size_t end_i,
                                          std::size_t end_j) {
  if (end_i == 0 || end_j == 0 || end_i > s.size() || end_j > t.size()) {
    throw std::invalid_argument("smith_waterman_affine_ending_at: bad cell");
  }
  const Filled filled = gotoh_fill(s, t, scheme, /*local=*/true);
  return gotoh_traceback(filled, s, t, scheme, end_i, end_j, /*local=*/true);
}

Alignment needleman_wunsch_affine(const Sequence& s, const Sequence& t,
                                  const AffineScheme& scheme) {
  const Filled filled = gotoh_fill(s, t, scheme, /*local=*/false);
  return gotoh_traceback(filled, s, t, scheme, s.size(), t.size(),
                         /*local=*/false);
}

BestLocal sw_best_score_affine_linear(const Sequence& s, const Sequence& t,
                                      const AffineScheme& sc) {
  const std::size_t m = s.size();
  const std::size_t n = t.size();
  std::vector<int> h_prev(n + 1, 0), h_cur(n + 1, 0);
  std::vector<int> f_prev(n + 1, kNegInf), f_cur(n + 1, kNegInf);
  BestLocal best;
  for (std::size_t i = 1; i <= m; ++i) {
    h_cur[0] = 0;
    int e = kNegInf;
    const Base si = s[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      e = std::max(h_cur[j - 1] + sc.gap_open + sc.gap_extend,
                   e + sc.gap_extend);
      const int f = std::max(h_prev[j] + sc.gap_open + sc.gap_extend,
                             f_prev[j] + sc.gap_extend);
      const int h = std::max(
          {0, h_prev[j - 1] + sc.substitution(si, t[j - 1]), e, f});
      h_cur[j] = h;
      f_cur[j] = f;
      if (h > best.score) best = BestLocal{h, i, j};
    }
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
  }
  return best;
}

int affine_alignment_score(const Alignment& al, const Sequence& s,
                           const Sequence& t, const AffineScheme& scheme) {
  int total = 0;
  std::size_t i = al.s_begin;
  std::size_t j = al.t_begin;
  Op prev = Op::Diag;
  bool first = true;
  for (Op op : al.ops) {
    switch (op) {
      case Op::Diag:
        total += scheme.substitution(s[i], t[j]);
        ++i;
        ++j;
        break;
      case Op::Up:
        if (first || prev != Op::Up) total += scheme.gap_open;
        total += scheme.gap_extend;
        ++i;
        break;
      case Op::Left:
        if (first || prev != Op::Left) total += scheme.gap_open;
        total += scheme.gap_extend;
        ++j;
        break;
    }
    prev = op;
    first = false;
  }
  return total;
}

}  // namespace gdsm
