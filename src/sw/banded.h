// k-banded alignment: DP restricted to diagonals within `band` of a center
// diagonal.  O((m+n) * band) time/space instead of O(mn).
//
// This is the classical gapped-extension kernel of seed-and-extend searches
// (the mini-BlastN uses it): around a seed hit the optimal alignment rarely
// strays more than a few gaps from the seed diagonal, so a narrow band
// suffices and is orders of magnitude cheaper than the full matrix.
#pragma once

#include <optional>

#include "sw/alignment.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm {

/// Global alignment constrained to |(j - i) - center_diag| <= band.
/// Returns std::nullopt when no path exists within the band (i.e. the band
/// does not connect (0,0) to (m,n): |n - m - center_diag| > band).
std::optional<Alignment> banded_needleman_wunsch(const Sequence& s,
                                                 const Sequence& t, int band,
                                                 int center_diag = 0,
                                                 const ScoreScheme& scheme = {});

/// Local alignment constrained to the same band, with traceback.  The band
/// is measured around `center_diag` (j - i).  Cells outside the band are
/// unreachable.  Returns an empty alignment when nothing scores > 0.
Alignment banded_smith_waterman(const Sequence& s, const Sequence& t, int band,
                                int center_diag = 0,
                                const ScoreScheme& scheme = {});

}  // namespace gdsm
