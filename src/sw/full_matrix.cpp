#include "sw/full_matrix.h"

#include <algorithm>
#include <stdexcept>

#include "sw/affine.h"

namespace gdsm {

DpMatrix sw_fill(const Sequence& s, const Sequence& t, const ScoreScheme& scheme,
                 MatrixBest* best) {
  const std::size_t m = s.size();
  const std::size_t n = t.size();
  DpMatrix a(m, n);
  MatrixBest b;
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      const int diag = a.at(i - 1, j - 1) + scheme.substitution(s[i - 1], t[j - 1]);
      const int up = a.at(i - 1, j) + scheme.gap;
      const int left = a.at(i, j - 1) + scheme.gap;
      const int v = std::max({0, diag, up, left});
      a.at(i, j) = v;
      if (v > b.score) b = MatrixBest{v, i, j};
    }
  }
  if (best != nullptr) *best = b;
  return a;
}

DpMatrix nw_fill(const Sequence& s, const Sequence& t, const ScoreScheme& scheme) {
  const std::size_t m = s.size();
  const std::size_t n = t.size();
  DpMatrix a(m, n);
  for (std::size_t i = 1; i <= m; ++i) a.at(i, 0) = static_cast<int>(i) * scheme.gap;
  for (std::size_t j = 1; j <= n; ++j) a.at(0, j) = static_cast<int>(j) * scheme.gap;
  for (std::size_t i = 1; i <= m; ++i) {
    for (std::size_t j = 1; j <= n; ++j) {
      const int diag = a.at(i - 1, j - 1) + scheme.substitution(s[i - 1], t[j - 1]);
      const int up = a.at(i - 1, j) + scheme.gap;
      const int left = a.at(i, j - 1) + scheme.gap;
      a.at(i, j) = std::max({diag, up, left});
    }
  }
  return a;
}

namespace {

// Shared traceback walker: `local` selects SW (stop at zero cells / border)
// versus NW (walk to the origin, first row/column are gap runs).
Alignment traceback_impl(const DpMatrix& a, const Sequence& s, const Sequence& t,
                         const ScoreScheme& scheme, std::size_t i, std::size_t j,
                         bool local) {
  Alignment out;
  out.score = a.at(i, j);
  std::vector<Op> rev_ops;
  while (i > 0 || j > 0) {
    const int v = a.at(i, j);
    if (local && v == 0) break;
    if (i > 0 && j > 0) {
      const int diag = a.at(i - 1, j - 1) + scheme.substitution(s[i - 1], t[j - 1]);
      if (v == diag) {
        rev_ops.push_back(Op::Diag);
        --i;
        --j;
        continue;
      }
    }
    if (i > 0 && v == a.at(i - 1, j) + scheme.gap) {
      rev_ops.push_back(Op::Up);
      --i;
      continue;
    }
    if (j > 0 && v == a.at(i, j - 1) + scheme.gap) {
      rev_ops.push_back(Op::Left);
      --j;
      continue;
    }
    if (local) break;  // reached a cell with no arrow
    throw std::logic_error("traceback: inconsistent matrix");
  }
  out.s_begin = i;
  out.t_begin = j;
  out.ops.assign(rev_ops.rbegin(), rev_ops.rend());
  return out;
}

}  // namespace

Alignment sw_traceback(const DpMatrix& a, const Sequence& s, const Sequence& t,
                       const ScoreScheme& scheme, std::size_t i, std::size_t j) {
  return traceback_impl(a, s, t, scheme, i, j, /*local=*/true);
}

Alignment nw_traceback(const DpMatrix& a, const Sequence& s, const Sequence& t,
                       const ScoreScheme& scheme) {
  return traceback_impl(a, s, t, scheme, a.rows() - 1, a.cols() - 1,
                        /*local=*/false);
}

Alignment smith_waterman(const Sequence& s, const Sequence& t,
                         const ScoreScheme& scheme) {
  if (scheme.affine()) return smith_waterman_affine(s, t, to_affine(scheme));
  MatrixBest best;
  const DpMatrix a = sw_fill(s, t, scheme, &best);
  if (best.score == 0) return Alignment{};  // no positive-scoring alignment
  return sw_traceback(a, s, t, scheme, best.i, best.j);
}

Alignment needleman_wunsch(const Sequence& s, const Sequence& t,
                           const ScoreScheme& scheme) {
  if (scheme.affine()) return needleman_wunsch_affine(s, t, to_affine(scheme));
  const DpMatrix a = nw_fill(s, t, scheme);
  return nw_traceback(a, s, t, scheme);
}

std::vector<Alignment> sw_all_alignments(const Sequence& s, const Sequence& t,
                                         const ScoreScheme& scheme, int min_score,
                                         std::size_t max_count) {
  const DpMatrix a = sw_fill(s, t, scheme, nullptr);

  // Collect end cells that are local maxima of the score landscape.
  struct End {
    int score;
    std::size_t i, j;
  };
  std::vector<End> ends;
  for (std::size_t i = 1; i < a.rows(); ++i) {
    for (std::size_t j = 1; j < a.cols(); ++j) {
      const int v = a.at(i, j);
      if (v < min_score) continue;
      // A cell is an alignment end if no neighbour extends it profitably.
      const bool extendable =
          (i + 1 < a.rows() && a.at(i + 1, j) > v) ||
          (j + 1 < a.cols() && a.at(i, j + 1) > v) ||
          (i + 1 < a.rows() && j + 1 < a.cols() && a.at(i + 1, j + 1) > v);
      if (!extendable) ends.push_back(End{v, i, j});
    }
  }
  std::sort(ends.begin(), ends.end(), [](const End& x, const End& y) {
    if (x.score != y.score) return x.score > y.score;
    if (x.i != y.i) return x.i < y.i;
    return x.j < y.j;
  });

  std::vector<Alignment> out;
  for (const End& e : ends) {
    if (out.size() >= max_count) break;
    Alignment al = sw_traceback(a, s, t, scheme, e.i, e.j);
    const bool overlaps = std::any_of(
        out.begin(), out.end(), [&](const Alignment& prev) {
          const bool s_disjoint =
              al.s_end() <= prev.s_begin || prev.s_end() <= al.s_begin;
          const bool t_disjoint =
              al.t_end() <= prev.t_begin || prev.t_end() <= al.t_begin;
          return !(s_disjoint || t_disjoint);
        });
    if (!overlaps) out.push_back(std::move(al));
  }
  return out;
}

}  // namespace gdsm
