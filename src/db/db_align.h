// Shard placement and the filtered database scan over the DSM cluster.
//
// plan_shards assigns fragments to nodes balancing resident bases;
// DbShards materializes that plan in cluster global memory — one per-node
// arena homed at its owner, seeded once with host_write and kept warm
// across jobs with retain_range (the PR 3 subject-residency machinery,
// extended from one subject to a sharded database).  db_query then runs
// one SPMD job per query: node 0 publishes the query into shared memory,
// every node aligns the filtration survivors resident in *its* shard with
// the SIMD-dispatched score kernels (local home reads — sharding is the
// data-locality play), the per-fragment results travel back through shared
// memory (diffs to home at the barrier, so the run exercises the comm
// plane and fault plans like every other strategy), and the host assembles
// the hit list.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "db/subject_db.h"
#include "dsm/cluster.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm::db {

struct ShardPlan {
  int nodes = 0;
  std::vector<int> owner;                 ///< per fragment id: owning node
  std::vector<std::uint64_t> node_bases;  ///< resident bases per node
};

/// Greedy least-loaded assignment of fragments to `nodes` nodes, balancing
/// resident bases (fragments are near-uniform, so this is near-perfect).
ShardPlan plan_shards(const SubjectDb& db, int nodes);

/// The database resident in cluster DSM.  Construct between jobs (load
/// time): allocates one arena per node, seeds it, and retains the range so
/// the shard survives end-of-job cache sweeps.
class DbShards {
 public:
  DbShards() = default;
  DbShards(dsm::Cluster& cluster, const SubjectDb& db);

  const ShardPlan& plan() const noexcept { return plan_; }
  bool empty() const noexcept { return plan_.owner.empty(); }

  dsm::GlobalAddr fragment_addr(std::uint32_t id) const {
    return arena_[static_cast<std::size_t>(plan_.owner[id])] +
           frag_offset_[id];
  }

 private:
  ShardPlan plan_;
  std::vector<dsm::GlobalAddr> arena_;    ///< per node
  std::vector<std::size_t> frag_offset_;  ///< per fragment, within its arena
};

/// One database hit: a fragment whose best local score reached min_score.
struct DbHit {
  std::uint32_t fragment = 0;
  std::uint32_t seq_index = 0;  ///< fragment's sequence in the SubjectDb
  std::uint32_t begin = 0;      ///< fragment start within that sequence
  int score = 0;
  std::uint32_t end_i = 0;  ///< 1-based end of the hit in the query
  std::uint32_t end_j = 0;  ///< 1-based end of the hit in the fragment

  friend bool operator==(const DbHit&, const DbHit&) = default;
};

struct DbQueryResult {
  std::vector<DbHit> hits;  ///< score descending, then fragment ascending
  std::size_t fragments_scanned = 0;
  std::size_t fragments_rejected = 0;
  std::size_t fragments_aligned = 0;   ///< candidates that ran full DP
  std::size_t fragments_resolved = 0;  ///< certified by the cascade, no DP
  CascadeCounters cascade;             ///< funnel counters of this query
  std::uint64_t cache_hits = 0;        ///< DSM residency counters of the job
  std::uint64_t read_faults = 0;
};

/// Filter + shard-parallel scan.  `min_score` must be >= 1 (hits carry
/// positive scores; the filtration bound thresholds against it).  The hit
/// set is exact: identical to brute_force_hits on the same inputs.
DbQueryResult db_query(dsm::Cluster& cluster, const SubjectDb& db,
                       const DbShards& shards, const Sequence& query,
                       const ScoreScheme& scheme, int min_score);

/// The serial all-pairs reference: aligns the query against EVERY fragment
/// with no filtration, no cluster and no shared memory.  db_query must
/// match it hit-for-hit (tests/db_test.cpp).
std::vector<DbHit> brute_force_hits(const SubjectDb& db, const Sequence& query,
                                    const ScoreScheme& scheme, int min_score);

}  // namespace gdsm::db
