#include "db/cascade.h"

#include <algorithm>
#include <limits>

#include "blast/blastn.h"

namespace gdsm::db {
namespace {

constexpr int kNeg = std::numeric_limits<int>::min() / 4;

/// Extension budget per candidate.  Runs are tried longest-first, so only
/// pathological seed soups hit the cap — and a missed extension merely
/// forwards the candidate to full DP, never drops it.
constexpr std::size_t kMaxExtensions = 4;

}  // namespace

CascadeOutcome cascade_try_resolve(const Sequence& query, const Base* frag,
                                   std::size_t frag_len,
                                   const ScoreScheme& scheme, int exact_bound,
                                   int no_seed_bound, std::size_t q,
                                   CascadeScratch& scratch) {
  CascadeOutcome out;
  const std::size_t m = query.size();
  const std::size_t n = frag_len;
  // Certification needs real penalties (the band-width argument divides by
  // -gap) and a strict U > B0 (which forces a >= q match run into every
  // optimal alignment).  Anything else forwards to full DP.
  if (scheme.match <= 0 || scheme.mismatch >= 0 || scheme.gap >= 0 ||
      scheme.gap_open > 0 || exact_bound <= no_seed_bound ||
      scratch.pairs.empty() || m == 0 || n == 0) {
    return out;
  }
  const int a = scheme.match;

  blast::chain_seed_runs(scratch.pairs.data(), scratch.pairs.size(),
                         static_cast<int>(q), scratch.runs,
                         scratch.sort_scratch);
  out.chains = static_cast<std::uint32_t>(scratch.runs.size());
  if (scratch.runs.empty()) return out;

  // Stage A: X-drop-extend the longest runs.  The drop is set past any
  // reachable score, so each extension is the maximal-scoring segment on
  // its diagonal — its score is a realizable alignment score, hence
  // ext <= true score <= U.  The higher the best extension, the narrower
  // the certified band below, so runs are tried longest-first and the loop
  // stops early once ext can no longer improve (it is capped by U).
  std::sort(scratch.runs.begin(), scratch.runs.end(),
            [](const blast::SeedRun& x, const blast::SeedRun& y) {
              if (x.length() != y.length()) return x.length() > y.length();
              if (x.diagonal != y.diagonal) return x.diagonal < y.diagonal;
              return x.q_begin < y.q_begin;
            });
  const int xdrop = a * static_cast<int>(std::min(m, n)) + 1;
  int best_ext = 0;
  const std::size_t n_ext = std::min(scratch.runs.size(), kMaxExtensions);
  for (std::size_t r = 0; r < n_ext; ++r) {
    const blast::SeedRun& run = scratch.runs[r];
    const blast::UngappedSegment seg = blast::extend_ungapped_xdrop(
        query.data(), m, frag, n, run.q_begin, run.s_begin, run.length(), a,
        scheme.mismatch, xdrop);
    ++out.extensions;
    best_ext = std::max(best_ext, seg.score);
    if (best_ext >= exact_bound) break;
  }
  // The certificate needs ext > B0 strictly: every alignment scoring above
  // ext then contains a >= q match run (else the no-seed bound would cap
  // it at B0 < ext) and so passes through one of the gathered seeds.
  if (best_ext <= no_seed_bound) return out;

  // Stage B: certified banded DP.  Any alignment scoring >= ext carries at
  // most g_max = (a*min(m,n) - ext) / (-gap) gap columns, so it stays
  // within g_max diagonals of the seed run it passes through.  The
  // restricted DP over the union of those bands therefore sees every
  // alignment that could beat its own maximum R (R >= ext because the
  // extension segment itself lies in-band): the full-matrix best score IS
  // R, and the full matrix's score-R cells are exactly the restricted
  // matrix's (cascade.h), making the tie-broken end cell canonical.
  const std::int64_t g_max =
      (static_cast<std::int64_t>(a) *
           static_cast<std::int64_t>(std::min(m, n)) -
       best_ext) /
      (-scheme.gap);
  const std::int64_t d_min = 1 - static_cast<std::int64_t>(m);
  const std::int64_t d_max = static_cast<std::int64_t>(n) - 1;
  scratch.bands.clear();
  const auto im = static_cast<std::int64_t>(m);
  const auto in = static_cast<std::int64_t>(n);
  for (const blast::SeedRun& run : scratch.runs) {
    // Matrix-extent prune: an alignment confined to diagonals
    // [d - g_max, d + g_max] makes at most min(m, n, m + d + g, n - d + g)
    // diagonal steps, so if a * that < ext no alignment scoring >= ext
    // passes through this run's diagonal — no band needed around it.
    // Stray single-seed runs off the homology diagonal would otherwise
    // scatter bands across the matrix and trip the width budget below.
    const std::int64_t d = run.diagonal;
    const std::int64_t reach = std::min(
        std::min(im, in), std::min(im + d + g_max, in - d + g_max));
    if (a * reach < best_ext) continue;
    scratch.bands.emplace_back(std::max(d_min, d - g_max),
                               std::min(d_max, d + g_max));
  }
  if (scratch.bands.empty()) return out;
  std::sort(scratch.bands.begin(), scratch.bands.end());
  std::size_t nb = 0;
  for (const auto& [lo, hi] : scratch.bands) {
    // Merge bands closer than 3 diagonals: the row DP below zeroes the one
    // cell past each band's right edge, and a >= 3-diagonal gap guarantees
    // that cell never aliases a neighbouring band's live cells.
    if (nb > 0 && lo <= scratch.bands[nb - 1].second + 2) {
      scratch.bands[nb - 1].second =
          std::max(scratch.bands[nb - 1].second, hi);
    } else {
      scratch.bands[nb++] = {lo, hi};
    }
  }
  scratch.bands.resize(nb);

  // Cost guard: the certificate is only a win while the band union is a
  // small slice of the matrix.  Low-scoring extensions over seed soups
  // (tandem repeats) widen g_max until the "restricted" DP approaches the
  // full matrix — at that point the SIMD cluster path is cheaper, so
  // forward instead.  Correctness is unaffected either way.
  std::int64_t total_width = 0;
  for (const auto& [lo, hi] : scratch.bands) total_width += hi - lo + 1;
  const auto width_budget = std::max<std::int64_t>(
      64, static_cast<std::int64_t>(n) / 4);
  if (total_width > width_budget) return out;

  // Restricted row DP (linear or Gotoh), outside cells H = 0 / E,F = -inf.
  // Tie-break must replicate sw_best_score_linear: the kernel scans the
  // longer sequence on rows, so ties resolve by (end_j, end_i) when the
  // fragment is longer and (end_i, end_j) otherwise.
  const bool affine = scheme.affine();
  const bool transpose = n > m;
  scratch.h.assign(n + 2, 0);
  scratch.f.assign(n + 2, kNeg);
  int* h = scratch.h.data();
  int* f = scratch.f.data();
  int best = 0;
  std::size_t bi = 0, bj = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    const Base qb = query[i - 1];
    for (const auto& [dlo, dhi] : scratch.bands) {
      const std::int64_t ii = static_cast<std::int64_t>(i);
      if (dlo + ii > static_cast<std::int64_t>(n)) continue;  // band exited
      if (dhi + ii < 1) continue;  // band not yet entered
      const std::size_t jlo =
          static_cast<std::size_t>(std::max<std::int64_t>(1, dlo + ii));
      const std::size_t jhi = static_cast<std::size_t>(
          std::min<std::int64_t>(static_cast<std::int64_t>(n), dhi + ii));
      if (dhi + ii == 1) {
        // First row this band touches: the up-neighbours are outside cells
        // of the previous row, which an earlier band may have dirtied.
        for (std::size_t j = jlo; j <= jhi; ++j) {
          h[j] = 0;
          f[j] = kNeg;
        }
      }
      int diag = h[jlo - 1];  // H(i-1, jlo-1); outside/border reads 0
      int left = 0;           // H(i, jlo-1) is outside the band
      int e = kNeg;           // E(i, jlo-1)
      for (std::size_t j = jlo; j <= jhi; ++j) {
        const int up = h[j];
        const int sub = scheme.substitution(qb, frag[j - 1]);
        int score;
        if (affine) {
          f[j] = std::max(f[j] + scheme.gap,
                          up + scheme.gap_open + scheme.gap);
          e = std::max(e + scheme.gap, left + scheme.gap_open + scheme.gap);
          score = std::max({0, diag + sub, e, f[j]});
        } else {
          score = std::max({0, diag + sub, up + scheme.gap,
                            left + scheme.gap});
        }
        h[j] = score;
        diag = up;
        left = score;
        if (score > best) {
          best = score;
          bi = i;
          bj = j;
        } else if (score == best && best > 0) {
          const bool wins = transpose
                                ? (j < bj || (j == bj && i < bi))
                                : (i < bi || (i == bi && j < bj));
          if (wins) {
            bi = i;
            bj = j;
          }
        }
      }
      h[jhi + 1] = 0;  // outside cell next row's right edge reads as "up"
      f[jhi + 1] = kNeg;
    }
  }
  // The extension segment lies on a seed diagonal inside the band, so the
  // restricted maximum can never fall below it; anything else means the
  // certificate's preconditions were violated — forward to full DP.
  if (best < best_ext) return out;

  out.resolved = true;
  out.score = best;
  out.end_i = static_cast<std::uint32_t>(bi);
  out.end_j = static_cast<std::uint32_t>(bj);
  return out;
}

}  // namespace gdsm::db
