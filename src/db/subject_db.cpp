#include "db/subject_db.h"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>
#include <string>

#include "blast/words.h"
#include "db/bound_batch.h"

namespace gdsm::db {
namespace {

DbConfig normalize(DbConfig cfg) {
  if (cfg.fragment_len < 16) cfg.fragment_len = 16;
  cfg.q = std::clamp<std::size_t>(cfg.q, 2, 15);
  if (cfg.overlap >= cfg.fragment_len) cfg.overlap = cfg.fragment_len / 2;
  return cfg;
}

constexpr int kNeg = -(1 << 28);

/// Allocation-free core of seeded_run_bound (q is pre-clamped to <= 15, so
/// the state vector fits a fixed array): the hot path runs this once per
/// seeded fragment per query.
///
/// `stop_at` enables the scan's decision-preserving early exits: the filter
/// only compares the bound against min_score, so the DP may return as soon
/// as the comparison is settled.  Accept-exit returns the running best once
/// it reaches stop_at (a lower bound on the exact value, already >=
/// min_score); reject-exit returns vmax + a*(m-j) (an upper bound on the
/// exact value — every remaining column adds at most `a` to any state —
/// already < min_score).  Either way the survivor set is byte-identical to
/// the exact DP's.  Pass INT_MAX (the default) for the exact bound.
/// The DP loop, templated on the q-gram length: QF != 0 bakes q into the
/// type so the state vector lives in registers and the per-column r-loops
/// fully unroll (the hot q = 5 path runs ~2-3x faster than the
/// runtime-q loop); QF == 0 is the generic fallback reading q_rt.
template <std::size_t QF>
int seeded_bound_core(std::size_t m, const char* seed, std::size_t windows,
                      int a, int p, std::size_t q_rt, int stop_at) {
  const std::size_t q = QF != 0 ? QF : q_rt;
  // INT_MAX disables both exits (ceiling < INT_MAX would otherwise fire on
  // every column and return the trivial a*m cap instead of the exact DP).
  const bool bounded = stop_at != std::numeric_limits<int>::max();

  // v[r]: best score of a partial assignment whose current match run has
  // length r (capped at q-1; the cap state also stands for runs >= q,
  // which may only extend across seeded windows).
  std::array<int, QF != 0 ? QF : 16> v;
  v.fill(kNeg);
  v[0] = 0;
  int best = 0;
  for (std::size_t j = 0; j < m; ++j) {
    // vmax is the running optimum over all states, i.e. the best score over
    // every j-column prefix — tracking it here replaces a per-column
    // reduction over the updated states (the final column is folded in
    // after the loop).
    int vmax = v[0];
    for (std::size_t r = 1; r < q; ++r) vmax = std::max(vmax, v[r]);
    best = std::max(best, vmax);
    if (bounded) {
      if (best >= stop_at) return best;
      const int ceiling =
          vmax + a * static_cast<int>(m - j);  // every column adds <= a
      if (ceiling < stop_at) return std::max(best, ceiling);
    }
    // Match extending a run to length >= q completes the q-window starting
    // at j-q+1, which must then be a seed (an exact occurrence).
    const bool seeded =
        seed != nullptr && j + 1 >= q && j + 1 - q < windows && seed[j + 1 - q];
    const int cap_ext = seeded ? v[q - 1] + a : kNeg;
    // Match extending a short run (no complete q-window yet): an in-place
    // downward shift of the state vector.
    for (std::size_t r = q - 1; r >= 1; --r) v[r] = v[r - 1] + a;
    v[q - 1] = std::max(v[q - 1], cap_ext);
    // Interposed subject-only gap: pay p without consuming a query
    // position, resetting the run, then match j.
    v[1] = std::max(v[1], vmax - p + a);
    // Error column at j, or a fresh local start.
    v[0] = std::max(0, vmax - p);
  }
  for (std::size_t r = 0; r < q; ++r) best = std::max(best, v[r]);
  return best;
}

int seeded_bound_impl(std::size_t m, const char* seed, std::size_t windows,
                      const ScoreScheme& scheme, std::size_t q,
                      int stop_at = std::numeric_limits<int>::max()) {
  const int a = scheme.match;
  if (a <= 0 || m == 0) return 0;  // no positive column -> local score 0
  // Every error column (mismatch, or any gap column: a gap run costs at
  // least `gap` per column even under affine, gap_open being a surcharge)
  // costs at least p.  Degenerate non-negative penalties disable the
  // filter rather than break it: p = 0 makes the bound a * m.
  const int p = std::max(0, std::min(-scheme.mismatch, -scheme.gap));
  switch (q) {  // fixed-q instantiations for the common index widths
    case 4: return seeded_bound_core<4>(m, seed, windows, a, p, q, stop_at);
    case 5: return seeded_bound_core<5>(m, seed, windows, a, p, q, stop_at);
    case 6: return seeded_bound_core<6>(m, seed, windows, a, p, q, stop_at);
    case 7: return seeded_bound_core<7>(m, seed, windows, a, p, q, stop_at);
    default: return seeded_bound_core<0>(m, seed, windows, a, p, q, stop_at);
  }
}

}  // namespace

void SubjectDb::build_fragments() {
  const std::size_t step = cfg_.fragment_len - cfg_.overlap;
  for (std::size_t s = 0; s < seqs_.size(); ++s) {
    const std::size_t n = seqs_[s].size();
    total_bases_ += n;
    for (std::size_t begin = 0; begin < n; begin += step) {
      Fragment f;
      f.id = static_cast<std::uint32_t>(fragments_.size());
      f.seq_index = static_cast<std::uint32_t>(s);
      f.begin = static_cast<std::uint32_t>(begin);
      f.end = static_cast<std::uint32_t>(
          std::min(n, begin + cfg_.fragment_len));
      fragments_.push_back(f);
      if (f.end == n) break;
    }
  }
}

QGramIndex::Geometry SubjectDb::geometry() const {
  QGramIndex::Geometry g;
  g.q = static_cast<std::uint32_t>(cfg_.q);
  g.fragment_len = cfg_.fragment_len;
  g.overlap = cfg_.overlap;
  g.n_fragments = fragments_.size();
  g.checksum = db_content_checksum(seqs_);
  return g;
}

SubjectDb::SubjectDb(std::vector<Sequence> seqs, DbConfig cfg)
    : cfg_(normalize(cfg)), seqs_(std::move(seqs)) {
  build_fragments();
  std::vector<QGramIndex::FragmentView> views;
  views.reserve(fragments_.size());
  for (const Fragment& f : fragments_) {
    views.push_back(QGramIndex::FragmentView{
        seqs_[f.seq_index].data() + f.begin,
        static_cast<std::size_t>(f.end - f.begin)});
  }
  index_ = QGramIndex::build(views, geometry());
}

SubjectDb SubjectDb::open_index(std::vector<Sequence> seqs,
                                const std::string& path, DbConfig cfg) {
  SubjectDb db;
  db.cfg_ = normalize(cfg);
  db.seqs_ = std::move(seqs);
  db.build_fragments();
  db.index_ = QGramIndex::open(path, db.geometry());
  return db;
}

void SubjectDb::save_index(const std::string& path) const {
  index_.save(path);
}

Sequence SubjectDb::fragment_seq(std::uint32_t id) const {
  if (id >= fragments_.size()) {
    throw std::out_of_range("SubjectDb::fragment_seq: bad fragment id");
  }
  const Fragment& f = fragments_[id];
  Sequence frag = seqs_[f.seq_index].slice(f.begin, f.end);
  frag.set_name(seqs_[f.seq_index].name() + "#" + std::to_string(id));
  return frag;
}

int seeded_run_bound(std::size_t m, const std::vector<char>& seed,
                     const ScoreScheme& scheme, std::size_t q) {
  q = std::clamp<std::size_t>(q, 2, 15);
  return seeded_bound_impl(m, seed.empty() ? nullptr : seed.data(),
                           seed.size(), scheme, q);
}

int qgram_score_bound(const Sequence& a, const Sequence& b,
                      const ScoreScheme& scheme, std::size_t q) {
  q = std::clamp<std::size_t>(q, 2, 15);
  const std::size_t m = a.size();
  std::vector<char> seed;
  if (m >= q && !b.empty()) {
    const blast::WordIndex index(b, static_cast<int>(q));
    seed.assign(m - q + 1, 0);
    for (std::size_t i = 0; i + q <= m; ++i) {
      std::uint32_t code;
      if (blast::pack_word(a, i, static_cast<int>(q), &code) &&
          index.contains(code)) {
        seed[i] = 1;
      }
    }
  }
  return seeded_run_bound(m, seed, scheme, q);
}

void SubjectDb::scan_impl(const Sequence& query, const ScoreScheme& scheme,
                          int min_score, bool cascade, ScanResult& out) const {
  out.scanned = fragments_.size();
  const std::size_t m = query.size();
  const std::size_t q = cfg_.q;
  const std::size_t windows = m >= q ? m - q + 1 : 0;

  // Output-sensitive seed gather off the positional index: one lookup per
  // query window, one tuple per exact (window, fragment, position)
  // co-occurrence.  Grouping by fragment is a counting sort — a comparator
  // sort over the ~1k tuples a 150 bp probe pulls from even a small db was
  // the single hottest piece of the scan.  The window loop emits tuples in
  // ascending q_pos, and the stable scatter keeps that order per fragment.
  struct Occ {
    std::uint32_t frag, q_pos, s_pos;
  };
  static thread_local std::vector<Occ> gathered, occs;
  static thread_local std::vector<std::uint32_t> frag_start;
  gathered.clear();
  for (std::size_t i = 0; i < windows; ++i) {
    std::uint32_t code;
    if (!blast::pack_word(query, i, static_cast<int>(q), &code)) continue;
    for (const QGramIndex::Entry& e : index_.lookup(code)) {
      gathered.push_back(Occ{e.fragment, static_cast<std::uint32_t>(i), e.pos});
    }
  }
  frag_start.assign(fragments_.size() + 1, 0);
  for (const Occ& o : gathered) ++frag_start[o.frag + 1];
  for (std::size_t f = 1; f <= fragments_.size(); ++f) {
    frag_start[f] += frag_start[f - 1];
  }
  occs.resize(gathered.size());
  {
    static thread_local std::vector<std::uint32_t> cursor;
    cursor.assign(frag_start.begin(), frag_start.end() - 1);
    for (const Occ& o : gathered) occs[cursor[o.frag]++] = o;
  }

  const int a = scheme.match;
  const int p = std::max(0, std::min(-scheme.mismatch, -scheme.gap));
  // Fragments sharing no query q-gram all get the same (cheapest possible)
  // bound; it is computed once.
  const int no_seed_bound = seeded_bound_impl(m, nullptr, 0, scheme, q);
  const bool no_seed_pass = no_seed_bound >= min_score;

  // Two bound evaluators with byte-identical accept/reject decisions
  // (bound_batch.h): the batch path runs the DP for 8 candidates per AVX2
  // vector and yields exact bounds; the scalar path runs it per fragment
  // with decision-preserving early exits.  Exact vs truncated bounds only
  // reach the cascade's conservative gates, so the hit set is unchanged —
  // the differential test forces GDSM_DB_BOUND=scalar to check.
  if (bound_batch_available() && a > 0) {
    // Pass 1: classify every fragment off the grouped tuples alone.  The
    // occurrences of one fragment arrive in ascending q_pos (the window
    // loop emits them sorted and the counting scatter is stable), so the
    // prefilter's distinct-window count is a run count, no flag scratch.
    enum : std::uint8_t { kReject, kForward, kNeedDp };
    static thread_local std::vector<std::uint8_t> verdict;
    static thread_local std::vector<std::uint32_t> cand;
    verdict.assign(fragments_.size(), kReject);
    cand.clear();
    for (const Fragment& f : fragments_) {
      const std::size_t group = frag_start[f.id];
      const std::size_t oi = frag_start[f.id + 1];
      if (oi == group) {  // no seeds: shared bound, no DP
        if (no_seed_pass) verdict[f.id] = kForward;
        continue;
      }
      std::size_t distinct = 0;
      for (std::size_t k = group; k < oi; ++k) {
        if (k == group || occs[k].q_pos != occs[k - 1].q_pos) ++distinct;
      }
      // Same O(1) admissible prefilter as the scalar path below.
      const long long prefilter = std::min<long long>(
          static_cast<long long>(a) * static_cast<long long>(m),
          static_cast<long long>(no_seed_bound) +
              static_cast<long long>(distinct) * (a + p));
      if (prefilter < min_score) continue;
      verdict[f.id] = kNeedDp;
      cand.push_back(f.id);
    }

    // Pass 2: exact bounds for all DP candidates, 8 per vector, chunked so
    // the transposed flag matrix stays cache-resident (m * 512 bytes).
    constexpr std::size_t kChunk = 512;
    static thread_local std::vector<std::uint8_t> flags_t;
    static thread_local std::vector<std::int32_t> bounds;
    bounds.assign((cand.size() + 7) & ~std::size_t{7}, 0);
    for (std::size_t base = 0; base < cand.size(); base += kChunk) {
      const std::size_t n = std::min(kChunk, cand.size() - base);
      const std::size_t stride = (n + 7) & ~std::size_t{7};
      flags_t.assign(windows * stride, 0);
      for (std::size_t c = 0; c < n; ++c) {
        const std::uint32_t f = cand[base + c];
        for (std::size_t k = frag_start[f]; k < frag_start[f + 1]; ++k) {
          flags_t[occs[k].q_pos * stride + c] = 1;
        }
      }
      seeded_bound_batch(m, flags_t.data(), windows, stride, n, a, p, q,
                         bounds.data() + base);
    }

    // Pass 3, in fragment order so forwarded ids come out ascending exactly
    // as the scalar loop emits them: apply verdicts, run the cascade on the
    // survivors.
    static thread_local CascadeScratch scratch;
    std::size_t ci = 0;
    for (const Fragment& f : fragments_) {
      if (verdict[f.id] == kForward) {
        out.forwarded.push_back(f.id);
        continue;
      }
      if (verdict[f.id] == kReject) {
        ++out.rejected;
        continue;
      }
      const int bound = bounds[ci++];
      if (bound < min_score) {
        ++out.rejected;
        continue;
      }
      if (!cascade) {
        out.forwarded.push_back(f.id);
        continue;
      }
      const std::size_t group = frag_start[f.id];
      const std::size_t oi = frag_start[f.id + 1];
      out.cascade.seeds += oi - group;
      scratch.pairs.clear();
      for (std::size_t k = group; k < oi; ++k) {
        scratch.pairs.push_back(blast::SeedPair{occs[k].q_pos, occs[k].s_pos});
      }
      const CascadeOutcome r = cascade_try_resolve(
          query, seqs_[f.seq_index].data() + f.begin,
          static_cast<std::size_t>(f.end - f.begin), scheme, bound,
          no_seed_bound, q, scratch);
      out.cascade.chains += r.chains;
      out.cascade.extensions += r.extensions;
      if (r.resolved) {
        ++out.cascade.dp_skipped_by_bound;
        if (r.score >= min_score) {
          out.resolved.push_back(ScanHit{f.id, r.score, r.end_i, r.end_j});
        }
      } else {
        out.forwarded.push_back(f.id);
      }
    }
    return;
  }

  static thread_local std::vector<char> flags;
  flags.assign(windows, 0);
  static thread_local CascadeScratch scratch;
  for (const Fragment& f : fragments_) {
    const std::size_t group = frag_start[f.id];
    const std::size_t oi = frag_start[f.id + 1];
    if (oi == group) {  // no seeds: shared bound, no DP
      if (no_seed_pass) {
        out.forwarded.push_back(f.id);
      } else {
        ++out.rejected;
      }
      continue;
    }

    std::size_t distinct = 0;
    for (std::size_t k = group; k < oi; ++k) {
      if (flags[occs[k].q_pos] == 0) {
        flags[occs[k].q_pos] = 1;
        ++distinct;
      }
    }
    // O(1) prefilter, admissible against the exact bound U itself: U <= a*m
    // (each DP column adds at most `a`) and U <= B0 + |S|*(a+p) (un-seeding
    // a window converts at most one of U's run-extending matches into an
    // error, a swing of a+p).  Prefilter rejection therefore implies exact
    // rejection: the survivor set stays byte-identical to the exact DP's.
    const long long prefilter = std::min<long long>(
        static_cast<long long>(a) * static_cast<long long>(m),
        static_cast<long long>(no_seed_bound) +
            static_cast<long long>(distinct) * (a + p));
    int bound = std::numeric_limits<int>::min();
    if (a > 0 && prefilter >= min_score) {
      // Early-exit the DP the moment the accept/reject decision is
      // settled (see seeded_bound_impl).  The accept side stops past
      // B0 + 1, not min_score alone: a survivor's truncated bound is the
      // cascade's exact_bound, and its U > B0 entry gate must see the same
      // verdict the exact bound would give (exact >= truncated >= B0 + 1
      // whenever the exit fired).  Both gates only ever use the value
      // conservatively, so the hit set is unchanged.
      const int stop_at = std::max(min_score, no_seed_bound + 1);
      bound = seeded_bound_impl(m, flags.data(), windows, scheme, q,
                                stop_at);
    } else if (a <= 0) {
      bound = 0;  // seeded_run_bound's degenerate-scheme value
    }
    for (std::size_t k = group; k < oi; ++k) flags[occs[k].q_pos] = 0;
    if (bound < min_score) {
      ++out.rejected;
      continue;
    }

    if (!cascade) {
      out.forwarded.push_back(f.id);
      continue;
    }
    out.cascade.seeds += oi - group;
    scratch.pairs.clear();
    for (std::size_t k = group; k < oi; ++k) {
      scratch.pairs.push_back(blast::SeedPair{occs[k].q_pos, occs[k].s_pos});
    }
    const CascadeOutcome r = cascade_try_resolve(
        query, seqs_[f.seq_index].data() + f.begin,
        static_cast<std::size_t>(f.end - f.begin), scheme, bound,
        no_seed_bound, q, scratch);
    out.cascade.chains += r.chains;
    out.cascade.extensions += r.extensions;
    if (r.resolved) {
      // The cascade's score is exact, so a sub-threshold resolution is a
      // certified non-hit: the candidate is dropped without any full DP.
      ++out.cascade.dp_skipped_by_bound;
      if (r.score >= min_score) {
        out.resolved.push_back(ScanHit{f.id, r.score, r.end_i, r.end_j});
      }
    } else {
      out.forwarded.push_back(f.id);
    }
  }
}

SubjectDb::Filtration SubjectDb::filter(const Sequence& query,
                                        const ScoreScheme& scheme,
                                        int min_score) const {
  ScanResult r;
  scan_impl(query, scheme, min_score, /*cascade=*/false, r);
  Filtration out;
  out.scanned = r.scanned;
  out.rejected = r.rejected;
  out.survivors = std::move(r.forwarded);
  return out;
}

SubjectDb::ScanResult SubjectDb::scan(const Sequence& query,
                                      const ScoreScheme& scheme,
                                      int min_score) const {
  ScanResult out;
  scan_impl(query, scheme, min_score, cfg_.cascade, out);
  return out;
}

int SubjectDb::score_bound(const Sequence& query, std::uint32_t fragment,
                           const ScoreScheme& scheme) const {
  return qgram_score_bound(query, fragment_seq(fragment), scheme, cfg_.q);
}

}  // namespace gdsm::db
