#include "db/subject_db.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "blast/words.h"

namespace gdsm::db {
namespace {

DbConfig normalize(DbConfig cfg) {
  if (cfg.fragment_len < 16) cfg.fragment_len = 16;
  cfg.q = std::clamp<std::size_t>(cfg.q, 2, 15);
  if (cfg.overlap >= cfg.fragment_len) cfg.overlap = cfg.fragment_len / 2;
  return cfg;
}

}  // namespace

SubjectDb::SubjectDb(std::vector<Sequence> seqs, DbConfig cfg)
    : cfg_(normalize(cfg)), seqs_(std::move(seqs)) {
  const std::size_t step = cfg_.fragment_len - cfg_.overlap;
  for (std::size_t s = 0; s < seqs_.size(); ++s) {
    const std::size_t n = seqs_[s].size();
    total_bases_ += n;
    for (std::size_t begin = 0; begin < n; begin += step) {
      Fragment f;
      f.id = static_cast<std::uint32_t>(fragments_.size());
      f.seq_index = static_cast<std::uint32_t>(s);
      f.begin = static_cast<std::uint32_t>(begin);
      f.end = static_cast<std::uint32_t>(
          std::min(n, begin + cfg_.fragment_len));
      fragments_.push_back(f);
      if (f.end == n) break;
    }
  }
  // Posting index: fragment ids are appended in ascending order, so every
  // list ends up sorted and distinct without a separate pass.
  const int q = static_cast<int>(cfg_.q);
  for (const Fragment& f : fragments_) {
    const blast::WordIndex index(
        seqs_[f.seq_index].slice(f.begin, f.end), q);
    for (const std::uint32_t code : index.codes()) {
      std::vector<std::uint32_t>& list = postings_[code];
      if (list.empty() || list.back() != f.id) list.push_back(f.id);
    }
  }
}

Sequence SubjectDb::fragment_seq(std::uint32_t id) const {
  if (id >= fragments_.size()) {
    throw std::out_of_range("SubjectDb::fragment_seq: bad fragment id");
  }
  const Fragment& f = fragments_[id];
  Sequence frag = seqs_[f.seq_index].slice(f.begin, f.end);
  frag.set_name(seqs_[f.seq_index].name() + "#" + std::to_string(id));
  return frag;
}

int seeded_run_bound(std::size_t m, const std::vector<char>& seed,
                     const ScoreScheme& scheme, std::size_t q) {
  const int a = scheme.match;
  if (a <= 0 || m == 0) return 0;  // no positive column -> local score 0
  q = std::clamp<std::size_t>(q, 2, 15);
  // Every error column (mismatch, or any gap column: a gap run costs at
  // least `gap` per column even under affine, gap_open being a surcharge)
  // costs at least p.  Degenerate non-negative penalties disable the
  // filter rather than break it: p = 0 makes the bound a * m.
  const int p =
      std::max(0, std::min(-scheme.mismatch, -scheme.gap));
  const std::size_t windows = m >= q ? m - q + 1 : 0;

  // v[r]: best score of a partial assignment whose current match run has
  // length r (capped at q-1; the cap state also stands for runs >= q,
  // which may only extend across seeded windows).
  constexpr int kNeg = -(1 << 28);
  std::vector<int> v(q, kNeg), nv(q);
  v[0] = 0;
  int best = 0;
  for (std::size_t j = 0; j < m; ++j) {
    int vmax = v[0];
    for (std::size_t r = 1; r < q; ++r) vmax = std::max(vmax, v[r]);
    std::fill(nv.begin(), nv.end(), kNeg);
    // Error column at j, or a fresh local start.
    nv[0] = std::max(0, vmax - p);
    // Match extending a short run (no complete q-window yet).
    for (std::size_t r = 0; r + 1 < q; ++r) {
      if (v[r] > kNeg) nv[r + 1] = std::max(nv[r + 1], v[r] + a);
    }
    // Match extending a run to length >= q completes the q-window starting
    // at j-q+1, which must then be a seed (an exact occurrence).
    if (j + 1 >= q && j + 1 - q < windows &&
        (!seed.empty() && seed[j + 1 - q])) {
      if (v[q - 1] > kNeg) nv[q - 1] = std::max(nv[q - 1], v[q - 1] + a);
    }
    // Interposed subject-only gap: pay p without consuming a query
    // position, resetting the run, then match j.
    nv[1] = std::max(nv[1], vmax - p + a);
    v.swap(nv);
    for (std::size_t r = 0; r < q; ++r) best = std::max(best, v[r]);
  }
  return best;
}

int qgram_score_bound(const Sequence& a, const Sequence& b,
                      const ScoreScheme& scheme, std::size_t q) {
  q = std::clamp<std::size_t>(q, 2, 15);
  const std::size_t m = a.size();
  std::vector<char> seed;
  if (m >= q && !b.empty()) {
    const blast::WordIndex index(b, static_cast<int>(q));
    seed.assign(m - q + 1, 0);
    for (std::size_t i = 0; i + q <= m; ++i) {
      std::uint32_t code;
      if (blast::pack_word(a, i, static_cast<int>(q), &code) &&
          index.contains(code)) {
        seed[i] = 1;
      }
    }
  }
  return seeded_run_bound(m, seed, scheme, q);
}

SubjectDb::Filtration SubjectDb::filter(const Sequence& query,
                                        const ScoreScheme& scheme,
                                        int min_score) const {
  Filtration out;
  out.scanned = fragments_.size();
  const std::size_t m = query.size();
  const std::size_t q = cfg_.q;
  const std::size_t windows = m >= q ? m - q + 1 : 0;

  // Output-sensitive seed gather: one posting lookup per query window, one
  // append per (window, fragment) seed pair.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> seeds;
  for (std::size_t i = 0; i < windows; ++i) {
    std::uint32_t code;
    if (!blast::pack_word(query, i, static_cast<int>(q), &code)) continue;
    const auto it = postings_.find(code);
    if (it == postings_.end()) continue;
    for (const std::uint32_t f : it->second) {
      seeds[f].push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Fragments sharing no query q-gram all get the same (cheapest possible)
  // bound; it is computed once.
  const int no_seed_bound = seeded_run_bound(m, {}, scheme, q);
  std::vector<char> flags(windows, 0);
  for (const Fragment& f : fragments_) {
    int bound;
    const auto it = seeds.find(f.id);
    if (it == seeds.end()) {
      bound = no_seed_bound;
    } else {
      for (const std::uint32_t i : it->second) flags[i] = 1;
      bound = seeded_run_bound(m, flags, scheme, q);
      for (const std::uint32_t i : it->second) flags[i] = 0;
    }
    if (bound >= min_score) {
      out.survivors.push_back(f.id);
    } else {
      ++out.rejected;
    }
  }
  return out;
}

int SubjectDb::score_bound(const Sequence& query, std::uint32_t fragment,
                           const ScoreScheme& scheme) const {
  return qgram_score_bound(query, fragment_seq(fragment), scheme, cfg_.q);
}

}  // namespace gdsm::db
