#include "db/db_align.h"

#include <algorithm>
#include <stdexcept>

#include "db/meter.h"
#include "sw/linear_score.h"

namespace gdsm::db {
namespace {

BestLocal best_score(const Sequence& query, const Sequence& frag,
                     const ScoreScheme& scheme) {
  // Both gap models ride the dispatched kernel layer (an affine scheme
  // routes to the Gotoh kernels inside sw_best_score_linear), so filtration
  // survivors are scored by whatever backend is active — including the
  // striped query-profile kernels, for which the service pre-warms the
  // query's profile once per db query (simd::warm_query_profile).
  return sw_best_score_linear(query, frag, scheme);
}

void sort_hits(std::vector<DbHit>& hits) {
  std::sort(hits.begin(), hits.end(), [](const DbHit& a, const DbHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.fragment < b.fragment;
  });
}

}  // namespace

ShardPlan plan_shards(const SubjectDb& db, int nodes) {
  if (nodes < 1) nodes = 1;
  ShardPlan plan;
  plan.nodes = nodes;
  plan.node_bases.assign(static_cast<std::size_t>(nodes), 0);
  plan.owner.reserve(db.fragments().size());
  for (const Fragment& f : db.fragments()) {
    int lightest = 0;
    for (int n = 1; n < nodes; ++n) {
      if (plan.node_bases[static_cast<std::size_t>(n)] <
          plan.node_bases[static_cast<std::size_t>(lightest)]) {
        lightest = n;
      }
    }
    plan.owner.push_back(lightest);
    plan.node_bases[static_cast<std::size_t>(lightest)] += f.end - f.begin;
  }
  return plan;
}

DbShards::DbShards(dsm::Cluster& cluster, const SubjectDb& db) {
  plan_ = plan_shards(db, cluster.nodes());
  const std::size_t nodes = static_cast<std::size_t>(plan_.nodes);
  arena_.assign(nodes, 0);
  frag_offset_.assign(db.fragments().size(), 0);

  // Concatenate each node's fragments into one arena homed there, so a
  // node's scan reads only pages it homes (no protocol traffic on the
  // database itself — that is the point of sharding).
  std::vector<std::vector<std::byte>> arena_bytes(nodes);
  for (const Fragment& f : db.fragments()) {
    const auto node = static_cast<std::size_t>(plan_.owner[f.id]);
    frag_offset_[f.id] = arena_bytes[node].size();
    const Sequence& seq = db.sequences()[f.seq_index];
    const auto* raw = reinterpret_cast<const std::byte*>(seq.data() + f.begin);
    arena_bytes[node].insert(arena_bytes[node].end(), raw,
                             raw + (f.end - f.begin) * sizeof(Base));
  }
  for (std::size_t n = 0; n < nodes; ++n) {
    if (arena_bytes[n].empty()) continue;
    arena_[n] = cluster.alloc(arena_bytes[n].size(), static_cast<int>(n));
    cluster.host_write(arena_[n], arena_bytes[n].data(),
                       arena_bytes[n].size());
    cluster.retain_range(arena_[n], arena_bytes[n].size());
  }
  db_meter_record_shards(plan_.node_bases);
}

DbQueryResult db_query(dsm::Cluster& cluster, const SubjectDb& db,
                       const DbShards& shards, const Sequence& query,
                       const ScoreScheme& scheme, int min_score) {
  if (min_score < 1) {
    throw std::invalid_argument("db_query: min_score must be >= 1");
  }
  if (shards.plan().nodes != cluster.nodes()) {
    throw std::invalid_argument("db_query: shard plan size != cluster size");
  }
  if (shards.plan().owner.size() != db.fragments().size()) {
    throw std::invalid_argument("db_query: shard plan does not match db");
  }

  DbQueryResult out;
  SubjectDb::ScanResult scan = db.scan(query, scheme, min_score);
  out.fragments_scanned = scan.scanned;
  out.fragments_rejected = scan.rejected;
  out.fragments_aligned = scan.forwarded.size();
  out.fragments_resolved = scan.resolved.size();
  out.cascade = scan.cascade;

  // Certified candidates become hits directly: their score is exact and the
  // scan already dropped certified resolutions below min_score.
  for (const SubjectDb::ScanHit& r : scan.resolved) {
    const Fragment& f = db.fragments()[r.fragment];
    DbHit hit;
    hit.fragment = f.id;
    hit.seq_index = f.seq_index;
    hit.begin = f.begin;
    hit.score = r.score;
    hit.end_i = r.end_i;
    hit.end_j = r.end_j;
    out.hits.push_back(hit);
  }

  std::vector<std::uint64_t> per_node_aligned(
      static_cast<std::size_t>(cluster.nodes()), 0);

  const SubjectDb::Filtration filt{std::move(scan.forwarded), scan.scanned,
                                   scan.rejected};
  if (!filt.survivors.empty() && !query.empty() &&
      filt.survivors.size() <= db.config().direct_align_max) {
    // The cascade left too few candidates to amortize a cluster dispatch
    // (two barriers dominate a fragment or two of DP): align them in place
    // with the same dispatched kernel.  Hit-for-hit identical to the
    // cluster path — only the transport differs.
    for (const std::uint32_t fid : filt.survivors) {
      const BestLocal b = best_score(query, db.fragment_seq(fid), scheme);
      if (b.score < min_score) continue;
      ++out.cascade.dp_confirmed;
      const Fragment& f = db.fragments()[fid];
      DbHit hit;
      hit.fragment = f.id;
      hit.seq_index = f.seq_index;
      hit.begin = f.begin;
      hit.score = b.score;
      hit.end_i = static_cast<std::uint32_t>(b.end_i);
      hit.end_j = static_cast<std::uint32_t>(b.end_j);
      out.hits.push_back(hit);
    }
  } else if (!filt.survivors.empty() && !query.empty()) {
    const std::size_t m = query.size();
    const std::size_t query_bytes = m * sizeof(Base);
    // Fresh per-query scratch (the established per-dispatch idiom): the
    // query page(s) homed at node 0, one [score, end_i, end_j] triple per
    // survivor, also homed at node 0 where the gather runs.
    const dsm::GlobalAddr query_addr = cluster.alloc(query_bytes, 0);
    const dsm::GlobalAddr result_addr =
        cluster.alloc(filt.survivors.size() * 3 * sizeof(std::int32_t), 0);

    struct Work {
      std::uint32_t fragment;
      int owner;
      dsm::GlobalAddr addr;
      std::size_t len;
    };
    std::vector<Work> work;
    work.reserve(filt.survivors.size());
    for (const std::uint32_t fid : filt.survivors) {
      const Fragment& f = db.fragments()[fid];
      work.push_back({fid, shards.plan().owner[fid],
                      shards.fragment_addr(fid),
                      static_cast<std::size_t>(f.end - f.begin)});
      ++per_node_aligned[static_cast<std::size_t>(shards.plan().owner[fid])];
    }

    std::vector<std::int32_t> gathered(work.size() * 3, 0);
    const dsm::Cluster::Ticket ticket = cluster.submit([&](dsm::Node& node) {
      if (node.id() == 0) {
        node.write_bytes(query_addr,
                         reinterpret_cast<const std::byte*>(query.data()),
                         query_bytes);
      }
      node.barrier();  // query published; remote nodes fault it in below

      std::basic_string<Base> qbuf(m, Base{});
      node.read_bytes(query_addr, reinterpret_cast<std::byte*>(qbuf.data()),
                      query_bytes);
      const Sequence q("query", std::move(qbuf));

      std::basic_string<Base> fbuf;
      for (std::size_t k = 0; k < work.size(); ++k) {
        if (work[k].owner != node.id()) continue;
        fbuf.assign(work[k].len, Base{});
        node.read_bytes(work[k].addr,
                        reinterpret_cast<std::byte*>(fbuf.data()),
                        work[k].len * sizeof(Base));
        const Sequence frag("frag", fbuf);
        const BestLocal b = best_score(q, frag, scheme);
        node.add_dp_cells(static_cast<std::uint64_t>(m) * work[k].len);
        const std::int32_t triple[3] = {b.score,
                                        static_cast<std::int32_t>(b.end_i),
                                        static_cast<std::int32_t>(b.end_j)};
        node.write_bytes(result_addr + k * 3 * sizeof(std::int32_t),
                         reinterpret_cast<const std::byte*>(triple),
                         sizeof(triple));
      }
      node.barrier();  // per-fragment diffs land at the home before gather
      if (node.id() == 0) {
        node.read_bytes(result_addr,
                        reinterpret_cast<std::byte*>(gathered.data()),
                        gathered.size() * sizeof(std::int32_t));
      }
    });
    const dsm::DsmStats stats = cluster.await(ticket);
    const dsm::NodeStats totals = stats.total_node();
    out.cache_hits = totals.cache_hits;
    out.read_faults = totals.read_faults;

    for (std::size_t k = 0; k < work.size(); ++k) {
      const std::int32_t score = gathered[k * 3];
      if (score < min_score) continue;
      ++out.cascade.dp_confirmed;
      const Fragment& f = db.fragments()[work[k].fragment];
      DbHit hit;
      hit.fragment = f.id;
      hit.seq_index = f.seq_index;
      hit.begin = f.begin;
      hit.score = score;
      hit.end_i = static_cast<std::uint32_t>(gathered[k * 3 + 1]);
      hit.end_j = static_cast<std::uint32_t>(gathered[k * 3 + 2]);
      out.hits.push_back(hit);
    }
  }
  sort_hits(out.hits);

  db_meter_record_query(out.fragments_scanned, out.fragments_rejected,
                        out.fragments_aligned, out.hits.size(),
                        per_node_aligned);
  db_meter_record_cascade(out.cascade);
  return out;
}

std::vector<DbHit> brute_force_hits(const SubjectDb& db, const Sequence& query,
                                    const ScoreScheme& scheme, int min_score) {
  if (min_score < 1) {
    throw std::invalid_argument("brute_force_hits: min_score must be >= 1");
  }
  std::vector<DbHit> hits;
  if (query.empty()) return hits;
  for (const Fragment& f : db.fragments()) {
    const BestLocal b = best_score(query, db.fragment_seq(f.id), scheme);
    if (b.score < min_score) continue;
    DbHit hit;
    hit.fragment = f.id;
    hit.seq_index = f.seq_index;
    hit.begin = f.begin;
    hit.score = b.score;
    hit.end_i = static_cast<std::uint32_t>(b.end_i);
    hit.end_j = static_cast<std::uint32_t>(b.end_j);
    hits.push_back(hit);
  }
  sort_hits(hits);
  return hits;
}

}  // namespace gdsm::db
