// AVX2 kernel of the batched seeded-run bound (bound_batch.h).  This is the
// only db/ translation unit compiled with -mavx2; bound_batch.cpp gates
// every call on CPUID, so the rest of the library stays baseline x86-64.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace gdsm::db::detail {
namespace {

constexpr int kNeg = -(1 << 28);

/// One vector of 8 candidates through the full m-column DP.  Mirrors
/// seeded_bound_core in subject_db.cpp state for state; see that function
/// for the recurrence derivation.  QF bakes q into the type (the state
/// array stays in ymm registers and the r-loops unroll); QF == 0 reads q_rt.
template <std::size_t QF>
void bound_lanes(std::size_t m, const std::uint8_t* flags_t,
                 std::size_t windows, std::size_t stride, int a, int p,
                 std::size_t q_rt, std::int32_t* out) {
  const std::size_t q = QF != 0 ? QF : q_rt;
  const __m256i va = _mm256_set1_epi32(a);
  const __m256i vstep = _mm256_set1_epi32(a - p);  // error column then match
  const __m256i vp = _mm256_set1_epi32(p);
  const __m256i vneg = _mm256_set1_epi32(kNeg);
  const __m256i zero = _mm256_setzero_si256();

  __m256i v[QF != 0 ? QF : 16];
  for (std::size_t r = 1; r < q; ++r) v[r] = vneg;
  v[0] = zero;
  __m256i best = zero;
  for (std::size_t j = 0; j < m; ++j) {
    __m256i vmax = v[0];
    for (std::size_t r = 1; r < q; ++r) vmax = _mm256_max_epi32(vmax, v[r]);
    best = _mm256_max_epi32(best, vmax);
    // Run cap: v[q-1] may extend past length q-1 only in lanes whose window
    // j+1-q is seeded.  The flag bytes are 0/1, so a cmpgt-zero turns the
    // 8-byte row slice into a lane mask.
    __m256i cap = vneg;
    if (j + 1 >= q && j + 1 - q < windows) {
      const __m128i row = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
          flags_t + (j + 1 - q) * stride));
      const __m256i mask = _mm256_cmpgt_epi32(_mm256_cvtepu8_epi32(row), zero);
      cap = _mm256_blendv_epi8(vneg, _mm256_add_epi32(v[q - 1], va), mask);
    }
    for (std::size_t r = q - 1; r >= 1; --r)
      v[r] = _mm256_add_epi32(v[r - 1], va);
    v[q - 1] = _mm256_max_epi32(v[q - 1], cap);
    v[1] = _mm256_max_epi32(v[1], _mm256_add_epi32(vmax, vstep));
    v[0] = _mm256_max_epi32(zero, _mm256_sub_epi32(vmax, vp));
  }
  for (std::size_t r = 0; r < q; ++r) best = _mm256_max_epi32(best, v[r]);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), best);
}

}  // namespace

void seeded_bound_batch_avx2(std::size_t m, const std::uint8_t* flags_t,
                             std::size_t windows, std::size_t stride,
                             std::size_t count, int a, int p, std::size_t q,
                             std::int32_t* out) {
  for (std::size_t c = 0; c < count; c += 8) {
    const std::uint8_t* flags = flags_t + c;
    std::int32_t* o = out + c;
    switch (q) {  // same fixed-q instantiations as the scalar core
      case 4: bound_lanes<4>(m, flags, windows, stride, a, p, q, o); break;
      case 5: bound_lanes<5>(m, flags, windows, stride, a, p, q, o); break;
      case 6: bound_lanes<6>(m, flags, windows, stride, a, p, q, o); break;
      case 7: bound_lanes<7>(m, flags, windows, stride, a, p, q, o); break;
      default: bound_lanes<0>(m, flags, windows, stride, a, p, q, o); break;
    }
  }
}

}  // namespace gdsm::db::detail

#endif  // x86
