// Process-global database-pipeline counters, mirroring the kernel
// (simd::kernel_stats) and comm (dsm::comm_totals) metering pattern: every
// db_query / DbShards in the process accumulates here, and the run-report
// layer snapshots the totals into the schema-v7 "db" section
// (obs/snapshots.h db_stats_json, docs/METRICS.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "db/cascade.h"

namespace gdsm::db {

struct DbMeterSnapshot {
  std::uint64_t queries = 0;             ///< db_query calls
  std::uint64_t fragments_scanned = 0;   ///< filtration bound evaluations
  std::uint64_t fragments_rejected = 0;  ///< discarded before any DP
  std::uint64_t fragments_aligned = 0;   ///< survivors fed to the kernels
  std::uint64_t hits = 0;                ///< fragments reported >= min_score
  /// Seed-and-extend funnel totals (schema v10 `db.cascade`).
  CascadeCounters cascade;
  /// Residency and work placement per cluster node, for the shard-balance
  /// picture: bases resident (summed over every DbShards built) and
  /// fragments aligned on each node.  Sized to the widest cluster seen.
  std::vector<std::uint64_t> node_bases;
  std::vector<std::uint64_t> node_aligned;

  double filtration_rate() const {
    return fragments_scanned == 0
               ? 0.0
               : static_cast<double>(fragments_rejected) /
                     static_cast<double>(fragments_scanned);
  }
};

DbMeterSnapshot db_meter_snapshot();
void reset_db_meter();

/// Accumulation hooks (db_align.cpp / service load path).
void db_meter_record_query(std::size_t scanned, std::size_t rejected,
                           std::size_t aligned, std::size_t hits,
                           const std::vector<std::uint64_t>& per_node_aligned);
void db_meter_record_shards(const std::vector<std::uint64_t>& per_node_bases);
void db_meter_record_cascade(const CascadeCounters& counters);
/// One successful warm open of a persisted q-gram index (load path).
void db_meter_record_index_open();

}  // namespace gdsm::db
