// Positional q-gram index over database fragments, with a persisted
// mmap-able on-disk form.
//
// The index is a CSR over 2-bit-packed q-gram codes: for each code the
// exact list of (fragment, position) occurrences, sorted by (code,
// fragment, position).  It serves two consumers on the db_query hot path
// (subject_db.h): the admissible filtration bound needs "which query
// windows are seeded in fragment f", and the cascade's seed-and-extend
// stage needs the *positions* so seeds can be chained on diagonals and
// X-drop extended (docs/SERVICE.md "Cascade").
//
// Persistence: save() writes a single versioned flat file — a 64-byte
// header carrying the geometry (q, fragment_len, overlap, n_fragments) and
// an FNV-1a checksum of the source sequences, then the offsets / codes /
// entries arrays.  open() maps the file read-only with mmap and validates
// the header against the live database, so a warm load_db skips the build
// entirely and pages the postings in on demand; a stale or corrupted file
// (checksum, version, geometry mismatch, truncation) is rejected with
// std::runtime_error and the caller falls back to a cold build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/sequence.h"

namespace gdsm::db {

/// FNV-1a over every sequence's name bytes and encoded bases, in order.
/// Ties a persisted index file to the exact FASTA content it was built
/// from.
std::uint64_t db_content_checksum(const std::vector<Sequence>& seqs);

class QGramIndex {
 public:
  /// One q-gram occurrence: the code's window starts at `pos` within
  /// fragment `fragment`.
  struct Entry {
    std::uint32_t fragment = 0;
    std::uint32_t pos = 0;
  };

  /// Geometry the index was built over; open() validates it against the
  /// live database so a file built with different fragmentation can never
  /// be silently reused.
  struct Geometry {
    std::uint32_t q = 0;
    std::uint64_t fragment_len = 0;
    std::uint64_t overlap = 0;
    std::uint64_t n_fragments = 0;
    std::uint64_t checksum = 0;  ///< db_content_checksum of the sequences
  };

  QGramIndex() = default;

  /// A raw fragment window for build(): `len` bases starting at `bases`.
  struct FragmentView {
    const Base* bases = nullptr;
    std::size_t len = 0;
  };

  /// Cold build: packs every q-window of every fragment (N windows have no
  /// code and are skipped, blast/words.h) and assembles the CSR.
  static QGramIndex build(const std::vector<FragmentView>& fragments,
                          const Geometry& geom);

  /// Maps `path` read-only and validates magic, version, and `expect`
  /// geometry + checksum.  Throws std::runtime_error on any mismatch or a
  /// malformed / truncated file.
  static QGramIndex open(const std::string& path, const Geometry& expect);

  /// Writes the versioned flat file (see file comment).  Throws
  /// std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  const Geometry& geometry() const noexcept { return geom_; }
  bool mapped() const noexcept { return mapping_ != nullptr; }
  std::size_t n_codes() const noexcept { return n_codes_; }
  std::size_t n_entries() const noexcept { return n_entries_; }

  /// Occurrences of `code`, sorted by (fragment, pos); empty when absent.
  std::span<const Entry> lookup(std::uint32_t code) const;

 private:
  Geometry geom_;
  // CSR views: either into the owned vectors (cold build) or into the
  // mapping (open).  offsets_ has n_codes_ + 1 elements.
  const std::uint64_t* offsets_ = nullptr;
  const std::uint32_t* codes_ = nullptr;
  const Entry* entries_ = nullptr;
  std::size_t n_codes_ = 0;
  std::size_t n_entries_ = 0;
  std::vector<std::uint64_t> owned_offsets_;
  std::vector<std::uint32_t> owned_codes_;
  std::vector<Entry> owned_entries_;
  std::shared_ptr<void> mapping_;  ///< RAII munmap of the open() view
};

}  // namespace gdsm::db
