#include "db/qgram_index.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace gdsm::db {
namespace {

constexpr char kMagic[8] = {'G', 'D', 'S', 'M', 'Q', 'I', 'D', 'X'};
constexpr std::uint32_t kVersion = 1;

// 64-byte fixed header; all integers little-endian host order (the file is
// a node-local cache, not a wire format).
struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t q;
  std::uint64_t fragment_len;
  std::uint64_t overlap;
  std::uint64_t n_fragments;
  std::uint64_t n_codes;
  std::uint64_t n_entries;
  std::uint64_t checksum;
};
static_assert(sizeof(FileHeader) == 64, "header layout drifted");
static_assert(sizeof(QGramIndex::Entry) == 8, "entry layout drifted");

std::size_t pad8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  throw std::runtime_error("QGramIndex::open: " + path + ": " + why);
}

struct Mapping {
  void* addr = nullptr;
  std::size_t len = 0;
  ~Mapping() {
    if (addr != nullptr) ::munmap(addr, len);
  }
};

}  // namespace

std::uint64_t db_content_checksum(const std::vector<Sequence>& seqs) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  for (const Sequence& s : seqs) {
    mix(s.name().data(), s.name().size());
    mix(s.data(), s.size() * sizeof(Base));
  }
  return h;
}

QGramIndex QGramIndex::build(const std::vector<FragmentView>& fragments,
                             const Geometry& geom) {
  QGramIndex out;
  out.geom_ = geom;
  const int q = static_cast<int>(geom.q);

  // Gather every (code, fragment, pos) occurrence, then sort once: the
  // grouped-by-code order is the CSR, and within a code entries come out
  // sorted by (fragment, pos) — the order the scan's per-fragment gather
  // relies on.
  struct Occ {
    std::uint32_t code, fragment, pos;
  };
  std::vector<Occ> occs;
  for (std::size_t f = 0; f < fragments.size(); ++f) {
    const FragmentView& fv = fragments[f];
    if (q <= 0 || fv.len < static_cast<std::size_t>(q)) continue;
    for (std::size_t pos = 0; pos + static_cast<std::size_t>(q) <= fv.len;
         ++pos) {
      std::uint32_t code = 0;
      bool ok = true;
      for (int i = 0; i < q; ++i) {
        const Base b = fv.bases[pos + static_cast<std::size_t>(i)];
        if (b >= 4) {
          ok = false;
          break;
        }
        code = (code << 2) | b;
      }
      if (!ok) continue;
      occs.push_back(Occ{code, static_cast<std::uint32_t>(f),
                         static_cast<std::uint32_t>(pos)});
    }
  }
  std::sort(occs.begin(), occs.end(), [](const Occ& a, const Occ& b) {
    if (a.code != b.code) return a.code < b.code;
    if (a.fragment != b.fragment) return a.fragment < b.fragment;
    return a.pos < b.pos;
  });

  out.owned_entries_.reserve(occs.size());
  for (const Occ& o : occs) {
    if (out.owned_codes_.empty() || out.owned_codes_.back() != o.code) {
      out.owned_codes_.push_back(o.code);
      out.owned_offsets_.push_back(out.owned_entries_.size());
    }
    out.owned_entries_.push_back(Entry{o.fragment, o.pos});
  }
  out.owned_offsets_.push_back(out.owned_entries_.size());
  if (out.owned_codes_.empty()) out.owned_offsets_.assign(1, 0);

  out.offsets_ = out.owned_offsets_.data();
  out.codes_ = out.owned_codes_.data();
  out.entries_ = out.owned_entries_.data();
  out.n_codes_ = out.owned_codes_.size();
  out.n_entries_ = out.owned_entries_.size();
  return out;
}

std::span<const QGramIndex::Entry> QGramIndex::lookup(
    std::uint32_t code) const {
  const std::uint32_t* end = codes_ + n_codes_;
  const std::uint32_t* it = std::lower_bound(codes_, end, code);
  if (it == end || *it != code) return {};
  const std::size_t k = static_cast<std::size_t>(it - codes_);
  return {entries_ + offsets_[k],
          static_cast<std::size_t>(offsets_[k + 1] - offsets_[k])};
}

void QGramIndex::save(const std::string& path) const {
  FileHeader hdr{};
  std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
  hdr.version = kVersion;
  hdr.q = geom_.q;
  hdr.fragment_len = geom_.fragment_len;
  hdr.overlap = geom_.overlap;
  hdr.n_fragments = geom_.n_fragments;
  hdr.n_codes = n_codes_;
  hdr.n_entries = n_entries_;
  hdr.checksum = geom_.checksum;

  // Write to a sibling temp file and rename over, so a crashed save never
  // leaves a torn file that a later open() would have to reject.
  const std::string tmp = path + ".tmp";
  std::FILE* fp = std::fopen(tmp.c_str(), "wb");
  if (fp == nullptr) {
    throw std::runtime_error("QGramIndex::save: cannot open " + tmp);
  }
  bool ok = std::fwrite(&hdr, sizeof(hdr), 1, fp) == 1;
  if (ok && n_codes_ > 0) {
    ok = std::fwrite(offsets_, sizeof(std::uint64_t), n_codes_ + 1, fp) ==
         n_codes_ + 1;
    ok = ok && std::fwrite(codes_, sizeof(std::uint32_t), n_codes_, fp) ==
                   n_codes_;
    const std::size_t codes_bytes = n_codes_ * sizeof(std::uint32_t);
    const std::uint32_t zero = 0;
    if (ok && pad8(codes_bytes) != codes_bytes) {
      ok = std::fwrite(&zero, pad8(codes_bytes) - codes_bytes, 1, fp) == 1;
    }
    if (ok && n_entries_ > 0) {
      ok = std::fwrite(entries_, sizeof(Entry), n_entries_, fp) == n_entries_;
    }
  }
  ok = std::fclose(fp) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("QGramIndex::save: write failed: " + path);
  }
}

QGramIndex QGramIndex::open(const std::string& path, const Geometry& expect) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) reject(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    reject(path, "cannot stat");
  }
  const auto file_len = static_cast<std::size_t>(st.st_size);
  if (file_len < sizeof(FileHeader)) {
    ::close(fd);
    reject(path, "truncated header");
  }
  void* addr = ::mmap(nullptr, file_len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (addr == MAP_FAILED) reject(path, "mmap failed");
  auto mapping = std::make_shared<Mapping>();
  mapping->addr = addr;
  mapping->len = file_len;

  FileHeader hdr{};
  std::memcpy(&hdr, addr, sizeof(hdr));
  if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0) {
    reject(path, "bad magic");
  }
  if (hdr.version != kVersion) reject(path, "unsupported version");
  if (hdr.q != expect.q || hdr.fragment_len != expect.fragment_len ||
      hdr.overlap != expect.overlap ||
      hdr.n_fragments != expect.n_fragments) {
    reject(path, "geometry mismatch");
  }
  if (hdr.checksum != expect.checksum) {
    reject(path, "checksum mismatch (stale index?)");
  }
  const std::size_t offsets_bytes =
      hdr.n_codes == 0 ? 0
                       : (static_cast<std::size_t>(hdr.n_codes) + 1) *
                             sizeof(std::uint64_t);
  const std::size_t codes_bytes =
      static_cast<std::size_t>(hdr.n_codes) * sizeof(std::uint32_t);
  const std::size_t entries_off =
      sizeof(FileHeader) + offsets_bytes + pad8(codes_bytes);
  const std::size_t need =
      entries_off + static_cast<std::size_t>(hdr.n_entries) * sizeof(Entry);
  if (file_len < need) reject(path, "truncated body");

  QGramIndex out;
  out.geom_ = expect;
  out.n_codes_ = static_cast<std::size_t>(hdr.n_codes);
  out.n_entries_ = static_cast<std::size_t>(hdr.n_entries);
  const auto* base = static_cast<const unsigned char*>(addr);
  if (out.n_codes_ > 0) {
    out.offsets_ =
        reinterpret_cast<const std::uint64_t*>(base + sizeof(FileHeader));
    out.codes_ = reinterpret_cast<const std::uint32_t*>(
        base + sizeof(FileHeader) + offsets_bytes);
    out.entries_ = reinterpret_cast<const Entry*>(base + entries_off);
    // Validate the CSR so a bit-flipped but checksum-matching header can
    // not walk out of bounds later.
    if (out.offsets_[0] != 0 || out.offsets_[out.n_codes_] != hdr.n_entries) {
      reject(path, "corrupt offsets");
    }
    for (std::size_t k = 0; k < out.n_codes_; ++k) {
      if (out.offsets_[k] > out.offsets_[k + 1]) reject(path, "corrupt offsets");
      if (k + 1 < out.n_codes_ && out.codes_[k] >= out.codes_[k + 1]) {
        reject(path, "corrupt code order");
      }
    }
  } else {
    out.owned_offsets_.assign(1, 0);
    out.offsets_ = out.owned_offsets_.data();
  }
  out.mapping_ = std::move(mapping);
  return out;
}

}  // namespace gdsm::db
