// The seed-and-extend cascade: certified host-side resolution of database
// candidates between the q-gram filtration bound and full strategy DP.
//
// For a stage-1 survivor (exact seeded-run bound U >= min_score) the
// cascade chains the fragment's seed occurrences on diagonals
// (blast::chain_seed_runs) and X-drop-extends the longest runs ungapped
// (blast::extend_ungapped_xdrop with an unbounded drop, so the extension
// is the maximal-scoring segment on the seed's diagonal).  The best
// extension score `ext` is the score of a real alignment — a certified
// lower bound on the true score.  Whenever ext > B0 (the query's no-seed
// bound) it anchors an exact, banded resolution of the whole candidate:
//
//   - Every alignment scoring >= ext (> B0) contains a match run of
//     length >= q — alignments without one are capped at B0 — and so
//     passes through one of the gathered seed diagonals.
//   - An alignment scoring >= ext has at most
//     g_max = (match * min(m, n) - ext) / (-gap) gap columns, so it never
//     drifts more than g_max diagonals from that seed.
//   - Run the DP restricted to the union of +-g_max bands around the seed
//     diagonals and call its maximum R.  The extension segment lies
//     in-band, so R >= ext.  Any full-matrix alignment scoring above R
//     scores >= ext and is therefore entirely in-band — the restricted DP
//     would have found it.  Hence the full-matrix maximum IS R, the two
//     matrices agree on every score-R cell, and picking the first of them
//     under the reference kernel's tie-break reproduces the kernel's
//     answer exactly (db_query stays hit-for-hit identical to
//     brute_force_hits).  docs/SERVICE.md "Cascade" has the derivation.
//
// A resolution is exact whatever R turns out to be: R >= min_score is a
// certified hit with canonical coordinates, R < min_score a certified
// reject — either way the candidate skips full DP entirely.  Candidates
// whose extensions stay <= B0 (or whose bands would cover too much of the
// matrix to be worth a scalar pass) are forwarded — the cascade never
// drops anything full DP would have kept.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "blast/words.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm::db {

/// Funnel counters of the cascade, accumulated per query and process-wide
/// by the db meter (schema v10 `db.cascade`, docs/METRICS.md).
struct CascadeCounters {
  std::uint64_t seeds = 0;       ///< seed occurrences gathered for survivors
  std::uint64_t chains = 0;      ///< diagonal runs after two-hit joining
  std::uint64_t extensions = 0;  ///< X-drop extensions executed
  std::uint64_t dp_skipped_by_bound = 0;  ///< candidates certified, no DP
  std::uint64_t dp_confirmed = 0;  ///< forwarded candidates DP kept >= min
  std::uint64_t index_mmap_hits = 0;  ///< warm load_db via persisted index

  CascadeCounters& operator+=(const CascadeCounters& o) {
    seeds += o.seeds;
    chains += o.chains;
    extensions += o.extensions;
    dp_skipped_by_bound += o.dp_skipped_by_bound;
    dp_confirmed += o.dp_confirmed;
    index_mmap_hits += o.index_mmap_hits;
    return *this;
  }
};

/// Reusable per-thread buffers: a scan loop passes the same scratch to
/// every candidate so the hot path stops allocating once warm.
struct CascadeScratch {
  std::vector<blast::SeedPair> pairs;  ///< input: this candidate's seeds
  std::vector<blast::SeedPair> sort_scratch;
  std::vector<blast::SeedRun> runs;
  std::vector<std::pair<std::int64_t, std::int64_t>> bands;
  std::vector<int> h;  ///< restricted-DP H row
  std::vector<int> f;  ///< restricted-DP F row (affine)
};

struct CascadeOutcome {
  bool resolved = false;  ///< certificate held: score/end_* are exact
  int score = 0;
  std::uint32_t end_i = 0;  ///< 1-based end in the query, kernel tie-break
  std::uint32_t end_j = 0;  ///< 1-based end in the fragment
  std::uint32_t chains = 0;
  std::uint32_t extensions = 0;
};

/// Attempts to certify one stage-1 survivor.  `scratch.pairs` holds the
/// candidate's seed occurrences (q_pos = query window start, s_pos =
/// position in the fragment); `exact_bound` is the candidate's seeded-run
/// bound U and `no_seed_bound` the query's B0.  Never resolves under a
/// degenerate scheme (match <= 0, mismatch >= 0, or gap >= 0) — the
/// certificate's arithmetic needs real penalties.
CascadeOutcome cascade_try_resolve(const Sequence& query, const Base* frag,
                                   std::size_t frag_len,
                                   const ScoreScheme& scheme, int exact_bound,
                                   int no_seed_bound, std::size_t q,
                                   CascadeScratch& scratch);

}  // namespace gdsm::db
