// Baseline-ISA half of the batched bound (bound_batch.h): availability
// gating and forwarding into the -mavx2 translation unit.
#include "db/bound_batch.h"

#include <cstdlib>
#include <cstring>

namespace gdsm::db {

#if GDSM_DB_BOUND_AVX2
namespace detail {
void seeded_bound_batch_avx2(std::size_t m, const std::uint8_t* flags_t,
                             std::size_t windows, std::size_t stride,
                             std::size_t count, int a, int p, std::size_t q,
                             std::int32_t* out);
}  // namespace detail
#endif

bool bound_batch_available() {
#if GDSM_DB_BOUND_AVX2
  static const bool available = [] {
    const char* env = std::getenv("GDSM_DB_BOUND");
    if (env != nullptr && std::strcmp(env, "scalar") == 0) return false;
    return __builtin_cpu_supports("avx2") != 0;
  }();
  return available;
#else
  return false;
#endif
}

void seeded_bound_batch(std::size_t m, const std::uint8_t* flags_t,
                        std::size_t windows, std::size_t stride,
                        std::size_t count, int a, int p, std::size_t q,
                        std::int32_t* out) {
#if GDSM_DB_BOUND_AVX2
  detail::seeded_bound_batch_avx2(m, flags_t, windows, stride, count, a, p, q,
                                  out);
#else
  (void)m, (void)flags_t, (void)windows, (void)stride, (void)count;
  (void)a, (void)p, (void)q, (void)out;
#endif
}

}  // namespace gdsm::db
