#include "db/meter.h"

#include <algorithm>
#include <mutex>

namespace gdsm::db {
namespace {

std::mutex g_mu;
DbMeterSnapshot g_totals;

void widen(std::vector<std::uint64_t>& v, std::size_t n) {
  if (v.size() < n) v.resize(n, 0);
}

}  // namespace

DbMeterSnapshot db_meter_snapshot() {
  const std::scoped_lock lk(g_mu);
  return g_totals;
}

void reset_db_meter() {
  const std::scoped_lock lk(g_mu);
  g_totals = DbMeterSnapshot{};
}

void db_meter_record_query(std::size_t scanned, std::size_t rejected,
                           std::size_t aligned, std::size_t hits,
                           const std::vector<std::uint64_t>& per_node_aligned) {
  const std::scoped_lock lk(g_mu);
  ++g_totals.queries;
  g_totals.fragments_scanned += scanned;
  g_totals.fragments_rejected += rejected;
  g_totals.fragments_aligned += aligned;
  g_totals.hits += hits;
  widen(g_totals.node_aligned, per_node_aligned.size());
  for (std::size_t n = 0; n < per_node_aligned.size(); ++n) {
    g_totals.node_aligned[n] += per_node_aligned[n];
  }
}

void db_meter_record_cascade(const CascadeCounters& counters) {
  const std::scoped_lock lk(g_mu);
  g_totals.cascade += counters;
}

void db_meter_record_index_open() {
  const std::scoped_lock lk(g_mu);
  ++g_totals.cascade.index_mmap_hits;
}

void db_meter_record_shards(const std::vector<std::uint64_t>& per_node_bases) {
  const std::scoped_lock lk(g_mu);
  widen(g_totals.node_bases, per_node_bases.size());
  for (std::size_t n = 0; n < per_node_bases.size(); ++n) {
    g_totals.node_bases[n] += per_node_bases[n];
  }
}

}  // namespace gdsm::db
