// Vector backend of the stage-1 filtration bound: the seeded-run DP of
// subject_db.cpp evaluated for a whole batch of candidate fragments at once,
// 8 per 256-bit vector of 32-bit states.
//
// The scalar bound walks one fragment's seed flags per call, so a scan over
// F seeded fragments pays F dependent m-column DP sweeps — the dominant cost
// of db_query on small-q indexes, where the O(1) distinct-count prefilter
// almost never fires.  Batching turns the fragment dimension into SIMD
// lanes: the per-column recurrence (a max/add network over q states) is
// identical in every lane, and only the per-window seed flag differs, so one
// column update serves 8 fragments.  The flags are consumed transposed
// (window-major, one byte per candidate) so each column reads 8 contiguous
// bytes instead of 8 strided ones.
//
// The batch computes the *exact* bound (no decision early-exits): at vector
// rates the full m columns cost less than the scalar loop's truncated sweep,
// and the cascade downstream gets untruncated bounds, which only tightens
// its extension early-stop.  Reject/accept decisions against min_score are
// therefore byte-identical to the scalar path's (the scalar exits are
// decision-preserving by construction).
//
// Like simd/dispatch.cpp, the AVX2 translation unit is the only one built
// with -mavx2 and every call is CPUID-gated; hosts (or builds) without AVX2
// fall back to the scalar per-fragment loop in subject_db.cpp.  Set
// GDSM_DB_BOUND=scalar to force the fallback — the differential tests use
// this to check the two paths agree.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gdsm::db {

/// True when the AVX2 batch kernel is compiled in, the CPU supports it, and
/// GDSM_DB_BOUND does not force the scalar path.  Cached after first call.
bool bound_batch_available();

/// Exact seeded-run bounds for `count` candidates sharing one query.
///
///   flags_t  transposed seed flags: flags_t[w * stride + c] is non-zero
///            when candidate c's fragment contains the query q-gram at
///            window w, for w in [0, windows)
///   stride   row stride of flags_t in bytes; must be a multiple of 8 and
///            >= count, with padding lanes zeroed (they compute the no-seed
///            bound into out[], which callers ignore)
///   a        match score (> 0; callers handle degenerate schemes)
///   p        per-column error penalty max(0, min(-mismatch, -gap))
///   q        q-gram length, in [2, 15]
///   out      receives one bound per lane; at least `stride` ints
///
/// out[c] equals seeded_run_bound(m, flags-of-candidate-c, scheme, q)
/// exactly.  Must only be called when bound_batch_available().
void seeded_bound_batch(std::size_t m, const std::uint8_t* flags_t,
                        std::size_t windows, std::size_t stride,
                        std::size_t count, int a, int p, std::size_t q,
                        std::int32_t* out);

}  // namespace gdsm::db
