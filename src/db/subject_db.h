// The multi-sequence subject database and its cascaded filtration
// front-end.
//
// Production traffic is a query against a *database*, not one resident
// subject: a SubjectDb holds many FASTA sequences partitioned into
// fixed-size overlapping fragments, plus a positional q-gram index
// (qgram_index.h) over the fragments.  A db query walks an ALAE-style
// cascade of admissible stages, each strictly cheaper than the next
// (docs/SERVICE.md "Cascade"):
//
//   1. q-gram bound — every fragment is screened with an admissible score
//      upper bound computed from which query q-grams occur in it; a
//      fragment whose bound falls below the report threshold provably
//      cannot contain a reportable hit and is discarded without alignment
//      (zero missed hits by construction).  A constant-time prefilter
//      (min(match * m, B0 + |S| * (match + p)) — see scan()) skips the
//      bound DP entirely for fragments it already condemns.
//   2. seed-and-extend — survivors get their seed occurrences chained on
//      diagonals and X-drop-extended (cascade.h); a candidate whose
//      extension score *meets* its bound is resolved host-side with a
//      certified exact score and never reaches full DP.
//   3. full DP — whatever remains is aligned by the SIMD-dispatched score
//      kernels (db_align.h), on the cluster or host-side when the
//      remainder is too small to amortize a cluster dispatch.
//
// The stage-1 bound (docs/SERVICE.md has the derivation): any run of >= q
// consecutive match columns in a local alignment is an exact q-length
// occurrence of a query window in the fragment, so every q-window inside
// the run must be a *seed*.  A small DP over query positions — state =
// current match-run length capped at q-1 — maximizes +match per match
// column, -min(-mismatch, -gap) per error column, with runs allowed past
// length q-1 only across seeded windows.  The DP dominates every real
// alignment column-for-column, so bound >= true Smith-Waterman score
// always (the property tests assert this on adversarial pairs).
//
// The index can be persisted (save_index) and mmap-ed back (open_index) so
// a warm load skips the cold build; the file is versioned and checksummed
// against the sequences (qgram_index.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "db/cascade.h"
#include "db/qgram_index.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm::db {

struct DbConfig {
  /// Fragment partition width, in bases.  Fragments are the filtration and
  /// scheduling granule: hits are reported per fragment.
  std::size_t fragment_len = 256;
  /// Adjacent fragments of one sequence overlap by this many bases, so an
  /// alignment spanning a cut point survives intact in one of its
  /// neighbours.
  std::size_t overlap = 24;
  /// q-gram length of the filtration index (clamped to [2, 15]).  q trades
  /// seed sparsity against the no-seed bound B0 (runs capped at q-1 grow
  /// B0 with q): at q = 5 / 150 bp queries B0 sits just under the default
  /// service thresholds, which is what lets filtration reject at all.
  std::size_t q = 5;
  /// Stage 2 of the cascade: certified seed-and-extend resolution of
  /// stage-1 survivors.  Off = every survivor goes to full DP (the PR 7
  /// pipeline); the hit set is identical either way.
  bool cascade = true;
  /// Forwarded candidates per query at or below which db_query aligns them
  /// host-side with the same dispatched kernel instead of paying a cluster
  /// dispatch (two barriers plus engine-thread wakeups dominate a handful
  /// of fragments of SIMD DP).  0 always dispatches.
  std::size_t direct_align_max = 8;
  /// When non-empty, the service's load path persists / reuses the q-gram
  /// index at this path (AlignService::load_db).
  std::string index_path;
};

/// One database fragment: a window of one subject sequence.
struct Fragment {
  std::uint32_t id = 0;         ///< dense [0, n_fragments)
  std::uint32_t seq_index = 0;  ///< index into SubjectDb::sequences()
  std::uint32_t begin = 0;      ///< 0-based window [begin, end) in the sequence
  std::uint32_t end = 0;
};

class SubjectDb {
 public:
  SubjectDb() = default;  ///< empty database (no sequences, no fragments)

  /// Partitions `seqs` into fragments and builds the q-gram index (cold
  /// build).  Empty sequences contribute no fragments.
  explicit SubjectDb(std::vector<Sequence> seqs, DbConfig cfg = {});

  /// Like the constructor, but the index is mmap-ed from a file previously
  /// written by save_index instead of rebuilt.  Throws std::runtime_error
  /// when the file is missing, malformed, built over different geometry,
  /// or checksummed against different sequences — callers fall back to the
  /// cold constructor.
  static SubjectDb open_index(std::vector<Sequence> seqs,
                              const std::string& path, DbConfig cfg = {});

  /// Persists the q-gram index for open_index.  Throws on I/O failure.
  void save_index(const std::string& path) const;

  const DbConfig& config() const noexcept { return cfg_; }
  const std::vector<Sequence>& sequences() const noexcept { return seqs_; }
  const std::vector<Fragment>& fragments() const noexcept { return fragments_; }
  std::size_t total_bases() const noexcept { return total_bases_; }
  const QGramIndex& index() const noexcept { return index_; }

  /// Materializes fragment `id` as a sequence named "<seq-name>#<id>".
  Sequence fragment_seq(std::uint32_t id) const;

  struct Filtration {
    std::vector<std::uint32_t> survivors;  ///< fragment ids, ascending
    std::size_t scanned = 0;               ///< == fragments().size()
    std::size_t rejected = 0;
  };

  /// Stage 1 only: keeps exactly those fragments whose admissible score
  /// bound reaches `min_score`.  Exact: a rejected fragment cannot score
  /// >= min_score under `scheme` (linear or affine).
  Filtration filter(const Sequence& query, const ScoreScheme& scheme,
                    int min_score) const;

  /// A candidate the cascade resolved host-side: `score` is the candidate's
  /// exact best local score (certified, >= min_score) and end_i/end_j the
  /// reference kernel's end cell.
  struct ScanHit {
    std::uint32_t fragment = 0;
    int score = 0;
    std::uint32_t end_i = 0;
    std::uint32_t end_j = 0;
  };

  struct ScanResult {
    std::vector<std::uint32_t> forwarded;  ///< fragment ids for full DP, asc
    std::vector<ScanHit> resolved;         ///< certified, no DP needed
    std::size_t scanned = 0;
    std::size_t rejected = 0;
    CascadeCounters cascade;  ///< funnel counters of this scan
  };

  /// The full cascade front-end of db_query: stage 1 over every fragment,
  /// then (when config().cascade) stage 2 over the survivors.  The union
  /// of resolved and forwarded fragments is exactly filter()'s survivor
  /// set, so turning the cascade off changes costs, never results.
  ScanResult scan(const Sequence& query, const ScoreScheme& scheme,
                  int min_score) const;

  /// The admissible bound for one (query, fragment) pair — the quantity
  /// filter() thresholds, exposed for the oracle and tests.
  int score_bound(const Sequence& query, std::uint32_t fragment,
                  const ScoreScheme& scheme) const;

 private:
  void build_fragments();
  QGramIndex::Geometry geometry() const;
  void scan_impl(const Sequence& query, const ScoreScheme& scheme,
                 int min_score, bool cascade, ScanResult& out) const;

  DbConfig cfg_;
  std::vector<Sequence> seqs_;
  std::vector<Fragment> fragments_;
  std::size_t total_bases_ = 0;
  QGramIndex index_;
};

/// The seeded-run DP bound itself.  `seed` has one flag per query window
/// start (size m - q + 1, or empty meaning "no window is seeded"): true
/// when the query q-gram starting there occurs in the candidate fragment.
/// Returns an upper bound on the best local alignment score any fragment
/// consistent with those seed flags can reach against the query.
int seeded_run_bound(std::size_t m, const std::vector<char>& seed,
                     const ScoreScheme& scheme, std::size_t q);

/// Two-sequence convenience: bound on the local alignment score of `a`
/// versus `b`, seeding from an ad-hoc q-gram index of `b`.  Admissible for
/// both gap models: qgram_score_bound(a, b, scheme, q) >= the true
/// Smith-Waterman (or Gotoh) score of a vs b.  This is the property-test
/// surface.
int qgram_score_bound(const Sequence& a, const Sequence& b,
                      const ScoreScheme& scheme, std::size_t q);

}  // namespace gdsm::db
