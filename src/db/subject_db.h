// The multi-sequence subject database and its exact q-gram filtration
// front-end.
//
// Production traffic is a query against a *database*, not one resident
// subject: a SubjectDb holds many FASTA sequences partitioned into
// fixed-size overlapping fragments, plus a q-gram posting index
// (blast/words.h machinery) over the fragments.  Before any DP runs, every
// fragment is screened with an admissible score upper bound computed from
// which query q-grams occur in the fragment; a fragment whose bound falls
// below the report threshold provably cannot contain a reportable hit and
// is discarded without alignment (ALAE-style exact filtration — zero missed
// hits by construction).  Survivors are aligned by the SIMD-dispatched
// score kernels (db_align.h).
//
// The bound (docs/SERVICE.md "Database serving" has the derivation): any
// run of >= q consecutive match columns in a local alignment is an exact
// q-length occurrence of a query window in the fragment, so every q-window
// inside the run must be a *seed* (its q-gram occurs in the fragment).  A
// small DP over query positions — state = current match-run length capped
// at q-1 — maximizes  +match per match column, -min(-mismatch, -gap) per
// error column, with runs allowed past length q-1 only across seeded
// windows.  The DP dominates every real alignment column-for-column, so
// bound >= true Smith-Waterman score always (the property tests assert
// this on adversarial pairs); its filtration power comes from match runs
// being capped near q wherever the fragment shares no query q-grams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm::db {

struct DbConfig {
  /// Fragment partition width, in bases.  Fragments are the filtration and
  /// scheduling granule: hits are reported per fragment.
  std::size_t fragment_len = 256;
  /// Adjacent fragments of one sequence overlap by this many bases, so an
  /// alignment spanning a cut point survives intact in one of its
  /// neighbours.
  std::size_t overlap = 24;
  /// q-gram length of the filtration index (clamped to [2, 15]).
  std::size_t q = 5;
};

/// One database fragment: a window of one subject sequence.
struct Fragment {
  std::uint32_t id = 0;         ///< dense [0, n_fragments)
  std::uint32_t seq_index = 0;  ///< index into SubjectDb::sequences()
  std::uint32_t begin = 0;      ///< 0-based window [begin, end) in the sequence
  std::uint32_t end = 0;
};

class SubjectDb {
 public:
  SubjectDb() = default;  ///< empty database (no sequences, no fragments)

  /// Partitions `seqs` into fragments and builds the q-gram posting index.
  /// Empty sequences contribute no fragments.
  explicit SubjectDb(std::vector<Sequence> seqs, DbConfig cfg = {});

  const DbConfig& config() const noexcept { return cfg_; }
  const std::vector<Sequence>& sequences() const noexcept { return seqs_; }
  const std::vector<Fragment>& fragments() const noexcept { return fragments_; }
  std::size_t total_bases() const noexcept { return total_bases_; }

  /// Materializes fragment `id` as a sequence named "<seq-name>#<id>".
  Sequence fragment_seq(std::uint32_t id) const;

  struct Filtration {
    std::vector<std::uint32_t> survivors;  ///< fragment ids, ascending
    std::size_t scanned = 0;               ///< == fragments().size()
    std::size_t rejected = 0;
  };

  /// Screens every fragment against `query`: keeps exactly those whose
  /// admissible score bound reaches `min_score`.  Exact: a rejected
  /// fragment cannot score >= min_score under `scheme` (linear or affine).
  Filtration filter(const Sequence& query, const ScoreScheme& scheme,
                    int min_score) const;

  /// The admissible bound for one (query, fragment) pair — the quantity
  /// filter() thresholds, exposed for the oracle and tests.
  int score_bound(const Sequence& query, std::uint32_t fragment,
                  const ScoreScheme& scheme) const;

 private:
  DbConfig cfg_;
  std::vector<Sequence> seqs_;
  std::vector<Fragment> fragments_;
  std::size_t total_bases_ = 0;
  /// q-gram code -> fragment ids containing it (ascending, distinct).
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> postings_;
};

/// The seeded-run DP bound itself.  `seed` has one flag per query window
/// start (size m - q + 1, or empty meaning "no window is seeded"): true
/// when the query q-gram starting there occurs in the candidate fragment.
/// Returns an upper bound on the best local alignment score any fragment
/// consistent with those seed flags can reach against the query.
int seeded_run_bound(std::size_t m, const std::vector<char>& seed,
                     const ScoreScheme& scheme, std::size_t q);

/// Two-sequence convenience: bound on the local alignment score of `a`
/// versus `b`, seeding from an ad-hoc q-gram index of `b`.  Admissible for
/// both gap models: qgram_score_bound(a, b, scheme, q) >= the true
/// Smith-Waterman (or Gotoh) score of a vs b.  This is the property-test
/// surface.
int qgram_score_bound(const Sequence& a, const Sequence& b,
                      const ScoreScheme& scheme, std::size_t q);

}  // namespace gdsm::db
