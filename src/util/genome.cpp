#include "util/genome.h"

#include <algorithm>
#include <stdexcept>

namespace gdsm {
namespace {

// Picks `count` non-overlapping interval starts of length `len` inside
// [0, total), separated by at least `gap` bases, uniformly-ish by spacing
// them over equal buckets with random jitter.  Keeps generation O(count).
std::vector<std::size_t> pick_offsets(std::size_t total, std::size_t len,
                                      std::size_t count, std::size_t gap,
                                      Rng& rng) {
  if (count == 0) return {};
  const std::size_t slot = total / count;
  if (slot < len + gap) {
    throw std::invalid_argument(
        "genome: sequence too short to plant the requested regions");
  }
  std::vector<std::size_t> offsets;
  offsets.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t jitter = rng.below(slot - len - gap + 1);
    offsets.push_back(k * slot + jitter);
  }
  return offsets;
}

}  // namespace

Sequence random_dna(std::size_t length, Rng& rng, std::string name) {
  std::basic_string<Base> bases;
  bases.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    bases.push_back(static_cast<Base>(rng.below(4)));
  }
  return Sequence(std::move(name), std::move(bases));
}

Sequence mutate(const Sequence& src, double substitution_rate, double indel_rate,
                Rng& rng) {
  std::basic_string<Base> out;
  out.reserve(src.size() + src.size() / 16);
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (rng.chance(indel_rate)) {
      if (rng.chance(0.5)) {
        continue;  // deletion
      }
      out.push_back(static_cast<Base>(rng.below(4)));  // insertion, keep base
    }
    Base b = src[i];
    if (rng.chance(substitution_rate)) {
      // Substitute with one of the three *other* bases so the rate is exact.
      b = static_cast<Base>((b + 1 + rng.below(3)) % 4);
    }
    out.push_back(b);
  }
  return Sequence(src.name() + ".mut", std::move(out));
}

HomologousPair make_homologous_pair(const HomologousPairSpec& spec) {
  Rng rng(spec.seed);
  HomologousPair pair;
  pair.s = random_dna(spec.length_s, rng, "synthetic_s");
  pair.t = random_dna(spec.length_t, rng, "synthetic_t");

  if (spec.n_regions == 0) return pair;

  const std::size_t max_len = spec.region_len_mean + spec.region_len_spread;
  // Positions in s and t are drawn independently, so matched regions land at
  // unrelated coordinates, as between real genomes.
  const auto s_offsets =
      pick_offsets(spec.length_s, max_len, spec.n_regions, /*gap=*/16, rng);
  auto t_offsets =
      pick_offsets(spec.length_t, max_len, spec.n_regions, /*gap=*/16, rng);

  std::basic_string<Base> s_bases(pair.s.bases().begin(), pair.s.bases().end());
  std::basic_string<Base> t_bases(pair.t.bases().begin(), pair.t.bases().end());

  for (std::size_t k = 0; k < spec.n_regions; ++k) {
    const std::size_t spread = spec.region_len_spread;
    const std::size_t len = spec.region_len_mean - spread + rng.below(2 * spread + 1);

    // The shared ancestral segment.
    const Sequence ancestor = random_dna(len, rng, "anc");
    const Sequence copy_s =
        mutate(ancestor, spec.substitution_rate / 2, spec.indel_rate / 2, rng);
    const Sequence copy_t =
        mutate(ancestor, spec.substitution_rate / 2, spec.indel_rate / 2, rng);

    const std::size_t so = s_offsets[k];
    const std::size_t to = t_offsets[k];
    std::copy(copy_s.bases().begin(), copy_s.bases().end(), s_bases.begin() + so);
    std::copy(copy_t.bases().begin(), copy_t.bases().end(), t_bases.begin() + to);

    pair.regions.push_back(PlantedRegion{so, so + copy_s.size(),
                                         to, to + copy_t.size()});
  }

  pair.s = Sequence("synthetic_s", std::move(s_bases));
  pair.t = Sequence("synthetic_t", std::move(t_bases));
  return pair;
}

}  // namespace gdsm
