// Plain-text table rendering for the benchmark harness: every bench binary
// prints rows/series in the same layout the paper's tables and figures use.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gdsm {

/// Column-aligned text table with a title, header row and string cells.
/// Numeric helpers format with a fixed precision, matching the paper's style
/// ("3461", "1107.02", "7.29", ...).
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) { header_ = std::move(header); }
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with box-drawing-free ASCII so output diffs cleanly.
  void print(std::ostream& out) const;

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-point formatting helper (e.g. fmt_f(1107.019, 2) -> "1107.02").
std::string fmt_f(double v, int precision = 2);

/// Thousands-style integer seconds like the paper's Table 1 ("175,295").
std::string fmt_sec(double seconds);

}  // namespace gdsm
