// Minimal FASTA reader/writer for the example programs and tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/sequence.h"

namespace gdsm {

/// Parses every record of a FASTA stream.  Lines are concatenated; the
/// header text after '>' up to the first whitespace becomes the name.
/// Throws std::runtime_error on malformed input (content before a header).
std::vector<Sequence> read_fasta(std::istream& in);

/// Incremental FASTA reader over a fixed-size read buffer: records are
/// parsed straight out of 64 KiB chunks, so peak memory tracks the largest
/// single record instead of the whole file — load_db's RSS stops scaling
/// with database size.  Same grammar and errors as read_fasta (the
/// line-oriented istream path stays available as the oracle).
class FastaStreamReader {
 public:
  explicit FastaStreamReader(const std::string& path);
  ~FastaStreamReader();
  FastaStreamReader(const FastaStreamReader&) = delete;
  FastaStreamReader& operator=(const FastaStreamReader&) = delete;

  /// Parses the next record into `out`.  Returns false at end of input.
  bool next(Sequence& out);

 private:
  bool fill();
  /// Feeds one character through the line state machine; true when a
  /// finished record was moved into `out`.
  bool consume(char c, Sequence& out);

  void* file_;  ///< FILE*, kept opaque to spare includers <cstdio>
  std::vector<char> buf_;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  enum class Line { kStart, kHeaderName, kHeaderRest, kComment, kSeq };
  Line line_ = Line::kStart;
  bool cr_ = false;  ///< pending '\r' — data unless the next byte is '\n'
  bool have_record_ = false;
  std::string name_;
  std::basic_string<Base> bases_;
};

/// Convenience: read a FASTA file from disk.  Streams through the chunked
/// reader by default; `stream = false` takes the legacy whole-stream
/// istream path (the oracle the streaming parser is tested against).
std::vector<Sequence> read_fasta_file(const std::string& path,
                                      bool stream = true);

/// Writes records wrapped at `width` columns.
void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs,
                 std::size_t width = 70);

void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& seqs,
                      std::size_t width = 70);

}  // namespace gdsm
