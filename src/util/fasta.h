// Minimal FASTA reader/writer for the example programs and tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/sequence.h"

namespace gdsm {

/// Parses every record of a FASTA stream.  Lines are concatenated; the
/// header text after '>' up to the first whitespace becomes the name.
/// Throws std::runtime_error on malformed input (content before a header).
std::vector<Sequence> read_fasta(std::istream& in);

/// Convenience: read a FASTA file from disk.
std::vector<Sequence> read_fasta_file(const std::string& path);

/// Writes records wrapped at `width` columns.
void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs,
                 std::size_t width = 70);

void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& seqs,
                      std::size_t width = 70);

}  // namespace gdsm
