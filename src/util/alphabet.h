// DNA alphabet: 2-bit base codes, validation and conversion helpers.
//
// The paper aligns genomic DNA (A, C, G, T).  Unknown/ambiguity codes (N,
// IUPAC letters) are accepted on input and mapped to a distinguished code so
// the scoring layer can treat them as universal mismatches.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gdsm {

/// Numeric code of a DNA base.  A/C/G/T map to 0..3; anything else maps to
/// kBaseN (scored as mismatch-against-everything, including itself).
using Base = std::uint8_t;

inline constexpr Base kBaseA = 0;
inline constexpr Base kBaseC = 1;
inline constexpr Base kBaseG = 2;
inline constexpr Base kBaseT = 3;
inline constexpr Base kBaseN = 4;
inline constexpr int kAlphabetSize = 5;

/// Maps an ASCII character to a base code (case-insensitive).
Base encode_base(char c) noexcept;

/// Maps a base code back to its canonical upper-case character.
char decode_base(Base b) noexcept;

/// True if `c` is one of acgtACGT.
bool is_strict_base(char c) noexcept;

/// Watson–Crick complement (N maps to N).
Base complement(Base b) noexcept;

/// Encodes a whole string; invalid characters become kBaseN.
std::basic_string<Base> encode_string(std::string_view text);

/// Decodes a whole base-code string back to ASCII.
std::string decode_string(std::basic_string_view<Base> bases);

}  // namespace gdsm
