// Monotonic wall-clock stopwatch.
#pragma once

#include <chrono>

namespace gdsm {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gdsm
