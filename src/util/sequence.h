// A named DNA sequence stored as 2-bit-style base codes.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/alphabet.h"

namespace gdsm {

/// A biological sequence: a display name plus encoded bases.
///
/// Bases are stored encoded (see alphabet.h) so the alignment kernels can
/// index substitution tables directly.  Positions are 0-based internally; the
/// reporting layer converts to the paper's 1-based coordinates.
class Sequence {
 public:
  Sequence() = default;
  Sequence(std::string name, std::string_view text)
      : name_(std::move(name)), bases_(encode_string(text)) {}
  Sequence(std::string name, std::basic_string<Base> bases)
      : name_(std::move(name)), bases_(std::move(bases)) {}

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return bases_.size(); }
  bool empty() const noexcept { return bases_.empty(); }

  Base operator[](std::size_t i) const noexcept { return bases_[i]; }
  const Base* data() const noexcept { return bases_.data(); }
  std::span<const Base> bases() const noexcept { return {bases_.data(), bases_.size()}; }

  /// Decoded ASCII text (A/C/G/T/N).
  std::string text() const { return decode_string({bases_.data(), bases_.size()}); }

  /// Subsequence [begin, end) as a new (unnamed-suffix) sequence.
  Sequence slice(std::size_t begin, std::size_t end) const;

  /// The reversed sequence (used by the Section 6 rebuild over reverses).
  Sequence reversed() const;

  /// The reverse complement.
  Sequence reverse_complement() const;

  void append(Base b) { bases_.push_back(b); }
  void set_name(std::string name) { name_ = std::move(name); }

  bool operator==(const Sequence& other) const noexcept {
    return bases_ == other.bases_;
  }

 private:
  std::string name_;
  std::basic_string<Base> bases_;
};

}  // namespace gdsm
