#include "util/fasta.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gdsm {

std::vector<Sequence> read_fasta(std::istream& in) {
  std::vector<Sequence> out;
  std::string line;
  std::string name;
  std::basic_string<Base> bases;
  bool have_record = false;

  auto flush = [&] {
    if (have_record) {
      out.emplace_back(name, std::move(bases));
      bases.clear();
    }
  };

  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      have_record = true;
      const auto ws = line.find_first_of(" \t", 1);
      name = line.substr(1, ws == std::string::npos ? std::string::npos : ws - 1);
    } else if (line[0] == ';') {
      continue;  // classic FASTA comment line
    } else {
      if (!have_record) {
        throw std::runtime_error("FASTA: sequence data before any '>' header");
      }
      for (char c : line) {
        if (c == ' ' || c == '\t') continue;
        bases.push_back(encode_base(c));
      }
    }
  }
  flush();
  return out;
}

namespace {
constexpr std::size_t kStreamBufBytes = 64 * 1024;
}  // namespace

FastaStreamReader::FastaStreamReader(const std::string& path)
    : file_(std::fopen(path.c_str(), "rb")), buf_(kStreamBufBytes) {
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open FASTA file: " + path);
  }
}

FastaStreamReader::~FastaStreamReader() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

bool FastaStreamReader::fill() {
  len_ = std::fread(buf_.data(), 1, buf_.size(),
                    static_cast<std::FILE*>(file_));
  pos_ = 0;
  return len_ > 0;
}

bool FastaStreamReader::consume(char c, Sequence& out) {
  switch (line_) {
    case Line::kStart:
      if (c == '\n') return false;  // blank line
      if (c == '>') {
        const bool emit = have_record_;
        if (emit) {
          out = Sequence(name_, std::move(bases_));
          bases_.clear();
        }
        name_.clear();
        have_record_ = true;
        line_ = Line::kHeaderName;
        return emit;
      }
      if (c == ';') {
        line_ = Line::kComment;  // classic FASTA comment line
        return false;
      }
      if (!have_record_) {
        throw std::runtime_error("FASTA: sequence data before any '>' header");
      }
      line_ = Line::kSeq;
      if (c != ' ' && c != '\t') bases_.push_back(encode_base(c));
      return false;
    case Line::kHeaderName:
      if (c == '\n') {
        line_ = Line::kStart;
      } else if (c == ' ' || c == '\t') {
        line_ = Line::kHeaderRest;  // name stops at the first whitespace
      } else {
        name_.push_back(c);
      }
      return false;
    case Line::kHeaderRest:
    case Line::kComment:
      if (c == '\n') line_ = Line::kStart;
      return false;
    case Line::kSeq:
      if (c == '\n') {
        line_ = Line::kStart;
      } else if (c != ' ' && c != '\t') {
        bases_.push_back(encode_base(c));
      }
      return false;
  }
  return false;
}

bool FastaStreamReader::next(Sequence& out) {
  for (;;) {
    if (pos_ == len_ && !fill()) break;
    const char c = buf_[pos_++];
    // A '\r' is only a line terminator when '\n' (or end of input) follows;
    // anywhere else the oracle feeds it through as ordinary data.
    if (cr_) {
      cr_ = false;
      if (c != '\n') consume('\r', out);
    }
    if (c == '\r') {
      cr_ = true;
      continue;
    }
    if (consume(c, out)) return true;
  }
  cr_ = false;  // trailing '\r' at end of input is stripped, like getline
  if (have_record_) {
    out = Sequence(name_, std::move(bases_));
    bases_.clear();
    have_record_ = false;
    return true;
  }
  return false;
}

std::vector<Sequence> read_fasta_file(const std::string& path, bool stream) {
  if (!stream) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open FASTA file: " + path);
    return read_fasta(in);
  }
  FastaStreamReader reader(path);
  std::vector<Sequence> out;
  Sequence s;
  while (reader.next(s)) out.push_back(std::move(s));
  return out;
}

void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs,
                 std::size_t width) {
  for (const auto& s : seqs) {
    out << '>' << s.name() << '\n';
    const std::string text = s.text();
    for (std::size_t i = 0; i < text.size(); i += width) {
      out << text.substr(i, width) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const std::vector<Sequence>& seqs,
                      std::size_t width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write FASTA file: " + path);
  write_fasta(out, seqs, width);
}

}  // namespace gdsm
