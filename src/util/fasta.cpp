#include "util/fasta.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gdsm {

std::vector<Sequence> read_fasta(std::istream& in) {
  std::vector<Sequence> out;
  std::string line;
  std::string name;
  std::basic_string<Base> bases;
  bool have_record = false;

  auto flush = [&] {
    if (have_record) {
      out.emplace_back(name, std::move(bases));
      bases.clear();
    }
  };

  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      have_record = true;
      const auto ws = line.find_first_of(" \t", 1);
      name = line.substr(1, ws == std::string::npos ? std::string::npos : ws - 1);
    } else if (line[0] == ';') {
      continue;  // classic FASTA comment line
    } else {
      if (!have_record) {
        throw std::runtime_error("FASTA: sequence data before any '>' header");
      }
      for (char c : line) {
        if (c == ' ' || c == '\t') continue;
        bases.push_back(encode_base(c));
      }
    }
  }
  flush();
  return out;
}

std::vector<Sequence> read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open FASTA file: " + path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs,
                 std::size_t width) {
  for (const auto& s : seqs) {
    out << '>' << s.name() << '\n';
    const std::string text = s.text();
    for (std::size_t i = 0; i < text.size(); i += width) {
      out << text.substr(i, width) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const std::vector<Sequence>& seqs,
                      std::size_t width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write FASTA file: " + path);
  write_fasta(out, seqs, width);
}

}  // namespace gdsm
