// Synthetic genome generation with planted homologies.
//
// The paper evaluates on real chromosomes/mitochondrial genomes from NCBI
// (15 kBP .. 400 kBP) and reports that two 400 kBP sequences share roughly
// 2000 similar regions of ~300 bp average size (Fig. 2).  We have no network
// access, so the generator below plants mutated, gapped copies of shared
// segments into otherwise-random DNA, giving (a) the same workload structure
// and (b) exact ground truth for tests and Table 2.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/sequence.h"

namespace gdsm {

/// Ground-truth record of one planted homologous region.
struct PlantedRegion {
  std::size_t s_begin = 0;  ///< 0-based start in the first sequence
  std::size_t s_end = 0;    ///< one past the end in the first sequence
  std::size_t t_begin = 0;  ///< 0-based start in the second sequence
  std::size_t t_end = 0;    ///< one past the end in the second sequence
};

struct HomologousPairSpec {
  std::size_t length_s = 50'000;      ///< length of the first sequence
  std::size_t length_t = 50'000;      ///< length of the second sequence
  std::size_t n_regions = 20;         ///< how many homologies to plant
  std::size_t region_len_mean = 300;  ///< mean planted-segment length (paper: ~300)
  std::size_t region_len_spread = 100;///< uniform +/- spread around the mean
  double substitution_rate = 0.05;    ///< per-base mutation probability in the copy
  double indel_rate = 0.01;           ///< per-base insertion/deletion probability
  std::uint64_t seed = 42;
};

struct HomologousPair {
  Sequence s;
  Sequence t;
  std::vector<PlantedRegion> regions;  ///< sorted by s_begin, non-overlapping in s
};

/// Uniform random DNA of the given length.
Sequence random_dna(std::size_t length, Rng& rng, std::string name = "random");

/// Applies point mutations and indels to `src`, as per the spec rates.
Sequence mutate(const Sequence& src, double substitution_rate, double indel_rate,
                Rng& rng);

/// Generates a pair of sequences with `n_regions` shared (mutated) segments
/// planted at random non-overlapping offsets of both sequences.
HomologousPair make_homologous_pair(const HomologousPairSpec& spec);

}  // namespace gdsm
