// Tiny --key=value / --flag command-line parser for examples and benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gdsm {

/// Parses `--key=value`, `--key value` and bare `--flag` arguments.
/// Positional arguments are collected in order.  Unknown keys are kept (the
/// caller decides whether to reject them via `unknown_keys`).
class Args {
 public:
  Args(int argc, const char* const* argv,
       const std::vector<std::string>& known_value_keys = {});

  bool has(const std::string& key) const { return kv_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& def = "") const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def = false) const;

  const std::vector<std::string>& positional() const { return positional_; }
  std::vector<std::string> unknown_keys(
      const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace gdsm
