#include "util/sequence.h"

#include <algorithm>
#include <stdexcept>

namespace gdsm {

Sequence Sequence::slice(std::size_t begin, std::size_t end) const {
  if (begin > end || end > bases_.size()) {
    throw std::out_of_range("Sequence::slice: invalid range");
  }
  return Sequence(name_ + "[" + std::to_string(begin) + ".." +
                      std::to_string(end) + ")",
                  bases_.substr(begin, end - begin));
}

Sequence Sequence::reversed() const {
  std::basic_string<Base> rev(bases_.rbegin(), bases_.rend());
  return Sequence(name_ + ".rev", std::move(rev));
}

Sequence Sequence::reverse_complement() const {
  std::basic_string<Base> rc;
  rc.reserve(bases_.size());
  for (auto it = bases_.rbegin(); it != bases_.rend(); ++it) {
    rc.push_back(complement(*it));
  }
  return Sequence(name_ + ".rc", std::move(rc));
}

}  // namespace gdsm
