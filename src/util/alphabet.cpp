#include "util/alphabet.h"

#include <array>

namespace gdsm {
namespace {

constexpr std::array<Base, 256> make_encode_table() {
  std::array<Base, 256> t{};
  for (auto& v : t) v = kBaseN;
  t['a'] = t['A'] = kBaseA;
  t['c'] = t['C'] = kBaseC;
  t['g'] = t['G'] = kBaseG;
  t['t'] = t['T'] = kBaseT;
  return t;
}

constexpr std::array<Base, 256> kEncode = make_encode_table();
constexpr char kDecode[kAlphabetSize] = {'A', 'C', 'G', 'T', 'N'};

}  // namespace

Base encode_base(char c) noexcept {
  return kEncode[static_cast<unsigned char>(c)];
}

char decode_base(Base b) noexcept {
  return b < kAlphabetSize ? kDecode[b] : '?';
}

bool is_strict_base(char c) noexcept {
  return kEncode[static_cast<unsigned char>(c)] != kBaseN;
}

Base complement(Base b) noexcept {
  switch (b) {
    case kBaseA: return kBaseT;
    case kBaseT: return kBaseA;
    case kBaseC: return kBaseG;
    case kBaseG: return kBaseC;
    default: return kBaseN;
  }
}

std::basic_string<Base> encode_string(std::string_view text) {
  std::basic_string<Base> out;
  out.reserve(text.size());
  for (char c : text) out.push_back(encode_base(c));
  return out;
}

std::string decode_string(std::basic_string_view<Base> bases) {
  std::string out;
  out.reserve(bases.size());
  for (Base b : bases) out.push_back(decode_base(b));
  return out;
}

}  // namespace gdsm
