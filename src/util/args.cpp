#include "util/args.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace gdsm {

Args::Args(int argc, const char* const* argv,
           const std::vector<std::string>& known_value_keys) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      std::string key = arg.substr(0, eq);
      std::string value = arg.substr(eq + 1);
      kv_[std::move(key)] = std::move(value);
      continue;
    }
    // "--key value" only when key is declared as value-taking, else a flag.
    const bool takes_value =
        std::find(known_value_keys.begin(), known_value_keys.end(), arg) !=
        known_value_keys.end();
    if (takes_value && i + 1 < argc) {
      kv_[arg] = argv[++i];
    } else {
      kv_[arg] = "1";
    }
  }
}

std::string Args::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Args::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second != "0" && it->second != "false" && it->second != "off";
}

std::vector<std::string> Args::unknown_keys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    if (std::find(known.begin(), known.end(), k) == known.end()) out.push_back(k);
  }
  return out;
}

}  // namespace gdsm
