#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace gdsm {

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << "  ";
      out.width(static_cast<std::streamsize>(widths[i]));
      out << std::left << row[i];
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  out << '\n';
}

std::string fmt_f(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_sec(double seconds) {
  const long long whole = static_cast<long long>(std::llround(seconds));
  std::string digits = std::to_string(whole);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace gdsm
