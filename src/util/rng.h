// Deterministic, fast PRNG (xoshiro256**) used everywhere randomness is
// needed, so every experiment in the repo is reproducible from a seed.
#pragma once

#include <cstdint>

namespace gdsm {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm).
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// SplitMix64-expands a single 64-bit seed into the full state, which is
  /// the recommended seeding procedure for xoshiro generators.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(operator()() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace gdsm
