// A small MPI-like message-passing layer over the in-process transport.
//
// The paper argues DSM "offers an easier programming model than its
// message-passing counterpart" (Section 7) and plans message passing for
// inter-cluster communication in future work.  This layer provides the
// counterpart: blocking tagged send/recv with (source, tag) matching plus
// the collectives the strategies need (barrier, broadcast, reduce, gather),
// implemented with the classic rendezvous-free eager protocol.
//
// Usage mirrors the DSM cluster:
//   mp::World world(8);
//   world.run([](mp::Comm& comm) {
//     if (comm.rank() == 0) comm.send_value(1, /*tag=*/0, 42);
//     else if (comm.rank() == 1) int v = comm.recv_value<int>(0, 0);
//   });
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <type_traits>
#include <vector>

#include "net/transport.h"

namespace gdsm::mp {

/// Wildcard source for recv.
inline constexpr int kAnySource = -1;
/// Wildcard tag for recv.
inline constexpr int kAnyTag = -1;

class World;

/// Per-rank communicator handle, valid inside World::run's program.
class Comm {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  // -- point to point ------------------------------------------------------
  void send(int dst, int tag, const void* data, std::size_t bytes);

  /// Blocks until a message matching (src, tag) arrives (wildcards allowed).
  /// Returns the payload; out parameters receive the actual source and tag.
  std::vector<std::byte> recv(int src, int tag, int* actual_src = nullptr,
                              int* actual_tag = nullptr);

  /// Typed convenience wrappers.
  template <typename T>
  void send_value(int dst, int tag, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dst, tag, &v, sizeof(T));
  }

  template <typename T>
  T recv_value(int src, int tag) {
    const auto bytes = recv(src, tag);
    T v;
    if (bytes.size() != sizeof(T)) {
      throw std::runtime_error("mp::recv_value: size mismatch");
    }
    std::memcpy(&v, bytes.data(), sizeof(T));
    return v;
  }

  template <typename T>
  void send_span(int dst, int tag, const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dst, tag, data, count * sizeof(T));
  }

  template <typename T>
  std::vector<T> recv_vector(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes = recv(src, tag);
    if (bytes.size() % sizeof(T) != 0) {
      throw std::runtime_error("mp::recv_vector: size not a multiple of T");
    }
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  // -- collectives (all ranks must participate, same order) -----------------
  void barrier();

  /// Root's buffer is broadcast into every rank's buffer.
  void bcast(int root, void* data, std::size_t bytes);

  template <typename T>
  T bcast_value(int root, T v) {
    bcast(root, &v, sizeof(T));
    return v;
  }

  /// Sum-reduction to every rank.
  template <typename T>
  T all_reduce_sum(T value) {
    static_assert(std::is_arithmetic_v<T>);
    if (rank_ != 0) {
      send_value(0, kReduceTag, value);
      return bcast_value(0, T{});
    }
    T total = value;
    for (int r = 1; r < size(); ++r) total += recv_value<T>(r, kReduceTag);
    return bcast_value(0, total);
  }

  /// Gathers each rank's byte buffer to root (returned vector indexed by
  /// rank at root; empty elsewhere).
  std::vector<std::vector<std::byte>> gather(int root, const void* data,
                                             std::size_t bytes);

 private:
  friend class World;
  Comm(World& world, int rank) : world_(world), rank_(rank) {}

  static constexpr int kBarrierTag = -1000;
  static constexpr int kBcastTag = -1001;
  static constexpr int kReduceTag = -1002;
  static constexpr int kGatherTag = -1003;

  World& world_;
  int rank_;
  std::list<net::Message> pending_;  ///< received but not yet matched
};

/// SPMD runner: one thread per rank.
class World {
 public:
  explicit World(int nprocs, net::FaultPlan faults = {});

  int size() const noexcept { return transport_.nodes(); }

  /// Runs `program` on every rank and joins; exceptions are rethrown.
  void run(const std::function<void(Comm&)>& program);

  /// Cumulative traffic (messages/bytes per source rank).
  net::TrafficCounters counters(int rank) const {
    return transport_.counters(rank);
  }
  net::TrafficCounters total_counters() const {
    return transport_.total_counters();
  }

  /// Injected-fault activity of the underlying transport (all zero when the
  /// world was built without a fault plan).
  net::FaultCounters fault_counters() const {
    return transport_.fault_counters();
  }

 private:
  friend class Comm;
  net::Transport transport_;
};

}  // namespace gdsm::mp
