#include "mp/comm.h"

#include <cstring>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace gdsm::mp {

int Comm::size() const noexcept { return world_.transport_.nodes(); }

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
  net::Message msg;
  msg.src = rank_;
  msg.dst = dst;
  msg.type = net::MsgType::kUserData;
  msg.a = static_cast<std::uint64_t>(static_cast<std::int64_t>(tag));
  msg.payload.resize(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);
  world_.transport_.send(std::move(msg));
}

std::vector<std::byte> Comm::recv(int src, int tag, int* actual_src,
                                  int* actual_tag) {
  auto matches = [&](const net::Message& m) {
    const int m_tag = static_cast<int>(static_cast<std::int64_t>(m.a));
    return (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m_tag == tag);
  };
  // Out-of-order messages stashed by earlier recvs are matched first, in
  // arrival order (MPI's non-overtaking rule per (source, tag) pair).
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (matches(*it)) {
      net::Message msg = std::move(*it);
      pending_.erase(it);
      if (actual_src != nullptr) *actual_src = msg.src;
      if (actual_tag != nullptr) {
        *actual_tag = static_cast<int>(static_cast<std::int64_t>(msg.a));
      }
      return std::move(msg.payload);
    }
  }
  while (true) {
    auto msg = world_.transport_.service_box(rank_).pop();
    if (!msg) throw std::runtime_error("mp::recv: world shut down mid-receive");
    if (!matches(*msg)) {
      pending_.push_back(*std::move(msg));
      continue;
    }
    if (actual_src != nullptr) *actual_src = msg->src;
    if (actual_tag != nullptr) {
      *actual_tag = static_cast<int>(static_cast<std::int64_t>(msg->a));
    }
    return std::move(msg->payload);
  }
}

void Comm::barrier() {
  // Central coordinator: everyone checks in with rank 0, rank 0 releases.
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) (void)recv(r, kBarrierTag);
    for (int r = 1; r < size(); ++r) send(r, kBarrierTag, nullptr, 0);
  } else {
    send(0, kBarrierTag, nullptr, 0);
    (void)recv(0, kBarrierTag);
  }
}

void Comm::bcast(int root, void* data, std::size_t bytes) {
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) send(r, kBcastTag, data, bytes);
    }
  } else {
    const auto payload = recv(root, kBcastTag);
    if (payload.size() != bytes) {
      throw std::runtime_error("mp::bcast: size mismatch");
    }
    if (bytes > 0) std::memcpy(data, payload.data(), bytes);
  }
}

std::vector<std::vector<std::byte>> Comm::gather(int root, const void* data,
                                                 std::size_t bytes) {
  std::vector<std::vector<std::byte>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)].resize(bytes);
    if (bytes > 0) {
      std::memcpy(out[static_cast<std::size_t>(root)].data(), data, bytes);
    }
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      out[static_cast<std::size_t>(r)] = recv(r, kGatherTag);
    }
  } else {
    send(root, kGatherTag, data, bytes);
  }
  return out;
}

World::World(int nprocs, net::FaultPlan faults)
    : transport_(nprocs, faults) {
  if (nprocs <= 0) throw std::invalid_argument("mp::World: need >= 1 rank");
}

void World::run(const std::function<void(Comm&)>& program) {
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    threads.emplace_back([&, r] {
      Comm comm(*this, r);
      try {
        program(comm);
      } catch (...) {
        {
          const std::scoped_lock guard(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        transport_.shutdown();  // unblock ranks stuck in recv
      }
    });
  }
  for (auto& t : threads) t.join();
  // Flush any fault-delayed stragglers so a later run() (or counters read)
  // never observes messages from this program.
  transport_.quiesce();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gdsm::mp
