// Scalar reference backend.  The behavioural contract every vector backend
// is held to (tests/simd_kernel_test.cpp): same scores, same edges, same
// tie-breaks.  Sweeps b-major so the strict `v > best` update yields the
// first maximum in (b, a) lexicographic order.
#include "simd/kernels.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace gdsm::simd::scalar {
namespace {

inline std::int32_t sub_score(Base x, Base y, const ScoreParams& sp) {
  return (x == y && x != kBaseN) ? sp.match : sp.mismatch;
}

// Degenerate blocks: an empty dimension still defines the requested edges
// (they are just the boundary values), including the affine gap-state edges.
inline bool handle_empty(const DiagBlock& blk) {
  if (blk.a_len != 0 && blk.b_len != 0) return false;
  if (blk.a_len == 0 && blk.out_last_a != nullptr) {
    for (std::size_t b = 0; b < blk.b_len; ++b)
      blk.out_last_a[b] = blk.bound_b ? blk.bound_b[b] : 0;
  }
  if (blk.a_len == 0 && blk.out_last_a_f != nullptr) {
    for (std::size_t b = 0; b < blk.b_len; ++b)
      blk.out_last_a_f[b] = blk.bound_f ? blk.bound_f[b] : kNegInf;
  }
  if (blk.b_len == 0 && blk.out_last_b != nullptr) {
    for (std::size_t a = 0; a < blk.a_len; ++a)
      blk.out_last_b[a] = blk.bound_a ? blk.bound_a[a] : 0;
  }
  if (blk.b_len == 0 && blk.out_last_b_e != nullptr) {
    for (std::size_t a = 0; a < blk.a_len; ++a)
      blk.out_last_b_e[a] = blk.bound_e ? blk.bound_e[a] : kNegInf;
  }
  return true;
}

// Shared b-major sweep; Visit sees every cell as (a, b, v).
template <class Visit>
void sweep(const DiagBlock& blk, const ScoreParams& sp, Visit&& visit) {
  const std::size_t A = blk.a_len;
  const std::size_t B = blk.b_len;
  std::vector<std::int32_t> prev(A);  // column b-1
  std::vector<std::int32_t> cur(A);   // column b
  for (std::size_t b = 0; b < B; ++b) {
    const Base cb = blk.b_seq[b];
    const std::int32_t left_bound = blk.bound_b ? blk.bound_b[b] : 0;
    for (std::size_t a = 0; a < A; ++a) {
      const std::int32_t up =
          b ? prev[a] : (blk.bound_a ? blk.bound_a[a] : 0);  // v(a, b-1)
      const std::int32_t diag =
          a ? (b ? prev[a - 1] : (blk.bound_a ? blk.bound_a[a - 1] : 0))
            : (b ? (blk.bound_b ? blk.bound_b[b - 1] : 0) : blk.corner);
      const std::int32_t left = a ? cur[a - 1] : left_bound;  // v(a-1, b)
      const std::int32_t v =
          std::max({std::int32_t{0}, diag + sub_score(blk.a_seq[a], cb, sp),
                    up + sp.gap, left + sp.gap});
      cur[a] = v;
      visit(a, b, v);
    }
    if (blk.out_last_a != nullptr) blk.out_last_a[b] = cur[A - 1];
    std::swap(prev, cur);
  }
  if (blk.out_last_b != nullptr)
    std::copy(prev.begin(), prev.end(), blk.out_last_b);
}

// Gotoh three-matrix sweep (sp.gap_open != 0), same b-major order and the
// same strict first-of-max contract on H.  E is the gap state consuming
// b-characters (recurrence reads column b-1), F the one consuming
// a-characters (reads the running value along a); H is floored at zero but
// E/F are not — a negative gap state can still be continued, it just cannot
// surface in H past the floor.
template <class Visit>
void sweep_affine(const DiagBlock& blk, const ScoreParams& sp, Visit&& visit) {
  const std::size_t A = blk.a_len;
  const std::size_t B = blk.b_len;
  const std::int32_t ext = sp.gap;
  const std::int32_t oe = sp.gap_open + sp.gap;
  std::vector<std::int32_t> hprev(A), hcur(A);  // H columns b-1 / b
  std::vector<std::int32_t> eprev(A), ecur(A);  // E columns b-1 / b
  for (std::size_t b = 0; b < B; ++b) {
    const Base cb = blk.b_seq[b];
    const std::int32_t left_bound = blk.bound_b ? blk.bound_b[b] : 0;
    std::int32_t f = blk.bound_f ? blk.bound_f[b] : kNegInf;  // F(a-1, b)
    for (std::size_t a = 0; a < A; ++a) {
      const std::int32_t h_up =
          b ? hprev[a] : (blk.bound_a ? blk.bound_a[a] : 0);  // H(a, b-1)
      const std::int32_t e_up =
          b ? eprev[a] : (blk.bound_e ? blk.bound_e[a] : kNegInf);
      const std::int32_t diag =
          a ? (b ? hprev[a - 1] : (blk.bound_a ? blk.bound_a[a - 1] : 0))
            : (b ? (blk.bound_b ? blk.bound_b[b - 1] : 0) : blk.corner);
      const std::int32_t h_left = a ? hcur[a - 1] : left_bound;  // H(a-1, b)
      const std::int32_t e = std::max(h_up + oe, e_up + ext);
      f = std::max(h_left + oe, f + ext);
      const std::int32_t v =
          std::max({std::int32_t{0},
                    diag + sub_score(blk.a_seq[a], cb, sp), e, f});
      hcur[a] = v;
      ecur[a] = e;
      visit(a, b, v);
    }
    if (blk.out_last_a != nullptr) blk.out_last_a[b] = hcur[A - 1];
    if (blk.out_last_a_f != nullptr) blk.out_last_a_f[b] = f;
    std::swap(hprev, hcur);
    std::swap(eprev, ecur);
  }
  if (blk.out_last_b != nullptr)
    std::copy(hprev.begin(), hprev.end(), blk.out_last_b);
  if (blk.out_last_b_e != nullptr)
    std::copy(eprev.begin(), eprev.end(), blk.out_last_b_e);
}

// Both gap models through one Visit-shaped entry.
template <class Visit>
void sweep_any(const DiagBlock& blk, const ScoreParams& sp, Visit&& visit) {
  if (sp.gap_open != 0)
    sweep_affine(blk, sp, std::forward<Visit>(visit));
  else
    sweep(blk, sp, std::forward<Visit>(visit));
}

}  // namespace

BestCell block_best(const DiagBlock& blk, const ScoreParams& sp) {
  BestCell best;
  if (handle_empty(blk)) return best;
  sweep_any(blk, sp, [&](std::size_t a, std::size_t b, std::int32_t v) {
    if (v > best.score) best = BestCell{v, a, b};
  });
  return best;
}

void block_count(const DiagBlock& blk, const ScoreParams& sp,
                 std::int32_t threshold, std::uint64_t* count_by_a) {
  if (handle_empty(blk)) return;
  sweep_any(blk, sp, [&](std::size_t a, std::size_t, std::int32_t v) {
    if (v >= threshold) ++count_by_a[a];
  });
}

void block_hits(const DiagBlock& blk, const ScoreParams& sp,
                std::int32_t threshold, const HitSink& sink) {
  if (handle_empty(blk)) return;
  sweep_any(blk, sp, [&](std::size_t a, std::size_t b, std::int32_t v) {
    if (v >= threshold) sink(a, b, v);
  });
}

void nw_last_row(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                 std::size_t b_len, const ScoreParams& sp,
                 std::int32_t* out_by_a) {
  const std::int32_t gap = sp.gap;
  std::vector<std::int32_t> prev(a_len);
  std::vector<std::int32_t> cur(a_len);
  for (std::size_t a = 0; a < a_len; ++a)
    prev[a] = static_cast<std::int32_t>(a + 1) * gap;  // v(a, -1)
  for (std::size_t b = 0; b < b_len; ++b) {
    const Base cb = b_seq[b];
    std::int32_t left = static_cast<std::int32_t>(b + 1) * gap;  // v(-1, b)
    for (std::size_t a = 0; a < a_len; ++a) {
      const std::int32_t diag =
          a ? prev[a - 1] : static_cast<std::int32_t>(b) * gap;
      const std::int32_t v = std::max(
          {diag + sub_score(a_seq[a], cb, sp), prev[a] + gap, left + gap});
      cur[a] = v;
      left = v;
    }
    std::swap(prev, cur);
  }
  std::copy(prev.begin(), prev.end(), out_by_a);
}

void nw_last_row_affine(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                        std::size_t b_len, const ScoreParams& sp,
                        std::int32_t tb_open, std::int32_t* out_h,
                        std::int32_t* out_e) {
  const std::int32_t ext = sp.gap;
  const std::int32_t open = sp.gap_open;
  std::vector<std::int32_t> h(a_len), e(a_len);    // columns b-1
  std::vector<std::int32_t> hc(a_len), ec(a_len);  // columns b
  for (std::size_t a = 0; a < a_len; ++a) {
    h[a] = open + static_cast<std::int32_t>(a + 1) * ext;  // H(a, -1)
    e[a] = kNegInf;                                        // E(a, -1)
  }
  for (std::size_t b = 0; b < b_len; ++b) {
    const Base cb = b_seq[b];
    // b-gap runs touching b == 0 are charged tb_open instead of gap_open —
    // the Myers–Miller boundary discount (tb_open == gap_open normally).
    const std::int32_t open_b = b == 0 ? tb_open : open;
    const std::int32_t h_border =
        tb_open + static_cast<std::int32_t>(b + 1) * ext;  // H(-1, b)
    const std::int32_t diag_border =
        b ? tb_open + static_cast<std::int32_t>(b) * ext : 0;  // H(-1, b-1)
    std::int32_t f = kNegInf;                                  // F(-1, b)
    for (std::size_t a = 0; a < a_len; ++a) {
      const std::int32_t diag = a ? h[a - 1] : diag_border;
      const std::int32_t h_left = a ? hc[a - 1] : h_border;
      const std::int32_t ev = std::max(h[a] + open_b + ext, e[a] + ext);
      f = std::max(h_left + open + ext, f + ext);
      hc[a] = std::max({diag + sub_score(a_seq[a], cb, sp), ev, f});
      ec[a] = ev;
    }
    std::swap(h, hc);
    std::swap(e, ec);
  }
  std::copy(h.begin(), h.end(), out_h);
  if (out_e != nullptr) std::copy(e.begin(), e.end(), out_e);
}

}  // namespace gdsm::simd::scalar

// The striped-scalar backend: the portable reference instantiation of the
// striped sweep (fixed-size lane arrays the compiler auto-vectorizes), with
// the scalar anti-diagonal backend as its wide fallback.
#include "simd/striped_kernel_inl.h"

namespace gdsm::simd::striped_scalar {

BestCell block_best(const DiagBlock& blk, const ScoreParams& sp) {
  return detail::striped_block_best_impl<detail::StripedScalar8,
                                         detail::StripedScalar16>(
      blk, sp, &scalar::block_best);
}

}  // namespace gdsm::simd::striped_scalar
