// Scalar reference backend.  The behavioural contract every vector backend
// is held to (tests/simd_kernel_test.cpp): same scores, same edges, same
// tie-breaks.  Sweeps b-major so the strict `v > best` update yields the
// first maximum in (b, a) lexicographic order.
#include "simd/kernels.h"

#include <algorithm>
#include <vector>

namespace gdsm::simd::scalar {
namespace {

inline std::int32_t sub_score(Base x, Base y, const ScoreParams& sp) {
  return (x == y && x != kBaseN) ? sp.match : sp.mismatch;
}

// Degenerate blocks: an empty dimension still defines the requested edges
// (they are just the boundary values).
inline bool handle_empty(const DiagBlock& blk) {
  if (blk.a_len != 0 && blk.b_len != 0) return false;
  if (blk.a_len == 0 && blk.out_last_a != nullptr) {
    for (std::size_t b = 0; b < blk.b_len; ++b)
      blk.out_last_a[b] = blk.bound_b ? blk.bound_b[b] : 0;
  }
  if (blk.b_len == 0 && blk.out_last_b != nullptr) {
    for (std::size_t a = 0; a < blk.a_len; ++a)
      blk.out_last_b[a] = blk.bound_a ? blk.bound_a[a] : 0;
  }
  return true;
}

// Shared b-major sweep; Visit sees every cell as (a, b, v).
template <class Visit>
void sweep(const DiagBlock& blk, const ScoreParams& sp, Visit&& visit) {
  const std::size_t A = blk.a_len;
  const std::size_t B = blk.b_len;
  std::vector<std::int32_t> prev(A);  // column b-1
  std::vector<std::int32_t> cur(A);   // column b
  for (std::size_t b = 0; b < B; ++b) {
    const Base cb = blk.b_seq[b];
    const std::int32_t left_bound = blk.bound_b ? blk.bound_b[b] : 0;
    for (std::size_t a = 0; a < A; ++a) {
      const std::int32_t up =
          b ? prev[a] : (blk.bound_a ? blk.bound_a[a] : 0);  // v(a, b-1)
      const std::int32_t diag =
          a ? (b ? prev[a - 1] : (blk.bound_a ? blk.bound_a[a - 1] : 0))
            : (b ? (blk.bound_b ? blk.bound_b[b - 1] : 0) : blk.corner);
      const std::int32_t left = a ? cur[a - 1] : left_bound;  // v(a-1, b)
      const std::int32_t v =
          std::max({std::int32_t{0}, diag + sub_score(blk.a_seq[a], cb, sp),
                    up + sp.gap, left + sp.gap});
      cur[a] = v;
      visit(a, b, v);
    }
    if (blk.out_last_a != nullptr) blk.out_last_a[b] = cur[A - 1];
    std::swap(prev, cur);
  }
  if (blk.out_last_b != nullptr)
    std::copy(prev.begin(), prev.end(), blk.out_last_b);
}

}  // namespace

BestCell block_best(const DiagBlock& blk, const ScoreParams& sp) {
  BestCell best;
  if (handle_empty(blk)) return best;
  sweep(blk, sp, [&](std::size_t a, std::size_t b, std::int32_t v) {
    if (v > best.score) best = BestCell{v, a, b};
  });
  return best;
}

void block_count(const DiagBlock& blk, const ScoreParams& sp,
                 std::int32_t threshold, std::uint64_t* count_by_a) {
  if (handle_empty(blk)) return;
  sweep(blk, sp, [&](std::size_t a, std::size_t, std::int32_t v) {
    if (v >= threshold) ++count_by_a[a];
  });
}

void block_hits(const DiagBlock& blk, const ScoreParams& sp,
                std::int32_t threshold, const HitSink& sink) {
  if (handle_empty(blk)) return;
  sweep(blk, sp, [&](std::size_t a, std::size_t b, std::int32_t v) {
    if (v >= threshold) sink(a, b, v);
  });
}

void nw_last_row(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                 std::size_t b_len, const ScoreParams& sp,
                 std::int32_t* out_by_a) {
  const std::int32_t gap = sp.gap;
  std::vector<std::int32_t> prev(a_len);
  std::vector<std::int32_t> cur(a_len);
  for (std::size_t a = 0; a < a_len; ++a)
    prev[a] = static_cast<std::int32_t>(a + 1) * gap;  // v(a, -1)
  for (std::size_t b = 0; b < b_len; ++b) {
    const Base cb = b_seq[b];
    std::int32_t left = static_cast<std::int32_t>(b + 1) * gap;  // v(-1, b)
    for (std::size_t a = 0; a < a_len; ++a) {
      const std::int32_t diag =
          a ? prev[a - 1] : static_cast<std::int32_t>(b) * gap;
      const std::int32_t v = std::max(
          {diag + sub_score(a_seq[a], cb, sp), prev[a] + gap, left + gap});
      cur[a] = v;
      left = v;
    }
    std::swap(prev, cur);
  }
  std::copy(prev.begin(), prev.end(), out_by_a);
}

}  // namespace gdsm::simd::scalar
