// AVX2 backend: instantiates the shared anti-diagonal sweep over the 256-bit
// engines.  This file is compiled with -mavx2 (see CMakeLists.txt); the
// binary stays runnable on baseline x86-64 because dispatch.cpp only calls
// in here after a CPUID check.
#if defined(__x86_64__) || defined(__i386__)

#include "simd/engine_avx2.h"
#include "simd/diag_kernel_inl.h"

namespace gdsm::simd::avx2 {

using detail::EngineAvx16;
using detail::EngineAvx32;
using detail::Mode;

BestCell block_best(const DiagBlock& blk, const ScoreParams& sp) {
  BestCell best;
  detail::run_local<EngineAvx16, EngineAvx32, Mode::kBest>(
      blk, sp, 0, &best, nullptr, nullptr);
  return best;
}

void block_count(const DiagBlock& blk, const ScoreParams& sp,
                 std::int32_t threshold, std::uint64_t* count_by_a) {
  detail::run_local<EngineAvx16, EngineAvx32, Mode::kCount>(
      blk, sp, threshold, nullptr, count_by_a, nullptr);
}

void block_hits(const DiagBlock& blk, const ScoreParams& sp,
                std::int32_t threshold, const HitSink& sink) {
  detail::run_local<EngineAvx16, EngineAvx32, Mode::kHits>(
      blk, sp, threshold, nullptr, nullptr, &sink);
}

void nw_last_row(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                 std::size_t b_len, const ScoreParams& sp,
                 std::int32_t* out_by_a) {
  detail::run_nw<EngineAvx32>(a_seq, a_len, b_seq, b_len, sp, out_by_a);
}

void nw_last_row_affine(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                        std::size_t b_len, const ScoreParams& sp,
                        std::int32_t tb_open, std::int32_t* out_h,
                        std::int32_t* out_e) {
  detail::run_nw_affine<EngineAvx32>(a_seq, a_len, b_seq, b_len, sp, tb_open,
                                     out_h, out_e);
}

}  // namespace gdsm::simd::avx2

// Striped-AVX2: the Farrar sweep over the 256-bit unsigned saturating
// engines; ineligible blocks delegate to the anti-diagonal AVX2 backend.
#include "simd/striped_kernel_inl.h"

namespace gdsm::simd::striped_avx2 {

BestCell block_best(const DiagBlock& blk, const ScoreParams& sp) {
  return detail::striped_block_best_impl<detail::StripedAvx8,
                                         detail::StripedAvx16>(
      blk, sp, &avx2::block_best);
}

}  // namespace gdsm::simd::striped_avx2

#endif  // x86
