// Anti-diagonal strip sweep, templated over a lane engine.
//
// Included only by backend translation units that are compiled with the
// matching ISA flags (kernel_sse41.cpp, kernel_avx2.cpp) — never from
// generic code.  The engine types (engine_sse41.h / engine_avx2.h) supply
// the vector width, lane type and the dozen primitive ops; everything about
// the sweep itself lives here once.
//
// Strip scheme (the parasail "diag" layout adapted to blocked boundaries):
// lanes run along `a` in strips of L = E::kLanes; within a strip, step d
// computes the anti-diagonal where lane l holds cell (a0 + l, d - l).  Three
// phases per strip:
//
//   ramp    d in [0, L)          lane l joins at d == l; its v(a, -1) /
//                                v(a-1, -1) inputs are blended in from the
//                                strip's bound_a values with a lane==d mask
//   steady  d in [L, B)          every lane in range, no masks on the
//                                recurrence, one blend-free inner loop
//   tail    d in [B, B+aeff-1)   lane l leaves after d == B-1+l
//
// Between strips the boundary column Hb (Hb[0] = corner, Hb[1+b] = v(-1,b))
// is updated *in place*: at step d the strip's trailing lane L-1 holds
// v(a0+L-1, d-L+1), which is exactly the next strip's v(-1, b) — and the
// write lands L-1 slots behind every future read, so no second buffer is
// needed.  The last strip routes the same values to out_last_a instead.
//
// Masks come from sliding windows over three static 2L-entry tables (all
// ones / single one / all zeros patterns); loading L lanes at offset L-1-d
// produces the lane==d or lane<=d masks without any per-step table build.
//
// Out-of-range lanes are never masked *inside* the recurrence: a lane's
// neighbours read its value only at steps where that value is in range (see
// the phase table above), so garbage cannot propagate.  Masks are applied
// only where results leave the registers: best/count/hit tracking and the
// edge captures.
//
// Best-cell tracking keeps per-lane running maxima in the vector (strict
// greater-than, so each lane records the *first* step its maximum appeared)
// plus a per-lane step stamp.  16-bit step stamps wrap, so the sweep is cut
// into segments of E::kSegSteps steps, flushed to 32/64-bit scalars between
// segments; the same cadence bounds the 16-bit hit counters of count mode.
// Cross-lane ties are resolved at flush time by lexicographic (b, a), which
// reproduces a row-major scalar scan with rows on b — see kernels.h.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "simd/kernels.h"

namespace gdsm::simd::detail {

inline constexpr int kMaxLanes = 16;     // padding unit; >= every engine's kLanes
inline constexpr Base kSentinel = 0xFF;  // padding char; matches only other
                                         // padding, which is always masked out

// Reusable per-thread scratch: padded copies of the inputs so every vector
// load is in-bounds, plus the in-place boundary columns (H always; F and the
// padded E boundary only for affine sweeps).
struct Scratch {
  std::vector<Base> a_pad;
  std::vector<Base> b_rev;
  std::vector<std::int32_t> hb;
  std::vector<std::int32_t> ba_pad;
  std::vector<std::int32_t> hb_f;
  std::vector<std::int32_t> be_pad;
};

inline Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

struct Prepped {
  const Base* a = nullptr;           // a_seq padded with kMaxLanes sentinels
  const Base* brev = nullptr;        // brev[B-1-b] = b_seq[b]; padded both ends
  std::int32_t* hb = nullptr;        // boundary column, size B+1
  const std::int32_t* ba = nullptr;  // bound_a padded with kMaxLanes zeros
  std::int32_t bound_min = 0;        // min over corner/bound_a/bound_b and 0
  std::int32_t bound_max = 0;        // max over the same (affine: E/F too,
                                     // kNegInf sentinels excluded)
  // Affine extras (prep(blk, /*affine=*/true) only):
  std::int32_t* hb_f = nullptr;      // F boundary column, size B+1
  const std::int32_t* be = nullptr;  // bound_e padded with kMaxLanes kNegInf
};

inline Prepped prep(const DiagBlock& blk, bool affine = false) {
  Scratch& s = scratch();
  const std::size_t A = blk.a_len;
  const std::size_t B = blk.b_len;
  Prepped p;

  s.a_pad.assign(A + kMaxLanes, kSentinel);
  std::copy(blk.a_seq, blk.a_seq + A, s.a_pad.begin());
  p.a = s.a_pad.data();

  s.b_rev.assign(B + 2 * kMaxLanes, kSentinel);
  for (std::size_t b = 0; b < B; ++b)
    s.b_rev[kMaxLanes + (B - 1 - b)] = blk.b_seq[b];
  p.brev = s.b_rev.data() + kMaxLanes;

  s.hb.resize(B + 1);
  s.hb[0] = blk.corner;
  if (blk.bound_b != nullptr)
    std::copy(blk.bound_b, blk.bound_b + B, s.hb.begin() + 1);
  else
    std::fill(s.hb.begin() + 1, s.hb.end(), 0);
  p.hb = s.hb.data();

  p.bound_min = std::min<std::int32_t>(0, blk.corner);
  p.bound_max = std::max<std::int32_t>(0, blk.corner);
  if (blk.bound_a != nullptr) {
    s.ba_pad.assign(A + kMaxLanes, 0);
    std::copy(blk.bound_a, blk.bound_a + A, s.ba_pad.begin());
    p.ba = s.ba_pad.data();
    for (std::size_t a = 0; a < A; ++a) {
      p.bound_min = std::min(p.bound_min, blk.bound_a[a]);
      p.bound_max = std::max(p.bound_max, blk.bound_a[a]);
    }
  }
  if (blk.bound_b != nullptr) {
    for (std::size_t b = 0; b < B; ++b) {
      p.bound_min = std::min(p.bound_min, blk.bound_b[b]);
      p.bound_max = std::max(p.bound_max, blk.bound_b[b]);
    }
  }

  if (affine) {
    // Gap-state boundaries.  kNegInf sentinels ("no run crosses this edge")
    // are excluded from the bound window: in 16-bit mode they saturate to
    // -32768, which any real open branch beats, so they never constrain the
    // routing decision.
    const auto widen = [&](std::int32_t v) {
      if (v <= kNegInf / 2) return;
      p.bound_min = std::min(p.bound_min, v);
      p.bound_max = std::max(p.bound_max, v);
    };
    s.hb_f.resize(B + 1);
    s.hb_f[0] = kNegInf;  // F has no diagonal dependency; never read
    if (blk.bound_f != nullptr) {
      std::copy(blk.bound_f, blk.bound_f + B, s.hb_f.begin() + 1);
      for (std::size_t b = 0; b < B; ++b) widen(blk.bound_f[b]);
    } else {
      std::fill(s.hb_f.begin() + 1, s.hb_f.end(), kNegInf);
    }
    p.hb_f = s.hb_f.data();
    s.be_pad.assign(A + kMaxLanes, kNegInf);
    if (blk.bound_e != nullptr) {
      std::copy(blk.bound_e, blk.bound_e + A, s.be_pad.begin());
      for (std::size_t a = 0; a < A; ++a) widen(blk.bound_e[a]);
    }
    p.be = s.be_pad.data();
  }
  return p;
}

enum class Mode { kBest, kCount, kHits };

template <class E, Mode M>
void local_sweep(const DiagBlock& blk, const Prepped& pp, const ScoreParams& sp,
                 std::int32_t threshold, BestCell* best_out,
                 std::uint64_t* count_by_a, const HitSink* sink) {
  using V = typename E::V;
  using Lane = typename E::Lane;
  constexpr int L = E::kLanes;
  const std::size_t A = blk.a_len;
  const std::size_t B = blk.b_len;
  assert(A >= 1 && B >= static_cast<std::size_t>(2 * L));

  struct Tables {
    alignas(64) Lane valid[2 * L];  // lane<=d mask window
    alignas(64) Lane eq[2 * L];     // lane==d mask window
    alignas(64) Lane tail[2 * L];   // lane>=d-B+1 mask window
    Tables() {
      for (int i = 0; i < 2 * L; ++i) {
        valid[i] = i < L ? Lane(-1) : Lane(0);
        eq[i] = i == L - 1 ? Lane(-1) : Lane(0);
        tail[i] = i < L ? Lane(0) : Lane(-1);
      }
    }
  };
  static const Tables tbl;

  const V vGap = E::bcast(sp.gap);
  const V vMatch = E::bcast(sp.match);
  const V vMis = E::bcast(sp.mismatch);
  const V vN = E::bcast(kBaseN);
  const V vZero = E::zero();
  const V vOne = E::bcast(1);
  const V vThrM1 = E::bcast(threshold - 1);  // v >= thr  <=>  v > thr-1

  BestCell best;
  std::int32_t* hb = pp.hb;
  alignas(64) Lane tmp[L];
  alignas(64) Lane tmp_score[L];
  alignas(64) Lane tmp_step[L];

  for (std::size_t a0 = 0; a0 < A; a0 += L) {
    const std::size_t aeff = std::min<std::size_t>(L, A - a0);
    const bool last_strip = a0 + L >= A;
    const V vChA = E::load_chars(pp.a + a0);
    const V vAn = E::cmpeq(vChA, vN);  // a-char is N: never a match
    const std::int32_t corner_strip =
        a0 == 0 ? blk.corner : (pp.ba != nullptr ? pp.ba[a0 - 1] : 0);
    hb[0] = corner_strip;
    const V vHaUp = pp.ba != nullptr ? E::load_bound(pp.ba + a0) : vZero;
    const V vHaDiag = E::shift_in(vHaUp, corner_strip);
    const V vActive = E::loadu(tbl.valid + (L - static_cast<int>(aeff)));
    std::int32_t* edge_dst = last_strip ? blk.out_last_a : hb + 1;
    const std::size_t edge_lane = (last_strip ? aeff : L) - 1;

    V vHp = vZero, vHpp = vZero;
    V vBest = vZero, vStepBest = vZero;
    V vCnt = vZero;
    V vStep = vZero;
    std::size_t seg_base = 0;
    std::int32_t lane_best[L] = {};
    std::size_t lane_best_d[L] = {};

    // Drain the vector accumulators into exact scalar ones; called at every
    // segment boundary and once after the strip's last step.
    auto flush = [&](std::size_t next_d) {
      if constexpr (M == Mode::kBest) {
        E::storeu(tmp_score, vBest);
        E::storeu(tmp_step, vStepBest);
        for (std::size_t l = 0; l < aeff; ++l) {
          if (static_cast<std::int32_t>(tmp_score[l]) > lane_best[l]) {
            lane_best[l] = tmp_score[l];
            lane_best_d[l] = seg_base + static_cast<std::size_t>(tmp_step[l]);
          }
        }
        vStepBest = vZero;
      } else if constexpr (M == Mode::kCount) {
        E::storeu(tmp_score, vCnt);
        for (std::size_t l = 0; l < aeff; ++l)
          count_by_a[a0 + l] += static_cast<std::uint64_t>(tmp_score[l]);
        vCnt = vZero;
      }
      vStep = vZero;
      seg_base = next_d;
    };

    auto step = [&](std::size_t d, V vEqMask, bool blend_boundary, V vMask) {
      const V vChB =
          E::load_chars(pp.brev + static_cast<std::ptrdiff_t>(B - 1) -
                        static_cast<std::ptrdiff_t>(d));
      const V vSub = E::blend(vMis, vMatch, E::andnot(vAn, E::cmpeq(vChA, vChB)));
      const std::int32_t hb_diag = d <= B ? hb[d] : 0;
      const std::int32_t hb_vert = d + 1 <= B ? hb[d + 1] : 0;
      V vDiag = E::shift_in(vHpp, hb_diag);
      V vHoriz = vHp;
      const V vVert = E::shift_in(vHp, hb_vert);
      if (blend_boundary) {
        vDiag = E::blend(vDiag, vHaDiag, vEqMask);
        vHoriz = E::blend(vHoriz, vHaUp, vEqMask);
      }
      V vH = E::max(E::add(vDiag, vSub), E::add(E::max(vVert, vHoriz), vGap));
      vH = E::max(vH, vZero);
      E::storeu(tmp, vH);
      if (edge_dst != nullptr && d >= edge_lane && d - edge_lane < B)
        edge_dst[d - edge_lane] = tmp[edge_lane];
      if (blk.out_last_b != nullptr && d + 1 >= B && d + 1 - B < aeff)
        blk.out_last_b[a0 + (d + 1 - B)] = tmp[d + 1 - B];
      if constexpr (M == Mode::kBest) {
        const V vCand = E::and_(vH, vMask);
        vStepBest = E::blend(vStepBest, vStep, E::cmpgt(vCand, vBest));
        vBest = E::max(vBest, vCand);
      } else if constexpr (M == Mode::kCount) {
        vCnt = E::sub(vCnt, E::and_(E::cmpgt(vH, vThrM1), vMask));
      } else {
        const unsigned mm = static_cast<unsigned>(
            E::movemask(E::and_(E::cmpgt(vH, vThrM1), vMask)));
        if (mm != 0) {
          for (int l = 0; l < L; ++l)
            if (mm & (1u << (l * E::kMaskBitsPerLane)))
              (*sink)(a0 + l, d - l, tmp[l]);
        }
      }
      vStep = E::add(vStep, vOne);
      vHpp = vHp;
      vHp = vH;
    };

    for (std::size_t d = 0; d < static_cast<std::size_t>(L); ++d) {
      const int off = L - 1 - static_cast<int>(d);
      step(d, E::loadu(tbl.eq + off), true,
           E::and_(E::loadu(tbl.valid + off), vActive));
    }
    std::size_t d = L;
    while (d < B) {
      const std::size_t seg_end =
          std::min(B, seg_base + static_cast<std::size_t>(E::kSegSteps));
      for (; d < seg_end; ++d) step(d, vZero, false, vActive);
      if (d < B) flush(d);
    }
    for (; d < B + aeff - 1; ++d) {
      const int off = L - 1 - static_cast<int>(d - B);
      step(d, vZero, false, E::and_(E::loadu(tbl.tail + off), vActive));
    }
    flush(d);

    if constexpr (M == Mode::kBest) {
      for (std::size_t l = 0; l < aeff; ++l) {
        if (lane_best[l] <= 0) continue;
        const std::size_t bc = lane_best_d[l] - l;
        const std::size_t ac = a0 + l;
        if (lane_best[l] > best.score ||
            (lane_best[l] == best.score &&
             (bc < best.b || (bc == best.b && ac < best.a))))
          best = BestCell{lane_best[l], ac, bc};
      }
    }
  }
  if constexpr (M == Mode::kBest) *best_out = best;
}

// Clamp a boundary scalar before it enters a lane: 16-bit lanes represent
// kNegInf as the saturation floor -32768 (still below every real value, and
// saturating adds keep it there), 32-bit lanes pass values through.
template <class E>
inline std::int32_t lane_clip(std::int32_t x) {
  if constexpr (sizeof(typename E::Lane) == 2)
    return std::max<std::int32_t>(x, INT16_MIN);
  else
    return x;
}

// Gotoh affine anti-diagonal sweep: identical strip scheme, phase structure
// and best/count/hit tracking as local_sweep, with two extra register rows.
// Both gap-state recurrences read only the *previous* anti-diagonal —
//
//   E(a, b) = max(H(a, b-1) + open + ext, E(a, b-1) + ext)   (same lane)
//   F(a, b) = max(H(a-1, b) + open + ext, F(a-1, b) + ext)   (lane below)
//
// — so E carries in-lane (like vHoriz) and F through shift_in with its own
// in-place boundary column hb_f (like vVert/hb).  H is floored at zero;
// E/F are not (kernels.h).  Ramp steps additionally blend the bound_e
// values into E's gap-state input with the same lane==d mask.
template <class E, Mode M>
void affine_local_sweep(const DiagBlock& blk, const Prepped& pp,
                        const ScoreParams& sp, std::int32_t threshold,
                        BestCell* best_out, std::uint64_t* count_by_a,
                        const HitSink* sink) {
  using V = typename E::V;
  using Lane = typename E::Lane;
  constexpr int L = E::kLanes;
  const std::size_t A = blk.a_len;
  const std::size_t B = blk.b_len;
  assert(A >= 1 && B >= static_cast<std::size_t>(2 * L));

  struct Tables {
    alignas(64) Lane valid[2 * L];
    alignas(64) Lane eq[2 * L];
    alignas(64) Lane tail[2 * L];
    Tables() {
      for (int i = 0; i < 2 * L; ++i) {
        valid[i] = i < L ? Lane(-1) : Lane(0);
        eq[i] = i == L - 1 ? Lane(-1) : Lane(0);
        tail[i] = i < L ? Lane(0) : Lane(-1);
      }
    }
  };
  static const Tables tbl;

  const V vExt = E::bcast(sp.gap);
  const V vOpenExt = E::bcast(sp.gap_open + sp.gap);
  const V vMatch = E::bcast(sp.match);
  const V vMis = E::bcast(sp.mismatch);
  const V vN = E::bcast(kBaseN);
  const V vZero = E::zero();
  const V vOne = E::bcast(1);
  const V vThrM1 = E::bcast(threshold - 1);
  const V vNegInf = E::bcast(lane_clip<E>(kNegInf));

  BestCell best;
  std::int32_t* hb = pp.hb;
  std::int32_t* hbf = pp.hb_f;
  alignas(64) Lane tmp[L];
  alignas(64) Lane tmp_e[L];
  alignas(64) Lane tmp_f[L];
  alignas(64) Lane tmp_score[L];
  alignas(64) Lane tmp_step[L];

  for (std::size_t a0 = 0; a0 < A; a0 += L) {
    const std::size_t aeff = std::min<std::size_t>(L, A - a0);
    const bool last_strip = a0 + L >= A;
    const V vChA = E::load_chars(pp.a + a0);
    const V vAn = E::cmpeq(vChA, vN);
    const std::int32_t corner_strip =
        a0 == 0 ? blk.corner : (pp.ba != nullptr ? pp.ba[a0 - 1] : 0);
    hb[0] = corner_strip;
    const V vHaUp = pp.ba != nullptr ? E::load_bound(pp.ba + a0) : vZero;
    const V vHaDiag = E::shift_in(vHaUp, corner_strip);
    const V vEaUp = E::load_bound(pp.be + a0);
    const V vActive = E::loadu(tbl.valid + (L - static_cast<int>(aeff)));
    std::int32_t* edge_dst = last_strip ? blk.out_last_a : hb + 1;
    std::int32_t* edge_f_dst = last_strip ? blk.out_last_a_f : hbf + 1;
    const std::size_t edge_lane = (last_strip ? aeff : L) - 1;

    V vHp = vZero, vHpp = vZero;
    V vEp = vNegInf, vFp = vNegInf;
    V vBest = vZero, vStepBest = vZero;
    V vCnt = vZero;
    V vStep = vZero;
    std::size_t seg_base = 0;
    std::int32_t lane_best[L] = {};
    std::size_t lane_best_d[L] = {};

    auto flush = [&](std::size_t next_d) {
      if constexpr (M == Mode::kBest) {
        E::storeu(tmp_score, vBest);
        E::storeu(tmp_step, vStepBest);
        for (std::size_t l = 0; l < aeff; ++l) {
          if (static_cast<std::int32_t>(tmp_score[l]) > lane_best[l]) {
            lane_best[l] = tmp_score[l];
            lane_best_d[l] = seg_base + static_cast<std::size_t>(tmp_step[l]);
          }
        }
        vStepBest = vZero;
      } else if constexpr (M == Mode::kCount) {
        E::storeu(tmp_score, vCnt);
        for (std::size_t l = 0; l < aeff; ++l)
          count_by_a[a0 + l] += static_cast<std::uint64_t>(tmp_score[l]);
        vCnt = vZero;
      }
      vStep = vZero;
      seg_base = next_d;
    };

    auto step = [&](std::size_t d, V vEqMask, bool blend_boundary, V vMask) {
      const V vChB =
          E::load_chars(pp.brev + static_cast<std::ptrdiff_t>(B - 1) -
                        static_cast<std::ptrdiff_t>(d));
      const V vSub = E::blend(vMis, vMatch, E::andnot(vAn, E::cmpeq(vChA, vChB)));
      const std::int32_t hb_diag = d <= B ? hb[d] : 0;
      const std::int32_t hb_vert = d + 1 <= B ? hb[d + 1] : 0;
      const std::int32_t hbf_vert =
          lane_clip<E>(d + 1 <= B ? hbf[d + 1] : kNegInf);
      V vDiag = E::shift_in(vHpp, hb_diag);
      V vHoriz = vHp;
      V vEHoriz = vEp;
      const V vVert = E::shift_in(vHp, hb_vert);
      const V vFVert = E::shift_in(vFp, hbf_vert);
      if (blend_boundary) {
        vDiag = E::blend(vDiag, vHaDiag, vEqMask);
        vHoriz = E::blend(vHoriz, vHaUp, vEqMask);
        vEHoriz = E::blend(vEHoriz, vEaUp, vEqMask);
      }
      const V vE = E::max(E::add(vHoriz, vOpenExt), E::add(vEHoriz, vExt));
      const V vF = E::max(E::add(vVert, vOpenExt), E::add(vFVert, vExt));
      V vH = E::max(E::add(vDiag, vSub), E::max(vE, vF));
      vH = E::max(vH, vZero);
      E::storeu(tmp, vH);
      E::storeu(tmp_f, vF);
      if (edge_dst != nullptr && d >= edge_lane && d - edge_lane < B)
        edge_dst[d - edge_lane] = tmp[edge_lane];
      if (edge_f_dst != nullptr && d >= edge_lane && d - edge_lane < B)
        edge_f_dst[d - edge_lane] = tmp_f[edge_lane];
      if (blk.out_last_b != nullptr && d + 1 >= B && d + 1 - B < aeff)
        blk.out_last_b[a0 + (d + 1 - B)] = tmp[d + 1 - B];
      if (blk.out_last_b_e != nullptr && d + 1 >= B && d + 1 - B < aeff) {
        E::storeu(tmp_e, vE);
        blk.out_last_b_e[a0 + (d + 1 - B)] = tmp_e[d + 1 - B];
      }
      if constexpr (M == Mode::kBest) {
        const V vCand = E::and_(vH, vMask);
        vStepBest = E::blend(vStepBest, vStep, E::cmpgt(vCand, vBest));
        vBest = E::max(vBest, vCand);
      } else if constexpr (M == Mode::kCount) {
        vCnt = E::sub(vCnt, E::and_(E::cmpgt(vH, vThrM1), vMask));
      } else {
        const unsigned mm = static_cast<unsigned>(
            E::movemask(E::and_(E::cmpgt(vH, vThrM1), vMask)));
        if (mm != 0) {
          for (int l = 0; l < L; ++l)
            if (mm & (1u << (l * E::kMaskBitsPerLane)))
              (*sink)(a0 + l, d - l, tmp[l]);
        }
      }
      vStep = E::add(vStep, vOne);
      vHpp = vHp;
      vHp = vH;
      vEp = vE;
      vFp = vF;
    };

    for (std::size_t d = 0; d < static_cast<std::size_t>(L); ++d) {
      const int off = L - 1 - static_cast<int>(d);
      step(d, E::loadu(tbl.eq + off), true,
           E::and_(E::loadu(tbl.valid + off), vActive));
    }
    std::size_t d = L;
    while (d < B) {
      const std::size_t seg_end =
          std::min(B, seg_base + static_cast<std::size_t>(E::kSegSteps));
      for (; d < seg_end; ++d) step(d, vZero, false, vActive);
      if (d < B) flush(d);
    }
    for (; d < B + aeff - 1; ++d) {
      const int off = L - 1 - static_cast<int>(d - B);
      step(d, vZero, false, E::and_(E::loadu(tbl.tail + off), vActive));
    }
    flush(d);

    if constexpr (M == Mode::kBest) {
      for (std::size_t l = 0; l < aeff; ++l) {
        if (lane_best[l] <= 0) continue;
        const std::size_t bc = lane_best_d[l] - l;
        const std::size_t ac = a0 + l;
        if (lane_best[l] > best.score ||
            (lane_best[l] == best.score &&
             (bc < best.b || (bc == best.b && ac < best.a))))
          best = BestCell{lane_best[l], ac, bc};
      }
    }
  }
  if constexpr (M == Mode::kBest) *best_out = best;
}

// Needleman–Wunsch last-row sweep: same strip scheme, 32-bit lanes only (no
// clamp, scores go far negative), boundaries are the (i+1)*gap ramps so the
// blend vectors are generated instead of loaded.
template <class E>
void nw_sweep(const Base* a_seq, std::size_t A, const Base* b_seq,
              std::size_t B, const ScoreParams& sp, std::int32_t* out_by_a) {
  using V = typename E::V;
  using Lane = typename E::Lane;
  static_assert(sizeof(Lane) == 4, "NW sweep runs on 32-bit lanes");
  constexpr int L = E::kLanes;
  assert(A >= 1 && B >= static_cast<std::size_t>(2 * L));

  struct Tables {
    alignas(64) Lane eq[2 * L];
    Tables() {
      for (int i = 0; i < 2 * L; ++i) eq[i] = i == L - 1 ? Lane(-1) : Lane(0);
    }
  };
  static const Tables tbl;

  Scratch& s = scratch();
  s.a_pad.assign(A + kMaxLanes, kSentinel);
  std::copy(a_seq, a_seq + A, s.a_pad.begin());
  s.b_rev.assign(B + 2 * kMaxLanes, kSentinel);
  for (std::size_t b = 0; b < B; ++b) s.b_rev[kMaxLanes + (B - 1 - b)] = b_seq[b];
  const Base* apad = s.a_pad.data();
  const Base* brev = s.b_rev.data() + kMaxLanes;
  s.hb.resize(B + 1);
  for (std::size_t b = 0; b <= B; ++b)
    s.hb[b] = static_cast<std::int32_t>(b) * sp.gap;  // hb[0]=corner, hb[1+b]=v(-1,b)
  std::int32_t* hb = s.hb.data();

  const V vGap = E::bcast(sp.gap);
  const V vMatch = E::bcast(sp.match);
  const V vMis = E::bcast(sp.mismatch);
  const V vN = E::bcast(kBaseN);
  const V vZero = E::zero();
  alignas(64) Lane tmp[L];
  alignas(64) Lane ramp[L];

  for (std::size_t a0 = 0; a0 < A; a0 += L) {
    const std::size_t aeff = std::min<std::size_t>(L, A - a0);
    const bool last_strip = a0 + L >= A;
    const V vChA = E::load_chars(apad + a0);
    const V vAn = E::cmpeq(vChA, vN);
    const std::int32_t corner_strip = static_cast<std::int32_t>(a0) * sp.gap;
    hb[0] = corner_strip;
    for (int l = 0; l < L; ++l)
      ramp[l] = static_cast<Lane>(a0 + l + 1) * sp.gap;  // v(a0+l, -1)
    const V vHaUp = E::loadu(ramp);
    const V vHaDiag = E::shift_in(vHaUp, corner_strip);
    std::int32_t* edge_dst = last_strip ? nullptr : hb + 1;
    const std::size_t edge_lane = L - 1;

    V vHp = vZero, vHpp = vZero;
    auto step = [&](std::size_t d, V vEqMask, bool blend_boundary) {
      const V vChB =
          E::load_chars(brev + static_cast<std::ptrdiff_t>(B - 1) -
                        static_cast<std::ptrdiff_t>(d));
      const V vSub = E::blend(vMis, vMatch, E::andnot(vAn, E::cmpeq(vChA, vChB)));
      const std::int32_t hb_diag = d <= B ? hb[d] : 0;
      const std::int32_t hb_vert = d + 1 <= B ? hb[d + 1] : 0;
      V vDiag = E::shift_in(vHpp, hb_diag);
      V vHoriz = vHp;
      const V vVert = E::shift_in(vHp, hb_vert);
      if (blend_boundary) {
        vDiag = E::blend(vDiag, vHaDiag, vEqMask);
        vHoriz = E::blend(vHoriz, vHaUp, vEqMask);
      }
      const V vH = E::max(E::add(vDiag, vSub), E::add(E::max(vVert, vHoriz), vGap));
      E::storeu(tmp, vH);
      if (edge_dst != nullptr && d >= edge_lane && d - edge_lane < B)
        edge_dst[d - edge_lane] = tmp[edge_lane];
      if (d + 1 >= B && d + 1 - B < aeff) out_by_a[a0 + (d + 1 - B)] = tmp[d + 1 - B];
      vHpp = vHp;
      vHp = vH;
    };

    for (std::size_t d = 0; d < static_cast<std::size_t>(L); ++d)
      step(d, E::loadu(tbl.eq + (L - 1 - static_cast<int>(d))), true);
    for (std::size_t d = L; d < B + aeff - 1; ++d) step(d, vZero, false);
  }
}

// Affine (Gotoh) Needleman–Wunsch last-row sweep, 32-bit lanes only.  Emits
// both the H row and the b-gap state row E the Myers–Miller join needs.  The
// tb_open boundary discount is folded into the boundaries: the b-side border
// ramp H(-1, b) = tb + (b+1)*ext, and E(a, -1) = H(a, -1) + tb, which makes
// the standard E recurrence produce max(H(a,-1)+open+ext, H(a,-1)+tb+ext) =
// H(a,-1)+tb+ext at b == 0 (tb >= open always: tb is 0 or gap_open).
template <class E>
void nw_affine_sweep(const Base* a_seq, std::size_t A, const Base* b_seq,
                     std::size_t B, const ScoreParams& sp, std::int32_t tb,
                     std::int32_t* out_h, std::int32_t* out_e) {
  using V = typename E::V;
  using Lane = typename E::Lane;
  static_assert(sizeof(Lane) == 4, "affine NW sweep runs on 32-bit lanes");
  constexpr int L = E::kLanes;
  assert(A >= 1 && B >= static_cast<std::size_t>(2 * L));
  const std::int32_t ext = sp.gap;
  const std::int32_t open = sp.gap_open;

  struct Tables {
    alignas(64) Lane eq[2 * L];
    Tables() {
      for (int i = 0; i < 2 * L; ++i) eq[i] = i == L - 1 ? Lane(-1) : Lane(0);
    }
  };
  static const Tables tbl;

  Scratch& s = scratch();
  s.a_pad.assign(A + kMaxLanes, kSentinel);
  std::copy(a_seq, a_seq + A, s.a_pad.begin());
  s.b_rev.assign(B + 2 * kMaxLanes, kSentinel);
  for (std::size_t b = 0; b < B; ++b) s.b_rev[kMaxLanes + (B - 1 - b)] = b_seq[b];
  const Base* apad = s.a_pad.data();
  const Base* brev = s.b_rev.data() + kMaxLanes;
  s.hb.resize(B + 1);
  s.hb[0] = 0;  // corner
  for (std::size_t b = 1; b <= B; ++b)
    s.hb[b] = tb + static_cast<std::int32_t>(b) * ext;  // H(-1, b-1) ramp
  s.hb_f.assign(B + 1, kNegInf);  // F(-1, b): no a-gap crosses the border
  std::int32_t* hb = s.hb.data();
  std::int32_t* hbf = s.hb_f.data();

  const V vExt = E::bcast(ext);
  const V vOpenExt = E::bcast(open + ext);
  const V vMatch = E::bcast(sp.match);
  const V vMis = E::bcast(sp.mismatch);
  const V vN = E::bcast(kBaseN);
  const V vZero = E::zero();
  const V vNegInf = E::bcast(kNegInf);
  alignas(64) Lane tmp[L];
  alignas(64) Lane tmp_e[L];
  alignas(64) Lane tmp_f[L];
  alignas(64) Lane ramp[L];
  alignas(64) Lane eramp[L];

  for (std::size_t a0 = 0; a0 < A; a0 += L) {
    const std::size_t aeff = std::min<std::size_t>(L, A - a0);
    const bool last_strip = a0 + L >= A;
    const V vChA = E::load_chars(apad + a0);
    const V vAn = E::cmpeq(vChA, vN);
    const std::int32_t corner_strip =
        a0 == 0 ? 0 : open + static_cast<std::int32_t>(a0) * ext;
    hb[0] = corner_strip;
    for (int l = 0; l < L; ++l) {
      ramp[l] = open + static_cast<Lane>(a0 + l + 1) * ext;  // H(a0+l, -1)
      eramp[l] = ramp[l] + tb;                               // E(a0+l, -1)
    }
    const V vHaUp = E::loadu(ramp);
    const V vHaDiag = E::shift_in(vHaUp, corner_strip);
    const V vEaUp = E::loadu(eramp);
    std::int32_t* edge_dst = last_strip ? nullptr : hb + 1;
    std::int32_t* edge_f_dst = last_strip ? nullptr : hbf + 1;
    const std::size_t edge_lane = L - 1;

    V vHp = vZero, vHpp = vZero;
    V vEp = vNegInf, vFp = vNegInf;
    auto step = [&](std::size_t d, V vEqMask, bool blend_boundary) {
      const V vChB =
          E::load_chars(brev + static_cast<std::ptrdiff_t>(B - 1) -
                        static_cast<std::ptrdiff_t>(d));
      const V vSub = E::blend(vMis, vMatch, E::andnot(vAn, E::cmpeq(vChA, vChB)));
      const std::int32_t hb_diag = d <= B ? hb[d] : 0;
      const std::int32_t hb_vert = d + 1 <= B ? hb[d + 1] : 0;
      const std::int32_t hbf_vert = d + 1 <= B ? hbf[d + 1] : kNegInf;
      V vDiag = E::shift_in(vHpp, hb_diag);
      V vHoriz = vHp;
      V vEHoriz = vEp;
      const V vVert = E::shift_in(vHp, hb_vert);
      const V vFVert = E::shift_in(vFp, hbf_vert);
      if (blend_boundary) {
        vDiag = E::blend(vDiag, vHaDiag, vEqMask);
        vHoriz = E::blend(vHoriz, vHaUp, vEqMask);
        vEHoriz = E::blend(vEHoriz, vEaUp, vEqMask);
      }
      const V vE = E::max(E::add(vHoriz, vOpenExt), E::add(vEHoriz, vExt));
      const V vF = E::max(E::add(vVert, vOpenExt), E::add(vFVert, vExt));
      const V vH = E::max(E::add(vDiag, vSub), E::max(vE, vF));
      E::storeu(tmp, vH);
      E::storeu(tmp_f, vF);
      if (edge_dst != nullptr && d >= edge_lane && d - edge_lane < B) {
        edge_dst[d - edge_lane] = tmp[edge_lane];
        edge_f_dst[d - edge_lane] = tmp_f[edge_lane];
      }
      if (d + 1 >= B && d + 1 - B < aeff) {
        out_h[a0 + (d + 1 - B)] = tmp[d + 1 - B];
        if (out_e != nullptr) {
          E::storeu(tmp_e, vE);
          out_e[a0 + (d + 1 - B)] = tmp_e[d + 1 - B];
        }
      }
      vHpp = vHp;
      vHp = vH;
      vEp = vE;
      vFp = vF;
    };

    for (std::size_t d = 0; d < static_cast<std::size_t>(L); ++d)
      step(d, E::loadu(tbl.eq + (L - 1 - static_cast<int>(d))), true);
    for (std::size_t d = L; d < B + aeff - 1; ++d) step(d, vZero, false);
  }
}

// ---------------------------------------------------------------------------
// Width routing + fallback: the per-backend public entry points funnel here.
// E16 does the work in saturating 16-bit lanes when a proven upper bound on
// every reachable cell fits comfortably; otherwise E32 runs.  Blocks too
// small for the strip scheme (B < 2 lanes) fall back to the scalar
// reference — same contract either way.

inline std::int32_t value_bound(const Prepped& pp, const DiagBlock& blk,
                                const ScoreParams& sp) {
  const std::int64_t diag_steps =
      static_cast<std::int64_t>(std::min(blk.a_len, blk.b_len));
  const std::int64_t hi = static_cast<std::int64_t>(pp.bound_max) +
                          std::max(0, sp.match) * diag_steps;
  return hi > INT32_MAX ? INT32_MAX : static_cast<std::int32_t>(hi);
}

inline bool params_fit16(const ScoreParams& sp) {
  constexpr int kLim = 30000;
  // The affine sweep broadcasts gap_open + gap as one constant, so the sum
  // must stay a representable (non-wrapping) 16-bit immediate too.
  return sp.match <= kLim && sp.match >= -kLim && sp.mismatch <= kLim &&
         sp.mismatch >= -kLim && sp.gap <= kLim && sp.gap >= -kLim &&
         sp.gap_open <= kLim && sp.gap_open >= -kLim &&
         sp.gap_open + sp.gap >= -kLim;
}

template <class E16, class E32, Mode M>
void run_local(const DiagBlock& blk, const ScoreParams& sp,
               std::int32_t threshold, BestCell* best_out,
               std::uint64_t* count_by_a, const HitSink* sink) {
  const bool tiny =
      blk.a_len == 0 || blk.b_len < static_cast<std::size_t>(2 * E32::kLanes);
  const bool scalar_thr = (M != Mode::kBest) && threshold <= 0;
  if (tiny || scalar_thr) {
    if constexpr (M == Mode::kBest)
      *best_out = scalar::block_best(blk, sp);
    else if constexpr (M == Mode::kCount)
      scalar::block_count(blk, sp, threshold, count_by_a);
    else
      scalar::block_hits(blk, sp, threshold, *sink);
    return;
  }
  const bool affine = sp.gap_open != 0;
  const Prepped pp = prep(blk, affine);
  constexpr std::int32_t kLim16 = 30000;
  const bool fit16 = params_fit16(sp) && pp.bound_min >= -kLim16 &&
                     value_bound(pp, blk, sp) <= kLim16 &&
                     (M == Mode::kBest || threshold <= kLim16) &&
                     blk.b_len >= static_cast<std::size_t>(2 * E16::kLanes);
  if (affine) {
    if (fit16)
      affine_local_sweep<E16, M>(blk, pp, sp, threshold, best_out, count_by_a,
                                 sink);
    else
      affine_local_sweep<E32, M>(blk, pp, sp, threshold, best_out, count_by_a,
                                 sink);
  } else if (fit16) {
    local_sweep<E16, M>(blk, pp, sp, threshold, best_out, count_by_a, sink);
  } else {
    local_sweep<E32, M>(blk, pp, sp, threshold, best_out, count_by_a, sink);
  }
}

template <class E32>
void run_nw(const Base* a_seq, std::size_t a_len, const Base* b_seq,
            std::size_t b_len, const ScoreParams& sp, std::int32_t* out_by_a) {
  if (a_len == 0) return;
  if (b_len < static_cast<std::size_t>(2 * E32::kLanes)) {
    scalar::nw_last_row(a_seq, a_len, b_seq, b_len, sp, out_by_a);
    return;
  }
  nw_sweep<E32>(a_seq, a_len, b_seq, b_len, sp, out_by_a);
}

template <class E32>
void run_nw_affine(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                   std::size_t b_len, const ScoreParams& sp, std::int32_t tb,
                   std::int32_t* out_h, std::int32_t* out_e) {
  if (a_len == 0) return;
  if (b_len < static_cast<std::size_t>(2 * E32::kLanes)) {
    scalar::nw_last_row_affine(a_seq, a_len, b_seq, b_len, sp, tb, out_h,
                               out_e);
    return;
  }
  nw_affine_sweep<E32>(a_seq, a_len, b_seq, b_len, sp, tb, out_h, out_e);
}

}  // namespace gdsm::simd::detail
