// Striped (Farrar-layout) query-profile kernels for the score-only hot
// paths.
//
// The anti-diagonal backends (kernels.h) recompute substitution scores from
// the two characters of every cell.  The striped family instead precomputes
// a per-query *profile* — for every alphabet character, the substitution
// scores of the whole query laid out in Farrar's striped vector order — and
// sweeps subject characters one column at a time.  Query position
// i = lane * seg_len + s lives in lane `lane` of segment vector `s`, so the
// vertical gap (F) dependency crosses lanes only at segment wrap, which the
// "lazy F" corrective loop repairs after each column.  docs/KERNELS.md
// ("Striped query-profile kernels") walks through the layout, the lane
// masks and the escalation ladder.
//
// Precision ladder (adaptive, per block):
//   8-bit   unsigned saturating lanes, profile biased by max(0, -match,
//           -mismatch).  Saturation at 255 is detected from the sweep's
//           running maximum; an overflowing block transparently re-runs at
//           16 bits and the 8-bit result is discarded.
//   16-bit  unsigned saturating lanes, same biased layout, entered only
//           when a proven value bound shows no lane can reach 65535 —
//           PR 4's routing rule applied to the unsigned domain.
//   32-bit  anything wider delegates to the paired anti-diagonal backend,
//           whose own 16/32-bit routing is already release-gated.
//
// Only fresh score-only blocks take the striped path (no boundary feeds, no
// edge outputs — exactly the sw_best_score_linear / db_align shard-scan
// shape); everything else delegates to the paired anti-diagonal backend, so
// a striped backend is always safe to force process-wide via GDSM_KERNEL=.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "simd/kernels.h"

namespace gdsm::simd {

/// Striped-path activity since process start (or the last reset).  All
/// deterministic for a deterministic workload; flows into the schema-v9
/// `kernel.striped` report section (docs/METRICS.md).
struct StripedCounters {
  std::uint64_t sweeps8 = 0;    ///< 8-bit striped sweeps run
  std::uint64_t sweeps16 = 0;   ///< 16-bit striped sweeps run
  std::uint64_t cells8 = 0;     ///< DP cells swept at 8-bit precision
  std::uint64_t cells16 = 0;    ///< DP cells swept at 16-bit precision
  std::uint64_t overflow_reruns = 0;  ///< 8-bit saturation -> 16-bit re-runs
  std::uint64_t fallback32 = 0;  ///< blocks beyond 16-bit bounds, delegated
  std::uint64_t delegated = 0;   ///< non-fresh/ineligible blocks, delegated
  std::uint64_t profile_builds = 0;  ///< query profiles built (cache misses)
  std::uint64_t profile_hits = 0;    ///< query profiles served from cache
};

StripedCounters striped_counters();
void reset_striped_counters();

/// Pre-builds (or refreshes the cache slot of) the striped profile for
/// `q[0..len)` under `sp`, keyed by (query bytes, params, lane geometry of
/// the active backend).  A no-op unless a striped backend is active.  The
/// service calls this once per admitted database query so every shard scan
/// of the batch hits the cache (docs/SERVICE.md).
void warm_query_profile(const Base* q, std::size_t len, const ScoreParams& sp);

/// Drops every cached profile (tests; isolates cache-counter assertions).
void clear_query_profile_cache();

namespace detail {

/// One query's precomputed striped profiles, both precisions, immutable
/// after build and shared via the cache.  `prof8`/`prof16` are
/// [char][segment][lane] arrays (kAlphabetSize * seg * lanes entries);
/// padding lanes (query index >= m) hold the biased worst value 0 so they
/// can never raise a running maximum past a real cell.
struct QueryProfile {
  std::size_t m = 0;
  int bias = 0;        ///< max(0, -match, -mismatch); both widths share it
  bool fit8 = false;   ///< params representable in biased 8-bit lanes
  bool fit16 = false;  ///< params representable in biased 16-bit lanes
  std::size_t seg8 = 0, seg16 = 0;
  std::vector<std::uint8_t> prof8;
  std::vector<std::uint16_t> prof16;
};

/// Cache lookup (LRU, process-wide): builds on miss, counts
/// profile_builds/profile_hits.  Returns nullptr when the query is empty or
/// contains out-of-alphabet characters (callers must then delegate).
std::shared_ptr<const QueryProfile> striped_profile(const Base* q,
                                                    std::size_t m,
                                                    const ScoreParams& sp,
                                                    int lanes8, int lanes16);

// Counter bumps used by the sweep wrappers (atomics live in striped.cpp).
void note_sweep8(std::uint64_t cells);
void note_sweep16(std::uint64_t cells);
void note_overflow_rerun();
void note_fallback32();
void note_delegated();

}  // namespace detail

// Per-backend striped entry points.  Only block_best has a striped form —
// the other kernels of the dispatch table (counts, hit scans, NW last-row
// passes) need boundary feeds or per-cell emission and stay on the paired
// anti-diagonal backend.  Each function is a total implementation of the
// kernels.h block_best contract: ineligible blocks delegate internally.
namespace striped_scalar {
BestCell block_best(const DiagBlock& blk, const ScoreParams& sp);
}

#if GDSM_SIMD_SSE41
namespace striped_sse41 {
BestCell block_best(const DiagBlock& blk, const ScoreParams& sp);
}
#endif

#if GDSM_SIMD_AVX2
namespace striped_avx2 {
BestCell block_best(const DiagBlock& blk, const ScoreParams& sp);
}
#endif

#if GDSM_SIMD_AVX512
namespace striped_avx512 {
BestCell block_best(const DiagBlock& blk, const ScoreParams& sp);
}
#endif

}  // namespace gdsm::simd
