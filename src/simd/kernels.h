// Score-only DP block kernels, one signature per backend.
//
// Everything score-shaped in this repository — the Section 6 best-local-score
// scan, the Section 5 threshold hit-scan, the band×chunk blocks of the
// pre-process strategy, the block grid of the message-passing exact method,
// and the Needleman–Wunsch last-row pass behind Hirschberg splits — is the
// same recurrence swept over a rectangular block with boundary rows.  This
// header defines that block contract once (DiagBlock) and declares the
// per-backend implementations; callers go through simd/dispatch.h, which
// picks a backend at runtime (CPUID, overridable with GDSM_KERNEL=).
//
// Orientation.  A block is a grid over two dimensions: `a` (the lane
// dimension, vector lanes run along it) and `b` (the sweep dimension).  Cell
// (a, b) holds the local-alignment recurrence
//
//   v(a, b) = max(0, v(a-1, b-1) + sub(a_seq[a], b_seq[b]),
//                    v(a-1, b)   + gap,
//                    v(a, b-1)   + gap)
//
// with boundary values v(a, -1) = bound_a[a], v(-1, b) = bound_b[b] and
// v(-1, -1) = corner (null bound pointers mean all-zero, the fresh-matrix
// case).  Callers map their own (row, column) orientation onto (a, b);
// the tie-break contract below is stated in (b, a) so any caller that scans
// row-major can make the kernel reproduce its scalar tie-breaks exactly by
// putting rows on `b`.
//
// The vector backends sweep anti-diagonals in strips of kLanes cells along
// `a` (the parasail "diag" scheme adapted to blocked boundaries): lane l of
// step d holds v(a0 + l, d - l).  They use saturating 16-bit lanes when a
// proven upper bound on any reachable cell value fits, and fall back to
// 32-bit lanes otherwise — see docs/KERNELS.md for the routing rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/alphabet.h"

namespace gdsm::simd {

/// Substitution/gap costs.  sub(x, y) = (x == y && x != kBaseN) ? match
/// : mismatch, matching ScoreScheme::substitution.  gap_open != 0 selects
/// the Gotoh affine recurrence (docs/ALGORITHMS.md): a gap run of length k
/// then costs gap_open + k * gap, and the sweep carries the E/F gap-state
/// rows alongside H.  gap_open == 0 is the linear model and is guaranteed
/// bit-identical to the historical single-matrix sweep.
struct ScoreParams {
  int match = 1;
  int mismatch = -1;
  int gap = -2;
  int gap_open = 0;  ///< once-per-run surcharge; 0 = linear
};

/// "minus infinity" for affine gap-state boundaries: deep enough that no
/// gap may continue across the edge, shallow enough that adding penalties
/// cannot underflow 32-bit lanes.  The 16-bit paths saturate it to -32768,
/// which behaves identically (it can never beat a real open branch).
inline constexpr std::int32_t kNegInf = INT32_MIN / 4;

/// One rectangular DP block with boundary conditions.  All pointers are
/// borrowed; output pointers may be null when the caller does not need that
/// edge.
///
/// The affine extension mirrors the H edges with gap-state edges: E is the
/// gap state that consumes b-characters (its recurrence reads (a, b-1), so
/// its boundary pairs bound_a and its edge output pairs out_last_b), F the
/// one consuming a-characters (reads (a-1, b); pairs bound_b / out_last_a).
/// Null affine boundary pointers mean kNegInf — no gap run crosses that
/// edge — and the corner carries H only (E/F have no diagonal dependency).
/// All four are ignored by the linear recurrence.
struct DiagBlock {
  const Base* a_seq = nullptr;  ///< lane-dimension characters, a_len of them
  std::size_t a_len = 0;
  const Base* b_seq = nullptr;  ///< sweep-dimension characters, b_len of them
  std::size_t b_len = 0;
  const std::int32_t* bound_a = nullptr;  ///< v(a, -1), a_len entries (null = 0)
  const std::int32_t* bound_b = nullptr;  ///< v(-1, b), b_len entries (null = 0)
  std::int32_t corner = 0;                ///< v(-1, -1)
  std::int32_t* out_last_b = nullptr;  ///< out: v(a, b_len-1), a_len entries
  std::int32_t* out_last_a = nullptr;  ///< out: v(a_len-1, b), b_len entries
  // Affine (gap_open != 0) boundary feeds and edge outputs.
  const std::int32_t* bound_e = nullptr;  ///< E(a, -1), a_len (null = kNegInf)
  const std::int32_t* bound_f = nullptr;  ///< F(-1, b), b_len (null = kNegInf)
  std::int32_t* out_last_b_e = nullptr;  ///< out: E(a, b_len-1), a_len entries
  std::int32_t* out_last_a_f = nullptr;  ///< out: F(a_len-1, b), b_len entries
};

/// Best positive cell of a block.  score == 0 means no cell was positive and
/// (a, b) are meaningless.  On score ties the cell with the lexicographically
/// smallest (b, a) wins — i.e. the first maximum in a row-major scan of a
/// caller that maps its rows onto `b`.
struct BestCell {
  std::int32_t score = 0;
  std::size_t a = 0;  ///< 0-based lane-dimension index
  std::size_t b = 0;  ///< 0-based sweep-dimension index
};

/// Receives one cell with v >= threshold as (a, b, v), 0-based.  Emission
/// order is unspecified (the vector backends emit strip-by-strip); callers
/// that need an order must collect and sort.
using HitSink = std::function<void(std::size_t, std::size_t, std::int32_t)>;

// Per-backend entry points.  Identical observable behaviour — the
// differential suite in tests/simd_kernel_test.cpp holds every compiled
// backend to the scalar reference, including tie-breaks.
//
//   block_best   best positive cell (plus the optional edge outputs)
//   block_count  per-a-index counts of cells with v >= threshold
//                (count_by_a[a] is *incremented*, callers zero it)
//   block_hits   stream every cell with v >= threshold to the sink
//   nw_last_row  global-alignment (Needleman–Wunsch, no clamp) values
//                v(a, b_len-1) of a_seq[0..a] vs all of b_seq, with the
//                standard linear-gap boundaries; out_by_a gets a_len entries
//
// The block kernels honour sp.gap_open: a nonzero open routes to the affine
// sweep internally, same entry point.  nw_last_row is linear-only; its
// affine counterpart is a separate kernel because it outputs two rows:
//
//   nw_last_row_affine  global affine H(a, b_len-1) into out_h and the
//                b-gap state E(a, b_len-1) into out_e (may be null).
//                `tb_open` is the gap-open cost charged to a b-gap run that
//                starts at b == 0 — callers pass sp.gap_open normally, or 0
//                when a gap is already open across that boundary (the
//                Myers–Miller boundary-discount; see docs/ALGORITHMS.md).
namespace scalar {
BestCell block_best(const DiagBlock& blk, const ScoreParams& sp);
void block_count(const DiagBlock& blk, const ScoreParams& sp,
                 std::int32_t threshold, std::uint64_t* count_by_a);
void block_hits(const DiagBlock& blk, const ScoreParams& sp,
                std::int32_t threshold, const HitSink& sink);
void nw_last_row(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                 std::size_t b_len, const ScoreParams& sp,
                 std::int32_t* out_by_a);
void nw_last_row_affine(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                        std::size_t b_len, const ScoreParams& sp,
                        std::int32_t tb_open, std::int32_t* out_h,
                        std::int32_t* out_e);
}  // namespace scalar

#if GDSM_SIMD_SSE41
namespace sse41 {
BestCell block_best(const DiagBlock& blk, const ScoreParams& sp);
void block_count(const DiagBlock& blk, const ScoreParams& sp,
                 std::int32_t threshold, std::uint64_t* count_by_a);
void block_hits(const DiagBlock& blk, const ScoreParams& sp,
                std::int32_t threshold, const HitSink& sink);
void nw_last_row(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                 std::size_t b_len, const ScoreParams& sp,
                 std::int32_t* out_by_a);
void nw_last_row_affine(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                        std::size_t b_len, const ScoreParams& sp,
                        std::int32_t tb_open, std::int32_t* out_h,
                        std::int32_t* out_e);
}  // namespace sse41
#endif

#if GDSM_SIMD_AVX2
namespace avx2 {
BestCell block_best(const DiagBlock& blk, const ScoreParams& sp);
void block_count(const DiagBlock& blk, const ScoreParams& sp,
                 std::int32_t threshold, std::uint64_t* count_by_a);
void block_hits(const DiagBlock& blk, const ScoreParams& sp,
                std::int32_t threshold, const HitSink& sink);
void nw_last_row(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                 std::size_t b_len, const ScoreParams& sp,
                 std::int32_t* out_by_a);
void nw_last_row_affine(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                        std::size_t b_len, const ScoreParams& sp,
                        std::int32_t tb_open, std::int32_t* out_h,
                        std::int32_t* out_e);
}  // namespace avx2
#endif

}  // namespace gdsm::simd
