// AVX2 lane engines for the anti-diagonal sweep (diag_kernel_inl.h).
// Include only from a translation unit compiled with -mavx2.
//
// The one non-obvious op is shift_in: AVX2 has no single cross-128-bit-lane
// element shift, so it is built from a permute that moves the low 128-bit
// half into the high position, an alignr that stitches the halves, and an
// insert for the incoming element.
#pragma once

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "util/alphabet.h"

namespace gdsm::simd::detail {

struct EngineAvx16 {
  using V = __m256i;
  using Lane = std::int16_t;
  static constexpr int kLanes = 16;
  static constexpr int kSegSteps = 30000;   // keeps step stamps/counters exact
  static constexpr int kMaskBitsPerLane = 2;
  static V zero() { return _mm256_setzero_si256(); }
  static V bcast(int x) { return _mm256_set1_epi16(static_cast<short>(x)); }
  static V loadu(const void* p) {
    return _mm256_loadu_si256(static_cast<const __m256i*>(p));
  }
  static void storeu(void* p, V v) {
    _mm256_storeu_si256(static_cast<__m256i*>(p), v);
  }
  static V load_chars(const Base* p) {
    return _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static V load_bound(const std::int32_t* p) {
    // packs interleaves the 128-bit halves; the permute restores lane order.
    // Values are within the 16-bit routing limits, so no clipping.
    return _mm256_permute4x64_epi64(
        _mm256_packs_epi32(loadu(p), loadu(p + 8)), 0xD8);
  }
  static V add(V a, V b) { return _mm256_adds_epi16(a, b); }  // saturating
  static V sub(V a, V b) { return _mm256_sub_epi16(a, b); }
  static V max(V a, V b) { return _mm256_max_epi16(a, b); }
  static V cmpeq(V a, V b) { return _mm256_cmpeq_epi16(a, b); }
  static V cmpgt(V a, V b) { return _mm256_cmpgt_epi16(a, b); }
  static V blend(V a, V b, V m) { return _mm256_blendv_epi8(a, b, m); }
  static V and_(V a, V b) { return _mm256_and_si256(a, b); }
  static V andnot(V m, V a) { return _mm256_andnot_si256(m, a); }
  static V shift_in(V v, std::int32_t x) {  // lane 0 <- x, lane l <- v[l-1]
    // alignr against [0 : v_lo] leaves lane 0 zeroed, so the incoming value
    // ORs in via a zeroing vmovd — cheaper than a cross-lane insert, and the
    // shift sits on the sweep's serial dependency chain.
    const V lo_to_hi = _mm256_permute2x128_si256(v, v, 0x08);
    const V shifted = _mm256_alignr_epi8(v, lo_to_hi, 14);
    return _mm256_or_si256(
        shifted, _mm256_zextsi128_si256(_mm_cvtsi32_si128(x & 0xFFFF)));
  }
  static int movemask(V m) { return _mm256_movemask_epi8(m); }
};

struct EngineAvx32 {
  using V = __m256i;
  using Lane = std::int32_t;
  static constexpr int kLanes = 8;
  static constexpr int kSegSteps = 1 << 28;
  static constexpr int kMaskBitsPerLane = 4;
  static V zero() { return _mm256_setzero_si256(); }
  static V bcast(int x) { return _mm256_set1_epi32(x); }
  static V loadu(const void* p) {
    return _mm256_loadu_si256(static_cast<const __m256i*>(p));
  }
  static void storeu(void* p, V v) {
    _mm256_storeu_si256(static_cast<__m256i*>(p), v);
  }
  static V load_chars(const Base* p) {
    return _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
  }
  static V load_bound(const std::int32_t* p) { return loadu(p); }
  static V add(V a, V b) { return _mm256_add_epi32(a, b); }
  static V sub(V a, V b) { return _mm256_sub_epi32(a, b); }
  static V max(V a, V b) { return _mm256_max_epi32(a, b); }
  static V cmpeq(V a, V b) { return _mm256_cmpeq_epi32(a, b); }
  static V cmpgt(V a, V b) { return _mm256_cmpgt_epi32(a, b); }
  static V blend(V a, V b, V m) { return _mm256_blendv_epi8(a, b, m); }
  static V and_(V a, V b) { return _mm256_and_si256(a, b); }
  static V andnot(V m, V a) { return _mm256_andnot_si256(m, a); }
  static V shift_in(V v, std::int32_t x) {
    const V lo_to_hi = _mm256_permute2x128_si256(v, v, 0x08);
    const V shifted = _mm256_alignr_epi8(v, lo_to_hi, 12);
    return _mm256_or_si256(shifted,
                           _mm256_zextsi128_si256(_mm_cvtsi32_si128(x)));
  }
  static int movemask(V m) { return _mm256_movemask_epi8(m); }
};

/// Striped engines (striped_kernel_inl.h contract).  shift1 uses the same
/// permute+alignr trick as shift_in above, moved down to byte granularity:
/// permute2x128(v, v, 0x08) puts the low half in the high position with a
/// zeroed low half, so alignr by 15 (8-bit lanes) or 14 (16-bit) yields the
/// whole vector shifted up one lane with a zero shifted in.
struct StripedAvx8 {
  using V = __m256i;
  using Word = std::uint8_t;
  static constexpr int kLanes = 32;

  static V zero() { return _mm256_setzero_si256(); }
  static V set1(int x) { return _mm256_set1_epi8(static_cast<char>(x)); }
  static V loadu(const void* p) {
    return _mm256_loadu_si256(static_cast<const __m256i*>(p));
  }
  static void storeu(void* p, V v) {
    _mm256_storeu_si256(static_cast<__m256i*>(p), v);
  }
  static V adds(V a, V b) { return _mm256_adds_epu8(a, b); }
  static V subs(V a, V b) { return _mm256_subs_epu8(a, b); }
  static V maxv(V a, V b) { return _mm256_max_epu8(a, b); }
  static V shift1(V v) {
    const V lo_to_hi = _mm256_permute2x128_si256(v, v, 0x08);
    return _mm256_alignr_epi8(v, lo_to_hi, 15);
  }
  static bool any_gt(V a, V b) {
    return !_mm256_testz_si256(_mm256_subs_epu8(a, b),
                               _mm256_subs_epu8(a, b));
  }
  static bool any_ne(V a, V b) {
    return _mm256_movemask_epi8(_mm256_cmpeq_epi8(a, b)) != -1;
  }
  static int hmax(V v) {
    alignas(32) Word l[kLanes];
    _mm256_store_si256(reinterpret_cast<__m256i*>(l), v);
    int best = 0;
    for (int i = 0; i < kLanes; ++i) best = std::max(best, static_cast<int>(l[i]));
    return best;
  }
};

struct StripedAvx16 {
  using V = __m256i;
  using Word = std::uint16_t;
  static constexpr int kLanes = 16;

  static V zero() { return _mm256_setzero_si256(); }
  static V set1(int x) { return _mm256_set1_epi16(static_cast<short>(x)); }
  static V loadu(const void* p) {
    return _mm256_loadu_si256(static_cast<const __m256i*>(p));
  }
  static void storeu(void* p, V v) {
    _mm256_storeu_si256(static_cast<__m256i*>(p), v);
  }
  static V adds(V a, V b) { return _mm256_adds_epu16(a, b); }
  static V subs(V a, V b) { return _mm256_subs_epu16(a, b); }
  static V maxv(V a, V b) { return _mm256_max_epu16(a, b); }
  static V shift1(V v) {
    const V lo_to_hi = _mm256_permute2x128_si256(v, v, 0x08);
    return _mm256_alignr_epi8(v, lo_to_hi, 14);
  }
  static bool any_gt(V a, V b) {
    return !_mm256_testz_si256(_mm256_subs_epu16(a, b),
                               _mm256_subs_epu16(a, b));
  }
  static bool any_ne(V a, V b) {
    return _mm256_movemask_epi8(_mm256_cmpeq_epi16(a, b)) != -1;
  }
  static int hmax(V v) {
    alignas(32) Word l[kLanes];
    _mm256_store_si256(reinterpret_cast<__m256i*>(l), v);
    int best = 0;
    for (int i = 0; i < kLanes; ++i) best = std::max(best, static_cast<int>(l[i]));
    return best;
  }
};

}  // namespace gdsm::simd::detail
