#include "simd/dispatch.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace gdsm::simd {
namespace {

struct Entry {
  BestCell (*block_best)(const DiagBlock&, const ScoreParams&);
  void (*block_count)(const DiagBlock&, const ScoreParams&, std::int32_t,
                      std::uint64_t*);
  void (*block_hits)(const DiagBlock&, const ScoreParams&, std::int32_t,
                     const HitSink&);
  void (*nw_last_row)(const Base*, std::size_t, const Base*, std::size_t,
                      const ScoreParams&, std::int32_t*);
  void (*nw_last_row_affine)(const Base*, std::size_t, const Base*,
                             std::size_t, const ScoreParams&, std::int32_t,
                             std::int32_t*, std::int32_t*);
};

constexpr Entry kScalarEntry{scalar::block_best, scalar::block_count,
                             scalar::block_hits, scalar::nw_last_row,
                             scalar::nw_last_row_affine};
// A striped entry swaps in the Farrar block_best and keeps the paired
// anti-diagonal backend for the four kernels that need boundary feeds or
// per-cell emission (dispatch.h).
constexpr Entry kStripedScalarEntry{
    striped_scalar::block_best, scalar::block_count, scalar::block_hits,
    scalar::nw_last_row, scalar::nw_last_row_affine};
#if GDSM_SIMD_SSE41
constexpr Entry kSse41Entry{sse41::block_best, sse41::block_count,
                            sse41::block_hits, sse41::nw_last_row,
                            sse41::nw_last_row_affine};
constexpr Entry kStripedSse41Entry{
    striped_sse41::block_best, sse41::block_count, sse41::block_hits,
    sse41::nw_last_row, sse41::nw_last_row_affine};
#endif
#if GDSM_SIMD_AVX2
constexpr Entry kAvx2Entry{avx2::block_best, avx2::block_count,
                           avx2::block_hits, avx2::nw_last_row,
                           avx2::nw_last_row_affine};
constexpr Entry kStripedAvx2Entry{
    striped_avx2::block_best, avx2::block_count, avx2::block_hits,
    avx2::nw_last_row, avx2::nw_last_row_affine};
#endif
#if GDSM_SIMD_AVX512
// AVX-512's anti-diagonal twin is AVX2: the widest full-contract backend.
constexpr Entry kStripedAvx512Entry{
    striped_avx512::block_best, avx2::block_count, avx2::block_hits,
    avx2::nw_last_row, avx2::nw_last_row_affine};
#endif

const Entry& entry_for(Backend b) {
  switch (b) {
#if GDSM_SIMD_SSE41
    case Backend::kSse41:
      return kSse41Entry;
    case Backend::kStripedSse41:
      return kStripedSse41Entry;
#endif
#if GDSM_SIMD_AVX2
    case Backend::kAvx2:
      return kAvx2Entry;
    case Backend::kStripedAvx2:
      return kStripedAvx2Entry;
#endif
#if GDSM_SIMD_AVX512
    case Backend::kStripedAvx512:
      return kStripedAvx512Entry;
#endif
    case Backend::kStripedScalar:
      return kStripedScalarEntry;
    default:
      return kScalarEntry;
  }
}

bool cpu_supports(Backend b) {
  switch (b) {
    case Backend::kScalar:
    case Backend::kStripedScalar:
      return true;
#if GDSM_SIMD_SSE41
    case Backend::kSse41:
    case Backend::kStripedSse41:
      return __builtin_cpu_supports("sse4.1") != 0;
#endif
#if GDSM_SIMD_AVX2
    case Backend::kAvx2:
    case Backend::kStripedAvx2:
      return __builtin_cpu_supports("avx2") != 0;
#endif
#if GDSM_SIMD_AVX512
    case Backend::kStripedAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0;
#endif
    default:
      return false;
  }
}

bool parse_name(std::string_view name, Backend* out) {
  if (name == "scalar") return *out = Backend::kScalar, true;
  if (name == "sse41") return *out = Backend::kSse41, true;
  if (name == "avx2") return *out = Backend::kAvx2, true;
  if (name == "striped-scalar") return *out = Backend::kStripedScalar, true;
  if (name == "striped-sse41") return *out = Backend::kStripedSse41, true;
  if (name == "striped-avx2") return *out = Backend::kStripedAvx2, true;
  if (name == "striped-avx512") return *out = Backend::kStripedAvx512, true;
  return false;
}

Backend widest_available() {
  Backend best = Backend::kScalar;
  for (Backend b : available_backends()) best = b;  // widest last
  return best;
}

// The resolved choice.  Initialization (first access) applies GDSM_KERNEL;
// force_backend overwrites it afterwards.
std::atomic<Backend>& active_slot() {
  static std::atomic<Backend> slot = [] {
    Backend pick = widest_available();
    if (const char* env = std::getenv("GDSM_KERNEL"); env != nullptr) {
      Backend want;
      if (!parse_name(env, &want)) {
        std::fprintf(stderr,
                     "gdsm: GDSM_KERNEL=%s unknown (scalar|sse41|avx2|"
                     "striped-scalar|striped-sse41|striped-avx2|"
                     "striped-avx512), using %s\n",
                     env, backend_name(pick));
      } else if (!cpu_supports(want)) {
        std::fprintf(stderr,
                     "gdsm: GDSM_KERNEL=%s not available on this "
                     "build/CPU, using %s\n",
                     env, backend_name(pick));
      } else {
        pick = want;
      }
    }
    return pick;
  }();
  return slot;
}

// ---------------------------------------------------------------------------
// Metering: lock-free accumulators, one triple per kernel.

struct AtomicCounters {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> cells{0};
  std::atomic<std::uint64_t> nanos{0};
};

AtomicCounters g_best, g_count, g_hits, g_nw, g_nw_affine;

class Meter {
 public:
  Meter(AtomicCounters& c, std::uint64_t cells)
      : c_(c), cells_(cells), t0_(std::chrono::steady_clock::now()) {}
  ~Meter() {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    c_.calls.fetch_add(1, std::memory_order_relaxed);
    c_.cells.fetch_add(cells_, std::memory_order_relaxed);
    c_.nanos.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count(),
        std::memory_order_relaxed);
  }

 private:
  AtomicCounters& c_;
  std::uint64_t cells_;
  std::chrono::steady_clock::time_point t0_;
};

KernelCounters snapshot(const AtomicCounters& c) {
  KernelCounters out;
  out.calls = c.calls.load(std::memory_order_relaxed);
  out.cells = c.cells.load(std::memory_order_relaxed);
  out.seconds = 1e-9 * static_cast<double>(c.nanos.load(std::memory_order_relaxed));
  return out;
}

void reset(AtomicCounters& c) {
  c.calls.store(0, std::memory_order_relaxed);
  c.cells.store(0, std::memory_order_relaxed);
  c.nanos.store(0, std::memory_order_relaxed);
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kSse41:
      return "sse41";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kStripedScalar:
      return "striped-scalar";
    case Backend::kStripedSse41:
      return "striped-sse41";
    case Backend::kStripedAvx2:
      return "striped-avx2";
    case Backend::kStripedAvx512:
      return "striped-avx512";
    default:
      return "scalar";
  }
}

std::vector<Backend> available_backends() {
  // Preferred last (the auto pick): each striped backend outranks its paired
  // anti-diagonal backend on the score-only hot path, and off x86 the plain
  // scalar anti-diagonal kernel stays the default.  striped-avx512 ranks
  // BELOW striped-avx2 deliberately: on the Skylake-SP-class parts this
  // project targets, 512-bit integer ops run on fewer ports and trigger
  // frequency licensing, and measured GCUPS comes out at parity with the
  // AVX2 striped kernel (within run-to-run noise; docs/KERNELS.md "Backend
  // matrix") — not enough to buy the license-induced downclocking the wider
  // vectors impose on real silicon under mixed load.  It stays available
  // for explicit GDSM_KERNEL=striped-avx512 forcing on hosts where 512-bit
  // execution is known full-rate.
  std::vector<Backend> out{Backend::kStripedScalar, Backend::kScalar};
#if GDSM_SIMD_SSE41
  if (cpu_supports(Backend::kSse41)) {
    out.push_back(Backend::kSse41);
    out.push_back(Backend::kStripedSse41);
  }
#endif
#if GDSM_SIMD_AVX512
  if (cpu_supports(Backend::kStripedAvx512)) {
    out.push_back(Backend::kStripedAvx512);
  }
#endif
#if GDSM_SIMD_AVX2
  if (cpu_supports(Backend::kAvx2)) {
    out.push_back(Backend::kAvx2);
    out.push_back(Backend::kStripedAvx2);
  }
#endif
  return out;
}

Backend active_backend() { return active_slot().load(std::memory_order_relaxed); }

const char* active_backend_name() { return backend_name(active_backend()); }

Backend force_backend(Backend b) {
  if (cpu_supports(b)) active_slot().store(b, std::memory_order_relaxed);
  return active_backend();
}

Backend force_backend(std::string_view name) {
  Backend want;
  if (parse_name(name, &want)) return force_backend(want);
  return active_backend();
}

BestCell block_best(const DiagBlock& blk, const ScoreParams& sp) {
  Meter m(g_best, static_cast<std::uint64_t>(blk.a_len) * blk.b_len);
  return entry_for(active_backend()).block_best(blk, sp);
}

void block_count(const DiagBlock& blk, const ScoreParams& sp,
                 std::int32_t threshold, std::uint64_t* count_by_a) {
  Meter m(g_count, static_cast<std::uint64_t>(blk.a_len) * blk.b_len);
  entry_for(active_backend()).block_count(blk, sp, threshold, count_by_a);
}

void block_hits(const DiagBlock& blk, const ScoreParams& sp,
                std::int32_t threshold, const HitSink& sink) {
  Meter m(g_hits, static_cast<std::uint64_t>(blk.a_len) * blk.b_len);
  entry_for(active_backend()).block_hits(blk, sp, threshold, sink);
}

void nw_last_row(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                 std::size_t b_len, const ScoreParams& sp,
                 std::int32_t* out_by_a) {
  Meter m(g_nw, static_cast<std::uint64_t>(a_len) * b_len);
  entry_for(active_backend()).nw_last_row(a_seq, a_len, b_seq, b_len, sp,
                                          out_by_a);
}

void nw_last_row_affine(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                        std::size_t b_len, const ScoreParams& sp,
                        std::int32_t tb_open, std::int32_t* out_h,
                        std::int32_t* out_e) {
  Meter m(g_nw_affine, static_cast<std::uint64_t>(a_len) * b_len);
  entry_for(active_backend())
      .nw_last_row_affine(a_seq, a_len, b_seq, b_len, sp, tb_open, out_h,
                          out_e);
}

KernelStats kernel_stats() {
  KernelStats out;
  out.backend = active_backend_name();
  out.best = snapshot(g_best);
  out.count = snapshot(g_count);
  out.hits = snapshot(g_hits);
  out.nw = snapshot(g_nw);
  out.nw_affine = snapshot(g_nw_affine);
  out.striped = striped_counters();
  return out;
}

void reset_kernel_stats() {
  reset(g_best);
  reset(g_count);
  reset(g_hits);
  reset(g_nw);
  reset(g_nw_affine);
  reset_striped_counters();
}

}  // namespace gdsm::simd
